// nextmaint command-line tool: simulate fleets, forecast maintenance,
// plan workshop slots and evaluate the paper's algorithms on CSV data.
// All logic lives in src/cli/cli.h (unit tested); this is the dispatcher.

#include <cstdio>
#include <iostream>
#include <vector>

#include "cli/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  const nextmaint::Status status =
      nextmaint::cli::RunCommand(args, std::cout);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
