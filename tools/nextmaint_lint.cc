// nextmaint_lint: the project invariant checker.
//
// Scans C++ sources for violations of the nextmaint correctness
// invariants: banned nondeterminism primitives, discarded Status results,
// include-layering breaches and naked new/delete. See
// docs/static-analysis.md for the rule catalogue.
//
// Usage:
//   nextmaint_lint [--root DIR] [PATH...]
//
// PATHs are relative to --root (default "."); directories are walked
// recursively. With no PATH, scans src tools bench. Exit status: 0 clean,
// 1 findings, 2 usage or I/O error.

#include <cstdio>
#include <string>
#include <vector>

#include "lint/lint.h"

int main(int argc, char** argv) {
  std::string root = ".";
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --root requires a directory argument\n");
        return 2;
      }
      root = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: nextmaint_lint [--root DIR] [PATH...]\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "error: unknown flag '%s'\n", arg.c_str());
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) paths = {"src", "tools", "bench"};

  const auto config = nextmaint::lint::LintConfig::ProjectDefault();
  auto findings = nextmaint::lint::LintTree(root, paths, config);
  if (!findings.ok()) {
    std::fprintf(stderr, "nextmaint_lint: %s\n",
                 findings.status().ToString().c_str());
    return 2;
  }
  for (const nextmaint::lint::Finding& finding : findings.ValueOrDie()) {
    std::printf("%s\n", finding.ToString().c_str());
  }
  const size_t count = findings.ValueOrDie().size();
  if (count > 0) {
    std::fprintf(stderr, "nextmaint_lint: %zu finding%s\n", count,
                 count == 1 ? "" : "s");
    return 1;
  }
  return 0;
}
