// Reproduces Figure 3: utilization seconds left L_v(t) vs days to
// maintenance D_v(t) over a single cycle. The paper highlights two
// properties: a near-constant slope when L approaches zero (steady usage
// rate near the deadline) and vertical steps where consecutive days have
// zero utilization (D decreases while L stays put).

#include <cstdio>

#include "bench/harness.h"
#include "core/series.h"

using nextmaint::bench::BenchConfig;
using nextmaint::bench::ConfigFromEnv;
using nextmaint::bench::MakeReferenceFleet;

int main() {
  const BenchConfig config = ConfigFromEnv();
  const nextmaint::telem::Fleet fleet = MakeReferenceFleet(config);

  for (const char* id : {"v1", "v2"}) {
    const auto* vehicle = fleet.Find(id).ValueOrDie();
    const auto series = nextmaint::core::DeriveSeries(
                            vehicle->utilization,
                            config.maintenance_interval_s)
                            .ValueOrDie();
    if (series.completed_cycles() < 2) {
      std::printf("%s: fewer than 2 cycles, skipping\n", id);
      continue;
    }
    // Use the second cycle (the first has the cold-start usage deficit).
    const auto& cycle = series.cycles[1];
    std::printf("=== Figure 3: L vs D over cycle 2 of %s ===\n", id);
    std::printf("%-6s %12s %8s\n", "t", "L(t) [s]", "D(t)");
    size_t vertical_steps = 0;
    for (size_t t = cycle.start; t <= cycle.end; ++t) {
      std::printf("%-6zu %12.0f %8.0f\n", t, series.l[t], series.d[t]);
      // A vertical step: L unchanged from yesterday (zero usage) while D
      // decreased by one.
      if (t > cycle.start && series.l[t] == series.l[t - 1]) {
        ++vertical_steps;
      }
    }
    std::printf("zero-usage (vertical) steps in this cycle: %zu\n\n",
                vertical_steps);
  }
  return 0;
}
