// Reproduces the Section 5.1 timing analysis with google-benchmark: mean
// per-vehicle training time of each algorithm, and its growth with the
// window size W.
//
// Paper reference (i7-8750H, including grid search): XGB 30.4 s, RF 8.1 s,
// LR 3.8 s, LSVR 2.8 s, BL 2.5 s per vehicle; "model complexity increases
// more than linearly with the number of considered features".
// Expected shape here: XGB and RF dominate; BL is near-free; training time
// grows with W for the tree ensembles.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "core/baseline.h"
#include "core/dataset_builder.h"
#include "core/series.h"
#include "ml/binned_dataset.h"
#include "ml/hist_gradient_boosting.h"
#include "ml/random_forest.h"
#include "ml/registry.h"

namespace {

using nextmaint::bench::BenchConfig;
using nextmaint::bench::MakeReferenceFleet;

/// One reference vehicle's training dataset, built once per (W) setting.
nextmaint::ml::Dataset MakeTrainingData(int window) {
  static const nextmaint::telem::Fleet* const kFleet = [] {
    BenchConfig config;  // fixed config: timing must not depend on env
    config.num_vehicles = 5;
    // Leaky singleton: the fleet outlives every benchmark registration.
    auto* fleet = new nextmaint::telem::Fleet(  // nextmaint-lint: allow(naked-new)
        MakeReferenceFleet(config));
    return fleet;
  }();
  const auto& vehicle = kFleet->vehicles[0];
  nextmaint::core::DatasetOptions options;
  options.window = window;
  options.target_filter = nextmaint::core::DaySet::Last29();
  nextmaint::core::ResamplingOptions resampling;
  resampling.num_shifts = 5;
  return nextmaint::core::BuildResampledDataset(
             vehicle.utilization, vehicle.profile.maintenance_interval_s,
             options, resampling)
      .ValueOrDie();
}

void TrainOnce(const std::string& algorithm,
               const nextmaint::ml::Dataset& data) {
  if (algorithm == "BL") {
    // BL "training" is computing the average utilization.
    nextmaint::core::BaselinePredictor model(10'000.0, 1.0);
    benchmark::DoNotOptimize(model.Fit(data));
    return;
  }
  auto model = nextmaint::ml::MakeRegressor(algorithm).MoveValueOrDie();
  const nextmaint::Status status = model->Fit(data);
  benchmark::DoNotOptimize(status);
}

void BM_Train(benchmark::State& state, const std::string& algorithm) {
  const int window = static_cast<int>(state.range(0));
  const nextmaint::ml::Dataset data = MakeTrainingData(window);
  for (auto _ : state) {
    TrainOnce(algorithm, data);
  }
  state.counters["rows"] = static_cast<double>(data.num_rows());
  state.counters["features"] = static_cast<double>(data.num_features());
}

// Thread-scaling sweep for the ensemble fits: wall time at 1/2/4 threads on
// the standard W=6 dataset. Any thread count yields a bit-identical model
// (the determinism contract in docs/parallelism.md), so the ratio between
// the threads:1 and threads:4 rows is pure speedup with unchanged E_MRE.
void BM_TrainThreaded(benchmark::State& state, const std::string& algorithm) {
  const int threads = static_cast<int>(state.range(0));
  const nextmaint::ml::Dataset data = MakeTrainingData(6);
  for (auto _ : state) {
    if (algorithm == "RF") {
      nextmaint::ml::RandomForestRegressor::Options options;
      options.num_threads = threads;
      nextmaint::ml::RandomForestRegressor model(options);
      benchmark::DoNotOptimize(model.Fit(data));
    } else {
      nextmaint::ml::HistGradientBoostingRegressor::Options options;
      options.num_threads = threads;
      nextmaint::ml::HistGradientBoostingRegressor model(options);
      benchmark::DoNotOptimize(model.Fit(data));
    }
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["rows"] = static_cast<double>(data.num_rows());
}

void RegisterAll() {
  for (const std::string& algorithm :
       {std::string("BL"), std::string("LR"), std::string("LSVR"),
        std::string("RF"), std::string("XGB")}) {
    auto* bench = benchmark::RegisterBenchmark(
        ("train/" + algorithm).c_str(),
        [algorithm](benchmark::State& state) { BM_Train(state, algorithm); });
    bench->Arg(0)->Arg(6)->Arg(12)->Arg(18)->Unit(benchmark::kMillisecond);
  }
  for (const std::string& algorithm : {std::string("RF"), std::string("XGB")}) {
    auto* bench = benchmark::RegisterBenchmark(
        ("train_threads/" + algorithm).c_str(),
        [algorithm](benchmark::State& state) {
          BM_TrainThreaded(state, algorithm);
        });
    bench->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);
  }
}

// ---------------------------------------------------------------------------
// Binned-vs-row grid-search sweep (docs/binned-training.md): fit the same
// candidate grid on both training cores, verify the serialized models are
// byte-identical, and report the train-time ratio. The binned side shares
// one BinningCache across all candidates, exactly as the scheduler's grid
// search does, so the measured delta includes the bin-once-reuse-everywhere
// effect and not just the per-access gap. Emits a JSON record (also written
// to NEXTMAINT_BENCH_JSON) and exits non-zero on any byte divergence.

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct GridCandidate {
  std::string algorithm;
  nextmaint::ml::ParamMap params;
};

std::vector<GridCandidate> SweepGrid() {
  std::vector<GridCandidate> grid;
  for (const double estimators : {60.0, 120.0}) {
    for (const double leaf : {5.0, 20.0}) {
      grid.push_back({"RF",
                      {{"num_estimators", estimators},
                       {"max_depth", 10.0},
                       {"min_samples_leaf", leaf}}});
    }
  }
  for (const double iterations : {60.0, 120.0}) {
    for (const double depth : {4.0, 6.0}) {
      grid.push_back({"XGB",
                      {{"num_iterations", iterations},
                       {"max_depth", depth}}});
    }
  }
  return grid;
}

/// Fits every grid candidate on `core`; returns serialized model bytes per
/// candidate (empty on failure) and the total fit wall time.
std::vector<std::string> FitGridOnCore(const nextmaint::ml::Dataset& data,
                                       const std::vector<GridCandidate>& grid,
                                       nextmaint::ml::TreeCore core,
                                       double* seconds) {
  nextmaint::ml::TrainingBackend backend;
  backend.core = core;
  if (core == nextmaint::ml::TreeCore::kBinned) {
    backend.binning_cache = std::make_shared<nextmaint::ml::BinningCache>();
  }
  std::vector<std::string> models;
  const auto start = std::chrono::steady_clock::now();
  for (const GridCandidate& candidate : grid) {
    auto model = nextmaint::ml::MakeRegressor(candidate.algorithm,
                                              candidate.params, backend)
                     .MoveValueOrDie();
    if (!model->Fit(data).ok()) return {};
    std::ostringstream out;
    if (!model->Save(out).ok()) return {};
    models.push_back(std::move(out).str());
  }
  *seconds = SecondsSince(start);
  return models;
}

int RunBinnedVsRowSweep() {
  const nextmaint::ml::Dataset data = MakeTrainingData(6);
  const std::vector<GridCandidate> grid = SweepGrid();

  double row_seconds = 0.0;
  double binned_seconds = 0.0;
  const std::vector<std::string> row_models = FitGridOnCore(
      data, grid, nextmaint::ml::TreeCore::kRowOriented, &row_seconds);
  const std::vector<std::string> binned_models = FitGridOnCore(
      data, grid, nextmaint::ml::TreeCore::kBinned, &binned_seconds);
  if (row_models.empty() || binned_models.empty()) {
    std::fprintf(stderr, "grid-search sweep failed to train\n");
    return 1;
  }
  const bool identical = row_models == binned_models;
  const double speedup =
      binned_seconds > 0.0 ? row_seconds / binned_seconds : 0.0;

  char json[512];
  std::snprintf(
      json, sizeof(json),
      "{\"bench\":\"timing_binned_vs_row\",\"schema\":1,\"candidates\":%zu,"
      "\"rows\":%zu,\"features\":%zu,\"row_seconds\":%.6f,"
      "\"binned_seconds\":%.6f,\"speedup\":%.2f,"
      "\"models_identical\":%s}",
      grid.size(), data.num_rows(), data.num_features(), row_seconds,
      binned_seconds, speedup, identical ? "true" : "false");
  std::printf("%s\n", json);

  if (const char* path = std::getenv("NEXTMAINT_BENCH_JSON")) {
    if (*path != '\0') {
      std::FILE* file = std::fopen(path, "w");
      if (file == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return 1;
      }
      std::fprintf(file, "%s\n", json);
      std::fclose(file);
    }
  }

  if (!identical) {
    std::fprintf(stderr,
                 "binned and row-oriented cores produced different model "
                 "bytes — the shared-grower bit-identity contract broke\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  {
    // Reports per-model fit telemetry for the whole sweep when
    // NEXTMAINT_METRICS=1; a no-op (and no timing impact) otherwise.
    nextmaint::bench::MetricsReport metrics("timing sweep");
    benchmark::RunSpecifiedBenchmarks();
  }
  benchmark::Shutdown();
  return RunBinnedVsRowSweep();
}
