// Reproduces Figure 1: daily utilization U_v(t) for two sample vehicles
// with contrasting patterns — a steady user at 20k-30k s/day with scattered
// zero days, and a machine idle for weeks that suddenly works at full
// capacity. Also checks the Section 4.4 statistic: mean daily utilization in
// the first maintenance cycle is ~30% lower than in subsequent cycles
// (paper: 10,676 s vs 13,792 s).

#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "common/statistics.h"
#include "core/series.h"

using nextmaint::bench::BenchConfig;
using nextmaint::bench::ConfigFromEnv;
using nextmaint::bench::MakeReferenceFleet;

int main() {
  const BenchConfig config = ConfigFromEnv();
  const nextmaint::telem::Fleet fleet = MakeReferenceFleet(config);

  // v1 is the steady archetype, v2 the bursty one — mirroring the paper's
  // two sample vehicles. A mature window (past the first-cycle ramp-in)
  // shows the steady-state contrast: v1 works most days at 20-30k s with
  // scattered zero days, v2 alternates multi-week dead periods with
  // full-capacity runs.
  constexpr size_t kWindowStart = 300;
  constexpr size_t kWindowDays = 90;
  std::printf(
      "=== Figure 1: daily utilization U_v(t), days %zu..%zu ===\n",
      kWindowStart, kWindowStart + kWindowDays - 1);
  std::printf("%-5s", "t");
  for (const char* id : {"v1", "v2"}) std::printf(" %10s", id);
  std::printf("\n");
  const auto* v1 = fleet.Find("v1").ValueOrDie();
  const auto* v2 = fleet.Find("v2").ValueOrDie();
  for (size_t t = kWindowStart; t < kWindowStart + kWindowDays; ++t) {
    std::printf("%-5zu %10.0f %10.0f\n", t, v1->utilization[t],
                v2->utilization[t]);
  }

  // Heterogeneity summary across the whole fleet.
  std::printf("\n=== fleet heterogeneity ===\n");
  std::printf("%-5s %-16s %12s %12s %10s\n", "id", "model", "mean U (s)",
              "zero days %", "cycles");
  for (const auto& vehicle : fleet.vehicles) {
    size_t zero_days = 0;
    for (size_t t = 0; t < vehicle.utilization.size(); ++t) {
      if (vehicle.utilization[t] == 0.0) ++zero_days;
    }
    std::printf("%-5s %-16s %12.0f %12.1f %10zu\n",
                vehicle.profile.id.c_str(),
                vehicle.profile.model_name.c_str(),
                vehicle.utilization.MeanValue(),
                100.0 * static_cast<double>(zero_days) /
                    static_cast<double>(vehicle.utilization.size()),
                vehicle.maintenance_days.size());
  }

  // Section 4.4 statistic: first-cycle vs later-cycle mean daily usage.
  std::vector<double> first_cycle_means, later_cycle_means;
  for (const auto& vehicle : fleet.vehicles) {
    auto series = nextmaint::core::DeriveSeries(
        vehicle.utilization, config.maintenance_interval_s);
    if (!series.ok() || series.ValueOrDie().completed_cycles() < 2) continue;
    const auto& s = series.ValueOrDie();
    const auto& first = s.cycles[0];
    double first_sum = 0.0;
    for (size_t t = first.start; t <= first.end; ++t) first_sum += s.u[t];
    first_cycle_means.push_back(first_sum /
                                static_cast<double>(first.length_days()));
    double later_sum = 0.0;
    size_t later_days = 0;
    for (size_t c = 1; c < s.cycles.size(); ++c) {
      for (size_t t = s.cycles[c].start; t <= s.cycles[c].end; ++t) {
        later_sum += s.u[t];
        ++later_days;
      }
    }
    later_cycle_means.push_back(later_sum / static_cast<double>(later_days));
  }
  const double first_mean = nextmaint::Mean(first_cycle_means);
  const double later_mean = nextmaint::Mean(later_cycle_means);
  std::printf("\n=== Section 4.4: first-cycle usage deficit ===\n");
  std::printf("mean daily utilization, first cycle : %8.0f s (paper: 10676)\n",
              first_mean);
  std::printf("mean daily utilization, later cycles: %8.0f s (paper: 13792)\n",
              later_mean);
  std::printf("first-cycle deficit                 : %7.1f %% (paper: ~30%%)\n",
              100.0 * (1.0 - first_mean / later_mean));
  return 0;
}
