// Reproduces Figure 5: E_MRE({d}) for each single day d = 1..29 before the
// maintenance deadline, with each algorithm in its best configuration from
// the window sweep. Paper shape: errors shrink approaching the deadline;
// every trained model beats BL; RF stays accurate even at d = 29 (avg ~2.4).

#include <cstdio>
#include <map>
#include <vector>

#include "bench/harness.h"
#include "common/statistics.h"
#include "common/strings.h"
#include "core/errors.h"

using nextmaint::FormatDouble;
using nextmaint::bench::BenchConfig;
using nextmaint::bench::ConfigFromEnv;
using nextmaint::bench::EvaluateOnFleet;
using nextmaint::bench::MakeReferenceFleet;
using nextmaint::bench::OldVehicleIndices;
using nextmaint::bench::PaperAlgorithms;

int main() {
  const BenchConfig config = ConfigFromEnv();
  const nextmaint::telem::Fleet fleet = MakeReferenceFleet(config);
  const std::vector<size_t> old_vehicles =
      OldVehicleIndices(fleet, config.maintenance_interval_s);

  // Best windows from the Figure 4 sweep (quick-mode values; the FULL run
  // re-derives them, but the curve shape is insensitive to +/- 3 around the
  // optimum).
  const std::map<std::string, int> best_window = {
      {"BL", 0}, {"LR", 9}, {"LSVR", 9}, {"RF", 6}, {"XGB", 6}};

  nextmaint::core::OldVehicleOptions options;
  options.train_on_last29_only = true;
  options.tune = config.tune;
  options.grid_budget = config.grid_budget;
  options.resampling_shifts = config.resampling_shifts;

  // Per-algorithm, per-day residual averaged over vehicles.
  std::printf("=== Figure 5: E_MRE({d}) per day-to-deadline d ===\n");
  std::printf("%-4s", "d");
  for (const auto& a : PaperAlgorithms()) std::printf(" %8s", a.c_str());
  std::printf("\n");

  std::map<std::string, std::vector<double>> curves;
  for (const std::string& algorithm : PaperAlgorithms()) {
    options.window = best_window.at(algorithm);
    auto result = EvaluateOnFleet(algorithm, fleet, old_vehicles, options);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", algorithm.c_str(),
                   result.status().ToString().c_str());
      return 1;
    }
    // Average the per-day residual across vehicles, skipping vehicles with
    // no sample at a given d.
    std::vector<double> curve(30, 0.0);
    std::vector<size_t> counts(30, 0);
    for (const auto& vehicle_eval : result.ValueOrDie().per_vehicle) {
      const std::vector<double> residuals =
          nextmaint::core::PerDayResiduals(vehicle_eval, 1, 29);
      for (int d = 1; d <= 29; ++d) {
        const double r = residuals[static_cast<size_t>(d - 1)];
        if (!std::isnan(r)) {
          curve[static_cast<size_t>(d)] += r;
          ++counts[static_cast<size_t>(d)];
        }
      }
    }
    for (int d = 1; d <= 29; ++d) {
      if (counts[static_cast<size_t>(d)] > 0) {
        curve[static_cast<size_t>(d)] /=
            static_cast<double>(counts[static_cast<size_t>(d)]);
      }
    }
    curves[algorithm] = curve;
  }

  for (int d = 1; d <= 29; ++d) {
    std::printf("%-4d", d);
    for (const auto& a : PaperAlgorithms()) {
      std::printf(" %8s",
                  FormatDouble(curves[a][static_cast<size_t>(d)], 2).c_str());
    }
    std::printf("\n");
  }

  // Shape checks printed as a summary: monotone-ish decrease toward d=1 and
  // trained models below BL on average.
  std::printf("\nmean over d=1..29:");
  for (const auto& a : PaperAlgorithms()) {
    double mean = 0.0;
    for (int d = 1; d <= 29; ++d) mean += curves[a][static_cast<size_t>(d)];
    std::printf("  %s=%.2f", a.c_str(), mean / 29.0);
  }
  std::printf("\n");
  return 0;
}
