// Ablation: histogram bin count of the gradient-boosting model.
//
// The paper's "XGB" is a histogram-based implementation; the bin count
// trades split resolution for training speed. This bench sweeps max_bins
// and reports both E_MRE and training time, justifying the 256-bin default.

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "common/strings.h"
#include "core/dataset_builder.h"
#include "core/errors.h"
#include "ml/hist_gradient_boosting.h"

using nextmaint::FormatDouble;
using nextmaint::bench::BenchConfig;
using nextmaint::bench::ConfigFromEnv;
using nextmaint::bench::EvaluateOnFleet;
using nextmaint::bench::MakeReferenceFleet;
using nextmaint::bench::OldVehicleIndices;
using nextmaint::bench::PrintTableHeader;
using nextmaint::bench::PrintTableRow;

int main() {
  const BenchConfig config = ConfigFromEnv();
  const nextmaint::telem::Fleet fleet = MakeReferenceFleet(config);
  const std::vector<size_t> old_vehicles =
      OldVehicleIndices(fleet, config.maintenance_interval_s);

  nextmaint::core::OldVehicleOptions options;
  options.window = 6;
  options.train_on_last29_only = true;
  options.tune = false;
  options.resampling_shifts = config.resampling_shifts;

  PrintTableHeader("Ablation: XGB histogram bins",
                   {"max_bins", "E_MRE({1..29})", "train s/vehicle"});
  for (int bins : {8, 32, 64, 128, 256, 1024}) {
    // Route the bin count through the evaluation harness via a bespoke
    // regressor name is not possible; instead evaluate directly with the
    // registry's XGB params.
    nextmaint::core::OldVehicleOptions run = options;
    run.tune = false;
    double emre_sum = 0.0, time_sum = 0.0;
    size_t evaluated = 0;
    for (size_t index : old_vehicles) {
      const auto& vehicle = fleet.vehicles[index];
      // Reuse EvaluateAlgorithmOnVehicle for BL-style bookkeeping is not
      // parameterizable by bins, so train/evaluate manually.
      auto series = nextmaint::core::DeriveSeries(
          vehicle.utilization, config.maintenance_interval_s);
      if (!series.ok()) continue;
      const auto& s = series.ValueOrDie();
      const size_t split = static_cast<size_t>(0.7 * s.size());

      nextmaint::core::DatasetOptions dataset_options;
      dataset_options.window = run.window;
      dataset_options.target_filter = nextmaint::core::DaySet::Last29();
      nextmaint::core::ResamplingOptions resampling;
      resampling.num_shifts = run.resampling_shifts;
      auto train = nextmaint::core::BuildResampledDataset(
          vehicle.utilization.Slice(0, split), config.maintenance_interval_s,
          dataset_options, resampling);
      if (!train.ok()) continue;

      nextmaint::ml::HistGradientBoostingRegressor::Options xgb_options;
      xgb_options.max_bins = bins;
      nextmaint::ml::HistGradientBoostingRegressor model(xgb_options);
      const auto t0 = std::chrono::steady_clock::now();
      if (!model.Fit(train.ValueOrDie()).ok()) continue;
      time_sum += std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();

      std::vector<double> truth, predicted;
      nextmaint::core::DatasetOptions feature_options;
      feature_options.window = run.window;
      for (size_t t = std::max(split, static_cast<size_t>(run.window));
           t < s.size(); ++t) {
        if (!s.HasTarget(t)) continue;
        auto row = nextmaint::core::BuildFeatureRow(s, t, feature_options);
        if (!row.ok()) continue;
        auto pred = model.Predict(std::span<const double>(
            row.ValueOrDie().data(), row.ValueOrDie().size()));
        if (!pred.ok()) continue;
        truth.push_back(s.d[t]);
        predicted.push_back(pred.ValueOrDie());
      }
      auto emre = nextmaint::core::MeanResidualError(
          truth, predicted, nextmaint::core::DaySet::Last29());
      if (!emre.ok()) continue;
      emre_sum += emre.ValueOrDie();
      ++evaluated;
    }
    if (evaluated == 0) continue;
    PrintTableRow({std::to_string(bins),
                   FormatDouble(emre_sum / static_cast<double>(evaluated), 2),
                   FormatDouble(time_sum / static_cast<double>(evaluated), 3)});
  }
  return 0;
}
