// Reproduces Figure 2: the target sawtooth D_v(t) — days left to the next
// maintenance — for two sample vehicles. The paper notes v1's first cycle is
// much longer than the later ones (221 days vs 65-105): the first-cycle
// usage deficit stretches the first sawtooth.

#include <cstdio>

#include "bench/harness.h"
#include "core/series.h"

using nextmaint::bench::BenchConfig;
using nextmaint::bench::ConfigFromEnv;
using nextmaint::bench::MakeReferenceFleet;

int main() {
  const BenchConfig config = ConfigFromEnv();
  const nextmaint::telem::Fleet fleet = MakeReferenceFleet(config);

  for (const char* id : {"v1", "v2"}) {
    const auto* vehicle = fleet.Find(id).ValueOrDie();
    const auto series = nextmaint::core::DeriveSeries(
                            vehicle->utilization,
                            config.maintenance_interval_s)
                            .ValueOrDie();
    std::printf("=== Figure 2: D_%s(t) cycle structure ===\n", id);
    std::printf("completed cycles: %zu\n", series.completed_cycles());
    std::printf("%-8s %-8s %-8s %-10s\n", "cycle", "start", "end", "length");
    for (size_t c = 0; c < series.cycles.size(); ++c) {
      std::printf("%-8zu %-8zu %-8zu %-10zu\n", c + 1,
                  series.cycles[c].start, series.cycles[c].end,
                  series.cycles[c].length_days());
    }

    // The sawtooth itself, subsampled every 5 days for readability.
    std::printf("\n%-6s %8s\n", "t", "D(t)");
    for (size_t t = 0; t < series.size(); t += 5) {
      if (!series.HasTarget(t)) break;  // trailing partial cycle
      std::printf("%-6zu %8.0f\n", t, series.d[t]);
    }
    std::printf("\n");
  }
  return 0;
}
