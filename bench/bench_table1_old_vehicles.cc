// Reproduces Table 1: E_MRE({1..29}) on old vehicles for the five
// algorithms, comparing training on all records vs training only on records
// whose target lies in the last 29 days of a cycle.
//
// Paper reference values (closed dataset):
//   algorithm   all-data   last-29-days
//   BL          20.2       20.2
//   LR          26.1       10.8
//   LSVR        13.3        6.1
//   RF           6.9        2.4
//   XGB         10.9        5.6
// Expected shape on the synthetic fleet: BL ~flat between regimes and worst
// overall near the deadline; the last-29 filter cuts every trained model's
// error substantially; RF best, XGB/LSVR in between.

#include <cstdio>

#include "bench/harness.h"
#include "common/strings.h"

using nextmaint::FormatDouble;
using nextmaint::bench::BenchConfig;
using nextmaint::bench::ConfigFromEnv;
using nextmaint::bench::EvaluateOnFleet;
using nextmaint::bench::FleetEvaluation;
using nextmaint::bench::MakeReferenceFleet;
using nextmaint::bench::MetricsReport;
using nextmaint::bench::OldVehicleIndices;
using nextmaint::bench::PaperAlgorithms;
using nextmaint::bench::PrintTableHeader;
using nextmaint::bench::PrintTableRow;

int main() {
  const BenchConfig config = ConfigFromEnv();
  // Prints fit counts/latency deltas for the run when NEXTMAINT_METRICS=1.
  MetricsReport metrics("Table 1 run");
  const nextmaint::telem::Fleet fleet = MakeReferenceFleet(config);
  const std::vector<size_t> old_vehicles =
      OldVehicleIndices(fleet, config.maintenance_interval_s);
  std::printf("fleet: %zu vehicles, %d days, %zu old\n",
              fleet.vehicles.size(), config.num_days, old_vehicles.size());

  // Table 1 is the univariate setting (W = 0): Figure 4 reports window
  // improvements *relative to* these numbers.
  nextmaint::core::OldVehicleOptions options;
  options.window = 0;
  options.tune = config.tune;
  options.grid_budget = config.grid_budget;
  options.resampling_shifts = config.resampling_shifts;

  PrintTableHeader("Table 1: E_MRE({1..29}) on old vehicles",
                   {"algorithm", "trained-all", "trained-last29"});
  for (const std::string& algorithm : PaperAlgorithms()) {
    double cells[2] = {0.0, 0.0};
    for (int regime = 0; regime < 2; ++regime) {
      options.train_on_last29_only = regime == 1;
      auto result = EvaluateOnFleet(algorithm, fleet, old_vehicles, options);
      if (!result.ok()) {
        std::fprintf(stderr, "%s failed: %s\n", algorithm.c_str(),
                     result.status().ToString().c_str());
        return 1;
      }
      cells[regime] = result.ValueOrDie().mean_emre;
    }
    PrintTableRow({algorithm, FormatDouble(cells[0], 2),
                   FormatDouble(cells[1], 2)});
  }
  return 0;
}
