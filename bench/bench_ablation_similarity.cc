// Ablation: the similarity measure behind Model_Sim (Section 4.4.1).
//
// The paper uses the point-wise average distance between first-half-cycle
// utilization series and explicitly notes that "more advanced similarity
// measures can be integrated as well". The measure is pluggable in this
// library; this bench compares three choices on the semi-new protocol.

#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "common/statistics.h"
#include "common/strings.h"
#include "core/cold_start.h"
#include "core/similarity.h"

using nextmaint::FormatDouble;
using nextmaint::Mean;
using nextmaint::bench::BenchConfig;
using nextmaint::bench::ConfigFromEnv;
using nextmaint::bench::MakeReferenceFleet;
using nextmaint::bench::PrintTableHeader;
using nextmaint::bench::PrintTableRow;
using nextmaint::core::AverageDistanceMeasure;
using nextmaint::core::ColdStartOptions;
using nextmaint::core::CorrelationMeasure;
using nextmaint::core::EuclideanMeasure;
using nextmaint::core::EvaluateColdStartModel;
using nextmaint::core::ExtractFirstCycle;
using nextmaint::core::FirstCycleData;
using nextmaint::core::FirstHalfCycleUsage;
using nextmaint::core::SimilarityMeasure;
using nextmaint::core::TrainSimilarityModel;

int main() {
  const BenchConfig config = ConfigFromEnv();
  const nextmaint::telem::Fleet fleet = MakeReferenceFleet(config);

  // Univariate cold-start features (the paper's Section 4.4 makes no use of
  // the window study for new/semi-new vehicles).
  ColdStartOptions options;
  options.window = 0;

  const size_t num_train =
      static_cast<size_t>(0.7 * static_cast<double>(fleet.vehicles.size()));
  std::vector<FirstCycleData> corpus;
  for (size_t i = 0; i < num_train; ++i) {
    auto data = ExtractFirstCycle(fleet.vehicles[i].profile.id,
                                  fleet.vehicles[i].utilization,
                                  config.maintenance_interval_s, options);
    if (data.ok()) corpus.push_back(std::move(data).ValueOrDie());
  }

  struct NamedMeasure {
    const char* name;
    SimilarityMeasure measure;
  };
  const std::vector<NamedMeasure> measures = {
      {"avg-usage distance (paper)", AverageDistanceMeasure()},
      {"point-wise distance", nextmaint::core::PointwiseDistanceMeasure()},
      {"euclidean", EuclideanMeasure()},
      {"1 - correlation", CorrelationMeasure()},
  };

  PrintTableHeader("Ablation: similarity measure for RF_Sim (semi-new)",
                   {"measure", "E_MRE({1..29})", "matches"});
  for (const NamedMeasure& named : measures) {
    options.similarity = named.measure;
    std::vector<double> emre;
    std::string matches;
    for (size_t i = num_train; i < fleet.vehicles.size(); ++i) {
      const auto& u = fleet.vehicles[i].utilization;
      auto first_half =
          FirstHalfCycleUsage(u, config.maintenance_interval_s);
      if (!first_half.ok()) continue;
      auto sim = TrainSimilarityModel("RF", first_half.ValueOrDie(), corpus,
                                      options);
      if (!sim.ok()) continue;
      auto eval = EvaluateColdStartModel(*sim.ValueOrDie().model, u,
                                         config.maintenance_interval_s,
                                         options, /*compute_emre=*/true);
      if (!eval.ok()) continue;
      emre.push_back(eval.ValueOrDie().emre);
      if (!matches.empty()) matches += ",";
      matches += sim.ValueOrDie().match.id;
    }
    PrintTableRow({named.name, FormatDouble(Mean(emre), 2), matches});
  }
  return 0;
}
