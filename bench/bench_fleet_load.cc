// Fleet-serving daemon load benchmark: 100k vehicles of mixed traffic.
//
// ISSUE 7 acceptance: bench_fleet_load must complete a mixed read/append
// workload at 100k vehicles against an in-process FleetDaemon with
// non-zero read and append throughput, emitting BENCH_fleet_load.json.
//
// Phases, each timed separately:
//   0. checkpoint — mmap segmented vs legacy text checkpoint of the same
//                   fleet: save both formats, then time (and peak-RSS
//                   measure, via VmHWM with a clear_refs reset) a fresh
//                   LoadCheckpoint of each. The segmented load must be
//                   faster and no hungrier than the legacy parse — the
//                   ISSUE 10 out-of-core acceptance;
//   1. warm load  — pipelined LoadHistory waves across all shard queues;
//   2. refresh    — one Refresh barrier training every vehicle;
//   3. mixed      — 80% forecast reads / 20% single-day appends, reads
//                   answered lock-free from shard snapshots while appends
//                   flow through admission control, then a final barrier.
//
// Phase 0 runs first, on a fresh heap, so the two loads' RSS deltas
// reflect genuine allocation growth rather than allocator reuse of pages
// freed by the daemon phases.
//
// Latency percentiles come from the daemon's own SLO histograms
// (serve.daemon.{append,read}.seconds) via telemetry::Snapshot(); when the
// build compiles telemetry out the JSON reports them as 0 and flags
// "telemetry":false. Overloaded admissions are retried (and counted) so the
// bench measures steady-state throughput, not queue sizing.
//
// NEXTMAINT_FLEET_LOAD_VEHICLES overrides the fleet size (CI uses a
// smaller fleet; the quick-bench loop caps it harder). One JSON line goes
// to stdout and, when NEXTMAINT_BENCH_JSON names a file, to that file.

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <variant>
#include <vector>

#include "bench/harness.h"
#include "common/date.h"
#include "common/rng.h"
#include "common/telemetry.h"
#include "core/baseline.h"
#include "core/scheduler.h"
#include "serve/daemon.h"
#include "serve/protocol.h"
#include "storage/checkpoint_store.h"

namespace {

namespace serve = nextmaint::serve;
namespace protocol = nextmaint::serve::protocol;
using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long long value = std::strtoll(raw, &end, 10);
  if (end == raw || *end != '\0' || value <= 0) return fallback;
  return static_cast<int64_t>(value);
}

/// Percentile estimate from a histogram snapshot: the upper bound of the
/// bucket holding the q-th observation (snapshot max for the overflow
/// bucket). 0 when the histogram is empty or compiled out.
double Percentile(const nextmaint::telemetry::HistogramSnapshot& snapshot,
                  double q) {
  if (snapshot.count == 0) return 0.0;
  const uint64_t target = static_cast<uint64_t>(
      q * static_cast<double>(snapshot.count - 1));
  uint64_t seen = 0;
  for (size_t i = 0; i < snapshot.bucket_counts.size(); ++i) {
    seen += snapshot.bucket_counts[i];
    if (seen > target) {
      return i < snapshot.bounds.size() ? snapshot.bounds[i] : snapshot.max;
    }
  }
  return snapshot.max;
}

bool IsAck(const protocol::Response& response) {
  return std::holds_alternative<protocol::AckResponse>(response);
}

/// Phase 0 results: both checkpoint formats over the same fleet.
struct CheckpointBench {
  double save_seconds = 0.0;          // segmented SaveAll of the fleet
  double save_vehicle_seconds = 0.0;  // single-segment rewrite + commit
  double mmap_load_seconds = 0.0;
  double legacy_load_seconds = 0.0;
  uint64_t mmap_rss_delta = 0;    // peak-RSS growth during each load
  uint64_t legacy_rss_delta = 0;
  uint64_t checkpoint_bytes = 0;  // segmented file size
  bool rss_reset = false;  // both clear_refs resets were honoured
};

void CheckpointDie(const nextmaint::Status& status, const char* what) {
  if (status.ok()) return;
  std::fprintf(stderr, "checkpoint phase: %s: %s\n", what,
               status.ToString().c_str());
  std::exit(1);
}

/// Saves the same fleet as a segmented mmap checkpoint and as a legacy
/// text checkpoint, then times a fresh LoadCheckpoint of each with the
/// peak-RSS watermark reset in between. Models are one shared BL body —
/// the phase measures the load path, so only their count and framing
/// matter, not their contents.
CheckpointBench RunCheckpointBench(const std::vector<std::string>& ids,
                                   double tv, nextmaint::Date start) {
  namespace bench = nextmaint::bench;
  namespace core = nextmaint::core;
  namespace storage = nextmaint::storage;
  namespace fs = std::filesystem;
  CheckpointBench out;

  std::error_code ec;
  const fs::path dir = fs::temp_directory_path() /
                       ("nextmaint_fleet_load_" + std::to_string(::getpid()));
  fs::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "checkpoint phase: cannot create %s\n",
                 dir.string().c_str());
    std::exit(1);
  }
  const std::string mmap_path = (dir / "fleet.ckpt").string();
  const std::string legacy_path = (dir / "fleet_legacy.ckpt").string();

  std::ostringstream body;
  CheckpointDie(core::BaselinePredictor(15'000.0, 1.0 / tv).Save(body),
                "serialize BL body");

  std::vector<storage::VehicleRecord> records;
  records.reserve(ids.size());
  for (const std::string& id : ids) {
    records.push_back(storage::VehicleRecord{id, "BL", body.str()});
  }
  auto store_or = storage::CheckpointStore::Open(mmap_path);
  CheckpointDie(store_or.status(), "open segmented store");
  const Clock::time_point save_start = Clock::now();
  CheckpointDie(store_or.ValueOrDie()->SaveAll(std::move(records)).status(),
                "SaveAll");
  out.save_seconds = SecondsSince(save_start);
  out.checkpoint_bytes = static_cast<uint64_t>(fs::file_size(mmap_path, ec));

  auto make_fleet = [&]() {
    core::SchedulerOptions options;
    options.maintenance_interval_s = tv;
    options.window = 3;
    auto fleet = std::make_unique<core::FleetScheduler>(options);
    for (const std::string& id : ids) {
      CheckpointDie(fleet->RegisterVehicle(id, start), "register vehicle");
    }
    return fleet;
  };

  // Derive the legacy file from the segmented one: lazy-loaded segments
  // are copied out verbatim, so both files frame identical model bytes.
  auto writer = make_fleet();
  CheckpointDie(writer->LoadCheckpoint(mmap_path), "stage for legacy save");
  CheckpointDie(writer->SaveLegacyCheckpoint(legacy_path),
                "SaveLegacyCheckpoint");
  const Clock::time_point save_vehicle_start = Clock::now();
  CheckpointDie(writer->SaveVehicleCheckpoint(mmap_path, ids.front()),
                "SaveVehicleCheckpoint");
  out.save_vehicle_seconds = SecondsSince(save_vehicle_start);

  // `writer` stays alive across both measured loads so neither one
  // recycles heap pages the other just freed.
  auto mmap_fleet = make_fleet();
  const bool reset_mmap = bench::ResetPeakRss();
  const uint64_t mmap_rss_before = bench::PeakRssBytes();
  const Clock::time_point mmap_start = Clock::now();
  CheckpointDie(mmap_fleet->LoadCheckpoint(mmap_path), "mmap LoadCheckpoint");
  out.mmap_load_seconds = SecondsSince(mmap_start);
  const uint64_t mmap_rss_after = bench::PeakRssBytes();

  auto legacy_fleet = make_fleet();
  const bool reset_legacy = bench::ResetPeakRss();
  const uint64_t legacy_rss_before = bench::PeakRssBytes();
  const Clock::time_point legacy_start = Clock::now();
  CheckpointDie(legacy_fleet->LoadCheckpoint(legacy_path),
                "legacy LoadCheckpoint");
  out.legacy_load_seconds = SecondsSince(legacy_start);
  const uint64_t legacy_rss_after = bench::PeakRssBytes();

  out.rss_reset = reset_mmap && reset_legacy;
  out.mmap_rss_delta =
      mmap_rss_after > mmap_rss_before ? mmap_rss_after - mmap_rss_before : 0;
  out.legacy_rss_delta = legacy_rss_after > legacy_rss_before
                             ? legacy_rss_after - legacy_rss_before
                             : 0;

  fs::remove_all(dir, ec);
  return out;
}

}  // namespace

int main() {
  const int64_t vehicles = EnvInt("NEXTMAINT_FLEET_LOAD_VEHICLES", 100'000);
  const int shards = static_cast<int>(EnvInt("NEXTMAINT_FLEET_LOAD_SHARDS", 4));
  // ~15k seconds/day against a 300k-second cycle: every vehicle completes
  // two maintenance cycles in 45 days and trains its own model, the
  // per-vehicle (parallelizable) path.
  const int64_t days = 45;
  const double tv = 300'000.0;
  const size_t kWave = 1024;  // in-flight writes per pipelined wave

  nextmaint::telemetry::SetEnabled(true);

  const nextmaint::Date start =
      nextmaint::Date::FromYmd(2016, 1, 1).ValueOrDie();
  std::vector<std::string> ids;
  ids.reserve(static_cast<size_t>(vehicles));
  for (int64_t v = 0; v < vehicles; ++v) {
    ids.push_back("truck-" + std::to_string(v));
  }

  // Phase 0: checkpoint format comparison, before the daemon touches the
  // heap (see the file comment).
  const CheckpointBench ckpt = RunCheckpointBench(ids, tv, start);

  serve::DaemonOptions options;
  options.scheduler.maintenance_interval_s = tv;
  options.scheduler.window = 3;
  options.scheduler.algorithms = {"BL"};
  options.scheduler.unified_algorithm = "LR";
  options.scheduler.selection.tune = false;
  options.scheduler.selection.train_on_last29_only = true;
  options.scheduler.selection.resampling_shifts = 0;
  options.scheduler.num_threads = static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency() / 2));
  options.shards = shards;
  options.max_queue = 4096;
  options.batch_window = 0;

  serve::FleetDaemon daemon(std::move(options));
  if (!daemon.Start().ok()) {
    std::fprintf(stderr, "daemon failed to start\n");
    return 1;
  }

  nextmaint::Rng rng(20260808);

  // Phase 1: warm load. One LoadHistory per vehicle, pipelined in waves so
  // every shard queue stays busy without tripping admission control.
  uint64_t overloaded_retries = 0;
  const Clock::time_point load_start = Clock::now();
  {
    std::vector<std::future<protocol::Response>> wave;
    wave.reserve(kWave);
    auto drain = [&wave]() {
      for (auto& pending : wave) {
        if (!IsAck(pending.get())) {
          std::fprintf(stderr, "warm load rejected a LoadHistory\n");
          std::exit(1);
        }
      }
      wave.clear();
    };
    for (int64_t v = 0; v < vehicles; ++v) {
      protocol::LoadHistoryRequest request;
      request.vehicle_id = ids[static_cast<size_t>(v)];
      request.start_day = start;
      request.values.reserve(static_cast<size_t>(days));
      for (int64_t d = 0; d < days; ++d) {
        request.values.push_back(rng.Uniform(12'000.0, 18'000.0));
      }
      wave.push_back(daemon.SubmitAsync(std::move(request)));
      if (wave.size() >= kWave) drain();
    }
    drain();
  }
  const double load_seconds = SecondsSince(load_start);

  // Phase 2: one Refresh barrier trains the whole fleet.
  const Clock::time_point refresh_start = Clock::now();
  const protocol::Response refreshed =
      daemon.Execute(protocol::RefreshRequest{});
  const double refresh_seconds = SecondsSince(refresh_start);
  const auto* done = std::get_if<protocol::RefreshDoneResponse>(&refreshed);
  if (done == nullptr ||
      done->refreshed != static_cast<uint64_t>(vehicles)) {
    std::fprintf(stderr, "initial refresh did not train the full fleet\n");
    return 1;
  }

  // Phase 3: mixed traffic — 80% reads (4 vehicles per request, served
  // from shard snapshots) / 20% appends (queued, admission-controlled).
  // Appends extend each vehicle's series one day at a time so replayed
  // order stays valid; Overloaded answers are retried and counted.
  const int64_t mixed_ops = std::min<int64_t>(vehicles, 100'000);
  std::vector<uint32_t> appended(static_cast<size_t>(vehicles), 0);
  std::vector<std::future<protocol::Response>> pending_appends;
  pending_appends.reserve(kWave);
  uint64_t reads = 0;
  uint64_t read_vehicles = 0;
  uint64_t read_errors = 0;
  uint64_t appends = 0;
  auto drain_appends = [&pending_appends]() {
    for (auto& pending : pending_appends) {
      const protocol::Response response = pending.get();
      if (!IsAck(response) &&
          !std::holds_alternative<protocol::OverloadedResponse>(response)) {
        std::fprintf(stderr, "append failed during mixed phase\n");
        std::exit(1);
      }
    }
    pending_appends.clear();
  };
  const Clock::time_point mixed_start = Clock::now();
  for (int64_t op = 0; op < mixed_ops; ++op) {
    if (rng.UniformInt(uint64_t{5}) < 4) {
      protocol::GetForecastRequest request;
      for (int i = 0; i < 4; ++i) {
        request.vehicle_ids.push_back(
            ids[static_cast<size_t>(rng.UniformInt(
                static_cast<uint64_t>(vehicles)))]);
      }
      const protocol::Response response = daemon.Execute(std::move(request));
      const auto* batch = std::get_if<protocol::ForecastBatchResponse>(
          &response);
      if (batch == nullptr) {
        std::fprintf(stderr, "read failed during mixed phase\n");
        return 1;
      }
      for (const auto& entry : batch->entries) {
        read_vehicles += 1;
        if (entry.status_code != nextmaint::StatusCode::kOk) {
          read_errors += 1;
        }
      }
      reads += 1;
    } else {
      const size_t v = static_cast<size_t>(
          rng.UniformInt(static_cast<uint64_t>(vehicles)));
      protocol::AppendRequest request;
      request.vehicle_id = ids[v];
      request.day = start.AddDays(days + appended[v]);
      appended[v] += 1;
      request.seconds = rng.Uniform(12'000.0, 18'000.0);
      while (true) {
        std::future<protocol::Response> submitted =
            daemon.SubmitAsync(request);
        // Admission rejections resolve immediately; peek at ready futures
        // so the pipeline never stalls on in-flight ones.
        if (submitted.wait_for(std::chrono::seconds(0)) ==
            std::future_status::ready) {
          const protocol::Response response = submitted.get();
          if (std::holds_alternative<protocol::OverloadedResponse>(
                  response)) {
            overloaded_retries += 1;
            drain_appends();  // let the shard catch up, then retry
            continue;
          }
          if (!IsAck(response)) {
            std::fprintf(stderr, "append failed during mixed phase\n");
            return 1;
          }
          break;
        }
        pending_appends.push_back(std::move(submitted));
        break;
      }
      appends += 1;
      if (pending_appends.size() >= kWave) drain_appends();
    }
  }
  drain_appends();
  const protocol::Response final_refresh =
      daemon.Execute(protocol::RefreshRequest{});
  const double mixed_seconds = SecondsSince(mixed_start);
  if (!std::holds_alternative<protocol::RefreshDoneResponse>(final_refresh)) {
    std::fprintf(stderr, "final refresh failed\n");
    return 1;
  }

  const protocol::StatsResponse stats = daemon.Stats();
  daemon.Stop();

  const double read_throughput =
      mixed_seconds > 0.0 ? static_cast<double>(reads) / mixed_seconds : 0.0;
  const double append_throughput =
      mixed_seconds > 0.0 ? static_cast<double>(appends) / mixed_seconds
                          : 0.0;

  const nextmaint::telemetry::MetricsSnapshot metrics =
      nextmaint::telemetry::Snapshot();
  nextmaint::telemetry::HistogramSnapshot append_latency;
  nextmaint::telemetry::HistogramSnapshot read_latency;
  if (auto it = metrics.histograms.find("serve.daemon.append.seconds");
      it != metrics.histograms.end()) {
    append_latency = it->second;
  }
  if (auto it = metrics.histograms.find("serve.daemon.read.seconds");
      it != metrics.histograms.end()) {
    read_latency = it->second;
  }
  const bool telemetry_live =
      append_latency.count > 0 && read_latency.count > 0;

  char json[2048];
  std::snprintf(
      json, sizeof(json),
      "{\"bench\":\"fleet_load\",\"schema\":2,\"vehicles\":%lld,"
      "\"days\":%lld,\"shards\":%d,\"load_seconds\":%.3f,"
      "\"refresh_seconds\":%.3f,\"mixed_seconds\":%.3f,"
      "\"reads\":%llu,\"read_vehicles\":%llu,\"appends\":%llu,"
      "\"read_throughput\":%.1f,\"append_throughput\":%.1f,"
      "\"overloaded_retries\":%llu,\"overloaded_total\":%llu,"
      "\"append_p50_ms\":%.3f,\"append_p99_ms\":%.3f,"
      "\"read_p50_ms\":%.3f,\"read_p99_ms\":%.3f,\"telemetry\":%s,"
      "\"ckpt_bytes\":%llu,\"ckpt_save_seconds\":%.3f,"
      "\"ckpt_save_vehicle_ms\":%.3f,\"ckpt_mmap_load_seconds\":%.4f,"
      "\"ckpt_legacy_load_seconds\":%.4f,\"ckpt_mmap_rss_mb\":%.1f,"
      "\"ckpt_legacy_rss_mb\":%.1f,\"rss_reset\":%s,"
      "\"peak_rss_mb\":%.1f}",
      static_cast<long long>(vehicles), static_cast<long long>(days), shards,
      load_seconds, refresh_seconds, mixed_seconds,
      static_cast<unsigned long long>(reads),
      static_cast<unsigned long long>(read_vehicles),
      static_cast<unsigned long long>(appends), read_throughput,
      append_throughput,
      static_cast<unsigned long long>(overloaded_retries),
      static_cast<unsigned long long>(stats.overloaded),
      Percentile(append_latency, 0.5) * 1e3,
      Percentile(append_latency, 0.99) * 1e3,
      Percentile(read_latency, 0.5) * 1e3,
      Percentile(read_latency, 0.99) * 1e3,
      telemetry_live ? "true" : "false",
      static_cast<unsigned long long>(ckpt.checkpoint_bytes),
      ckpt.save_seconds, ckpt.save_vehicle_seconds * 1e3,
      ckpt.mmap_load_seconds, ckpt.legacy_load_seconds,
      static_cast<double>(ckpt.mmap_rss_delta) / (1024.0 * 1024.0),
      static_cast<double>(ckpt.legacy_rss_delta) / (1024.0 * 1024.0),
      ckpt.rss_reset ? "true" : "false",
      static_cast<double>(nextmaint::bench::PeakRssBytes()) /
          (1024.0 * 1024.0));
  std::printf("%s\n", json);

  if (const char* path = std::getenv("NEXTMAINT_BENCH_JSON")) {
    if (*path != '\0') {
      std::FILE* file = std::fopen(path, "w");
      if (file == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return 1;
      }
      std::fprintf(file, "%s\n", json);
      std::fclose(file);
    }
  }

  if (reads == 0 || appends == 0 || read_throughput <= 0.0 ||
      append_throughput <= 0.0) {
    std::fprintf(stderr, "mixed workload produced zero throughput\n");
    return 1;
  }
  if (read_errors != 0) {
    std::fprintf(stderr,
                 "%llu forecast reads came back non-OK after warm refresh\n",
                 static_cast<unsigned long long>(read_errors));
    return 1;
  }
  // The out-of-core acceptance only has teeth at scale; tiny CI fleets
  // would compare microsecond noise.
  if (vehicles >= 1000) {
    if (ckpt.mmap_load_seconds >= ckpt.legacy_load_seconds) {
      std::fprintf(stderr,
                   "segmented mmap load (%.4fs) was not faster than the "
                   "legacy text parse (%.4fs)\n",
                   ckpt.mmap_load_seconds, ckpt.legacy_load_seconds);
      return 1;
    }
    if (ckpt.rss_reset && ckpt.mmap_rss_delta > ckpt.legacy_rss_delta) {
      std::fprintf(stderr,
                   "segmented mmap load grew peak RSS by %llu bytes, more "
                   "than the legacy parse's %llu\n",
                   static_cast<unsigned long long>(ckpt.mmap_rss_delta),
                   static_cast<unsigned long long>(ckpt.legacy_rss_delta));
      return 1;
    }
  }
  return 0;
}
