// Serving-engine benchmark: incremental refresh vs from-scratch batch run.
//
// The deployment story behind src/serve/: a telematics collector delivers
// one day of utilization for one vehicle, and the fleet forecast must be
// brought up to date. The batch facade pays a full-fleet retrain for that
// single day; the ServingEngine retrains exactly the dirty vehicle. This
// bench measures both paths on the same fleet, verifies the forecasts are
// bit-identical, and emits a machine-readable JSON record (also written to
// the file named by NEXTMAINT_BENCH_JSON, for CI trend tracking).
//
// ISSUE 5 acceptance: incremental refresh after a single-day append on a
// >=50-vehicle fleet must be >=10x faster than the batch re-run.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "core/scheduler.h"
#include "serve/serving_engine.h"

namespace {

using nextmaint::bench::BenchConfig;
using nextmaint::bench::ConfigFromEnv;
using nextmaint::bench::MakeReferenceFleet;
using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

nextmaint::core::SchedulerOptions ServingOptions(const BenchConfig& config,
                                                 double tv) {
  nextmaint::core::SchedulerOptions options;
  options.maintenance_interval_s = tv;
  options.window = 3;
  options.algorithms = {"BL", "LR"};
  options.unified_algorithm = "LR";
  options.selection.tune = false;
  options.selection.train_on_last29_only = true;
  options.selection.resampling_shifts = 0;
  options.num_threads = config.num_threads;
  return options;
}

bool ForecastsIdentical(
    const std::vector<nextmaint::core::MaintenanceForecast>& a,
    const std::vector<nextmaint::core::MaintenanceForecast>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].vehicle_id != b[i].vehicle_id ||
        a[i].model_name != b[i].model_name ||
        a[i].days_left != b[i].days_left ||
        a[i].usage_seconds_left != b[i].usage_seconds_left ||
        !(a[i].predicted_date == b[i].predicted_date)) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  BenchConfig config = ConfigFromEnv();
  // The serving scenario: a mid-size fleet with short cycles so every
  // vehicle is old and carries a per-vehicle model (the expensive case for
  // a batch re-run). Kept small enough for the CI quick-bench loop.
  config.num_vehicles = 50;
  config.num_days = 500;
  config.maintenance_interval_s = 500'000.0;
  const double tv = config.maintenance_interval_s;
  const nextmaint::telem::Fleet fleet = MakeReferenceFleet(config);

  const nextmaint::core::SchedulerOptions options =
      ServingOptions(config, tv);

  // Warm-start the engine on everything but each vehicle's last day.
  nextmaint::serve::ServingEngine engine(options);
  for (const auto& vehicle : fleet.vehicles) {
    const auto& series = vehicle.utilization;
    if (!engine.Register(vehicle.profile.id, series.start_date()).ok() ||
        !engine
             .LoadHistory(vehicle.profile.id,
                          series.Slice(0, series.size() - 1))
             .ok()) {
      std::fprintf(stderr, "warm-start failed for %s\n",
                   vehicle.profile.id.c_str());
      return 1;
    }
  }
  if (!engine.RefreshForecasts().ok()) {
    std::fprintf(stderr, "warm-start refresh failed\n");
    return 1;
  }

  // Deliver the held-out day for a few vehicles, one at a time, timing the
  // incremental refresh each delivery triggers.
  const size_t kDeliveries = 3;
  double incremental_total = 0.0;
  for (size_t v = 0; v < kDeliveries; ++v) {
    const auto& vehicle = fleet.vehicles[v];
    const auto& series = vehicle.utilization;
    const size_t last = series.size() - 1;
    if (!engine
             .Append(vehicle.profile.id,
                     series.start_date().AddDays(static_cast<int64_t>(last)),
                     series[last])
             .ok()) {
      std::fprintf(stderr, "append failed for %s\n",
                   vehicle.profile.id.c_str());
      return 1;
    }
    const Clock::time_point start = Clock::now();
    const auto stats = engine.RefreshForecasts();
    const double elapsed = SecondsSince(start);
    if (!stats.ok() || stats.ValueOrDie().refreshed != 1) {
      std::fprintf(stderr, "incremental refresh did not isolate the dirty "
                           "vehicle\n");
      return 1;
    }
    incremental_total += elapsed;
  }
  const double incremental_seconds = incremental_total / kDeliveries;

  // The from-scratch batch run over the exact same data.
  nextmaint::core::FleetScheduler batch(options);
  for (size_t v = 0; v < fleet.vehicles.size(); ++v) {
    const auto& vehicle = fleet.vehicles[v];
    const auto& series = vehicle.utilization;
    const size_t days = v < kDeliveries ? series.size() : series.size() - 1;
    if (!batch.RegisterVehicle(vehicle.profile.id, series.start_date())
             .ok() ||
        !batch.IngestSeries(vehicle.profile.id, series.Slice(0, days)).ok()) {
      std::fprintf(stderr, "batch ingest failed for %s\n",
                   vehicle.profile.id.c_str());
      return 1;
    }
  }
  const Clock::time_point batch_start = Clock::now();
  const bool batch_ok = batch.TrainAll().ok();
  const auto batch_forecasts = batch.FleetForecast();
  const double batch_seconds = SecondsSince(batch_start);
  if (!batch_ok || !batch_forecasts.ok()) {
    std::fprintf(stderr, "batch run failed\n");
    return 1;
  }

  const bool identical = ForecastsIdentical(
      engine.Snapshot()->forecasts, batch_forecasts.ValueOrDie());
  const double speedup =
      incremental_seconds > 0.0 ? batch_seconds / incremental_seconds : 0.0;

  char json[512];
  std::snprintf(
      json, sizeof(json),
      "{\"bench\":\"serving\",\"schema\":1,\"vehicles\":%d,\"days\":%d,"
      "\"threads\":%d,\"deliveries\":%zu,\"batch_seconds\":%.6f,"
      "\"incremental_seconds\":%.6f,\"speedup\":%.2f,"
      "\"forecasts_identical\":%s}",
      config.num_vehicles, config.num_days, config.num_threads, kDeliveries,
      batch_seconds, incremental_seconds, speedup,
      identical ? "true" : "false");
  std::printf("%s\n", json);

  if (const char* path = std::getenv("NEXTMAINT_BENCH_JSON")) {
    if (*path != '\0') {
      std::FILE* file = std::fopen(path, "w");
      if (file == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return 1;
      }
      std::fprintf(file, "%s\n", json);
      std::fclose(file);
    }
  }

  if (!identical) {
    std::fprintf(stderr,
                 "incremental and batch forecasts diverged — the serving "
                 "engine broke bit-identity\n");
    return 1;
  }
  return 0;
}
