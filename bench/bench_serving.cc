// Serving-engine benchmark: incremental refresh vs from-scratch batch run.
//
// The deployment story behind src/serve/: a telematics collector delivers
// one day of utilization for one vehicle, and the fleet forecast must be
// brought up to date. The batch facade pays a full-fleet retrain for that
// single day; the ServingEngine retrains exactly the dirty vehicle. This
// bench measures both paths on the same fleet, verifies the forecasts are
// bit-identical, and emits a machine-readable JSON record (also written to
// the file named by NEXTMAINT_BENCH_JSON, for CI trend tracking).
//
// ISSUE 5 acceptance: incremental refresh after a single-day append on a
// >=50-vehicle fleet must be >=10x faster than the batch re-run.
//
// Warm mode (NEXTMAINT_BENCH_WARM=1, ISSUE 9): reruns an append-heavy
// schedule on a tree-model fleet twice — exact cold retrains vs
// SchedulerOptions::warm_start resumes — and measures both the refresh
// latency and the forecast divergence the resume trades for it. The E_MRE
// style divergence (mean relative |days_left| gap vs the exact engine)
// must stay within the bound documented in docs/warm-start.md; the bench
// exits non-zero on a violation. The record lands in the JSON named by
// NEXTMAINT_BENCH_WARM_JSON.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "core/scheduler.h"
#include "serve/serving_engine.h"

namespace {

using nextmaint::bench::BenchConfig;
using nextmaint::bench::ConfigFromEnv;
using nextmaint::bench::MakeReferenceFleet;
using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

nextmaint::core::SchedulerOptions ServingOptions(const BenchConfig& config,
                                                 double tv) {
  nextmaint::core::SchedulerOptions options;
  options.maintenance_interval_s = tv;
  options.window = 3;
  options.algorithms = {"BL", "LR"};
  options.unified_algorithm = "LR";
  options.selection.tune = false;
  options.selection.train_on_last29_only = true;
  options.selection.resampling_shifts = 0;
  options.num_threads = config.num_threads;
  return options;
}

bool ForecastsIdentical(
    const std::vector<nextmaint::core::MaintenanceForecast>& a,
    const std::vector<nextmaint::core::MaintenanceForecast>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].vehicle_id != b[i].vehicle_id ||
        a[i].model_name != b[i].model_name ||
        a[i].days_left != b[i].days_left ||
        a[i].usage_seconds_left != b[i].usage_seconds_left ||
        !(a[i].predicted_date == b[i].predicted_date)) {
      return false;
    }
  }
  return true;
}

/// Tree-model serving options for the warm benchmark: RF per vehicle (the
/// resumable ensemble), XGB as the unified cold-start model, trimmed for
/// bench speed.
nextmaint::core::SchedulerOptions WarmBenchOptions(const BenchConfig& config,
                                                   double tv,
                                                   bool warm_start) {
  nextmaint::core::SchedulerOptions options;
  options.maintenance_interval_s = tv;
  options.window = 3;
  options.algorithms = {"RF"};
  options.unified_algorithm = "XGB";
  options.selection.tune = false;
  options.selection.train_on_last29_only = true;
  options.selection.resampling_shifts = 0;
  options.cold_start.model_params = {{"num_estimators", 20},
                                     {"num_iterations", 12},
                                     {"max_depth", 5},
                                     {"max_bins", 128},
                                     {"min_samples_leaf", 2}};
  options.num_threads = config.num_threads;
  options.warm_start = warm_start;
  options.warm_start_rounds = 4;
  return options;
}

/// Ingests everything but the trailing `held_out` days of each vehicle and
/// publishes the initial snapshot. Returns false on any failure.
bool SeedEngine(nextmaint::serve::ServingEngine& engine,
                const nextmaint::telem::Fleet& fleet, size_t held_out) {
  for (const auto& vehicle : fleet.vehicles) {
    const auto& series = vehicle.utilization;
    if (!engine.Register(vehicle.profile.id, series.start_date()).ok() ||
        !engine
             .LoadHistory(vehicle.profile.id,
                          series.Slice(0, series.size() - held_out))
             .ok()) {
      return false;
    }
  }
  return engine.RefreshForecasts().ok();
}

/// The append-heavy replay: delivers the held-out days to every vehicle in
/// `batches` batches, refreshing after each. Returns the summed refresh
/// seconds, or a negative value on failure; accumulates warm resumes into
/// `warm_started`.
double ReplayAppends(nextmaint::serve::ServingEngine& engine,
                     const nextmaint::telem::Fleet& fleet, size_t held_out,
                     size_t batches, size_t* warm_started) {
  const size_t per_batch = held_out / batches;
  double refresh_total = 0.0;
  for (size_t batch = 0; batch < batches; ++batch) {
    for (const auto& vehicle : fleet.vehicles) {
      const auto& series = vehicle.utilization;
      const size_t base = series.size() - held_out + batch * per_batch;
      for (size_t d = base; d < base + per_batch; ++d) {
        if (!engine
                 .Append(vehicle.profile.id,
                         series.start_date().AddDays(static_cast<int64_t>(d)),
                         series[d])
                 .ok()) {
          return -1.0;
        }
      }
    }
    const Clock::time_point start = Clock::now();
    const auto stats = engine.RefreshForecasts();
    refresh_total += SecondsSince(start);
    if (!stats.ok()) return -1.0;
    *warm_started += stats.ValueOrDie().warm_started;
  }
  return refresh_total;
}

/// E_MRE-style divergence between the warm and the exact fleet snapshots:
/// mean relative |days_left| gap, with a 1-day floor on the denominator.
double ForecastDivergence(
    const std::vector<nextmaint::core::MaintenanceForecast>& warm,
    const std::vector<nextmaint::core::MaintenanceForecast>& exact) {
  // Joined by vehicle_id: a vehicle the non-strict engines degraded
  // differently (e.g. a failed per-vehicle selection on one side) drops
  // out of the mean instead of poisoning it.
  std::map<std::string, double> exact_days;
  for (const auto& forecast : exact) {
    exact_days[forecast.vehicle_id] = forecast.days_left;
  }
  double total = 0.0;
  size_t joined = 0;
  for (const auto& forecast : warm) {
    const auto it = exact_days.find(forecast.vehicle_id);
    if (it == exact_days.end()) continue;
    total += std::fabs(forecast.days_left - it->second) /
             std::max(std::fabs(it->second), 1.0);
    ++joined;
  }
  if (joined == 0) return -1.0;
  return total / static_cast<double>(joined);
}

/// The documented warm-start divergence bound (docs/warm-start.md). The
/// warm_start_test.cc differential harness pins the same value at the
/// model level.
constexpr double kDivergenceBound = 0.25;

int RunWarmBench(const BenchConfig& config, double tv,
                 const nextmaint::telem::Fleet& fleet) {
  const size_t kHeldOut = 6;
  const size_t kBatches = 3;

  nextmaint::serve::ServingEngine exact(
      WarmBenchOptions(config, tv, /*warm_start=*/false));
  nextmaint::serve::ServingEngine warm(
      WarmBenchOptions(config, tv, /*warm_start=*/true));
  if (!SeedEngine(exact, fleet, kHeldOut) ||
      !SeedEngine(warm, fleet, kHeldOut)) {
    std::fprintf(stderr, "warm bench seeding failed\n");
    return 1;
  }

  size_t cold_resumes = 0;
  size_t warm_resumes = 0;
  const double cold_seconds =
      ReplayAppends(exact, fleet, kHeldOut, kBatches, &cold_resumes);
  const double warm_seconds =
      ReplayAppends(warm, fleet, kHeldOut, kBatches, &warm_resumes);
  if (cold_seconds < 0.0 || warm_seconds < 0.0) {
    std::fprintf(stderr, "warm bench replay failed\n");
    return 1;
  }

  const double divergence = ForecastDivergence(warm.Snapshot()->forecasts,
                                               exact.Snapshot()->forecasts);
  const double speedup =
      warm_seconds > 0.0 ? cold_seconds / warm_seconds : 0.0;
  const bool within_bound =
      divergence >= 0.0 && divergence <= kDivergenceBound;

  char json[512];
  std::snprintf(
      json, sizeof(json),
      "{\"bench\":\"warm_start\",\"schema\":1,\"vehicles\":%d,\"days\":%d,"
      "\"threads\":%d,\"append_days\":%zu,\"refreshes\":%zu,"
      "\"cold_refresh_seconds\":%.6f,\"warm_refresh_seconds\":%.6f,"
      "\"speedup\":%.2f,\"warm_resumes\":%zu,\"divergence\":%.6f,"
      "\"bound\":%.2f,\"within_bound\":%s}",
      config.num_vehicles, config.num_days, config.num_threads, kHeldOut,
      kBatches, cold_seconds, warm_seconds, speedup, warm_resumes,
      divergence, kDivergenceBound, within_bound ? "true" : "false");
  std::printf("%s\n", json);

  if (const char* path = std::getenv("NEXTMAINT_BENCH_WARM_JSON")) {
    if (*path != '\0') {
      std::FILE* file = std::fopen(path, "w");
      if (file == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return 1;
      }
      std::fprintf(file, "%s\n", json);
      std::fclose(file);
    }
  }

  if (cold_resumes != 0) {
    std::fprintf(stderr, "exact engine reported warm resumes\n");
    return 1;
  }
  if (warm_resumes == 0) {
    std::fprintf(stderr, "warm engine never resumed a model — the "
                         "append-heavy schedule should make every old "
                         "vehicle eligible\n");
    return 1;
  }
  if (!within_bound) {
    std::fprintf(stderr,
                 "warm-start divergence %.6f exceeds the documented bound "
                 "%.2f (docs/warm-start.md)\n",
                 divergence, kDivergenceBound);
    return 1;
  }
  return 0;
}

}  // namespace

int main() {
  BenchConfig config = ConfigFromEnv();
  // The serving scenario: a mid-size fleet with short cycles so every
  // vehicle is old and carries a per-vehicle model (the expensive case for
  // a batch re-run). Kept small enough for the CI quick-bench loop.
  config.num_vehicles = 50;
  config.num_days = 500;
  config.maintenance_interval_s = 500'000.0;
  const double tv = config.maintenance_interval_s;
  const nextmaint::telem::Fleet fleet = MakeReferenceFleet(config);

  // Warm mode replaces the cold bit-identity bench with the warm-vs-exact
  // divergence bench (docs/warm-start.md); CI runs both.
  if (const char* mode = std::getenv("NEXTMAINT_BENCH_WARM")) {
    if (*mode != '\0' && *mode != '0') return RunWarmBench(config, tv, fleet);
  }

  const nextmaint::core::SchedulerOptions options =
      ServingOptions(config, tv);

  // Warm-start the engine on everything but each vehicle's last day.
  nextmaint::serve::ServingEngine engine(options);
  for (const auto& vehicle : fleet.vehicles) {
    const auto& series = vehicle.utilization;
    if (!engine.Register(vehicle.profile.id, series.start_date()).ok() ||
        !engine
             .LoadHistory(vehicle.profile.id,
                          series.Slice(0, series.size() - 1))
             .ok()) {
      std::fprintf(stderr, "warm-start failed for %s\n",
                   vehicle.profile.id.c_str());
      return 1;
    }
  }
  if (!engine.RefreshForecasts().ok()) {
    std::fprintf(stderr, "warm-start refresh failed\n");
    return 1;
  }

  // Deliver the held-out day for a few vehicles, one at a time, timing the
  // incremental refresh each delivery triggers.
  const size_t kDeliveries = 3;
  double incremental_total = 0.0;
  for (size_t v = 0; v < kDeliveries; ++v) {
    const auto& vehicle = fleet.vehicles[v];
    const auto& series = vehicle.utilization;
    const size_t last = series.size() - 1;
    if (!engine
             .Append(vehicle.profile.id,
                     series.start_date().AddDays(static_cast<int64_t>(last)),
                     series[last])
             .ok()) {
      std::fprintf(stderr, "append failed for %s\n",
                   vehicle.profile.id.c_str());
      return 1;
    }
    const Clock::time_point start = Clock::now();
    const auto stats = engine.RefreshForecasts();
    const double elapsed = SecondsSince(start);
    if (!stats.ok() || stats.ValueOrDie().refreshed != 1) {
      std::fprintf(stderr, "incremental refresh did not isolate the dirty "
                           "vehicle\n");
      return 1;
    }
    incremental_total += elapsed;
  }
  const double incremental_seconds = incremental_total / kDeliveries;

  // The from-scratch batch run over the exact same data.
  nextmaint::core::FleetScheduler batch(options);
  for (size_t v = 0; v < fleet.vehicles.size(); ++v) {
    const auto& vehicle = fleet.vehicles[v];
    const auto& series = vehicle.utilization;
    const size_t days = v < kDeliveries ? series.size() : series.size() - 1;
    if (!batch.RegisterVehicle(vehicle.profile.id, series.start_date())
             .ok() ||
        !batch.IngestSeries(vehicle.profile.id, series.Slice(0, days)).ok()) {
      std::fprintf(stderr, "batch ingest failed for %s\n",
                   vehicle.profile.id.c_str());
      return 1;
    }
  }
  const Clock::time_point batch_start = Clock::now();
  const bool batch_ok = batch.TrainAll().ok();
  const auto batch_forecasts = batch.FleetForecast();
  const double batch_seconds = SecondsSince(batch_start);
  if (!batch_ok || !batch_forecasts.ok()) {
    std::fprintf(stderr, "batch run failed\n");
    return 1;
  }

  const bool identical = ForecastsIdentical(
      engine.Snapshot()->forecasts, batch_forecasts.ValueOrDie());
  const double speedup =
      incremental_seconds > 0.0 ? batch_seconds / incremental_seconds : 0.0;

  char json[512];
  std::snprintf(
      json, sizeof(json),
      "{\"bench\":\"serving\",\"schema\":1,\"vehicles\":%d,\"days\":%d,"
      "\"threads\":%d,\"deliveries\":%zu,\"batch_seconds\":%.6f,"
      "\"incremental_seconds\":%.6f,\"speedup\":%.2f,"
      "\"forecasts_identical\":%s}",
      config.num_vehicles, config.num_days, config.num_threads, kDeliveries,
      batch_seconds, incremental_seconds, speedup,
      identical ? "true" : "false");
  std::printf("%s\n", json);

  if (const char* path = std::getenv("NEXTMAINT_BENCH_JSON")) {
    if (*path != '\0') {
      std::FILE* file = std::fopen(path, "w");
      if (file == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return 1;
      }
      std::fprintf(file, "%s\n", json);
      std::fclose(file);
    }
  }

  if (!identical) {
    std::fprintf(stderr,
                 "incremental and batch forecasts diverged — the serving "
                 "engine broke bit-identity\n");
    return 1;
  }
  return 0;
}
