#ifndef NEXTMAINT_BENCH_HARNESS_H_
#define NEXTMAINT_BENCH_HARNESS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/telemetry.h"
#include "core/old_vehicle.h"
#include "telematics/fleet.h"

/// \file harness.h
/// Shared setup for the experiment benches: the reference fleet (the
/// synthetic stand-in for the paper's 24-vehicle / 4-year dataset), helpers
/// to evaluate an algorithm across every old vehicle, and table printing.
///
/// Every bench honours three environment variables:
///   NEXTMAINT_BENCH_FULL=1     run the paper-fidelity configuration (grid
///                              search + full resampling; minutes per table)
///   NEXTMAINT_BENCH_SEED=N     override the fleet seed
///   NEXTMAINT_BENCH_THREADS=N  train on N threads (default 1 so timings
///                              stay comparable across runs; results are
///                              bit-identical at any N)

namespace nextmaint {
namespace bench {

/// Configuration of a reproduction run.
struct BenchConfig {
  int num_vehicles = 24;
  int num_days = 1735;  // Jan 2015 .. Sep 2019
  double maintenance_interval_s = 2'000'000.0;
  uint64_t seed = 20150101;
  /// Grid-search tuning on/off (the FULL env flag turns it on).
  bool tune = false;
  int grid_budget = 0;
  int resampling_shifts = 2;
  /// Threads for model training (process-wide default pool size). 1 keeps
  /// the timing columns comparable with the paper's serial runs.
  int num_threads = 1;
};

/// Reads the environment and builds the effective config. Also applies
/// `num_threads` to the process-wide thread pool so every model trained by
/// the bench inherits it.
BenchConfig ConfigFromEnv();

/// Simulates the reference fleet for a config (aborts on failure: benches
/// have no meaningful degraded mode).
telem::Fleet MakeReferenceFleet(const BenchConfig& config);

/// Indices of the vehicles categorized as old under the config's T_v.
std::vector<size_t> OldVehicleIndices(const telem::Fleet& fleet,
                                      double maintenance_interval_s);

/// Mean E_MRE / E_Global of one algorithm across a set of vehicles, plus
/// bookkeeping about skipped vehicles and training time.
struct FleetEvaluation {
  std::string algorithm;
  double mean_emre = 0.0;
  double mean_eglobal = 0.0;
  double mean_train_seconds = 0.0;
  size_t vehicles_evaluated = 0;
  size_t vehicles_skipped = 0;
  /// One evaluation per vehicle that succeeded, in fleet order.
  std::vector<core::VehicleEvaluation> per_vehicle;
};

/// Evaluates `algorithm` on every listed vehicle with the given options,
/// averaging E_MRE/E_Global across vehicles (the paper's aggregation).
/// Vehicles that cannot be evaluated (no completed test cycle) are counted
/// as skipped — with the reference fleet there should be none.
Result<FleetEvaluation> EvaluateOnFleet(const std::string& algorithm,
                                        const telem::Fleet& fleet,
                                        const std::vector<size_t>& vehicles,
                                        const core::OldVehicleOptions& options);

/// The five algorithms of the paper, in table order.
const std::vector<std::string>& PaperAlgorithms();

/// Prints a markdown-ish table row; helpers keep bench outputs uniform.
void PrintTableHeader(const std::string& title,
                      const std::vector<std::string>& columns);
void PrintTableRow(const std::vector<std::string>& cells);

/// Peak resident-set size of this process in bytes (Linux VmHWM from
/// /proc/self/status). 0 when the value cannot be read (non-Linux, proc
/// unmounted); benches then report their RSS fields as 0 rather than
/// failing.
uint64_t PeakRssBytes();

/// Resets the kernel's peak-RSS watermark to the *current* RSS by writing
/// "5" to /proc/self/clear_refs, so a subsequent PeakRssBytes() reflects
/// only growth since the reset. Returns false when the kernel refuses the
/// write (old kernels, restricted procfs) — callers should then flag their
/// RSS deltas as unreset rather than asserting on them.
bool ResetPeakRss();

/// RAII metrics report for one figure/table run: snapshots the registry at
/// construction and, when telemetry is enabled (NEXTMAINT_METRICS=1),
/// prints the delta accumulated during the run at destruction. With
/// telemetry disabled it is a no-op, so bench timings are unaffected.
class MetricsReport {
 public:
  explicit MetricsReport(std::string title);
  ~MetricsReport();

  MetricsReport(const MetricsReport&) = delete;
  MetricsReport& operator=(const MetricsReport&) = delete;

 private:
  std::string title_;
  telemetry::MetricsSnapshot before_;
};

}  // namespace bench
}  // namespace nextmaint

#endif  // NEXTMAINT_BENCH_HARNESS_H_
