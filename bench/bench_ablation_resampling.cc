// Ablation: the time-shift re-sampling augmentation (Section 4).
//
// The paper argues that, because the actual maintenance instants are
// unknown, the time reference can be shifted to multiply training records
// "without introducing errors". This bench quantifies the effect: mean
// E_MRE({1..29}) across old vehicles as a function of the number of random
// shifts added to the training data.

#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "common/strings.h"

using nextmaint::FormatDouble;
using nextmaint::bench::BenchConfig;
using nextmaint::bench::ConfigFromEnv;
using nextmaint::bench::EvaluateOnFleet;
using nextmaint::bench::MakeReferenceFleet;
using nextmaint::bench::OldVehicleIndices;
using nextmaint::bench::PrintTableHeader;
using nextmaint::bench::PrintTableRow;

int main() {
  const BenchConfig config = ConfigFromEnv();
  const nextmaint::telem::Fleet fleet = MakeReferenceFleet(config);
  const std::vector<size_t> old_vehicles =
      OldVehicleIndices(fleet, config.maintenance_interval_s);

  nextmaint::core::OldVehicleOptions options;
  options.window = 6;
  options.train_on_last29_only = true;
  options.tune = false;  // isolate the augmentation effect from tuning

  const std::vector<int> shift_counts = {0, 1, 2, 5, 10};
  PrintTableHeader("Ablation: time-shift re-sampling, E_MRE({1..29})",
                   {"shifts", "RF", "XGB", "LR"});
  for (int shifts : shift_counts) {
    options.resampling_shifts = shifts;
    std::vector<std::string> cells = {std::to_string(shifts)};
    for (const char* algorithm : {"RF", "XGB", "LR"}) {
      auto result = EvaluateOnFleet(algorithm, fleet, old_vehicles, options);
      if (!result.ok()) {
        std::fprintf(stderr, "%s failed: %s\n", algorithm,
                     result.status().ToString().c_str());
        return 1;
      }
      cells.push_back(FormatDouble(result.ValueOrDie().mean_emre, 2));
    }
    PrintTableRow(cells);
  }
  return 0;
}
