// Extension bench: contextual (meteorological) enrichment.
//
// The paper's conclusions: "we plan to enrich regression models using
// contextual information (e.g., meteorological data, fleet movements)".
// This bench quantifies that plan on a weather-coupled fleet: daily
// utilization is suppressed by rain/frost, and the models optionally
// receive the next k days of weather workability as features (weather
// forecasts are known ahead of time, unlike future usage).
//
// Expected: on the weather-coupled fleet, RF/XGB with forecast features
// beat the same models without them; the effect grows with the forecast
// horizon up to the E_MRE evaluation window.

#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "common/statistics.h"
#include "common/strings.h"
#include "telematics/weather.h"

using nextmaint::FormatDouble;
using nextmaint::bench::BenchConfig;
using nextmaint::bench::ConfigFromEnv;
using nextmaint::bench::EvaluateOnFleet;
using nextmaint::bench::OldVehicleIndices;
using nextmaint::bench::PrintTableHeader;
using nextmaint::bench::PrintTableRow;

int main() {
  BenchConfig config = ConfigFromEnv();

  // A rainy, frosty site so the context genuinely matters.
  nextmaint::telem::FleetOptions fleet_options;
  fleet_options.num_vehicles = config.num_vehicles;
  fleet_options.num_days = config.num_days;
  fleet_options.maintenance_interval_s = config.maintenance_interval_s;
  fleet_options.seed = config.seed;
  fleet_options.start_date =
      nextmaint::Date::FromYmd(2015, 1, 1).ValueOrDie();
  fleet_options.with_weather = true;
  fleet_options.weather.wet_probability = 0.45;
  fleet_options.weather.mean_rain_mm = 14.0;
  fleet_options.weather.mean_temperature_c = 6.0;
  fleet_options.weather.seasonal_swing_c = 14.0;

  auto fleet_result = nextmaint::telem::SimulateFleet(fleet_options);
  if (!fleet_result.ok()) {
    std::fprintf(stderr, "simulation failed: %s\n",
                 fleet_result.status().ToString().c_str());
    return 1;
  }
  const nextmaint::telem::Fleet fleet = std::move(fleet_result).ValueOrDie();
  const std::vector<double> workability =
      fleet.weather.WorkabilityFactors();
  const std::vector<size_t> old_vehicles =
      OldVehicleIndices(fleet, config.maintenance_interval_s);
  std::printf("weather-coupled fleet: %zu old vehicles; mean workability "
              "%.2f\n",
              old_vehicles.size(),
              nextmaint::Mean(workability));

  nextmaint::core::OldVehicleOptions options;
  options.window = 6;
  options.train_on_last29_only = true;
  options.tune = config.tune;
  options.grid_budget = config.grid_budget;
  options.resampling_shifts = config.resampling_shifts;

  PrintTableHeader(
      "Extension: weather-forecast features, E_MRE({1..29})",
      {"forecast days", "RF", "XGB", "LR"});
  for (int forecast_days : {0, 3, 7, 14}) {
    options.context = forecast_days > 0 ? &workability : nullptr;
    options.context_forecast_days = forecast_days;
    std::vector<std::string> cells = {std::to_string(forecast_days)};
    for (const char* algorithm : {"RF", "XGB", "LR"}) {
      auto result = EvaluateOnFleet(algorithm, fleet, old_vehicles, options);
      if (!result.ok()) {
        std::fprintf(stderr, "%s failed: %s\n", algorithm,
                     result.status().ToString().c_str());
        return 1;
      }
      cells.push_back(FormatDouble(result.ValueOrDie().mean_emre, 2));
    }
    PrintTableRow(cells);
  }
  std::printf(
      "\nforecast days = 0 is the paper's weather-blind configuration.\n");
  return 0;
}
