// Reproduces Table 3: results for semi-new and new vehicles.
//
// Protocol (Section 4.4): 70% of the vehicles (17 of 24) contribute their
// complete first maintenance cycle as training data; the remaining 30% (7)
// are test vehicles. Semi-new strategies: BL on the first half-cycle
// average, Model_Sim (most similar training vehicle by point-wise average
// distance over the first half cycle) and Model_Uni (all training vehicles
// merged), evaluated by E_MRE({1..29}) over the first cycle. New-vehicle
// strategies: only the Uni models apply, evaluated by E_Global.
//
// Paper reference: BL 34.9 (much worse than everything else); RF_Sim best
// (2.9) just ahead of RF_Uni (3.2); XGB_Uni best for new vehicles (17.9).

#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "common/statistics.h"
#include "common/strings.h"
#include "core/cold_start.h"

using nextmaint::FormatDouble;
using nextmaint::Mean;
using nextmaint::bench::BenchConfig;
using nextmaint::bench::ConfigFromEnv;
using nextmaint::bench::MakeReferenceFleet;
using nextmaint::bench::PrintTableHeader;
using nextmaint::bench::PrintTableRow;
using nextmaint::core::ColdStartOptions;
using nextmaint::core::EvaluateColdStartModel;
using nextmaint::core::ExtractFirstCycle;
using nextmaint::core::FirstCycleData;
using nextmaint::core::FirstHalfCycleUsage;
using nextmaint::core::MakeSemiNewBaseline;
using nextmaint::core::TrainSimilarityModel;
using nextmaint::core::TrainUnifiedModel;

int main() {
  const BenchConfig config = ConfigFromEnv();
  const nextmaint::telem::Fleet fleet = MakeReferenceFleet(config);

  // Univariate cold-start features (the paper's Section 4.4 makes no use of
  // the window study for new/semi-new vehicles).
  ColdStartOptions options;
  options.window = 0;
  // Larger ensembles for the cross-vehicle models: the merged first-cycle
  // corpus is ~20x a single vehicle's data.
  options.model_params = {{"num_iterations", 300}, {"num_estimators", 200}};

  // 70/30 vehicle split (first 17 train / last 7 test, matching the paper's
  // counts; the vehicles rotate over archetypes so both sides are mixed).
  const size_t num_train =
      static_cast<size_t>(0.7 * static_cast<double>(fleet.vehicles.size()));
  std::vector<FirstCycleData> corpus;
  for (size_t i = 0; i < num_train; ++i) {
    const auto& vehicle = fleet.vehicles[i];
    auto data = ExtractFirstCycle(vehicle.profile.id, vehicle.utilization,
                                  config.maintenance_interval_s, options);
    if (data.ok()) corpus.push_back(std::move(data).ValueOrDie());
  }
  std::printf("training corpus: %zu first cycles (of %zu vehicles)\n",
              corpus.size(), num_train);

  const std::vector<std::string> ml_algorithms = {"LR", "LSVR", "RF", "XGB"};

  struct RowAccum {
    std::vector<double> seminew_emre;
    std::vector<double> new_eglobal;
  };
  RowAccum bl;
  std::vector<RowAccum> sim(ml_algorithms.size());
  std::vector<RowAccum> uni(ml_algorithms.size());

  // Unified models are shared across test vehicles: train once.
  std::vector<std::unique_ptr<nextmaint::ml::Regressor>> uni_models;
  for (const std::string& algorithm : ml_algorithms) {
    auto model = TrainUnifiedModel(algorithm, corpus, options);
    if (!model.ok()) {
      std::fprintf(stderr, "Uni %s failed: %s\n", algorithm.c_str(),
                   model.status().ToString().c_str());
      return 1;
    }
    uni_models.push_back(std::move(model).ValueOrDie());
  }

  size_t test_vehicles = 0;
  for (size_t i = num_train; i < fleet.vehicles.size(); ++i) {
    const auto& vehicle = fleet.vehicles[i];
    const auto& u = vehicle.utilization;

    // The test vehicle plays the semi-new role: its first half cycle is
    // "available", the full first cycle is ground truth.
    auto first_half = FirstHalfCycleUsage(u, config.maintenance_interval_s);
    if (!first_half.ok()) continue;
    ++test_vehicles;

    // BL.
    auto baseline =
        MakeSemiNewBaseline(u, config.maintenance_interval_s, options);
    if (baseline.ok()) {
      auto eval = EvaluateColdStartModel(*baseline.ValueOrDie(), u,
                                         config.maintenance_interval_s,
                                         options, /*compute_emre=*/true);
      if (eval.ok()) bl.seminew_emre.push_back(eval.ValueOrDie().emre);
    }

    for (size_t a = 0; a < ml_algorithms.size(); ++a) {
      // Model_Sim (semi-new only: needs the first half cycle).
      auto sim_model = TrainSimilarityModel(
          ml_algorithms[a], first_half.ValueOrDie(), corpus, options);
      if (sim_model.ok()) {
        auto eval = EvaluateColdStartModel(
            *sim_model.ValueOrDie().model, u, config.maintenance_interval_s,
            options, /*compute_emre=*/true);
        if (eval.ok()) {
          sim[a].seminew_emre.push_back(eval.ValueOrDie().emre);
        }
      }
      // Model_Uni: semi-new E_MRE and new-vehicle E_Global.
      auto eval = EvaluateColdStartModel(*uni_models[a], u,
                                         config.maintenance_interval_s,
                                         options, /*compute_emre=*/true);
      if (eval.ok()) {
        uni[a].seminew_emre.push_back(eval.ValueOrDie().emre);
        uni[a].new_eglobal.push_back(eval.ValueOrDie().eglobal);
      }
    }
  }
  std::printf("test vehicles evaluated: %zu\n", test_vehicles);

  PrintTableHeader("Table 3: semi-new and new vehicles",
                   {"algorithm", "semi-new E_MRE", "new E_Global"});
  PrintTableRow({"BL", FormatDouble(Mean(bl.seminew_emre), 2), "-"});
  for (size_t a = 0; a < ml_algorithms.size(); ++a) {
    PrintTableRow({ml_algorithms[a] + "_Sim",
                   FormatDouble(Mean(sim[a].seminew_emre), 2), "-"});
  }
  for (size_t a = 0; a < ml_algorithms.size(); ++a) {
    PrintTableRow({ml_algorithms[a] + "_Uni",
                   FormatDouble(Mean(uni[a].seminew_emre), 2),
                   FormatDouble(Mean(uni[a].new_eglobal), 2)});
  }
  return 0;
}
