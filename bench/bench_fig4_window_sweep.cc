// Reproduces Figure 4 (improvement % vs window size W) and Table 2 (best W
// and the corresponding E_MRE per algorithm).
//
// Paper reference: BL flat (uses no features); LR best at W=0; LSVR
// improves up to W=6 then degrades; RF and XGB improve strongly (+44% /
// +25%) and plateau around W=15; Table 2: BL 0/20.2, LR 0/10.8, LSVR 6/5.2,
// RF 18/1.3, XGB 12/4.2.

#include <cstdio>
#include <cstdlib>
#include <limits>
#include <vector>

#include "bench/harness.h"
#include "common/strings.h"

using nextmaint::FormatDouble;
using nextmaint::bench::BenchConfig;
using nextmaint::bench::ConfigFromEnv;
using nextmaint::bench::EvaluateOnFleet;
using nextmaint::bench::MakeReferenceFleet;
using nextmaint::bench::OldVehicleIndices;
using nextmaint::bench::PaperAlgorithms;
using nextmaint::bench::PrintTableHeader;
using nextmaint::bench::PrintTableRow;

int main() {
  const BenchConfig config = ConfigFromEnv();
  const nextmaint::telem::Fleet fleet = MakeReferenceFleet(config);
  const std::vector<size_t> old_vehicles =
      OldVehicleIndices(fleet, config.maintenance_interval_s);

  // The paper sweeps W = 0..18; quick mode samples the same range sparsely.
  const std::vector<int> windows =
      config.tune ? std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12,
                                     13, 14, 15, 16, 17, 18}
                  : std::vector<int>{0, 3, 6, 9, 12, 15, 18};

  nextmaint::core::OldVehicleOptions options;
  options.train_on_last29_only = true;  // Figure 4 starts from Table 1 right
  options.tune = config.tune;
  options.grid_budget = config.grid_budget;
  options.resampling_shifts = config.resampling_shifts;

  struct Row {
    std::string algorithm;
    std::vector<double> emre;  // per window
  };
  std::vector<Row> rows;
  for (const std::string& algorithm : PaperAlgorithms()) {
    Row row{algorithm, {}};
    for (int w : windows) {
      options.window = w;
      auto result = EvaluateOnFleet(algorithm, fleet, old_vehicles, options);
      if (!result.ok()) {
        std::fprintf(stderr, "%s W=%d failed: %s\n", algorithm.c_str(), w,
                     result.status().ToString().c_str());
        return 1;
      }
      row.emre.push_back(result.ValueOrDie().mean_emre);
    }
    rows.push_back(std::move(row));
  }

  // Figure 4: improvement (%) relative to the univariate case (W = 0).
  {
    std::vector<std::string> header = {"algorithm"};
    for (int w : windows) header.push_back("W=" + std::to_string(w));
    PrintTableHeader("Figure 4: improvement (%) over W=0, E_MRE({1..29})",
                     header);
    for (const Row& row : rows) {
      std::vector<std::string> cells = {row.algorithm};
      for (size_t i = 0; i < row.emre.size(); ++i) {
        const double improvement =
            100.0 * (row.emre[0] - row.emre[i]) / row.emre[0];
        cells.push_back(FormatDouble(improvement, 1));
      }
      PrintTableRow(cells);
    }
  }

  // Table 2: argmin over the sweep.
  PrintTableHeader("Table 2: best window and E_MRE({1..29})",
                   {"algorithm", "best W", "E_MRE"});
  for (const Row& row : rows) {
    size_t best = 0;
    for (size_t i = 1; i < row.emre.size(); ++i) {
      if (row.emre[i] < row.emre[best]) best = i;
    }
    PrintTableRow({row.algorithm, std::to_string(windows[best]),
                   FormatDouble(row.emre[best], 2)});
  }
  return 0;
}
