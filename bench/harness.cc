#include "bench/harness.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/macros.h"
#include "common/parallel.h"
#include "core/category.h"

namespace nextmaint {
namespace bench {

BenchConfig ConfigFromEnv() {
  BenchConfig config;
  const char* full = std::getenv("NEXTMAINT_BENCH_FULL");
  if (full != nullptr && std::strcmp(full, "1") == 0) {
    config.tune = true;
    config.grid_budget = 1;
    config.resampling_shifts = 5;
  }
  const char* seed = std::getenv("NEXTMAINT_BENCH_SEED");
  if (seed != nullptr) {
    config.seed = static_cast<uint64_t>(std::strtoull(seed, nullptr, 10));
  }
  const char* threads = std::getenv("NEXTMAINT_BENCH_THREADS");
  if (threads != nullptr) {
    config.num_threads =
        std::max(1, static_cast<int>(std::strtol(threads, nullptr, 10)));
  }
  ThreadPool::SetDefaultThreadCount(config.num_threads);
  return config;
}

telem::Fleet MakeReferenceFleet(const BenchConfig& config) {
  telem::FleetOptions options;
  options.num_vehicles = config.num_vehicles;
  options.num_days = config.num_days;
  options.maintenance_interval_s = config.maintenance_interval_s;
  options.seed = config.seed;
  options.start_date = Date::FromYmd(2015, 1, 1).ValueOrDie();
  Result<telem::Fleet> fleet = telem::SimulateFleet(options);
  NM_CHECK_MSG(fleet.ok(), fleet.status().ToString().c_str());
  return std::move(fleet).ValueOrDie();
}

std::vector<size_t> OldVehicleIndices(const telem::Fleet& fleet,
                                      double maintenance_interval_s) {
  std::vector<size_t> old;
  for (size_t i = 0; i < fleet.vehicles.size(); ++i) {
    const Result<core::VehicleCategory> category = core::CategorizeUsage(
        fleet.vehicles[i].utilization, maintenance_interval_s);
    if (category.ok() &&
        category.ValueOrDie() == core::VehicleCategory::kOld) {
      old.push_back(i);
    }
  }
  return old;
}

Result<FleetEvaluation> EvaluateOnFleet(
    const std::string& algorithm, const telem::Fleet& fleet,
    const std::vector<size_t>& vehicles,
    const core::OldVehicleOptions& options) {
  if (vehicles.empty()) {
    return Status::InvalidArgument("no vehicles to evaluate");
  }
  FleetEvaluation out;
  out.algorithm = algorithm;
  double emre_sum = 0.0, eglobal_sum = 0.0, time_sum = 0.0;
  for (size_t index : vehicles) {
    const telem::VehicleHistory& vehicle = fleet.vehicles[index];
    Result<core::VehicleEvaluation> eval = core::EvaluateAlgorithmOnVehicle(
        algorithm, vehicle.utilization, vehicle.profile.maintenance_interval_s,
        options);
    if (!eval.ok()) {
      ++out.vehicles_skipped;
      std::fprintf(stderr, "  [skip] %s on %s: %s\n", algorithm.c_str(),
                   vehicle.profile.id.c_str(),
                   eval.status().ToString().c_str());
      continue;
    }
    core::VehicleEvaluation value = std::move(eval).ValueOrDie();
    emre_sum += value.emre;
    eglobal_sum += value.eglobal;
    time_sum += value.train_seconds;
    ++out.vehicles_evaluated;
    out.per_vehicle.push_back(std::move(value));
  }
  if (out.vehicles_evaluated == 0) {
    return Status::InvalidArgument("every vehicle was skipped for " +
                                   algorithm);
  }
  const double n = static_cast<double>(out.vehicles_evaluated);
  out.mean_emre = emre_sum / n;
  out.mean_eglobal = eglobal_sum / n;
  out.mean_train_seconds = time_sum / n;
  return out;
}

const std::vector<std::string>& PaperAlgorithms() {
  static const std::vector<std::string>* const kAlgorithms =
      new std::vector<std::string>{  // nextmaint-lint: allow(naked-new)
          "BL", "LR", "LSVR", "RF", "XGB"};
  return *kAlgorithms;
}

void PrintTableHeader(const std::string& title,
                      const std::vector<std::string>& columns) {
  std::printf("\n=== %s ===\n", title.c_str());
  for (size_t i = 0; i < columns.size(); ++i) {
    std::printf("%s%-14s", i == 0 ? "" : " | ", columns[i].c_str());
  }
  std::printf("\n");
  for (size_t i = 0; i < columns.size(); ++i) {
    std::printf("%s--------------", i == 0 ? "" : "-+-");
  }
  std::printf("\n");
}

void PrintTableRow(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    std::printf("%s%-14s", i == 0 ? "" : " | ", cells[i].c_str());
  }
  std::printf("\n");
}

uint64_t PeakRssBytes() {
  std::FILE* status = std::fopen("/proc/self/status", "r");
  if (status == nullptr) return 0;
  uint64_t bytes = 0;
  char line[256];
  while (std::fgets(line, sizeof(line), status) != nullptr) {
    unsigned long long kib = 0;
    if (std::sscanf(line, "VmHWM: %llu kB", &kib) == 1) {
      bytes = static_cast<uint64_t>(kib) * 1024;
      break;
    }
  }
  std::fclose(status);
  return bytes;
}

bool ResetPeakRss() {
  std::FILE* clear_refs = std::fopen("/proc/self/clear_refs", "w");
  if (clear_refs == nullptr) return false;
  const bool ok = std::fputs("5", clear_refs) >= 0;
  return (std::fclose(clear_refs) == 0) && ok;
}

MetricsReport::MetricsReport(std::string title) : title_(std::move(title)) {
  if (telemetry::Enabled()) before_ = telemetry::Snapshot();
}

MetricsReport::~MetricsReport() {
  if (!telemetry::Enabled()) return;
  const telemetry::MetricsSnapshot delta =
      telemetry::SnapshotDelta(before_, telemetry::Snapshot());
  std::printf("\n--- metrics: %s ---\n%s", title_.c_str(),
              telemetry::RenderText(delta).c_str());
}

}  // namespace bench
}  // namespace nextmaint
