#ifndef NEXTMAINT_ML_SCALER_H_
#define NEXTMAINT_ML_SCALER_H_

#include <vector>

#include "common/status.h"
#include "ml/matrix.h"

/// \file scaler.h
/// Column-wise feature scaling fitted on training data and applied to test
/// data — the "normalization" step of the paper's preparation pipeline as it
/// applies to model inputs ("scale the values of the utilization times to a
/// uniform value range (e.g., from 0 to 1) thus avoiding to introduce bias
/// in regression model learning").

namespace nextmaint {
namespace ml {

/// Scales each column to [0, 1] using training min/max.
class MinMaxScaler {
 public:
  /// Learns per-column min/max. Fails on an empty matrix.
  [[nodiscard]] Status Fit(const Matrix& x);

  /// Maps each column through (v - min) / (max - min); constant columns
  /// map to 0. Must be fitted; column count must match.
  [[nodiscard]] Result<Matrix> Transform(const Matrix& x) const;

  /// Fit followed by Transform on the same data.
  [[nodiscard]] Result<Matrix> FitTransform(const Matrix& x);

  /// Inverse mapping for column `col`.
  [[nodiscard]] Result<double> InverseTransform(size_t col, double scaled) const;

  bool is_fitted() const { return !mins_.empty(); }
  const std::vector<double>& mins() const { return mins_; }
  const std::vector<double>& maxs() const { return maxs_; }

 private:
  std::vector<double> mins_;
  std::vector<double> maxs_;
};

/// Scales each column to zero mean and unit variance.
class StandardScaler {
 public:
  [[nodiscard]] Status Fit(const Matrix& x);
  [[nodiscard]] Result<Matrix> Transform(const Matrix& x) const;
  [[nodiscard]] Result<Matrix> FitTransform(const Matrix& x);

  bool is_fitted() const { return !means_.empty(); }
  const std::vector<double>& means() const { return means_; }
  /// Per-column standard deviation; constant columns report 1.0 so the
  /// transform is a no-op shift for them.
  const std::vector<double>& stds() const { return stds_; }

 private:
  std::vector<double> means_;
  std::vector<double> stds_;
};

}  // namespace ml
}  // namespace nextmaint

#endif  // NEXTMAINT_ML_SCALER_H_
