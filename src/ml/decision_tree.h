#ifndef NEXTMAINT_ML_DECISION_TREE_H_
#define NEXTMAINT_ML_DECISION_TREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "ml/binned_dataset.h"
#include "ml/regressor.h"

/// \file decision_tree.h
/// CART regression tree: binary axis-aligned splits chosen by histogram
/// search over quantile bins (ml/histogram.h) to maximize variance
/// reduction (equivalently, minimize the sum of squared errors of the two
/// children). Split thresholds are bin upper bounds; with max_bins >= the
/// number of distinct values per feature the candidate set is exact. The
/// building block of the random forest.

namespace nextmaint {
namespace ml {

/// A single regression tree.
class DecisionTreeRegressor final : public Regressor {
 public:
  struct Options {
    /// Maximum tree depth; the root is depth 0. <= 0 means unlimited.
    int max_depth = -1;
    /// A node with fewer samples than this becomes a leaf.
    int min_samples_split = 2;
    /// Both children of a split must contain at least this many samples.
    int min_samples_leaf = 1;
    /// Number of features examined per split; <= 0 means all features.
    /// Random forests pass ~p/3 for decorrelation.
    int max_features = -1;
    /// Seed for feature subsampling (only used when max_features limits
    /// the candidate set).
    uint64_t seed = 13;
    /// Maximum quantile bins per feature for the histogram split search
    /// (2..65535).
    int max_bins = 256;
    /// Which tree core executes training (byte-identical either way; see
    /// docs/binned-training.md).
    TreeCore core = TreeCore::kBinned;
    /// Optional shared cache of pre-binned matrices (binned core only).
    std::shared_ptr<BinningCache> binning_cache;
  };

  DecisionTreeRegressor() = default;
  explicit DecisionTreeRegressor(Options options) : options_(options) {}

  /// Recognised ParamMap keys: "max_depth", "min_samples_leaf", "max_bins".
  static Options OptionsFromParams(const ParamMap& params);

  /// Fits on the subset of `train` given by `indices` (duplicates allowed;
  /// this is the bootstrap entry point used by the forest). Resolves the
  /// binning per this tree's own options (core, max_bins, cache).
  [[nodiscard]] Status FitIndices(const Dataset& train, const std::vector<size_t>& indices);

  /// Like FitIndices with the binning supplied by the caller: `mapper` must
  /// cover train.x(), and `binned` (when non-null) must have been built from
  /// it — the forest computes both once and shares them across trees. A null
  /// `binned` runs the row-oriented reference core.
  [[nodiscard]] Status FitBinned(const Dataset& train, const BinMapper& mapper,
                                 const BinnedDataset* binned,
                                 const std::vector<size_t>& indices);

  [[nodiscard]] Result<double> Predict(std::span<const double> features) const override;
  std::string name() const override { return "Tree"; }
  bool is_fitted() const override { return !nodes_.empty(); }
  std::unique_ptr<Regressor> Clone() const override {
    return std::make_unique<DecisionTreeRegressor>(*this);
  }
  [[nodiscard]] Status Save(std::ostream& out) const override;

  /// Reads a model body serialized by Save (header already consumed).
  [[nodiscard]] static Result<DecisionTreeRegressor> LoadBody(std::istream& in);

  /// Sum of squared-error reduction contributed by each feature's splits,
  /// normalized to sum to 1 (all-zeros for a single-leaf tree). The classic
  /// impurity-based importance.
  std::vector<double> FeatureImportances() const;

  /// Total node count of the fitted tree.
  size_t node_count() const { return nodes_.size(); }
  /// Feature count of the training matrix (0 before Fit). The forest's
  /// warm-start path validates appended data against this.
  size_t num_features() const { return num_features_; }
  /// Number of leaves of the fitted tree.
  size_t leaf_count() const;
  /// Depth of the fitted tree (0 for a single-leaf tree).
  int depth() const;
  const Options& options() const { return options_; }

 protected:
  [[nodiscard]] Status FitImpl(const Dataset& train) override;

 private:
  struct Node {
    // Internal node: children indices and split definition.
    int32_t left = -1;
    int32_t right = -1;
    int32_t feature = -1;
    double threshold = 0.0;
    // Leaf payload (also kept on internal nodes for robustness).
    double value = 0.0;
    /// SSE reduction achieved by this split (0 for leaves).
    double gain = 0.0;
    bool is_leaf() const { return left < 0; }
  };

  Options options_;
  size_t num_features_ = 0;
  std::vector<Node> nodes_;
};

}  // namespace ml
}  // namespace nextmaint

#endif  // NEXTMAINT_ML_DECISION_TREE_H_
