#ifndef NEXTMAINT_ML_DATASET_H_
#define NEXTMAINT_ML_DATASET_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "ml/matrix.h"

/// \file dataset.h
/// Supervised regression dataset: a feature matrix plus a target vector.

namespace nextmaint {
namespace ml {

/// A supervised dataset (X, y) with optional feature names.
///
/// Invariant: X.rows() == y.size() and feature_names (when non-empty) has
/// X.cols() entries. Enforced at construction via Create().
class Dataset {
 public:
  Dataset() = default;

  /// Validates shapes and builds a dataset.
  [[nodiscard]] static Result<Dataset> Create(Matrix x, std::vector<double> y,
                                std::vector<std::string> feature_names = {});

  size_t num_rows() const { return x_.rows(); }
  size_t num_features() const { return x_.cols(); }
  bool empty() const { return num_rows() == 0; }

  const Matrix& x() const { return x_; }
  const std::vector<double>& y() const { return y_; }
  const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }

  /// Appends one example (copies the row).
  void AddRow(std::span<const double> features, double target);

  /// Subset of rows, in the given order (duplicates allowed, enabling
  /// bootstrap sampling).
  Dataset SelectRows(const std::vector<size_t>& indices) const;

  /// Rows [0, k) and [k, n) as two datasets (chronological split when rows
  /// are time-ordered, as in the paper's 70/30 protocol).
  std::pair<Dataset, Dataset> SplitAt(size_t k) const;

  /// Appends all rows of `other`; feature counts must match.
  [[nodiscard]] Status Concat(const Dataset& other);

  /// Returns a dataset with rows in a random order (for CV fold assignment).
  Dataset Shuffled(Rng* rng) const;

 private:
  Matrix x_;
  std::vector<double> y_;
  std::vector<std::string> feature_names_;
};

}  // namespace ml
}  // namespace nextmaint

#endif  // NEXTMAINT_ML_DATASET_H_
