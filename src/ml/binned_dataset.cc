#include "ml/binned_dataset.h"

#include <algorithm>
#include <bit>

#include "common/macros.h"
#include "common/parallel.h"

namespace nextmaint {
namespace ml {

void BinMapper::Compute(const Matrix& x, int max_bins) {
  NM_CHECK(max_bins >= 2 && max_bins <= 65535);
  thresholds_.assign(x.cols(), {});
  std::vector<double> values;
  for (size_t f = 0; f < x.cols(); ++f) {
    values = x.Col(f);
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());

    std::vector<double>& bounds = thresholds_[f];
    if (values.size() <= 1) {
      // Degenerate column (all-identical, or an empty matrix): a single bin
      // whose boundary is the value itself (0.0 when there are no rows).
      // BinOf sends every query — below, equal or above — to bin 0, and the
      // split search skips single-bin features, so the column can never be
      // split on; pinned by dataset_test.cc.
      bounds.push_back(values.empty() ? 0.0 : values.front());
    } else if (values.size() <= static_cast<size_t>(max_bins)) {
      // Few distinct values: one bin per value; boundary is the value.
      bounds = values;
    } else {
      // Quantile boundaries over the distinct values. Using distinct values
      // (not raw rows) keeps heavily repeated values (zero-usage days!) from
      // collapsing many bins into one.
      bounds.reserve(static_cast<size_t>(max_bins));
      for (int b = 1; b <= max_bins; ++b) {
        const double q = static_cast<double>(b) /
                         static_cast<double>(max_bins);
        const double pos = q * static_cast<double>(values.size() - 1);
        bounds.push_back(values[static_cast<size_t>(pos)]);
      }
      bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
    }
  }
}

uint16_t BinMapper::BinOf(size_t feature, double value) const {
  NM_CHECK(feature < thresholds_.size());
  const std::vector<double>& bounds = thresholds_[feature];
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), value);
  const size_t bin = it == bounds.end()
                         ? bounds.size() - 1
                         : static_cast<size_t>(it - bounds.begin());
  return static_cast<uint16_t>(bin);
}

double BinMapper::UpperBound(size_t feature, uint16_t bin) const {
  NM_CHECK(feature < thresholds_.size());
  NM_CHECK(bin < thresholds_[feature].size());
  return thresholds_[feature][bin];
}

size_t BinMapper::BinCount(size_t feature) const {
  NM_CHECK(feature < thresholds_.size());
  return thresholds_[feature].size();
}

void BinnedDataset::Build(const Matrix& x, const BinMapper& mapper,
                          int num_threads) {
  NM_CHECK(mapper.num_features() == x.cols());
  num_rows_ = x.rows();
  columns_.assign(x.cols(), Column{});
  const Status status = ParallelFor(
      0, x.cols(), /*grain=*/1,
      [&](size_t chunk_begin, size_t chunk_end) -> Status {
        for (size_t f = chunk_begin; f < chunk_end; ++f) {
          Column& column = columns_[f];
          column.narrow = mapper.BinCount(f) <= 256;
          if (column.narrow) {
            column.u8.resize(num_rows_);
            for (size_t r = 0; r < num_rows_; ++r) {
              column.u8[r] = static_cast<uint8_t>(mapper.BinOf(f, x(r, f)));
            }
          } else {
            column.u16.resize(num_rows_);
            for (size_t r = 0; r < num_rows_; ++r) {
              column.u16[r] = mapper.BinOf(f, x(r, f));
            }
          }
        }
        return Status::OK();
      },
      num_threads);
  NM_CHECK(status.ok());  // the binning body has no failure path
}

size_t BinnedDataset::MemoryBytes() const {
  size_t bytes = 0;
  for (const Column& column : columns_) {
    bytes += column.u8.size() * sizeof(uint8_t);
    bytes += column.u16.size() * sizeof(uint16_t);
  }
  return bytes;
}

namespace {

/// FNV-1a over the matrix cells (bit-cast doubles), row-major order. Cheap
/// relative to a fit and collision-safe enough once combined with the exact
/// (rows, cols, max_bins) key fields.
uint64_t FingerprintMatrix(const Matrix& x) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (size_t r = 0; r < x.rows(); ++r) {
    for (size_t c = 0; c < x.cols(); ++c) {
      const uint64_t bits = std::bit_cast<uint64_t>(x(r, c));
      for (int shift = 0; shift < 64; shift += 8) {
        hash ^= (bits >> shift) & 0xffULL;
        hash *= 0x100000001b3ULL;
      }
    }
  }
  return hash;
}

}  // namespace

bool BinningCache::Key::operator<(const Key& other) const {
  if (fingerprint != other.fingerprint) {
    return fingerprint < other.fingerprint;
  }
  if (rows != other.rows) return rows < other.rows;
  if (cols != other.cols) return cols < other.cols;
  return max_bins < other.max_bins;
}

std::shared_ptr<const PreBinned> BinningCache::GetOrCompute(const Matrix& x,
                                                            int max_bins,
                                                            int num_threads) {
  const Key key{FingerprintMatrix(x), x.rows(), x.cols(), max_bins};
  MutexLock lock(mutex_);
  ++lookups_;
  if (auto it = entries_.find(key); it != entries_.end()) {
    ++hits_;
    return it->second;
  }
  if (entries_.size() >= kMaxEntries) entries_.clear();
  auto entry = std::make_shared<PreBinned>();
  entry->mapper.Compute(x, max_bins);
  entry->binned.Build(x, entry->mapper, num_threads);
  entries_.emplace(key, entry);
  return entry;
}

BinningCache::Stats BinningCache::stats() const {
  MutexLock lock(mutex_);
  Stats stats;
  stats.lookups = lookups_;
  stats.hits = hits_;
  stats.entries = entries_.size();
  return stats;
}

void BinningCache::Clear() {
  MutexLock lock(mutex_);
  entries_.clear();
}

}  // namespace ml
}  // namespace nextmaint
