#ifndef NEXTMAINT_ML_RANDOM_FOREST_H_
#define NEXTMAINT_ML_RANDOM_FOREST_H_

#include <memory>
#include <vector>

#include "ml/decision_tree.h"
#include "ml/regressor.h"

/// \file random_forest.h
/// Random forest regressor — the paper's "RF" model: "an established
/// ensemble method combining the predictions of multiple decision trees ...
/// trained on different bootstraps (samples of the training data with
/// replacement)". Predictions are the plain average over trees.

namespace nextmaint {
namespace ml {

/// Bagged ensemble of CART trees with per-split feature subsampling.
class RandomForestRegressor final : public Regressor {
 public:
  struct Options {
    /// Number of trees.
    int num_estimators = 100;
    /// Per-tree depth limit; <= 0 means unlimited.
    int max_depth = -1;
    int min_samples_split = 2;
    int min_samples_leaf = 1;
    /// Features examined per split; <= 0 means all features (sklearn's
    /// regression default). Set ~p/3 for stronger decorrelation.
    int max_features = 0;
    /// Bootstrap sample size as a fraction of the training size.
    double bootstrap_fraction = 1.0;
    uint64_t seed = 42;
    /// Trees fitted concurrently (one task per tree). <= 0 follows the
    /// process-wide default (ThreadPool::DefaultThreadCount()). Any value
    /// yields bit-identical models; see docs/parallelism.md.
    int num_threads = 0;
    /// Maximum quantile bins per feature for the histogram split search
    /// (2..65535). The forest computes one BinMapper over the full training
    /// matrix and shares it across every tree.
    int max_bins = 256;
    /// Which tree core executes training (byte-identical either way; see
    /// docs/binned-training.md).
    TreeCore core = TreeCore::kBinned;
    /// Optional shared cache of pre-binned matrices (binned core only).
    std::shared_ptr<BinningCache> binning_cache;
  };

  RandomForestRegressor() = default;
  explicit RandomForestRegressor(Options options) : options_(options) {}

  /// Recognised ParamMap keys: "num_estimators", "max_depth",
  /// "min_samples_leaf", "num_threads", "max_bins".
  static Options OptionsFromParams(const ParamMap& params);

  [[nodiscard]] Result<double> Predict(std::span<const double> features) const override;
  std::string name() const override { return "RF"; }
  bool is_fitted() const override { return !trees_.empty(); }
  std::unique_ptr<Regressor> Clone() const override {
    return std::make_unique<RandomForestRegressor>(*this);
  }
  [[nodiscard]] Status Save(std::ostream& out) const override;

  /// Reads a model body serialized by Save (header already consumed).
  [[nodiscard]] static Result<RandomForestRegressor> LoadBody(std::istream& in);

  /// Mean impurity-based feature importances across the trees (normalized
  /// to sum to 1; zeros when every tree is a stump).
  std::vector<double> FeatureImportances() const;

  /// Prediction plus the ensemble spread (standard deviation of the
  /// per-tree predictions) — a cheap uncertainty estimate for the
  /// scheduler's planning slack.
  struct PredictionInterval {
    double mean = 0.0;
    double stddev = 0.0;
  };
  [[nodiscard]] Result<PredictionInterval> PredictWithSpread(
      std::span<const double> features) const;

  size_t tree_count() const { return trees_.size(); }
  const DecisionTreeRegressor& tree(size_t i) const { return trees_[i]; }
  const Options& options() const { return options_; }

  /// Mean out-of-bag absolute error computed during the last Fit; NaN when
  /// no sample was ever out of bag (tiny datasets).
  double oob_mae() const { return oob_mae_; }

 protected:
  [[nodiscard]] Status FitImpl(const Dataset& train) override;
  /// Warm-start resume: appends `extra_rounds` trees bootstrapped from the
  /// grown training set. The continuation draws bootstrap samples and tree
  /// seeds from Rng(seed ^ golden_ratio * tree_count()), so the appended
  /// trees are a pure function of (options, current size, data) — a
  /// save/load round trip resumes identically to the in-memory model, and
  /// any thread count yields bit-identical forests. oob_mae() becomes NaN
  /// after a resume (out-of-bag membership is not persisted). All-or-
  /// nothing on error; `extra_rounds == 0` is a byte-identical no-op.
  [[nodiscard]] Status ContinueFitImpl(const Dataset& train,
                                       int extra_rounds) override;
  /// Per-row tree-sum average, trees visited in order — bit-identical to
  /// looping Predict, but with the virtual dispatch and fitted checks
  /// hoisted out of the row loop.
  [[nodiscard]] Result<std::vector<double>> PredictBatchImpl(const Matrix& x) const override;

 private:
  Options options_;
  std::vector<DecisionTreeRegressor> trees_;
  double oob_mae_ = 0.0;
};

}  // namespace ml
}  // namespace nextmaint

#endif  // NEXTMAINT_ML_RANDOM_FOREST_H_
