#include "ml/registry.h"

#include "common/macros.h"
#include "ml/decision_tree.h"
#include "ml/hist_gradient_boosting.h"
#include "ml/linear_regression.h"
#include "ml/linear_svr.h"
#include "ml/random_forest.h"

namespace nextmaint {
namespace ml {

std::vector<std::string> RegisteredModelNames() {
  return {"LR", "LSVR", "Tree", "RF", "XGB"};
}

Result<std::unique_ptr<Regressor>> MakeRegressor(
    const std::string& name, const ParamMap& params,
    const TrainingBackend& backend) {
  if (name == "Tree") {
    DecisionTreeRegressor::Options options =
        DecisionTreeRegressor::OptionsFromParams(params);
    options.core = backend.core;
    options.binning_cache = backend.binning_cache;
    return std::unique_ptr<Regressor>(
        std::make_unique<DecisionTreeRegressor>(options));
  }
  if (name == "RF") {
    RandomForestRegressor::Options options =
        RandomForestRegressor::OptionsFromParams(params);
    options.core = backend.core;
    options.binning_cache = backend.binning_cache;
    return std::unique_ptr<Regressor>(
        std::make_unique<RandomForestRegressor>(options));
  }
  if (name == "XGB") {
    HistGradientBoostingRegressor::Options options =
        HistGradientBoostingRegressor::OptionsFromParams(params);
    options.core = backend.core;
    options.binning_cache = backend.binning_cache;
    return std::unique_ptr<Regressor>(
        std::make_unique<HistGradientBoostingRegressor>(options));
  }
  return MakeRegressor(name, params);
}

Result<std::unique_ptr<Regressor>> MakeRegressor(const std::string& name,
                                                 const ParamMap& params) {
  if (name == "LR") {
    return std::unique_ptr<Regressor>(std::make_unique<LinearRegression>(
        LinearRegression::OptionsFromParams(params)));
  }
  if (name == "LSVR") {
    return std::unique_ptr<Regressor>(
        std::make_unique<LinearSvr>(LinearSvr::OptionsFromParams(params)));
  }
  if (name == "Tree") {
    return std::unique_ptr<Regressor>(std::make_unique<DecisionTreeRegressor>(
        DecisionTreeRegressor::OptionsFromParams(params)));
  }
  if (name == "RF") {
    return std::unique_ptr<Regressor>(std::make_unique<RandomForestRegressor>(
        RandomForestRegressor::OptionsFromParams(params)));
  }
  if (name == "XGB") {
    return std::unique_ptr<Regressor>(
        std::make_unique<HistGradientBoostingRegressor>(
            HistGradientBoostingRegressor::OptionsFromParams(params)));
  }
  return Status::NotFound("unknown model name: '" + name + "'");
}

Result<RegressorFactory> MakeFactory(const std::string& name) {
  // Validate eagerly so a typo fails at configuration time, not mid-search.
  NM_RETURN_NOT_OK(MakeRegressor(name).status());
  return RegressorFactory([name](const ParamMap& params) {
    // Construction cannot fail for a validated name.
    return MakeRegressor(name, params).MoveValueOrDie();
  });
}

Result<RegressorFactory> MakeFactory(const std::string& name,
                                     const TrainingBackend& backend) {
  NM_RETURN_NOT_OK(MakeRegressor(name).status());
  return RegressorFactory([name, backend](const ParamMap& params) {
    return MakeRegressor(name, params, backend).MoveValueOrDie();
  });
}

ParamGrid DefaultGridFor(const std::string& name, int budget) {
  ParamGrid grid;
  const bool full = budget >= 1;
  if (name == "RF") {
    grid.Add("max_depth", full ? std::vector<double>{3, 5, 10, 20, 35, 50}
                               : std::vector<double>{5, 15});
    grid.Add("num_estimators",
             full ? std::vector<double>{10, 50, 100, 300, 600, 1000}
                  : std::vector<double>{30, 100});
  } else if (name == "XGB") {
    grid.Add("max_depth", full ? std::vector<double>{3, 5, 10, 20, 35, 50}
                               : std::vector<double>{3, 6});
    grid.Add("num_iterations",
             full ? std::vector<double>{10, 50, 100, 300, 600, 1000}
                  : std::vector<double>{50, 150});
  } else if (name == "LSVR") {
    grid.Add("epsilon", full ? std::vector<double>{0.5, 1.0, 1.5, 2.0, 2.5}
                             : std::vector<double>{0.5, 1.5});
    grid.Add("C", full ? std::vector<double>{0.01, 0.1, 1, 10, 100}
                       : std::vector<double>{0.1, 10});
  }
  // LR and Tree: empty grid -> plain CV with defaults.
  return grid;
}

}  // namespace ml
}  // namespace nextmaint
