#ifndef NEXTMAINT_ML_HIST_GRADIENT_BOOSTING_H_
#define NEXTMAINT_ML_HIST_GRADIENT_BOOSTING_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "ml/binned_dataset.h"
#include "ml/regressor.h"

/// \file hist_gradient_boosting.h
/// Histogram-based gradient boosting regressor — the paper's "XGB" model
/// ("a popular ensemble method relying on a boosting strategy ... combining
/// many decision tree regressors"; the authors used a histogram-based
/// implementation).
///
/// Training: feature values are quantized into at most `max_bins` quantile
/// bins once up front; each boosting stage fits a depth-limited tree to the
/// current squared-loss gradients by accumulating per-bin gradient
/// histograms and choosing the split with the largest XGBoost-style gain
///   gain = GL^2/(HL+l2) + GR^2/(HR+l2) - G^2/(H+l2).
/// For squared loss the hessian of each sample is 1, so H terms are counts.
///
/// Trees are grown by the shared histogram grower (ml/histogram.h) on
/// either tree core (ml/binned_dataset.h); both cores are bit-identical.

namespace nextmaint {
namespace ml {

/// Gradient-boosted ensemble of histogram trees.
class HistGradientBoostingRegressor final : public Regressor {
 public:
  struct Options {
    /// Number of boosting stages (trees).
    int num_iterations = 100;
    /// Shrinkage applied to each tree's contribution.
    double learning_rate = 0.1;
    /// Per-tree depth limit; <= 0 means unlimited (bounded in practice by
    /// min_samples_leaf).
    int max_depth = 6;
    /// Minimum samples in each child of a split.
    int min_samples_leaf = 20;
    /// Maximum quantile bins per feature (1..65535; 256 is the classic
    /// histogram-GBM setting).
    int max_bins = 256;
    /// L2 regularization on leaf values.
    double l2 = 0.0;
    /// Minimum gain for a split to be kept.
    double min_gain = 1e-12;
    /// Early stopping: when positive, this fraction of the training rows
    /// (the chronological tail) is held out and boosting stops once the
    /// held-out MSE fails to improve for `early_stopping_rounds` stages.
    /// The held-out rows are NOT used for tree fitting.
    double validation_fraction = 0.0;
    /// Patience for early stopping (only with validation_fraction > 0).
    int early_stopping_rounds = 10;
    /// Concurrency for binning, per-feature split search and the per-row
    /// prediction update. <= 0 follows the process-wide default
    /// (ThreadPool::DefaultThreadCount()). Any value yields bit-identical
    /// models; see docs/parallelism.md.
    int num_threads = 0;
    /// Which tree core executes training (byte-identical either way; see
    /// docs/binned-training.md).
    TreeCore core = TreeCore::kBinned;
    /// Optional shared cache of pre-binned matrices (binned core only).
    std::shared_ptr<BinningCache> binning_cache;
  };

  HistGradientBoostingRegressor() = default;
  explicit HistGradientBoostingRegressor(Options options)
      : options_(options) {}

  /// Recognised ParamMap keys: "num_iterations", "max_depth",
  /// "learning_rate", "min_samples_leaf", "max_bins", "num_threads".
  static Options OptionsFromParams(const ParamMap& params);

  [[nodiscard]] Result<double> Predict(std::span<const double> features) const override;
  std::string name() const override { return "XGB"; }
  bool is_fitted() const override { return fitted_; }
  std::unique_ptr<Regressor> Clone() const override {
    return std::make_unique<HistGradientBoostingRegressor>(*this);
  }
  [[nodiscard]] Status Save(std::ostream& out) const override;

  /// Reads a model body serialized by Save (header already consumed).
  [[nodiscard]] static Result<HistGradientBoostingRegressor> LoadBody(std::istream& in);

  /// Number of trees in the fitted ensemble.
  size_t tree_count() const { return trees_.size(); }
  /// Gain-based feature importances accumulated over all boosting stages,
  /// normalized to sum to 1. Training-time diagnostic: models loaded from
  /// disk report all-zeros (gains are not persisted).
  std::vector<double> FeatureImportances() const;
  /// Training loss (MSE) after each boosting stage; useful for diagnosing
  /// convergence and for the ablation benches. ContinueFit appends the
  /// resumed stages (losses there are measured on the grown dataset).
  const std::vector<double>& training_loss_curve() const {
    return train_loss_;
  }
  /// Held-out MSE per stage (empty without early stopping).
  const std::vector<double>& validation_loss_curve() const {
    return valid_loss_;
  }
  const Options& options() const { return options_; }

 protected:
  [[nodiscard]] Status FitImpl(const Dataset& train) override;
  /// Warm-start resume: keeps base score and fitted trees, seeds the
  /// working predictions from the existing ensemble over `train` and
  /// boosts for up to `extra_rounds` more stages (the early-stopping
  /// holdout applies per resume, with a fresh patience window). Binning is
  /// recomputed over the grown matrix through the same BinningCache path
  /// FitImpl uses, so repeated resumes on one matrix bin once. The loss
  /// curves grow by the resumed stages. All-or-nothing: on error the
  /// ensemble is restored to its pre-call state. `extra_rounds == 0` is a
  /// byte-identical no-op.
  [[nodiscard]] Status ContinueFitImpl(const Dataset& train,
                                       int extra_rounds) override;
  /// Per-row base_score + tree sum, trees visited in boosting order —
  /// bit-identical to looping Predict with the checks hoisted out.
  [[nodiscard]] Result<std::vector<double>> PredictBatchImpl(const Matrix& x) const override;

 private:
  struct TreeNode {
    int32_t left = -1;
    int32_t right = -1;
    int32_t feature = -1;
    double threshold = 0.0;  ///< raw-value threshold (bin upper bound)
    double value = 0.0;      ///< leaf weight (already includes learning rate)
    double gain = 0.0;       ///< split gain (0 for leaves; not persisted)
    bool is_leaf() const { return left < 0; }
  };
  using Tree = std::vector<TreeNode>;

  double PredictTree(const Tree& tree, std::span<const double> features) const;

  /// Rows used for tree fitting when the tail-holdout early stopping is
  /// configured (the remainder of `total_rows` is the validation tail).
  size_t TrainRowCount(size_t total_rows) const;

  /// The shared boosting loop behind FitImpl and ContinueFitImpl: bins
  /// `train`, seeds the per-row predictions from the current ensemble
  /// (base score plus any existing trees, in boosting order) and appends
  /// up to `rounds` trees, stopping early on a validation plateau when
  /// configured. Appends to the loss curves.
  [[nodiscard]] Status BoostRounds(const Dataset& train, int rounds);

  Options options_;
  BinMapper bins_;
  double base_score_ = 0.0;
  std::vector<Tree> trees_;
  std::vector<double> train_loss_;
  std::vector<double> valid_loss_;
  size_t num_features_ = 0;
  bool fitted_ = false;
};

}  // namespace ml
}  // namespace nextmaint

#endif  // NEXTMAINT_ML_HIST_GRADIENT_BOOSTING_H_
