#ifndef NEXTMAINT_ML_REGISTRY_H_
#define NEXTMAINT_ML_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "ml/binned_dataset.h"
#include "ml/model_selection.h"
#include "ml/regressor.h"

/// \file registry.h
/// Name-based model construction ("LR", "LSVR", "Tree", "RF", "XGB"), used
/// by the core pipeline's model-selection loop and the benchmark harness so
/// that algorithm lists stay data, not code. The paper's "BL" baseline is
/// problem-specific (it needs AVG_v and predicts L/AVG) and lives in
/// core/baseline.h, not here.

namespace nextmaint {
namespace ml {

/// Names of the generic regressors this registry can build.
std::vector<std::string> RegisteredModelNames();

/// Builds a model by name with the given hyper-parameters (each model
/// documents its recognised keys on its OptionsFromParams). Unknown names
/// fail with NotFound.
[[nodiscard]] Result<std::unique_ptr<Regressor>> MakeRegressor(const std::string& name,
                                                 const ParamMap& params = {});

/// Like the two-argument overload, but the tree learners (Tree/RF/XGB) are
/// configured with `backend` — the training core to run and an optional
/// shared BinningCache so repeated fits on the same matrix (grid-search
/// candidates, serving refreshes) bin once. Non-tree models ignore it.
[[nodiscard]] Result<std::unique_ptr<Regressor>> MakeRegressor(
    const std::string& name, const ParamMap& params,
    const TrainingBackend& backend);

/// Returns a factory that builds `name` models (for GridSearchCV).
/// The name is validated immediately.
[[nodiscard]] Result<RegressorFactory> MakeFactory(const std::string& name);

/// Factory whose models carry `backend` (see the MakeRegressor overload);
/// every grid-search candidate then shares the same binning cache.
[[nodiscard]] Result<RegressorFactory> MakeFactory(const std::string& name,
                                                   const TrainingBackend& backend);

/// The default hyper-parameter grid the paper sweeps for each model:
///   RF / XGB: max depth 3..50, estimators 10..1000;
///   LSVR: epsilon 0.5..2.5, C 0.01..100;
///   LR: no tunables (empty grid).
/// `budget` scales the number of grid points (0 = coarse smoke-test grid,
/// 1 = the paper-faithful grid; coarse is the default because exhaustive
/// paper grids are minutes per vehicle).
ParamGrid DefaultGridFor(const std::string& name, int budget = 0);

}  // namespace ml
}  // namespace nextmaint

#endif  // NEXTMAINT_ML_REGISTRY_H_
