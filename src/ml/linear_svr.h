#ifndef NEXTMAINT_ML_LINEAR_SVR_H_
#define NEXTMAINT_ML_LINEAR_SVR_H_

#include <memory>
#include <vector>

#include "ml/regressor.h"

/// \file linear_svr.h
/// Linear support vector regression — the paper's "LSVR" model.
///
/// Solves the L2-regularized epsilon-insensitive (L1-loss) SVR problem
///
///   min_w  1/2 ||w||^2 + C * sum_i max(0, |y_i - w.x_i| - epsilon)
///
/// in the dual via coordinate descent (the liblinear algorithm of Ho & Lin,
/// "Large-scale Linear Support Vector Regression", JMLR 2012): one dual
/// variable beta_i in [-C, C] per example, closed-form single-coordinate
/// updates, primal weights maintained incrementally as w = sum_i beta_i x_i.

namespace nextmaint {
namespace ml {

/// Epsilon-insensitive linear SVR trained by dual coordinate descent.
class LinearSvr final : public Regressor {
 public:
  struct Options {
    /// Penalty parameter; larger C fits the training data more tightly.
    double c = 1.0;
    /// Half-width of the insensitive tube, in target units (days here).
    double epsilon = 0.1;
    /// Maximum passes over the training set.
    int max_iterations = 1000;
    /// Stop when the largest dual-variable change in a pass drops below
    /// this threshold.
    double tolerance = 1e-4;
    /// Standardize features internally (recommended: SVR is scale
    /// sensitive). The fitted weights are mapped back to input scale.
    bool standardize = true;
    /// Seed for the coordinate-order shuffling.
    uint64_t seed = 7;
  };

  LinearSvr() = default;
  explicit LinearSvr(Options options) : options_(options) {}

  /// Recognised ParamMap keys: "C", "epsilon".
  static Options OptionsFromParams(const ParamMap& params);

  [[nodiscard]] Result<double> Predict(std::span<const double> features) const override;
  std::string name() const override { return "LSVR"; }
  bool is_fitted() const override { return fitted_; }
  std::unique_ptr<Regressor> Clone() const override {
    return std::make_unique<LinearSvr>(*this);
  }
  [[nodiscard]] Status Save(std::ostream& out) const override;

  /// Reads a model body serialized by Save (header already consumed).
  [[nodiscard]] static Result<LinearSvr> LoadBody(std::istream& in);

  /// Weights in input-feature scale.
  const std::vector<double>& weights() const { return weights_; }
  double intercept() const { return intercept_; }
  /// Number of coordinate-descent passes performed by the last Fit.
  int iterations_run() const { return iterations_run_; }
  const Options& options() const { return options_; }

 protected:
  [[nodiscard]] Status FitImpl(const Dataset& train) override;

 private:
  Options options_;
  std::vector<double> weights_;
  double intercept_ = 0.0;
  int iterations_run_ = 0;
  bool fitted_ = false;
};

}  // namespace ml
}  // namespace nextmaint

#endif  // NEXTMAINT_ML_LINEAR_SVR_H_
