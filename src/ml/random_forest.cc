#include "ml/random_forest.h"

#include <cmath>
#include <limits>

#include "common/macros.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/telemetry.h"

namespace nextmaint {
namespace ml {

RandomForestRegressor::Options RandomForestRegressor::OptionsFromParams(
    const ParamMap& params) {
  Options options;
  if (auto it = params.find("num_estimators"); it != params.end()) {
    options.num_estimators = static_cast<int>(it->second);
  }
  if (auto it = params.find("max_depth"); it != params.end()) {
    options.max_depth = static_cast<int>(it->second);
  }
  if (auto it = params.find("min_samples_leaf"); it != params.end()) {
    options.min_samples_leaf = static_cast<int>(it->second);
  }
  if (auto it = params.find("num_threads"); it != params.end()) {
    options.num_threads = static_cast<int>(it->second);
  }
  if (auto it = params.find("max_bins"); it != params.end()) {
    options.max_bins = static_cast<int>(it->second);
  }
  return options;
}

Status RandomForestRegressor::FitImpl(const Dataset& train) {
  trees_.clear();
  oob_mae_ = std::numeric_limits<double>::quiet_NaN();
  if (train.empty()) {
    return Status::InvalidArgument("cannot fit RF on an empty dataset");
  }
  if (options_.num_estimators <= 0) {
    return Status::InvalidArgument("RF requires num_estimators > 0");
  }
  if (options_.bootstrap_fraction <= 0.0 ||
      options_.bootstrap_fraction > 1.0) {
    return Status::InvalidArgument("bootstrap_fraction must be in (0, 1]");
  }
  if (options_.max_bins < 2 || options_.max_bins > 65535) {
    return Status::InvalidArgument("RF requires 2 <= max_bins <= 65535");
  }
  if (!train.x().AllFinite()) {
    return Status::InvalidArgument("RF features contain non-finite values");
  }

  const size_t n = train.num_rows();
  const size_t p = train.num_features();
  int max_features = options_.max_features;
  if (max_features <= 0) {
    // All features, matching sklearn's RandomForestRegressor default (the
    // implementation the paper's experiments used); bagging alone
    // decorrelates the trees.
    max_features = static_cast<int>(p);
  }

  Rng rng(options_.seed);
  const size_t bootstrap_size = std::max<size_t>(
      1, static_cast<size_t>(options_.bootstrap_fraction *
                             static_cast<double>(n)));
  const size_t num_trees = static_cast<size_t>(options_.num_estimators);

  // Derive every tree's bootstrap sample and seed up front, consuming the
  // shared rng stream in tree order. The per-tree work below is then a
  // pure function of (sample, seed), so models are bit-identical at any
  // thread count.
  std::vector<std::vector<size_t>> samples(num_trees);
  std::vector<uint64_t> seeds(num_trees);
  for (size_t t = 0; t < num_trees; ++t) {
    samples[t].resize(bootstrap_size);
    for (size_t i = 0; i < bootstrap_size; ++i) {
      samples[t][i] = static_cast<size_t>(rng.UniformInt(n));
    }
    seeds[t] = rng.NextUint64();
  }

  // Forest-level binning, computed once over the full training matrix (not
  // per bootstrap sample) and shared by every tree, so all trees — and both
  // tree cores — search the same bin boundaries.
  std::shared_ptr<const PreBinned> cached;
  BinMapper local_mapper;
  BinnedDataset local_binned;
  const BinMapper* mapper = nullptr;
  const BinnedDataset* binned = nullptr;
  if (options_.core == TreeCore::kBinned && options_.binning_cache) {
    cached = options_.binning_cache->GetOrCompute(
        train.x(), options_.max_bins, options_.num_threads);
    mapper = &cached->mapper;
    binned = &cached->binned;
  } else {
    local_mapper.Compute(train.x(), options_.max_bins);
    mapper = &local_mapper;
    if (options_.core == TreeCore::kBinned) {
      local_binned.Build(train.x(), *mapper, options_.num_threads);
      binned = &local_binned;
    }
  }

  // Each tree records its out-of-bag predictions privately; the floating
  // point reduction into oob_sum happens serially in tree order afterwards.
  std::vector<std::vector<double>> tree_oob_pred(num_trees);
  std::vector<std::vector<char>> tree_in_bag(num_trees);
  trees_.resize(num_trees);

  const Status fit_status = ParallelFor(
      0, num_trees, /*grain=*/1,
      [&](size_t chunk_begin, size_t chunk_end) -> Status {
        for (size_t t = chunk_begin; t < chunk_end; ++t) {
          DecisionTreeRegressor::Options tree_options;
          tree_options.max_depth = options_.max_depth;
          tree_options.min_samples_split = options_.min_samples_split;
          tree_options.min_samples_leaf = options_.min_samples_leaf;
          tree_options.max_features = max_features;
          tree_options.seed = seeds[t];
          tree_options.max_bins = options_.max_bins;
          tree_options.core = options_.core;

          std::vector<char>& in_bag = tree_in_bag[t];
          in_bag.assign(n, 0);
          for (size_t row : samples[t]) in_bag[row] = 1;

          DecisionTreeRegressor tree(tree_options);
          NM_RETURN_NOT_OK(tree.FitBinned(train, *mapper, binned, samples[t])
                               .WithContext("tree " + std::to_string(t)));

          std::vector<double>& oob_pred = tree_oob_pred[t];
          oob_pred.assign(n, 0.0);
          for (size_t row = 0; row < n; ++row) {
            if (in_bag[row]) continue;
            NM_ASSIGN_OR_RETURN(oob_pred[row],
                                tree.Predict(train.x().Row(row)));
          }
          trees_[t] = std::move(tree);
        }
        return Status::OK();
      },
      options_.num_threads);
  if (!fit_status.ok()) {
    trees_.clear();  // never leave half-fitted placeholder trees behind
    return fit_status;
  }

  // Out-of-bag bookkeeping: accumulated prediction and count per sample,
  // reduced in tree order so the sums match the serial loop exactly.
  std::vector<double> oob_sum(n, 0.0);
  std::vector<int> oob_count(n, 0);
  for (size_t t = 0; t < num_trees; ++t) {
    for (size_t row = 0; row < n; ++row) {
      if (tree_in_bag[t][row]) continue;
      oob_sum[row] += tree_oob_pred[t][row];
      ++oob_count[row];
    }
  }

  double abs_err = 0.0;
  size_t covered = 0;
  for (size_t row = 0; row < n; ++row) {
    if (oob_count[row] == 0) continue;
    abs_err += std::fabs(oob_sum[row] / oob_count[row] - train.y()[row]);
    ++covered;
  }
  if (covered > 0) oob_mae_ = abs_err / static_cast<double>(covered);
  telemetry::Count("ml.rf.trees_fitted", trees_.size());
  return Status::OK();
}

Status RandomForestRegressor::ContinueFitImpl(const Dataset& train,
                                              int extra_rounds) {
  if (train.empty()) {
    return Status::InvalidArgument("cannot resume RF on an empty dataset");
  }
  const size_t num_features = trees_.front().num_features();
  if (train.num_features() != num_features) {
    return Status::InvalidArgument(
        "feature count mismatch: got " +
        std::to_string(train.num_features()) + ", trained with " +
        std::to_string(num_features));
  }
  if (!train.x().AllFinite()) {
    return Status::InvalidArgument("RF features contain non-finite values");
  }
  if (extra_rounds == 0) return Status::OK();  // byte-identical no-op

  const size_t n = train.num_rows();
  const size_t p = train.num_features();
  int max_features = options_.max_features;
  if (max_features <= 0) max_features = static_cast<int>(p);

  // Continuation stream: keyed by the current forest size so that resuming
  // in two steps of k trees equals one step of 2k trees drawn from each
  // intermediate size, and a save/load round trip (which keeps options_ via
  // the 'resume' line and trees_ via the tree bodies) resumes identically.
  const size_t trees_before = trees_.size();
  Rng rng(options_.seed ^ (0x9e3779b97f4a7c15ULL * trees_before));
  const size_t bootstrap_size = std::max<size_t>(
      1, static_cast<size_t>(options_.bootstrap_fraction *
                             static_cast<double>(n)));
  const size_t extra = static_cast<size_t>(extra_rounds);
  std::vector<std::vector<size_t>> samples(extra);
  std::vector<uint64_t> seeds(extra);
  for (size_t t = 0; t < extra; ++t) {
    samples[t].resize(bootstrap_size);
    for (size_t i = 0; i < bootstrap_size; ++i) {
      samples[t][i] = static_cast<size_t>(rng.UniformInt(n));
    }
    seeds[t] = rng.NextUint64();
  }

  std::shared_ptr<const PreBinned> cached;
  BinMapper local_mapper;
  BinnedDataset local_binned;
  const BinMapper* mapper = nullptr;
  const BinnedDataset* binned = nullptr;
  if (options_.core == TreeCore::kBinned && options_.binning_cache) {
    cached = options_.binning_cache->GetOrCompute(
        train.x(), options_.max_bins, options_.num_threads);
    mapper = &cached->mapper;
    binned = &cached->binned;
  } else {
    local_mapper.Compute(train.x(), options_.max_bins);
    mapper = &local_mapper;
    if (options_.core == TreeCore::kBinned) {
      local_binned.Build(train.x(), *mapper, options_.num_threads);
      binned = &local_binned;
    }
  }

  trees_.resize(trees_before + extra);
  const Status fit_status = ParallelFor(
      0, extra, /*grain=*/1,
      [&](size_t chunk_begin, size_t chunk_end) -> Status {
        for (size_t t = chunk_begin; t < chunk_end; ++t) {
          DecisionTreeRegressor::Options tree_options;
          tree_options.max_depth = options_.max_depth;
          tree_options.min_samples_split = options_.min_samples_split;
          tree_options.min_samples_leaf = options_.min_samples_leaf;
          tree_options.max_features = max_features;
          tree_options.seed = seeds[t];
          tree_options.max_bins = options_.max_bins;
          tree_options.core = options_.core;

          DecisionTreeRegressor tree(tree_options);
          NM_RETURN_NOT_OK(
              tree.FitBinned(train, *mapper, binned, samples[t])
                  .WithContext("tree " +
                               std::to_string(trees_before + t)));
          trees_[trees_before + t] = std::move(tree);
        }
        return Status::OK();
      },
      options_.num_threads);
  if (!fit_status.ok()) {
    trees_.resize(trees_before);  // all-or-nothing
    return fit_status;
  }

  // The original out-of-bag membership is gone (it is not persisted and the
  // matrix may have grown), so the estimate cannot be extended coherently.
  oob_mae_ = std::numeric_limits<double>::quiet_NaN();
  telemetry::Count("ml.rf.trees_resumed", extra);
  return Status::OK();
}

std::vector<double> RandomForestRegressor::FeatureImportances() const {
  if (trees_.empty()) return {};
  std::vector<double> total;
  for (const DecisionTreeRegressor& tree : trees_) {
    const std::vector<double> imp = tree.FeatureImportances();
    if (total.empty()) total.assign(imp.size(), 0.0);
    for (size_t i = 0; i < imp.size(); ++i) total[i] += imp[i];
  }
  double sum = 0.0;
  for (double v : total) sum += v;
  if (sum > 0.0) {
    for (double& v : total) v /= sum;
  }
  return total;
}

Result<RandomForestRegressor::PredictionInterval>
RandomForestRegressor::PredictWithSpread(
    std::span<const double> features) const {
  if (trees_.empty()) {
    return Status::FailedPrecondition("RF model is not fitted");
  }
  double sum = 0.0, sum_sq = 0.0;
  for (const DecisionTreeRegressor& tree : trees_) {
    NM_ASSIGN_OR_RETURN(double pred, tree.Predict(features));
    sum += pred;
    sum_sq += pred * pred;
  }
  const double n = static_cast<double>(trees_.size());
  PredictionInterval interval;
  interval.mean = sum / n;
  const double variance =
      std::max(0.0, sum_sq / n - interval.mean * interval.mean);
  interval.stddev = std::sqrt(variance);
  return interval;
}

Result<double> RandomForestRegressor::Predict(
    std::span<const double> features) const {
  if (trees_.empty()) {
    return Status::FailedPrecondition("RF model is not fitted");
  }
  double sum = 0.0;
  for (const DecisionTreeRegressor& tree : trees_) {
    NM_ASSIGN_OR_RETURN(double pred, tree.Predict(features));
    sum += pred;
  }
  return sum / static_cast<double>(trees_.size());
}

Result<std::vector<double>> RandomForestRegressor::PredictBatchImpl(
    const Matrix& x) const {
  std::vector<double> out;
  out.reserve(x.rows());
  if (x.rows() == 0) return out;
  if (trees_.empty()) {
    return Status::FailedPrecondition("RF model is not fitted");
  }
  // Same accumulation order as Predict (trees in order, one sum per row),
  // so batch and per-row results are bit-identical.
  for (size_t r = 0; r < x.rows(); ++r) {
    double sum = 0.0;
    for (const DecisionTreeRegressor& tree : trees_) {
      NM_ASSIGN_OR_RETURN(double pred, tree.Predict(x.Row(r)));
      sum += pred;
    }
    out.push_back(sum / static_cast<double>(trees_.size()));
  }
  return out;
}


Status RandomForestRegressor::Save(std::ostream& out) const {
  if (trees_.empty()) {
    return Status::FailedPrecondition("cannot save an unfitted RF model");
  }
  out.precision(17);
  out << "nextmaint-model v1 RF\n";
  // Resumable state: the hyper-parameters and seed ContinueFit needs to
  // extend the forest after a round trip (num_estimators stays out — the
  // resume budget is the caller's extra_rounds). Readers predate this
  // line, so LoadBody treats it as optional.
  out << "resume " << options_.max_depth << " " << options_.min_samples_split
      << " " << options_.min_samples_leaf << " " << options_.max_features
      << " " << options_.bootstrap_fraction << " " << options_.seed << " "
      << options_.max_bins << "\n";
  out << "trees " << trees_.size() << "\n";
  for (const DecisionTreeRegressor& tree : trees_) {
    NM_RETURN_NOT_OK(tree.Save(out));
  }
  out << "end\n";
  if (!out) return Status::IOError("RF serialization failed");
  return Status::OK();
}

Result<RandomForestRegressor> RandomForestRegressor::LoadBody(
    std::istream& in) {
  std::string token;
  size_t count = 0;
  RandomForestRegressor model;
  if (!(in >> token)) {
    return Status::DataError("RF: truncated body");
  }
  if (token == "resume") {
    // Optional resumable-state line (absent in pre-warm-start files, whose
    // models load fine but resume with default hyper-parameters).
    Options& o = model.options_;
    if (!(in >> o.max_depth >> o.min_samples_split >> o.min_samples_leaf >>
          o.max_features >> o.bootstrap_fraction >> o.seed >> o.max_bins)) {
      return Status::DataError("RF: truncated 'resume' line");
    }
    if (o.min_samples_split < 1 || o.min_samples_leaf < 1 ||
        o.bootstrap_fraction <= 0.0 || o.bootstrap_fraction > 1.0 ||
        o.max_bins < 2 || o.max_bins > 65535) {
      return Status::DataError("RF: 'resume' values out of range");
    }
    if (!(in >> token)) {
      return Status::DataError("RF: truncated after 'resume'");
    }
  }
  if (!(in >> count) || token != "trees") {
    return Status::DataError("RF: expected 'trees <k>'");
  }
  if (count == 0 || count > 1'000'000) {
    return Status::DataError("RF: implausible tree count");
  }
  model.trees_.reserve(count);
  for (size_t t = 0; t < count; ++t) {
    std::string magic, version, name;
    if (!(in >> magic >> version >> name) || name != "Tree") {
      return Status::DataError("RF: expected embedded tree header");
    }
    NM_ASSIGN_OR_RETURN(DecisionTreeRegressor tree,
                        DecisionTreeRegressor::LoadBody(in));
    model.trees_.push_back(std::move(tree));
  }
  if (!(in >> token) || token != "end") {
    return Status::DataError("RF: missing end marker");
  }
  return model;
}

}  // namespace ml
}  // namespace nextmaint
