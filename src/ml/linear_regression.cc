#include "ml/linear_regression.h"

#include <cmath>

#include "common/macros.h"

namespace nextmaint {
namespace ml {

LinearRegression::Options LinearRegression::OptionsFromParams(
    const ParamMap& params) {
  Options options;
  if (auto it = params.find("l2"); it != params.end()) options.l2 = it->second;
  return options;
}

Status LinearRegression::FitImpl(const Dataset& train) {
  fitted_ = false;
  if (train.empty()) {
    return Status::InvalidArgument("cannot fit LR on an empty dataset");
  }
  if (!train.x().AllFinite()) {
    return Status::InvalidArgument("LR training features contain non-finite");
  }
  const size_t n = train.num_rows();
  const size_t p = train.num_features();

  // Center the targets and (when fitting an intercept) the features so the
  // intercept stays unpenalized under ridge.
  std::vector<double> feature_means(p, 0.0);
  double target_mean = 0.0;
  if (options_.fit_intercept) {
    for (size_t r = 0; r < n; ++r) {
      std::span<const double> row = train.x().Row(r);
      for (size_t c = 0; c < p; ++c) feature_means[c] += row[c];
      target_mean += train.y()[r];
    }
    for (double& m : feature_means) m /= static_cast<double>(n);
    target_mean /= static_cast<double>(n);
  }

  Matrix centered(n, p);
  std::vector<double> centered_y(n);
  for (size_t r = 0; r < n; ++r) {
    std::span<const double> row = train.x().Row(r);
    for (size_t c = 0; c < p; ++c) {
      centered(r, c) = row[c] - feature_means[c];
    }
    centered_y[r] = train.y()[r] - target_mean;
  }

  NM_ASSIGN_OR_RETURN(
      weights_,
      SolveLeastSquares(
          centered,
          std::span<const double>(centered_y.data(), centered_y.size()),
          options_.l2));

  intercept_ = target_mean;
  for (size_t c = 0; c < p; ++c) intercept_ -= weights_[c] * feature_means[c];
  if (!options_.fit_intercept) intercept_ = 0.0;

  for (double w : weights_) {
    if (!std::isfinite(w)) {
      return Status::NumericError("LR produced non-finite weights");
    }
  }
  fitted_ = true;
  return Status::OK();
}

Result<double> LinearRegression::Predict(
    std::span<const double> features) const {
  if (!fitted_) {
    return Status::FailedPrecondition("LR model is not fitted");
  }
  if (features.size() != weights_.size()) {
    return Status::InvalidArgument(
        "feature count mismatch: got " + std::to_string(features.size()) +
        ", trained with " + std::to_string(weights_.size()));
  }
  return intercept_ + Dot(features, weights_);
}


Status LinearRegression::Save(std::ostream& out) const {
  if (!fitted_) {
    return Status::FailedPrecondition("cannot save an unfitted LR model");
  }
  out.precision(17);
  out << "nextmaint-model v1 LR\n";
  out << "weights " << weights_.size();
  for (double w : weights_) out << " " << w;
  out << "\nintercept " << intercept_ << "\nend\n";
  if (!out) return Status::IOError("LR serialization failed");
  return Status::OK();
}

Result<LinearRegression> LinearRegression::LoadBody(std::istream& in) {
  std::string token;
  size_t count = 0;
  if (!(in >> token >> count) || token != "weights") {
    return Status::DataError("LR: expected 'weights <n>'");
  }
  if (count > 1'000'000) {
    return Status::DataError("LR: implausible weight count");
  }
  LinearRegression model;
  model.weights_.resize(count);
  for (double& w : model.weights_) {
    if (!(in >> w)) return Status::DataError("LR: truncated weights");
  }
  if (!(in >> token >> model.intercept_) || token != "intercept") {
    return Status::DataError("LR: expected 'intercept <b>'");
  }
  if (!(in >> token) || token != "end") {
    return Status::DataError("LR: missing end marker");
  }
  model.fitted_ = true;
  return model;
}

}  // namespace ml
}  // namespace nextmaint
