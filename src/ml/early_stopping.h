#ifndef NEXTMAINT_ML_EARLY_STOPPING_H_
#define NEXTMAINT_ML_EARLY_STOPPING_H_

#include <limits>

/// \file early_stopping.h
/// Validation-metric plateau detection shared by the boosting loop
/// (ml/hist_gradient_boosting.h) and the grid-search sweep
/// (ml/model_selection.h), following the callback shape of LightGBM's
/// early-stopping callback: one observation per round, stop once the best
/// metric has not improved by more than `min_delta` for `patience`
/// consecutive rounds. Lower metric is better.

namespace nextmaint {
namespace ml {

/// Plateau detector over a lower-is-better metric stream.
///
/// Deterministic and allocation-free: the consumer feeds one metric value
/// per round and stops when Update returns true. The detector never
/// un-stops; call Reset to reuse it for a fresh stream.
class EarlyStopping {
 public:
  struct Options {
    /// Consecutive non-improving rounds tolerated before stopping.
    int patience = 10;
    /// Minimum decrease of the best metric that counts as an improvement
    /// (guards against FP noise keeping a plateaued run alive forever).
    double min_delta = 1e-12;
  };

  EarlyStopping() = default;
  explicit EarlyStopping(Options options) : options_(options) {}

  /// Records one round's metric. Returns true when the stream has
  /// plateaued: `patience` consecutive rounds without an improvement
  /// greater than `min_delta` over the best metric seen so far.
  bool Update(double metric) {
    if (metric < best_metric_ - options_.min_delta) {
      best_metric_ = metric;
      best_round_ = round_;
      stale_rounds_ = 0;
    } else if (++stale_rounds_ >= options_.patience) {
      stopped_ = true;
    }
    ++round_;
    return stopped_;
  }

  /// True once Update has reported a plateau.
  bool stopped() const { return stopped_; }
  /// Best (lowest) metric observed; +inf before the first Update.
  double best_metric() const { return best_metric_; }
  /// 0-based round of the best metric; -1 before the first improvement.
  int best_round() const { return best_round_; }
  /// Rounds observed so far.
  int rounds_observed() const { return round_; }

  /// Forgets everything; the next Update starts a fresh stream.
  void Reset() {
    best_metric_ = std::numeric_limits<double>::infinity();
    best_round_ = -1;
    stale_rounds_ = 0;
    round_ = 0;
    stopped_ = false;
  }

 private:
  Options options_;
  double best_metric_ = std::numeric_limits<double>::infinity();
  int best_round_ = -1;
  int stale_rounds_ = 0;
  int round_ = 0;
  bool stopped_ = false;
};

}  // namespace ml
}  // namespace nextmaint

#endif  // NEXTMAINT_ML_EARLY_STOPPING_H_
