#include "ml/matrix.h"

#include <cmath>
#include <sstream>

#include "common/macros.h"

namespace nextmaint {
namespace ml {

Matrix::Matrix(size_t rows, size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  Matrix m;
  for (const auto& row : rows) {
    m.AppendRow(std::span<const double>(row.data(), row.size()));
  }
  return m;
}

std::vector<double> Matrix::Col(size_t c) const {
  NM_CHECK(c < cols_);
  std::vector<double> out(rows_);
  for (size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

void Matrix::AppendRow(std::span<const double> row) {
  if (rows_ == 0 && cols_ == 0) {
    cols_ = row.size();
  }
  NM_CHECK_MSG(row.size() == cols_, "row length mismatch");
  data_.insert(data_.end(), row.begin(), row.end());
  ++rows_;
}

Matrix Matrix::SelectRows(const std::vector<size_t>& indices) const {
  Matrix out(indices.size(), cols_);
  for (size_t i = 0; i < indices.size(); ++i) {
    NM_CHECK(indices[i] < rows_);
    std::span<const double> src = Row(indices[i]);
    std::copy(src.begin(), src.end(), out.MutableRow(i).begin());
  }
  return out;
}

Matrix Matrix::SelectCols(const std::vector<size_t>& indices) const {
  Matrix out(rows_, indices.size());
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t i = 0; i < indices.size(); ++i) {
      NM_CHECK(indices[i] < cols_);
      out(r, i) = (*this)(r, indices[i]);
    }
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  NM_CHECK_MSG(cols_ == other.rows_, "shape mismatch in Multiply");
  Matrix out(rows_, other.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      for (size_t j = 0; j < other.cols_; ++j) {
        out(i, j) += aik * other(k, j);
      }
    }
  }
  return out;
}

Matrix Matrix::Gram() const {
  Matrix out(cols_, cols_);
  for (size_t r = 0; r < rows_; ++r) {
    std::span<const double> row = Row(r);
    for (size_t i = 0; i < cols_; ++i) {
      const double xi = row[i];
      if (xi == 0.0) continue;
      for (size_t j = i; j < cols_; ++j) {
        out(i, j) += xi * row[j];
      }
    }
  }
  // Mirror the upper triangle.
  for (size_t i = 0; i < cols_; ++i) {
    for (size_t j = 0; j < i; ++j) out(i, j) = out(j, i);
  }
  return out;
}

std::vector<double> Matrix::MultiplyVector(std::span<const double> v) const {
  NM_CHECK(v.size() == cols_);
  std::vector<double> out(rows_);
  for (size_t r = 0; r < rows_; ++r) out[r] = Dot(Row(r), v);
  return out;
}

std::vector<double> Matrix::TransposeMultiplyVector(
    std::span<const double> v) const {
  NM_CHECK(v.size() == rows_);
  std::vector<double> out(cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double vr = v[r];
    if (vr == 0.0) continue;
    std::span<const double> row = Row(r);
    for (size_t c = 0; c < cols_; ++c) out[c] += vr * row[c];
  }
  return out;
}

bool Matrix::AllFinite() const {
  for (double v : data_) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

std::string Matrix::ToString(int precision) const {
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed;
  for (size_t r = 0; r < rows_; ++r) {
    os << "[";
    for (size_t c = 0; c < cols_; ++c) {
      if (c > 0) os << ", ";
      os << (*this)(r, c);
    }
    os << "]\n";
  }
  return os.str();
}

Result<std::vector<double>> CholeskySolve(const Matrix& a,
                                          std::span<const double> b) {
  const size_t n = a.rows();
  if (a.cols() != n) {
    return Status::InvalidArgument("Cholesky requires a square matrix");
  }
  if (b.size() != n) {
    return Status::InvalidArgument("rhs length mismatch");
  }

  // Factor A = L L^T in place (lower triangle of `l`).
  Matrix l(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double sum = a(i, j);
      for (size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      if (i == j) {
        if (sum <= 0.0 || !std::isfinite(sum)) {
          return Status::NumericError(
              "matrix is not positive definite (pivot " +
              std::to_string(sum) + " at " + std::to_string(i) + ")");
        }
        l(i, i) = std::sqrt(sum);
      } else {
        l(i, j) = sum / l(j, j);
      }
    }
  }

  // Forward substitution: L z = b.
  std::vector<double> z(n);
  for (size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (size_t k = 0; k < i; ++k) sum -= l(i, k) * z[k];
    z[i] = sum / l(i, i);
  }
  // Back substitution: L^T x = z.
  std::vector<double> x(n);
  for (size_t ii = n; ii-- > 0;) {
    double sum = z[ii];
    for (size_t k = ii + 1; k < n; ++k) sum -= l(k, ii) * x[k];
    x[ii] = sum / l(ii, ii);
  }
  return x;
}

Result<std::vector<double>> SolveLeastSquares(const Matrix& x,
                                              std::span<const double> y,
                                              double l2) {
  if (x.rows() != y.size()) {
    return Status::InvalidArgument("X rows != y length");
  }
  if (x.rows() == 0 || x.cols() == 0) {
    return Status::InvalidArgument("empty design matrix");
  }
  Matrix gram = x.Gram();
  std::vector<double> xty = x.TransposeMultiplyVector(y);

  for (size_t i = 0; i < gram.rows(); ++i) gram(i, i) += l2;

  Result<std::vector<double>> solution =
      CholeskySolve(gram, std::span<const double>(xty.data(), xty.size()));
  if (solution.ok()) return solution;

  // Singular normal equations (e.g. perfectly collinear features): retry
  // with a jitter proportional to the matrix scale.
  double trace = 0.0;
  for (size_t i = 0; i < gram.rows(); ++i) trace += gram(i, i);
  const double jitter =
      1e-10 * (trace > 0 ? trace / static_cast<double>(gram.rows()) : 1.0) +
      1e-12;
  for (size_t i = 0; i < gram.rows(); ++i) gram(i, i) += jitter;
  Result<std::vector<double>> retry =
      CholeskySolve(gram, std::span<const double>(xty.data(), xty.size()));
  if (!retry.ok()) {
    return retry.status().WithContext("least squares failed even with jitter");
  }
  return retry;
}

double Dot(std::span<const double> a, std::span<const double> b) {
  NM_CHECK(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

}  // namespace ml
}  // namespace nextmaint
