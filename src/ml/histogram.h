#ifndef NEXTMAINT_ML_HISTOGRAM_H_
#define NEXTMAINT_ML_HISTOGRAM_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <numeric>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/parallel.h"
#include "ml/binned_dataset.h"

/// \file histogram.h
/// Histogram-based tree growing shared by DecisionTreeRegressor,
/// RandomForestRegressor and HistGradientBoostingRegressor. One templated
/// grower runs for both the row-oriented reference core and the columnar
/// binned core — the template parameter only changes where a (feature, row)
/// bin comes from — so the two cores agree bit-for-bit by construction
/// (tests/ml/binned_equality_test.cc).
///
/// Kernels here consume pre-binned sources exclusively: nextmaint_lint bans
/// raw-matrix row iteration in this file and histogram.cc (rule
/// row-iteration), keeping the hot path columnar.

namespace nextmaint {
namespace ml {

/// Flat per-feature histogram addressing: feature f owns the half-open
/// slice [feature_offset(f), feature_offset(f) + feature_bins(f)).
class HistogramLayout {
 public:
  HistogramLayout() = default;
  explicit HistogramLayout(const BinMapper& mapper) {
    offsets_.reserve(mapper.num_features() + 1);
    for (size_t f = 0; f < mapper.num_features(); ++f) {
      offsets_.push_back(offsets_.back() + mapper.BinCount(f));
    }
  }

  size_t num_features() const { return offsets_.size() - 1; }
  size_t feature_offset(size_t f) const { return offsets_[f]; }
  size_t feature_bins(size_t f) const {
    return offsets_[f + 1] - offsets_[f];
  }
  size_t total_bins() const { return offsets_.back(); }

 private:
  std::vector<size_t> offsets_ = {0};
};

/// Per-node histogram: gradient sum and sample count per bin, all features
/// in one flat buffer so a whole node resets and subtracts contiguously.
class NodeHistogram {
 public:
  void Reset(const HistogramLayout& layout);

  double* grad(const HistogramLayout& layout, size_t f) {
    return grad_.data() + layout.feature_offset(f);
  }
  const double* grad(const HistogramLayout& layout, size_t f) const {
    return grad_.data() + layout.feature_offset(f);
  }
  uint32_t* count(const HistogramLayout& layout, size_t f) {
    return count_.data() + layout.feature_offset(f);
  }
  const uint32_t* count(const HistogramLayout& layout, size_t f) const {
    return count_.data() + layout.feature_offset(f);
  }

  /// Parent-minus-sibling subtraction for one feature slice, in place:
  /// this (the parent's buffer) becomes the larger child's histogram.
  void SubtractFeature(const HistogramLayout& layout, size_t f,
                       const NodeHistogram& sibling);

 private:
  std::vector<double> grad_;
  std::vector<uint32_t> count_;
};

/// The index permutation a growing tree partitions, plus the leaf ranges it
/// ends up with. Rows are stored as a multiset (bootstrap duplicates
/// allowed); Split only ever permutes [begin, end), so the leaf ranges of a
/// finished tree tile the whole index array — no sample is lost or
/// duplicated (LeavesCoverAll, pinned by tests/ml/binned_property_test.cc).
class DataPartition {
 public:
  /// Identity permutation over [0, n).
  void Reset(size_t n);
  /// Explicit row multiset (the forest's bootstrap entry point).
  void Reset(const std::vector<size_t>& rows);

  size_t size() const { return indices_.size(); }
  uint32_t row(size_t i) const { return indices_[i]; }
  std::span<const uint32_t> indices() const {
    return {indices_.data(), indices_.size()};
  }

  /// Partitions [begin, end) so rows satisfying `pred` come first; returns
  /// the boundary position.
  template <class Pred>
  size_t Split(size_t begin, size_t end, Pred pred) {
    const auto first = indices_.begin() + static_cast<ptrdiff_t>(begin);
    const auto last = indices_.begin() + static_cast<ptrdiff_t>(end);
    const auto mid = std::partition(first, last, pred);
    return static_cast<size_t>(mid - indices_.begin());
  }

  void AddLeaf(size_t begin, size_t end) { leaves_.emplace_back(begin, end); }
  const std::vector<std::pair<size_t, size_t>>& leaf_ranges() const {
    return leaves_;
  }
  /// True when the recorded leaf ranges tile [0, size()) contiguously in
  /// order — the no-sample-lost invariant of a completed grow.
  bool LeavesCoverAll() const;

 private:
  std::vector<uint32_t> indices_;
  std::vector<std::pair<size_t, size_t>> leaves_;
};

/// One grown node; field-compatible with the learners' node structs.
/// Nodes are emitted in preorder (node, left subtree, right subtree).
struct GrowNode {
  int32_t left = -1;
  int32_t right = -1;
  int32_t feature = -1;
  double threshold = 0.0;  ///< raw-value threshold (bin upper bound)
  double value = 0.0;      ///< leaf payload (mean or Newton weight)
  double gain = 0.0;       ///< split gain (0 for leaves)
  bool is_leaf() const { return left < 0; }
};

/// Growth policy. The two leaf modes cover the learners:
///  - newton == false (Tree/RF): leaf value is the target mean, split gain
///    is the SSE reduction and min_gain is relative to the parent score;
///  - newton == true (XGB): leaf value is -learning_rate * G / (H + l2)
///    with unit hessians (H == count), min_gain is absolute.
struct GrowSpec {
  bool depth_limited = false;
  int max_depth = 0;
  size_t min_samples_split = 2;
  size_t min_samples_leaf = 1;
  /// Candidate features per split; 0 means all. The subset is drawn with a
  /// partial Fisher-Yates from `seed`, consumed at split attempts only, so
  /// both cores draw identical subsets.
  size_t max_features = 0;
  uint64_t seed = 0;
  bool newton = false;
  double learning_rate = 1.0;
  double l2 = 0.0;
  double min_gain = 1e-12;
  /// Per-feature fill/scan concurrency; candidates are reduced serially in
  /// candidate order, so any value is bit-identical.
  int num_threads = 1;
  /// Nodes below this many rows stay serial (pool hand-off not amortized).
  size_t min_rows_for_parallel = 512;
};

namespace internal {

/// SplitMix64 step for cheap feature subsampling without dragging a full
/// Rng through the recursion.
inline uint64_t NextRandom(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// The shared grower. BinSource provides `uint32_t Bin(feature, row)`:
/// BinnedDataset streams materialized columns, OnTheFlyBins re-derives each
/// bin from the raw value — everything else is identical between the cores.
template <class BinSource>
class HistTreeGrower {
 public:
  HistTreeGrower(const BinSource& bins, const BinMapper& mapper,
                 const HistogramLayout& layout, std::span<const double> values,
                 DataPartition* partition, const GrowSpec& spec)
      : bins_(bins),
        mapper_(mapper),
        layout_(layout),
        values_(values),
        partition_(partition),
        spec_(spec) {}

  std::vector<GrowNode> Grow() {
    NM_CHECK(partition_->size() > 0);
    nodes_.reserve(64);
    uint64_t rng_state = spec_.seed;
    NodeHistogram* root = AcquireHistogram(0);
    FillHistogram(0, partition_->size(), /*parent=*/nullptr, root);
    BuildNode(0, partition_->size(), 0, root, &rng_state);
    NM_CHECK(partition_->LeavesCoverAll());
    return std::move(nodes_);
  }

 private:
  struct Best {
    double gain = 0.0;
    size_t feature = 0;
    uint32_t bin = 0;
  };

  NodeHistogram* AcquireHistogram(size_t level) {
    while (pool_.size() <= level) {
      pool_.push_back(std::make_unique<NodeHistogram>());
    }
    return pool_[level].get();
  }

  int SplitThreads(size_t count) const {
    return count >= spec_.min_rows_for_parallel
               ? ResolveThreadCount(spec_.num_threads)
               : 1;
  }

  /// Accumulates [begin, end) into `hist` (per-feature tasks, one chunk per
  /// lane). When `parent` is given, each finished feature slice is
  /// immediately subtracted from the parent in place — the fused
  /// fill-smaller-child / derive-larger-child step.
  void FillHistogram(size_t begin, size_t end, NodeHistogram* parent,
                     NodeHistogram* hist) {
    hist->Reset(layout_);
    const int threads = SplitThreads(end - begin);
    const size_t num_features = layout_.num_features();
    const size_t grain =
        (num_features - 1) / static_cast<size_t>(threads) + 1;
    const Status status = ParallelFor(
        0, num_features, grain,
        [&](size_t chunk_begin, size_t chunk_end) -> Status {
          const uint32_t* rows = partition_->indices().data();
          for (size_t f = chunk_begin; f < chunk_end; ++f) {
            double* grad = hist->grad(layout_, f);
            uint32_t* bin_count = hist->count(layout_, f);
            if constexpr (std::is_same_v<BinSource, BinnedDataset>) {
              // The binned fast path: hoist the column's storage pointer
              // and the narrow/wide dispatch out of the row loop. Same
              // rows, same order, same additions — bit-identical to the
              // generic loop below, just without the per-access dispatch.
              if (bins_.IsNarrow(f)) {
                const uint8_t* column = bins_.NarrowColumn(f);
                for (size_t i = begin; i < end; ++i) {
                  const uint32_t row = rows[i];
                  const uint32_t bin = column[row];
                  grad[bin] += values_[row];
                  ++bin_count[bin];
                }
              } else {
                const uint16_t* column = bins_.WideColumn(f);
                for (size_t i = begin; i < end; ++i) {
                  const uint32_t row = rows[i];
                  const uint32_t bin = column[row];
                  grad[bin] += values_[row];
                  ++bin_count[bin];
                }
              }
            } else {
              for (size_t i = begin; i < end; ++i) {
                const uint32_t row = rows[i];
                const uint32_t bin = bins_.Bin(f, row);
                grad[bin] += values_[row];
                ++bin_count[bin];
              }
            }
            if (parent != nullptr) {
              parent->SubtractFeature(layout_, f, *hist);
            }
          }
          return Status::OK();
        },
        threads);
    NM_CHECK(status.ok());  // the fill body has no failure path
  }

  int32_t BuildNode(size_t begin, size_t end, int depth, NodeHistogram* hist,
                    uint64_t* rng_state) {
    const size_t count = end - begin;
    NM_CHECK(count > 0);

    // Node aggregate from the raw values in partition-index order, not from
    // the histogram: leaf payloads must not depend on bin layout, and the
    // index order is shared by both cores.
    double grad_sum = 0.0;
    for (size_t i = begin; i < end; ++i) {
      grad_sum += values_[partition_->row(i)];
    }

    const int32_t node_index = static_cast<int32_t>(nodes_.size());
    nodes_.push_back(GrowNode{});
    nodes_[node_index].value =
        spec_.newton ? -spec_.learning_rate * grad_sum /
                           (static_cast<double>(count) + spec_.l2)
                     : grad_sum / static_cast<double>(count);

    const bool depth_exhausted =
        spec_.depth_limited && depth >= spec_.max_depth;
    if (depth_exhausted || count < spec_.min_samples_split ||
        count < 2 * spec_.min_samples_leaf) {
      partition_->AddLeaf(begin, end);
      return node_index;
    }

    const double parent_score =
        grad_sum * grad_sum / (static_cast<double>(count) + spec_.l2);

    // Candidate features: all, or a random subset of size max_features
    // (partial Fisher-Yates: the first num_candidates entries become the
    // subset).
    const size_t num_features = layout_.num_features();
    features_.resize(num_features);
    std::iota(features_.begin(), features_.end(), size_t{0});
    size_t num_candidates = num_features;
    if (spec_.max_features > 0 && spec_.max_features < num_features) {
      num_candidates = spec_.max_features;
      for (size_t i = 0; i < num_candidates; ++i) {
        const size_t j =
            i + static_cast<size_t>(NextRandom(rng_state) %
                                    (num_features - i));
        std::swap(features_[i], features_[j]);
      }
    }

    // Per-candidate histogram scan: each candidate lands its best split in
    // candidate_best_[ci] and the winner is reduced serially in candidate
    // order below, so the chosen split is the one the serial left-to-right
    // scan would pick (strict '>' keeps the earliest candidate/bin on
    // ties) at any thread count.
    candidate_best_.assign(num_candidates, Best{});
    const int threads = SplitThreads(count);
    const size_t grain =
        (num_candidates - 1) / static_cast<size_t>(threads) + 1;
    const Status scan_status = ParallelFor(
        0, num_candidates, grain,
        [&](size_t chunk_begin, size_t chunk_end) -> Status {
          for (size_t ci = chunk_begin; ci < chunk_end; ++ci) {
            const size_t f = features_[ci];
            Best local;
            local.feature = f;
            const size_t num_bins = layout_.feature_bins(f);
            if (num_bins < 2) {
              candidate_best_[ci] = local;
              continue;
            }
            const double* grad = hist->grad(layout_, f);
            const uint32_t* bin_count = hist->count(layout_, f);
            double left_grad = 0.0;
            size_t left_count = 0;
            for (size_t b = 0; b + 1 < num_bins; ++b) {
              left_grad += grad[b];
              left_count += bin_count[b];
              if (left_count < spec_.min_samples_leaf) continue;
              const size_t right_count = count - left_count;
              if (right_count < spec_.min_samples_leaf) break;
              const double right_grad = grad_sum - left_grad;
              const double gain =
                  left_grad * left_grad /
                      (static_cast<double>(left_count) + spec_.l2) +
                  right_grad * right_grad /
                      (static_cast<double>(right_count) + spec_.l2) -
                  parent_score;
              if (gain > local.gain) {
                local.gain = gain;
                local.bin = static_cast<uint32_t>(b);
              }
            }
            candidate_best_[ci] = local;
          }
          return Status::OK();
        },
        threads);
    NM_CHECK(scan_status.ok());  // the scan body has no failure path
    Best best;
    for (const Best& candidate : candidate_best_) {
      if (candidate.gain > best.gain) best = candidate;
    }

    // Mean mode measures the SSE-reduction floor relative to the parent
    // score (the historic exact-search rejection rule); Newton mode uses
    // the absolute XGBoost-style floor.
    const double gain_floor =
        spec_.newton ? spec_.min_gain
                     : spec_.min_gain * std::fabs(parent_score);
    if (best.gain <= gain_floor) {
      partition_->AddLeaf(begin, end);
      return node_index;
    }

    const size_t mid =
        partition_->Split(begin, end, [&](uint32_t row) {
          return bins_.Bin(best.feature, row) <= best.bin;
        });
    // left_count is derived from exact uint32 bin counts, so both children
    // are guaranteed non-empty.
    NM_CHECK(mid > begin && mid < end);

    nodes_[node_index].feature = static_cast<int32_t>(best.feature);
    nodes_[node_index].threshold =
        mapper_.UpperBound(best.feature, static_cast<uint16_t>(best.bin));
    nodes_[node_index].gain = best.gain;

    // Children via the parent-minus-sibling trick: the smaller child is
    // accumulated directly into a fresh buffer; the fused fill turns the
    // parent's buffer into the larger child's histogram in place. Buffer
    // reuse by recursion level is safe: a node at depth d only ever holds a
    // buffer acquired at level <= d, so level d+1 is free for its smaller
    // child, and the first-child subtree only acquires levels >= d+2.
    NodeHistogram* child =
        AcquireHistogram(static_cast<size_t>(depth) + 1);
    const bool left_smaller = mid - begin <= end - mid;
    if (left_smaller) {
      FillHistogram(begin, mid, hist, child);
    } else {
      FillHistogram(mid, end, hist, child);
    }
    NodeHistogram* left_hist = left_smaller ? child : hist;
    NodeHistogram* right_hist = left_smaller ? hist : child;
    const int32_t left =
        BuildNode(begin, mid, depth + 1, left_hist, rng_state);
    const int32_t right =
        BuildNode(mid, end, depth + 1, right_hist, rng_state);
    nodes_[node_index].left = left;
    nodes_[node_index].right = right;
    return node_index;
  }

  const BinSource& bins_;
  const BinMapper& mapper_;
  const HistogramLayout& layout_;
  std::span<const double> values_;
  DataPartition* partition_;
  const GrowSpec& spec_;
  std::vector<GrowNode> nodes_;
  std::vector<std::unique_ptr<NodeHistogram>> pool_;
  std::vector<size_t> features_;
  std::vector<Best> candidate_best_;
};

}  // namespace internal

/// Grows one regression tree over the rows currently held by `partition`
/// (which ends up holding the leaf index ranges). `values` are the training
/// targets (mean mode) or current gradients (Newton mode), indexed by row
/// id. Nodes come back in preorder.
template <class BinSource>
std::vector<GrowNode> GrowHistTree(const BinSource& bins,
                                   const BinMapper& mapper,
                                   const HistogramLayout& layout,
                                   std::span<const double> values,
                                   DataPartition* partition,
                                   const GrowSpec& spec) {
  internal::HistTreeGrower<BinSource> grower(bins, mapper, layout, values,
                                             partition, spec);
  return grower.Grow();
}

}  // namespace ml
}  // namespace nextmaint

#endif  // NEXTMAINT_ML_HISTOGRAM_H_
