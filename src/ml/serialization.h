#ifndef NEXTMAINT_ML_SERIALIZATION_H_
#define NEXTMAINT_ML_SERIALIZATION_H_

#include <istream>
#include <memory>

#include "common/status.h"
#include "ml/regressor.h"

/// \file serialization.h
/// Model persistence.
///
/// Every fitted model serializes to a line-oriented text format via
/// Regressor::Save; this header provides the matching reader. The format is
/// versioned ("nextmaint-model v1 <name>") and deliberately human-auditable
/// — the deployed system stores per-vehicle models alongside the fleet
/// database and operators occasionally inspect them.
///
/// The reader recognises the generic model zoo (LR, LSVR, Tree, RF, XGB).
/// The problem-specific BL predictor lives in core; use
/// core::LoadAnyModel to read files that may contain either kind.

namespace nextmaint {
namespace ml {

/// Magic first token of every serialized model.
inline constexpr const char* kModelMagic = "nextmaint-model";
/// Current format version token.
inline constexpr const char* kModelVersion = "v1";

/// Reads the "nextmaint-model v1 <name>" header and returns the model name,
/// leaving the stream positioned at the model body. Fails with DataError on
/// malformed or version-mismatched headers.
[[nodiscard]] Result<std::string> ReadModelHeader(std::istream& in);

/// Reconstructs a model serialized by Regressor::Save. Fails with NotFound
/// for model names this reader does not know (e.g. "BL" — see
/// core::LoadAnyModel).
[[nodiscard]] Result<std::unique_ptr<Regressor>> LoadRegressor(std::istream& in);

/// Loads a model whose header has already been consumed (used by
/// LoadRegressor and by core::LoadAnyModel to dispatch on the name).
[[nodiscard]] Result<std::unique_ptr<Regressor>> LoadRegressorBody(
    const std::string& name, std::istream& in);

}  // namespace ml
}  // namespace nextmaint

#endif  // NEXTMAINT_ML_SERIALIZATION_H_
