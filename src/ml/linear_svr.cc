#include "ml/linear_svr.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/macros.h"
#include "common/rng.h"

namespace nextmaint {
namespace ml {

LinearSvr::Options LinearSvr::OptionsFromParams(const ParamMap& params) {
  Options options;
  if (auto it = params.find("C"); it != params.end()) options.c = it->second;
  if (auto it = params.find("epsilon"); it != params.end()) {
    options.epsilon = it->second;
  }
  return options;
}

Status LinearSvr::FitImpl(const Dataset& train) {
  fitted_ = false;
  if (train.empty()) {
    return Status::InvalidArgument("cannot fit LSVR on an empty dataset");
  }
  if (!train.x().AllFinite()) {
    return Status::InvalidArgument("LSVR features contain non-finite values");
  }
  if (options_.c <= 0.0) {
    return Status::InvalidArgument("LSVR requires C > 0");
  }
  if (options_.epsilon < 0.0) {
    return Status::InvalidArgument("LSVR requires epsilon >= 0");
  }

  const size_t n = train.num_rows();
  const size_t p = train.num_features();

  // Optional internal standardization: z = (x - mean) / std. Constant
  // features keep std = 1 so they map to 0 and receive no weight.
  std::vector<double> means(p, 0.0), stds(p, 1.0);
  if (options_.standardize) {
    for (size_t r = 0; r < n; ++r) {
      std::span<const double> row = train.x().Row(r);
      for (size_t c = 0; c < p; ++c) means[c] += row[c];
    }
    for (double& m : means) m /= static_cast<double>(n);
    std::vector<double> acc(p, 0.0);
    for (size_t r = 0; r < n; ++r) {
      std::span<const double> row = train.x().Row(r);
      for (size_t c = 0; c < p; ++c) {
        const double d = row[c] - means[c];
        acc[c] += d * d;
      }
    }
    for (size_t c = 0; c < p; ++c) {
      const double sd = std::sqrt(acc[c] / static_cast<double>(n));
      stds[c] = sd > 1e-12 ? sd : 1.0;
    }
  }

  // Augmented design: standardized features plus a constant bias column.
  // w has p+1 entries; the last is the intercept in standardized space.
  const size_t dim = p + 1;
  Matrix z(n, dim);
  for (size_t r = 0; r < n; ++r) {
    std::span<const double> row = train.x().Row(r);
    for (size_t c = 0; c < p; ++c) z(r, c) = (row[c] - means[c]) / stds[c];
    z(r, p) = 1.0;
  }

  // Precompute Q_ii = ||z_i||^2.
  std::vector<double> q_diag(n);
  for (size_t i = 0; i < n; ++i) {
    q_diag[i] = Dot(z.Row(i), z.Row(i));
  }

  std::vector<double> w(dim, 0.0);
  std::vector<double> beta(n, 0.0);
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  Rng rng(options_.seed);

  const double c_bound = options_.c;
  const double eps = options_.epsilon;
  iterations_run_ = 0;

  for (int pass = 0; pass < options_.max_iterations; ++pass) {
    rng.Shuffle(&order);
    double max_delta = 0.0;
    for (size_t idx : order) {
      const double qii = q_diag[idx];
      if (qii <= 0.0) continue;  // all-zero row carries no information
      std::span<const double> zi = z.Row(idx);
      const double g = Dot(zi, w) - train.y()[idx];

      // Minimize 0.5*q*d^2 + g*d + eps*|beta+d| over d with
      // beta+d in [-C, C]: piecewise-quadratic with a kink at beta+d = 0.
      const double b = beta[idx];
      double d;
      const double d_pos = -(g + eps) / qii;  // stationary point if beta+d>0
      const double d_neg = -(g - eps) / qii;  // stationary point if beta+d<0
      if (b + d_pos > 0.0) {
        d = d_pos;
      } else if (b + d_neg < 0.0) {
        d = d_neg;
      } else {
        d = -b;  // minimum at the kink
      }
      const double new_beta = std::clamp(b + d, -c_bound, c_bound);
      const double delta = new_beta - b;
      if (delta == 0.0) continue;
      beta[idx] = new_beta;
      for (size_t c = 0; c < dim; ++c) w[c] += delta * zi[c];
      max_delta = std::max(max_delta, std::fabs(delta) * std::sqrt(qii));
    }
    ++iterations_run_;
    if (max_delta < options_.tolerance) break;
  }

  // Map the standardized-space weights back to input scale:
  //   w.z = sum_c w_c * (x_c - mean_c)/std_c + w_bias
  weights_.assign(p, 0.0);
  intercept_ = w[p];
  for (size_t c = 0; c < p; ++c) {
    weights_[c] = w[c] / stds[c];
    intercept_ -= w[c] * means[c] / stds[c];
  }
  for (double v : weights_) {
    if (!std::isfinite(v)) {
      return Status::NumericError("LSVR produced non-finite weights");
    }
  }
  if (!std::isfinite(intercept_)) {
    return Status::NumericError("LSVR produced non-finite intercept");
  }
  fitted_ = true;
  return Status::OK();
}

Result<double> LinearSvr::Predict(std::span<const double> features) const {
  if (!fitted_) {
    return Status::FailedPrecondition("LSVR model is not fitted");
  }
  if (features.size() != weights_.size()) {
    return Status::InvalidArgument(
        "feature count mismatch: got " + std::to_string(features.size()) +
        ", trained with " + std::to_string(weights_.size()));
  }
  return intercept_ + Dot(features, weights_);
}


Status LinearSvr::Save(std::ostream& out) const {
  if (!fitted_) {
    return Status::FailedPrecondition("cannot save an unfitted LSVR model");
  }
  out.precision(17);
  out << "nextmaint-model v1 LSVR\n";
  out << "weights " << weights_.size();
  for (double w : weights_) out << " " << w;
  out << "\nintercept " << intercept_ << "\nend\n";
  if (!out) return Status::IOError("LSVR serialization failed");
  return Status::OK();
}

Result<LinearSvr> LinearSvr::LoadBody(std::istream& in) {
  std::string token;
  size_t count = 0;
  if (!(in >> token >> count) || token != "weights") {
    return Status::DataError("LSVR: expected 'weights <n>'");
  }
  if (count > 1'000'000) {
    return Status::DataError("LSVR: implausible weight count");
  }
  LinearSvr model;
  model.weights_.resize(count);
  for (double& w : model.weights_) {
    if (!(in >> w)) return Status::DataError("LSVR: truncated weights");
  }
  if (!(in >> token >> model.intercept_) || token != "intercept") {
    return Status::DataError("LSVR: expected 'intercept <b>'");
  }
  if (!(in >> token) || token != "end") {
    return Status::DataError("LSVR: missing end marker");
  }
  model.fitted_ = true;
  return model;
}

}  // namespace ml
}  // namespace nextmaint
