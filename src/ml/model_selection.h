#ifndef NEXTMAINT_ML_MODEL_SELECTION_H_
#define NEXTMAINT_ML_MODEL_SELECTION_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "ml/dataset.h"
#include "ml/regressor.h"

/// \file model_selection.h
/// K-fold cross validation and exhaustive grid search, mirroring the paper's
/// tuning protocol: "To tune the algorithm parameter settings we have
/// performed, separately for each vehicle, a grid search using a 5-fold
/// cross validation."

namespace nextmaint {
namespace ml {

/// One train/validation index split.
struct FoldSplit {
  std::vector<size_t> train_indices;
  std::vector<size_t> test_indices;
};

/// Partitions [0, n) into k folds. When `shuffle` is true the assignment is
/// randomized with `seed`; otherwise folds are contiguous blocks (preserving
/// time order, which avoids leakage for autocorrelated series).
/// Fails when k < 2 or k > n.
[[nodiscard]] Result<std::vector<FoldSplit>> KFoldSplits(size_t n, size_t k, bool shuffle,
                                           uint64_t seed = 0);

/// Cartesian hyper-parameter grid: each key maps to its candidate values.
class ParamGrid {
 public:
  /// Adds a dimension. Values must be non-empty.
  ParamGrid& Add(const std::string& name, std::vector<double> values);

  /// All combinations in lexicographic key order. An empty grid expands to
  /// one empty ParamMap (so that grid search degenerates to plain CV).
  std::vector<ParamMap> Expand() const;

  size_t num_dimensions() const { return dimensions_.size(); }

 private:
  std::map<std::string, std::vector<double>> dimensions_;
};

/// Score function: maps (truth, predictions) to a loss. Lower is better.
using ScoreFunction = std::function<Result<double>(
    const std::vector<double>&, const std::vector<double>&)>;

/// Result of evaluating one hyper-parameter combination.
struct GridPointResult {
  ParamMap params;
  double mean_score = 0.0;
  std::vector<double> fold_scores;
};

/// Outcome of a full grid search.
struct GridSearchResult {
  ParamMap best_params;
  double best_score = 0.0;
  /// Every evaluated point, in grid order.
  std::vector<GridPointResult> all_points;
  /// Grid points actually evaluated (== all_points.size(); less than the
  /// full expansion when early stopping cut the sweep short).
  size_t points_evaluated = 0;
  /// True when the sweep stopped before exhausting the grid.
  bool stopped_early = false;
};

/// Options controlling GridSearchCV.
struct GridSearchOptions {
  size_t folds = 5;
  /// Shuffle fold assignment; the paper's protocol shuffles because the
  /// time-shift re-sampling already decorrelates records.
  bool shuffle = true;
  uint64_t seed = 1234;
  /// Early stopping over the sweep: when > 0, the search visits the grid
  /// in its deterministic expansion order and stops once the best mean
  /// score has not improved by more than `early_stopping_min_delta` for
  /// this many consecutive points (ml/early_stopping.h). 0 (the default)
  /// runs the full exhaustive sweep. On a grid whose scores plateau the
  /// truncated sweep selects the same winner as the full one — the
  /// remaining points cannot beat the recorded best.
  int early_stopping_patience = 0;
  /// Improvement threshold for the sweep's plateau detection.
  double early_stopping_min_delta = 1e-12;
};

/// Exhaustively evaluates `grid` with k-fold CV on `train`, scoring with
/// `score` (defaults to MAE when null). Returns the argmin combination.
/// Individual fold failures (e.g. a degenerate fold) fail the whole search:
/// silent skipping would bias the selection.
[[nodiscard]] Result<GridSearchResult> GridSearchCV(const RegressorFactory& factory,
                                      const ParamGrid& grid,
                                      const Dataset& train,
                                      const GridSearchOptions& options = {},
                                      const ScoreFunction& score = nullptr);

}  // namespace ml
}  // namespace nextmaint

#endif  // NEXTMAINT_ML_MODEL_SELECTION_H_
