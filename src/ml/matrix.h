#ifndef NEXTMAINT_ML_MATRIX_H_
#define NEXTMAINT_ML_MATRIX_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"

/// \file matrix.h
/// Dense row-major matrix and the small amount of linear algebra the model
/// zoo needs (Cholesky factorization for ridge/OLS normal equations).
///
/// Feature matrices here are tall and thin (thousands of rows, W+1 <= ~20
/// columns), so a simple contiguous row-major layout is both the fastest and
/// the simplest choice; no expression templates or BLAS needed.

namespace nextmaint {
namespace ml {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  /// An empty 0x0 matrix.
  Matrix() = default;

  /// A rows x cols matrix initialized to `fill`.
  Matrix(size_t rows, size_t cols, double fill = 0.0);

  /// Builds a matrix from nested initializer-style data; all inner vectors
  /// must have equal length (checked).
  static Matrix FromRows(const std::vector<std::vector<double>>& rows);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }
  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }

  /// Read-only view of row r.
  std::span<const double> Row(size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }
  /// Mutable view of row r.
  std::span<double> MutableRow(size_t r) {
    return {data_.data() + r * cols_, cols_};
  }

  /// Copies column c into a vector.
  std::vector<double> Col(size_t c) const;

  /// Appends one row; its length must equal cols() (or sets cols() when the
  /// matrix is empty).
  void AppendRow(std::span<const double> row);

  /// Matrix with the rows whose indices appear in `indices`, in order.
  Matrix SelectRows(const std::vector<size_t>& indices) const;

  /// Matrix with only the listed columns, in order.
  Matrix SelectCols(const std::vector<size_t>& indices) const;

  /// Transpose.
  Matrix Transposed() const;

  /// this * other. Aborts on shape mismatch (programmer error).
  Matrix Multiply(const Matrix& other) const;

  /// this^T * this (Gram matrix), computed without materializing the
  /// transpose.
  Matrix Gram() const;

  /// this * v for a vector v of length cols().
  std::vector<double> MultiplyVector(std::span<const double> v) const;

  /// this^T * v for a vector v of length rows().
  std::vector<double> TransposeMultiplyVector(std::span<const double> v) const;

  /// True when every entry is finite.
  bool AllFinite() const;

  /// Human-readable rendering (for debugging/tests).
  std::string ToString(int precision = 4) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solves A x = b for symmetric positive-definite A via Cholesky
/// factorization. Returns NumericError when A is not positive definite
/// (within tolerance). A is n x n, b has length n.
[[nodiscard]] Result<std::vector<double>> CholeskySolve(const Matrix& a,
                                          std::span<const double> b);

/// Solves the ridge-regularized least squares problem
///   min_w ||X w - y||^2 + l2 * ||w||^2
/// via the normal equations (X^T X + l2 I) w = X^T y.
/// With l2 = 0 a tiny jitter is retried on numerically singular systems.
[[nodiscard]] Result<std::vector<double>> SolveLeastSquares(const Matrix& x,
                                              std::span<const double> y,
                                              double l2 = 0.0);

/// Dot product over equal-length spans.
double Dot(std::span<const double> a, std::span<const double> b);

}  // namespace ml
}  // namespace nextmaint

#endif  // NEXTMAINT_ML_MATRIX_H_
