#include "ml/serialization.h"

#include "common/macros.h"

#include "ml/decision_tree.h"
#include "ml/hist_gradient_boosting.h"
#include "ml/linear_regression.h"
#include "ml/linear_svr.h"
#include "ml/random_forest.h"

namespace nextmaint {
namespace ml {

Result<std::string> ReadModelHeader(std::istream& in) {
  std::string magic, version, name;
  if (!(in >> magic >> version >> name)) {
    return Status::DataError("truncated model header");
  }
  if (magic != kModelMagic) {
    return Status::DataError("bad model magic: '" + magic + "'");
  }
  if (version != kModelVersion) {
    return Status::DataError("unsupported model format version: " + version);
  }
  return name;
}

Result<std::unique_ptr<Regressor>> LoadRegressor(std::istream& in) {
  NM_ASSIGN_OR_RETURN(std::string name, ReadModelHeader(in));
  return LoadRegressorBody(name, in);
}

Result<std::unique_ptr<Regressor>> LoadRegressorBody(const std::string& name,
                                                     std::istream& in) {
  if (name == "LR") {
    NM_ASSIGN_OR_RETURN(LinearRegression model, LinearRegression::LoadBody(in));
    return std::unique_ptr<Regressor>(
        std::make_unique<LinearRegression>(std::move(model)));
  }
  if (name == "LSVR") {
    NM_ASSIGN_OR_RETURN(LinearSvr model, LinearSvr::LoadBody(in));
    return std::unique_ptr<Regressor>(
        std::make_unique<LinearSvr>(std::move(model)));
  }
  if (name == "Tree") {
    NM_ASSIGN_OR_RETURN(DecisionTreeRegressor model,
                        DecisionTreeRegressor::LoadBody(in));
    return std::unique_ptr<Regressor>(
        std::make_unique<DecisionTreeRegressor>(std::move(model)));
  }
  if (name == "RF") {
    NM_ASSIGN_OR_RETURN(RandomForestRegressor model,
                        RandomForestRegressor::LoadBody(in));
    return std::unique_ptr<Regressor>(
        std::make_unique<RandomForestRegressor>(std::move(model)));
  }
  if (name == "XGB") {
    NM_ASSIGN_OR_RETURN(HistGradientBoostingRegressor model,
                        HistGradientBoostingRegressor::LoadBody(in));
    return std::unique_ptr<Regressor>(
        std::make_unique<HistGradientBoostingRegressor>(std::move(model)));
  }
  return Status::NotFound("unknown serialized model type: '" + name + "'");
}

}  // namespace ml
}  // namespace nextmaint
