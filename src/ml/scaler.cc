#include "ml/scaler.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/macros.h"

namespace nextmaint {
namespace ml {

Status MinMaxScaler::Fit(const Matrix& x) {
  if (x.empty()) {
    return Status::InvalidArgument("cannot fit scaler on empty matrix");
  }
  mins_.assign(x.cols(), std::numeric_limits<double>::infinity());
  maxs_.assign(x.cols(), -std::numeric_limits<double>::infinity());
  for (size_t r = 0; r < x.rows(); ++r) {
    for (size_t c = 0; c < x.cols(); ++c) {
      mins_[c] = std::min(mins_[c], x(r, c));
      maxs_[c] = std::max(maxs_[c], x(r, c));
    }
  }
  return Status::OK();
}

Result<Matrix> MinMaxScaler::Transform(const Matrix& x) const {
  if (!is_fitted()) {
    return Status::FailedPrecondition("MinMaxScaler is not fitted");
  }
  if (x.cols() != mins_.size()) {
    return Status::InvalidArgument("column count mismatch in Transform");
  }
  Matrix out(x.rows(), x.cols());
  for (size_t r = 0; r < x.rows(); ++r) {
    for (size_t c = 0; c < x.cols(); ++c) {
      const double range = maxs_[c] - mins_[c];
      out(r, c) = range > 0.0 ? (x(r, c) - mins_[c]) / range : 0.0;
    }
  }
  return out;
}

Result<Matrix> MinMaxScaler::FitTransform(const Matrix& x) {
  NM_RETURN_NOT_OK(Fit(x));
  return Transform(x);
}

Result<double> MinMaxScaler::InverseTransform(size_t col, double scaled) const {
  if (!is_fitted()) {
    return Status::FailedPrecondition("MinMaxScaler is not fitted");
  }
  if (col >= mins_.size()) {
    return Status::InvalidArgument("column index out of range");
  }
  return mins_[col] + scaled * (maxs_[col] - mins_[col]);
}

Status StandardScaler::Fit(const Matrix& x) {
  if (x.empty()) {
    return Status::InvalidArgument("cannot fit scaler on empty matrix");
  }
  const double n = static_cast<double>(x.rows());
  means_.assign(x.cols(), 0.0);
  stds_.assign(x.cols(), 0.0);
  for (size_t r = 0; r < x.rows(); ++r) {
    for (size_t c = 0; c < x.cols(); ++c) means_[c] += x(r, c);
  }
  for (double& m : means_) m /= n;
  for (size_t r = 0; r < x.rows(); ++r) {
    for (size_t c = 0; c < x.cols(); ++c) {
      const double d = x(r, c) - means_[c];
      stds_[c] += d * d;
    }
  }
  for (double& s : stds_) {
    s = std::sqrt(s / n);
    if (s < 1e-12) s = 1.0;  // constant column: shift only
  }
  return Status::OK();
}

Result<Matrix> StandardScaler::Transform(const Matrix& x) const {
  if (!is_fitted()) {
    return Status::FailedPrecondition("StandardScaler is not fitted");
  }
  if (x.cols() != means_.size()) {
    return Status::InvalidArgument("column count mismatch in Transform");
  }
  Matrix out(x.rows(), x.cols());
  for (size_t r = 0; r < x.rows(); ++r) {
    for (size_t c = 0; c < x.cols(); ++c) {
      out(r, c) = (x(r, c) - means_[c]) / stds_[c];
    }
  }
  return out;
}

Result<Matrix> StandardScaler::FitTransform(const Matrix& x) {
  NM_RETURN_NOT_OK(Fit(x));
  return Transform(x);
}

}  // namespace ml
}  // namespace nextmaint
