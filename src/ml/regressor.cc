#include "ml/regressor.h"

#include "common/failpoints.h"
#include "common/macros.h"
#include "common/telemetry.h"

namespace nextmaint {
namespace ml {

Status Regressor::Fit(const Dataset& train) {
  // The NVI entry point covers every concrete model with one site.
  NEXTMAINT_FAILPOINT("ml.fit");
  if (!telemetry::Enabled()) return FitImpl(train);
  telemetry::ScopedTimer timer("ml.fit.seconds." + name());
  const Status status = FitImpl(train);
  if (status.ok()) {
    telemetry::Count("ml.fit.count." + name());
    telemetry::Count("ml.fit.rows." + name(), train.num_rows());
  }
  return status;
}

Status Regressor::ContinueFit(const Dataset& train, int extra_rounds) {
  if (!is_fitted()) {
    return Status::FailedPrecondition(
        "ContinueFit requires a fitted model; call Fit first");
  }
  if (extra_rounds < 0) {
    return Status::InvalidArgument(
        "ContinueFit requires extra_rounds >= 0, got " +
        std::to_string(extra_rounds));
  }
  if (!telemetry::Enabled()) return ContinueFitImpl(train, extra_rounds);
  telemetry::ScopedTimer timer("ml.continue_fit.seconds." + name());
  const Status status = ContinueFitImpl(train, extra_rounds);
  if (status.ok()) {
    telemetry::Count("ml.continue_fit.count." + name());
    telemetry::Count("ml.continue_fit.rows." + name(), train.num_rows());
  }
  return status;
}

Status Regressor::ContinueFitImpl(const Dataset& /*train*/,
                                  int /*extra_rounds*/) {
  return Status::InvalidArgument(name() +
                                 " does not support warm-start training");
}

Result<std::vector<double>> Regressor::PredictBatch(const Matrix& x) const {
  if (!telemetry::Enabled()) return PredictBatchImpl(x);
  telemetry::ScopedTimer timer("ml.predict_batch.seconds." + name());
  telemetry::Count("ml.predict_batch.rows." + name(), x.rows());
  return PredictBatchImpl(x);
}

Result<std::vector<double>> Regressor::PredictBatchImpl(
    const Matrix& x) const {
  std::vector<double> out;
  out.reserve(x.rows());
  for (size_t r = 0; r < x.rows(); ++r) {
    NM_ASSIGN_OR_RETURN(double value, Predict(x.Row(r)));
    out.push_back(value);
  }
  return out;
}

}  // namespace ml
}  // namespace nextmaint
