#include "ml/regressor.h"

#include "common/macros.h"

namespace nextmaint {
namespace ml {

Result<std::vector<double>> Regressor::PredictBatch(const Matrix& x) const {
  std::vector<double> out;
  out.reserve(x.rows());
  for (size_t r = 0; r < x.rows(); ++r) {
    NM_ASSIGN_OR_RETURN(double value, Predict(x.Row(r)));
    out.push_back(value);
  }
  return out;
}

}  // namespace ml
}  // namespace nextmaint
