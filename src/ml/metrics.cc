#include "ml/metrics.h"

#include <cmath>

#include "common/macros.h"

namespace nextmaint {
namespace ml {

namespace {

Status ValidatePair(const std::vector<double>& truth,
                    const std::vector<double>& predicted) {
  if (truth.size() != predicted.size()) {
    return Status::InvalidArgument("metric input lengths differ");
  }
  if (truth.empty()) {
    return Status::InvalidArgument("metric inputs are empty");
  }
  return Status::OK();
}

}  // namespace

Result<double> MeanSquaredError(const std::vector<double>& truth,
                                const std::vector<double>& predicted) {
  NM_RETURN_NOT_OK(ValidatePair(truth, predicted));
  double acc = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    const double d = truth[i] - predicted[i];
    acc += d * d;
  }
  return acc / static_cast<double>(truth.size());
}

Result<double> RootMeanSquaredError(const std::vector<double>& truth,
                                    const std::vector<double>& predicted) {
  NM_ASSIGN_OR_RETURN(double mse, MeanSquaredError(truth, predicted));
  return std::sqrt(mse);
}

Result<double> MeanAbsoluteError(const std::vector<double>& truth,
                                 const std::vector<double>& predicted) {
  NM_RETURN_NOT_OK(ValidatePair(truth, predicted));
  double acc = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    acc += std::fabs(truth[i] - predicted[i]);
  }
  return acc / static_cast<double>(truth.size());
}

Result<double> R2Score(const std::vector<double>& truth,
                       const std::vector<double>& predicted) {
  NM_RETURN_NOT_OK(ValidatePair(truth, predicted));
  double mean = 0.0;
  for (double t : truth) mean += t;
  mean /= static_cast<double>(truth.size());
  double ss_res = 0.0, ss_tot = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    ss_res += (truth[i] - predicted[i]) * (truth[i] - predicted[i]);
    ss_tot += (truth[i] - mean) * (truth[i] - mean);
  }
  if (ss_tot == 0.0) {
    return Status::NumericError("R^2 undefined for constant truth");
  }
  return 1.0 - ss_res / ss_tot;
}

}  // namespace ml
}  // namespace nextmaint
