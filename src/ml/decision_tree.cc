#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/macros.h"

namespace nextmaint {
namespace ml {

namespace {

/// SplitMix64 step for cheap feature subsampling without dragging a full Rng
/// through the recursion.
uint64_t NextRandom(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

DecisionTreeRegressor::Options DecisionTreeRegressor::OptionsFromParams(
    const ParamMap& params) {
  Options options;
  if (auto it = params.find("max_depth"); it != params.end()) {
    options.max_depth = static_cast<int>(it->second);
  }
  if (auto it = params.find("min_samples_leaf"); it != params.end()) {
    options.min_samples_leaf = static_cast<int>(it->second);
  }
  return options;
}

Status DecisionTreeRegressor::FitImpl(const Dataset& train) {
  std::vector<size_t> indices(train.num_rows());
  std::iota(indices.begin(), indices.end(), 0);
  return FitIndices(train, indices);
}

Status DecisionTreeRegressor::FitIndices(const Dataset& train,
                                         const std::vector<size_t>& indices) {
  nodes_.clear();
  if (train.empty() || indices.empty()) {
    return Status::InvalidArgument("cannot fit a tree on an empty dataset");
  }
  if (!train.x().AllFinite()) {
    return Status::InvalidArgument("tree features contain non-finite values");
  }
  if (options_.min_samples_leaf < 1) {
    return Status::InvalidArgument("min_samples_leaf must be >= 1");
  }
  num_features_ = train.num_features();
  std::vector<size_t> work = indices;
  uint64_t rng_state = options_.seed;
  nodes_.reserve(2 * work.size());
  BuildNode(train, &work, 0, work.size(), 0, &rng_state, num_features_);
  return Status::OK();
}

int32_t DecisionTreeRegressor::BuildNode(const Dataset& train,
                                         std::vector<size_t>* indices,
                                         size_t begin, size_t end, int depth,
                                         uint64_t* rng_state,
                                         size_t expected_features) {
  const size_t count = end - begin;
  NM_CHECK(count > 0);

  double sum = 0.0;
  for (size_t i = begin; i < end; ++i) sum += train.y()[(*indices)[i]];
  const double mean = sum / static_cast<double>(count);

  const int32_t node_index = static_cast<int32_t>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[node_index].value = mean;

  const bool depth_exhausted =
      options_.max_depth >= 0 && depth >= options_.max_depth;
  if (depth_exhausted ||
      count < static_cast<size_t>(options_.min_samples_split) ||
      count < 2 * static_cast<size_t>(options_.min_samples_leaf)) {
    return node_index;
  }

  // Candidate features: all, or a random subset of size max_features.
  std::vector<size_t> features(expected_features);
  std::iota(features.begin(), features.end(), 0);
  size_t num_candidates = expected_features;
  if (options_.max_features > 0 &&
      static_cast<size_t>(options_.max_features) < expected_features) {
    num_candidates = static_cast<size_t>(options_.max_features);
    // Partial Fisher-Yates: the first num_candidates entries become the
    // random subset.
    for (size_t i = 0; i < num_candidates; ++i) {
      const size_t j =
          i + static_cast<size_t>(NextRandom(rng_state) %
                                  (expected_features - i));
      std::swap(features[i], features[j]);
    }
  }

  // Exact split search: for each candidate feature sort the node's samples
  // by feature value and scan all boundary positions. The best split
  // minimizes SSE_left + SSE_right, i.e. maximizes
  // sum_left^2/n_left + sum_right^2/n_right.
  struct Best {
    double score = -std::numeric_limits<double>::infinity();
    size_t feature = 0;
    double threshold = 0.0;
  } best;

  std::vector<std::pair<double, double>> samples;  // (feature value, target)
  samples.reserve(count);
  const size_t min_leaf = static_cast<size_t>(options_.min_samples_leaf);

  for (size_t fi = 0; fi < num_candidates; ++fi) {
    const size_t feature = features[fi];
    samples.clear();
    for (size_t i = begin; i < end; ++i) {
      const size_t row = (*indices)[i];
      samples.emplace_back(train.x()(row, feature), train.y()[row]);
    }
    std::sort(samples.begin(), samples.end());
    if (samples.front().first == samples.back().first) continue;  // constant

    double left_sum = 0.0;
    for (size_t k = 0; k + 1 < count; ++k) {
      left_sum += samples[k].second;
      // A split is only possible between distinct feature values.
      if (samples[k].first == samples[k + 1].first) continue;
      const size_t n_left = k + 1;
      const size_t n_right = count - n_left;
      if (n_left < min_leaf || n_right < min_leaf) continue;
      const double right_sum = sum - left_sum;
      const double score =
          left_sum * left_sum / static_cast<double>(n_left) +
          right_sum * right_sum / static_cast<double>(n_right);
      if (score > best.score) {
        best.score = score;
        best.feature = feature;
        best.threshold = 0.5 * (samples[k].first + samples[k + 1].first);
      }
    }
  }

  if (!std::isfinite(best.score)) {
    return node_index;  // no valid split: stay a leaf
  }
  // Reject splits that do not reduce SSE at all (all-equal targets).
  const double parent_score = sum * sum / static_cast<double>(count);
  if (best.score <= parent_score + 1e-12 * std::fabs(parent_score)) {
    return node_index;
  }

  // Partition the index range: left = (x <= threshold).
  auto mid_iter = std::partition(
      indices->begin() + static_cast<ptrdiff_t>(begin),
      indices->begin() + static_cast<ptrdiff_t>(end), [&](size_t row) {
        return train.x()(row, best.feature) <= best.threshold;
      });
  const size_t mid =
      static_cast<size_t>(mid_iter - indices->begin());
  NM_CHECK(mid > begin && mid < end);

  nodes_[node_index].feature = static_cast<int32_t>(best.feature);
  nodes_[node_index].threshold = best.threshold;
  // SSE reduction = best child score sum minus the parent's score.
  nodes_[node_index].gain = best.score - parent_score;
  const int32_t left = BuildNode(train, indices, begin, mid, depth + 1,
                                 rng_state, expected_features);
  const int32_t right =
      BuildNode(train, indices, mid, end, depth + 1, rng_state,
                expected_features);
  nodes_[node_index].left = left;
  nodes_[node_index].right = right;
  return node_index;
}

Result<double> DecisionTreeRegressor::Predict(
    std::span<const double> features) const {
  if (nodes_.empty()) {
    return Status::FailedPrecondition("tree is not fitted");
  }
  if (features.size() != num_features_) {
    return Status::InvalidArgument(
        "feature count mismatch: got " + std::to_string(features.size()) +
        ", trained with " + std::to_string(num_features_));
  }
  const Node* node = &nodes_[0];
  while (!node->is_leaf()) {
    node = features[static_cast<size_t>(node->feature)] <= node->threshold
               ? &nodes_[static_cast<size_t>(node->left)]
               : &nodes_[static_cast<size_t>(node->right)];
  }
  return node->value;
}

std::vector<double> DecisionTreeRegressor::FeatureImportances() const {
  std::vector<double> importances(num_features_, 0.0);
  double total = 0.0;
  for (const Node& node : nodes_) {
    if (node.is_leaf()) continue;
    importances[static_cast<size_t>(node.feature)] += node.gain;
    total += node.gain;
  }
  if (total > 0.0) {
    for (double& v : importances) v /= total;
  }
  return importances;
}

size_t DecisionTreeRegressor::leaf_count() const {
  size_t count = 0;
  for (const Node& node : nodes_) {
    if (node.is_leaf()) ++count;
  }
  return count;
}

int DecisionTreeRegressor::depth() const {
  if (nodes_.empty()) return 0;
  // Iterative depth computation over the implicit tree structure.
  std::vector<std::pair<int32_t, int>> stack = {{0, 0}};
  int max_depth = 0;
  while (!stack.empty()) {
    auto [index, d] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, d);
    const Node& node = nodes_[static_cast<size_t>(index)];
    if (!node.is_leaf()) {
      stack.push_back({node.left, d + 1});
      stack.push_back({node.right, d + 1});
    }
  }
  return max_depth;
}


Status DecisionTreeRegressor::Save(std::ostream& out) const {
  if (nodes_.empty()) {
    return Status::FailedPrecondition("cannot save an unfitted tree");
  }
  out.precision(17);
  out << "nextmaint-model v1 Tree\n";
  out << "features " << num_features_ << "\n";
  out << "nodes " << nodes_.size() << "\n";
  for (const Node& node : nodes_) {
    out << node.left << " " << node.right << " " << node.feature << " "
        << node.threshold << " " << node.value << "\n";
  }
  out << "end\n";
  if (!out) return Status::IOError("tree serialization failed");
  return Status::OK();
}

Result<DecisionTreeRegressor> DecisionTreeRegressor::LoadBody(
    std::istream& in) {
  std::string token;
  DecisionTreeRegressor model;
  size_t node_count = 0;
  if (!(in >> token >> model.num_features_) || token != "features") {
    return Status::DataError("Tree: expected 'features <p>'");
  }
  if (!(in >> token >> node_count) || token != "nodes") {
    return Status::DataError("Tree: expected 'nodes <n>'");
  }
  if (node_count == 0 || node_count > 50'000'000) {
    return Status::DataError("Tree: implausible node count");
  }
  model.nodes_.resize(node_count);
  for (Node& node : model.nodes_) {
    if (!(in >> node.left >> node.right >> node.feature >> node.threshold >>
          node.value)) {
      return Status::DataError("Tree: truncated node list");
    }
  }
  // Validate child indices so a corrupt file cannot cause out-of-range
  // traversal.
  for (const Node& node : model.nodes_) {
    if (node.is_leaf()) continue;
    const auto n = static_cast<int32_t>(node_count);
    if (node.left < 0 || node.left >= n || node.right < 0 ||
        node.right >= n ||
        node.feature < 0 ||
        node.feature >= static_cast<int32_t>(model.num_features_)) {
      return Status::DataError("Tree: node indices out of range");
    }
  }
  if (!(in >> token) || token != "end") {
    return Status::DataError("Tree: missing end marker");
  }
  return model;
}

}  // namespace ml
}  // namespace nextmaint
