#include "ml/decision_tree.h"

#include <algorithm>
#include <numeric>

#include "common/macros.h"
#include "ml/histogram.h"

namespace nextmaint {
namespace ml {

DecisionTreeRegressor::Options DecisionTreeRegressor::OptionsFromParams(
    const ParamMap& params) {
  Options options;
  if (auto it = params.find("max_depth"); it != params.end()) {
    options.max_depth = static_cast<int>(it->second);
  }
  if (auto it = params.find("min_samples_leaf"); it != params.end()) {
    options.min_samples_leaf = static_cast<int>(it->second);
  }
  if (auto it = params.find("max_bins"); it != params.end()) {
    options.max_bins = static_cast<int>(it->second);
  }
  return options;
}

Status DecisionTreeRegressor::FitImpl(const Dataset& train) {
  std::vector<size_t> indices(train.num_rows());
  std::iota(indices.begin(), indices.end(), 0);
  return FitIndices(train, indices);
}

Status DecisionTreeRegressor::FitIndices(const Dataset& train,
                                         const std::vector<size_t>& indices) {
  nodes_.clear();
  if (train.empty() || indices.empty()) {
    return Status::InvalidArgument("cannot fit a tree on an empty dataset");
  }
  if (options_.max_bins < 2 || options_.max_bins > 65535) {
    return Status::InvalidArgument("tree requires 2 <= max_bins <= 65535");
  }
  // The mapper always covers the full training matrix (not the bootstrap
  // subset), so every tree of a forest — and both tree cores — see the same
  // bin boundaries.
  if (options_.core == TreeCore::kBinned && options_.binning_cache) {
    const std::shared_ptr<const PreBinned> cached =
        options_.binning_cache->GetOrCompute(train.x(), options_.max_bins);
    return FitBinned(train, cached->mapper, &cached->binned, indices);
  }
  BinMapper mapper;
  mapper.Compute(train.x(), options_.max_bins);
  if (options_.core == TreeCore::kBinned) {
    BinnedDataset binned;
    binned.Build(train.x(), mapper);
    return FitBinned(train, mapper, &binned, indices);
  }
  return FitBinned(train, mapper, nullptr, indices);
}

Status DecisionTreeRegressor::FitBinned(const Dataset& train,
                                        const BinMapper& mapper,
                                        const BinnedDataset* binned,
                                        const std::vector<size_t>& indices) {
  nodes_.clear();
  if (train.empty() || indices.empty()) {
    return Status::InvalidArgument("cannot fit a tree on an empty dataset");
  }
  if (!train.x().AllFinite()) {
    return Status::InvalidArgument("tree features contain non-finite values");
  }
  if (options_.min_samples_leaf < 1) {
    return Status::InvalidArgument("min_samples_leaf must be >= 1");
  }
  num_features_ = train.num_features();

  const HistogramLayout layout(mapper);
  GrowSpec spec;
  spec.depth_limited = options_.max_depth >= 0;
  spec.max_depth = options_.max_depth;
  // size_t casts preserve the historic semantics: a negative setting wraps
  // to a huge threshold (every node becomes a leaf immediately).
  spec.min_samples_split = static_cast<size_t>(options_.min_samples_split);
  spec.min_samples_leaf = static_cast<size_t>(options_.min_samples_leaf);
  if (options_.max_features > 0) {
    spec.max_features = static_cast<size_t>(options_.max_features);
  }
  spec.seed = options_.seed;
  // A single tree stays serial: the forest already runs one tree per lane.
  spec.num_threads = 1;

  DataPartition partition;
  partition.Reset(indices);
  const std::vector<GrowNode> grown =
      binned != nullptr
          ? GrowHistTree(*binned, mapper, layout, train.y(), &partition,
                         spec)
          : GrowHistTree(OnTheFlyBins{&train.x(), &mapper}, mapper, layout,
                         train.y(), &partition, spec);
  nodes_.reserve(grown.size());
  for (const GrowNode& node : grown) {
    nodes_.push_back(Node{node.left, node.right, node.feature,
                          node.threshold, node.value, node.gain});
  }
  return Status::OK();
}

Result<double> DecisionTreeRegressor::Predict(
    std::span<const double> features) const {
  if (nodes_.empty()) {
    return Status::FailedPrecondition("tree is not fitted");
  }
  if (features.size() != num_features_) {
    return Status::InvalidArgument(
        "feature count mismatch: got " + std::to_string(features.size()) +
        ", trained with " + std::to_string(num_features_));
  }
  const Node* node = &nodes_[0];
  while (!node->is_leaf()) {
    node = features[static_cast<size_t>(node->feature)] <= node->threshold
               ? &nodes_[static_cast<size_t>(node->left)]
               : &nodes_[static_cast<size_t>(node->right)];
  }
  return node->value;
}

std::vector<double> DecisionTreeRegressor::FeatureImportances() const {
  std::vector<double> importances(num_features_, 0.0);
  double total = 0.0;
  for (const Node& node : nodes_) {
    if (node.is_leaf()) continue;
    importances[static_cast<size_t>(node.feature)] += node.gain;
    total += node.gain;
  }
  if (total > 0.0) {
    for (double& v : importances) v /= total;
  }
  return importances;
}

size_t DecisionTreeRegressor::leaf_count() const {
  size_t count = 0;
  for (const Node& node : nodes_) {
    if (node.is_leaf()) ++count;
  }
  return count;
}

int DecisionTreeRegressor::depth() const {
  if (nodes_.empty()) return 0;
  // Iterative depth computation over the implicit tree structure.
  std::vector<std::pair<int32_t, int>> stack = {{0, 0}};
  int max_depth = 0;
  while (!stack.empty()) {
    auto [index, d] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, d);
    const Node& node = nodes_[static_cast<size_t>(index)];
    if (!node.is_leaf()) {
      stack.push_back({node.left, d + 1});
      stack.push_back({node.right, d + 1});
    }
  }
  return max_depth;
}


Status DecisionTreeRegressor::Save(std::ostream& out) const {
  if (nodes_.empty()) {
    return Status::FailedPrecondition("cannot save an unfitted tree");
  }
  out.precision(17);
  out << "nextmaint-model v1 Tree\n";
  out << "features " << num_features_ << "\n";
  out << "nodes " << nodes_.size() << "\n";
  for (const Node& node : nodes_) {
    out << node.left << " " << node.right << " " << node.feature << " "
        << node.threshold << " " << node.value << "\n";
  }
  out << "end\n";
  if (!out) return Status::IOError("tree serialization failed");
  return Status::OK();
}

Result<DecisionTreeRegressor> DecisionTreeRegressor::LoadBody(
    std::istream& in) {
  std::string token;
  DecisionTreeRegressor model;
  size_t node_count = 0;
  if (!(in >> token >> model.num_features_) || token != "features") {
    return Status::DataError("Tree: expected 'features <p>'");
  }
  if (!(in >> token >> node_count) || token != "nodes") {
    return Status::DataError("Tree: expected 'nodes <n>'");
  }
  if (node_count == 0 || node_count > 50'000'000) {
    return Status::DataError("Tree: implausible node count");
  }
  model.nodes_.resize(node_count);
  for (Node& node : model.nodes_) {
    if (!(in >> node.left >> node.right >> node.feature >> node.threshold >>
          node.value)) {
      return Status::DataError("Tree: truncated node list");
    }
  }
  // Validate child indices so a corrupt file cannot cause out-of-range
  // traversal.
  for (const Node& node : model.nodes_) {
    if (node.is_leaf()) continue;
    const auto n = static_cast<int32_t>(node_count);
    if (node.left < 0 || node.left >= n || node.right < 0 ||
        node.right >= n ||
        node.feature < 0 ||
        node.feature >= static_cast<int32_t>(model.num_features_)) {
      return Status::DataError("Tree: node indices out of range");
    }
  }
  if (!(in >> token) || token != "end") {
    return Status::DataError("Tree: missing end marker");
  }
  return model;
}

}  // namespace ml
}  // namespace nextmaint
