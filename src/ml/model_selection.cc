#include "ml/model_selection.h"

#include <limits>
#include <numeric>

#include "common/macros.h"
#include "ml/early_stopping.h"
#include "ml/metrics.h"

namespace nextmaint {
namespace ml {

Result<std::vector<FoldSplit>> KFoldSplits(size_t n, size_t k, bool shuffle,
                                           uint64_t seed) {
  if (k < 2) {
    return Status::InvalidArgument("k-fold requires k >= 2");
  }
  if (k > n) {
    return Status::InvalidArgument("k-fold requires k <= n (k=" +
                                   std::to_string(k) + ", n=" +
                                   std::to_string(n) + ")");
  }
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  if (shuffle) {
    Rng rng(seed);
    rng.Shuffle(&order);
  }

  // First (n % k) folds get one extra element, matching sklearn.
  std::vector<std::vector<size_t>> folds(k);
  const size_t base = n / k;
  const size_t extra = n % k;
  size_t cursor = 0;
  for (size_t f = 0; f < k; ++f) {
    const size_t size = base + (f < extra ? 1 : 0);
    folds[f].assign(order.begin() + static_cast<ptrdiff_t>(cursor),
                    order.begin() + static_cast<ptrdiff_t>(cursor + size));
    cursor += size;
  }

  std::vector<FoldSplit> splits(k);
  for (size_t f = 0; f < k; ++f) {
    splits[f].test_indices = folds[f];
    for (size_t g = 0; g < k; ++g) {
      if (g == f) continue;
      splits[f].train_indices.insert(splits[f].train_indices.end(),
                                     folds[g].begin(), folds[g].end());
    }
  }
  return splits;
}

ParamGrid& ParamGrid::Add(const std::string& name,
                          std::vector<double> values) {
  NM_CHECK_MSG(!values.empty(), "empty parameter value list");
  dimensions_[name] = std::move(values);
  return *this;
}

std::vector<ParamMap> ParamGrid::Expand() const {
  std::vector<ParamMap> combinations = {ParamMap{}};
  for (const auto& [name, values] : dimensions_) {
    std::vector<ParamMap> next;
    next.reserve(combinations.size() * values.size());
    for (const ParamMap& partial : combinations) {
      for (double value : values) {
        ParamMap extended = partial;
        extended[name] = value;
        next.push_back(std::move(extended));
      }
    }
    combinations = std::move(next);
  }
  return combinations;
}

Result<GridSearchResult> GridSearchCV(const RegressorFactory& factory,
                                      const ParamGrid& grid,
                                      const Dataset& train,
                                      const GridSearchOptions& options,
                                      const ScoreFunction& score) {
  if (!factory) {
    return Status::InvalidArgument("null regressor factory");
  }
  if (train.empty()) {
    return Status::InvalidArgument("grid search on empty dataset");
  }
  const ScoreFunction scorer =
      score ? score : ScoreFunction(&MeanAbsoluteError);

  NM_ASSIGN_OR_RETURN(
      std::vector<FoldSplit> splits,
      KFoldSplits(train.num_rows(), options.folds, options.shuffle,
                  options.seed));

  GridSearchResult result;
  result.best_score = std::numeric_limits<double>::infinity();

  EarlyStopping stopper(EarlyStopping::Options{
      options.early_stopping_patience, options.early_stopping_min_delta});
  for (const ParamMap& params : grid.Expand()) {
    GridPointResult point;
    point.params = params;
    double total = 0.0;
    for (const FoldSplit& split : splits) {
      const Dataset fold_train = train.SelectRows(split.train_indices);
      const Dataset fold_test = train.SelectRows(split.test_indices);
      std::unique_ptr<Regressor> model = factory(params);
      if (model == nullptr) {
        return Status::InvalidArgument("factory returned null model");
      }
      NM_RETURN_NOT_OK(model->Fit(fold_train).WithContext("grid-search fold"));
      NM_ASSIGN_OR_RETURN(std::vector<double> predictions,
                          model->PredictBatch(fold_test.x()));
      NM_ASSIGN_OR_RETURN(double fold_score,
                          scorer(fold_test.y(), predictions));
      point.fold_scores.push_back(fold_score);
      total += fold_score;
    }
    point.mean_score = total / static_cast<double>(splits.size());
    if (point.mean_score < result.best_score) {
      result.best_score = point.mean_score;
      result.best_params = point.params;
    }
    const double mean_score = point.mean_score;
    result.all_points.push_back(std::move(point));
    if (options.early_stopping_patience > 0 && stopper.Update(mean_score)) {
      result.stopped_early = true;
      break;
    }
  }
  result.points_evaluated = result.all_points.size();
  return result;
}

}  // namespace ml
}  // namespace nextmaint
