#ifndef NEXTMAINT_ML_LINEAR_REGRESSION_H_
#define NEXTMAINT_ML_LINEAR_REGRESSION_H_

#include <memory>
#include <vector>

#include "ml/regressor.h"

/// \file linear_regression.h
/// Ordinary least squares with an optional L2 (ridge) penalty — the paper's
/// "LR" model: "the simplest linear model. It learns a linear function
/// minimizing the residual sum of squares".

namespace nextmaint {
namespace ml {

/// OLS / ridge linear regression.
class LinearRegression final : public Regressor {
 public:
  struct Options {
    /// L2 penalty on the weights (the intercept is never penalized).
    /// 0 gives plain OLS.
    double l2 = 0.0;
    /// When true a bias/intercept term is fitted.
    bool fit_intercept = true;
  };

  LinearRegression() = default;
  explicit LinearRegression(Options options) : options_(options) {}

  /// Builds options from a ParamMap; recognised keys: "l2".
  static Options OptionsFromParams(const ParamMap& params);

  [[nodiscard]] Result<double> Predict(std::span<const double> features) const override;
  std::string name() const override { return "LR"; }
  bool is_fitted() const override { return fitted_; }
  std::unique_ptr<Regressor> Clone() const override {
    return std::make_unique<LinearRegression>(*this);
  }
  [[nodiscard]] Status Save(std::ostream& out) const override;

  /// Reads a model body serialized by Save (header already consumed).
  [[nodiscard]] static Result<LinearRegression> LoadBody(std::istream& in);

  /// Fitted weights, one per feature (excluding the intercept).
  const std::vector<double>& weights() const { return weights_; }
  double intercept() const { return intercept_; }
  const Options& options() const { return options_; }

 protected:
  [[nodiscard]] Status FitImpl(const Dataset& train) override;

 private:
  Options options_;
  std::vector<double> weights_;
  double intercept_ = 0.0;
  bool fitted_ = false;
};

}  // namespace ml
}  // namespace nextmaint

#endif  // NEXTMAINT_ML_LINEAR_REGRESSION_H_
