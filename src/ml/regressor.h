#ifndef NEXTMAINT_ML_REGRESSOR_H_
#define NEXTMAINT_ML_REGRESSOR_H_

#include <functional>
#include <istream>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"
#include "ml/dataset.h"

/// \file regressor.h
/// The common interface implemented by every regression model in the zoo
/// (LR, LSVR, decision tree, RF, XGB) and by the paper's BL baseline wrapper.

namespace nextmaint {
namespace ml {

/// Flat hyper-parameter assignment used by the grid-search machinery.
/// Every tunable of every model is expressible as a double (integer
/// parameters are rounded by the consumer).
using ParamMap = std::map<std::string, double>;

/// Abstract regression model.
///
/// Lifecycle: construct (possibly from an options struct) -> Fit ->
/// Predict/PredictBatch. Fitting again discards the previous state.
/// Predicting before a successful Fit returns FailedPrecondition.
///
/// Fit and PredictBatch follow the non-virtual-interface pattern: the
/// public entry points record per-model telemetry (ml.fit.seconds.<name>,
/// ml.predict_batch.seconds.<name>, ...) and delegate to the protected
/// FitImpl/PredictBatchImpl that concrete models override. Per-row Predict
/// stays a plain virtual — it is the hot path inside tree ensembles and
/// must not pay an instrumentation check per call.
class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Trains the model. Returns InvalidArgument for empty or non-finite
  /// data, NumericError when optimization fails.
  [[nodiscard]] Status Fit(const Dataset& train);

  /// Resumes training of an already-fitted model on `train` (the full,
  /// typically grown, training set) for `extra_rounds` additional units —
  /// boosting rounds for XGB, appended trees for RF. The existing ensemble
  /// is kept and extended, so a warm resume costs O(extra_rounds) model
  /// fits instead of a from-scratch retrain. Deterministic at any thread
  /// count, and `extra_rounds == 0` is a byte-identical no-op (the
  /// serialized model before and after the call is the same byte string).
  /// FailedPrecondition before a successful Fit; InvalidArgument for a
  /// negative `extra_rounds`, data that does not match the fitted feature
  /// count, or a model without warm-start support (LR, LSVR, single
  /// trees, BL — only the ensemble models resume).
  [[nodiscard]] Status ContinueFit(const Dataset& train, int extra_rounds);

  /// Predicts the target for one feature row. The length must equal the
  /// training feature count.
  virtual Result<double> Predict(std::span<const double> features) const = 0;

  /// Predicts a batch in one call. Equivalent to looping Predict over the
  /// rows (bit-identical results), but lets models amortize per-call
  /// overhead; RF and XGB override the loop.
  [[nodiscard]] Result<std::vector<double>> PredictBatch(const Matrix& x) const;

  /// Short identifier, e.g. "LR", "LSVR", "RF", "XGB".
  virtual std::string name() const = 0;

  /// True after a successful Fit.
  virtual bool is_fitted() const = 0;

  /// Deep copy carrying the fitted state (used by model selection to keep
  /// the winning model).
  virtual std::unique_ptr<Regressor> Clone() const = 0;

  /// Serializes the fitted model to a line-oriented text format that
  /// ml::LoadRegressor (or core::LoadAnyModel for BL) can read back.
  /// Fails with FailedPrecondition on unfitted models.
  virtual Status Save(std::ostream& out) const = 0;

 protected:
  /// Model-specific training; called by Fit.
  virtual Status FitImpl(const Dataset& train) = 0;

  /// Model-specific warm-start resume; called by ContinueFit after the
  /// fitted/extra_rounds >= 0 checks. The default refuses with
  /// InvalidArgument — only the ensemble models override it.
  virtual Status ContinueFitImpl(const Dataset& train, int extra_rounds);

  /// Model-specific batch prediction; the default loops over Predict.
  virtual Result<std::vector<double>> PredictBatchImpl(const Matrix& x) const;
};

/// Factory signature used by grid search: builds a fresh model for a
/// hyper-parameter assignment.
using RegressorFactory =
    std::function<std::unique_ptr<Regressor>(const ParamMap&)>;

}  // namespace ml
}  // namespace nextmaint

#endif  // NEXTMAINT_ML_REGRESSOR_H_
