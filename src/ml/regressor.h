#ifndef NEXTMAINT_ML_REGRESSOR_H_
#define NEXTMAINT_ML_REGRESSOR_H_

#include <functional>
#include <istream>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"
#include "ml/dataset.h"

/// \file regressor.h
/// The common interface implemented by every regression model in the zoo
/// (LR, LSVR, decision tree, RF, XGB) and by the paper's BL baseline wrapper.

namespace nextmaint {
namespace ml {

/// Flat hyper-parameter assignment used by the grid-search machinery.
/// Every tunable of every model is expressible as a double (integer
/// parameters are rounded by the consumer).
using ParamMap = std::map<std::string, double>;

/// Abstract regression model.
///
/// Lifecycle: construct (possibly from an options struct) -> Fit ->
/// Predict/PredictBatch. Fitting again discards the previous state.
/// Predicting before a successful Fit returns FailedPrecondition.
class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Trains the model. Returns InvalidArgument for empty or non-finite
  /// data, NumericError when optimization fails.
  virtual Status Fit(const Dataset& train) = 0;

  /// Predicts the target for one feature row. The length must equal the
  /// training feature count.
  virtual Result<double> Predict(std::span<const double> features) const = 0;

  /// Predicts a batch; default implementation loops over Predict.
  virtual Result<std::vector<double>> PredictBatch(const Matrix& x) const;

  /// Short identifier, e.g. "LR", "LSVR", "RF", "XGB".
  virtual std::string name() const = 0;

  /// True after a successful Fit.
  virtual bool is_fitted() const = 0;

  /// Deep copy carrying the fitted state (used by model selection to keep
  /// the winning model).
  virtual std::unique_ptr<Regressor> Clone() const = 0;

  /// Serializes the fitted model to a line-oriented text format that
  /// ml::LoadRegressor (or core::LoadAnyModel for BL) can read back.
  /// Fails with FailedPrecondition on unfitted models.
  virtual Status Save(std::ostream& out) const = 0;
};

/// Factory signature used by grid search: builds a fresh model for a
/// hyper-parameter assignment.
using RegressorFactory =
    std::function<std::unique_ptr<Regressor>(const ParamMap&)>;

}  // namespace ml
}  // namespace nextmaint

#endif  // NEXTMAINT_ML_REGRESSOR_H_
