#include "ml/dataset.h"

#include <numeric>

#include "common/macros.h"

namespace nextmaint {
namespace ml {

Result<Dataset> Dataset::Create(Matrix x, std::vector<double> y,
                                std::vector<std::string> feature_names) {
  if (x.rows() != y.size()) {
    return Status::InvalidArgument(
        "X has " + std::to_string(x.rows()) + " rows but y has " +
        std::to_string(y.size()) + " entries");
  }
  if (!feature_names.empty() && feature_names.size() != x.cols()) {
    return Status::InvalidArgument("feature_names length != X columns");
  }
  Dataset d;
  d.x_ = std::move(x);
  d.y_ = std::move(y);
  d.feature_names_ = std::move(feature_names);
  return d;
}

void Dataset::AddRow(std::span<const double> features, double target) {
  x_.AppendRow(features);
  y_.push_back(target);
}

Dataset Dataset::SelectRows(const std::vector<size_t>& indices) const {
  Dataset out;
  out.x_ = x_.SelectRows(indices);
  out.y_.reserve(indices.size());
  for (size_t i : indices) {
    NM_CHECK(i < y_.size());
    out.y_.push_back(y_[i]);
  }
  out.feature_names_ = feature_names_;
  return out;
}

std::pair<Dataset, Dataset> Dataset::SplitAt(size_t k) const {
  const size_t n = num_rows();
  k = std::min(k, n);
  std::vector<size_t> head(k), tail(n - k);
  std::iota(head.begin(), head.end(), 0);
  std::iota(tail.begin(), tail.end(), k);
  return {SelectRows(head), SelectRows(tail)};
}

Status Dataset::Concat(const Dataset& other) {
  if (num_rows() == 0) {
    *this = other;
    return Status::OK();
  }
  if (other.num_features() != num_features()) {
    return Status::InvalidArgument("feature count mismatch in Concat");
  }
  for (size_t r = 0; r < other.num_rows(); ++r) {
    AddRow(other.x_.Row(r), other.y_[r]);
  }
  return Status::OK();
}

Dataset Dataset::Shuffled(Rng* rng) const {
  std::vector<size_t> order(num_rows());
  std::iota(order.begin(), order.end(), 0);
  rng->Shuffle(&order);
  return SelectRows(order);
}

}  // namespace ml
}  // namespace nextmaint
