#include "ml/histogram.h"

namespace nextmaint {
namespace ml {

void NodeHistogram::Reset(const HistogramLayout& layout) {
  grad_.assign(layout.total_bins(), 0.0);
  count_.assign(layout.total_bins(), 0);
}

void NodeHistogram::SubtractFeature(const HistogramLayout& layout, size_t f,
                                    const NodeHistogram& sibling) {
  const size_t offset = layout.feature_offset(f);
  const size_t bins = layout.feature_bins(f);
  for (size_t b = 0; b < bins; ++b) {
    grad_[offset + b] -= sibling.grad_[offset + b];
    count_[offset + b] -= sibling.count_[offset + b];
  }
}

void DataPartition::Reset(size_t n) {
  indices_.resize(n);
  std::iota(indices_.begin(), indices_.end(), uint32_t{0});
  leaves_.clear();
}

void DataPartition::Reset(const std::vector<size_t>& rows) {
  indices_.clear();
  indices_.reserve(rows.size());
  for (const size_t row : rows) {
    indices_.push_back(static_cast<uint32_t>(row));
  }
  leaves_.clear();
}

bool DataPartition::LeavesCoverAll() const {
  size_t cursor = 0;
  for (const auto& [begin, end] : leaves_) {
    if (begin != cursor || end <= begin) return false;
    cursor = end;
  }
  return cursor == indices_.size();
}

}  // namespace ml
}  // namespace nextmaint
