#ifndef NEXTMAINT_ML_BINNED_DATASET_H_
#define NEXTMAINT_ML_BINNED_DATASET_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/thread_annotations.h"
#include "ml/matrix.h"

/// \file binned_dataset.h
/// Columnar pre-binned training representation for the tree learners
/// (LightGBM-style): a BinMapper quantizes each feature into at most
/// `max_bins` quantile bins, a BinnedDataset materializes one contiguous
/// bin column per feature (uint8_t when the feature uses <= 256 bins,
/// uint16_t otherwise), and a BinningCache keys (matrix bytes, max_bins)
/// pairs so grid-search candidates and serving refreshes bin each vehicle's
/// data once instead of once per fit. See docs/binned-training.md.

namespace nextmaint {
namespace ml {

/// Which tree-training core a learner runs on. Both cores execute the same
/// histogram split arithmetic (ml/histogram.h) and produce byte-identical
/// models and forecasts; they differ only in how feature bins reach the
/// kernels. tests/ml/binned_equality_test.cc pins the equality.
enum class TreeCore {
  /// Reference core: every bin is resolved per access by binary search over
  /// the raw row-major matrix; nothing is materialized or cached.
  kRowOriented,
  /// Production core: contiguous per-feature bin columns materialized once
  /// and reusable across fits through a BinningCache.
  kBinned,
};

/// Quantile binning of a feature matrix; shared by training and ablation
/// benches (bin-count sensitivity).
class BinMapper {
 public:
  /// Computes per-feature quantile boundaries from `x` (at most
  /// max_bins bins per feature). Named Compute rather than Fit: the Fit
  /// name is reserved for Status-returning training entry points
  /// (nextmaint_lint tracks those by name).
  ///
  /// Degenerate columns collapse to a single bin: an all-identical column
  /// maps every value (below, equal or above the stored boundary) to bin 0,
  /// and split search skips the feature because one bin admits no boundary.
  /// tests/ml/dataset_test.cc pins this contract.
  void Compute(const Matrix& x, int max_bins);

  /// Bin index of a raw value for feature `feature`.
  uint16_t BinOf(size_t feature, double value) const;

  /// Upper boundary of `bin` for `feature` — the numeric threshold a split
  /// at this bin corresponds to.
  double UpperBound(size_t feature, uint16_t bin) const;

  /// Number of distinct bins actually used by `feature`.
  size_t BinCount(size_t feature) const;

  size_t num_features() const { return thresholds_.size(); }

 private:
  // thresholds_[f] holds ascending bin upper-boundaries; value <= t[b]
  // belongs to the first such bin b; values above the last boundary go to
  // the final bin.
  std::vector<std::vector<double>> thresholds_;
};

/// Columnar bin storage: one contiguous column per feature, packed to
/// uint8_t when the feature uses at most 256 bins and uint16_t otherwise.
/// Histogram kernels stream these columns instead of striding across the
/// row-major matrix.
class BinnedDataset {
 public:
  BinnedDataset() = default;

  /// Bins every cell of `x` through `mapper`. Features are binned
  /// independently (one column per task), so the parallel result is
  /// identical to the serial one at any thread count.
  void Build(const Matrix& x, const BinMapper& mapper, int num_threads = 1);

  /// Bin of (feature, row); valid after Build.
  uint32_t Bin(size_t feature, size_t row) const {
    const Column& column = columns_[feature];
    return column.narrow ? column.u8[row] : column.u16[row];
  }

  size_t num_rows() const { return num_rows_; }
  size_t num_features() const { return columns_.size(); }
  /// True when `feature` is stored as uint8_t (<= 256 bins).
  bool IsNarrow(size_t feature) const { return columns_[feature].narrow; }
  /// Raw column storage, for the grower's hoisted per-feature fill loops;
  /// valid only for the matching IsNarrow() width.
  const uint8_t* NarrowColumn(size_t feature) const {
    return columns_[feature].u8.data();
  }
  const uint16_t* WideColumn(size_t feature) const {
    return columns_[feature].u16.data();
  }
  /// Bytes of bin storage (bench/diagnostics).
  size_t MemoryBytes() const;

 private:
  struct Column {
    bool narrow = true;
    std::vector<uint8_t> u8;
    std::vector<uint16_t> u16;
  };
  std::vector<Column> columns_;
  size_t num_rows_ = 0;
};

/// Bin source for the row-oriented reference core: resolves each (feature,
/// row) bin on the fly by binary search into the raw matrix. Same bin
/// values as BinnedDataset built from the same mapper, without any
/// materialized state — the differential-testing counterpart of the
/// columnar core.
struct OnTheFlyBins {
  const Matrix* x = nullptr;
  const BinMapper* mapper = nullptr;
  uint32_t Bin(size_t feature, size_t row) const {
    return mapper->BinOf(feature, (*x)(row, feature));
  }
};

/// One fully prepared binning of a training matrix: the mapper plus the
/// materialized columns it produced.
struct PreBinned {
  BinMapper mapper;
  BinnedDataset binned;
};

/// Thread-safe, content-addressed cache of PreBinned instances. Keys are a
/// fingerprint of the raw matrix bytes plus (rows, cols, max_bins), so any
/// caller fitting on the same data — every grid-search candidate, every CV
/// fold re-materialization, every serving refresh on unchanged data — hits
/// the same entry, while different fold subsets or appended days key
/// separately and can never alias. Capacity is bounded: when the entry cap
/// is reached the cache resets wholesale (deterministic, and the next fit
/// simply recomputes).
class BinningCache {
 public:
  struct Stats {
    size_t lookups = 0;
    /// Lookups served from an existing entry.
    size_t hits = 0;
    /// Entries currently resident.
    size_t entries = 0;
  };

  /// Returns the shared PreBinned for (x, max_bins), computing and
  /// inserting it on a miss. Concurrent callers are serialized; the
  /// returned object is immutable and safe to share across threads.
  std::shared_ptr<const PreBinned> GetOrCompute(const Matrix& x, int max_bins,
                                                int num_threads = 1)
      EXCLUDES(mutex_);

  Stats stats() const EXCLUDES(mutex_);
  void Clear() EXCLUDES(mutex_);

 private:
  struct Key {
    uint64_t fingerprint = 0;
    size_t rows = 0;
    size_t cols = 0;
    int max_bins = 0;
    bool operator<(const Key& other) const;
  };

  /// Wholesale-reset threshold; see class comment.
  static constexpr size_t kMaxEntries = 64;

  mutable Mutex mutex_;
  std::map<Key, std::shared_ptr<const PreBinned>> entries_ GUARDED_BY(mutex_);
  size_t lookups_ GUARDED_BY(mutex_) = 0;
  size_t hits_ GUARDED_BY(mutex_) = 0;
};

/// How the tree learners (Tree/RF/XGB) execute training: which core runs
/// the histogram kernels and, optionally, a shared BinningCache for
/// cross-fit reuse. Carried through ml::MakeRegressor/MakeFactory overloads
/// and the core-layer option structs; a null cache simply disables reuse.
struct TrainingBackend {
  TreeCore core = TreeCore::kBinned;
  std::shared_ptr<BinningCache> binning_cache;
};

}  // namespace ml
}  // namespace nextmaint

#endif  // NEXTMAINT_ML_BINNED_DATASET_H_
