#ifndef NEXTMAINT_ML_METRICS_H_
#define NEXTMAINT_ML_METRICS_H_

#include <vector>

#include "common/status.h"

/// \file metrics.h
/// Generic regression metrics. The paper-specific error definitions
/// (E_Global, E_MRE) live in core/errors.h; these are the standard metrics
/// used inside cross-validation and tests.

namespace nextmaint {
namespace ml {

/// Mean squared error. Fails on length mismatch or empty input.
[[nodiscard]] Result<double> MeanSquaredError(const std::vector<double>& truth,
                                const std::vector<double>& predicted);

/// Root mean squared error.
[[nodiscard]] Result<double> RootMeanSquaredError(const std::vector<double>& truth,
                                    const std::vector<double>& predicted);

/// Mean absolute error.
[[nodiscard]] Result<double> MeanAbsoluteError(const std::vector<double>& truth,
                                 const std::vector<double>& predicted);

/// Coefficient of determination R^2. Returns NumericError when the truth is
/// constant (undefined denominator).
[[nodiscard]] Result<double> R2Score(const std::vector<double>& truth,
                       const std::vector<double>& predicted);

}  // namespace ml
}  // namespace nextmaint

#endif  // NEXTMAINT_ML_METRICS_H_
