#include "ml/hist_gradient_boosting.h"

#include <algorithm>
#include <limits>

#include "common/macros.h"
#include "common/parallel.h"
#include "common/telemetry.h"
#include "ml/early_stopping.h"
#include "ml/histogram.h"

namespace nextmaint {
namespace ml {

HistGradientBoostingRegressor::Options
HistGradientBoostingRegressor::OptionsFromParams(const ParamMap& params) {
  Options options;
  if (auto it = params.find("num_iterations"); it != params.end()) {
    options.num_iterations = static_cast<int>(it->second);
  }
  if (auto it = params.find("max_depth"); it != params.end()) {
    options.max_depth = static_cast<int>(it->second);
  }
  if (auto it = params.find("learning_rate"); it != params.end()) {
    options.learning_rate = it->second;
  }
  if (auto it = params.find("min_samples_leaf"); it != params.end()) {
    options.min_samples_leaf = static_cast<int>(it->second);
  }
  if (auto it = params.find("max_bins"); it != params.end()) {
    options.max_bins = static_cast<int>(it->second);
  }
  if (auto it = params.find("num_threads"); it != params.end()) {
    options.num_threads = static_cast<int>(it->second);
  }
  return options;
}

namespace {

/// Grain for the per-row prediction-update sweep; each row is independent
/// so chunking cannot change the result.
constexpr size_t kPredictGrain = 1024;

}  // namespace

size_t HistGradientBoostingRegressor::TrainRowCount(size_t total_rows) const {
  // Early stopping holds out the chronological tail: the dataset builder
  // emits time-ordered rows, so the tail is the most recent data.
  return options_.validation_fraction > 0.0
             ? std::max<size_t>(
                   1, total_rows - static_cast<size_t>(
                                       options_.validation_fraction *
                                       static_cast<double>(total_rows)))
             : total_rows;
}

Status HistGradientBoostingRegressor::BoostRounds(const Dataset& train,
                                                  int rounds) {
  const size_t total_rows = train.num_rows();
  const size_t n = TrainRowCount(total_rows);
  const size_t valid_rows = total_rows - n;

  // Binning: the mapper covers the full training matrix, shared by both
  // tree cores (and cacheable across fits on the same matrix); the binned
  // core additionally materializes columnar bins, the row-oriented core
  // re-derives each bin per access. A warm resume goes through the same
  // cache, so repeated resumes on one grown matrix bin it once.
  std::shared_ptr<const PreBinned> cached;
  BinMapper local_mapper;
  BinnedDataset local_binned;
  const BinMapper* mapper = nullptr;
  const BinnedDataset* binned = nullptr;
  if (options_.core == TreeCore::kBinned && options_.binning_cache) {
    cached = options_.binning_cache->GetOrCompute(
        train.x(), options_.max_bins, options_.num_threads);
    mapper = &cached->mapper;
    binned = &cached->binned;
  } else {
    local_mapper.Compute(train.x(), options_.max_bins);
    mapper = &local_mapper;
    if (options_.core == TreeCore::kBinned) {
      local_binned.Build(train.x(), *mapper, options_.num_threads);
      binned = &local_binned;
    }
  }
  bins_ = *mapper;

  const HistogramLayout layout(*mapper);
  const OnTheFlyBins on_the_fly{&train.x(), mapper};
  GrowSpec spec;
  spec.depth_limited = options_.max_depth > 0;
  spec.max_depth = options_.max_depth;
  spec.min_samples_leaf = static_cast<size_t>(options_.min_samples_leaf);
  spec.newton = true;
  spec.learning_rate = options_.learning_rate;
  spec.l2 = options_.l2;
  spec.min_gain = options_.min_gain;
  spec.num_threads = options_.num_threads;

  // Seed the working predictions from the current ensemble: base score
  // plus existing trees in boosting order, the exact accumulation order
  // Predict uses, so a resume continues from bit-identical state.
  std::vector<double> predictions(n, base_score_);
  std::vector<double> valid_predictions(valid_rows, base_score_);
  if (!trees_.empty()) {
    NM_RETURN_NOT_OK(ParallelFor(
        0, total_rows, kPredictGrain,
        [&](size_t chunk_begin, size_t chunk_end) -> Status {
          for (size_t i = chunk_begin; i < chunk_end; ++i) {
            double score = 0.0;
            for (const Tree& tree : trees_) {
              score += PredictTree(tree, train.x().Row(i));
            }
            if (i < n) {
              predictions[i] += score;
            } else {
              valid_predictions[i - n] += score;
            }
          }
          return Status::OK();
        },
        options_.num_threads));
  }

  std::vector<double> gradients(n);
  DataPartition partition;
  // Each BoostRounds call gets a fresh patience window: a resume re-bases
  // the plateau detection on the grown data's validation tail.
  EarlyStopping stopper(
      EarlyStopping::Options{options_.early_stopping_rounds, 1e-12});

  for (int iter = 0; iter < rounds; ++iter) {
    double loss = 0.0;
    for (size_t i = 0; i < n; ++i) {
      gradients[i] = predictions[i] - train.y()[i];
      loss += gradients[i] * gradients[i];
    }
    train_loss_.push_back(loss / static_cast<double>(n));

    partition.Reset(n);
    const std::vector<GrowNode> grown =
        binned != nullptr
            ? GrowHistTree(*binned, *mapper, layout, gradients, &partition,
                           spec)
            : GrowHistTree(on_the_fly, *mapper, layout, gradients,
                           &partition, spec);
    Tree tree;
    tree.reserve(grown.size());
    for (const GrowNode& node : grown) {
      tree.push_back(TreeNode{node.left, node.right, node.feature,
                              node.threshold, node.value, node.gain});
    }
    if (tree.size() == 1 && iter > 0) {
      // Root could not split and contributes a constant; gradients have
      // plateaued, so further iterations would stack identical constants.
      trees_.push_back(std::move(tree));
      for (size_t i = 0; i < n; ++i) predictions[i] += trees_.back()[0].value;
      break;
    }

    NM_RETURN_NOT_OK(ParallelFor(
        0, n, kPredictGrain,
        [&](size_t chunk_begin, size_t chunk_end) -> Status {
          for (size_t i = chunk_begin; i < chunk_end; ++i) {
            predictions[i] += PredictTree(tree, train.x().Row(i));
          }
          return Status::OK();
        },
        options_.num_threads));
    if (valid_rows > 0) {
      double valid_mse = 0.0;
      for (size_t i = 0; i < valid_rows; ++i) {
        valid_predictions[i] += PredictTree(tree, train.x().Row(n + i));
        const double err = valid_predictions[i] - train.y()[n + i];
        valid_mse += err * err;
      }
      valid_mse /= static_cast<double>(valid_rows);
      valid_loss_.push_back(valid_mse);
      if (stopper.Update(valid_mse)) {
        trees_.push_back(std::move(tree));
        break;
      }
    }
    trees_.push_back(std::move(tree));
  }
  return Status::OK();
}

Status HistGradientBoostingRegressor::FitImpl(const Dataset& train) {
  fitted_ = false;
  trees_.clear();
  train_loss_.clear();
  valid_loss_.clear();
  if (train.empty()) {
    return Status::InvalidArgument("cannot fit XGB on an empty dataset");
  }
  if (!train.x().AllFinite()) {
    return Status::InvalidArgument("XGB features contain non-finite values");
  }
  if (options_.num_iterations <= 0) {
    return Status::InvalidArgument("XGB requires num_iterations > 0");
  }
  if (options_.learning_rate <= 0.0) {
    return Status::InvalidArgument("XGB requires learning_rate > 0");
  }
  if (options_.max_bins < 2 || options_.max_bins > 65535) {
    return Status::InvalidArgument("XGB requires 2 <= max_bins <= 65535");
  }
  if (options_.min_samples_leaf < 1) {
    return Status::InvalidArgument("XGB requires min_samples_leaf >= 1");
  }
  if (options_.validation_fraction < 0.0 ||
      options_.validation_fraction >= 1.0) {
    return Status::InvalidArgument(
        "XGB requires validation_fraction in [0, 1)");
  }
  if (options_.early_stopping_rounds < 1) {
    return Status::InvalidArgument(
        "XGB requires early_stopping_rounds >= 1");
  }

  num_features_ = train.num_features();

  // Initial prediction: the target mean (squared-loss optimum).
  const size_t n = TrainRowCount(train.num_rows());
  base_score_ = 0.0;
  for (double y : train.y()) base_score_ += y;
  base_score_ /= static_cast<double>(n);

  NM_RETURN_NOT_OK(BoostRounds(train, options_.num_iterations));

  fitted_ = true;
  telemetry::Count("ml.xgb.boosting_rounds", trees_.size());
  return Status::OK();
}

Status HistGradientBoostingRegressor::ContinueFitImpl(const Dataset& train,
                                                      int extra_rounds) {
  if (train.empty()) {
    return Status::InvalidArgument("cannot resume XGB on an empty dataset");
  }
  if (train.num_features() != num_features_) {
    return Status::InvalidArgument(
        "feature count mismatch: got " +
        std::to_string(train.num_features()) + ", trained with " +
        std::to_string(num_features_));
  }
  if (!train.x().AllFinite()) {
    return Status::InvalidArgument("XGB features contain non-finite values");
  }
  if (extra_rounds == 0) return Status::OK();  // byte-identical no-op

  // All-or-nothing: an error mid-resume must not leave a half-extended
  // ensemble behind (the serving engine falls back to a cold retrain on
  // failure, but the model object may outlive that decision).
  const size_t trees_before = trees_.size();
  const size_t train_loss_before = train_loss_.size();
  const size_t valid_loss_before = valid_loss_.size();
  const Status status = BoostRounds(train, extra_rounds);
  if (!status.ok()) {
    trees_.resize(trees_before);
    train_loss_.resize(train_loss_before);
    valid_loss_.resize(valid_loss_before);
    return status;
  }
  telemetry::Count("ml.xgb.boosting_rounds_resumed",
                   trees_.size() - trees_before);
  return Status::OK();
}

double HistGradientBoostingRegressor::PredictTree(
    const Tree& tree, std::span<const double> features) const {
  const TreeNode* node = &tree[0];
  while (!node->is_leaf()) {
    node = features[static_cast<size_t>(node->feature)] <= node->threshold
               ? &tree[static_cast<size_t>(node->left)]
               : &tree[static_cast<size_t>(node->right)];
  }
  return node->value;
}

std::vector<double> HistGradientBoostingRegressor::FeatureImportances()
    const {
  std::vector<double> importances(num_features_, 0.0);
  double total = 0.0;
  for (const Tree& tree : trees_) {
    for (const TreeNode& node : tree) {
      if (node.is_leaf()) continue;
      importances[static_cast<size_t>(node.feature)] += node.gain;
      total += node.gain;
    }
  }
  if (total > 0.0) {
    for (double& v : importances) v /= total;
  }
  return importances;
}

Result<double> HistGradientBoostingRegressor::Predict(
    std::span<const double> features) const {
  if (!fitted_) {
    return Status::FailedPrecondition("XGB model is not fitted");
  }
  if (features.size() != num_features_) {
    return Status::InvalidArgument(
        "feature count mismatch: got " + std::to_string(features.size()) +
        ", trained with " + std::to_string(num_features_));
  }
  double score = base_score_;
  for (const Tree& tree : trees_) {
    score += PredictTree(tree, features);
  }
  return score;
}

Result<std::vector<double>> HistGradientBoostingRegressor::PredictBatchImpl(
    const Matrix& x) const {
  std::vector<double> out;
  out.reserve(x.rows());
  if (x.rows() == 0) return out;
  if (!fitted_) {
    return Status::FailedPrecondition("XGB model is not fitted");
  }
  if (x.cols() != num_features_) {
    return Status::InvalidArgument(
        "feature count mismatch: got " + std::to_string(x.cols()) +
        ", trained with " + std::to_string(num_features_));
  }
  // Same accumulation order as Predict (base score, then trees in boosting
  // order), so batch and per-row results are bit-identical.
  for (size_t r = 0; r < x.rows(); ++r) {
    double score = base_score_;
    for (const Tree& tree : trees_) {
      score += PredictTree(tree, x.Row(r));
    }
    out.push_back(score);
  }
  return out;
}


Status HistGradientBoostingRegressor::Save(std::ostream& out) const {
  if (!fitted_) {
    return Status::FailedPrecondition("cannot save an unfitted XGB model");
  }
  out.precision(17);
  out << "nextmaint-model v1 XGB\n";
  out << "base " << base_score_ << "\n";
  out << "features " << num_features_ << "\n";
  // Resumable state: the hyper-parameters ContinueFit needs to extend the
  // ensemble after a round trip (num_iterations stays out — the resume
  // budget is the caller's extra_rounds). Readers predate this line, so
  // LoadBody treats it as optional.
  out << "resume " << options_.learning_rate << " " << options_.max_depth
      << " " << options_.min_samples_leaf << " " << options_.max_bins << " "
      << options_.l2 << " " << options_.min_gain << " "
      << options_.validation_fraction << " "
      << options_.early_stopping_rounds << "\n";
  out << "trees " << trees_.size() << "\n";
  for (const Tree& tree : trees_) {
    out << "nodes " << tree.size() << "\n";
    for (const TreeNode& node : tree) {
      out << node.left << " " << node.right << " " << node.feature << " "
          << node.threshold << " " << node.value << "\n";
    }
  }
  out << "end\n";
  if (!out) return Status::IOError("XGB serialization failed");
  return Status::OK();
}

Result<HistGradientBoostingRegressor>
HistGradientBoostingRegressor::LoadBody(std::istream& in) {
  std::string token;
  HistGradientBoostingRegressor model;
  size_t tree_count = 0;
  if (!(in >> token >> model.base_score_) || token != "base") {
    return Status::DataError("XGB: expected 'base <b>'");
  }
  if (!(in >> token >> model.num_features_) || token != "features") {
    return Status::DataError("XGB: expected 'features <p>'");
  }
  if (!(in >> token)) {
    return Status::DataError("XGB: truncated after 'features'");
  }
  if (token == "resume") {
    // Optional resumable-state line (absent in pre-warm-start files, whose
    // models load fine but resume with default hyper-parameters).
    Options& o = model.options_;
    if (!(in >> o.learning_rate >> o.max_depth >> o.min_samples_leaf >>
          o.max_bins >> o.l2 >> o.min_gain >> o.validation_fraction >>
          o.early_stopping_rounds)) {
      return Status::DataError("XGB: truncated 'resume' line");
    }
    if (o.learning_rate <= 0.0 || o.min_samples_leaf < 1 ||
        o.max_bins < 2 || o.max_bins > 65535 ||
        o.validation_fraction < 0.0 || o.validation_fraction >= 1.0 ||
        o.early_stopping_rounds < 1) {
      return Status::DataError("XGB: 'resume' values out of range");
    }
    if (!(in >> token)) {
      return Status::DataError("XGB: truncated after 'resume'");
    }
  }
  if (!(in >> tree_count) || token != "trees") {
    return Status::DataError("XGB: expected 'trees <k>'");
  }
  if (tree_count > 1'000'000) {
    return Status::DataError("XGB: implausible tree count");
  }
  model.trees_.reserve(tree_count);
  for (size_t t = 0; t < tree_count; ++t) {
    size_t node_count = 0;
    if (!(in >> token >> node_count) || token != "nodes") {
      return Status::DataError("XGB: expected 'nodes <n>'");
    }
    if (node_count == 0 || node_count > 50'000'000) {
      return Status::DataError("XGB: implausible node count");
    }
    Tree tree(node_count);
    for (TreeNode& node : tree) {
      if (!(in >> node.left >> node.right >> node.feature >>
            node.threshold >> node.value)) {
        return Status::DataError("XGB: truncated node list");
      }
      if (!node.is_leaf() &&
          (node.left < 0 || node.left >= static_cast<int32_t>(node_count) ||
           node.right < 0 ||
           node.right >= static_cast<int32_t>(node_count) ||
           node.feature < 0 ||
           node.feature >= static_cast<int32_t>(model.num_features_))) {
        return Status::DataError("XGB: node indices out of range");
      }
    }
    model.trees_.push_back(std::move(tree));
  }
  if (!(in >> token) || token != "end") {
    return Status::DataError("XGB: missing end marker");
  }
  model.fitted_ = true;
  return model;
}

}  // namespace ml
}  // namespace nextmaint
