#include "ml/hist_gradient_boosting.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/macros.h"
#include "common/parallel.h"
#include "common/telemetry.h"

namespace nextmaint {
namespace ml {

void BinMapper::Compute(const Matrix& x, int max_bins) {
  NM_CHECK(max_bins >= 2 && max_bins <= 65535);
  thresholds_.assign(x.cols(), {});
  std::vector<double> values;
  for (size_t f = 0; f < x.cols(); ++f) {
    values = x.Col(f);
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());

    std::vector<double>& bounds = thresholds_[f];
    if (values.size() <= static_cast<size_t>(max_bins)) {
      // Few distinct values: one bin per value; boundary is the value.
      bounds = values;
    } else {
      // Quantile boundaries over the distinct values. Using distinct values
      // (not raw rows) keeps heavily repeated values (zero-usage days!) from
      // collapsing many bins into one.
      bounds.reserve(static_cast<size_t>(max_bins));
      for (int b = 1; b <= max_bins; ++b) {
        const double q = static_cast<double>(b) /
                         static_cast<double>(max_bins);
        const double pos = q * static_cast<double>(values.size() - 1);
        bounds.push_back(values[static_cast<size_t>(pos)]);
      }
      bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
    }
    if (bounds.empty()) bounds.push_back(0.0);
  }
}

uint16_t BinMapper::BinOf(size_t feature, double value) const {
  NM_CHECK(feature < thresholds_.size());
  const std::vector<double>& bounds = thresholds_[feature];
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), value);
  const size_t bin = it == bounds.end()
                         ? bounds.size() - 1
                         : static_cast<size_t>(it - bounds.begin());
  return static_cast<uint16_t>(bin);
}

double BinMapper::UpperBound(size_t feature, uint16_t bin) const {
  NM_CHECK(feature < thresholds_.size());
  NM_CHECK(bin < thresholds_[feature].size());
  return thresholds_[feature][bin];
}

size_t BinMapper::BinCount(size_t feature) const {
  NM_CHECK(feature < thresholds_.size());
  return thresholds_[feature].size();
}

HistGradientBoostingRegressor::Options
HistGradientBoostingRegressor::OptionsFromParams(const ParamMap& params) {
  Options options;
  if (auto it = params.find("num_iterations"); it != params.end()) {
    options.num_iterations = static_cast<int>(it->second);
  }
  if (auto it = params.find("max_depth"); it != params.end()) {
    options.max_depth = static_cast<int>(it->second);
  }
  if (auto it = params.find("learning_rate"); it != params.end()) {
    options.learning_rate = it->second;
  }
  if (auto it = params.find("min_samples_leaf"); it != params.end()) {
    options.min_samples_leaf = static_cast<int>(it->second);
  }
  if (auto it = params.find("max_bins"); it != params.end()) {
    options.max_bins = static_cast<int>(it->second);
  }
  if (auto it = params.find("num_threads"); it != params.end()) {
    options.num_threads = static_cast<int>(it->second);
  }
  return options;
}

namespace {

/// Rows below which a node's split search stays serial: with the paper's
/// narrow feature windows the per-feature histogram work on a small node
/// is cheaper than waking the pool.
constexpr size_t kMinRowsForParallelSplit = 512;

/// Grain for the per-row prediction-update sweep; each row is independent
/// so chunking cannot change the result.
constexpr size_t kPredictGrain = 1024;

}  // namespace

Status HistGradientBoostingRegressor::FitImpl(const Dataset& train) {
  fitted_ = false;
  trees_.clear();
  train_loss_.clear();
  if (train.empty()) {
    return Status::InvalidArgument("cannot fit XGB on an empty dataset");
  }
  if (!train.x().AllFinite()) {
    return Status::InvalidArgument("XGB features contain non-finite values");
  }
  if (options_.num_iterations <= 0) {
    return Status::InvalidArgument("XGB requires num_iterations > 0");
  }
  if (options_.learning_rate <= 0.0) {
    return Status::InvalidArgument("XGB requires learning_rate > 0");
  }
  if (options_.max_bins < 2 || options_.max_bins > 65535) {
    return Status::InvalidArgument("XGB requires 2 <= max_bins <= 65535");
  }
  if (options_.min_samples_leaf < 1) {
    return Status::InvalidArgument("XGB requires min_samples_leaf >= 1");
  }
  if (options_.validation_fraction < 0.0 ||
      options_.validation_fraction >= 1.0) {
    return Status::InvalidArgument(
        "XGB requires validation_fraction in [0, 1)");
  }
  if (options_.early_stopping_rounds < 1) {
    return Status::InvalidArgument(
        "XGB requires early_stopping_rounds >= 1");
  }

  const size_t total_rows = train.num_rows();
  // Early stopping holds out the chronological tail: the dataset builder
  // emits time-ordered rows, so the tail is the most recent data.
  const size_t n =
      options_.validation_fraction > 0.0
          ? std::max<size_t>(
                1, total_rows - static_cast<size_t>(
                                    options_.validation_fraction *
                                    static_cast<double>(total_rows)))
          : total_rows;
  const size_t valid_rows = total_rows - n;
  num_features_ = train.num_features();

  bins_.Compute(train.x(), options_.max_bins);

  // Column-major binned representation for cache-friendly histogram fills.
  // Features are binned independently (one column per task), so the
  // parallel result is identical to the serial one.
  std::vector<std::vector<uint16_t>> binned(num_features_,
                                            std::vector<uint16_t>(n));
  NM_RETURN_NOT_OK(ParallelFor(
      0, num_features_, /*grain=*/1,
      [&](size_t chunk_begin, size_t chunk_end) -> Status {
        for (size_t f = chunk_begin; f < chunk_end; ++f) {
          for (size_t r = 0; r < n; ++r) {
            binned[f][r] = bins_.BinOf(f, train.x()(r, f));
          }
        }
        return Status::OK();
      },
      options_.num_threads));

  // Initial prediction: the target mean (squared-loss optimum).
  base_score_ = 0.0;
  for (double y : train.y()) base_score_ += y;
  base_score_ /= static_cast<double>(n);

  std::vector<double> predictions(n, base_score_);
  std::vector<double> gradients(n);
  std::vector<size_t> indices(n);
  std::vector<double> valid_predictions(valid_rows, base_score_);
  valid_loss_.clear();
  double best_valid = std::numeric_limits<double>::infinity();
  int stale_rounds = 0;

  for (int iter = 0; iter < options_.num_iterations; ++iter) {
    double loss = 0.0;
    for (size_t i = 0; i < n; ++i) {
      gradients[i] = predictions[i] - train.y()[i];
      loss += gradients[i] * gradients[i];
    }
    train_loss_.push_back(loss / static_cast<double>(n));

    std::iota(indices.begin(), indices.end(), 0);
    Tree tree;
    tree.reserve(64);
    BuildNode(binned, gradients, &indices, 0, n, 0, &tree);
    if (tree.size() == 1 && iter > 0) {
      // Root could not split and contributes a constant; gradients have
      // plateaued, so further iterations would stack identical constants.
      trees_.push_back(std::move(tree));
      for (size_t i = 0; i < n; ++i) predictions[i] += trees_.back()[0].value;
      break;
    }

    NM_RETURN_NOT_OK(ParallelFor(
        0, n, kPredictGrain,
        [&](size_t chunk_begin, size_t chunk_end) -> Status {
          for (size_t i = chunk_begin; i < chunk_end; ++i) {
            predictions[i] += PredictTree(tree, train.x().Row(i));
          }
          return Status::OK();
        },
        options_.num_threads));
    if (valid_rows > 0) {
      double valid_mse = 0.0;
      for (size_t i = 0; i < valid_rows; ++i) {
        valid_predictions[i] += PredictTree(tree, train.x().Row(n + i));
        const double err = valid_predictions[i] - train.y()[n + i];
        valid_mse += err * err;
      }
      valid_mse /= static_cast<double>(valid_rows);
      valid_loss_.push_back(valid_mse);
      if (valid_mse < best_valid - 1e-12) {
        best_valid = valid_mse;
        stale_rounds = 0;
      } else if (++stale_rounds >= options_.early_stopping_rounds) {
        trees_.push_back(std::move(tree));
        break;
      }
    }
    trees_.push_back(std::move(tree));
  }

  fitted_ = true;
  telemetry::Count("ml.xgb.boosting_rounds", trees_.size());
  return Status::OK();
}

int32_t HistGradientBoostingRegressor::BuildNode(
    const std::vector<std::vector<uint16_t>>& binned,
    const std::vector<double>& gradients, std::vector<size_t>* indices,
    size_t begin, size_t end, int depth, Tree* tree) const {
  const size_t count = end - begin;
  NM_CHECK(count > 0);

  double grad_sum = 0.0;
  for (size_t i = begin; i < end; ++i) grad_sum += gradients[(*indices)[i]];
  const double hess_sum = static_cast<double>(count);  // squared loss: h = 1

  const int32_t node_index = static_cast<int32_t>(tree->size());
  tree->push_back(TreeNode{});
  // Newton leaf weight, shrunk by the learning rate.
  (*tree)[node_index].value =
      -options_.learning_rate * grad_sum / (hess_sum + options_.l2);

  const bool depth_exhausted =
      options_.max_depth > 0 && depth >= options_.max_depth;
  const size_t min_leaf = static_cast<size_t>(options_.min_samples_leaf);
  if (depth_exhausted || count < 2 * min_leaf) {
    return node_index;
  }

  const double parent_score =
      grad_sum * grad_sum / (hess_sum + options_.l2);

  struct Best {
    double gain = 0.0;
    size_t feature = 0;
    uint16_t bin = 0;
  } best;

  // Per-feature histograms: accumulate gradient sum and count per bin, then
  // scan bins left to right evaluating every boundary. Each feature's
  // search is independent; candidates land in feature_best[f] and the
  // winner is reduced serially in ascending feature order below, so the
  // chosen split is the one the serial left-to-right scan would pick
  // (strict '>' keeps the earliest feature/bin on ties) at any thread
  // count. Small nodes stay serial: the histogram work would not amortize
  // the pool hand-off.
  const size_t num_features = binned.size();
  std::vector<Best> feature_best(num_features);
  const int split_threads =
      count >= kMinRowsForParallelSplit
          ? ResolveThreadCount(options_.num_threads)
          : 1;
  // One chunk per lane so each lane allocates its histogram scratch once.
  const size_t split_grain =
      (num_features - 1) / static_cast<size_t>(split_threads) + 1;
  const Status split_status = ParallelFor(
      0, num_features, split_grain,
      [&](size_t chunk_begin, size_t chunk_end) -> Status {
        std::vector<double> hist_grad;
        std::vector<uint32_t> hist_count;
        for (size_t f = chunk_begin; f < chunk_end; ++f) {
          const size_t num_bins = bins_.BinCount(f);
          if (num_bins < 2) continue;
          hist_grad.assign(num_bins, 0.0);
          hist_count.assign(num_bins, 0);
          const std::vector<uint16_t>& column = binned[f];
          for (size_t i = begin; i < end; ++i) {
            const size_t row = (*indices)[i];
            hist_grad[column[row]] += gradients[row];
            ++hist_count[column[row]];
          }

          Best local;
          local.feature = f;
          double left_grad = 0.0;
          size_t left_count = 0;
          for (size_t b = 0; b + 1 < num_bins; ++b) {
            left_grad += hist_grad[b];
            left_count += hist_count[b];
            if (left_count < min_leaf) continue;
            const size_t right_count = count - left_count;
            if (right_count < min_leaf) break;
            const double right_grad = grad_sum - left_grad;
            const double gain =
                left_grad * left_grad /
                    (static_cast<double>(left_count) + options_.l2) +
                right_grad * right_grad /
                    (static_cast<double>(right_count) + options_.l2) -
                parent_score;
            if (gain > local.gain) {
              local.gain = gain;
              local.bin = static_cast<uint16_t>(b);
            }
          }
          feature_best[f] = local;
        }
        return Status::OK();
      },
      split_threads);
  NM_CHECK(split_status.ok());  // the search body has no failure path
  for (size_t f = 0; f < num_features; ++f) {
    if (feature_best[f].gain > best.gain) best = feature_best[f];
  }

  if (best.gain <= options_.min_gain) {
    return node_index;
  }

  const std::vector<uint16_t>& split_column = binned[best.feature];
  auto mid_iter =
      std::partition(indices->begin() + static_cast<ptrdiff_t>(begin),
                     indices->begin() + static_cast<ptrdiff_t>(end),
                     [&](size_t row) { return split_column[row] <= best.bin; });
  const size_t mid = static_cast<size_t>(mid_iter - indices->begin());
  NM_CHECK(mid > begin && mid < end);

  (*tree)[node_index].feature = static_cast<int32_t>(best.feature);
  (*tree)[node_index].threshold = bins_.UpperBound(best.feature, best.bin);
  (*tree)[node_index].gain = best.gain;
  const int32_t left =
      BuildNode(binned, gradients, indices, begin, mid, depth + 1, tree);
  const int32_t right =
      BuildNode(binned, gradients, indices, mid, end, depth + 1, tree);
  (*tree)[node_index].left = left;
  (*tree)[node_index].right = right;
  return node_index;
}

double HistGradientBoostingRegressor::PredictTree(
    const Tree& tree, std::span<const double> features) const {
  const TreeNode* node = &tree[0];
  while (!node->is_leaf()) {
    node = features[static_cast<size_t>(node->feature)] <= node->threshold
               ? &tree[static_cast<size_t>(node->left)]
               : &tree[static_cast<size_t>(node->right)];
  }
  return node->value;
}

std::vector<double> HistGradientBoostingRegressor::FeatureImportances()
    const {
  std::vector<double> importances(num_features_, 0.0);
  double total = 0.0;
  for (const Tree& tree : trees_) {
    for (const TreeNode& node : tree) {
      if (node.is_leaf()) continue;
      importances[static_cast<size_t>(node.feature)] += node.gain;
      total += node.gain;
    }
  }
  if (total > 0.0) {
    for (double& v : importances) v /= total;
  }
  return importances;
}

Result<double> HistGradientBoostingRegressor::Predict(
    std::span<const double> features) const {
  if (!fitted_) {
    return Status::FailedPrecondition("XGB model is not fitted");
  }
  if (features.size() != num_features_) {
    return Status::InvalidArgument(
        "feature count mismatch: got " + std::to_string(features.size()) +
        ", trained with " + std::to_string(num_features_));
  }
  double score = base_score_;
  for (const Tree& tree : trees_) {
    score += PredictTree(tree, features);
  }
  return score;
}

Result<std::vector<double>> HistGradientBoostingRegressor::PredictBatchImpl(
    const Matrix& x) const {
  std::vector<double> out;
  out.reserve(x.rows());
  if (x.rows() == 0) return out;
  if (!fitted_) {
    return Status::FailedPrecondition("XGB model is not fitted");
  }
  if (x.cols() != num_features_) {
    return Status::InvalidArgument(
        "feature count mismatch: got " + std::to_string(x.cols()) +
        ", trained with " + std::to_string(num_features_));
  }
  // Same accumulation order as Predict (base score, then trees in boosting
  // order), so batch and per-row results are bit-identical.
  for (size_t r = 0; r < x.rows(); ++r) {
    double score = base_score_;
    for (const Tree& tree : trees_) {
      score += PredictTree(tree, x.Row(r));
    }
    out.push_back(score);
  }
  return out;
}


Status HistGradientBoostingRegressor::Save(std::ostream& out) const {
  if (!fitted_) {
    return Status::FailedPrecondition("cannot save an unfitted XGB model");
  }
  out.precision(17);
  out << "nextmaint-model v1 XGB\n";
  out << "base " << base_score_ << "\n";
  out << "features " << num_features_ << "\n";
  out << "trees " << trees_.size() << "\n";
  for (const Tree& tree : trees_) {
    out << "nodes " << tree.size() << "\n";
    for (const TreeNode& node : tree) {
      out << node.left << " " << node.right << " " << node.feature << " "
          << node.threshold << " " << node.value << "\n";
    }
  }
  out << "end\n";
  if (!out) return Status::IOError("XGB serialization failed");
  return Status::OK();
}

Result<HistGradientBoostingRegressor>
HistGradientBoostingRegressor::LoadBody(std::istream& in) {
  std::string token;
  HistGradientBoostingRegressor model;
  size_t tree_count = 0;
  if (!(in >> token >> model.base_score_) || token != "base") {
    return Status::DataError("XGB: expected 'base <b>'");
  }
  if (!(in >> token >> model.num_features_) || token != "features") {
    return Status::DataError("XGB: expected 'features <p>'");
  }
  if (!(in >> token >> tree_count) || token != "trees") {
    return Status::DataError("XGB: expected 'trees <k>'");
  }
  if (tree_count > 1'000'000) {
    return Status::DataError("XGB: implausible tree count");
  }
  model.trees_.reserve(tree_count);
  for (size_t t = 0; t < tree_count; ++t) {
    size_t node_count = 0;
    if (!(in >> token >> node_count) || token != "nodes") {
      return Status::DataError("XGB: expected 'nodes <n>'");
    }
    if (node_count == 0 || node_count > 50'000'000) {
      return Status::DataError("XGB: implausible node count");
    }
    Tree tree(node_count);
    for (TreeNode& node : tree) {
      if (!(in >> node.left >> node.right >> node.feature >>
            node.threshold >> node.value)) {
        return Status::DataError("XGB: truncated node list");
      }
      if (!node.is_leaf() &&
          (node.left < 0 || node.left >= static_cast<int32_t>(node_count) ||
           node.right < 0 ||
           node.right >= static_cast<int32_t>(node_count) ||
           node.feature < 0 ||
           node.feature >= static_cast<int32_t>(model.num_features_))) {
        return Status::DataError("XGB: node indices out of range");
      }
    }
    model.trees_.push_back(std::move(tree));
  }
  if (!(in >> token) || token != "end") {
    return Status::DataError("XGB: missing end marker");
  }
  model.fitted_ = true;
  return model;
}

}  // namespace ml
}  // namespace nextmaint
