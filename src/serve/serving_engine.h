#ifndef NEXTMAINT_SERVE_SERVING_ENGINE_H_
#define NEXTMAINT_SERVE_SERVING_ENGINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/date.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/category.h"
#include "core/scheduler.h"
#include "data/time_series.h"

/// \file serving_engine.h
/// Incremental fleet serving: O(new data) refreshes over the batch facade.
///
/// The paper's system is deployed against a telematics collector that
/// delivers utilization one day at a time, yet FleetScheduler is a batch
/// facade — one appended day costs a full-fleet retrain and re-forecast.
/// The ServingEngine closes that gap with per-vehicle cached feature state
/// and dirty-tracking: `Append(id, day, seconds)` invalidates only that
/// vehicle, and `RefreshForecasts()` retrains and re-forecasts only dirty
/// vehicles (fanning out over the shared thread pool), reusing every clean
/// vehicle's cached model and forecast.
///
/// The non-negotiable invariant: after any interleaving of appends and
/// refreshes, the published forecasts are **bit-identical** to a
/// from-scratch batch `TrainAll` + `FleetForecast` over the same data, at
/// any thread count. The engine earns this by construction, not by
/// approximation — it runs the exact same code paths the batch facade runs
/// (CorpusContribution / TrainUnifiedFromCorpus / TrainVehicles /
/// Forecast), only on the subset that changed, and it rebuilds the shared
/// cold-start inputs whenever a dirty vehicle's corpus contribution
/// changes (which dirties every cold-start consumer). See
/// docs/serving.md for the full argument.
///
/// The one opt-in exception: SchedulerOptions::warm_start resumes eligible
/// dirty vehicles' ensemble models with FleetScheduler::WarmStartVehicle
/// instead of retraining them cold. A warm-refreshed fleet is still
/// deterministic at any thread count, but its forecasts are no longer
/// bit-identical to the batch run — they track it within a measured
/// divergence bound enforced by bench_serving (docs/warm-start.md). A warm
/// resume that fails degrades to the cold retrain, never to a dropped
/// vehicle.
///
/// Threading contract: one writer (Register/Append/LoadHistory/
/// RefreshForecasts must be externally serialized), any number of
/// concurrent Snapshot() readers. Snapshots are immutable and published
/// atomically under an epoch counter, so a reader holds a consistent fleet
/// view while appends keep landing.

namespace nextmaint {
namespace serve {

/// Cached per-vehicle feature state, maintained incrementally in O(1) per
/// appended day by mirroring core::DeriveSeries' exact operation order
/// (same additions, same comparisons, same carry), so every value is
/// bit-identical to what a from-scratch derivation would produce for the
/// "virtual today" the forecast path uses.
struct VehicleServeState {
  /// Days of utilization ingested.
  uint64_t days_observed = 0;
  /// Running fleet-telemetry total: sum of all ingested seconds.
  double total_usage_s = 0.0;
  /// C_v(today): days since the cycle-opening maintenance, for the day
  /// after the last observation.
  double days_since_maintenance = 0.0;
  /// L_v(today): utilization seconds left until the next maintenance is
  /// due, for the day after the last observation.
  double usage_seconds_left = 0.0;
  /// Completed maintenance cycles so far.
  uint64_t completed_cycles = 0;
  /// True when the vehicle has changes not yet covered by a refresh.
  bool dirty = true;
  /// True when the last refresh produced a forecast for this vehicle.
  bool has_forecast = false;
  /// Epoch of the refresh that last recomputed this vehicle (0 = never).
  uint64_t last_refresh_epoch = 0;
};

/// Immutable point-in-time view of the fleet, published by
/// RefreshForecasts. Readers keep the shared_ptr for as long as they need
/// a consistent view; later refreshes publish new snapshots and never
/// mutate old ones.
struct FleetSnapshot {
  /// Refresh generation: 0 before the first refresh, +1 per refresh.
  uint64_t epoch = 0;
  /// Vehicles registered when the snapshot was published.
  size_t vehicles = 0;
  /// Forecasts sorted by predicted date (most urgent first) — the same
  /// content and order FleetForecast would return.
  std::vector<core::MaintenanceForecast> forecasts;
  /// Ids registered when the snapshot was published, sorted. Vehicles
  /// registered after this epoch are invisible until the next refresh.
  std::vector<std::string> vehicle_ids;
  /// Position in `forecasts` by vehicle id (subset of `vehicle_ids`:
  /// degraded-forecast vehicles have no entry).
  std::map<std::string, size_t> forecast_index;
  /// Vehicles currently served degraded (train entries in vehicle-id
  /// order, then forecast entries in vehicle-id order), reflecting the
  /// cached state of the whole fleet — not just the last refresh.
  core::DegradationReport degradations;

  /// True when `id` was registered at publish time. O(log n).
  bool IsRegistered(const std::string& id) const;
  /// The published forecast for `id`, or nullptr when it has none
  /// (unregistered, never refreshed, or served degraded). O(log n).
  const core::MaintenanceForecast* FindForecast(const std::string& id) const;
};

/// Bookkeeping of one RefreshForecasts call.
struct RefreshStats {
  /// Epoch this refresh published.
  uint64_t epoch = 0;
  /// Vehicles dirty at entry (before corpus invalidation fan-out).
  size_t dirty_on_entry = 0;
  /// Vehicles retrained and re-forecast by this refresh.
  size_t refreshed = 0;
  /// Vehicles whose cached model and forecast were reused untouched.
  size_t reused = 0;
  /// True when a dirty vehicle's corpus contribution changed and the
  /// shared cold-start inputs (corpus + Model_Uni) were rebuilt.
  bool corpus_rebuilt = false;
  /// Vehicles refreshed by a warm-start resume instead of a cold retrain
  /// (subset of `refreshed`; always 0 without SchedulerOptions::warm_start).
  size_t warm_started = 0;
};

/// Incremental serving engine over a FleetScheduler.
class ServingEngine {
 public:
  explicit ServingEngine(core::SchedulerOptions options);

  /// Registers a vehicle whose data starts on `first_day`.
  /// AlreadyExists on duplicates. The vehicle starts dirty.
  [[nodiscard]] Status Register(const std::string& id, Date first_day);

  /// Appends one day of utilization and marks only this vehicle dirty.
  /// O(1): the cached feature state advances incrementally; nothing is
  /// retrained until the next RefreshForecasts. Same validation and error
  /// codes as FleetScheduler::IngestUsage; on error the cached state is
  /// untouched and the vehicle's dirtiness is unchanged.
  [[nodiscard]] Status Append(const std::string& id, Date day, double seconds);

  /// Bulk-loads a gap-free history, replacing any prior data (the
  /// warm-start path). O(series); marks the vehicle dirty.
  [[nodiscard]] Status LoadHistory(const std::string& id,
                                   const data::DailySeries& series);

  /// Retrains and re-forecasts exactly the dirty vehicles, publishes a new
  /// FleetSnapshot and bumps the epoch. When a dirty vehicle's first-cycle
  /// corpus contribution changed, the shared cold-start inputs are rebuilt
  /// first and every cold-start (non-old) vehicle is dirtied too — the
  /// price of staying bit-identical to a batch run. FailedPrecondition on
  /// an empty fleet (mirroring FleetForecast); strict mode aborts on the
  /// first per-vehicle error, otherwise failing vehicles are quarantined
  /// behind BL fallbacks exactly as the batch facade would.
  [[nodiscard]] Result<RefreshStats> RefreshForecasts();

  /// The current published snapshot. Never null; epoch 0 with no
  /// forecasts before the first refresh. Thread-safe against the writer.
  std::shared_ptr<const FleetSnapshot> Snapshot() const
      EXCLUDES(snapshot_mu_);

  /// Batch read: per-vehicle forecasts for `ids`, in request order.
  ///
  /// **Epoch-consistency guarantee:** all results come from ONE snapshot
  /// acquisition — every returned forecast (and every error) reflects the
  /// same epoch, even while a concurrent refresh publishes a newer one.
  /// This is the daemon's read path: one call instead of N Snapshot()
  /// lookups. Per-id errors: NotFound when the id was not registered at
  /// publish time, FailedPrecondition when it was registered but has no
  /// published forecast (pre-first-refresh or served degraded).
  /// Thread-safe against the writer, like Snapshot().
  [[nodiscard]] std::vector<Result<core::MaintenanceForecast>> GetForecasts(
      std::span<const std::string> ids) const;

  /// Cached feature state of one vehicle (NotFound when unregistered).
  /// O(1) — no series walk.
  [[nodiscard]] Result<VehicleServeState> CachedState(const std::string& id) const;

  /// Vehicles with changes not yet covered by a refresh. O(1): tracked
  /// incrementally so the daemon can publish it per write.
  size_t DirtyCount() const;

  /// Stats of the most recent refresh (all zeros before the first).
  const RefreshStats& LastRefreshStats() const { return last_stats_; }

  /// Registered ids, sorted.
  std::vector<std::string> VehicleIds() const { return scheduler_.VehicleIds(); }

  /// Current refresh generation.
  uint64_t epoch() const { return epoch_; }

  /// Persists the fleet's trained models as a segmented checkpoint
  /// (delegate; see FleetScheduler::SaveCheckpoint). Writer-side: follows
  /// the single-writer contract like Append/RefreshForecasts.
  [[nodiscard]] Status SaveCheckpoint(const std::string& path) const {
    return scheduler_.SaveCheckpoint(path);
  }

  /// Persists exactly one vehicle into an existing segmented checkpoint
  /// without rewriting the rest of the fleet (delegate; see
  /// FleetScheduler::SaveVehicleCheckpoint).
  [[nodiscard]] Status SaveVehicleCheckpoint(const std::string& path,
                                             const std::string& id) const {
    return scheduler_.SaveVehicleCheckpoint(path, id);
  }

  /// Read access to the underlying batch facade (drift checks,
  /// per-vehicle queries). The engine owns training and ingestion;
  /// mutating the scheduler behind the engine's back voids the
  /// bit-identity guarantee.
  const core::FleetScheduler& scheduler() const { return scheduler_; }

 private:
  /// Internal per-vehicle cache: the public VehicleServeState plus the
  /// raw DeriveSeries mirror variables and the cached training inputs and
  /// outputs.
  struct CacheEntry {
    // DeriveSeries mirror (exact FP-op order; see AdvanceCachedState).
    uint64_t days = 0;
    uint64_t cycle_start = 0;
    uint64_t completed_cycles = 0;
    double cycle_usage = 0.0;
    double total_usage = 0.0;
    // Cached category (refreshed alongside the model).
    core::VehicleCategory category = core::VehicleCategory::kNew;
    // Cached corpus contribution, used to detect corpus changes without
    // comparing datasets: a contribution is append-invariant once present,
    // so only present/absent transitions (and bulk history replacement)
    // can change the corpus.
    bool has_contribution = false;
    std::optional<core::FirstCycleData> contribution;
    /// Set by LoadHistory: the cached contribution may describe replaced
    /// data, so the next refresh must treat it as changed.
    bool contribution_stale = false;
    /// True when the vehicle's cached model can be warm-start resumed: the
    /// last refresh trained it clean (no quarantine) onto a per-vehicle
    /// ensemble model, and its history has only grown since (LoadHistory
    /// replaces the history and clears this).
    bool warm_capable = false;
    // Cached outputs of the last refresh that touched this vehicle.
    std::optional<core::MaintenanceForecast> forecast;
    std::optional<core::VehicleDegradation> train_degradation;
    std::optional<core::VehicleDegradation> forecast_degradation;
    uint64_t last_refresh_epoch = 0;
    bool dirty = true;
  };

  /// Advances the DeriveSeries mirror by one ingested day.
  static void AdvanceCachedState(CacheEntry& entry, double seconds,
                                 double maintenance_interval_s);

  /// Rebuilds a mirror from scratch after LoadHistory.
  static void RecomputeCachedState(CacheEntry& entry,
                                   const data::DailySeries& series,
                                   double maintenance_interval_s);

  /// Flags one entry dirty, keeping the incremental dirty count exact.
  void MarkDirty(CacheEntry& entry);

  /// Assembles and publishes the snapshot for the current cache contents.
  void PublishSnapshot() EXCLUDES(snapshot_mu_);

  core::SchedulerOptions options_;
  core::FleetScheduler scheduler_;
  std::map<std::string, CacheEntry> entries_;
  /// Cached shared cold-start inputs (corpus in vehicle-id order +
  /// Model_Uni), rebuilt only when a contribution changes.
  core::ColdStartInputs cold_start_inputs_;
  /// Count of entries with dirty == true (kept exact by MarkDirty /
  /// RefreshForecasts so DirtyCount() is O(1) on the daemon's write path).
  size_t dirty_count_ = 0;
  uint64_t epoch_ = 0;
  RefreshStats last_stats_;
  /// The only lock in the engine: everything else follows the single-writer
  /// contract (see the file comment) and is touched by the writer alone.
  mutable Mutex snapshot_mu_;
  std::shared_ptr<const FleetSnapshot> snapshot_ GUARDED_BY(snapshot_mu_);
};

}  // namespace serve
}  // namespace nextmaint

#endif  // NEXTMAINT_SERVE_SERVING_ENGINE_H_
