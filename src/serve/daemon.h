#ifndef NEXTMAINT_SERVE_DAEMON_H_
#define NEXTMAINT_SERVE_DAEMON_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/scheduler.h"
#include "serve/protocol.h"
#include "serve/serving_engine.h"

/// \file daemon.h
/// The sharded fleet-serving daemon: a long-running front-end over N
/// ServingEngine instances.
///
/// PR 5's ServingEngine is a single-writer library; the ROADMAP wants
/// traffic. The FleetDaemon provides the front door:
///
///   - **Sharding.** Vehicles are partitioned across `shards` engines by
///     `protocol::StableVehicleHash(id) % shards` — stable across runs and
///     platforms, so clients can predict placement. Each shard owns one
///     engine, one bounded FIFO queue and one worker thread, preserving
///     the engine's one-writer contract per shard while writes to
///     different shards proceed in parallel.
///   - **Batching.** The worker drains its whole queue in one swap and
///     applies the batch before any refresh, so a burst of appends costs
///     one dirty-tracked refresh, not N. `batch_window` additionally
///     auto-refreshes a shard once that many appends have accumulated
///     since its last refresh (0 = refresh only on explicit Refresh
///     barriers).
///   - **Backpressure.** A full shard queue rejects the write *immediately*
///     with OverloadedResponse — nothing is enqueued, nothing blocks, and
///     the client decides whether to back off or drop. Reads are never
///     subject to admission control.
///   - **Lock-free reads.** GetForecast and Stats are answered on the
///     calling thread from each shard's epoch-counted immutable
///     FleetSnapshot (and relaxed atomics) — they never wait behind
///     training.
///
/// Determinism: per-vehicle event order is preserved (one queue per shard,
/// FIFO), refresh barriers run the engine's deterministic refresh under a
/// per-shard `failpoints::ScopedOrdinal`, and the engines themselves are
/// bit-identical to batch by construction. Consequence (locked in by
/// tests/serve/daemon_test.cc): a daemon-served fleet's forecasts are
/// byte-identical to one batch FleetScheduler fed the same event stream —
/// exactly at 1 shard, and at any shard count for fleets where every
/// vehicle trains on its own history (old vehicles). With >1 shard a
/// cold-start vehicle sees only its shard's corpus; docs/serving.md
/// spells out the trade.
///
/// Failpoints: `serve.daemon.accept`, `serve.daemon.decode`,
/// `serve.daemon.enqueue`, `serve.daemon.refresh` cover the frame path
/// end to end; the chaos sweep drives them through HandleFrame.

namespace nextmaint {

namespace telemetry {
class Histogram;
}  // namespace telemetry

namespace serve {

/// Configuration of a FleetDaemon.
struct DaemonOptions {
  /// Scheduler/engine options shared by every shard.
  core::SchedulerOptions scheduler;
  /// Number of ServingEngine shards (>= 1).
  int shards = 1;
  /// Admission-control bound on each shard's pending write queue.
  size_t max_queue = 1024;
  /// Auto-refresh a shard after this many applied appends since its last
  /// refresh; 0 refreshes only on explicit Refresh barriers.
  uint64_t batch_window = 0;
};

/// Long-running sharded serving daemon. Thread-safe: Execute/SubmitAsync/
/// HandleFrame may be called from any number of transport threads.
class FleetDaemon {
 public:
  explicit FleetDaemon(DaemonOptions options);
  ~FleetDaemon();

  FleetDaemon(const FleetDaemon&) = delete;
  FleetDaemon& operator=(const FleetDaemon&) = delete;

  /// Spawns the shard workers. Writes submitted before Start() are queued
  /// (and count against max_queue) but not applied. InvalidArgument on
  /// bad options; FailedPrecondition when already started.
  [[nodiscard]] Status Start();

  /// Drains every shard queue, applies pending writes and joins the
  /// workers. Idempotent; called by the destructor.
  void Stop();

  /// Executes one request synchronously (enqueue + wait for the shard
  /// worker where the request is a write).
  protocol::Response Execute(const protocol::Request& request);

  /// Submits one request; the future resolves when the shard worker has
  /// applied it (writes) or immediately (reads, admission rejections).
  std::future<protocol::Response> SubmitAsync(protocol::Request request);

  /// Transport entry point: decodes one request payload (bytes after the
  /// length prefix), executes it and returns the complete encoded
  /// response frame. Malformed payloads produce an ErrorResponse frame —
  /// never a crash, never a dropped connection.
  std::vector<uint8_t> HandleFrame(std::span<const uint8_t> payload);

  /// True once a Shutdown request has been accepted. The daemon keeps
  /// serving (so the shutdown response can be written back); the
  /// transport is expected to observe the flag and wind down.
  bool ShutdownRequested() const;

  /// Daemon-wide and per-shard statistics (same data a StatsRequest
  /// returns).
  protocol::StatsResponse Stats() const;

  /// The shard a vehicle id maps to.
  uint64_t ShardOf(std::string_view id) const;

  int shards() const { return options_.shards; }
  const DaemonOptions& options() const { return options_; }

  /// Read access to one shard's engine (tests; the daemon owns writes).
  const ServingEngine& engine(size_t shard) const;

 private:
  /// One pending write operation in a shard queue.
  struct PendingOp;
  /// Completion state shared by the per-shard legs of one Refresh barrier.
  struct RefreshBarrier;
  /// One shard: engine + queue + worker.
  struct Shard;

  /// Worker body for shard `index`.
  void ShardLoop(size_t index);
  /// Applies one queued write on the shard worker.
  void ApplyOp(Shard& shard, PendingOp& op);
  /// Runs one refresh leg on the shard worker and completes the barrier
  /// when this shard is the last one in.
  void ApplyRefresh(Shard& shard, PendingOp& op);
  /// Refreshes one shard (worker thread). Returns the engine's stats;
  /// empty-fleet shards refresh to "nothing" successfully.
  [[nodiscard]] Result<RefreshStats> RefreshShard(Shard& shard);
  /// Registers `id` on the shard's engine if this daemon has not seen it
  /// (the auto-registration path for Append/LoadHistory).
  [[nodiscard]] Status EnsureRegistered(Shard& shard, const std::string& id,
                                        Date first_day);
  [[nodiscard]] Status ApplyAppend(Shard& shard,
                                   const protocol::AppendRequest& append);
  [[nodiscard]] Status ApplyLoadHistory(
      Shard& shard, const protocol::LoadHistoryRequest& load);

  /// Admission control + enqueue for a write op targeting `shard`.
  std::future<protocol::Response> EnqueueWrite(size_t shard_index,
                                               PendingOp op);
  /// Evaluates the enqueue-time failpoint (a separate function so the
  /// NEXTMAINT_FAILPOINT macro has a Status-returning scope to return
  /// from).
  [[nodiscard]] Status CheckEnqueue();
  /// Completes one pending op (or barrier leg) with an error.
  void FailPendingOp(Shard& shard, PendingOp& op, const Status& status);
  /// Resolves a finished barrier into its merged response.
  void CompleteBarrier(RefreshBarrier& barrier);
  /// Evaluates the accept/decode failpoints, then decodes the payload.
  [[nodiscard]] Result<protocol::Request> DecodeFramePayload(
      std::span<const uint8_t> payload);

  /// Read paths, answered on the calling thread.
  protocol::Response ReadForecasts(const protocol::GetForecastRequest& request);

  DaemonOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> shutdown_requested_{false};
  // Daemon-wide counters mirrored into telemetry (atomics so Stats() is
  // readable from any thread without locking the shards).
  std::atomic<uint64_t> frames_{0};
  std::atomic<uint64_t> decode_errors_{0};
  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> total_appends_{0};
  std::atomic<uint64_t> total_load_history_{0};
  std::atomic<uint64_t> total_overloaded_{0};
  // Cached SLO instruments (registry pointers never dangle).
  telemetry::Histogram* append_latency_ = nullptr;
  telemetry::Histogram* read_latency_ = nullptr;
};

}  // namespace serve
}  // namespace nextmaint

#endif  // NEXTMAINT_SERVE_DAEMON_H_
