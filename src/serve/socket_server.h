#ifndef NEXTMAINT_SERVE_SOCKET_SERVER_H_
#define NEXTMAINT_SERVE_SOCKET_SERVER_H_

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "serve/daemon.h"

/// \file socket_server.h
/// Socket transport for the fleet daemon: accepts connections on a
/// unix-domain socket or loopback TCP port and pumps length-prefixed
/// protocol frames (serve/protocol.h) through FleetDaemon::HandleFrame.
///
/// The transport is deliberately thin — one accept loop, one thread per
/// connection, a FrameAssembler per peer — because all protocol decisions
/// (decoding, admission control, error mapping) live in the daemon. A
/// malformed frame gets an ErrorResponse back on the same connection; a
/// poisoned byte stream (corrupt length prefix) closes only that
/// connection. When the daemon acknowledges a Shutdown request the server
/// wakes every Wait()er and stops accepting; Wait() performs the actual
/// teardown (join threads, close sockets, unlink the unix path).

namespace nextmaint {
namespace serve {

/// Where to listen. Exactly one of `unix_path` / `tcp_port` must be set.
struct SocketServerOptions {
  /// Unix-domain socket path; created on Start, unlinked on teardown.
  std::string unix_path;
  /// TCP port on 127.0.0.1; 0 picks an ephemeral port (see port()).
  /// -1 = unset.
  int tcp_port = -1;
};

/// Blocking socket front-end over a started FleetDaemon.
class SocketServer {
 public:
  /// `daemon` must outlive the server and already be Start()ed.
  SocketServer(FleetDaemon* daemon, SocketServerOptions options);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds, listens and spawns the accept loop. Returns with the endpoint
  /// ready to accept connections. InvalidArgument on bad options, IOError
  /// on socket failures.
  [[nodiscard]] Status Start();

  /// Blocks until the daemon acknowledges a Shutdown frame (or Stop() is
  /// called), then tears the transport down. The natural main-thread call
  /// after Start().
  void Wait() EXCLUDES(mu_);

  /// Asynchronously requests shutdown and tears down (idempotent).
  void Stop() EXCLUDES(mu_);

  /// The bound TCP port after Start() (useful with tcp_port = 0);
  /// -1 for unix-domain servers.
  int port() const { return bound_port_; }

  /// Human-readable endpoint ("unix:<path>" or "tcp:127.0.0.1:<port>").
  std::string endpoint() const;

 private:
  struct Connection {
    explicit Connection(int fd_in) : fd(fd_in) {}
    /// Guards fd against concurrent shutdown/close. Lock order: taken
    /// after SocketServer::mu_ (Signal holds both); never the reverse.
    Mutex mu;
    int fd GUARDED_BY(mu) = -1;
    std::thread thread;
  };

  void AcceptLoop() EXCLUDES(mu_);
  void ServeConnection(Connection* connection) EXCLUDES(mu_);
  /// Flags the server as stopping and unblocks accept/read calls.
  void Signal() EXCLUDES(mu_);
  /// Joins threads and closes sockets; safe to call more than once.
  void Teardown() EXCLUDES(mu_);

  FleetDaemon* daemon_;
  SocketServerOptions options_;
  int listen_fd_ = -1;
  int bound_port_ = -1;
  std::thread accept_thread_;
  mutable Mutex mu_;
  CondVar stopped_cv_;
  bool stopping_ GUARDED_BY(mu_) = false;
  bool torn_down_ GUARDED_BY(mu_) = false;
  std::vector<std::unique_ptr<Connection>> connections_ GUARDED_BY(mu_);
};

}  // namespace serve
}  // namespace nextmaint

#endif  // NEXTMAINT_SERVE_SOCKET_SERVER_H_
