#include "serve/serving_engine.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/failpoints.h"
#include "common/logging.h"
#include "common/macros.h"
#include "common/parallel.h"
#include "common/telemetry.h"

namespace nextmaint {
namespace serve {

ServingEngine::ServingEngine(core::SchedulerOptions options)
    : options_(options), scheduler_(std::move(options)) {
  snapshot_ = std::make_shared<FleetSnapshot>();
}

Status ServingEngine::Register(const std::string& id, Date first_day) {
  NM_RETURN_NOT_OK(scheduler_.RegisterVehicle(id, first_day));
  entries_.emplace(id, CacheEntry{});
  ++dirty_count_;  // new entries start dirty
  return Status::OK();
}

void ServingEngine::MarkDirty(CacheEntry& entry) {
  if (!entry.dirty) {
    entry.dirty = true;
    ++dirty_count_;
  }
}

void ServingEngine::AdvanceCachedState(CacheEntry& entry, double seconds,
                                       double maintenance_interval_s) {
  // One-day mirror of core::DeriveSeries' loop body (series.cc): same
  // addition, same >= comparison, same single-subtraction carry, so the
  // cached cycle state is bit-identical to a from-scratch derivation over
  // the full history.
  entry.cycle_usage += seconds;
  if (entry.cycle_usage >= maintenance_interval_s) {
    ++entry.completed_cycles;
    entry.cycle_usage -= maintenance_interval_s;  // excess carries over
    entry.cycle_start = entry.days + 1;
  }
  ++entry.days;
  entry.total_usage += seconds;
}

void ServingEngine::RecomputeCachedState(CacheEntry& entry,
                                         const data::DailySeries& series,
                                         double maintenance_interval_s) {
  entry.days = 0;
  entry.cycle_start = 0;
  entry.completed_cycles = 0;
  entry.cycle_usage = 0.0;
  entry.total_usage = 0.0;
  for (const double seconds : series.values()) {
    AdvanceCachedState(entry, seconds, maintenance_interval_s);
  }
}

Status ServingEngine::Append(const std::string& id, Date day,
                             double seconds) {
  NEXTMAINT_FAILPOINT("serve.append");
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    return Status::NotFound("vehicle '" + id + "' is not registered");
  }
  // The scheduler validates (in-order day, utilization range) and stores;
  // the cache advances only after it accepts, so a rejected append leaves
  // both sides untouched and the vehicle's dirtiness unchanged.
  NM_RETURN_NOT_OK(scheduler_.IngestUsage(id, day, seconds));
  AdvanceCachedState(it->second, seconds, options_.maintenance_interval_s);
  MarkDirty(it->second);
  telemetry::Count("serve.append.days");
  return Status::OK();
}

Status ServingEngine::LoadHistory(const std::string& id,
                                  const data::DailySeries& series) {
  NEXTMAINT_FAILPOINT("serve.append");
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    return Status::NotFound("vehicle '" + id + "' is not registered");
  }
  NM_RETURN_NOT_OK(scheduler_.IngestSeries(id, series));
  RecomputeCachedState(it->second, series, options_.maintenance_interval_s);
  MarkDirty(it->second);
  // The cached corpus contribution may describe the replaced history; the
  // next refresh must re-extract and treat it as changed. A replaced
  // history also voids warm-start eligibility — the cached model was
  // trained on data that no longer exists.
  it->second.contribution_stale = true;
  it->second.warm_capable = false;
  telemetry::Count("serve.load_history");
  return Status::OK();
}

Result<RefreshStats> ServingEngine::RefreshForecasts() {
  NEXTMAINT_FAILPOINT("serve.refresh");
  if (options_.num_threads < 0) {
    return Status::InvalidArgument(
        "SchedulerOptions::num_threads must be >= 0 (0 = all cores), got " +
        std::to_string(options_.num_threads));
  }
  if (entries_.empty()) {
    return Status::FailedPrecondition(
        "refresh on an empty fleet: no vehicles registered");
  }
  telemetry::TraceSpan refresh_span("serve.refresh");
  telemetry::ScopedTimer refresh_timer("serve.refresh.seconds");

  RefreshStats stats;
  for (const auto& [id, entry] : entries_) {
    if (entry.dirty) ++stats.dirty_on_entry;
  }
  telemetry::SetGauge("serve.dirty_vehicles",
                      static_cast<double>(stats.dirty_on_entry));

  // Phase 1 (serial, O(dirty)): refresh each dirty vehicle's category and
  // first-cycle corpus contribution. A contribution is append-invariant
  // once present, so the corpus changes only on a present/absent
  // transition or after a bulk history replacement.
  bool corpus_changed = epoch_ == 0;  // first refresh builds everything
  for (auto& [id, entry] : entries_) {
    if (!entry.dirty) continue;
    Result<std::optional<core::FirstCycleData>> contribution =
        scheduler_.CorpusContribution(id);
    std::optional<core::FirstCycleData> value;
    if (contribution.ok()) {
      value = std::move(contribution).ValueOrDie();
    } else if (options_.strict) {
      return contribution.status().WithContext(id);
    }
    // (Non-strict categorization errors contribute nothing, exactly like
    // TrainAll's corpus pass; the training phase quarantines the vehicle.)
    const bool has = value.has_value();
    if (has != entry.has_contribution ||
        ((has || entry.has_contribution) && entry.contribution_stale)) {
      corpus_changed = true;
    }
    entry.has_contribution = has;
    entry.contribution = std::move(value);
    entry.contribution_stale = false;
    Result<core::VehicleCategory> category = scheduler_.CategoryOf(id);
    if (category.ok()) entry.category = category.ValueOrDie();
  }

  // Phase 2: rebuild the shared cold-start inputs when the corpus changed,
  // and dirty every cold-start consumer — semi-new vehicles train Model_Sim
  // against the corpus, new vehicles serve Model_Uni, so a corpus change
  // invalidates them all (old vehicles consume neither and stay clean).
  if (corpus_changed) {
    stats.corpus_rebuilt = true;
    telemetry::Count("serve.refresh.corpus_rebuilds");
    cold_start_inputs_.corpus.clear();
    for (const auto& [id, entry] : entries_) {
      if (entry.contribution.has_value()) {
        cold_start_inputs_.corpus.push_back(*entry.contribution);
      }
    }
    cold_start_inputs_.unified =
        scheduler_.TrainUnifiedFromCorpus(cold_start_inputs_.corpus);
    for (auto& [id, entry] : entries_) {
      if (entry.category != core::VehicleCategory::kOld) MarkDirty(entry);
    }
  }

  // Phase 2.5 (serial, opt-in): warm-start pass. Each dirty vehicle whose
  // cached ensemble model is resumable gets a WarmStartVehicle resume
  // instead of a cold retrain; everyone else falls through to phase 3.
  // The failpoint fires once per dirty vehicle (before the eligibility
  // check, so nth-selection is stable regardless of model winners); any
  // warm failure — injected or real — degrades to the cold retrain, even
  // in strict mode: the cold path IS the exact behavior, so escalating an
  // optimization failure into a fleet abort would serve no one.
  std::set<std::string> warm_ids;
  if (options_.warm_start) {
    uint64_t warm_ordinal = 0;
    for (auto& [id, entry] : entries_) {
      if (!entry.dirty) continue;
      failpoints::ScopedOrdinal ordinal(++warm_ordinal);
      const CacheEntry& e = entry;
      const std::string& vehicle_id = id;
      const Result<bool> warmed = [&]() -> Result<bool> {
        NEXTMAINT_FAILPOINT("serve.refresh.warm");
        if (!e.warm_capable || e.category != core::VehicleCategory::kOld) {
          return false;
        }
        return scheduler_.WarmStartVehicle(vehicle_id,
                                           options_.warm_start_rounds);
      }();
      if (!warmed.ok()) {
        NM_LOG(Warning) << vehicle_id << ": warm-start degraded to cold "
                        << "retrain (" << warmed.status().ToString() << ")";
        telemetry::Count("serve.refresh.warm_fallbacks");
        continue;
      }
      if (warmed.ValueOrDie()) warm_ids.insert(vehicle_id);
    }
    stats.warm_started = warm_ids.size();
  }

  // Phase 3: retrain the dirty vehicles that were not warm-resumed against
  // the shared inputs (TrainVehicles fans out over the thread pool and
  // quarantines failures behind BL fallbacks, the same code path TrainAll
  // runs).
  std::vector<std::string> dirty_ids;
  std::vector<std::string> cold_ids;
  for (const auto& [id, entry] : entries_) {
    if (!entry.dirty) continue;
    dirty_ids.push_back(id);
    if (warm_ids.find(id) == warm_ids.end()) cold_ids.push_back(id);
  }
  NM_RETURN_NOT_OK(scheduler_.TrainVehicles(cold_ids, cold_start_inputs_));
  for (const std::string& id : dirty_ids) {
    entries_.at(id).train_degradation.reset();
  }
  for (const core::VehicleDegradation& degradation :
       scheduler_.LastDegradationReport().vehicles) {
    if (degradation.stage != "train") continue;
    auto it = entries_.find(degradation.vehicle_id);
    if (it != entries_.end()) it->second.train_degradation = degradation;
  }

  // Phase 4: re-forecast the dirty vehicles, mirroring FleetForecast:
  // unmodeled vehicles are excluded, failures quarantine behind the BL
  // fallback (strict aborts), and results land in index-ordered slots.
  std::vector<std::optional<core::MaintenanceForecast>> slots(
      dirty_ids.size());
  std::vector<std::optional<core::VehicleDegradation>> quarantined(
      dirty_ids.size());
  NM_RETURN_NOT_OK(ParallelFor(
      0, dirty_ids.size(), /*grain=*/1,
      [&](size_t chunk_begin, size_t chunk_end) -> Status {
        for (size_t v = chunk_begin; v < chunk_end; ++v) {
          const std::string& id = dirty_ids[v];
          failpoints::ScopedOrdinal ordinal(static_cast<uint64_t>(v) + 1);
          NM_ASSIGN_OR_RETURN(const bool has_model,
                              scheduler_.HasTrainedModel(id));
          if (!has_model) continue;  // FleetForecast excludes these too
          Result<core::MaintenanceForecast> forecast = scheduler_.Forecast(id);
          if (forecast.ok()) {
            telemetry::Count("serve.refresh.forecasts");
            slots[v] = std::move(forecast).ValueOrDie();
            continue;
          }
          if (options_.strict) return forecast.status().WithContext(id);
          core::VehicleDegradation degradation;
          degradation.vehicle_id = id;
          degradation.stage = "forecast";
          degradation.error = forecast.status();
          Result<core::MaintenanceForecast> fallback =
              scheduler_.FallbackForecast(id);
          if (fallback.ok()) {
            degradation.fallback = true;
            telemetry::Count("serve.refresh.fallback_forecasts");
            slots[v] = std::move(fallback).ValueOrDie();
          } else {
            telemetry::Count("serve.refresh.forecasts_skipped");
          }
          quarantined[v] = std::move(degradation);
        }
        return Status::OK();
      },
      options_.num_threads));

  // Phase 5 (serial): commit the refreshed vehicles and publish.
  ++epoch_;
  for (size_t v = 0; v < dirty_ids.size(); ++v) {
    CacheEntry& entry = entries_.at(dirty_ids[v]);
    entry.forecast = std::move(slots[v]);
    entry.forecast_degradation = std::move(quarantined[v]);
    if (entry.forecast_degradation.has_value()) {
      const core::VehicleDegradation& degradation =
          *entry.forecast_degradation;
      NM_LOG(Warning) << degradation.vehicle_id << ": forecast degraded ("
                      << degradation.error.ToString() << "); "
                      << (degradation.fallback ? "serving BL fallback"
                                               : "skipped");
    }
    // Warm-start eligibility for the NEXT refresh: this refresh left the
    // vehicle with a cleanly trained per-vehicle ensemble model (the
    // forecast's model name is the scheduler's model_name for the vehicle;
    // shared cold-start models report decorated names like "XGB_Uni").
    entry.warm_capable =
        entry.forecast.has_value() &&
        !entry.train_degradation.has_value() &&
        !entry.forecast_degradation.has_value() &&
        (entry.forecast->model_name == "RF" ||
         entry.forecast->model_name == "XGB");
    entry.dirty = false;
    entry.last_refresh_epoch = epoch_;
  }
  // dirty_ids held every dirty entry, and each just went clean.
  dirty_count_ -= dirty_ids.size();
  stats.refreshed = dirty_ids.size();
  stats.reused = entries_.size() - dirty_ids.size();
  stats.epoch = epoch_;
  last_stats_ = stats;
  PublishSnapshot();

  telemetry::Count("serve.refresh.count");
  telemetry::Count("serve.refresh.vehicles_refreshed", stats.refreshed);
  telemetry::Count("serve.refresh.vehicles_reused", stats.reused);
  telemetry::Count("serve.refresh.warm_refreshes", stats.warm_started);
  telemetry::SetGauge("serve.epoch", static_cast<double>(epoch_));
  telemetry::SetGauge("serve.dirty_vehicles", 0.0);
  return stats;
}

void ServingEngine::PublishSnapshot() {
  auto snapshot = std::make_shared<FleetSnapshot>();
  snapshot->epoch = epoch_;
  snapshot->vehicles = entries_.size();
  // entries_ is an ordered map, so this comes out sorted for the
  // binary-search in FleetSnapshot::IsRegistered.
  snapshot->vehicle_ids.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) {
    snapshot->vehicle_ids.push_back(id);
  }
  // Forecasts assemble in vehicle-id order and sort with FleetForecast's
  // comparator, so the published order is exactly the batch order.
  for (const auto& [id, entry] : entries_) {
    if (entry.forecast.has_value()) {
      snapshot->forecasts.push_back(*entry.forecast);
    }
  }
  std::sort(snapshot->forecasts.begin(), snapshot->forecasts.end(),
            [](const core::MaintenanceForecast& a,
               const core::MaintenanceForecast& b) {
              return a.predicted_date < b.predicted_date;
            });
  for (size_t i = 0; i < snapshot->forecasts.size(); ++i) {
    snapshot->forecast_index.emplace(snapshot->forecasts[i].vehicle_id, i);
  }
  for (const auto& [id, entry] : entries_) {
    if (entry.train_degradation.has_value()) {
      snapshot->degradations.vehicles.push_back(*entry.train_degradation);
    }
  }
  for (const auto& [id, entry] : entries_) {
    if (entry.forecast_degradation.has_value()) {
      snapshot->degradations.vehicles.push_back(*entry.forecast_degradation);
    }
  }
  MutexLock lock(snapshot_mu_);
  snapshot_ = std::move(snapshot);
}

bool FleetSnapshot::IsRegistered(const std::string& id) const {
  return std::binary_search(vehicle_ids.begin(), vehicle_ids.end(), id);
}

const core::MaintenanceForecast* FleetSnapshot::FindForecast(
    const std::string& id) const {
  auto it = forecast_index.find(id);
  if (it == forecast_index.end()) return nullptr;
  return &forecasts[it->second];
}

std::shared_ptr<const FleetSnapshot> ServingEngine::Snapshot() const {
  telemetry::Count("serve.snapshot.reads");
  MutexLock lock(snapshot_mu_);
  return snapshot_;
}

std::vector<Result<core::MaintenanceForecast>> ServingEngine::GetForecasts(
    std::span<const std::string> ids) const {
  // ONE snapshot acquisition: every result below reflects the same epoch
  // no matter how many refreshes publish while we iterate.
  std::shared_ptr<const FleetSnapshot> snapshot = Snapshot();
  std::vector<Result<core::MaintenanceForecast>> results;
  results.reserve(ids.size());
  for (const std::string& id : ids) {
    if (!snapshot->IsRegistered(id)) {
      results.push_back(Status::NotFound(
          "vehicle '" + id + "' is not in the published snapshot (epoch " +
          std::to_string(snapshot->epoch) + ")"));
    } else if (const core::MaintenanceForecast* forecast =
                   snapshot->FindForecast(id)) {
      results.push_back(*forecast);
    } else {
      results.push_back(Status::FailedPrecondition(
          "vehicle '" + id + "' has no published forecast (epoch " +
          std::to_string(snapshot->epoch) + ")"));
    }
  }
  return results;
}

Result<VehicleServeState> ServingEngine::CachedState(
    const std::string& id) const {
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    return Status::NotFound("vehicle '" + id + "' is not registered");
  }
  const CacheEntry& entry = it->second;
  VehicleServeState state;
  state.days_observed = entry.days;
  state.total_usage_s = entry.total_usage;
  // The same expressions DeriveSeries evaluates for the "virtual today"
  // (index `days`, the day after the last observation) the forecast path
  // appends: c = today - cycle_start, l = T - cycle_usage.
  state.days_since_maintenance =
      static_cast<double>(entry.days - entry.cycle_start);
  state.usage_seconds_left =
      options_.maintenance_interval_s - entry.cycle_usage;
  state.completed_cycles = entry.completed_cycles;
  state.dirty = entry.dirty;
  state.has_forecast = entry.forecast.has_value();
  state.last_refresh_epoch = entry.last_refresh_epoch;
  return state;
}

size_t ServingEngine::DirtyCount() const { return dirty_count_; }

}  // namespace serve
}  // namespace nextmaint
