#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/macros.h"

namespace nextmaint {
namespace serve {

DaemonClient::~DaemonClient() { Close(); }

void DaemonClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status DaemonClient::ConnectUnix(const std::string& path) {
  if (fd_ >= 0) return Status::FailedPrecondition("client already connected");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError("socket(AF_UNIX): " +
                           std::string(std::strerror(errno)));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status status =
        Status::IOError("connect(" + path + "): " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  fd_ = fd;
  return Status::OK();
}

Status DaemonClient::ConnectTcp(const std::string& host, int port) {
  if (fd_ >= 0) return Status::FailedPrecondition("client already connected");
  if (port <= 0 || port > 65535) {
    return Status::InvalidArgument("port out of range: " +
                                   std::to_string(port));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError("socket(AF_INET): " +
                           std::string(std::strerror(errno)));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status status = Status::IOError("connect(" + host + ":" +
                                          std::to_string(port) +
                                          "): " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  fd_ = fd;
  return Status::OK();
}

Status DaemonClient::SendFrame(const std::vector<uint8_t>& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return Status::IOError("send: " + std::string(std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<protocol::Response> DaemonClient::ReadResponse() {
  std::vector<uint8_t> buffer(64 << 10);
  for (;;) {
    NM_ASSIGN_OR_RETURN(std::optional<std::vector<uint8_t>> payload,
                        assembler_.Next());
    if (payload.has_value()) return protocol::DecodeResponse(*payload);
    const ssize_t n = ::recv(fd_, buffer.data(), buffer.size(), 0);
    if (n == 0) {
      return Status::IOError("connection closed while awaiting response");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("recv: " + std::string(std::strerror(errno)));
    }
    assembler_.Feed(
        std::span<const uint8_t>(buffer.data(), static_cast<size_t>(n)));
  }
}

Result<protocol::Response> DaemonClient::RoundTrip(
    const protocol::Request& request) {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  NM_RETURN_NOT_OK(SendFrame(protocol::EncodeRequest(request)));
  return ReadResponse();
}

Status DaemonClient::RoundTripForAck(const protocol::Request& request) {
  NM_ASSIGN_OR_RETURN(protocol::Response response, RoundTrip(request));
  if (std::holds_alternative<protocol::AckResponse>(response)) {
    return Status::OK();
  }
  if (const auto* error = std::get_if<protocol::ErrorResponse>(&response)) {
    return error->ToStatus();
  }
  if (const auto* overloaded =
          std::get_if<protocol::OverloadedResponse>(&response)) {
    return Status::FailedPrecondition(
        "shard " + std::to_string(overloaded->shard) +
        " overloaded (queue " + std::to_string(overloaded->queue_depth) +
        "/" + std::to_string(overloaded->max_queue) +
        "); back off and retry");
  }
  return Status::DataError("unexpected response type for write request");
}

Status DaemonClient::Append(const std::string& id, Date day, double seconds) {
  protocol::AppendRequest request;
  request.vehicle_id = id;
  request.day = day;
  request.seconds = seconds;
  return RoundTripForAck(request);
}

Status DaemonClient::LoadHistory(const std::string& id, Date start_day,
                                 std::vector<double> values) {
  protocol::LoadHistoryRequest request;
  request.vehicle_id = id;
  request.start_day = start_day;
  request.values = std::move(values);
  return RoundTripForAck(request);
}

Result<protocol::RefreshDoneResponse> DaemonClient::Refresh() {
  NM_ASSIGN_OR_RETURN(protocol::Response response,
                      RoundTrip(protocol::RefreshRequest{}));
  if (const auto* done = std::get_if<protocol::RefreshDoneResponse>(&response)) {
    return *done;
  }
  if (const auto* error = std::get_if<protocol::ErrorResponse>(&response)) {
    return error->ToStatus();
  }
  return Status::DataError("unexpected response type for Refresh");
}

Result<protocol::ForecastBatchResponse> DaemonClient::GetForecasts(
    std::vector<std::string> ids) {
  protocol::GetForecastRequest request;
  request.vehicle_ids = std::move(ids);
  NM_ASSIGN_OR_RETURN(protocol::Response response, RoundTrip(request));
  if (auto* batch = std::get_if<protocol::ForecastBatchResponse>(&response)) {
    return std::move(*batch);
  }
  if (const auto* error = std::get_if<protocol::ErrorResponse>(&response)) {
    return error->ToStatus();
  }
  return Status::DataError("unexpected response type for GetForecast");
}

Result<protocol::StatsResponse> DaemonClient::Stats() {
  NM_ASSIGN_OR_RETURN(protocol::Response response,
                      RoundTrip(protocol::StatsRequest{}));
  if (auto* stats = std::get_if<protocol::StatsResponse>(&response)) {
    return std::move(*stats);
  }
  if (const auto* error = std::get_if<protocol::ErrorResponse>(&response)) {
    return error->ToStatus();
  }
  return Status::DataError("unexpected response type for Stats");
}

Status DaemonClient::RequestShutdown() {
  return RoundTripForAck(protocol::ShutdownRequest{});
}

}  // namespace serve
}  // namespace nextmaint
