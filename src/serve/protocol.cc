#include "serve/protocol.h"

#include <bit>
#include <cstring>
#include <limits>
#include <utility>

#include "common/macros.h"

namespace nextmaint {
namespace serve {
namespace protocol {

namespace {

// ---------------------------------------------------------------------------
// Little-endian primitive writers. Encoding is infallible; size ceilings are
// enforced with NM_CHECK because exceeding them is a programmer error (the
// daemon validates inputs before they reach the wire).
// ---------------------------------------------------------------------------

void PutU8(std::vector<uint8_t>& out, uint8_t v) { out.push_back(v); }

void PutU16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<uint8_t>(v >> shift));
  }
}

void PutU64(std::vector<uint8_t>& out, uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<uint8_t>(v >> shift));
  }
}

void PutI64(std::vector<uint8_t>& out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutF64(std::vector<uint8_t>& out, double v) {
  PutU64(out, std::bit_cast<uint64_t>(v));
}

void PutDate(std::vector<uint8_t>& out, Date day) {
  PutI64(out, day.day_number());
}

void PutString(std::vector<uint8_t>& out, const std::string& s) {
  NM_CHECK_MSG(s.size() <= std::numeric_limits<uint16_t>::max(),
               "string too long for wire format");
  PutU16(out, static_cast<uint16_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

// ---------------------------------------------------------------------------
// Bounds-checked reader over one payload. Every read either fills the out
// parameter or returns InvalidArgument; the cursor never leaves the span.
// ---------------------------------------------------------------------------

class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> data) : data_(data) {}

  [[nodiscard]] Status ReadU8(uint8_t* out) {
    NM_RETURN_NOT_OK(Need(1));
    *out = data_[pos_++];
    return Status::OK();
  }

  [[nodiscard]] Status ReadU16(uint16_t* out) {
    NM_RETURN_NOT_OK(Need(2));
    *out = static_cast<uint16_t>(data_[pos_] |
                                 (static_cast<uint16_t>(data_[pos_ + 1]) << 8));
    pos_ += 2;
    return Status::OK();
  }

  [[nodiscard]] Status ReadU32(uint32_t* out) {
    NM_RETURN_NOT_OK(Need(4));
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    *out = v;
    return Status::OK();
  }

  [[nodiscard]] Status ReadU64(uint64_t* out) {
    NM_RETURN_NOT_OK(Need(8));
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    *out = v;
    return Status::OK();
  }

  [[nodiscard]] Status ReadI64(int64_t* out) {
    uint64_t raw = 0;
    NM_RETURN_NOT_OK(ReadU64(&raw));
    *out = static_cast<int64_t>(raw);
    return Status::OK();
  }

  [[nodiscard]] Status ReadF64(double* out) {
    uint64_t raw = 0;
    NM_RETURN_NOT_OK(ReadU64(&raw));
    *out = std::bit_cast<double>(raw);
    return Status::OK();
  }

  [[nodiscard]] Status ReadDate(Date* out) {
    int64_t day = 0;
    NM_RETURN_NOT_OK(ReadI64(&day));
    *out = Date::FromDayNumber(day);
    return Status::OK();
  }

  [[nodiscard]] Status ReadString(std::string* out, size_t max_bytes) {
    uint16_t len = 0;
    NM_RETURN_NOT_OK(ReadU16(&len));
    if (len > max_bytes) {
      return Status::InvalidArgument("string field exceeds wire limit (" +
                                     std::to_string(len) + " > " +
                                     std::to_string(max_bytes) + " bytes)");
    }
    NM_RETURN_NOT_OK(Need(len));
    out->assign(reinterpret_cast<const char*>(data_.data() + pos_), len);
    pos_ += len;
    return Status::OK();
  }

  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  [[nodiscard]] Status Need(size_t n) {
    if (data_.size() - pos_ < n) {
      return Status::InvalidArgument("truncated payload: need " +
                                     std::to_string(n) + " bytes at offset " +
                                     std::to_string(pos_) + ", have " +
                                     std::to_string(data_.size() - pos_));
    }
    return Status::OK();
  }

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

[[nodiscard]] Status ReadStatusCode(ByteReader& reader, StatusCode* out) {
  uint8_t raw = 0;
  NM_RETURN_NOT_OK(reader.ReadU8(&raw));
  if (raw > static_cast<uint8_t>(StatusCode::kDataLoss)) {
    return Status::InvalidArgument("unknown status code on wire: " +
                                   std::to_string(raw));
  }
  *out = static_cast<StatusCode>(raw);
  return Status::OK();
}

// Guards count-prefixed repetitions against a corrupt count provoking a
// giant allocation: with `min_bytes_each` wire bytes per element, a count
// that cannot possibly fit the remaining payload is malformed.
[[nodiscard]] Status CheckCount(uint32_t count, size_t min_bytes_each,
                                const ByteReader& reader) {
  if (static_cast<uint64_t>(count) * min_bytes_each > reader.remaining()) {
    return Status::InvalidArgument(
        "element count " + std::to_string(count) +
        " exceeds remaining payload (" + std::to_string(reader.remaining()) +
        " bytes)");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Body encoders. The shared header (magic, version, type) is written by
// EncodePayload below.
// ---------------------------------------------------------------------------

struct RequestBodyEncoder {
  std::vector<uint8_t>& out;

  void operator()(const AppendRequest& r) const {
    PutString(out, r.vehicle_id);
    PutDate(out, r.day);
    PutF64(out, r.seconds);
  }
  void operator()(const LoadHistoryRequest& r) const {
    PutString(out, r.vehicle_id);
    PutDate(out, r.start_day);
    PutU32(out, static_cast<uint32_t>(r.values.size()));
    for (double v : r.values) PutF64(out, v);
  }
  void operator()(const RefreshRequest&) const {}
  void operator()(const GetForecastRequest& r) const {
    PutU32(out, static_cast<uint32_t>(r.vehicle_ids.size()));
    for (const std::string& id : r.vehicle_ids) PutString(out, id);
  }
  void operator()(const StatsRequest&) const {}
  void operator()(const ShutdownRequest&) const {}
};

struct ResponseBodyEncoder {
  std::vector<uint8_t>& out;

  void operator()(const AckResponse&) const {}
  void operator()(const ErrorResponse& r) const {
    PutU8(out, static_cast<uint8_t>(r.code));
    PutString(out, r.message);
  }
  void operator()(const OverloadedResponse& r) const {
    PutU32(out, r.shard);
    PutU32(out, r.queue_depth);
    PutU32(out, r.max_queue);
  }
  void operator()(const RefreshDoneResponse& r) const {
    PutU64(out, r.epoch);
    PutU64(out, r.refreshed);
    PutU64(out, r.reused);
    PutU32(out, r.shards);
  }
  void operator()(const ForecastBatchResponse& r) const {
    PutU32(out, static_cast<uint32_t>(r.entries.size()));
    for (const ForecastEntry& e : r.entries) {
      PutString(out, e.vehicle_id);
      PutU8(out, static_cast<uint8_t>(e.status_code));
      if (e.status_code == StatusCode::kOk) {
        PutString(out, e.model_name);
        PutF64(out, e.days_left);
        PutDate(out, e.predicted_date);
        PutF64(out, e.usage_seconds_left);
        PutU64(out, e.epoch);
      } else {
        PutString(out, e.status_message);
      }
    }
  }
  void operator()(const StatsResponse& r) const {
    PutU64(out, r.frames);
    PutU64(out, r.decode_errors);
    PutU64(out, r.appends);
    PutU64(out, r.load_history);
    PutU64(out, r.reads);
    PutU64(out, r.overloaded);
    PutU32(out, static_cast<uint32_t>(r.shards.size()));
    for (const ShardStats& s : r.shards) {
      PutU32(out, s.shard);
      PutU64(out, s.vehicles);
      PutU64(out, s.epoch);
      PutU32(out, s.queue_depth);
      PutU64(out, s.dirty);
      PutU64(out, s.appends);
      PutU64(out, s.overloaded);
    }
  }
};

template <typename Message, typename BodyEncoder>
std::vector<uint8_t> EncodeFrame(const Message& message, MessageType type) {
  std::vector<uint8_t> payload;
  PutU8(payload, kMagic0);
  PutU8(payload, kMagic1);
  PutU8(payload, kProtocolVersion);
  PutU8(payload, static_cast<uint8_t>(type));
  std::visit(BodyEncoder{payload}, message);
  NM_CHECK_MSG(payload.size() <= kMaxPayloadBytes,
               "encoded payload exceeds kMaxPayloadBytes");
  std::vector<uint8_t> frame;
  frame.reserve(kLengthPrefixBytes + payload.size());
  PutU32(frame, static_cast<uint32_t>(payload.size()));
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

// ---------------------------------------------------------------------------
// Body decoders.
// ---------------------------------------------------------------------------

[[nodiscard]] Status DecodeAppend(ByteReader& reader, AppendRequest* out) {
  NM_RETURN_NOT_OK(reader.ReadString(&out->vehicle_id, kMaxVehicleIdBytes));
  NM_RETURN_NOT_OK(reader.ReadDate(&out->day));
  return reader.ReadF64(&out->seconds);
}

[[nodiscard]] Status DecodeLoadHistory(ByteReader& reader,
                                       LoadHistoryRequest* out) {
  NM_RETURN_NOT_OK(reader.ReadString(&out->vehicle_id, kMaxVehicleIdBytes));
  NM_RETURN_NOT_OK(reader.ReadDate(&out->start_day));
  uint32_t count = 0;
  NM_RETURN_NOT_OK(reader.ReadU32(&count));
  NM_RETURN_NOT_OK(CheckCount(count, sizeof(double), reader));
  out->values.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    NM_RETURN_NOT_OK(reader.ReadF64(&out->values[i]));
  }
  return Status::OK();
}

[[nodiscard]] Status DecodeGetForecast(ByteReader& reader,
                                       GetForecastRequest* out) {
  uint32_t count = 0;
  NM_RETURN_NOT_OK(reader.ReadU32(&count));
  NM_RETURN_NOT_OK(CheckCount(count, /*min_bytes_each=*/2, reader));
  out->vehicle_ids.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    NM_RETURN_NOT_OK(
        reader.ReadString(&out->vehicle_ids[i], kMaxVehicleIdBytes));
  }
  return Status::OK();
}

[[nodiscard]] Status DecodeError(ByteReader& reader, ErrorResponse* out) {
  NM_RETURN_NOT_OK(ReadStatusCode(reader, &out->code));
  if (out->code == StatusCode::kOk) {
    return Status::InvalidArgument("error response carrying an OK code");
  }
  return reader.ReadString(&out->message,
                           std::numeric_limits<uint16_t>::max());
}

[[nodiscard]] Status DecodeOverloaded(ByteReader& reader,
                                      OverloadedResponse* out) {
  NM_RETURN_NOT_OK(reader.ReadU32(&out->shard));
  NM_RETURN_NOT_OK(reader.ReadU32(&out->queue_depth));
  return reader.ReadU32(&out->max_queue);
}

[[nodiscard]] Status DecodeRefreshDone(ByteReader& reader,
                                       RefreshDoneResponse* out) {
  NM_RETURN_NOT_OK(reader.ReadU64(&out->epoch));
  NM_RETURN_NOT_OK(reader.ReadU64(&out->refreshed));
  NM_RETURN_NOT_OK(reader.ReadU64(&out->reused));
  return reader.ReadU32(&out->shards);
}

[[nodiscard]] Status DecodeForecastBatch(ByteReader& reader,
                                         ForecastBatchResponse* out) {
  uint32_t count = 0;
  NM_RETURN_NOT_OK(reader.ReadU32(&count));
  // Min entry: id length (2) + status code (1) + message length (2).
  NM_RETURN_NOT_OK(CheckCount(count, /*min_bytes_each=*/5, reader));
  out->entries.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    ForecastEntry& e = out->entries[i];
    NM_RETURN_NOT_OK(reader.ReadString(&e.vehicle_id, kMaxVehicleIdBytes));
    NM_RETURN_NOT_OK(ReadStatusCode(reader, &e.status_code));
    if (e.status_code == StatusCode::kOk) {
      NM_RETURN_NOT_OK(
          reader.ReadString(&e.model_name, std::numeric_limits<uint16_t>::max()));
      NM_RETURN_NOT_OK(reader.ReadF64(&e.days_left));
      NM_RETURN_NOT_OK(reader.ReadDate(&e.predicted_date));
      NM_RETURN_NOT_OK(reader.ReadF64(&e.usage_seconds_left));
      NM_RETURN_NOT_OK(reader.ReadU64(&e.epoch));
    } else {
      NM_RETURN_NOT_OK(reader.ReadString(&e.status_message,
                                         std::numeric_limits<uint16_t>::max()));
    }
  }
  return Status::OK();
}

[[nodiscard]] Status DecodeStats(ByteReader& reader, StatsResponse* out) {
  NM_RETURN_NOT_OK(reader.ReadU64(&out->frames));
  NM_RETURN_NOT_OK(reader.ReadU64(&out->decode_errors));
  NM_RETURN_NOT_OK(reader.ReadU64(&out->appends));
  NM_RETURN_NOT_OK(reader.ReadU64(&out->load_history));
  NM_RETURN_NOT_OK(reader.ReadU64(&out->reads));
  NM_RETURN_NOT_OK(reader.ReadU64(&out->overloaded));
  uint32_t count = 0;
  NM_RETURN_NOT_OK(reader.ReadU32(&count));
  // Per-shard record: 2×u32 + 5×u64 = 48 bytes.
  NM_RETURN_NOT_OK(CheckCount(count, /*min_bytes_each=*/48, reader));
  out->shards.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    ShardStats& s = out->shards[i];
    NM_RETURN_NOT_OK(reader.ReadU32(&s.shard));
    NM_RETURN_NOT_OK(reader.ReadU64(&s.vehicles));
    NM_RETURN_NOT_OK(reader.ReadU64(&s.epoch));
    NM_RETURN_NOT_OK(reader.ReadU32(&s.queue_depth));
    NM_RETURN_NOT_OK(reader.ReadU64(&s.dirty));
    NM_RETURN_NOT_OK(reader.ReadU64(&s.appends));
    NM_RETURN_NOT_OK(reader.ReadU64(&s.overloaded));
  }
  return Status::OK();
}

/// Validates the shared payload header and returns the message type.
[[nodiscard]] Status DecodeHeader(ByteReader& reader, uint8_t* type) {
  uint8_t m0 = 0;
  uint8_t m1 = 0;
  uint8_t version = 0;
  NM_RETURN_NOT_OK(reader.ReadU8(&m0));
  NM_RETURN_NOT_OK(reader.ReadU8(&m1));
  if (m0 != kMagic0 || m1 != kMagic1) {
    return Status::InvalidArgument("bad protocol magic bytes");
  }
  NM_RETURN_NOT_OK(reader.ReadU8(&version));
  if (version != kProtocolVersion) {
    return Status::InvalidArgument(
        "unsupported protocol version " + std::to_string(version) +
        " (this build speaks version " + std::to_string(kProtocolVersion) +
        ")");
  }
  return reader.ReadU8(type);
}

[[nodiscard]] Status CheckFullyConsumed(const ByteReader& reader) {
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after message body (" +
                                   std::to_string(reader.remaining()) +
                                   " unconsumed)");
  }
  return Status::OK();
}

[[nodiscard]] Result<Request> DecodeRequestImpl(
    std::span<const uint8_t> payload) {
  ByteReader reader(payload);
  uint8_t type = 0;
  NM_RETURN_NOT_OK(DecodeHeader(reader, &type));
  Request request;
  switch (static_cast<MessageType>(type)) {
    case MessageType::kAppend: {
      AppendRequest r;
      NM_RETURN_NOT_OK(DecodeAppend(reader, &r));
      request = std::move(r);
      break;
    }
    case MessageType::kLoadHistory: {
      LoadHistoryRequest r;
      NM_RETURN_NOT_OK(DecodeLoadHistory(reader, &r));
      request = std::move(r);
      break;
    }
    case MessageType::kRefresh:
      request = RefreshRequest{};
      break;
    case MessageType::kGetForecast: {
      GetForecastRequest r;
      NM_RETURN_NOT_OK(DecodeGetForecast(reader, &r));
      request = std::move(r);
      break;
    }
    case MessageType::kStats:
      request = StatsRequest{};
      break;
    case MessageType::kShutdown:
      request = ShutdownRequest{};
      break;
    default:
      return Status::InvalidArgument("unknown request message type " +
                                     std::to_string(type));
  }
  NM_RETURN_NOT_OK(CheckFullyConsumed(reader));
  return request;
}

[[nodiscard]] Result<Response> DecodeResponseImpl(
    std::span<const uint8_t> payload) {
  ByteReader reader(payload);
  uint8_t type = 0;
  NM_RETURN_NOT_OK(DecodeHeader(reader, &type));
  Response response;
  switch (static_cast<MessageType>(type)) {
    case MessageType::kAck:
      response = AckResponse{};
      break;
    case MessageType::kError: {
      ErrorResponse r;
      NM_RETURN_NOT_OK(DecodeError(reader, &r));
      response = std::move(r);
      break;
    }
    case MessageType::kOverloaded: {
      OverloadedResponse r;
      NM_RETURN_NOT_OK(DecodeOverloaded(reader, &r));
      response = r;
      break;
    }
    case MessageType::kRefreshDone: {
      RefreshDoneResponse r;
      NM_RETURN_NOT_OK(DecodeRefreshDone(reader, &r));
      response = r;
      break;
    }
    case MessageType::kForecastBatch: {
      ForecastBatchResponse r;
      NM_RETURN_NOT_OK(DecodeForecastBatch(reader, &r));
      response = std::move(r);
      break;
    }
    case MessageType::kStatsReport: {
      StatsResponse r;
      NM_RETURN_NOT_OK(DecodeStats(reader, &r));
      response = std::move(r);
      break;
    }
    default:
      return Status::InvalidArgument("unknown response message type " +
                                     std::to_string(type));
  }
  NM_RETURN_NOT_OK(CheckFullyConsumed(reader));
  return response;
}

}  // namespace

Status ErrorResponse::ToStatus() const {
  NM_CHECK_MSG(code != StatusCode::kOk, "ErrorResponse with OK code");
  return Status(code, message);
}

ErrorResponse ErrorResponse::FromStatus(const Status& status) {
  NM_CHECK_MSG(!status.ok(), "cannot build an ErrorResponse from OK");
  return ErrorResponse{status.code(), status.message()};
}

MessageType TypeOf(const Request& request) {
  struct Visitor {
    MessageType operator()(const AppendRequest&) const {
      return MessageType::kAppend;
    }
    MessageType operator()(const LoadHistoryRequest&) const {
      return MessageType::kLoadHistory;
    }
    MessageType operator()(const RefreshRequest&) const {
      return MessageType::kRefresh;
    }
    MessageType operator()(const GetForecastRequest&) const {
      return MessageType::kGetForecast;
    }
    MessageType operator()(const StatsRequest&) const {
      return MessageType::kStats;
    }
    MessageType operator()(const ShutdownRequest&) const {
      return MessageType::kShutdown;
    }
  };
  return std::visit(Visitor{}, request);
}

MessageType TypeOf(const Response& response) {
  struct Visitor {
    MessageType operator()(const AckResponse&) const {
      return MessageType::kAck;
    }
    MessageType operator()(const ErrorResponse&) const {
      return MessageType::kError;
    }
    MessageType operator()(const OverloadedResponse&) const {
      return MessageType::kOverloaded;
    }
    MessageType operator()(const RefreshDoneResponse&) const {
      return MessageType::kRefreshDone;
    }
    MessageType operator()(const ForecastBatchResponse&) const {
      return MessageType::kForecastBatch;
    }
    MessageType operator()(const StatsResponse&) const {
      return MessageType::kStatsReport;
    }
  };
  return std::visit(Visitor{}, response);
}

std::vector<uint8_t> EncodeRequest(const Request& request) {
  return EncodeFrame<Request, RequestBodyEncoder>(request, TypeOf(request));
}

std::vector<uint8_t> EncodeResponse(const Response& response) {
  return EncodeFrame<Response, ResponseBodyEncoder>(response,
                                                    TypeOf(response));
}

Result<Request> DecodeRequest(std::span<const uint8_t> payload) {
  return DecodeRequestImpl(payload);
}

Result<Response> DecodeResponse(std::span<const uint8_t> payload) {
  return DecodeResponseImpl(payload);
}

void FrameAssembler::Feed(std::span<const uint8_t> bytes) {
  if (poisoned_) return;
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

Result<std::optional<std::vector<uint8_t>>> FrameAssembler::Next() {
  if (poisoned_) {
    return Status::InvalidArgument(
        "frame stream poisoned by a malformed length prefix");
  }
  const size_t available = buffer_.size() - consumed_;
  if (available < kLengthPrefixBytes) {
    return std::optional<std::vector<uint8_t>>{};
  }
  uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<uint32_t>(buffer_[consumed_ + i]) << (8 * i);
  }
  // The smallest valid payload is the 4-byte header (magic, version, type).
  if (length < 4 || length > kMaxPayloadBytes) {
    poisoned_ = true;
    return Status::InvalidArgument(
        "malformed frame length " + std::to_string(length) +
        " (valid range [4, " + std::to_string(kMaxPayloadBytes) + "])");
  }
  if (available < kLengthPrefixBytes + length) {
    return std::optional<std::vector<uint8_t>>{};
  }
  const size_t start = consumed_ + kLengthPrefixBytes;
  std::vector<uint8_t> payload(buffer_.begin() + static_cast<ptrdiff_t>(start),
                               buffer_.begin() +
                                   static_cast<ptrdiff_t>(start + length));
  consumed_ = start + length;
  // Reclaim consumed prefix once it dominates the buffer.
  if (consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  } else if (consumed_ > (64u << 10)) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  return std::optional<std::vector<uint8_t>>{std::move(payload)};
}

uint64_t StableVehicleHash(std::string_view id) {
  // FNV-1a, 64-bit. Stable across platforms and releases by fiat: shard
  // placement is part of the protocol contract.
  uint64_t hash = 14695981039346656037ULL;
  for (char c : id) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

}  // namespace protocol
}  // namespace serve
}  // namespace nextmaint
