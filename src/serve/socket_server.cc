#include "serve/socket_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/macros.h"
#include "serve/protocol.h"

namespace nextmaint {
namespace serve {

namespace {

/// Writes the whole buffer, looping over partial sends. False on error.
bool SendAll(int fd, const uint8_t* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

SocketServer::SocketServer(FleetDaemon* daemon, SocketServerOptions options)
    : daemon_(daemon), options_(std::move(options)) {
  NM_CHECK_MSG(daemon_ != nullptr, "SocketServer needs a daemon");
}

SocketServer::~SocketServer() { Stop(); }

std::string SocketServer::endpoint() const {
  if (!options_.unix_path.empty()) return "unix:" + options_.unix_path;
  return "tcp:127.0.0.1:" + std::to_string(bound_port_);
}

Status SocketServer::Start() {
  const bool use_unix = !options_.unix_path.empty();
  const bool use_tcp = options_.tcp_port >= 0;
  if (use_unix == use_tcp) {
    return Status::InvalidArgument(
        "exactly one of unix_path / tcp_port must be set");
  }
  if (use_unix) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("unix socket path too long: " +
                                     options_.unix_path);
    }
    std::memcpy(addr.sun_path, options_.unix_path.c_str(),
                options_.unix_path.size() + 1);
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return Status::IOError("socket(AF_UNIX): " +
                             std::string(std::strerror(errno)));
    }
    // A stale socket file from a previous run would make bind fail.
    ::unlink(options_.unix_path.c_str());
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      const Status status = Status::IOError(
          "bind(" + options_.unix_path + "): " + std::strerror(errno));
      ::close(listen_fd_);
      listen_fd_ = -1;
      return status;
    }
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return Status::IOError("socket(AF_INET): " +
                             std::string(std::strerror(errno)));
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(options_.tcp_port));
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      const Status status =
          Status::IOError("bind(127.0.0.1:" +
                          std::to_string(options_.tcp_port) +
                          "): " + std::strerror(errno));
      ::close(listen_fd_);
      listen_fd_ = -1;
      return status;
    }
    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &bound_len) == 0) {
      bound_port_ = ntohs(bound.sin_port);
    }
  }
  if (::listen(listen_fd_, 64) != 0) {
    const Status status =
        Status::IOError("listen: " + std::string(std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  accept_thread_ = std::thread(&SocketServer::AcceptLoop, this);
  return Status::OK();
}

void SocketServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Closed or shut down: stop accepting.
      return;
    }
    MutexLock lock(mu_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    auto connection = std::make_unique<Connection>(fd);
    Connection* raw = connection.get();
    connections_.push_back(std::move(connection));
    raw->thread = std::thread(&SocketServer::ServeConnection, this, raw);
  }
}

void SocketServer::ServeConnection(Connection* connection) {
  // The fd never changes between here and the close below (this thread is
  // the only writer), so I/O runs on a stable local copy instead of reading
  // the guarded member unlocked on every recv/send.
  int fd = -1;
  {
    MutexLock lock(connection->mu);
    fd = connection->fd;
  }
  protocol::FrameAssembler assembler;
  std::vector<uint8_t> read_buffer(64 << 10);
  bool shutdown_seen = false;
  for (;;) {
    const ssize_t n = ::recv(fd, read_buffer.data(), read_buffer.size(), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    assembler.Feed(std::span<const uint8_t>(read_buffer.data(),
                                            static_cast<size_t>(n)));
    bool poisoned = false;
    for (;;) {
      Result<std::optional<std::vector<uint8_t>>> next = assembler.Next();
      if (!next.ok()) {
        // Byte alignment is lost; answer once and drop the connection.
        const std::vector<uint8_t> error_frame = protocol::EncodeResponse(
            protocol::ErrorResponse::FromStatus(next.status()));
        SendAll(fd, error_frame.data(), error_frame.size());
        poisoned = true;
        break;
      }
      std::optional<std::vector<uint8_t>> payload =
          std::move(next).ValueOrDie();
      if (!payload.has_value()) break;
      const std::vector<uint8_t> response = daemon_->HandleFrame(*payload);
      if (!SendAll(fd, response.data(), response.size())) {
        poisoned = true;
        break;
      }
      if (daemon_->ShutdownRequested()) {
        // The acknowledgement is on the wire; wind the server down.
        shutdown_seen = true;
        break;
      }
    }
    if (poisoned || shutdown_seen) break;
  }
  {
    MutexLock lock(connection->mu);
    ::close(connection->fd);
    connection->fd = -1;
  }
  if (shutdown_seen) Signal();
}

void SocketServer::Signal() {
  MutexLock lock(mu_);
  if (stopping_) return;
  stopping_ = true;
  // Unblock accept() and every in-flight recv() so their threads exit.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  for (const auto& connection : connections_) {
    MutexLock conn_lock(connection->mu);
    if (connection->fd >= 0) ::shutdown(connection->fd, SHUT_RDWR);
  }
  stopped_cv_.NotifyAll();
}

void SocketServer::Teardown() {
  std::vector<std::unique_ptr<Connection>> connections;
  {
    MutexLock lock(mu_);
    if (torn_down_) return;
    torn_down_ = true;
    connections.swap(connections_);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  for (const auto& connection : connections) {
    if (connection->thread.joinable()) connection->thread.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
}

void SocketServer::Wait() {
  {
    MutexLock lock(mu_);
    while (!stopping_) stopped_cv_.Wait(mu_);
  }
  Teardown();
}

void SocketServer::Stop() {
  Signal();
  Teardown();
}

}  // namespace serve
}  // namespace nextmaint
