#ifndef NEXTMAINT_SERVE_PROTOCOL_H_
#define NEXTMAINT_SERVE_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "common/date.h"
#include "common/status.h"

/// \file protocol.h
/// Versioned length-prefixed binary wire protocol for the fleet daemon.
///
/// One protocol, three consumers: the daemon (src/serve/daemon.h), the
/// client library (src/serve/client.h) and the load generator
/// (bench/bench_fleet_load.cc) all speak exactly these bytes — there is no
/// second framing implementation to drift.
///
/// Wire layout. Every message is one *frame*:
///
///     u32  payload length (little-endian, excludes the prefix itself)
///     u8   magic 'N'
///     u8   magic 'M'
///     u8   protocol version (currently 1)
///     u8   message type (MessageType)
///     ...  type-specific body
///
/// All integers are little-endian fixed width; doubles travel as the
/// little-endian bytes of their IEEE-754 bit pattern (bit-exact round
/// trip — the daemon's byte-identity guarantee extends to the wire);
/// strings are a u16 byte length followed by raw bytes; dates are the i64
/// day number of common/date.h. Frames are bounded by kMaxPayloadBytes:
/// a peer announcing a larger payload is malformed, not a large request.
///
/// Error contract: every malformed input — truncated body, trailing
/// garbage, bad magic, unknown version or type, oversized declared
/// length, string length exceeding the payload — decodes to
/// `Status::InvalidArgument`. Decoders never crash, never read out of
/// bounds and never return a partially-filled message.

namespace nextmaint {
namespace serve {
namespace protocol {

/// First magic byte of every payload ('N').
inline constexpr uint8_t kMagic0 = 0x4E;
/// Second magic byte of every payload ('M').
inline constexpr uint8_t kMagic1 = 0x4D;
/// The protocol version this build speaks. Decoders reject every other
/// version so a future v2 daemon can detect v1 peers instead of
/// misparsing them.
inline constexpr uint8_t kProtocolVersion = 1;
/// Size of the length prefix preceding every payload.
inline constexpr size_t kLengthPrefixBytes = 4;
/// Hard ceiling on a payload (magic + header + body). Large enough for a
/// full-history LoadHistory or a multi-thousand-vehicle forecast batch,
/// small enough that a corrupt length prefix cannot provoke a giant
/// allocation.
inline constexpr size_t kMaxPayloadBytes = 1u << 20;
/// Ceiling on a vehicle-id string on the wire.
inline constexpr size_t kMaxVehicleIdBytes = 256;

/// Discriminates the body that follows the frame header. Requests and
/// responses share one numbering space (requests < 64 <= responses) so a
/// stray response fed to the request decoder fails loudly.
enum class MessageType : uint8_t {
  // Requests.
  kAppend = 1,
  kLoadHistory = 2,
  kRefresh = 3,
  kGetForecast = 4,
  kStats = 5,
  kShutdown = 6,
  // Responses.
  kAck = 65,
  kError = 66,
  kOverloaded = 67,
  kRefreshDone = 68,
  kForecastBatch = 69,
  kStatsReport = 70,
};

/// Append one day of utilization for one vehicle. Unknown vehicles are
/// auto-registered with `day` as their first day.
struct AppendRequest {
  std::string vehicle_id;
  Date day;
  double seconds = 0.0;
};

/// Bulk-load (or replace) a vehicle's gap-free history — the warm-start
/// path. Unknown vehicles are auto-registered with `start_day`.
struct LoadHistoryRequest {
  std::string vehicle_id;
  Date start_day;
  std::vector<double> values;
};

/// Barrier: flush every shard's pending appends and refresh all dirty
/// vehicles. Completes once every shard has refreshed.
struct RefreshRequest {};

/// Read forecasts for a batch of vehicles from the shards' published
/// snapshots (lock-free on the daemon side; never blocks on training).
struct GetForecastRequest {
  std::vector<std::string> vehicle_ids;
};

/// Fetch daemon-wide and per-shard serving statistics.
struct StatsRequest {};

/// Ask the daemon to stop accepting traffic and shut down.
struct ShutdownRequest {};

/// Generic success (Append, LoadHistory, Shutdown).
struct AckResponse {};

/// Any request that failed: the Status code and message, round-tripped.
struct ErrorResponse {
  StatusCode code = StatusCode::kUnknown;
  std::string message;

  /// The equivalent Status (for client-side propagation).
  [[nodiscard]] Status ToStatus() const;
  static ErrorResponse FromStatus(const Status& status);
};

/// Admission control rejected the request: the target shard's queue is
/// full. The client should back off and retry; nothing was enqueued.
struct OverloadedResponse {
  uint32_t shard = 0;
  uint32_t queue_depth = 0;
  uint32_t max_queue = 0;
};

/// A Refresh barrier completed on every shard.
struct RefreshDoneResponse {
  /// Highest per-shard snapshot epoch after the barrier.
  uint64_t epoch = 0;
  /// Vehicles retrained, summed across shards.
  uint64_t refreshed = 0;
  /// Vehicles whose cached model was reused, summed across shards.
  uint64_t reused = 0;
  /// Shards that participated.
  uint32_t shards = 0;
};

/// One vehicle's slot in a ForecastBatchResponse. `status_code == kOk`
/// means the forecast fields are populated; otherwise `status_message`
/// says why not (NotFound: never seen; FailedPrecondition: not covered
/// by a published snapshot yet).
struct ForecastEntry {
  std::string vehicle_id;
  StatusCode status_code = StatusCode::kOk;
  std::string status_message;
  // Populated iff status_code == kOk.
  std::string model_name;
  double days_left = 0.0;
  Date predicted_date;
  double usage_seconds_left = 0.0;
  /// Epoch of the shard snapshot this entry was read from.
  uint64_t epoch = 0;
};

/// Response to GetForecast: one entry per requested id, request order.
struct ForecastBatchResponse {
  std::vector<ForecastEntry> entries;
};

/// Per-shard serving statistics.
struct ShardStats {
  uint32_t shard = 0;
  uint64_t vehicles = 0;
  uint64_t epoch = 0;
  uint32_t queue_depth = 0;
  uint64_t dirty = 0;
  uint64_t appends = 0;
  uint64_t overloaded = 0;
};

/// Response to Stats: daemon-wide counters plus one ShardStats per shard.
struct StatsResponse {
  uint64_t frames = 0;
  uint64_t decode_errors = 0;
  uint64_t appends = 0;
  uint64_t load_history = 0;
  uint64_t reads = 0;
  uint64_t overloaded = 0;
  std::vector<ShardStats> shards;
};

/// Any request message.
using Request = std::variant<AppendRequest, LoadHistoryRequest, RefreshRequest,
                             GetForecastRequest, StatsRequest, ShutdownRequest>;

/// Any response message.
using Response =
    std::variant<AckResponse, ErrorResponse, OverloadedResponse,
                 RefreshDoneResponse, ForecastBatchResponse, StatsResponse>;

/// The message type a request/response encodes as.
MessageType TypeOf(const Request& request);
MessageType TypeOf(const Response& response);

/// Encodes a message as a complete wire frame (length prefix included).
/// Encoding cannot fail: oversized inputs are the caller's bug and are
/// clamped by the request validators before they reach the wire.
std::vector<uint8_t> EncodeRequest(const Request& request);
std::vector<uint8_t> EncodeResponse(const Response& response);

/// Decodes one payload (the bytes after the length prefix; e.g. as
/// handed out by FrameAssembler). InvalidArgument on any malformed
/// input, including trailing bytes after a well-formed body.
[[nodiscard]] Result<Request> DecodeRequest(std::span<const uint8_t> payload);
[[nodiscard]] Result<Response> DecodeResponse(std::span<const uint8_t> payload);

/// Reassembles frames from an arbitrary-boundary byte stream (socket
/// reads). Feed bytes as they arrive; Next() yields complete payloads in
/// order. A malformed length prefix (payload longer than
/// kMaxPayloadBytes or shorter than the frame header) poisons the
/// stream: Next() returns InvalidArgument from then on, since byte
/// alignment is lost.
class FrameAssembler {
 public:
  /// Appends raw bytes from the transport.
  void Feed(std::span<const uint8_t> bytes);

  /// Returns the next complete payload, std::nullopt when more bytes are
  /// needed, or InvalidArgument once the stream is poisoned.
  [[nodiscard]] Result<std::optional<std::vector<uint8_t>>> Next();

  /// Bytes currently buffered and not yet handed out (tests /
  /// backpressure accounting).
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  std::vector<uint8_t> buffer_;
  size_t consumed_ = 0;
  bool poisoned_ = false;
};

/// Stable 64-bit FNV-1a hash of a vehicle id — THE sharding function.
/// Shard assignment is `StableVehicleHash(id) % shards`; it is part of
/// the protocol contract so clients and load generators can predict
/// placement without asking the daemon.
uint64_t StableVehicleHash(std::string_view id);

}  // namespace protocol
}  // namespace serve
}  // namespace nextmaint

#endif  // NEXTMAINT_SERVE_PROTOCOL_H_
