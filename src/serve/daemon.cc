#include "serve/daemon.h"

#include <algorithm>
#include <utility>

#include "common/failpoints.h"
#include "common/macros.h"
#include "common/telemetry.h"
#include "data/time_series.h"

namespace nextmaint {
namespace serve {

namespace {

protocol::Response ErrorFrom(const Status& status) {
  return protocol::ErrorResponse::FromStatus(status);
}

}  // namespace

/// One pending write (or refresh leg) in a shard's queue.
struct FleetDaemon::PendingOp {
  protocol::Request request;
  std::chrono::steady_clock::time_point enqueued;
  std::promise<protocol::Response> done;
  /// Set on refresh legs: shared completion state across all shards.
  std::shared_ptr<RefreshBarrier> barrier;
};

/// Shared completion state of one Refresh barrier: the last shard in
/// merges the per-shard results and resolves the caller's future.
///
/// Lock order: a leg may resolve while its shard's lock is held, so
/// RefreshBarrier::mu is always acquired after Shard::mu, never before
/// (docs/static-analysis.md#lock-hierarchy).
struct FleetDaemon::RefreshBarrier {
  RefreshBarrier(size_t legs, std::promise<protocol::Response> done_in)
      : remaining(legs),
        shards(static_cast<uint32_t>(legs)),
        done(std::move(done_in)) {}

  Mutex mu;
  /// Shard legs not yet completed; the last leg in resolves `done`.
  size_t remaining GUARDED_BY(mu);
  uint64_t epoch GUARDED_BY(mu) = 0;
  uint64_t refreshed GUARDED_BY(mu) = 0;
  uint64_t reused GUARDED_BY(mu) = 0;
  /// Per-shard failures; the lowest failing shard's status wins so the
  /// merged error is deterministic regardless of worker finish order.
  std::vector<std::pair<uint32_t, Status>> errors GUARDED_BY(mu);
  /// Shard count at submit time (immutable after construction).
  const uint32_t shards;
  /// Resolved exactly once, by CompleteBarrier on the last leg in.
  std::promise<protocol::Response> done;
};

/// One shard: a ServingEngine (single writer: the shard worker), a bounded
/// FIFO write queue, and cross-thread stat mirrors.
struct FleetDaemon::Shard {
  Shard(size_t index_in, const core::SchedulerOptions& scheduler_options)
      : index(index_in), engine(scheduler_options) {
    const std::string prefix =
        "serve.daemon.shard" + std::to_string(index_in);
    queue_gauge = telemetry::MetricsRegistry::Global().GetGauge(
        prefix + ".queue_depth");
    dirty_gauge =
        telemetry::MetricsRegistry::Global().GetGauge(prefix + ".dirty");
  }

  const size_t index;
  ServingEngine engine;

  /// Guards the write queue. Lock order: taken before RefreshBarrier::mu
  /// (a refresh leg can fail — and complete its barrier — under this
  /// lock); never acquired while holding a barrier's lock.
  Mutex mu;
  CondVar cv;
  std::deque<PendingOp> queue GUARDED_BY(mu);
  bool stop GUARDED_BY(mu) = false;
  std::thread worker;

  // Worker-thread-only state (no locking needed once Start() ran).
  std::unordered_set<std::string> registered;
  uint64_t applied_ops = 0;
  uint64_t appends_since_refresh = 0;

  // Cross-thread mirrors read by Stats()/readers without touching the
  // engine (whose bookkeeping is not thread-safe against the worker).
  std::atomic<uint64_t> vehicles{0};
  std::atomic<uint64_t> epoch{0};
  std::atomic<uint64_t> dirty{0};
  std::atomic<uint64_t> appends{0};
  std::atomic<uint64_t> overloaded{0};
  std::atomic<uint32_t> queue_depth{0};

  // Cached instrument pointers (registry pointers never dangle).
  telemetry::Gauge* queue_gauge = nullptr;
  telemetry::Gauge* dirty_gauge = nullptr;
};

FleetDaemon::FleetDaemon(DaemonOptions options) : options_(std::move(options)) {
  NM_CHECK_MSG(options_.shards >= 1, "DaemonOptions::shards must be >= 1");
  NM_CHECK_MSG(options_.max_queue >= 1,
               "DaemonOptions::max_queue must be >= 1");
  shards_.reserve(static_cast<size_t>(options_.shards));
  for (int i = 0; i < options_.shards; ++i) {
    shards_.push_back(
        std::make_unique<Shard>(static_cast<size_t>(i), options_.scheduler));
  }
  append_latency_ = telemetry::MetricsRegistry::Global().GetHistogram(
      "serve.daemon.append.seconds");
  read_latency_ = telemetry::MetricsRegistry::Global().GetHistogram(
      "serve.daemon.read.seconds");
}

FleetDaemon::~FleetDaemon() { Stop(); }

uint64_t FleetDaemon::ShardOf(std::string_view id) const {
  return protocol::StableVehicleHash(id) % shards_.size();
}

const ServingEngine& FleetDaemon::engine(size_t shard) const {
  NM_CHECK(shard < shards_.size());
  return shards_[shard]->engine;
}

Status FleetDaemon::Start() {
  if (started_.exchange(true)) {
    return Status::FailedPrecondition("daemon already started");
  }
  telemetry::SetGauge("serve.daemon.shards",
                      static_cast<double>(shards_.size()));
  for (auto& shard : shards_) {
    shard->worker = std::thread(&FleetDaemon::ShardLoop, this, shard->index);
  }
  return Status::OK();
}

void FleetDaemon::Stop() {
  const bool was_started = started_.load();
  if (stopping_.exchange(true)) {
    // A second Stop() only needs to make sure the workers are joined.
    for (auto& shard : shards_) {
      if (shard->worker.joinable()) shard->worker.join();
    }
    return;
  }
  if (!was_started) {
    // No workers were ever spawned: fail whatever was queued pre-start so
    // no future is left hanging.
    const Status status =
        Status::FailedPrecondition("daemon stopped before Start()");
    for (auto& shard : shards_) {
      std::deque<PendingOp> orphaned;
      {
        MutexLock lock(shard->mu);
        shard->stop = true;
        orphaned.swap(shard->queue);
        shard->queue_depth.store(0);
      }
      for (PendingOp& op : orphaned) {
        FailPendingOp(*shard, op, status);
      }
    }
    return;
  }
  for (auto& shard : shards_) {
    {
      MutexLock lock(shard->mu);
      shard->stop = true;
    }
    shard->cv.NotifyAll();
  }
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

void FleetDaemon::FailPendingOp(Shard& shard, PendingOp& op,
                                const Status& status) {
  if (!op.barrier) {
    op.done.set_value(ErrorFrom(status));
    return;
  }
  bool last = false;
  {
    MutexLock lock(op.barrier->mu);
    op.barrier->errors.emplace_back(static_cast<uint32_t>(shard.index),
                                    status);
    last = (--op.barrier->remaining == 0);
  }
  if (last) CompleteBarrier(*op.barrier);
}

void FleetDaemon::CompleteBarrier(RefreshBarrier& barrier) {
  // Called by the last leg in: remaining hit zero, so no other thread
  // still touches the barrier — but the fields are guarded, so read them
  // under the lock anyway. The promise resolves outside it: a caller
  // blocked in future::get() may destroy the barrier the moment the value
  // lands.
  protocol::Response response;
  {
    MutexLock lock(barrier.mu);
    if (barrier.errors.empty()) {
      protocol::RefreshDoneResponse done;
      done.epoch = barrier.epoch;
      done.refreshed = barrier.refreshed;
      done.reused = barrier.reused;
      done.shards = barrier.shards;
      response = done;
    } else {
      auto lowest = std::min_element(
          barrier.errors.begin(), barrier.errors.end(),
          [](const auto& a, const auto& b) { return a.first < b.first; });
      response = ErrorFrom(lowest->second.WithContext(
          "shard " + std::to_string(lowest->first) + " refresh failed"));
    }
  }
  barrier.done.set_value(std::move(response));
}

Status FleetDaemon::CheckEnqueue() {
  NEXTMAINT_FAILPOINT("serve.daemon.enqueue");
  return Status::OK();
}

std::future<protocol::Response> FleetDaemon::EnqueueWrite(size_t shard_index,
                                                          PendingOp op) {
  Shard& shard = *shards_[shard_index];
  std::future<protocol::Response> future = op.done.get_future();
  const Status admitted = CheckEnqueue();
  if (!admitted.ok()) {
    op.done.set_value(ErrorFrom(admitted));
    return future;
  }
  bool notify = false;
  {
    MutexLock lock(shard.mu);
    if (stopping_.load() || shard.stop) {
      op.done.set_value(
          ErrorFrom(Status::FailedPrecondition("daemon is stopping")));
      return future;
    }
    if (shard.queue.size() >= options_.max_queue) {
      shard.overloaded.fetch_add(1);
      total_overloaded_.fetch_add(1);
      telemetry::Count("serve.daemon.overloaded");
      protocol::OverloadedResponse overloaded;
      overloaded.shard = static_cast<uint32_t>(shard_index);
      overloaded.queue_depth = static_cast<uint32_t>(shard.queue.size());
      overloaded.max_queue = static_cast<uint32_t>(options_.max_queue);
      op.done.set_value(overloaded);
      return future;
    }
    shard.queue.push_back(std::move(op));
    const auto depth = static_cast<uint32_t>(shard.queue.size());
    shard.queue_depth.store(depth);
    shard.queue_gauge->Set(depth);
    notify = true;
  }
  if (notify) shard.cv.NotifyOne();
  return future;
}

std::future<protocol::Response> FleetDaemon::SubmitAsync(
    protocol::Request request) {
  const auto now = std::chrono::steady_clock::now();
  if (const auto* append = std::get_if<protocol::AppendRequest>(&request)) {
    const size_t shard = ShardOf(append->vehicle_id);
    PendingOp op;
    op.enqueued = now;
    op.request = std::move(request);
    return EnqueueWrite(shard, std::move(op));
  }
  if (const auto* load = std::get_if<protocol::LoadHistoryRequest>(&request)) {
    const size_t shard = ShardOf(load->vehicle_id);
    PendingOp op;
    op.enqueued = now;
    op.request = std::move(request);
    return EnqueueWrite(shard, std::move(op));
  }
  std::promise<protocol::Response> promise;
  std::future<protocol::Response> future = promise.get_future();
  if (std::holds_alternative<protocol::RefreshRequest>(request)) {
    if (!started_.load() || stopping_.load()) {
      promise.set_value(ErrorFrom(Status::FailedPrecondition(
          "refresh requires a started daemon (call Start() first)")));
      return future;
    }
    auto barrier =
        std::make_shared<RefreshBarrier>(shards_.size(), std::move(promise));
    // Refresh legs are control traffic: they bypass max_queue so a full
    // write queue can always be flushed.
    for (auto& shard : shards_) {
      PendingOp op;
      op.enqueued = now;
      op.request = protocol::RefreshRequest{};
      op.barrier = barrier;
      {
        MutexLock lock(shard->mu);
        if (shard->stop) {
          FailPendingOp(*shard, op,
                        Status::FailedPrecondition("daemon is stopping"));
          continue;
        }
        shard->queue.push_back(std::move(op));
      }
      shard->cv.NotifyOne();
    }
    return future;
  }
  if (const auto* get = std::get_if<protocol::GetForecastRequest>(&request)) {
    promise.set_value(ReadForecasts(*get));
    return future;
  }
  if (std::holds_alternative<protocol::StatsRequest>(request)) {
    promise.set_value(Stats());
    return future;
  }
  // ShutdownRequest: flip the flag; the transport observes it and winds
  // down once the acknowledgement is on the wire.
  shutdown_requested_.store(true);
  telemetry::Count("serve.daemon.shutdowns");
  promise.set_value(protocol::AckResponse{});
  return future;
}

protocol::Response FleetDaemon::Execute(const protocol::Request& request) {
  return SubmitAsync(request).get();
}

bool FleetDaemon::ShutdownRequested() const {
  return shutdown_requested_.load();
}

void FleetDaemon::ShardLoop(size_t index) {
  Shard& shard = *shards_[index];
  for (;;) {
    std::deque<PendingOp> batch;
    {
      MutexLock lock(shard.mu);
      while (!shard.stop && shard.queue.empty()) shard.cv.Wait(shard.mu);
      if (shard.queue.empty() && shard.stop) break;
      batch.swap(shard.queue);
      shard.queue_depth.store(0);
      shard.queue_gauge->Set(0.0);
    }
    for (PendingOp& op : batch) {
      if (op.barrier) {
        ApplyRefresh(shard, op);
      } else {
        ApplyOp(shard, op);
      }
    }
    if (options_.batch_window > 0 &&
        shard.appends_since_refresh >= options_.batch_window) {
      Result<RefreshStats> refreshed = RefreshShard(shard);
      if (!refreshed.ok()) {
        telemetry::Count("serve.daemon.refresh_errors");
      } else {
        telemetry::Count("serve.daemon.auto_refreshes");
      }
      shard.appends_since_refresh = 0;
    }
  }
}

void FleetDaemon::ApplyOp(Shard& shard, PendingOp& op) {
  ++shard.applied_ops;
  // Ordinal context: the op's position in this shard's deterministic apply
  // order, so armed engine-level failpoints select the same op at any
  // shard/thread configuration driven by a single submitter.
  failpoints::ScopedOrdinal ordinal(shard.applied_ops);
  Status status;
  if (const auto* append = std::get_if<protocol::AppendRequest>(&op.request)) {
    status = ApplyAppend(shard, *append);
    if (status.ok()) {
      shard.appends.fetch_add(1);
      total_appends_.fetch_add(1);
      ++shard.appends_since_refresh;
      telemetry::Count("serve.daemon.appends");
    }
  } else if (const auto* load =
                 std::get_if<protocol::LoadHistoryRequest>(&op.request)) {
    status = ApplyLoadHistory(shard, *load);
    if (status.ok()) {
      total_load_history_.fetch_add(1);
      telemetry::Count("serve.daemon.load_history");
    }
  } else {
    status = Status::Unknown("non-write request in a shard queue");
  }
  const size_t dirty = shard.engine.DirtyCount();
  shard.dirty.store(dirty);
  shard.dirty_gauge->Set(static_cast<double>(dirty));
  append_latency_->Observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    op.enqueued)
          .count());
  op.done.set_value(status.ok() ? protocol::Response(protocol::AckResponse{})
                                : ErrorFrom(status));
}

Status FleetDaemon::EnsureRegistered(Shard& shard, const std::string& id,
                                     Date first_day) {
  if (shard.registered.count(id) != 0) return Status::OK();
  NM_RETURN_NOT_OK(shard.engine.Register(id, first_day));
  shard.registered.insert(id);
  shard.vehicles.fetch_add(1);
  telemetry::Count("serve.daemon.registered");
  return Status::OK();
}

Status FleetDaemon::ApplyAppend(Shard& shard,
                                const protocol::AppendRequest& append) {
  NM_RETURN_NOT_OK(EnsureRegistered(shard, append.vehicle_id, append.day));
  return shard.engine.Append(append.vehicle_id, append.day, append.seconds);
}

Status FleetDaemon::ApplyLoadHistory(Shard& shard,
                                     const protocol::LoadHistoryRequest& load) {
  if (load.values.empty()) {
    return Status::InvalidArgument("LoadHistory with an empty series");
  }
  NM_RETURN_NOT_OK(EnsureRegistered(shard, load.vehicle_id, load.start_day));
  return shard.engine.LoadHistory(
      load.vehicle_id, data::DailySeries(load.start_day, load.values));
}

void FleetDaemon::ApplyRefresh(Shard& shard, PendingOp& op) {
  Result<RefreshStats> result = RefreshShard(shard);
  shard.appends_since_refresh = 0;
  bool last = false;
  {
    MutexLock lock(op.barrier->mu);
    if (result.ok()) {
      const RefreshStats& stats = result.ValueOrDie();
      op.barrier->epoch = std::max(op.barrier->epoch, stats.epoch);
      op.barrier->refreshed += stats.refreshed;
      op.barrier->reused += stats.reused;
    } else {
      op.barrier->errors.emplace_back(static_cast<uint32_t>(shard.index),
                                      result.status());
    }
    last = (--op.barrier->remaining == 0);
  }
  if (last) CompleteBarrier(*op.barrier);
}

Result<RefreshStats> FleetDaemon::RefreshShard(Shard& shard) {
  // Shard index as the ordinal context: "serve.daemon.refresh:2" fails
  // exactly shard 1's leg regardless of worker scheduling.
  failpoints::ScopedOrdinal ordinal(shard.index + 1);
  NEXTMAINT_FAILPOINT("serve.daemon.refresh");
  if (shard.registered.empty()) {
    // An empty shard has nothing to refresh; report its current epoch so
    // the barrier's max-epoch stays meaningful.
    RefreshStats stats;
    stats.epoch = shard.engine.epoch();
    return stats;
  }
  telemetry::ScopedTimer timer("serve.daemon.refresh.seconds");
  Result<RefreshStats> result = shard.engine.RefreshForecasts();
  if (result.ok()) {
    shard.epoch.store(shard.engine.epoch());
    shard.dirty.store(shard.engine.DirtyCount());
    shard.dirty_gauge->Set(static_cast<double>(shard.engine.DirtyCount()));
    telemetry::Count("serve.daemon.refreshes");
  }
  return result;
}

protocol::Response FleetDaemon::ReadForecasts(
    const protocol::GetForecastRequest& request) {
  telemetry::ScopedTimer timer(read_latency_);
  protocol::ForecastBatchResponse batch;
  batch.entries.reserve(request.vehicle_ids.size());
  // One snapshot acquisition per involved shard: every entry from the same
  // shard reflects the same epoch (the same guarantee
  // ServingEngine::GetForecasts documents, here per shard).
  std::vector<std::shared_ptr<const FleetSnapshot>> snapshots(shards_.size());
  for (const std::string& id : request.vehicle_ids) {
    const size_t shard_index = ShardOf(id);
    if (!snapshots[shard_index]) {
      snapshots[shard_index] = shards_[shard_index]->engine.Snapshot();
    }
    const FleetSnapshot& snapshot = *snapshots[shard_index];
    protocol::ForecastEntry entry;
    entry.vehicle_id = id;
    entry.epoch = snapshot.epoch;
    if (!snapshot.IsRegistered(id)) {
      entry.status_code = StatusCode::kNotFound;
      entry.status_message = "vehicle not in any published snapshot";
    } else if (const core::MaintenanceForecast* forecast =
                   snapshot.FindForecast(id)) {
      entry.model_name = forecast->model_name;
      entry.days_left = forecast->days_left;
      entry.predicted_date = forecast->predicted_date;
      entry.usage_seconds_left = forecast->usage_seconds_left;
    } else {
      entry.status_code = StatusCode::kFailedPrecondition;
      entry.status_message = "no published forecast for vehicle";
    }
    batch.entries.push_back(std::move(entry));
  }
  reads_.fetch_add(1);
  telemetry::Count("serve.daemon.reads");
  telemetry::Count("serve.daemon.read_vehicles",
                   request.vehicle_ids.size());
  return batch;
}

protocol::StatsResponse FleetDaemon::Stats() const {
  protocol::StatsResponse stats;
  stats.frames = frames_.load();
  stats.decode_errors = decode_errors_.load();
  stats.appends = total_appends_.load();
  stats.load_history = total_load_history_.load();
  stats.reads = reads_.load();
  stats.overloaded = total_overloaded_.load();
  stats.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    protocol::ShardStats s;
    s.shard = static_cast<uint32_t>(shard->index);
    s.vehicles = shard->vehicles.load();
    s.epoch = shard->epoch.load();
    s.queue_depth = shard->queue_depth.load();
    s.dirty = shard->dirty.load();
    s.appends = shard->appends.load();
    s.overloaded = shard->overloaded.load();
    stats.shards.push_back(s);
  }
  return stats;
}

Result<protocol::Request> FleetDaemon::DecodeFramePayload(
    std::span<const uint8_t> payload) {
  // Two distinct seams: `accept` models a transport-level rejection of the
  // frame, `decode` a parse-stage failure. Both surface as ErrorResponse
  // frames to the peer.
  NEXTMAINT_FAILPOINT("serve.daemon.accept");
  NEXTMAINT_FAILPOINT("serve.daemon.decode");
  return protocol::DecodeRequest(payload);
}

std::vector<uint8_t> FleetDaemon::HandleFrame(
    std::span<const uint8_t> payload) {
  frames_.fetch_add(1);
  telemetry::Count("serve.daemon.frames");
  protocol::Response response;
  Result<protocol::Request> decoded = DecodeFramePayload(payload);
  if (!decoded.ok()) {
    decode_errors_.fetch_add(1);
    telemetry::Count("serve.daemon.decode_errors");
    response = protocol::ErrorResponse::FromStatus(decoded.status());
  } else {
    response = Execute(decoded.ValueOrDie());
  }
  return protocol::EncodeResponse(response);
}

}  // namespace serve
}  // namespace nextmaint
