#ifndef NEXTMAINT_SERVE_CLIENT_H_
#define NEXTMAINT_SERVE_CLIENT_H_

#include <string>
#include <vector>

#include "common/date.h"
#include "common/status.h"
#include "serve/protocol.h"

/// \file client.h
/// Client library for the fleet daemon's wire protocol.
///
/// A thin, blocking, single-connection client: one RoundTrip per request,
/// responses matched by order (the protocol has no request ids; the daemon
/// answers every frame, in order, on the same connection). Typed helpers
/// unwrap the expected response — an ErrorResponse comes back as its
/// carried Status, an OverloadedResponse as FailedPrecondition (back off
/// and retry), and a mismatched response type as DataError.
///
/// Used by the CLI's `serve --daemon` end-to-end tests and by operators'
/// tooling; the load bench drives the daemon in-process instead (the
/// protocol bytes are identical either way).

namespace nextmaint {
namespace serve {

/// Blocking client over one daemon connection. Not thread-safe: callers
/// serialize RoundTrip externally (or open one client per thread).
class DaemonClient {
 public:
  DaemonClient() = default;
  ~DaemonClient();

  DaemonClient(const DaemonClient&) = delete;
  DaemonClient& operator=(const DaemonClient&) = delete;

  /// Connects to a unix-domain daemon socket.
  [[nodiscard]] Status ConnectUnix(const std::string& path);
  /// Connects to a loopback TCP daemon port.
  [[nodiscard]] Status ConnectTcp(const std::string& host, int port);
  /// Closes the connection (idempotent).
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Sends one request and blocks for its response frame.
  [[nodiscard]] Result<protocol::Response> RoundTrip(
      const protocol::Request& request);

  // Typed helpers over RoundTrip.
  [[nodiscard]] Status Append(const std::string& id, Date day, double seconds);
  [[nodiscard]] Status LoadHistory(const std::string& id, Date start_day,
                                   std::vector<double> values);
  [[nodiscard]] Result<protocol::RefreshDoneResponse> Refresh();
  [[nodiscard]] Result<protocol::ForecastBatchResponse> GetForecasts(
      std::vector<std::string> ids);
  [[nodiscard]] Result<protocol::StatsResponse> Stats();
  /// Asks the daemon to shut down (the server side then stops accepting).
  [[nodiscard]] Status RequestShutdown();

 private:
  [[nodiscard]] Status SendFrame(const std::vector<uint8_t>& bytes);
  [[nodiscard]] Result<protocol::Response> ReadResponse();
  /// Folds Ack/Error/Overloaded into a Status (write-style requests).
  [[nodiscard]] Status RoundTripForAck(const protocol::Request& request);

  int fd_ = -1;
  protocol::FrameAssembler assembler_;
};

}  // namespace serve
}  // namespace nextmaint

#endif  // NEXTMAINT_SERVE_CLIENT_H_
