#ifndef NEXTMAINT_COMMON_PARALLEL_H_
#define NEXTMAINT_COMMON_PARALLEL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"

/// \file parallel.h
/// Deterministic thread-pool parallelism.
///
/// The fleet workloads are embarrassingly parallel at three levels — trees
/// within a forest, features within a histogram pass, vehicles within a
/// fleet — and every call site is written so that the result is
/// **bit-identical at any thread count** (see docs/parallelism.md for the
/// contract). The pool therefore only provides mechanism: it never reorders
/// a caller's reduction, and `ParallelFor` chunk boundaries depend only on
/// `(begin, end, grain)`, never on the thread count.
///
/// Design notes:
///  - The pool starts lazily: worker threads are spawned by the first
///    `ParallelFor` that can actually use them, so serial programs never
///    pay for thread creation.
///  - The calling thread participates in the work, so a pool configured
///    for N threads keeps N-1 background workers.
///  - A `ParallelFor` issued from inside a worker (nested parallelism)
///    runs inline on the calling thread — no new tasks are queued, which
///    makes nesting deadlock-free by construction.
///  - Worker errors propagate as `Status`; if several chunks fail, the
///    failure of the lowest-indexed chunk wins, matching what a serial
///    left-to-right loop that runs every chunk would report. Exceptions
///    thrown by a chunk are captured and rethrown on the calling thread
///    (lowest-indexed chunk first).

namespace nextmaint {

/// A fixed-size pool of worker threads executing `ParallelFor` chunks.
///
/// Thread-safe: concurrent `ParallelFor` calls from different threads are
/// allowed and share the workers. Construction/destruction must not race
/// with in-flight calls.
class ThreadPool {
 public:
  /// Chunk body: processes rows in `[chunk_begin, chunk_end)`.
  using Body = std::function<Status(size_t chunk_begin, size_t chunk_end)>;

  /// Creates a pool that will run up to `thread_count` chunks concurrently
  /// (including the calling thread). Values <= 0 select the hardware
  /// concurrency. No threads are spawned until the first parallel call.
  explicit ThreadPool(int thread_count);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Joins the workers. In-flight ParallelFor calls must have completed.
  ~ThreadPool();

  /// Configured concurrency (>= 1).
  int thread_count() const { return thread_count_; }

  /// True once the lazy worker spawn has happened.
  bool started() const EXCLUDES(mu_);

  /// Splits `[begin, end)` into chunks of `grain` indices (the final chunk
  /// may be shorter; `grain` 0 is treated as 1) and runs `body` once per
  /// chunk. Runs serially — identical chunking, on the calling thread —
  /// when the pool has a single thread, when there is at most one chunk,
  /// or when called from inside a pool worker (nested parallelism).
  ///
  /// `max_parallelism` caps the concurrency of this call only; 0 means the
  /// pool's full `thread_count()`. Returns OK iff every chunk returned OK,
  /// otherwise the status of the lowest-indexed failing chunk. A chunk that
  /// throws has its exception rethrown here after all chunks finish.
  [[nodiscard]] Status ParallelFor(size_t begin, size_t end, size_t grain, const Body& body,
                     int max_parallelism = 0) EXCLUDES(mu_);

  /// The process-wide default pool used by the free `ParallelFor`. Created
  /// on first use with `DefaultThreadCount()` threads.
  static ThreadPool& Default();

  /// Reconfigures the default pool size (<= 0 restores the hardware
  /// concurrency). Call at startup or between parallel regions; the current
  /// default pool, if any, is torn down and lazily rebuilt at the new size.
  static void SetDefaultThreadCount(int thread_count);

  /// The size the default pool has (or will be created with).
  static int DefaultThreadCount();

 private:
  struct Job;

  void EnsureStarted() EXCLUDES(mu_);
  void WorkerLoop() EXCLUDES(mu_);
  /// Claims and runs chunks of `job` until none remain.
  static void RunChunks(Job* job);

  const int thread_count_;

  mutable Mutex mu_;
  CondVar work_cv_;
  /// Helper tickets: one entry per worker invited to a job. Workers pop a
  /// ticket and claim chunks until the job runs dry.
  std::deque<std::shared_ptr<Job>> queue_ GUARDED_BY(mu_);
  /// Joined by the destructor, which the analysis exempts (no lock held).
  std::vector<std::thread> workers_ GUARDED_BY(mu_);
  bool started_ GUARDED_BY(mu_) = false;
  bool stopping_ GUARDED_BY(mu_) = false;
};

/// Resolves a per-component thread-count option: `requested` > 0 is taken
/// as-is, anything else means "use the process default".
int ResolveThreadCount(int requested);

/// `ThreadPool::Default().ParallelFor(...)` capped at `num_threads`
/// (resolved through `ResolveThreadCount`). The workhorse for call sites
/// whose Options carry a `num_threads` field.
[[nodiscard]] Status ParallelFor(size_t begin, size_t end, size_t grain,
                   const ThreadPool::Body& body, int num_threads = 0);

}  // namespace nextmaint

#endif  // NEXTMAINT_COMMON_PARALLEL_H_
