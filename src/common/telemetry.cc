#include "common/telemetry.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/macros.h"

namespace nextmaint {
namespace telemetry {

namespace internal {

std::atomic<int> g_enabled{-1};

bool InitEnabledFromEnv() {
  // getenv is racy against setenv, but this runs once during first-use
  // latching and the process never calls setenv after main starts.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* env = std::getenv("NEXTMAINT_METRICS");
  const bool on = env != nullptr && *env != '\0' &&
                  std::strcmp(env, "0") != 0 &&
                  std::strcmp(env, "off") != 0 &&
                  std::strcmp(env, "false") != 0;
  // First writer wins; a concurrent SetEnabled call is not overwritten.
  int expected = -1;
  g_enabled.compare_exchange_strong(expected, on ? 1 : 0,
                                    std::memory_order_relaxed);
  return g_enabled.load(std::memory_order_relaxed) != 0;
}

}  // namespace internal

void SetEnabled(bool enabled) {
  internal::g_enabled.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

namespace {

constexpr size_t kMaxSpans = 8192;

uint64_t Bits(double value) { return std::bit_cast<uint64_t>(value); }
double FromBits(uint64_t bits) { return std::bit_cast<double>(bits); }

/// Lock-free add on a double stored as bits (CAS loop; contention on these
/// is rare and short).
void AtomicAdd(std::atomic<uint64_t>* bits, double delta) {
  uint64_t expected = bits->load(std::memory_order_relaxed);
  while (!bits->compare_exchange_weak(
      expected, Bits(FromBits(expected) + delta),
      std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<uint64_t>* bits, double value) {
  uint64_t expected = bits->load(std::memory_order_relaxed);
  while (FromBits(expected) > value &&
         !bits->compare_exchange_weak(expected, Bits(value),
                                      std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<uint64_t>* bits, double value) {
  uint64_t expected = bits->load(std::memory_order_relaxed);
  while (FromBits(expected) < value &&
         !bits->compare_exchange_weak(expected, Bits(value),
                                      std::memory_order_relaxed)) {
  }
}

/// Default buckets for wall-time histograms, in seconds: 100 us .. 60 s in
/// a 1-2.5-5 progression (everything slower lands in the overflow bucket).
const std::vector<double>& DefaultTimeBounds() {
  static const std::vector<double>* const kBounds = new std::vector<double>{
      0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
      0.025,  0.05,    0.1,    0.25,  0.5,    1.0,   2.5,
      5.0,    10.0,    30.0,   60.0};
  return *kBounds;
}

}  // namespace

void Gauge::Set(double value) {
  if (Enabled()) bits_.store(Bits(value), std::memory_order_relaxed);
}

void Gauge::Add(double delta) {
  if (Enabled()) AtomicAdd(&bits_, delta);
}

double Gauge::value() const {
  return FromBits(bits_.load(std::memory_order_relaxed));
}

void Gauge::Reset() { bits_.store(0, std::memory_order_relaxed); }

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      min_bits_(Bits(std::numeric_limits<double>::infinity())),
      max_bits_(Bits(-std::numeric_limits<double>::infinity())) {
  NM_CHECK(!bounds_.empty());
  NM_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
  bucket_counts_ =
      std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) bucket_counts_[i] = 0;
}

void Histogram::Observe(double value) {
  if (!Enabled()) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const size_t bucket = static_cast<size_t>(it - bounds_.begin());
  bucket_counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_bits_, value);
  AtomicMin(&min_bits_, value);
  AtomicMax(&max_bits_, value);
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    bucket_counts_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
  min_bits_.store(Bits(std::numeric_limits<double>::infinity()),
                  std::memory_order_relaxed);
  max_bits_.store(Bits(-std::numeric_limits<double>::infinity()),
                  std::memory_order_relaxed);
}

MetricsRegistry::MetricsRegistry() : epoch_(std::chrono::steady_clock::now()) {}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* const kRegistry = new MetricsRegistry();
  return *kRegistry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::vector<double>& bounds) {
  MutexLock lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(bounds.empty() ? DefaultTimeBounds()
                                                      : bounds);
  }
  return slot.get();
}

void MetricsRegistry::RecordSpan(SpanRecord span) {
  MutexLock lock(mu_);
  if (spans_.size() >= kMaxSpans) {
    ++spans_dropped_;
    return;
  }
  spans_.push_back(std::move(span));
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(mu_);
  MetricsSnapshot snapshot;
  snapshot.enabled = Enabled();
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->value();
  }
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h;
    h.bounds = histogram->bounds_;
    h.bucket_counts.reserve(h.bounds.size() + 1);
    for (size_t i = 0; i <= h.bounds.size(); ++i) {
      h.bucket_counts.push_back(
          histogram->bucket_counts_[i].load(std::memory_order_relaxed));
    }
    h.count = histogram->count_.load(std::memory_order_relaxed);
    h.sum = FromBits(histogram->sum_bits_.load(std::memory_order_relaxed));
    if (h.count > 0) {
      h.min = FromBits(histogram->min_bits_.load(std::memory_order_relaxed));
      h.max = FromBits(histogram->max_bits_.load(std::memory_order_relaxed));
    }
    snapshot.histograms[name] = std::move(h);
  }
  snapshot.spans = spans_;
  snapshot.spans_dropped = spans_dropped_;
  return snapshot;
}

void MetricsRegistry::Reset() {
  MutexLock lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
  spans_.clear();
  spans_dropped_ = 0;
}

double MetricsRegistry::SecondsSinceEpoch() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

void Count(const std::string& name, uint64_t delta) {
  if (!Enabled()) return;
  MetricsRegistry::Global().GetCounter(name)->Increment(delta);
}

void SetGauge(const std::string& name, double value) {
  if (!Enabled()) return;
  MetricsRegistry::Global().GetGauge(name)->Set(value);
}

void Observe(const std::string& name, double value) {
  if (!Enabled()) return;
  MetricsRegistry::Global().GetHistogram(name)->Observe(value);
}

ScopedTimer::ScopedTimer(Histogram* histogram) {
  if (histogram == nullptr || !Enabled()) return;
  histogram_ = histogram;
  start_ = std::chrono::steady_clock::now();
}

ScopedTimer::ScopedTimer(const std::string& histogram_name) {
  if (!Enabled()) return;
  histogram_ = MetricsRegistry::Global().GetHistogram(histogram_name);
  start_ = std::chrono::steady_clock::now();
}

ScopedTimer::~ScopedTimer() {
  if (histogram_ == nullptr) return;
  histogram_->Observe(std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start_)
                          .count());
}

namespace {
thread_local TraceSpan* t_current_span = nullptr;
}  // namespace

TraceSpan::TraceSpan(std::string name) : name_(std::move(name)) {
  if (!Enabled()) return;
  active_ = true;
  parent_ = t_current_span;
  t_current_span = this;
  start_seconds_ = MetricsRegistry::Global().SecondsSinceEpoch();
  start_ = std::chrono::steady_clock::now();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  t_current_span = parent_;
  const double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start_)
                             .count();
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetHistogram(name_ + ".seconds")->Observe(seconds);
  SpanRecord record;
  record.name = name_;
  record.parent = parent_ != nullptr ? parent_->name_ : "";
  record.start_seconds = start_seconds_;
  record.seconds = seconds;
  registry.RecordSpan(std::move(record));
}

MetricsSnapshot Snapshot() { return MetricsRegistry::Global().Snapshot(); }

MetricsSnapshot SnapshotDelta(const MetricsSnapshot& before,
                              const MetricsSnapshot& after) {
  MetricsSnapshot delta;
  delta.enabled = after.enabled;
  for (const auto& [name, value] : after.counters) {
    const auto it = before.counters.find(name);
    const uint64_t prior = it == before.counters.end() ? 0 : it->second;
    delta.counters[name] = value - prior;
  }
  delta.gauges = after.gauges;
  for (const auto& [name, h] : after.histograms) {
    HistogramSnapshot d = h;
    const auto it = before.histograms.find(name);
    if (it != before.histograms.end()) {
      d.count -= it->second.count;
      d.sum -= it->second.sum;
      for (size_t i = 0; i < d.bucket_counts.size() &&
                         i < it->second.bucket_counts.size();
           ++i) {
        d.bucket_counts[i] -= it->second.bucket_counts[i];
      }
    }
    delta.histograms[name] = std::move(d);
  }
  if (after.spans.size() > before.spans.size()) {
    delta.spans.assign(
        after.spans.begin() +
            static_cast<ptrdiff_t>(before.spans.size()),
        after.spans.end());
  }
  delta.spans_dropped = after.spans_dropped - before.spans_dropped;
  return delta;
}

namespace {

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// JSON has no Infinity/NaN literals; non-finite values render as null.
std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  std::ostringstream stream;
  stream.precision(17);
  stream << value;
  return stream.str();
}

}  // namespace

std::string RenderText(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  out.precision(6);
  out << "telemetry " << (snapshot.enabled ? "enabled" : "disabled") << "\n";
  for (const auto& [name, value] : snapshot.counters) {
    out << "counter   " << name << " = " << value << "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    out << "gauge     " << name << " = " << value << "\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    out << "histogram " << name << " count=" << h.count << " sum=" << h.sum;
    if (h.count > 0) {
      out << " mean=" << h.sum / static_cast<double>(h.count)
          << " min=" << h.min << " max=" << h.max;
    }
    out << "\n";
  }
  if (!snapshot.spans.empty()) {
    out << "spans     " << snapshot.spans.size() << " recorded";
    if (snapshot.spans_dropped > 0) {
      out << " (" << snapshot.spans_dropped << " dropped)";
    }
    out << "\n";
  }
  return out.str();
}

std::string RenderJson(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"telemetry\": {\"enabled\": "
      << (snapshot.enabled ? "true" : "false")
      << ", \"spans_dropped\": " << snapshot.spans_dropped << "},\n";

  out << "  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    out << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name)
        << "\": " << value;
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n";

  out << "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    out << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name)
        << "\": " << JsonNumber(value);
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n";

  out << "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    out << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name) << "\": {"
        << "\"count\": " << h.count << ", \"sum\": " << JsonNumber(h.sum)
        << ", \"min\": " << JsonNumber(h.min)
        << ", \"max\": " << JsonNumber(h.max) << ", \"buckets\": [";
    for (size_t i = 0; i < h.bucket_counts.size(); ++i) {
      if (i > 0) out << ", ";
      out << "{\"le\": "
          << (i < h.bounds.size() ? JsonNumber(h.bounds[i])
                                  : std::string("\"+inf\""))
          << ", \"count\": " << h.bucket_counts[i] << "}";
    }
    out << "]}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n";

  out << "  \"spans\": [";
  first = true;
  for (const SpanRecord& span : snapshot.spans) {
    out << (first ? "\n" : ",\n") << "    {\"name\": \""
        << JsonEscape(span.name) << "\", \"parent\": \""
        << JsonEscape(span.parent)
        << "\", \"start_s\": " << JsonNumber(span.start_seconds)
        << ", \"seconds\": " << JsonNumber(span.seconds) << "}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "]\n";
  out << "}\n";
  return out.str();
}

Status WriteJsonFile(const MetricsSnapshot& snapshot,
                     const std::string& path) {
  std::ofstream file(path);
  if (!file) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  file << RenderJson(snapshot);
  if (!file) return Status::IOError("metrics write to '" + path + "' failed");
  return Status::OK();
}

}  // namespace telemetry
}  // namespace nextmaint
