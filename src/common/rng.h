#ifndef NEXTMAINT_COMMON_RNG_H_
#define NEXTMAINT_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

/// \file rng.h
/// Deterministic pseudo-random number generation.
///
/// Every stochastic component in the library (fleet simulator, bootstrap
/// sampling, feature subsampling, time-shift re-sampling) takes an explicit
/// seed so that experiments reproduce bit-for-bit across runs and platforms.
/// We implement xoshiro256** seeded through SplitMix64 rather than relying on
/// std::mt19937 + std::distributions, whose outputs are not specified to be
/// identical across standard-library implementations.

namespace nextmaint {

/// xoshiro256** generator with distribution helpers.
///
/// Not thread-safe; create one Rng per thread/component. Copyable so that a
/// component can fork an independent stream via `Fork()`.
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed. Two generators constructed
  /// with the same seed produce identical streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Returns the next raw 64-bit output.
  uint64_t NextUint64();

  /// Returns a double uniformly distributed in [0, 1).
  double NextDouble();

  /// Returns a double uniformly distributed in [lo, hi). Requires lo <= hi.
  double Uniform(double lo, double hi);

  /// Returns an integer uniformly distributed in [0, n). Requires n > 0.
  /// Uses rejection sampling to avoid modulo bias.
  uint64_t UniformInt(uint64_t n);

  /// Returns an integer uniformly distributed in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Returns a standard normal deviate (Box-Muller, cached spare).
  double Normal();

  /// Returns a normal deviate with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Returns true with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Returns a sample from Exponential(rate). Requires rate > 0.
  double Exponential(double rate);

  /// Returns a Poisson(lambda) sample. Uses Knuth's method for small lambda
  /// and normal approximation for lambda > 64.
  int64_t Poisson(double lambda);

  /// Returns a Gamma(shape, scale) sample (Marsaglia-Tsang).
  /// Requires shape > 0 and scale > 0.
  double Gamma(double shape, double scale);

  /// Returns an index in [0, weights.size()) drawn with probability
  /// proportional to weights[i]. Requires at least one positive weight.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffles `values` in place.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    if (values->empty()) return;
    for (size_t i = values->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(static_cast<uint64_t>(i + 1)));
      std::swap((*values)[i], (*values)[j]);
    }
  }

  /// Returns a generator with an independent stream derived from this one.
  Rng Fork();

 private:
  uint64_t state_[4];
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

}  // namespace nextmaint

#endif  // NEXTMAINT_COMMON_RNG_H_
