#include "common/date.h"

#include <cstdio>
#include <ostream>

namespace nextmaint {

namespace {

bool IsLeapYear(int y) { return y % 4 == 0 && (y % 100 != 0 || y % 400 == 0); }

int DaysInMonth(int year, int month) {
  static constexpr int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30,
                                  31};
  if (month == 2 && IsLeapYear(year)) return 29;
  return kDays[month - 1];
}

/// Civil-from-days and days-from-civil, after Howard Hinnant's
/// chrono-compatible algorithms (http://howardhinnant.github.io/date_algorithms.html).
int64_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);           // [0, 399]
  const unsigned doy = (153u * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;  // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;          // [0, 146096]
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t z, int* year, int* month, int* day) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);  // [0, 146096]
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;  // [0, 399]
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);  // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                       // [0, 11]
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;               // [1, 31]
  const unsigned m = mp + (mp < 10 ? 3 : -9);                    // [1, 12]
  *year = static_cast<int>(y + (m <= 2));
  *month = static_cast<int>(m);
  *day = static_cast<int>(d);
}

}  // namespace

Date Date::FromDayNumber(int64_t days) { return Date(days); }

Result<Date> Date::FromYmd(int year, int month, int day) {
  if (month < 1 || month > 12) {
    return Status::InvalidArgument("month out of range: " +
                                   std::to_string(month));
  }
  if (day < 1 || day > DaysInMonth(year, month)) {
    return Status::InvalidArgument("day out of range: " + std::to_string(day));
  }
  return Date(DaysFromCivil(year, month, day));
}

Result<Date> Date::Parse(const std::string& text) {
  int y = 0, m = 0, d = 0;
  char trailing = '\0';
  const int matched =
      std::sscanf(text.c_str(), "%d-%d-%d%c", &y, &m, &d, &trailing);
  if (matched != 3) {
    return Status::InvalidArgument("cannot parse date: '" + text + "'");
  }
  return FromYmd(y, m, d);
}

void Date::ToCivil(int* year, int* month, int* day) const {
  CivilFromDays(days_, year, month, day);
}

int Date::year() const {
  int y, m, d;
  ToCivil(&y, &m, &d);
  return y;
}

int Date::month() const {
  int y, m, d;
  ToCivil(&y, &m, &d);
  return m;
}

int Date::day() const {
  int y, m, d;
  ToCivil(&y, &m, &d);
  return d;
}

Weekday Date::weekday() const {
  // 1970-01-01 was a Thursday (ISO day 4).
  int64_t iso = (days_ + 3) % 7;  // 0 = Monday
  if (iso < 0) iso += 7;
  return static_cast<Weekday>(iso + 1);
}

bool Date::IsWeekend() const {
  const Weekday wd = weekday();
  return wd == Weekday::kSaturday || wd == Weekday::kSunday;
}

int Date::DayOfYear() const {
  int y, m, d;
  ToCivil(&y, &m, &d);
  const int64_t jan1 = DaysFromCivil(y, 1, 1);
  return static_cast<int>(days_ - jan1) + 1;
}

std::string Date::ToString() const {
  int y, m, d;
  ToCivil(&y, &m, &d);
  // Sized for the worst case (INT_MIN in every field), so snprintf can
  // never truncate and -Wformat-truncation stays quiet under -Werror.
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
  return buf;
}

std::ostream& operator<<(std::ostream& os, const Date& date) {
  return os << date.ToString();
}

}  // namespace nextmaint
