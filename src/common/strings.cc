#include "common/strings.h"

#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace nextmaint {

std::vector<std::string> Split(std::string_view text, char delimiter) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delimiter) {
      parts.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += separator;
    out += parts[i];
  }
  return out;
}

Result<double> ParseDouble(std::string_view text) {
  const std::string buf(Trim(text));
  if (buf.empty()) return Status::DataError("empty numeric field");
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size() || errno == ERANGE) {
    return Status::DataError("cannot parse double: '" + buf + "'");
  }
  return value;
}

Result<int64_t> ParseInt64(std::string_view text) {
  const std::string buf(Trim(text));
  if (buf.empty()) return Status::DataError("empty integer field");
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size() || errno == ERANGE) {
    return Status::DataError("cannot parse integer: '" + buf + "'");
  }
  return static_cast<int64_t>(value);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(needed > 0 ? static_cast<size_t>(needed) : 0, '\0');
  if (needed > 0) {
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace nextmaint
