#include "common/statistics.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace nextmaint {

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double Variance(const std::vector<double>& values) {
  if (values.size() < 1) return 0.0;
  const double mu = Mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - mu) * (v - mu);
  return acc / static_cast<double>(values.size());
}

double SampleStdDev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double mu = Mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - mu) * (v - mu);
  return std::sqrt(acc / static_cast<double>(values.size() - 1));
}

double Min(const std::vector<double>& values) {
  NM_CHECK(!values.empty());
  return *std::min_element(values.begin(), values.end());
}

double Max(const std::vector<double>& values) {
  NM_CHECK(!values.empty());
  return *std::max_element(values.begin(), values.end());
}

double Quantile(std::vector<double> values, double q) {
  NM_CHECK(!values.empty());
  NM_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double Median(std::vector<double> values) {
  return Quantile(std::move(values), 0.5);
}

Result<double> PearsonCorrelation(const std::vector<double>& a,
                                  const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("correlation requires equal lengths");
  }
  if (a.size() < 2) {
    return Status::InvalidArgument("correlation requires >= 2 points");
  }
  const double mean_a = Mean(a);
  const double mean_b = Mean(b);
  double cov = 0.0, var_a = 0.0, var_b = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - mean_a;
    const double db = b[i] - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a == 0.0 || var_b == 0.0) {
    return Status::NumericError("correlation undefined for constant series");
  }
  return cov / std::sqrt(var_a * var_b);
}

double PointwiseAverageDistance(const std::vector<double>& a,
                                const std::vector<double>& b) {
  const size_t n = std::min(a.size(), b.size());
  if (n == 0) return 0.0;
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) acc += std::fabs(a[i] - b[i]);
  return acc / static_cast<double>(n);
}

double NormalizedEuclideanDistance(const std::vector<double>& a,
                                   const std::vector<double>& b) {
  const size_t n = std::min(a.size(), b.size());
  if (n == 0) return 0.0;
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(n));
}

void RunningStats::Add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStats::variance() const {
  if (count_ < 1) return 0.0;
  return m2_ / static_cast<double>(count_);
}

}  // namespace nextmaint
