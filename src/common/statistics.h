#ifndef NEXTMAINT_COMMON_STATISTICS_H_
#define NEXTMAINT_COMMON_STATISTICS_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

/// \file statistics.h
/// Descriptive statistics over double sequences.
///
/// Shared by the data-preparation layer (normalization), the similarity
/// measures (correlation/distance between utilization series) and the
/// benchmark reports (summaries of residual errors).

namespace nextmaint {

/// Arithmetic mean. Returns 0 for an empty input.
double Mean(const std::vector<double>& values);

/// Population variance (divides by n). Returns 0 for fewer than 1 element.
double Variance(const std::vector<double>& values);

/// Sample standard deviation (divides by n-1). Returns 0 for n < 2.
double SampleStdDev(const std::vector<double>& values);

/// Minimum / maximum; abort on empty input.
double Min(const std::vector<double>& values);
double Max(const std::vector<double>& values);

/// Linear-interpolated quantile, q in [0, 1]. Aborts on empty input.
double Quantile(std::vector<double> values, double q);

/// Median (Quantile with q = 0.5).
double Median(std::vector<double> values);

/// Pearson correlation between two equal-length series. Returns
/// NumericError when either series has zero variance, InvalidArgument on a
/// length mismatch or fewer than 2 points.
[[nodiscard]] Result<double> PearsonCorrelation(const std::vector<double>& a,
                                  const std::vector<double>& b);

/// Mean absolute difference between paired elements; the paper's
/// "point-wise average distance" used to match semi-new vehicles to the most
/// similar old vehicle. The shorter series length is used when they differ.
double PointwiseAverageDistance(const std::vector<double>& a,
                                const std::vector<double>& b);

/// Euclidean distance over the common prefix of the two series, normalized
/// by its length (root mean squared difference).
double NormalizedEuclideanDistance(const std::vector<double>& a,
                                   const std::vector<double>& b);

/// Streaming mean/variance accumulator (Welford).
class RunningStats {
 public:
  void Add(double value);

  size_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Population variance of the values added so far.
  double variance() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace nextmaint

#endif  // NEXTMAINT_COMMON_STATISTICS_H_
