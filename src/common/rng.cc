#include "common/rng.h"

#include <cmath>

#include "common/macros.h"

namespace nextmaint {

namespace {

/// SplitMix64 step; used only for seeding the main generator.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
  // xoshiro256** must not start from the all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  NM_CHECK(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

uint64_t Rng::UniformInt(uint64_t n) {
  NM_CHECK(n > 0);
  // Rejection sampling: draw until the value falls below the largest
  // multiple of n representable in 64 bits.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  uint64_t v;
  do {
    v = NextUint64();
  } while (v >= limit);
  return v % n;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  NM_CHECK(lo <= hi);
  const uint64_t range =
      static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (range == 0) return static_cast<int64_t>(NextUint64());  // full range
  return lo + static_cast<int64_t>(UniformInt(range));
}

double Rng::Normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  // Box-Muller; u is kept away from 0 so log(u) is finite.
  double u, v;
  do {
    u = NextDouble();
  } while (u <= 1e-300);
  v = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u));
  const double theta = 2.0 * M_PI * v;
  spare_normal_ = r * std::sin(theta);
  has_spare_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::Exponential(double rate) {
  NM_CHECK(rate > 0.0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 1e-300);
  return -std::log(u) / rate;
}

int64_t Rng::Poisson(double lambda) {
  NM_CHECK(lambda >= 0.0);
  if (lambda == 0.0) return 0;
  if (lambda > 64.0) {
    // Normal approximation with continuity correction; adequate for the
    // simulator's message-count draws.
    const double v = Normal(lambda, std::sqrt(lambda));
    return v < 0.0 ? 0 : static_cast<int64_t>(v + 0.5);
  }
  const double limit = std::exp(-lambda);
  double product = NextDouble();
  int64_t count = 0;
  while (product > limit) {
    ++count;
    product *= NextDouble();
  }
  return count;
}

double Rng::Gamma(double shape, double scale) {
  NM_CHECK(shape > 0.0 && scale > 0.0);
  if (shape < 1.0) {
    // Boost to shape >= 1 and correct with a power of a uniform draw.
    const double u = std::max(NextDouble(), 1e-300);
    return Gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia & Tsang squeeze method.
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x, v;
    do {
      x = Normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = NextDouble();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (u > 1e-300 &&
        std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v * scale;
    }
  }
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    NM_CHECK(w >= 0.0);
    total += w;
  }
  NM_CHECK(total > 0.0);
  double target = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // numerical edge: land on the final bucket
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace nextmaint
