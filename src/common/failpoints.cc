#include "common/failpoints.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string_view>
#include <vector>

#include "common/macros.h"
#include "common/thread_annotations.h"
#include "common/strings.h"

namespace nextmaint {
namespace failpoints {

namespace {

/// How an armed site injects failures, parsed from one or more specs.
struct ArmedSite {
  /// nth selectors. Empty or containing 0 means "fire on every hit";
  /// otherwise fire when the ordinal context (or, without a context, the
  /// per-site hit counter) matches one of the selectors.
  std::set<uint64_t> nths;
  StatusCode code = StatusCode::kUnknown;
  uint64_t hits = 0;
  uint64_t fired = 0;
  /// Hits observed outside any ordinal context; drives nth selection on
  /// single-threaded call paths. Context hits deliberately do not bump it:
  /// they would make the count depend on thread interleaving.
  uint64_t uncontexted_hits = 0;
};

struct Registry {
  Mutex mu;
  std::map<std::string, ArmedSite> armed GUARDED_BY(mu);
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();  // nextmaint-lint: allow(naked-new): leaky singleton, destruction order with detached threads is unsafe
  return *registry;
}

/// Thread-local deterministic ordinal established by ScopedOrdinal;
/// 0 = no context.
thread_local uint64_t t_ordinal = 0;

/// One failing-arm spec: "site[:nth[:kind]]".
struct ParsedSpec {
  std::string site;
  uint64_t nth = 0;
  StatusCode code = StatusCode::kUnknown;
};

Result<StatusCode> ParseKind(std::string_view kind) {
  if (kind == "error") return StatusCode::kUnknown;
  if (kind == "io") return StatusCode::kIOError;
  if (kind == "data") return StatusCode::kDataError;
  if (kind == "numeric") return StatusCode::kNumericError;
  if (kind == "notfound") return StatusCode::kNotFound;
  return Status::InvalidArgument(
      "unknown failpoint kind '" + std::string(kind) +
      "' (expected error, io, data, numeric or notfound)");
}

Result<ParsedSpec> ParseSpec(std::string_view raw) {
  const std::vector<std::string> parts = Split(Trim(raw), ':');
  if (parts.empty() || parts.size() > 3 || parts[0].empty()) {
    return Status::InvalidArgument("malformed failpoint spec '" +
                                   std::string(raw) +
                                   "' (expected site[:nth[:kind]])");
  }
  ParsedSpec spec;
  spec.site = parts[0];
  if (!IsRegisteredSite(spec.site)) {
    return Status::InvalidArgument(
        "unknown failpoint site '" + spec.site + "' (known sites: " +
        Join(RegisteredSites(), ", ") + ")");
  }
  if (parts.size() >= 2 && !parts[1].empty()) {
    const Result<int64_t> nth = ParseInt64(parts[1]);
    if (!nth.ok() || nth.ValueOrDie() < 0) {
      return Status::InvalidArgument(
          "failpoint nth must be a non-negative integer in spec '" +
          std::string(raw) + "'");
    }
    spec.nth = static_cast<uint64_t>(nth.ValueOrDie());
  }
  if (parts.size() == 3) {
    NM_ASSIGN_OR_RETURN(spec.code, ParseKind(parts[2]));
  }
  return spec;
}

Status MakeInjectedError(const char* site, StatusCode code) {
  const std::string msg =
      std::string("injected failure at failpoint '") + site + "'";
  return Status(code, msg);
}

void PublishArmedCount(Registry& registry) REQUIRES(registry.mu) {
  internal::g_armed_state.store(static_cast<int>(registry.armed.size()),
                                std::memory_order_relaxed);
}

}  // namespace

namespace internal {

std::atomic<int> g_armed_state{-1};

bool InitFromEnv() {
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mu);
  int v = g_armed_state.load(std::memory_order_relaxed);
  if (v >= 0) return v > 0;  // another thread latched while we waited
  // getenv is racy against setenv, but this runs once under the registry
  // lock and the process never calls setenv after main starts.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* env = std::getenv("NEXTMAINT_FAILPOINTS");
  if (env != nullptr && *env != '\0') {
    // Arm() re-enters this latch-free path under the lock below, so inline
    // the spec application here. A bad env spec cannot return a Status from
    // library initialization; fail loudly instead of arming half a spec.
    std::map<std::string, ArmedSite> armed;
    for (const std::string& raw : Split(env, ',')) {
      Result<ParsedSpec> parsed = ParseSpec(raw);
      if (!parsed.ok()) {
        std::fprintf(stderr, "NEXTMAINT_FAILPOINTS: %s\n",
                     parsed.status().ToString().c_str());
        std::abort();
      }
      const ParsedSpec& spec = parsed.ValueOrDie();
      ArmedSite& site = armed[spec.site];
      site.nths.insert(spec.nth);
      site.code = spec.code;
    }
    registry.armed = std::move(armed);
  }
  PublishArmedCount(registry);
  return !registry.armed.empty();
}

uint64_t CurrentOrdinal() { return t_ordinal; }

}  // namespace internal

Status Arm(const std::string& specs) {
  // Consume any pending environment spec first so Arm() merges with it
  // instead of racing the lazy latch.
  (void)Enabled();
  std::vector<ParsedSpec> parsed;
  for (const std::string& raw : Split(specs, ',')) {
    NM_ASSIGN_OR_RETURN(ParsedSpec spec, ParseSpec(raw));
    parsed.push_back(std::move(spec));
  }
  if (parsed.empty()) {
    return Status::InvalidArgument("empty failpoint spec");
  }
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mu);
  for (const ParsedSpec& spec : parsed) {
    ArmedSite& site = registry.armed[spec.site];
    site.nths.insert(spec.nth);
    site.code = spec.code;
  }
  PublishArmedCount(registry);
  return Status::OK();
}

void Disarm(const std::string& site) {
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mu);
  registry.armed.erase(site);
  PublishArmedCount(registry);
}

void DisarmAll() {
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mu);
  registry.armed.clear();
  PublishArmedCount(registry);
}

const std::vector<std::string>& RegisteredSites() {
  // Source of truth for the catalogue; keep sorted and in sync with the
  // NEXTMAINT_FAILPOINT call sites and docs/fault-injection.md.
  static const std::vector<std::string>* sites = new std::vector<std::string>{  // nextmaint-lint: allow(naked-new): leaky singleton
      "csv.open_file",
      "csv.read_row",
      "ml.fit",
      "preprocess.aggregate",
      "scheduler.forecast_vehicle",
      "scheduler.ingest",
      "scheduler.load_models",
      "scheduler.save_models",
      "scheduler.train_vehicle",
      "serve.append",
      "serve.daemon.accept",
      "serve.daemon.decode",
      "serve.daemon.enqueue",
      "serve.daemon.refresh",
      "serve.refresh",
      "serve.refresh.warm",
      "storage.checkpoint.commit",
      "storage.checkpoint.map",
      "storage.checkpoint.open",
      "storage.checkpoint.segment_write",
  };
  return *sites;
}

bool IsRegisteredSite(const std::string& site) {
  const std::vector<std::string>& sites = RegisteredSites();
  for (const std::string& known : sites) {
    if (known == site) return true;
  }
  return false;
}

uint64_t HitCount(const std::string& site) {
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mu);
  auto it = registry.armed.find(site);
  return it == registry.armed.end() ? 0 : it->second.hits;
}

uint64_t FiredCount(const std::string& site) {
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mu);
  auto it = registry.armed.find(site);
  return it == registry.armed.end() ? 0 : it->second.fired;
}

Status Check(const char* site) {
  if (!Enabled()) return Status::OK();
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mu);
  auto it = registry.armed.find(site);
  if (it == registry.armed.end()) return Status::OK();
  ArmedSite& armed = it->second;
  ++armed.hits;
  // "Fire always" when any selector is 0 (or none was given).
  bool fire = armed.nths.count(0) > 0;
  if (!fire) {
    const uint64_t ordinal = t_ordinal;
    if (ordinal != 0) {
      // Deterministic path: match the caller's task ordinal, which depends
      // only on the work order — never on which thread runs the task.
      fire = armed.nths.count(ordinal) > 0;
    } else {
      ++armed.uncontexted_hits;
      fire = armed.nths.count(armed.uncontexted_hits) > 0;
    }
  }
  if (!fire) return Status::OK();
  ++armed.fired;
  return MakeInjectedError(site, armed.code);
}

ScopedOrdinal::ScopedOrdinal(uint64_t ordinal) : saved_(t_ordinal) {
  t_ordinal = ordinal;
}

ScopedOrdinal::~ScopedOrdinal() { t_ordinal = saved_; }

void ResetForTesting() {
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mu);
  registry.armed.clear();
  internal::g_armed_state.store(-1, std::memory_order_relaxed);
}

}  // namespace failpoints
}  // namespace nextmaint
