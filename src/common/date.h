#ifndef NEXTMAINT_COMMON_DATE_H_
#define NEXTMAINT_COMMON_DATE_H_

#include <cstdint>
#include <string>

#include "common/status.h"

/// \file date.h
/// Day-granularity civil-calendar arithmetic.
///
/// The telematics pipeline aggregates CAN data per calendar day, so the whole
/// library works with dates, not timestamps. Internally a Date is a count of
/// days since the civil epoch 1970-01-01 (negative before), using Howard
/// Hinnant's proleptic-Gregorian algorithms.

namespace nextmaint {

/// Day of week; numbering matches ISO 8601 (Monday = 1 ... Sunday = 7).
enum class Weekday : int {
  kMonday = 1,
  kTuesday = 2,
  kWednesday = 3,
  kThursday = 4,
  kFriday = 5,
  kSaturday = 6,
  kSunday = 7,
};

/// A civil-calendar date with day granularity.
class Date {
 public:
  /// Constructs the epoch date 1970-01-01.
  Date() = default;

  /// Constructs a date from a serial day number (days since 1970-01-01).
  static Date FromDayNumber(int64_t days);

  /// Constructs a date from civil year/month/day. Returns
  /// InvalidArgument for out-of-range month/day combinations.
  [[nodiscard]] static Result<Date> FromYmd(int year, int month, int day);

  /// Parses "YYYY-MM-DD".
  [[nodiscard]] static Result<Date> Parse(const std::string& text);

  /// Days since 1970-01-01.
  int64_t day_number() const { return days_; }

  int year() const;
  int month() const;  ///< 1..12
  int day() const;    ///< 1..31

  Weekday weekday() const;
  bool IsWeekend() const;

  /// 1-based ordinal day within the year (1..366).
  int DayOfYear() const;

  /// Formats as "YYYY-MM-DD".
  std::string ToString() const;

  /// Returns this date shifted by `days` (may be negative).
  Date AddDays(int64_t days) const { return FromDayNumber(days_ + days); }

  /// Days from `other` to this date (positive when this is later).
  int64_t DaysSince(const Date& other) const { return days_ - other.days_; }

  friend bool operator==(const Date& a, const Date& b) {
    return a.days_ == b.days_;
  }
  friend auto operator<=>(const Date& a, const Date& b) {
    return a.days_ <=> b.days_;
  }

 private:
  explicit Date(int64_t days) : days_(days) {}

  void ToCivil(int* year, int* month, int* day) const;

  int64_t days_ = 0;
};

std::ostream& operator<<(std::ostream& os, const Date& date);

}  // namespace nextmaint

#endif  // NEXTMAINT_COMMON_DATE_H_
