#ifndef NEXTMAINT_COMMON_THREAD_ANNOTATIONS_H_
#define NEXTMAINT_COMMON_THREAD_ANNOTATIONS_H_

#include <condition_variable>
#include <mutex>

/// \file thread_annotations.h
/// Compile-time thread-safety: Clang lock annotations + annotated wrappers.
///
/// TSan only catches races a test happens to execute; Clang's Thread Safety
/// Analysis (-Wthread-safety) proves lock discipline at compile time for
/// every path. This header supplies the two halves of that contract:
///
///  1. The attribute macros (GUARDED_BY, REQUIRES, EXCLUDES, ACQUIRE,
///     RELEASE, ...). They expand to Clang capability attributes under
///     Clang and to nothing elsewhere, so GCC builds are unaffected.
///  2. Annotated locking vocabulary: `Mutex`, `MutexLock`, and `CondVar`.
///     The analysis only sees locks it can name, so all locking in this
///     codebase flows through these wrappers — raw std::mutex /
///     std::lock_guard / std::condition_variable are invisible to the
///     analysis and are rejected by the `guarded-mutex` and
///     `lock-annotation-drift` lint rules (docs/static-analysis.md).
///
/// The checked build is `-DNEXTMAINT_THREAD_SAFETY=ON` with Clang, which
/// turns on `-Wthread-safety -Werror=thread-safety` (the CI `thread-safety`
/// job). Rules of thumb when annotating:
///
///  - Every mutex-guarded member is declared `GUARDED_BY(mu)`.
///  - A function that must be called with a lock held is `REQUIRES(mu)`;
///    one that takes the lock itself is `EXCLUDES(mu)` in its declaration.
///  - Constructors and destructors are exempt from the analysis, which is
///    how guarded fields get initialized before an object is shared.
///  - Condition waits are written as explicit loops —
///    `while (!cond) cv.Wait(mu);` — because the analysis does not
///    propagate held capabilities into predicate lambdas.
///  - Escape hatch of last resort: NO_THREAD_SAFETY_ANALYSIS on the
///    function. Not permitted in serve/ or common/parallel (see
///    docs/static-analysis.md for the policy).

#if defined(__clang__)
#define NEXTMAINT_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define NEXTMAINT_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

/// Declares a type as a capability (lockable). The string names the
/// capability kind in diagnostics ("mutex").
#define CAPABILITY(x) NEXTMAINT_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define SCOPED_CAPABILITY NEXTMAINT_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define GUARDED_BY(x) NEXTMAINT_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose pointee is protected by `x` (the pointer itself is
/// not).
#define PT_GUARDED_BY(x) NEXTMAINT_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function that must be entered with the listed capabilities held (and
/// leaves them held).
#define REQUIRES(...) \
  NEXTMAINT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function that must be entered with the listed capabilities NOT held —
/// it acquires (and releases) them itself. Catches self-deadlock.
#define EXCLUDES(...) NEXTMAINT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function that acquires the capability and leaves it held on return.
#define ACQUIRE(...) \
  NEXTMAINT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function that releases a held capability.
#define RELEASE(...) \
  NEXTMAINT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function that acquires the capability iff it returns `x` (true/false).
#define TRY_ACQUIRE(...) \
  NEXTMAINT_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Lock-ordering declarations (documented hierarchy, checked with
/// -Wthread-safety-beta).
#define ACQUIRED_BEFORE(...) \
  NEXTMAINT_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  NEXTMAINT_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function returning a reference to the capability guarding its result.
#define RETURN_CAPABILITY(x) NEXTMAINT_THREAD_ANNOTATION(lock_returned(x))

/// Disables the analysis for one function. Last resort; see the policy in
/// docs/static-analysis.md before reaching for this.
#define NO_THREAD_SAFETY_ANALYSIS \
  NEXTMAINT_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace nextmaint {

/// std::mutex with a capability annotation, so the analysis can track who
/// holds it. Prefer the RAII `MutexLock`; Lock()/Unlock() exist for the
/// rare split acquire/release.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { raw_.lock(); }
  void Unlock() RELEASE() { raw_.unlock(); }
  [[nodiscard]] bool TryLock() TRY_ACQUIRE(true) { return raw_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex raw_;  // nextmaint-lint: allow(guarded-mutex)
};

/// RAII lock over `Mutex` — the annotated std::lock_guard.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with `Mutex`.
///
/// Deliberately has no predicate overload: the analysis cannot see
/// capabilities inside a lambda, so waits are written as explicit loops,
/// which it can check:
///
///     MutexLock lock(mu_);
///     while (queue_.empty() && !stopping_) cv_.Wait(mu_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu` (which the caller must hold), blocks until
  /// notified, and reacquires `mu` before returning. Subject to spurious
  /// wakeups — always wait in a `while (!condition)` loop.
  void Wait(Mutex& mu) REQUIRES(mu);

  /// Wakes one waiter. Callers may (but need not) hold the mutex; the
  /// state change the waiter tests must have been made under it.
  void NotifyOne() { cv_.notify_one(); }

  /// Wakes all waiters.
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace nextmaint

#endif  // NEXTMAINT_COMMON_THREAD_ANNOTATIONS_H_
