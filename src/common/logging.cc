#include "common/logging.h"

#include <cstdio>

namespace nextmaint {

namespace {
LogLevel g_threshold = LogLevel::kWarning;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogThreshold(LogLevel level) { g_threshold = level; }

LogLevel GetLogThreshold() { return g_threshold; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= static_cast<int>(g_threshold)),
      level_(level) {
  if (enabled_) {
    // Strip the directory part for terse output.
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
}

}  // namespace internal
}  // namespace nextmaint
