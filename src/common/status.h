#ifndef NEXTMAINT_COMMON_STATUS_H_
#define NEXTMAINT_COMMON_STATUS_H_

#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

/// \file status.h
/// Error-handling primitives for the nextmaint library.
///
/// Following the Arrow/RocksDB idiom, no exceptions cross the public API.
/// Fallible operations return `Status` (no payload) or `Result<T>`
/// (payload or error). Programmer errors (violated preconditions) abort via
/// the NM_CHECK macros in macros.h instead of returning a Status.

namespace nextmaint {

/// Machine-readable category of an error carried by a Status.
enum class StatusCode : int {
  kOk = 0,
  /// A caller-supplied argument is invalid (bad range, wrong shape, ...).
  kInvalidArgument = 1,
  /// The operation requires state that has not been established yet
  /// (e.g. predicting with an untrained model).
  kFailedPrecondition = 2,
  /// A referenced entity (vehicle id, column name, file) does not exist.
  kNotFound = 3,
  /// Input data is malformed (corrupt CSV row, inconsistent series).
  kDataError = 4,
  /// An I/O operation failed.
  kIOError = 5,
  /// A numeric routine failed to converge or produced non-finite values.
  kNumericError = 6,
  /// The entity being created already exists.
  kAlreadyExists = 7,
  /// Catch-all for errors that fit no other category.
  kUnknown = 8,
  /// Durable state is unrecoverably corrupt (failed checksum, torn write,
  /// truncated segment). Distinct from kDataError, which flags malformed
  /// *input* data: kDataLoss means bytes we previously wrote back cannot be
  /// trusted anymore.
  kDataLoss = 9,
};

/// Returns the canonical lowercase name of a status code
/// (e.g. "invalid-argument").
const char* StatusCodeName(StatusCode code);

/// Outcome of an operation that produces no value.
///
/// An OK status is represented without allocation; error statuses carry a
/// code and a human-readable message. Statuses are cheap to move and
/// relatively cheap to copy.
///
/// The class is [[nodiscard]]: a caller that drops a returned Status on the
/// floor fails to compile under NEXTMAINT_WERROR. Deliberately ignoring an
/// error requires the explicit NEXTMAINT_IGNORE_STATUS macro (macros.h).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message. `code` must not be
  /// `StatusCode::kOk`; use the default constructor for success.
  Status(StatusCode code, std::string message);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status DataError(std::string msg) {
    return Status(StatusCode::kDataError, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NumericError(std::string msg) {
    return Status(StatusCode::kNumericError, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Unknown(std::string msg) {
    return Status(StatusCode::kUnknown, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return rep_ == nullptr; }

  /// The status code; kOk for success.
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }

  /// The error message; empty for success.
  const std::string& message() const;

  /// Returns "OK" or "<code-name>: <message>".
  std::string ToString() const;

  /// Prepends `context` to the error message; no-op on OK statuses.
  /// Useful when propagating errors up a call chain.
  Status WithContext(const std::string& context) const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  // nullptr means OK; avoids allocation on the success path.
  std::unique_ptr<Rep> rep_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Outcome of an operation that produces a `T` on success.
///
/// Holds either a value or a non-OK Status. Accessing the value of an
/// errored Result aborts the process (programmer error), so callers must
/// test `ok()` first or use the NM_ASSIGN_OR_RETURN macro. Like Status,
/// the class is [[nodiscard]].
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs a successful result holding `value` (implicit by design so
  /// that `return value;` works in functions returning Result<T>).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs an errored result (implicit so `return status;` works).
  /// `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }

  /// The carried status: OK when a value is present.
  const Status& status() const { return status_; }

  /// Returns the value. Process-aborts when `!ok()`.
  const T& ValueOrDie() const& {
    AbortIfError();
    return *value_;
  }
  T& ValueOrDie() & {
    AbortIfError();
    return *value_;
  }
  T&& ValueOrDie() && {
    AbortIfError();
    return *std::move(value_);
  }

  /// Moves the value out of the result. Process-aborts when `!ok()`.
  T MoveValueOrDie() {
    AbortIfError();
    return *std::move(value_);
  }

  /// Returns the value, or `fallback` when errored.
  /// Implemented via optional::value_or: dereferencing value_ behind an
  /// ok() test trips GCC 12's -Wmaybe-uninitialized false positive at -O2.
  T ValueOr(T fallback) const& { return value_.value_or(std::move(fallback)); }

 private:
  void AbortIfError() const;

  Status status_;
  // optional avoids requiring T to be default-constructible.
  std::optional<T> value_;
};

namespace internal {
/// Aborts the process with a diagnostic; used by Result<T>::ValueOrDie.
[[noreturn]] void DieOnBadResult(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::AbortIfError() const {
  if (!ok()) internal::DieOnBadResult(status_);
}

}  // namespace nextmaint

#endif  // NEXTMAINT_COMMON_STATUS_H_
