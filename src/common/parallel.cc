#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <utility>

namespace nextmaint {

namespace {

/// Depth of ParallelFor chunk execution on this thread. Non-zero means we
/// are inside a chunk body, so a further ParallelFor must run inline: the
/// pool's workers may all be busy executing the outer loop, and waiting on
/// them from inside one of their chunks would deadlock.
thread_local int tls_parallel_depth = 0;

int HardwareThreadCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// Serial execution with the exact chunk boundaries of the parallel path.
/// Every chunk runs (no early exit) so that the set of executed chunks and
/// the reported status — the lowest-indexed failure — match the pool's
/// behaviour at any thread count.
Status RunSerialChunks(size_t begin, size_t end, size_t grain,
                       const ThreadPool::Body& body) {
  Status first;
  for (size_t chunk_begin = begin; chunk_begin < end;) {
    const size_t chunk_end =
        chunk_begin + std::min(grain, end - chunk_begin);
    Status status = body(chunk_begin, chunk_end);
    if (first.ok() && !status.ok()) first = std::move(status);
    chunk_begin = chunk_end;
  }
  return first;
}

}  // namespace

/// One ParallelFor invocation: an atomically claimed chunk counter plus
/// per-chunk result slots. Shared by the calling thread and any workers
/// that picked up a ticket for it.
struct ThreadPool::Job {
  /// All fields are set here, before the job is shared with any worker
  /// (constructors are exempt from the thread-safety analysis).
  Job(size_t begin_in, size_t end_in, size_t grain_in, size_t num_chunks_in,
      const Body* body_in)
      : begin(begin_in),
        end(end_in),
        grain(grain_in),
        num_chunks(num_chunks_in),
        body(body_in),
        statuses(num_chunks_in),
        exceptions(num_chunks_in),
        chunks_remaining(num_chunks_in) {}

  const size_t begin;
  const size_t end;
  const size_t grain;
  const size_t num_chunks;
  const Body* const body;

  /// Lock-free chunk claim ticket; may run past num_chunks.
  std::atomic<size_t> next_chunk{0};
  /// Written once each, by the thread that ran the chunk; read by the
  /// owner only after chunks_remaining hits zero.
  std::vector<Status> statuses;
  std::vector<std::exception_ptr> exceptions;

  Mutex mu;
  CondVar done_cv;
  /// Chunks not yet finished; the owner waits for zero.
  size_t chunks_remaining GUARDED_BY(mu);
};

ThreadPool::ThreadPool(int thread_count)
    : thread_count_(thread_count <= 0 ? HardwareThreadCount()
                                      : thread_count) {}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::started() const {
  MutexLock lock(mu_);
  return started_;
}

void ThreadPool::EnsureStarted() {
  MutexLock lock(mu_);
  if (started_) return;
  // The calling thread is one of the thread_count_ execution lanes, so
  // only thread_count_ - 1 background workers are needed.
  workers_.reserve(static_cast<size_t>(thread_count_ - 1));
  for (int i = 0; i + 1 < thread_count_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  started_ = true;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      MutexLock lock(mu_);
      while (!stopping_ && queue_.empty()) work_cv_.Wait(mu_);
      if (stopping_) return;
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    RunChunks(job.get());
  }
}

void ThreadPool::RunChunks(Job* job) {
  ++tls_parallel_depth;
  for (;;) {
    const size_t chunk = job->next_chunk.fetch_add(1);
    if (chunk >= job->num_chunks) break;
    const size_t chunk_begin = job->begin + chunk * job->grain;
    const size_t chunk_end =
        chunk_begin + std::min(job->grain, job->end - chunk_begin);
    try {
      job->statuses[chunk] = (*job->body)(chunk_begin, chunk_end);
    } catch (...) {
      job->exceptions[chunk] = std::current_exception();
    }
    bool last = false;
    {
      MutexLock lock(job->mu);
      last = --job->chunks_remaining == 0;
    }
    // The decrement happened under the lock the owner's wait loop holds,
    // so the notification cannot be lost.
    if (last) job->done_cv.NotifyAll();
  }
  --tls_parallel_depth;
}

Status ThreadPool::ParallelFor(size_t begin, size_t end, size_t grain,
                               const Body& body, int max_parallelism) {
  if (begin >= end) return Status::OK();
  if (grain == 0) grain = 1;
  const size_t range = end - begin;
  const size_t num_chunks = (range - 1) / grain + 1;
  const int parallelism = max_parallelism <= 0
                              ? thread_count_
                              : std::min(max_parallelism, thread_count_);
  if (parallelism <= 1 || num_chunks <= 1 || tls_parallel_depth > 0) {
    return RunSerialChunks(begin, end, grain, body);
  }

  EnsureStarted();
  // Heap-owned and reference-counted: a helper that pops a ticket after
  // every chunk has been claimed still dereferences the job (to discover
  // there is nothing left), possibly after this call returned.
  auto job = std::make_shared<Job>(begin, end, grain, num_chunks, &body);

  // One ticket per helper; the calling thread covers the remaining lane.
  const size_t tickets =
      std::min<size_t>(static_cast<size_t>(parallelism) - 1, num_chunks - 1);
  {
    MutexLock lock(mu_);
    for (size_t i = 0; i < tickets; ++i) queue_.push_back(job);
  }
  if (tickets == 1) {
    work_cv_.NotifyOne();
  } else {
    work_cv_.NotifyAll();
  }

  RunChunks(job.get());
  {
    // Helpers may still be finishing chunks the caller could not claim.
    MutexLock lock(job->mu);
    while (job->chunks_remaining != 0) job->done_cv.Wait(job->mu);
  }

  for (size_t c = 0; c < num_chunks; ++c) {
    if (job->exceptions[c]) std::rethrow_exception(job->exceptions[c]);
  }
  for (size_t c = 0; c < num_chunks; ++c) {
    if (!job->statuses[c].ok()) return std::move(job->statuses[c]);
  }
  return Status::OK();
}

namespace {

Mutex g_default_pool_mu;
int g_default_thread_count GUARDED_BY(g_default_pool_mu) = 0;  // 0 = hw
std::unique_ptr<ThreadPool> g_default_pool GUARDED_BY(g_default_pool_mu);

}  // namespace

ThreadPool& ThreadPool::Default() {
  MutexLock lock(g_default_pool_mu);
  if (g_default_pool == nullptr) {
    g_default_pool = std::make_unique<ThreadPool>(g_default_thread_count);
  }
  return *g_default_pool;
}

void ThreadPool::SetDefaultThreadCount(int thread_count) {
  MutexLock lock(g_default_pool_mu);
  g_default_thread_count = std::max(0, thread_count);
  // Tear down so the next Default() rebuilds at the new size. Callers must
  // not have ParallelFor calls in flight (see header).
  g_default_pool.reset();
}

int ThreadPool::DefaultThreadCount() {
  MutexLock lock(g_default_pool_mu);
  return g_default_thread_count == 0 ? HardwareThreadCount()
                                     : g_default_thread_count;
}

int ResolveThreadCount(int requested) {
  return requested > 0 ? requested : ThreadPool::DefaultThreadCount();
}

Status ParallelFor(size_t begin, size_t end, size_t grain,
                   const ThreadPool::Body& body, int num_threads) {
  const int resolved = ResolveThreadCount(num_threads);
  if (resolved <= 1) {
    // Serial requests never touch (or lazily create) the default pool.
    if (begin >= end) return Status::OK();
    return RunSerialChunks(begin, end, grain == 0 ? 1 : grain, body);
  }
  return ThreadPool::Default().ParallelFor(begin, end, grain, body, resolved);
}

}  // namespace nextmaint
