#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <utility>

namespace nextmaint {

namespace {

/// Depth of ParallelFor chunk execution on this thread. Non-zero means we
/// are inside a chunk body, so a further ParallelFor must run inline: the
/// pool's workers may all be busy executing the outer loop, and waiting on
/// them from inside one of their chunks would deadlock.
thread_local int tls_parallel_depth = 0;

int HardwareThreadCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// Serial execution with the exact chunk boundaries of the parallel path.
/// Every chunk runs (no early exit) so that the set of executed chunks and
/// the reported status — the lowest-indexed failure — match the pool's
/// behaviour at any thread count.
Status RunSerialChunks(size_t begin, size_t end, size_t grain,
                       const ThreadPool::Body& body) {
  Status first;
  for (size_t chunk_begin = begin; chunk_begin < end;) {
    const size_t chunk_end =
        chunk_begin + std::min(grain, end - chunk_begin);
    Status status = body(chunk_begin, chunk_end);
    if (first.ok() && !status.ok()) first = std::move(status);
    chunk_begin = chunk_end;
  }
  return first;
}

}  // namespace

/// One ParallelFor invocation: an atomically claimed chunk counter plus
/// per-chunk result slots. Shared by the calling thread and any workers
/// that picked up a ticket for it.
struct ThreadPool::Job {
  size_t begin = 0;
  size_t end = 0;
  size_t grain = 1;
  size_t num_chunks = 0;
  const Body* body = nullptr;

  std::atomic<size_t> next_chunk{0};
  std::atomic<size_t> chunks_remaining{0};
  /// Written once each, by the thread that ran the chunk.
  std::vector<Status> statuses;
  std::vector<std::exception_ptr> exceptions;

  std::mutex mu;
  std::condition_variable done_cv;
};

ThreadPool::ThreadPool(int thread_count)
    : thread_count_(thread_count <= 0 ? HardwareThreadCount()
                                      : thread_count) {}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::started() const {
  std::lock_guard<std::mutex> lock(mu_);
  return started_;
}

void ThreadPool::EnsureStarted() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return;
  // The calling thread is one of the thread_count_ execution lanes, so
  // only thread_count_ - 1 background workers are needed.
  workers_.reserve(static_cast<size_t>(thread_count_ - 1));
  for (int i = 0; i + 1 < thread_count_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  started_ = true;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    RunChunks(job.get());
  }
}

void ThreadPool::RunChunks(Job* job) {
  ++tls_parallel_depth;
  for (;;) {
    const size_t chunk = job->next_chunk.fetch_add(1);
    if (chunk >= job->num_chunks) break;
    const size_t chunk_begin = job->begin + chunk * job->grain;
    const size_t chunk_end =
        chunk_begin + std::min(job->grain, job->end - chunk_begin);
    try {
      job->statuses[chunk] = (*job->body)(chunk_begin, chunk_end);
    } catch (...) {
      job->exceptions[chunk] = std::current_exception();
    }
    if (job->chunks_remaining.fetch_sub(1) == 1) {
      // Last chunk: wake the owner. The lock pairs with the owner's wait
      // so the notification cannot be lost.
      std::lock_guard<std::mutex> lock(job->mu);
      job->done_cv.notify_all();
    }
  }
  --tls_parallel_depth;
}

Status ThreadPool::ParallelFor(size_t begin, size_t end, size_t grain,
                               const Body& body, int max_parallelism) {
  if (begin >= end) return Status::OK();
  if (grain == 0) grain = 1;
  const size_t range = end - begin;
  const size_t num_chunks = (range - 1) / grain + 1;
  const int parallelism = max_parallelism <= 0
                              ? thread_count_
                              : std::min(max_parallelism, thread_count_);
  if (parallelism <= 1 || num_chunks <= 1 || tls_parallel_depth > 0) {
    return RunSerialChunks(begin, end, grain, body);
  }

  EnsureStarted();
  // Heap-owned and reference-counted: a helper that pops a ticket after
  // every chunk has been claimed still dereferences the job (to discover
  // there is nothing left), possibly after this call returned.
  auto job = std::make_shared<Job>();
  job->begin = begin;
  job->end = end;
  job->grain = grain;
  job->num_chunks = num_chunks;
  job->body = &body;
  job->chunks_remaining.store(num_chunks);
  job->statuses.resize(num_chunks);
  job->exceptions.resize(num_chunks);

  // One ticket per helper; the calling thread covers the remaining lane.
  const size_t tickets =
      std::min<size_t>(static_cast<size_t>(parallelism) - 1, num_chunks - 1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < tickets; ++i) queue_.push_back(job);
  }
  if (tickets == 1) {
    work_cv_.notify_one();
  } else {
    work_cv_.notify_all();
  }

  RunChunks(job.get());
  {
    // Helpers may still be finishing chunks the caller could not claim.
    std::unique_lock<std::mutex> lock(job->mu);
    job->done_cv.wait(
        lock, [&job] { return job->chunks_remaining.load() == 0; });
  }

  for (size_t c = 0; c < num_chunks; ++c) {
    if (job->exceptions[c]) std::rethrow_exception(job->exceptions[c]);
  }
  for (size_t c = 0; c < num_chunks; ++c) {
    if (!job->statuses[c].ok()) return std::move(job->statuses[c]);
  }
  return Status::OK();
}

namespace {

std::mutex g_default_pool_mu;
int g_default_thread_count = 0;  // 0 = hardware concurrency
std::unique_ptr<ThreadPool> g_default_pool;

}  // namespace

ThreadPool& ThreadPool::Default() {
  std::lock_guard<std::mutex> lock(g_default_pool_mu);
  if (g_default_pool == nullptr) {
    g_default_pool = std::make_unique<ThreadPool>(g_default_thread_count);
  }
  return *g_default_pool;
}

void ThreadPool::SetDefaultThreadCount(int thread_count) {
  std::lock_guard<std::mutex> lock(g_default_pool_mu);
  g_default_thread_count = std::max(0, thread_count);
  // Tear down so the next Default() rebuilds at the new size. Callers must
  // not have ParallelFor calls in flight (see header).
  g_default_pool.reset();
}

int ThreadPool::DefaultThreadCount() {
  std::lock_guard<std::mutex> lock(g_default_pool_mu);
  return g_default_thread_count == 0 ? HardwareThreadCount()
                                     : g_default_thread_count;
}

int ResolveThreadCount(int requested) {
  return requested > 0 ? requested : ThreadPool::DefaultThreadCount();
}

Status ParallelFor(size_t begin, size_t end, size_t grain,
                   const ThreadPool::Body& body, int num_threads) {
  const int resolved = ResolveThreadCount(num_threads);
  if (resolved <= 1) {
    // Serial requests never touch (or lazily create) the default pool.
    if (begin >= end) return Status::OK();
    return RunSerialChunks(begin, end, grain == 0 ? 1 : grain, body);
  }
  return ThreadPool::Default().ParallelFor(begin, end, grain, body, resolved);
}

}  // namespace nextmaint
