#ifndef NEXTMAINT_COMMON_LOGGING_H_
#define NEXTMAINT_COMMON_LOGGING_H_

#include <sstream>
#include <string>

/// \file logging.h
/// Minimal leveled logging to stderr.
///
///   NM_LOG(INFO) << "trained vehicle " << id << " in " << secs << "s";
///
/// The global threshold defaults to kWarning so that library internals stay
/// quiet in tests and benchmarks; examples raise it to kInfo.

namespace nextmaint {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

/// Sets the minimum level that is actually emitted.
void SetLogThreshold(LogLevel level);

/// Current minimum emitted level.
LogLevel GetLogThreshold();

namespace internal {

/// Accumulates one log line and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace nextmaint

#define NM_LOG(severity)                                              \
  ::nextmaint::internal::LogMessage(                                  \
      ::nextmaint::LogLevel::k##severity, __FILE__, __LINE__)

#endif  // NEXTMAINT_COMMON_LOGGING_H_
