#ifndef NEXTMAINT_COMMON_MACROS_H_
#define NEXTMAINT_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

/// \file macros.h
/// Control-flow macros for Status/Result plumbing and invariant checks.

/// Aborts the process when `condition` is false. Reserved for programmer
/// errors (violated invariants), never for recoverable input errors.
#define NM_CHECK(condition)                                                  \
  do {                                                                       \
    if (!(condition)) {                                                      \
      std::fprintf(stderr, "NM_CHECK failed at %s:%d: %s\n", __FILE__,       \
                   __LINE__, #condition);                                    \
      std::abort();                                                          \
    }                                                                        \
  } while (false)

/// NM_CHECK with an explanatory message.
#define NM_CHECK_MSG(condition, msg)                                         \
  do {                                                                       \
    if (!(condition)) {                                                      \
      std::fprintf(stderr, "NM_CHECK failed at %s:%d: %s (%s)\n", __FILE__,  \
                   __LINE__, #condition, msg);                               \
      std::abort();                                                          \
    }                                                                        \
  } while (false)

#define NM_CONCAT_IMPL(a, b) a##b
#define NM_CONCAT(a, b) NM_CONCAT_IMPL(a, b)

/// Explicitly discards a Status (or Result) that is intentionally ignored.
///
/// `Status` is [[nodiscard]] and `nextmaint_lint` rejects bare discarding
/// call statements, so every dropped error must be voided through this macro.
/// Acceptable only when failure is handled out of band or genuinely benign
/// (e.g. best-effort cleanup on an already-failing path); say why in a
/// comment at the call site.
#define NEXTMAINT_IGNORE_STATUS(expr) static_cast<void>(expr)

/// Evaluates an expression returning Status; propagates non-OK statuses to
/// the caller.
#define NM_RETURN_NOT_OK(expr)                       \
  do {                                               \
    ::nextmaint::Status nm_status_ = (expr);         \
    if (!nm_status_.ok()) return nm_status_;         \
  } while (false)

/// Evaluates an expression returning Result<T>; on success binds the value
/// to `lhs`, otherwise propagates the error status to the caller.
///
///   NM_ASSIGN_OR_RETURN(auto table, csv::ReadTable(path));
#define NM_ASSIGN_OR_RETURN(lhs, rexpr)                               \
  NM_ASSIGN_OR_RETURN_IMPL(NM_CONCAT(nm_result_, __LINE__), lhs, rexpr)

#define NM_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                             \
  if (!result_name.ok()) return result_name.status();     \
  lhs = std::move(result_name).ValueOrDie()

#endif  // NEXTMAINT_COMMON_MACROS_H_
