#ifndef NEXTMAINT_COMMON_MACROS_H_
#define NEXTMAINT_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

/// \file macros.h
/// Control-flow macros for Status/Result plumbing and invariant checks.

/// Aborts the process when `condition` is false. Reserved for programmer
/// errors (violated invariants), never for recoverable input errors.
#define NM_CHECK(condition)                                                  \
  do {                                                                       \
    if (!(condition)) {                                                      \
      std::fprintf(stderr, "NM_CHECK failed at %s:%d: %s\n", __FILE__,       \
                   __LINE__, #condition);                                    \
      std::abort();                                                          \
    }                                                                        \
  } while (false)

/// NM_CHECK with an explanatory message.
#define NM_CHECK_MSG(condition, msg)                                         \
  do {                                                                       \
    if (!(condition)) {                                                      \
      std::fprintf(stderr, "NM_CHECK failed at %s:%d: %s (%s)\n", __FILE__,  \
                   __LINE__, #condition, msg);                               \
      std::abort();                                                          \
    }                                                                        \
  } while (false)

#define NM_CONCAT_IMPL(a, b) a##b
#define NM_CONCAT(a, b) NM_CONCAT_IMPL(a, b)

/// Evaluates an expression returning Status; propagates non-OK statuses to
/// the caller.
#define NM_RETURN_NOT_OK(expr)                       \
  do {                                               \
    ::nextmaint::Status nm_status_ = (expr);         \
    if (!nm_status_.ok()) return nm_status_;         \
  } while (false)

/// Evaluates an expression returning Result<T>; on success binds the value
/// to `lhs`, otherwise propagates the error status to the caller.
///
///   NM_ASSIGN_OR_RETURN(auto table, csv::ReadTable(path));
#define NM_ASSIGN_OR_RETURN(lhs, rexpr)                               \
  NM_ASSIGN_OR_RETURN_IMPL(NM_CONCAT(nm_result_, __LINE__), lhs, rexpr)

#define NM_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                             \
  if (!result_name.ok()) return result_name.status();     \
  lhs = std::move(result_name).ValueOrDie()

#endif  // NEXTMAINT_COMMON_MACROS_H_
