#ifndef NEXTMAINT_COMMON_FAILPOINTS_H_
#define NEXTMAINT_COMMON_FAILPOINTS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

/// \file failpoints.h
/// Deterministic fault injection for the fleet pipeline.
///
/// The deployed system consumes messy CAN-bus telematics: files go missing,
/// rows truncate, model fits diverge. Every such failure seam carries a
/// named *failpoint* — a site where tests (and operators running chaos
/// drills) can inject a Status error on demand:
///
///   Status ReadRow(...) {
///     NEXTMAINT_FAILPOINT("csv.read_row");
///     ...
///   }
///
/// Arming. A failpoint fires only while armed, via the NEXTMAINT_FAILPOINTS
/// environment variable, the CLI's `--failpoints` flag, or Arm() directly.
/// The spec grammar (comma-separated list):
///
///   site[:nth[:kind]]
///
///   site   a catalogued name (RegisteredSites()); unknown names are
///          rejected so specs cannot rot silently.
///   nth    which hit fires. 0 or omitted = every hit. Inside an ordinal
///          context (see ScopedOrdinal) `nth` selects the context — e.g.
///          "scheduler.train_vehicle:2" fails exactly the second vehicle of
///          the training order. Outside any context it selects the nth
///          evaluation of the site (1-based) counted process-wide.
///   kind   the injected Status code: error (default, kUnknown), io, data,
///          numeric, notfound.
///
/// Determinism. Parallel regions (TrainAll, FleetForecast) wrap each task
/// in a ScopedOrdinal carrying the task's position in the deterministic
/// work order. Firing decisions inside a context depend only on that
/// ordinal — never on thread scheduling — so an armed failpoint produces
/// bit-identical outcomes at any thread count (locked in by
/// tests/chaos_test.cc).
///
/// Cost. Disarmed, every NEXTMAINT_FAILPOINT compiles to a single relaxed
/// atomic load. Building with -DNEXTMAINT_ENABLE_FAILPOINTS=OFF (which
/// defines NEXTMAINT_FAILPOINTS_DISABLED) removes the framework entirely,
/// mirroring the telemetry kill switch.
///
/// See docs/fault-injection.md for the site catalogue and the degradation
/// semantics each site exercises.

namespace nextmaint {
namespace failpoints {

namespace internal {
/// Number of armed failpoints, or -1 before the NEXTMAINT_FAILPOINTS
/// environment variable has been consulted. Header-visible so Enabled()
/// inlines to one relaxed load on the hot path.
extern std::atomic<int> g_armed_state;
/// Parses NEXTMAINT_FAILPOINTS (once, latched) and returns whether any
/// failpoint is armed afterwards.
bool InitFromEnv();
/// Current thread's ordinal context (0 = none).
uint64_t CurrentOrdinal();
}  // namespace internal

/// False when the framework was compiled out
/// (-DNEXTMAINT_ENABLE_FAILPOINTS=OFF); tests skip themselves on it.
constexpr bool CompiledIn() {
#ifdef NEXTMAINT_FAILPOINTS_DISABLED
  return false;
#else
  return true;
#endif
}

/// True while at least one failpoint is armed. Safe and cheap to call from
/// any thread; this is the only check disarmed hot paths pay.
inline bool Enabled() {
#ifdef NEXTMAINT_FAILPOINTS_DISABLED
  return false;
#else
  const int v = internal::g_armed_state.load(std::memory_order_relaxed);
  if (v >= 0) return v > 0;
  return internal::InitFromEnv();
#endif
}

/// Arms every failpoint named in `specs` ("site[:nth[:kind]]", comma
/// separated — the NEXTMAINT_FAILPOINTS / --failpoints grammar). Repeating
/// a site accumulates nth selectors, so
/// "scheduler.train_vehicle:2,scheduler.train_vehicle:5" fails vehicles 2
/// and 5. Fails with InvalidArgument on unknown sites or malformed specs
/// (nothing is armed on failure).
[[nodiscard]] Status Arm(const std::string& specs);

/// Disarms one site; unknown or unarmed sites are a no-op.
void Disarm(const std::string& site);

/// Disarms everything and zeroes hit/fire counters. Re-latches nothing:
/// the environment spec is consumed only once per process.
void DisarmAll();

/// The canonical failpoint catalogue, sorted. Every NEXTMAINT_FAILPOINT
/// site in the tree appears here (the chaos sweep arms each in turn), and
/// Arm() rejects names outside it.
const std::vector<std::string>& RegisteredSites();

/// True when `site` is in RegisteredSites().
bool IsRegisteredSite(const std::string& site);

/// Times an *armed* `site` was evaluated since it was armed (hits do not
/// accumulate while disarmed). Lets tests assert a site is actually wired.
uint64_t HitCount(const std::string& site);

/// Times an armed `site` actually injected a failure.
uint64_t FiredCount(const std::string& site);

/// Evaluates one failpoint: OK when disarmed or not selected, otherwise
/// the injected error. Called by NEXTMAINT_FAILPOINT after the Enabled()
/// fast path; exposed for the framework's own tests.
[[nodiscard]] Status Check(const char* site);

/// Establishes the deterministic ordinal context (1-based) for the current
/// thread, e.g. the vehicle's position in the training order. Nested scopes
/// save and restore the outer ordinal. Passing 0 clears the context.
class ScopedOrdinal {
 public:
  explicit ScopedOrdinal(uint64_t ordinal);
  ~ScopedOrdinal();

  ScopedOrdinal(const ScopedOrdinal&) = delete;
  ScopedOrdinal& operator=(const ScopedOrdinal&) = delete;

 private:
  uint64_t saved_ = 0;
};

/// Resets the registry to the never-initialized state (armed specs cleared,
/// environment latch released). Test-only: lets env-parsing tests run
/// regardless of what earlier tests in the same process did.
void ResetForTesting();

}  // namespace failpoints
}  // namespace nextmaint

/// Evaluates the named failpoint and returns its injected Status (or a
/// Result, via the implicit conversion) from the enclosing function when it
/// fires. Expands to a no-op under NEXTMAINT_FAILPOINTS_DISABLED. The
/// expansion checks the Status it creates, so call statements are clean
/// under nextmaint_lint's unchecked-status rule (docs/static-analysis.md).
#ifdef NEXTMAINT_FAILPOINTS_DISABLED
#define NEXTMAINT_FAILPOINT(site) \
  do {                            \
  } while (false)
#else
#define NEXTMAINT_FAILPOINT(site)                                  \
  do {                                                             \
    if (::nextmaint::failpoints::Enabled()) {                      \
      ::nextmaint::Status nm_failpoint_status_ =                   \
          ::nextmaint::failpoints::Check(site);                    \
      if (!nm_failpoint_status_.ok()) return nm_failpoint_status_; \
    }                                                              \
  } while (false)
#endif

#endif  // NEXTMAINT_COMMON_FAILPOINTS_H_
