#ifndef NEXTMAINT_COMMON_TELEMETRY_H_
#define NEXTMAINT_COMMON_TELEMETRY_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"

/// \file telemetry.h
/// Fleet observability: a process-wide metrics registry plus scoped tracing.
///
/// The deployed system ("currently under deployment") continuously ingests
/// CAN-bus utilization, retrains per-category models and answers fleet-wide
/// forecast queries across the thread pool — this header makes visible where
/// that time and those errors go. Three instrument kinds cover the needs:
///
///   Counter    monotonically increasing event count (rows parsed, drift
///              alarms, selection winners, ...)
///   Gauge      last-written value (vehicles per category after TrainAll)
///   Histogram  fixed-bucket distribution of observations; the workhorse for
///              wall-time latencies via ScopedTimer / TraceSpan
///
/// Instruments are registered lazily by dotted name ("layer.component.metric",
/// see docs/observability.md for the naming scheme), live for the process
/// lifetime (pointers returned by the registry never dangle, even across
/// Reset) and are updated with relaxed atomics, so concurrent updates from
/// `ParallelFor` workers are safe and lock-free.
///
/// Cost model — telemetry is OFF by default:
///   - Disabled: every instrument update and timer construction short-circuits
///     on one relaxed atomic load, so hot loops (split search, per-row
///     predict) keep their bench timings. Building with
///     -DNEXTMAINT_ENABLE_TELEMETRY=OFF (which defines
///     NEXTMAINT_TELEMETRY_DISABLED) folds that check to a compile-time
///     constant and dead-codes the instrumentation entirely.
///   - Enabled (SetEnabled(true), the NEXTMAINT_METRICS env var, or the CLI's
///     --metrics-json flag): name lookups take a short registry mutex; value
///     updates stay lock-free.
///
/// Telemetry never alters computation: forecasts and serialized models are
/// byte-identical with metrics on or off (locked in by the scheduler tests).

namespace nextmaint {
namespace telemetry {

namespace internal {
/// Tri-state enabled flag: -1 = not yet initialized from the environment,
/// otherwise 0/1. Kept in a header-visible atomic so Enabled() inlines to a
/// single relaxed load on the hot path.
extern std::atomic<int> g_enabled;
/// Reads NEXTMAINT_METRICS and latches the flag; returns the decision.
bool InitEnabledFromEnv();
}  // namespace internal

/// True when instruments record. Safe (and cheap) to call from any thread.
inline bool Enabled() {
#ifdef NEXTMAINT_TELEMETRY_DISABLED
  return false;
#else
  const int v = internal::g_enabled.load(std::memory_order_relaxed);
  if (v >= 0) return v != 0;
  return internal::InitEnabledFromEnv();
#endif
}

/// Turns recording on or off at runtime (overrides the env default).
void SetEnabled(bool enabled);

/// Monotonically increasing event counter.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    if (Enabled()) value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-written value (point-in-time measurements).
class Gauge {
 public:
  void Set(double value);
  void Add(double delta);
  double value() const;
  void Reset();

 private:
  std::atomic<uint64_t> bits_{0};  // bit pattern of the double
};

/// Fixed-bucket histogram: observations are counted into the first bucket
/// whose upper bound is >= the value; values above every bound land in an
/// implicit overflow bucket. Also tracks count/sum/min/max exactly.
class Histogram {
 public:
  /// `bounds` must be ascending and non-empty.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  friend class MetricsRegistry;

  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> bucket_counts_;  // bounds_+1 slots
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_bits_{0};
  std::atomic<uint64_t> min_bits_;
  std::atomic<uint64_t> max_bits_;
};

/// One finished TraceSpan, collected into the registry (capped; see
/// MetricsSnapshot::spans_dropped).
struct SpanRecord {
  std::string name;
  /// Name of the enclosing span on the same thread; empty for roots. Spans
  /// opened inside thread-pool workers have no parent (the parent lives on
  /// the scheduling thread), so per-vehicle spans appear as roots.
  std::string parent;
  /// Start offset from the registry epoch (process start), in seconds.
  double start_seconds = 0.0;
  double seconds = 0.0;
};

/// Point-in-time copy of one histogram's state.
struct HistogramSnapshot {
  std::vector<double> bounds;
  /// bounds.size() + 1 entries; the last is the overflow bucket.
  std::vector<uint64_t> bucket_counts;
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< 0 when count == 0
  double max = 0.0;  ///< 0 when count == 0
};

/// Structured snapshot of every registered instrument plus the span tree
/// (spans reference their parent by name). Maps are keyed by instrument
/// name, so iteration order is deterministic.
struct MetricsSnapshot {
  bool enabled = false;
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  std::vector<SpanRecord> spans;
  uint64_t spans_dropped = 0;
};

/// Process-wide instrument registry.
///
/// Thread-safe: registration and Snapshot take a mutex; instrument updates
/// are lock-free. Returned pointers stay valid for the process lifetime —
/// Reset() zeroes values but never removes instruments, so call sites may
/// cache them.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  /// Finds or lazily registers the named instrument. A histogram's bucket
  /// bounds are fixed at first registration; later calls ignore `bounds`.
  /// Passing empty `bounds` selects the default wall-time buckets
  /// (100 us .. 60 s).
  Counter* GetCounter(const std::string& name) EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name) EXCLUDES(mu_);
  Histogram* GetHistogram(const std::string& name,
                          const std::vector<double>& bounds = {})
      EXCLUDES(mu_);

  /// Appends one finished span (dropped beyond the collection cap).
  void RecordSpan(SpanRecord span) EXCLUDES(mu_);

  /// Consistent point-in-time copy of every instrument and collected span.
  MetricsSnapshot Snapshot() const EXCLUDES(mu_);

  /// Zeroes every instrument and clears the span collection. Instrument
  /// identities (and cached pointers) survive.
  void Reset() EXCLUDES(mu_);

  /// Seconds elapsed since the registry was created.
  double SecondsSinceEpoch() const;

 private:
  MetricsRegistry();

  /// Guards registration and span collection; instrument value updates are
  /// lock-free through the returned pointers (the pointees use relaxed
  /// atomics and never move once registered).
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      GUARDED_BY(mu_);
  std::vector<SpanRecord> spans_ GUARDED_BY(mu_);
  uint64_t spans_dropped_ GUARDED_BY(mu_) = 0;
  std::chrono::steady_clock::time_point epoch_;
};

/// One-call helpers: no-ops (including the name lookup) while disabled.
void Count(const std::string& name, uint64_t delta = 1);
void SetGauge(const std::string& name, double value);
void Observe(const std::string& name, double value);

/// RAII wall-time timer recording seconds into a histogram on destruction.
/// Construction while disabled is free (no clock read, no lookup).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram);
  explicit ScopedTimer(const std::string& histogram_name);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_ = nullptr;
  std::chrono::steady_clock::time_point start_;
};

/// RAII trace span: a ScopedTimer over the histogram "<name>.seconds" that
/// additionally records a SpanRecord with its parent (the innermost open
/// TraceSpan on the same thread), forming per-thread span trees.
class TraceSpan {
 public:
  explicit TraceSpan(std::string name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  std::string name_;
  TraceSpan* parent_ = nullptr;
  double start_seconds_ = 0.0;
  std::chrono::steady_clock::time_point start_;
  bool active_ = false;
};

/// Snapshot of the global registry (convenience for
/// MetricsRegistry::Global().Snapshot()).
MetricsSnapshot Snapshot();

/// `after - before`, element-wise: counter/histogram deltas for instruments
/// present in `after`, final gauge values, and the spans recorded after
/// `before` was taken. Histogram min/max are taken from `after`.
MetricsSnapshot SnapshotDelta(const MetricsSnapshot& before,
                              const MetricsSnapshot& after);

/// Human-readable multi-line rendering (one instrument per line).
std::string RenderText(const MetricsSnapshot& snapshot);

/// JSON rendering. Top-level keys: "telemetry", "counters", "gauges",
/// "histograms", "spans" — the schema is documented in
/// docs/observability.md and validated by CI.
std::string RenderJson(const MetricsSnapshot& snapshot);

/// Writes RenderJson(snapshot) to `path` (IOError on failure).
[[nodiscard]] Status WriteJsonFile(const MetricsSnapshot& snapshot,
                     const std::string& path);

}  // namespace telemetry
}  // namespace nextmaint

#endif  // NEXTMAINT_COMMON_TELEMETRY_H_
