#include "common/thread_annotations.h"

namespace nextmaint {

void CondVar::Wait(Mutex& mu) {
  // The caller holds mu (enforced by REQUIRES). Adopt that ownership into
  // a unique_lock just long enough for the wait protocol — release before
  // the unique_lock destructs so ownership stays with the caller's scope.
  std::unique_lock<std::mutex> relock(mu.raw_, std::adopt_lock);
  cv_.wait(relock);
  relock.release();
}

}  // namespace nextmaint
