#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace nextmaint {

namespace {
const std::string& EmptyString() {
  static const std::string* const kEmpty = new std::string();
  return *kEmpty;
}
}  // namespace

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kFailedPrecondition:
      return "failed-precondition";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kDataError:
      return "data-error";
    case StatusCode::kIOError:
      return "io-error";
    case StatusCode::kNumericError:
      return "numeric-error";
    case StatusCode::kAlreadyExists:
      return "already-exists";
    case StatusCode::kUnknown:
      return "unknown";
    case StatusCode::kDataLoss:
      return "data-loss";
  }
  return "invalid-code";
}

Status::Status(StatusCode code, std::string message)
    : rep_(std::make_unique<Rep>(Rep{code, std::move(message)})) {}

Status::Status(const Status& other)
    : rep_(other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr) {}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    rep_ = other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr;
  }
  return *this;
}

const std::string& Status::message() const {
  return rep_ ? rep_->message : EmptyString();
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code());
  out += ": ";
  out += message();
  return out;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  return Status(code(), context + ": " + message());
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

namespace internal {

void DieOnBadResult(const Status& status) {
  std::fprintf(stderr, "Result<T>::ValueOrDie on errored result: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace nextmaint
