#ifndef NEXTMAINT_COMMON_STRINGS_H_
#define NEXTMAINT_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

/// \file strings.h
/// Small string utilities used by the CSV layer and report printers.

namespace nextmaint {

/// Splits `text` on `delimiter`, preserving empty fields
/// ("a,,b" -> {"a", "", "b"}).
std::vector<std::string> Split(std::string_view text, char delimiter);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// Joins `parts` with `separator`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// Parses a double. Rejects trailing garbage and empty input.
[[nodiscard]] Result<double> ParseDouble(std::string_view text);

/// Parses a signed 64-bit integer. Rejects trailing garbage and empty input.
[[nodiscard]] Result<int64_t> ParseInt64(std::string_view text);

/// True when `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Formats a double with `precision` digits after the decimal point.
std::string FormatDouble(double value, int precision);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace nextmaint

#endif  // NEXTMAINT_COMMON_STRINGS_H_
