#ifndef NEXTMAINT_CORE_CATEGORY_H_
#define NEXTMAINT_CORE_CATEGORY_H_

#include <string>

#include "common/status.h"
#include "core/series.h"

/// \file category.h
/// Vehicle categorization by available history (Section 2):
///  - Old: at least one maintenance cycle completed since acquisition began;
///  - Semi-new: first cycle not completed, but at least T_v/2 seconds of
///    usage already observed;
///  - New: less than T_v/2 seconds of usage observed.
/// The category decides the modelling strategy (per-vehicle model vs.
/// similarity-based vs. unified cross-vehicle model).

namespace nextmaint {
namespace core {

enum class VehicleCategory {
  kOld,
  kSemiNew,
  kNew,
};

/// Canonical lowercase name ("old", "semi-new", "new").
const char* VehicleCategoryName(VehicleCategory category);

/// Categorizes from derived series (cycle list + total usage).
VehicleCategory Categorize(const VehicleSeries& series);

/// Categorizes from a raw utilization series and T_v without deriving the
/// full series (cheaper when only the category is needed). Fails on NaN or
/// non-positive T_v.
Result<VehicleCategory> CategorizeUsage(const data::DailySeries& u,
                                        double maintenance_interval_s);

}  // namespace core
}  // namespace nextmaint

#endif  // NEXTMAINT_CORE_CATEGORY_H_
