#ifndef NEXTMAINT_CORE_COLD_START_H_
#define NEXTMAINT_CORE_COLD_START_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/dataset_builder.h"
#include "core/errors.h"
#include "core/series.h"
#include "core/similarity.h"
#include "ml/binned_dataset.h"
#include "ml/regressor.h"
#include "storage/corpus.h"

/// \file cold_start.h
/// Methodology for new and semi-new vehicles (Section 4.4).
///
/// Both strategies train exclusively on *first-cycle* data of old training
/// vehicles, because "the first maintenance cycle of most vehicles appears
/// to have peculiar characteristics, with less usage":
///
///  - Model_Uni: one model over the merged first cycles of all training
///    vehicles; the only option for brand-new vehicles.
///  - Model_Sim: a model trained on the single most similar training
///    vehicle, where similarity compares utilization over the first half of
///    the first cycle (point-wise average distance by default).
///  - BL (semi-new only): AVG_v over the first half of the target's first
///    cycle, then D = L / AVG.

namespace nextmaint {
namespace core {

/// Feature/evaluation options shared by the cold-start strategies.
struct ColdStartOptions {
  /// Window size W of past utilization features.
  int window = 0;
  /// Scale features to [0, 1].
  bool normalize_features = true;
  /// E_MRE restriction for semi-new evaluation (paper: {1..29}).
  DaySet eval_days = DaySet::Last29();
  /// Similarity measure for Model_Sim (default: the paper's average-usage
  /// distance). Null restores the default.
  SimilarityMeasure similarity;
  /// Hyper-parameters forwarded to the trained models (keys a model does
  /// not recognise are ignored, so one map can serve several algorithms).
  ml::ParamMap model_params;
  uint64_t seed = 77;
  /// Tree-learner training backend (core selection + optional shared
  /// binning cache, e.g. the scheduler's unified-corpus cache).
  ml::TrainingBackend backend{};
};

/// First-cycle training material extracted from one old vehicle.
struct FirstCycleData {
  std::string vehicle_id;
  /// Utilization of the first half of the first cycle (the similarity key).
  std::vector<double> first_half_usage;
  /// Relational dataset over the complete first cycle.
  ml::Dataset dataset;
};

/// Extracts first-cycle training material from an old vehicle's usage
/// series. Fails when the vehicle has no completed cycle.
[[nodiscard]] Result<FirstCycleData> ExtractFirstCycle(const std::string& vehicle_id,
                                         const data::DailySeries& u,
                                         double maintenance_interval_s,
                                         const ColdStartOptions& options);

/// Trains Model_Uni: one `algorithm` model on the union of the given
/// first-cycle datasets.
[[nodiscard]] Result<std::unique_ptr<ml::Regressor>> TrainUnifiedModel(
    const std::string& algorithm, const std::vector<FirstCycleData>& corpus,
    const ColdStartOptions& options);

/// Trains Model_Sim for a target vehicle: finds the most similar training
/// vehicle by comparing `target_first_half_usage` against each candidate's
/// first-half usage, then trains `algorithm` on that single vehicle's first
/// cycle. Returns the model and the match that was used.
struct SimilarityModel {
  std::unique_ptr<ml::Regressor> model;
  SimilarityMatch match;
};
[[nodiscard]] Result<SimilarityModel> TrainSimilarityModel(
    const std::string& algorithm,
    const std::vector<double>& target_first_half_usage,
    const std::vector<FirstCycleData>& corpus,
    const ColdStartOptions& options);

/// Most-similar search over a compacted corpus's summary headers
/// (docs/storage.md): the candidates are the header-resident
/// first-half-cycle keys, so no column block — and no full series — is
/// ever touched. Vehicles whose key is empty (category "new" at
/// compaction time) are skipped; InvalidArgument when none carries a key.
/// The winner's full first cycle can then be materialized selectively via
/// storage::CorpusReader::Series for TrainSimilarityModel.
[[nodiscard]] Result<SimilarityMatch> MostSimilarFromCorpus(
    const std::vector<double>& target_first_half_usage,
    const std::vector<storage::CorpusVehicleSummary>& summaries,
    const ColdStartOptions& options);

/// The semi-new BL baseline: AVG over the first half of the target's first
/// cycle (Section 4.4.1). Fails when less than half a cycle of usage exists
/// (the vehicle would be "new") or the average is zero.
[[nodiscard]] Result<std::unique_ptr<ml::Regressor>> MakeSemiNewBaseline(
    const data::DailySeries& u, double maintenance_interval_s,
    const ColdStartOptions& options);

/// Utilization values of the first half of the first cycle: days until
/// cumulative usage reaches T_v/2 (inclusive). Fails when total usage is
/// below T_v/2.
[[nodiscard]] Result<std::vector<double>> FirstHalfCycleUsage(const data::DailySeries& u,
                                                double maintenance_interval_s);

/// Evaluation of one cold-start model on one test vehicle.
struct ColdStartEvaluation {
  std::string algorithm;
  /// E_MRE(eval_days) over the first cycle (semi-new metric); NaN when not
  /// computed.
  double emre = 0.0;
  /// E_Global over the first cycle (new-vehicle metric).
  double eglobal = 0.0;
  std::vector<double> truth;
  std::vector<double> predicted;
};

/// Evaluates a trained cold-start model on a test vehicle's complete first
/// cycle. `compute_emre` selects the semi-new metric (E_MRE) in addition to
/// E_Global; for new vehicles the paper argues E_MRE is meaningless and
/// only E_Global is reported.
[[nodiscard]] Result<ColdStartEvaluation> EvaluateColdStartModel(
    const ml::Regressor& model, const data::DailySeries& test_u,
    double maintenance_interval_s, const ColdStartOptions& options,
    bool compute_emre);

}  // namespace core
}  // namespace nextmaint

#endif  // NEXTMAINT_CORE_COLD_START_H_
