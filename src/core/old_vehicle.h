#ifndef NEXTMAINT_CORE_OLD_VEHICLE_H_
#define NEXTMAINT_CORE_OLD_VEHICLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/dataset_builder.h"
#include "core/errors.h"
#include "core/series.h"
#include "ml/binned_dataset.h"
#include "ml/regressor.h"

/// \file old_vehicle.h
/// Methodology for old vehicles (Section 4.3): per-vehicle models, first
/// 70% of samples as training set, grid search with 5-fold CV, selection of
/// the model minimizing E_MRE({1..29}) on the last 29 days per cycle.

namespace nextmaint {
namespace core {

/// Options for per-vehicle training/evaluation.
struct OldVehicleOptions {
  /// Chronological train fraction (paper: first 70% of the samples).
  double train_fraction = 0.7;
  /// Window size W of past utilization features.
  int window = 0;
  /// Restrict *training* records to target days in {1..29} — the regime of
  /// Table 1's right-hand column, which the paper shows halves the error.
  bool train_on_last29_only = false;
  /// Time-shift re-sampling augmentation applied to the training data.
  int resampling_shifts = 0;
  /// Run the paper's grid search + 5-fold CV; false trains library
  /// defaults (much faster, used by smoke tests).
  bool tune = true;
  /// Grid density passed to ml::DefaultGridFor (0 coarse, 1 paper grid).
  int grid_budget = 0;
  /// Early-stopping patience for the grid sweep
  /// (GridSearchOptions::early_stopping_patience); 0 keeps the paper's
  /// exhaustive search.
  int grid_early_stopping_patience = 0;
  /// Evaluation restriction for E_MRE (paper default {1..29}).
  DaySet eval_days = DaySet::Last29();
  /// Scale features to [0, 1] (see DatasetOptions::normalize_features).
  bool normalize_features = true;
  /// Optional contextual series (e.g. weather workability, aligned with the
  /// utilization series) appended as forward-looking features; see
  /// DatasetOptions::context / context_forecast_days.
  const std::vector<double>* context = nullptr;
  int context_forecast_days = 0;
  uint64_t seed = 2020;
  /// Tree-learner training backend (core selection + optional shared
  /// binning cache). With a cache attached, every grid-search candidate and
  /// CV fold on the same matrix bins the data once.
  ml::TrainingBackend backend{};
};

/// Outcome of evaluating one algorithm on one vehicle.
struct VehicleEvaluation {
  std::string algorithm;
  /// E_MRE(eval_days) on the test period.
  double emre = 0.0;
  /// E_Global on the test period.
  double eglobal = 0.0;
  /// Hyper-parameters chosen by the grid search (empty without tuning).
  ml::ParamMap best_params;
  /// Wall-clock seconds spent in training (including the grid search),
  /// reproducing the Section 5.1 timing analysis.
  double train_seconds = 0.0;
  /// Test-period ground truth / predictions, aligned pairwise (only days
  /// with a defined target). Kept so callers can compute E_MRE({d}) for
  /// any d (Figure 5) without re-training.
  std::vector<double> test_truth;
  std::vector<double> test_predicted;
  /// The trained model (null for callers that only need the numbers).
  std::shared_ptr<ml::Regressor> model;
};

/// Trains `algorithm` ("BL", "LR", "LSVR", "RF" or "XGB") on the vehicle's
/// training window and evaluates it on the held-out tail.
///
/// Requirements: the series must contain at least one completed cycle in
/// the training window and one evaluable day in the test window; fails with
/// InvalidArgument otherwise (callers skip such vehicles, as the paper's
/// old-vehicle protocol presumes enough history).
[[nodiscard]] Result<VehicleEvaluation> EvaluateAlgorithmOnVehicle(
    const std::string& algorithm, const data::DailySeries& u,
    double maintenance_interval_s, const OldVehicleOptions& options);

/// Runs every algorithm in `algorithms` and returns the evaluations plus
/// the index of the winner by E_MRE — the paper's per-vehicle model
/// selection rule.
struct ModelSelectionResult {
  std::vector<VehicleEvaluation> evaluations;
  size_t best_index = 0;
};
[[nodiscard]] Result<ModelSelectionResult> SelectBestModelForVehicle(
    const std::vector<std::string>& algorithms, const data::DailySeries& u,
    double maintenance_interval_s, const OldVehicleOptions& options);

/// Computes E_MRE(DaySet::Single(d)) for each d in [lo, hi] from a stored
/// evaluation (used for Figure 5). Days with no test sample yield NaN.
std::vector<double> PerDayResiduals(const VehicleEvaluation& eval, int lo,
                                    int hi);

}  // namespace core
}  // namespace nextmaint

#endif  // NEXTMAINT_CORE_OLD_VEHICLE_H_
