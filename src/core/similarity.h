#ifndef NEXTMAINT_CORE_SIMILARITY_H_
#define NEXTMAINT_CORE_SIMILARITY_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/time_series.h"

/// \file similarity.h
/// Vehicle-similarity measures for the semi-new strategy (Section 4.4.1):
/// "we estimate the pairwise similarity in terms of point-wise average
/// distance AVG_v between the utilization series. However, more advanced
/// similarity measures can be integrated as well." The measure is pluggable
/// precisely to support that extension (and the similarity ablation bench).

namespace nextmaint {
namespace core {

/// A dissimilarity over two utilization series: lower means more similar.
/// Measures must be symmetric and non-negative.
using SimilarityMeasure = std::function<double(
    const std::vector<double>&, const std::vector<double>&)>;

/// The paper's default: distance between the series' average utilization
/// levels, |AVG_a - AVG_b| ("comparing the similarity of average usage",
/// Section 5.2). Robust to phase misalignment of idle runs.
SimilarityMeasure AverageDistanceMeasure();

/// Point-wise mean absolute distance between the aligned series (sensitive
/// to idle-run phase; kept for the similarity ablation).
SimilarityMeasure PointwiseDistanceMeasure();

/// Root-mean-squared point-wise distance.
SimilarityMeasure EuclideanMeasure();

/// 1 - Pearson correlation over the common prefix (constant series fall
/// back to the average-distance measure so the result stays defined).
SimilarityMeasure CorrelationMeasure();

/// A named candidate series (an old vehicle's first-cycle usage).
struct SimilarityCandidate {
  std::string id;
  std::vector<double> series;
};

/// Result of a most-similar search.
struct SimilarityMatch {
  size_t index = 0;       ///< index into the candidate list
  std::string id;         ///< candidate id
  double distance = 0.0;  ///< measure value for the winner
};

/// Finds the candidate minimizing `measure(target, candidate)`. Ties break
/// toward the earlier candidate. Fails on an empty candidate list or empty
/// target.
[[nodiscard]] Result<SimilarityMatch> MostSimilar(const std::vector<double>& target,
                                    const std::vector<SimilarityCandidate>& candidates,
                                    const SimilarityMeasure& measure);

}  // namespace core
}  // namespace nextmaint

#endif  // NEXTMAINT_CORE_SIMILARITY_H_
