#include "core/scheduler.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

#include <optional>
#include <set>
#include <sstream>
#include <string_view>
#include <utility>

#include "common/failpoints.h"
#include "common/logging.h"
#include "common/macros.h"
#include "common/parallel.h"
#include "common/telemetry.h"
#include "core/baseline.h"
#include "core/dataset_builder.h"
#include "ml/registry.h"

namespace nextmaint {
namespace core {

FleetScheduler::FleetScheduler(SchedulerOptions options)
    : options_(std::move(options)),
      unified_binning_cache_(std::make_shared<ml::BinningCache>()) {
  options_.selection.window = options_.window;
  options_.cold_start.window = options_.window;
  // One tree core fleet-wide; every cold-start fit shares one binning
  // cache (per-vehicle caches attach in TrainOneVehicle).
  options_.selection.backend.core = options_.tree_core;
  options_.cold_start.backend.core = options_.tree_core;
  if (options_.tree_core == ml::TreeCore::kBinned) {
    options_.cold_start.backend.binning_cache = unified_binning_cache_;
  }
}

Status FleetScheduler::RegisterVehicle(const std::string& id, Date first_day) {
  if (id.empty()) return Status::InvalidArgument("empty vehicle id");
  if (vehicles_.count(id) > 0) {
    return Status::AlreadyExists("vehicle '" + id + "' already registered");
  }
  VehicleState state;
  state.first_day = first_day;
  state.usage = data::DailySeries(first_day, {});
  vehicles_.emplace(id, std::move(state));
  return Status::OK();
}

Status FleetScheduler::IngestUsage(const std::string& id, Date day,
                                   double seconds) {
  NEXTMAINT_FAILPOINT("scheduler.ingest");
  auto it = vehicles_.find(id);
  if (it == vehicles_.end()) {
    return Status::NotFound("vehicle '" + id + "' is not registered");
  }
  VehicleState& state = it->second;
  const Date expected =
      state.first_day.AddDays(static_cast<int64_t>(state.usage.size()));
  if (day != expected) {
    return Status::InvalidArgument(
        "out-of-order ingestion for '" + id + "': expected " +
        expected.ToString() + ", got " + day.ToString());
  }
  if (std::isnan(seconds) || seconds < 0.0 || seconds > 86400.0) {
    telemetry::Count("scheduler.ingest.rejected");
    return Status::InvalidArgument("utilization must be in [0, 86400]");
  }
  state.usage.Append(seconds);  // nextmaint-lint: allow(unchecked-status): DailySeries::Append is void; the harvested name collides with ServingEngine::Append
  // New data means the cached binnings of this vehicle's matrices can never
  // be hit again; drop them so the next training starts a fresh cache.
  binning_caches_.erase(id);
  telemetry::Count("scheduler.ingest.days");
  return Status::OK();
}

Status FleetScheduler::IngestSeries(const std::string& id,
                                    const data::DailySeries& series) {
  NEXTMAINT_FAILPOINT("scheduler.ingest");
  auto it = vehicles_.find(id);
  if (it == vehicles_.end()) {
    return Status::NotFound("vehicle '" + id + "' is not registered");
  }
  if (!series.IsComplete()) {
    return Status::DataError(
        "series contains missing values; run the cleaning step first");
  }
  it->second.first_day = series.start_date();
  it->second.usage = series;
  it->second.model.reset();
  it->second.pending_segment = storage::SegmentView();
  binning_caches_.erase(id);
  // Unlike Append, a wholesale series replacement can change the vehicle's
  // first cycle and therefore the cold-start corpus; reset the shared
  // cold-start cache too (entries are content-addressed, so this is about
  // memory, not correctness).
  unified_binning_cache_->Clear();
  telemetry::Count("scheduler.ingest.series");
  telemetry::Count("scheduler.ingest.days", series.size());
  return Status::OK();
}

Result<const FleetScheduler::VehicleState*> FleetScheduler::FindVehicle(
    const std::string& id) const {
  auto it = vehicles_.find(id);
  if (it == vehicles_.end()) {
    return Status::NotFound("vehicle '" + id + "' is not registered");
  }
  return &it->second;
}

Result<VehicleCategory> FleetScheduler::CategoryOf(
    const std::string& id) const {
  NM_ASSIGN_OR_RETURN(const VehicleState* state, FindVehicle(id));
  if (state->usage.empty()) return VehicleCategory::kNew;
  return CategorizeUsage(state->usage, options_.maintenance_interval_s);
}

std::vector<std::string> FleetScheduler::VehicleIds() const {
  std::vector<std::string> ids;
  ids.reserve(vehicles_.size());
  for (const auto& [id, state] : vehicles_) ids.push_back(id);
  return ids;
}

Status FleetScheduler::TrainAll() {
  if (options_.num_threads < 0) {
    return Status::InvalidArgument(
        "SchedulerOptions::num_threads must be >= 0 (0 = all cores), got " +
        std::to_string(options_.num_threads));
  }
  telemetry::TraceSpan train_span("scheduler.train");

  // Pass 1: first-cycle corpus from old vehicles (for cold-start models),
  // tallying the fleet's category mix along the way.
  ColdStartInputs inputs;
  size_t num_old = 0, num_semi_new = 0, num_new = 0;
  {
    telemetry::TraceSpan corpus_span("scheduler.train.corpus");
    for (const auto& [id, state] : vehicles_) {
      if (state.usage.empty()) {
        ++num_new;  // no data yet: categorically a new vehicle
        continue;
      }
      Result<VehicleCategory> categorized =
          CategorizeUsage(state.usage, options_.maintenance_interval_s);
      if (!categorized.ok()) {
        if (options_.strict) return categorized.status().WithContext(id);
        // Uncategorizable vehicles contribute nothing to the corpus or the
        // category mix; pass 2 hits the same error and quarantines them.
        continue;
      }
      const VehicleCategory category = categorized.ValueOrDie();
      switch (category) {
        case VehicleCategory::kOld:
          ++num_old;
          break;
        case VehicleCategory::kSemiNew:
          ++num_semi_new;
          break;
        case VehicleCategory::kNew:
          ++num_new;
          break;
      }
      if (category != VehicleCategory::kOld) continue;
      std::optional<FirstCycleData> data = ContributionForOldVehicle(id, state);
      if (data.has_value()) inputs.corpus.push_back(*std::move(data));
    }
  }
  telemetry::SetGauge("scheduler.fleet.vehicles.old",
                      static_cast<double>(num_old));
  telemetry::SetGauge("scheduler.fleet.vehicles.semi_new",
                      static_cast<double>(num_semi_new));
  telemetry::SetGauge("scheduler.fleet.vehicles.new",
                      static_cast<double>(num_new));

  // Unified model shared by every cold-start vehicle, then pass 2: every
  // vehicle retrained against the shared inputs.
  inputs.unified = TrainUnifiedFromCorpus(inputs.corpus);
  return TrainVehicles(VehicleIds(), inputs);
}

std::optional<FirstCycleData> FleetScheduler::ContributionForOldVehicle(
    const std::string& id, const VehicleState& state) const {
  Result<FirstCycleData> data =
      ExtractFirstCycle(id, state.usage, options_.maintenance_interval_s,
                        options_.cold_start);
  if (!data.ok()) return std::nullopt;
  return std::move(data).ValueOrDie();
}

Result<std::optional<FirstCycleData>> FleetScheduler::CorpusContribution(
    const std::string& id) const {
  NM_ASSIGN_OR_RETURN(const VehicleState* state, FindVehicle(id));
  if (state->usage.empty()) return std::optional<FirstCycleData>();
  NM_ASSIGN_OR_RETURN(
      VehicleCategory category,
      CategorizeUsage(state->usage, options_.maintenance_interval_s));
  if (category != VehicleCategory::kOld) {
    return std::optional<FirstCycleData>();
  }
  return ContributionForOldVehicle(id, *state);
}

std::shared_ptr<ml::Regressor> FleetScheduler::TrainUnifiedFromCorpus(
    const std::vector<FirstCycleData>& corpus) const {
  if (corpus.empty()) return nullptr;
  telemetry::TraceSpan unified_span("scheduler.train.unified");
  Result<std::unique_ptr<ml::Regressor>> uni = TrainUnifiedModel(
      options_.unified_algorithm, corpus, options_.cold_start);
  if (!uni.ok()) {
    NM_LOG(Warning) << "unified model training failed: "
                    << uni.status().ToString();
    return nullptr;
  }
  return std::move(uni).ValueOrDie();
}

Status FleetScheduler::TrainOneVehicle(const std::string& id,
                                       VehicleState& state,
                                       const ColdStartInputs& inputs) {
  telemetry::ScopedTimer vehicle_timer("scheduler.train.vehicle.seconds");
  state.model.reset();
  state.model_name.clear();
  state.pending_segment = storage::SegmentView();
  if (state.usage.empty()) return Status::OK();
  NM_ASSIGN_OR_RETURN(
      VehicleCategory category,
      CategorizeUsage(state.usage, options_.maintenance_interval_s));

  if (category == VehicleCategory::kOld) {
    // Select the best algorithm under the 70/30 protocol, then refit it
    // on the complete history for deployment. The vehicle's binning cache
    // (created by TrainVehicles; absent when training is entered another
    // way) makes every grid-search candidate and the refit bin each
    // training matrix once.
    OldVehicleOptions selection_options = options_.selection;
    if (auto cache_it = binning_caches_.find(id);
        cache_it != binning_caches_.end()) {
      selection_options.backend.binning_cache = cache_it->second;
    }
    std::string chosen = "BL";
    Result<ModelSelectionResult> selection = [&] {
      telemetry::ScopedTimer selection_timer(
          "scheduler.train.selection.seconds");
      return SelectBestModelForVehicle(
          options_.algorithms, state.usage,
          options_.maintenance_interval_s, selection_options);
    }();
    if (selection.ok()) {
      const ModelSelectionResult& result = selection.ValueOrDie();
      chosen = result.evaluations[result.best_index].algorithm;
    } else {
      NM_LOG(Warning) << id << ": model selection failed ("
                      << selection.status().ToString()
                      << "); falling back to BL";
    }
    telemetry::Count("scheduler.selection.winner." + chosen);

    if (chosen == "BL") {
      Result<double> avg = AverageUtilization(state.usage);
      if (avg.ok()) {
        const double l_scale =
            options_.selection.normalize_features
                ? 1.0 / options_.maintenance_interval_s
                : 1.0;
        state.model = std::make_shared<BaselinePredictor>(
            avg.ValueOrDie(), l_scale);
        state.model_name = "BL";
      }
      return Status::OK();
    }
    DatasetOptions dataset_options;
    dataset_options.window = options_.window;
    dataset_options.normalize_features =
        options_.selection.normalize_features;
    if (options_.selection.train_on_last29_only) {
      dataset_options.target_filter = DaySet::Last29();
    }
    ResamplingOptions resampling;
    resampling.num_shifts = options_.selection.resampling_shifts;
    resampling.seed = options_.selection.seed;
    NM_ASSIGN_OR_RETURN(
        ml::Dataset full_data,
        BuildResampledDataset(state.usage,
                              options_.maintenance_interval_s,
                              dataset_options, resampling));
    NM_ASSIGN_OR_RETURN(
        std::unique_ptr<ml::Regressor> model,
        ml::MakeRegressor(chosen, {}, selection_options.backend));
    NM_RETURN_NOT_OK(model->Fit(full_data).WithContext(id));
    state.model = std::move(model);
    state.model_name = chosen;
    return Status::OK();
  }

  if (category == VehicleCategory::kSemiNew) {
    // Prefer Model_Sim; fall back to Model_Uni, then BL.
    Result<std::vector<double>> first_half = FirstHalfCycleUsage(
        state.usage, options_.maintenance_interval_s);
    if (first_half.ok() && !inputs.corpus.empty()) {
      Result<SimilarityModel> sim = TrainSimilarityModel(
          options_.unified_algorithm, first_half.ValueOrDie(), inputs.corpus,
          options_.cold_start);
      if (sim.ok()) {
        SimilarityModel value = std::move(sim).ValueOrDie();
        state.model = std::move(value.model);
        state.model_name =
            options_.unified_algorithm + "_Sim(" + value.match.id + ")";
        return Status::OK();
      }
    }
    if (inputs.unified != nullptr) {
      state.model = inputs.unified;
      state.model_name = options_.unified_algorithm + "_Uni";
      return Status::OK();
    }
    Result<std::unique_ptr<ml::Regressor>> bl = MakeSemiNewBaseline(
        state.usage, options_.maintenance_interval_s, options_.cold_start);
    if (bl.ok()) {
      state.model = std::move(bl).ValueOrDie();
      state.model_name = "BL_semi";
    }
    return Status::OK();
  }

  // New vehicle: only the unified model applies (Section 4.4.2).
  if (inputs.unified != nullptr) {
    state.model = inputs.unified;
    state.model_name = options_.unified_algorithm + "_Uni";
  }
  return Status::OK();
}

Status FleetScheduler::TrainVehicles(const std::vector<std::string>& ids,
                                     const ColdStartInputs& inputs) {
  if (options_.num_threads < 0) {
    return Status::InvalidArgument(
        "SchedulerOptions::num_threads must be >= 0 (0 = all cores), got " +
        std::to_string(options_.num_threads));
  }
  // Resolve every id up front: an unknown or duplicated id must fail the
  // whole call, not quarantine mid-run (duplicates would race on the same
  // VehicleState across workers).
  std::vector<std::pair<const std::string*, VehicleState*>> work;
  work.reserve(ids.size());
  std::set<std::string_view> seen;
  for (const std::string& id : ids) {
    auto it = vehicles_.find(id);
    if (it == vehicles_.end()) {
      return Status::NotFound("vehicle '" + id + "' is not registered");
    }
    if (!seen.insert(id).second) {
      return Status::InvalidArgument("duplicate vehicle id '" + id +
                                     "' in TrainVehicles");
    }
    // Pre-create each vehicle's binning cache here, in the serial pass:
    // the training fan-out below only ever reads binning_caches_.
    if (options_.tree_core == ml::TreeCore::kBinned &&
        binning_caches_.find(id) == binning_caches_.end()) {
      binning_caches_.emplace(id, std::make_shared<ml::BinningCache>());
    }
    work.emplace_back(&it->first, &it->second);
  }

  // Each vehicle's training touches only its own state (corpus, unified
  // model and options are read-only here), so vehicles fan out across the
  // thread pool; the given id order fixes the task order, and no
  // cross-vehicle reduction exists, so results match the serial loop
  // exactly. Quarantines land in index-ordered slots so the assembled
  // report follows the deterministic task order, never completion order.
  std::vector<std::optional<VehicleDegradation>> quarantined(work.size());
  train_degradation_.vehicles.clear();
  NM_RETURN_NOT_OK(ParallelFor(
      0, work.size(), /*grain=*/1,
      [&](size_t chunk_begin, size_t chunk_end) -> Status {
        for (size_t v = chunk_begin; v < chunk_end; ++v) {
          const std::string& id = *work[v].first;
          VehicleState& state = *work[v].second;
          // The ordinal makes nth-selecting failpoint specs
          // ("scheduler.train_vehicle:3") target the vehicle's position in
          // the task order, independent of thread scheduling.
          failpoints::ScopedOrdinal ordinal(static_cast<uint64_t>(v) + 1);
          const Status status = [&]() -> Status {
            NEXTMAINT_FAILPOINT("scheduler.train_vehicle");
            return TrainOneVehicle(id, state, inputs);
          }();
          if (status.ok()) continue;
          if (options_.strict) return status.WithContext(id);
          // Quarantine the vehicle: drop whatever partial model state the
          // failed training left behind and serve it with the untrained BL
          // baseline so the fleet keeps a forecast for it.
          state.model.reset();
          state.model_name.clear();
          state.pending_segment = storage::SegmentView();
          VehicleDegradation degradation;
          degradation.vehicle_id = id;
          degradation.stage = "train";
          degradation.error = status;
          Result<double> avg = AverageUtilization(state.usage);
          if (avg.ok()) {
            const double l_scale =
                options_.selection.normalize_features
                    ? 1.0 / options_.maintenance_interval_s
                    : 1.0;
            state.model = std::make_shared<BaselinePredictor>(
                avg.ValueOrDie(), l_scale);
            state.model_name = "BL_fallback";
            degradation.fallback = true;
          }
          quarantined[v] = std::move(degradation);
        }
        return Status::OK();
      },
      options_.num_threads));
  for (std::optional<VehicleDegradation>& slot : quarantined) {
    if (!slot.has_value()) continue;
    if (slot->fallback) telemetry::Count("scheduler.train.fallback_bl");
    NM_LOG(Warning) << slot->vehicle_id << ": training degraded ("
                    << slot->error.ToString() << "); "
                    << (slot->fallback ? "serving BL fallback"
                                       : "left unmodeled");
    train_degradation_.vehicles.push_back(*std::move(slot));
  }
  telemetry::SetGauge(
      "scheduler.degraded_vehicles",
      static_cast<double>(train_degradation_.vehicles.size()));
  return Status::OK();
}

Result<bool> FleetScheduler::HasTrainedModel(const std::string& id) const {
  NM_ASSIGN_OR_RETURN(const VehicleState* state, FindVehicle(id));
  // A lazily loaded segment counts: the model exists on disk and
  // materializes on first use.
  return state->model != nullptr || state->pending_segment.valid();
}

Result<bool> FleetScheduler::WarmStartVehicle(const std::string& id,
                                              int extra_rounds) {
  auto it = vehicles_.find(id);
  if (it == vehicles_.end()) {
    return Status::NotFound("vehicle '" + id + "' is not registered");
  }
  VehicleState& state = it->second;
  NM_RETURN_NOT_OK(MaterializeModel(id, state));
  // Eligibility: only the per-vehicle ensemble models resume. Everything
  // else (BL, LR/LSVR, the shared unified/similarity models, untrained
  // vehicles) needs the cold path.
  if (state.model == nullptr || state.usage.empty()) return false;
  if (state.model_name != "RF" && state.model_name != "XGB") return false;
  NM_ASSIGN_OR_RETURN(
      VehicleCategory category,
      CategorizeUsage(state.usage, options_.maintenance_interval_s));
  if (category != VehicleCategory::kOld) return false;

  // Rebuild the refit dataset over the full (grown) history — the exact
  // dataset construction TrainOneVehicle's deployment refit uses, so a
  // resume sees the cold retrain's data plus the appended rows.
  DatasetOptions dataset_options;
  dataset_options.window = options_.window;
  dataset_options.normalize_features = options_.selection.normalize_features;
  if (options_.selection.train_on_last29_only) {
    dataset_options.target_filter = DaySet::Last29();
  }
  ResamplingOptions resampling;
  resampling.num_shifts = options_.selection.resampling_shifts;
  resampling.seed = options_.selection.seed;
  NM_ASSIGN_OR_RETURN(
      ml::Dataset full_data,
      BuildResampledDataset(state.usage, options_.maintenance_interval_s,
                            dataset_options, resampling));

  telemetry::ScopedTimer timer("scheduler.warm_start.seconds");
  NM_RETURN_NOT_OK(
      state.model->ContinueFit(full_data, extra_rounds).WithContext(id));
  telemetry::Count("scheduler.warm_start.count");
  return true;
}

Result<MaintenanceForecast> FleetScheduler::Forecast(
    const std::string& id) const {
  NEXTMAINT_FAILPOINT("scheduler.forecast_vehicle");
  telemetry::ScopedTimer forecast_timer("scheduler.forecast.vehicle.seconds");
  NM_ASSIGN_OR_RETURN(const VehicleState* state, FindVehicle(id));
  NM_RETURN_NOT_OK(MaterializeModel(id, *state));
  if (state->model == nullptr) {
    return Status::FailedPrecondition(
        "vehicle '" + id + "' has no trained model (run TrainAll; new "
        "vehicles need at least one old vehicle in the fleet)");
  }
  if (state->usage.size() < static_cast<size_t>(options_.window) + 1) {
    return Status::FailedPrecondition(
        "vehicle '" + id + "' has fewer days of data than the feature "
        "window");
  }
  // Forecast from the day *after* the last observation: append a virtual
  // "today" with zero usage so that C/L are defined for it, D is the
  // unknown and BuildFeatureRow sees yesterday as U(t-1).
  data::DailySeries extended = state->usage;
  extended.Append(0.0);  // nextmaint-lint: allow(unchecked-status): DailySeries::Append is void
  NM_ASSIGN_OR_RETURN(
      VehicleSeries today_series,
      DeriveSeries(extended, options_.maintenance_interval_s));
  const size_t today = today_series.size() - 1;

  DatasetOptions feature_options;
  feature_options.window = options_.window;
  feature_options.normalize_features =
      options_.selection.normalize_features;
  NM_ASSIGN_OR_RETURN(std::vector<double> row,
                      BuildFeatureRow(today_series, today, feature_options));
  NM_ASSIGN_OR_RETURN(
      double days_left,
      state->model->Predict(std::span<const double>(row.data(), row.size())));
  days_left = std::max(0.0, days_left);

  MaintenanceForecast forecast;
  forecast.vehicle_id = id;
  NM_ASSIGN_OR_RETURN(forecast.category, CategoryOf(id));
  forecast.model_name = state->model_name;
  forecast.days_left = days_left;
  forecast.usage_seconds_left = today_series.l[today];
  const Date last_day = state->usage.end_date();
  forecast.predicted_date =
      last_day.AddDays(static_cast<int64_t>(std::llround(days_left)));
  return forecast;
}

Result<std::vector<MaintenanceForecast>> FleetScheduler::FleetForecast()
    const {
  if (options_.num_threads < 0) {
    return Status::InvalidArgument(
        "SchedulerOptions::num_threads must be >= 0 (0 = all cores), got " +
        std::to_string(options_.num_threads));
  }
  if (vehicles_.empty()) {
    // A forecast over nothing is a caller bug, not an empty answer; see the
    // error-code contract in scheduler.h.
    return Status::FailedPrecondition(
        "fleet forecast on an empty fleet: no vehicles registered");
  }
  telemetry::TraceSpan forecast_span("scheduler.forecast");
  // Fan out one forecast task per trained vehicle. Results land in
  // index-ordered slots, so the pre-sort order is the registration (map)
  // order — never the completion order — and the sorted output is
  // identical at any thread count.
  std::vector<const std::string*> ids;
  for (const auto& [id, state] : vehicles_) {
    if (state.model != nullptr || state.pending_segment.valid()) {
      ids.push_back(&id);
    }
  }
  std::vector<std::optional<MaintenanceForecast>> slots(ids.size());
  std::vector<std::optional<VehicleDegradation>> quarantined(ids.size());
  forecast_degradation_.vehicles.clear();
  NM_RETURN_NOT_OK(ParallelFor(
      0, ids.size(), /*grain=*/1,
      [&](size_t chunk_begin, size_t chunk_end) -> Status {
        for (size_t v = chunk_begin; v < chunk_end; ++v) {
          const std::string& id = *ids[v];
          failpoints::ScopedOrdinal ordinal(static_cast<uint64_t>(v) + 1);
          Result<MaintenanceForecast> forecast = Forecast(id);
          if (forecast.ok()) {
            telemetry::Count("scheduler.forecast.count");
            slots[v] = std::move(forecast).ValueOrDie();
            continue;
          }
          if (options_.strict) return forecast.status().WithContext(id);
          // Quarantine the vehicle and serve it with the untrained BL
          // baseline (needs no model or feature window); only when even
          // that is impossible is the vehicle dropped from the output.
          VehicleDegradation degradation;
          degradation.vehicle_id = id;
          degradation.stage = "forecast";
          degradation.error = forecast.status();
          Result<MaintenanceForecast> fallback = FallbackForecast(id);
          if (fallback.ok()) {
            degradation.fallback = true;
            telemetry::Count("scheduler.fallback_forecasts");
            slots[v] = std::move(fallback).ValueOrDie();
          } else {
            telemetry::Count("scheduler.forecast.skipped");
          }
          quarantined[v] = std::move(degradation);
        }
        return Status::OK();
      },
      options_.num_threads));
  for (std::optional<VehicleDegradation>& slot : quarantined) {
    if (!slot.has_value()) continue;
    NM_LOG(Warning) << slot->vehicle_id << ": forecast degraded ("
                    << slot->error.ToString() << "); "
                    << (slot->fallback ? "serving BL fallback" : "skipped");
    forecast_degradation_.vehicles.push_back(*std::move(slot));
  }
  std::vector<MaintenanceForecast> forecasts;
  forecasts.reserve(slots.size());
  for (std::optional<MaintenanceForecast>& slot : slots) {
    if (slot.has_value()) forecasts.push_back(*std::move(slot));
  }
  std::sort(forecasts.begin(), forecasts.end(),
            [](const MaintenanceForecast& a, const MaintenanceForecast& b) {
              return a.predicted_date < b.predicted_date;
            });
  return forecasts;
}

Result<MaintenanceForecast> FleetScheduler::FallbackForecast(
    const std::string& id) const {
  NM_ASSIGN_OR_RETURN(const VehicleState* state, FindVehicle(id));
  if (state->usage.empty()) {
    return Status::FailedPrecondition(
        "vehicle '" + id + "' has no usage data for a BL fallback forecast");
  }
  NM_ASSIGN_OR_RETURN(const double avg, AverageUtilization(state->usage));
  // Same virtual-today construction as Forecast so L is defined for the day
  // after the last observation; D_BL = L / AVG needs nothing else — in
  // particular no trained model and no feature window, and no failpoint
  // sits on this path, so a quarantined vehicle always reaches it.
  data::DailySeries extended = state->usage;
  extended.Append(0.0);  // nextmaint-lint: allow(unchecked-status): DailySeries::Append is void
  NM_ASSIGN_OR_RETURN(
      VehicleSeries today_series,
      DeriveSeries(extended, options_.maintenance_interval_s));
  const size_t today = today_series.size() - 1;
  const double days_left = std::max(0.0, today_series.l[today] / avg);

  MaintenanceForecast forecast;
  forecast.vehicle_id = id;
  Result<VehicleCategory> category = CategoryOf(id);
  forecast.category =
      category.ok() ? category.ValueOrDie() : VehicleCategory::kNew;
  forecast.model_name = "BL_fallback";
  forecast.days_left = days_left;
  forecast.usage_seconds_left = today_series.l[today];
  forecast.predicted_date = state->usage.end_date().AddDays(
      static_cast<int64_t>(std::llround(days_left)));
  return forecast;
}

DegradationReport FleetScheduler::LastDegradationReport() const {
  DegradationReport merged = train_degradation_;
  merged.vehicles.insert(merged.vehicles.end(),
                         forecast_degradation_.vehicles.begin(),
                         forecast_degradation_.vehicles.end());
  return merged;
}

std::shared_ptr<const ml::BinningCache> FleetScheduler::VehicleBinningCache(
    const std::string& id) const {
  auto it = binning_caches_.find(id);
  return it == binning_caches_.end() ? nullptr : it->second;
}

std::shared_ptr<const ml::BinningCache> FleetScheduler::UnifiedBinningCache()
    const {
  return unified_binning_cache_;
}


Result<DriftReport> FleetScheduler::CheckDrift(
    const std::string& id, double reference_fraction,
    const DriftOptions& options) const {
  NM_ASSIGN_OR_RETURN(const VehicleState* state, FindVehicle(id));
  if (reference_fraction <= 0.0 || reference_fraction >= 1.0) {
    return Status::InvalidArgument("reference_fraction must be in (0, 1)");
  }
  const size_t train_days = static_cast<size_t>(
      reference_fraction * static_cast<double>(state->usage.size()));
  Result<DriftReport> report =
      DetectUsageDrift(state->usage, train_days, options);
  if (report.ok()) {
    telemetry::Count("scheduler.drift.checks");
    if (report.ValueOrDie().drift_detected) {
      telemetry::Count("scheduler.drift.alarms");
    }
  }
  return report;
}

Status FleetScheduler::MaterializeModel(const std::string& id,
                                        const VehicleState& state) const {
  if (state.model != nullptr || !state.pending_segment.valid()) {
    return Status::OK();
  }
  // First touch of this vehicle's checkpoint segment: the CRC check and
  // the parse both happen here, so corruption confined to one segment
  // degrades only that vehicle.
  Result<std::string_view> payload = state.pending_segment.Payload();
  if (!payload.ok()) return payload.status().WithContext(id);
  std::istringstream in{std::string(payload.ValueOrDie())};
  Result<std::unique_ptr<ml::Regressor>> model = LoadAnyModel(in);
  if (!model.ok()) return model.status().WithContext(id);
  state.model = std::move(model).ValueOrDie();
  state.pending_segment = storage::SegmentView();
  telemetry::Count("scheduler.checkpoint.lazy_materializations");
  return Status::OK();
}

Result<storage::VehicleRecord> FleetScheduler::CheckpointRecord(
    const std::string& id, const VehicleState& state) const {
  storage::VehicleRecord record;
  record.vehicle_id = id;
  record.model_name = state.model_name;
  if (state.model != nullptr) {
    // Unified models are shared across vehicles; each vehicle writes its
    // own copy so checkpoints stay self-contained.
    std::ostringstream payload;
    NM_RETURN_NOT_OK(state.model->Save(payload).WithContext(id));
    record.payload = std::move(payload).str();
  } else {
    // Never-materialized lazy segment: copy the bytes verbatim — no parse,
    // and re-saving a lazily loaded fleet stays byte-identical.
    Result<std::string_view> payload = state.pending_segment.Payload();
    if (!payload.ok()) return payload.status().WithContext(id);
    record.payload = std::string(payload.ValueOrDie());
  }
  return record;
}

Status FleetScheduler::WriteCheckpointPayload(std::ostream& out) const {
  NEXTMAINT_FAILPOINT("scheduler.save_models");
  for (const auto& [id, state] : vehicles_) {
    if (state.model == nullptr && !state.pending_segment.valid()) continue;
    NM_ASSIGN_OR_RETURN(storage::VehicleRecord record,
                        CheckpointRecord(id, state));
    out << "vehicle " << id << " " << record.model_name << "\n";
    out.write(record.payload.data(),
              static_cast<std::streamsize>(record.payload.size()));
  }
  out << "fleet-end\n";
  if (!out) return Status::IOError("fleet model serialization failed");
  return Status::OK();
}

Status FleetScheduler::SaveCheckpoint(const std::string& path) const {
  NEXTMAINT_FAILPOINT("scheduler.save_models");
  std::vector<storage::VehicleRecord> records;
  records.reserve(vehicles_.size());
  for (const auto& [id, state] : vehicles_) {
    if (state.model == nullptr && !state.pending_segment.valid()) continue;
    NM_ASSIGN_OR_RETURN(storage::VehicleRecord record,
                        CheckpointRecord(id, state));
    records.push_back(std::move(record));
  }
  NM_ASSIGN_OR_RETURN(std::shared_ptr<storage::CheckpointStore> store,
                      storage::CheckpointStore::Open(path));
  Result<uint64_t> generation = store->SaveAll(std::move(records));
  if (!generation.ok()) return generation.status().WithContext(path);
  telemetry::Count("scheduler.checkpoint.save_all");
  return Status::OK();
}

Status FleetScheduler::SaveVehicleCheckpoint(const std::string& path,
                                             const std::string& id) const {
  NM_ASSIGN_OR_RETURN(const VehicleState* state, FindVehicle(id));
  if (state->model == nullptr && !state->pending_segment.valid()) {
    return Status::FailedPrecondition(
        "vehicle '" + id + "' has no trained model to checkpoint");
  }
  NM_ASSIGN_OR_RETURN(storage::CheckpointFormat format,
                      storage::SniffCheckpointFormat(path));
  if (format != storage::CheckpointFormat::kSegmented) {
    // Nothing segmented to update in place (first save, or a legacy file
    // that must be migrated wholesale): write a full checkpoint.
    return SaveCheckpoint(path);
  }
  NEXTMAINT_FAILPOINT("scheduler.save_models");
  NM_ASSIGN_OR_RETURN(storage::VehicleRecord record,
                      CheckpointRecord(id, *state));
  NM_ASSIGN_OR_RETURN(std::shared_ptr<storage::CheckpointStore> store,
                      storage::CheckpointStore::Open(path));
  NM_RETURN_NOT_OK(store->SaveVehicle(std::move(record)).WithContext(path));
  Result<uint64_t> generation = store->Commit();
  if (!generation.ok()) return generation.status().WithContext(path);
  telemetry::Count("scheduler.checkpoint.save_vehicle");
  return Status::OK();
}

Status FleetScheduler::SaveLegacyCheckpoint(const std::string& path) const {
  // Write-to-temp + rename so a mid-stream failure never leaves a
  // truncated checkpoint at `path`: readers see either the previous
  // complete file or the new complete file. Assumes a single writer per
  // path (concurrent savers would share the temp name).
  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::trunc);
    if (!out) {
      return Status::IOError("cannot open '" + tmp_path + "' for writing");
    }
    Status status = WriteCheckpointPayload(out).WithContext(path);
    if (status.ok()) {
      out.flush();
      if (!out) {
        status = Status::IOError("write to '" + tmp_path + "' failed");
      }
    }
    if (!status.ok()) {
      out.close();
      std::remove(tmp_path.c_str());
      return status;
    }
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::IOError("cannot rename '" + tmp_path + "' to '" + path +
                           "'");
  }
  return Status::OK();
}

Status FleetScheduler::ReadCheckpointPayload(std::istream& in) {
  NEXTMAINT_FAILPOINT("scheduler.load_models");
  // Parse into a staging map and commit only after the fleet-end marker:
  // a truncated or corrupt stream must not leave the scheduler half-loaded
  // (some vehicles on new models, some on old ones).
  struct StagedModel {
    std::shared_ptr<ml::Regressor> model;
    std::string model_name;
  };
  std::map<std::string, StagedModel> staged;
  std::string token;
  while (in >> token) {
    if (token == "fleet-end") {
      for (auto& [id, entry] : staged) {
        VehicleState& state = vehicles_.at(id);
        state.model = std::move(entry.model);
        state.model_name = std::move(entry.model_name);
        state.pending_segment = storage::SegmentView();
      }
      return Status::OK();
    }
    if (token != "vehicle") {
      return Status::DataError("expected 'vehicle', got '" + token + "'");
    }
    std::string id, model_name;
    if (!(in >> id >> model_name)) {
      return Status::DataError("truncated vehicle model header");
    }
    if (vehicles_.count(id) == 0) {
      return Status::NotFound("model for unregistered vehicle '" + id +
                              "'");
    }
    NM_ASSIGN_OR_RETURN(std::unique_ptr<ml::Regressor> model,
                        LoadAnyModel(in));
    // Duplicate entries keep the last occurrence, matching the previous
    // in-place loader.
    staged[id] = StagedModel{std::move(model), std::move(model_name)};
  }
  return Status::DataError("missing fleet-end marker");
}

Status FleetScheduler::LoadCheckpoint(const std::string& path) {
  NM_ASSIGN_OR_RETURN(storage::CheckpointFormat format,
                      storage::SniffCheckpointFormat(path));
  if (format == storage::CheckpointFormat::kMissing) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  if (format == storage::CheckpointFormat::kLegacyText) {
    // Migration read path: eager parse of the monolithic text checkpoint.
    std::ifstream in(path);
    if (!in) {
      return Status::IOError("cannot open '" + path + "' for reading");
    }
    return ReadCheckpointPayload(in).WithContext(path);
  }
  // Segmented (kUnrecognized falls through too: the store reports the
  // garbage superblock as DataLoss with the detail).
  NEXTMAINT_FAILPOINT("scheduler.load_models");
  NM_ASSIGN_OR_RETURN(std::shared_ptr<storage::CheckpointStore> store,
                      storage::CheckpointStore::Open(path));
  Result<storage::CheckpointManifest> loaded = store->Load();
  if (!loaded.ok()) return loaded.status();
  const storage::CheckpointManifest& manifest = loaded.ValueOrDie();
  // Validate before mutating anything: every referenced vehicle must be
  // registered, mirroring the legacy reader's commit-at-end semantics.
  for (const storage::ManifestEntry& entry : manifest.vehicles) {
    if (vehicles_.count(entry.vehicle_id) == 0) {
      return Status::NotFound("model for unregistered vehicle '" +
                              entry.vehicle_id + "'");
    }
  }
  for (const storage::ManifestEntry& entry : manifest.vehicles) {
    VehicleState& state = vehicles_.at(entry.vehicle_id);
    // Lazy: stage the segment view; the model parses on first touch
    // (MaterializeModel). The name is header-resident, so it is available
    // immediately for reporting.
    state.model.reset();
    state.model_name = entry.model_name;
    state.pending_segment = entry.segment;
  }
  telemetry::Count("scheduler.checkpoint.lazy_loads");
  telemetry::SetGauge("scheduler.checkpoint.pending_segments",
                      static_cast<double>(manifest.vehicles.size()));
  return Status::OK();
}

}  // namespace core
}  // namespace nextmaint
