#ifndef NEXTMAINT_CORE_SCHEDULER_H_
#define NEXTMAINT_CORE_SCHEDULER_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/date.h"
#include "common/status.h"
#include "core/category.h"
#include "core/cold_start.h"
#include "core/drift.h"
#include "core/old_vehicle.h"
#include "data/time_series.h"
#include "ml/regressor.h"
#include "storage/checkpoint_store.h"

/// \file scheduler.h
/// The deployed-system facade ("The system we propose here is currently
/// under deployment"): a fleet-level API that ingests daily utilization,
/// categorizes each vehicle, trains the category-appropriate model and
/// answers "when is each vehicle's next maintenance due?".

namespace nextmaint {
namespace core {

/// Per-vehicle prediction produced by the scheduler.
struct MaintenanceForecast {
  std::string vehicle_id;
  VehicleCategory category = VehicleCategory::kNew;
  /// Name of the model serving this vehicle ("BL", "RF", "XGB_Uni", ...).
  std::string model_name;
  /// Predicted days until the next maintenance, from the last ingested day.
  double days_left = 0.0;
  /// Calendar date of the predicted maintenance.
  Date predicted_date;
  /// Utilization seconds left until maintenance (L on the day after the
  /// last ingested day).
  double usage_seconds_left = 0.0;
};

/// One vehicle quarantined during TrainAll or FleetForecast: the fleet run
/// carried on without it (SchedulerOptions::strict == false) and this entry
/// records why.
struct VehicleDegradation {
  std::string vehicle_id;
  /// Pipeline stage that failed: "train" or "forecast".
  std::string stage;
  /// The isolated per-vehicle error.
  Status error;
  /// True when the vehicle was served by the untrained BL baseline instead
  /// (the paper's BL needs only the usage history, so a fallback almost
  /// always exists); false when even the fallback was impossible and the
  /// vehicle is left unmodeled/unforecast.
  bool fallback = false;
};

/// Quarantine ledger of a fleet run. Ordered by vehicle id (the
/// deterministic task order of TrainAll/FleetForecast).
struct DegradationReport {
  std::vector<VehicleDegradation> vehicles;

  bool empty() const { return vehicles.empty(); }

  /// True when `vehicle_id` was quarantined in this run.
  bool Contains(const std::string& vehicle_id) const {
    for (const VehicleDegradation& d : vehicles) {
      if (d.vehicle_id == vehicle_id) return true;
    }
    return false;
  }
};

/// Configuration of the scheduler.
struct SchedulerOptions {
  /// Allowed usage seconds between maintenances, fleet-wide default.
  double maintenance_interval_s = 2'000'000.0;
  /// Feature window W used by every trained model.
  int window = 6;
  /// Candidate algorithms for old-vehicle model selection.
  std::vector<std::string> algorithms = {"BL", "LR", "RF"};
  /// Algorithm for the unified cold-start model.
  std::string unified_algorithm = "XGB";
  /// Per-vehicle evaluation/selection options (the 70/30 protocol). The
  /// window field is overwritten by `window` above.
  OldVehicleOptions selection;
  /// Cold-start options; window overwritten likewise.
  ColdStartOptions cold_start;
  /// Vehicles trained/forecast concurrently by TrainAll/FleetForecast.
  /// <= 0 follows the process-wide default
  /// (ThreadPool::DefaultThreadCount()). Any value yields bit-identical
  /// models and forecasts; see docs/parallelism.md.
  int num_threads = 0;
  /// Fleet deployments keep serving healthy vehicles when one vehicle's
  /// data or training fails: TrainAll/FleetForecast quarantine the failing
  /// vehicle (see LastDegradationReport) and fall back to the BL baseline.
  /// `strict` restores fail-fast: the first per-vehicle error aborts the
  /// whole fleet operation (option-validation errors such as a negative
  /// num_threads always fail fast). See docs/fault-injection.md.
  bool strict = false;
  /// Tree-training core for every tree learner the scheduler trains
  /// (selection candidates, refits, cold-start models). Both cores produce
  /// byte-identical models; kRowOriented exists for differential testing.
  /// Propagated into `selection` and `cold_start` by the constructor. See
  /// docs/binned-training.md.
  ml::TreeCore tree_core = ml::TreeCore::kBinned;
  /// Warm-start refresh: the serving engine's refresh pass resumes
  /// eligible dirty vehicles' ensemble models (WarmStartVehicle) instead
  /// of retraining them from scratch, trading an exact retrain for an
  /// O(warm_start_rounds) resume within a measured forecast-divergence
  /// bound (docs/warm-start.md). Ignored by the batch facade — TrainAll
  /// always trains cold.
  bool warm_start = false;
  /// Extra ensemble units (boosting rounds for XGB, appended trees for RF)
  /// per warm resume.
  int warm_start_rounds = 10;
};

/// Shared cold-start training inputs: the old vehicles' first-cycle corpus
/// (vehicle-id order) plus the unified model trained on it. TrainAll builds
/// one per run; the incremental serving engine (serve/serving_engine.h)
/// caches one across refreshes and rebuilds it only when a vehicle's corpus
/// contribution changes, so subset retrains see exactly the inputs a full
/// batch run would.
struct ColdStartInputs {
  std::vector<FirstCycleData> corpus;
  /// Model_Uni trained on `corpus`; nullptr when the corpus is empty or
  /// unified training failed (cold-start vehicles then fall through to
  /// their next option, matching TrainAll).
  std::shared_ptr<ml::Regressor> unified;
};

/// Fleet-level next-maintenance scheduler.
///
/// Usage: RegisterVehicle -> IngestUsage (day by day or in bulk) ->
/// TrainAll -> Forecast / FleetForecast. Retraining after further ingestion
/// is allowed at any time.
///
/// Error-code contract (shared by the batch facade and the serving engine):
///  - NotFound: the vehicle id was never registered. Register it first.
///  - FailedPrecondition: the vehicle (or fleet) is registered but not in a
///    state that can answer the call — no trained model, too little data
///    for the feature window, or a FleetForecast on a fleet with zero
///    registered vehicles.
///  - InvalidArgument: malformed inputs or options (negative num_threads,
///    out-of-order ingestion, utilization outside [0, 86400]).
class FleetScheduler {
 public:
  explicit FleetScheduler(SchedulerOptions options);

  /// Registers a vehicle whose data starts on `first_day`.
  /// Fails with AlreadyExists on duplicates.
  [[nodiscard]] Status RegisterVehicle(const std::string& id, Date first_day);

  /// Appends one day of utilization. Days must be ingested in order with
  /// no gaps (the telematics collector guarantees this; absent telemetry
  /// should be ingested as 0 or repaired upstream).
  [[nodiscard]] Status IngestUsage(const std::string& id, Date day, double seconds);

  /// Bulk ingestion of a gap-free series (replaces prior data).
  [[nodiscard]] Status IngestSeries(const std::string& id, const data::DailySeries& series);

  /// Current category of a vehicle.
  [[nodiscard]] Result<VehicleCategory> CategoryOf(const std::string& id) const;

  /// Registered ids, sorted.
  std::vector<std::string> VehicleIds() const;

  /// Trains/refreshes every vehicle's model:
  ///  - old vehicles: per-vehicle model selection (E_MRE criterion), then a
  ///    refit of the winning algorithm on the vehicle's full history;
  ///  - semi-new: Model_Sim over the old vehicles' first cycles (falls back
  ///    to Model_Uni when similarity matching is impossible);
  ///  - new: Model_Uni.
  /// Vehicles whose category has no viable model (e.g. a new vehicle in a
  /// fleet with no old vehicles) are left untrained; Forecast reports the
  /// failure for them.
  ///
  /// Equivalent to building the corpus from CorpusContribution over every
  /// vehicle, training the unified model with TrainUnifiedFromCorpus and
  /// running TrainVehicles over VehicleIds() — TrainAll is implemented on
  /// exactly those building blocks, which is what makes incremental subset
  /// retrains (serve/serving_engine.h) bit-identical to a batch run.
  [[nodiscard]] Status TrainAll();

  /// This vehicle's contribution to the cold-start corpus: its first
  /// completed maintenance cycle when it is an old vehicle and extraction
  /// succeeds, nullopt otherwise (no data, not old yet, or no extractable
  /// cycle). NotFound for unregistered ids; categorization errors
  /// propagate. A vehicle's contribution is invariant under in-order
  /// Append ingestion once present — the first cycle is a fixed prefix of
  /// the history — which is what lets the serving engine cache it.
  [[nodiscard]] Result<std::optional<FirstCycleData>> CorpusContribution(
      const std::string& id) const;

  /// Trains the unified cold-start model (Model_Uni) on `corpus`. Returns
  /// nullptr for an empty corpus or when training fails (logged as a
  /// warning) — the tolerant semantics of TrainAll.
  std::shared_ptr<ml::Regressor> TrainUnifiedFromCorpus(
      const std::vector<FirstCycleData>& corpus) const;

  /// Retrains exactly the vehicles in `ids` (category-appropriate model,
  /// same logic as TrainAll) against the given shared cold-start inputs,
  /// fanning out over the thread pool in the order given. Failing vehicles
  /// are quarantined behind the BL fallback (strict mode aborts instead);
  /// LastDegradationReport's train entries cover this call only. `ids` must
  /// be registered (NotFound) and free of duplicates (InvalidArgument);
  /// nth-selecting failpoint specs address a vehicle by its 1-based
  /// position in `ids`.
  [[nodiscard]] Status TrainVehicles(const std::vector<std::string>& ids,
                                     const ColdStartInputs& inputs);

  /// True when `id` currently has a trained (or fallback) model, i.e. it
  /// would be included in FleetForecast. NotFound for unregistered ids.
  [[nodiscard]] Result<bool> HasTrainedModel(const std::string& id) const;

  /// Warm-start resume of one vehicle's model: rebuilds the refit dataset
  /// over the vehicle's full history (the exact dataset TrainOneVehicle's
  /// refit uses — same window, normalization, Last29 filter and time-shift
  /// re-sampling) and extends the fitted ensemble with
  /// Regressor::ContinueFit for `extra_rounds` units. Returns true when
  /// the model was resumed; false when the vehicle is not eligible (no
  /// trained model, a non-ensemble model, or not an old vehicle) — the
  /// caller should retrain cold instead. NotFound for unregistered ids;
  /// resume errors propagate (the serving engine degrades them to a cold
  /// retrain). Serial API: not safe against concurrent use of the same
  /// vehicle's model.
  [[nodiscard]] Result<bool> WarmStartVehicle(const std::string& id,
                                              int extra_rounds);

  /// Predicts the next maintenance for one vehicle (requires TrainAll).
  /// NotFound for unregistered ids; FailedPrecondition when the vehicle has
  /// no trained model or too little data for the feature window.
  [[nodiscard]] Result<MaintenanceForecast> Forecast(const std::string& id) const;

  /// Forecasts for every vehicle that has a trained model, sorted by
  /// predicted date (most urgent first). FailedPrecondition when the fleet
  /// has no registered vehicles at all (a forecast over nothing is a caller
  /// bug, not an empty answer).
  [[nodiscard]] Result<std::vector<MaintenanceForecast>> FleetForecast() const;

  /// Builds the untrained-BL forecast for `id` (paper Eq. 5/6:
  /// D_BL = L(today) / AVG). Needs only the usage history — no trained
  /// model, no feature window — so it serves quarantined vehicles; the
  /// serving engine uses it to mirror FleetForecast's degradation path.
  [[nodiscard]] Result<MaintenanceForecast> FallbackForecast(
      const std::string& id) const;

  /// Persists every trained per-vehicle model to `path` as one atomic
  /// checkpoint. Thin wrapper over storage::CheckpointStore::SaveAll: the
  /// segmented "NMCKPT1" format (docs/storage.md), written to a temp file
  /// and renamed into place, so readers see either the previous complete
  /// checkpoint or the new one — never a truncated file (single writer per
  /// path assumed). Byte-deterministic for a given fleet state. Untrained
  /// vehicles are skipped; lazily loaded vehicles that never materialized
  /// have their segment bytes copied verbatim (no parse). The usage data
  /// itself is not saved (it lives in the telematics store); re-ingest it
  /// before forecasting with a loaded checkpoint.
  [[nodiscard]] Status SaveCheckpoint(const std::string& path) const;

  /// SaveCheckpoint in the legacy monolithic text format ("vehicle <id>
  /// <model-name>" headers + model bodies + "fleet-end"), kept for
  /// migration tooling and the mmap-vs-legacy load bench. Same tmp+rename
  /// atomicity.
  [[nodiscard]] Status SaveLegacyCheckpoint(const std::string& path) const;

  /// Persists exactly one vehicle into the segmented checkpoint at `path`:
  /// storage::CheckpointStore::SaveVehicle appends the new segment, and
  /// Commit publishes it through the alternate superblock slot — the rest
  /// of the fleet's segments are never rewritten or touched. Falls back to
  /// a full SaveCheckpoint when `path` holds no segmented checkpoint yet.
  /// NotFound for unregistered ids; FailedPrecondition when the vehicle
  /// has no model to persist.
  [[nodiscard]] Status SaveVehicleCheckpoint(const std::string& path,
                                             const std::string& id) const;

  /// Restores models from a checkpoint at `path`. Thin wrapper over
  /// storage::CheckpointStore::Load for the segmented format: the file is
  /// mmapped, only the superblock + index are read eagerly, and each
  /// vehicle's model deserializes on first touch (Forecast/WarmStart) from
  /// its CRC-guarded segment — corruption there surfaces as DataLoss from
  /// the touching call. The legacy text format is still recognized and
  /// parsed eagerly (the migration read path). Every referenced vehicle
  /// must already be registered (NotFound otherwise); vehicles absent from
  /// the checkpoint keep their current model. Nothing is committed unless
  /// the whole index (legacy: the whole stream) validates, so a truncated
  /// or corrupt checkpoint changes nothing.
  [[nodiscard]] Status LoadCheckpoint(const std::string& path);

  /// Runs the CUSUM usage-drift monitor for one vehicle: the reference
  /// distribution is fitted on the first `reference_fraction` of its
  /// history and the remainder is monitored. A detected drift means the
  /// vehicle's model was trained on a usage regime that no longer holds —
  /// retrain (TrainAll) and reset. See core/drift.h.
  [[nodiscard]] Result<DriftReport> CheckDrift(const std::string& id,
                                 double reference_fraction = 0.7,
                                 const DriftOptions& options = {}) const;

  /// Vehicles quarantined by the most recent TrainAll/TrainVehicles plus
  /// those quarantined by the most recent FleetForecast, in deterministic
  /// (vehicle-id) order per stage. Empty after fully healthy runs and in
  /// strict mode (strict aborts instead of quarantining). Not synchronized
  /// with concurrent TrainAll/FleetForecast calls on the same scheduler.
  DegradationReport LastDegradationReport() const;

  /// The binning cache currently attached to `id`'s per-vehicle training
  /// (grid-search candidates and refits share it). Nullptr before the
  /// vehicle's first training and after new data invalidated the cache;
  /// the next TrainVehicles recreates it. Diagnostics/testing surface.
  std::shared_ptr<const ml::BinningCache> VehicleBinningCache(
      const std::string& id) const;

  /// The cache shared by every cold-start fit (unified + similarity
  /// models); created at construction and cleared when IngestSeries
  /// replaces a vehicle's history.
  std::shared_ptr<const ml::BinningCache> UnifiedBinningCache() const;

 private:
  struct VehicleState {
    Date first_day;
    data::DailySeries usage;
    /// mutable: the const read paths (Forecast) materialize a lazily
    /// loaded model on first touch. Safe under the same per-vehicle
    /// serialization contract those paths already rely on (parallel
    /// fan-outs touch disjoint vehicles; see docs/parallelism.md).
    mutable std::shared_ptr<ml::Regressor> model;
    std::string model_name;
    /// Unparsed checkpoint segment staged by a lazy LoadCheckpoint;
    /// cleared when the model materializes, retrains or re-ingests.
    mutable storage::SegmentView pending_segment;
  };

  [[nodiscard]] Result<const VehicleState*> FindVehicle(const std::string& id) const;

  /// First-cycle extraction for a vehicle already known to be old.
  std::optional<FirstCycleData> ContributionForOldVehicle(
      const std::string& id, const VehicleState& state) const;

  /// Category-appropriate (re)training of one vehicle against the shared
  /// cold-start inputs — the single training code path under both TrainAll
  /// and TrainVehicles.
  [[nodiscard]] Status TrainOneVehicle(const std::string& id,
                                       VehicleState& state,
                                       const ColdStartInputs& inputs);

  /// Parses `state`'s pending checkpoint segment into a live model on
  /// first touch (the lazy half of LoadCheckpoint). No-op when nothing is
  /// pending; kDataLoss when the segment fails its CRC.
  [[nodiscard]] Status MaterializeModel(const std::string& id,
                                        const VehicleState& state) const;

  /// One vehicle's checkpoint record: the serialized model, or the raw
  /// pending segment bytes when the model never materialized (keeps
  /// save-after-lazy-load parse-free and byte-identical).
  [[nodiscard]] Result<storage::VehicleRecord> CheckpointRecord(
      const std::string& id, const VehicleState& state) const;

  /// Writes/reads the legacy text checkpoint payload (the migration
  /// format behind SaveLegacyCheckpoint and LoadCheckpoint's legacy read
  /// path).
  [[nodiscard]] Status WriteCheckpointPayload(std::ostream& out) const;
  [[nodiscard]] Status ReadCheckpointPayload(std::istream& in);

  SchedulerOptions options_;
  std::map<std::string, VehicleState> vehicles_;
  /// Per-vehicle bin-mapper caches (binned core), created in TrainVehicles'
  /// serial validation pass (the training fan-out only reads the map) and
  /// dropped whenever new data for the vehicle arrives — keys are
  /// content-addressed, so a stale entry could never be hit again anyway;
  /// eviction just bounds memory.
  std::map<std::string, std::shared_ptr<ml::BinningCache>> binning_caches_;
  /// Cache behind every cold-start fit; lives in
  /// options_.cold_start.backend (attached by the constructor), kept here
  /// for invalidation and the UnifiedBinningCache accessor.
  std::shared_ptr<ml::BinningCache> unified_binning_cache_;
  /// Quarantines recorded by the last TrainAll.
  DegradationReport train_degradation_;
  /// Quarantines recorded by the last FleetForecast (mutable: FleetForecast
  /// is const; a concurrent-FleetForecast data race is excluded by contract,
  /// see LastDegradationReport).
  mutable DegradationReport forecast_degradation_;
};

}  // namespace core
}  // namespace nextmaint

#endif  // NEXTMAINT_CORE_SCHEDULER_H_
