#include "core/drift.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/statistics.h"

namespace nextmaint {
namespace core {

Result<DriftDetector> DriftDetector::Create(double reference_mean,
                                            double reference_std,
                                            const DriftOptions& options) {
  if (!std::isfinite(reference_mean) || !std::isfinite(reference_std)) {
    return Status::InvalidArgument("reference statistics must be finite");
  }
  if (reference_std <= 0.0) {
    return Status::InvalidArgument("reference std must be positive");
  }
  if (options.slack < 0.0 || options.threshold <= 0.0) {
    return Status::InvalidArgument(
        "slack must be >= 0 and threshold positive");
  }
  return DriftDetector(reference_mean, reference_std, options);
}

bool DriftDetector::Observe(double daily_utilization_s) {
  const double z = (daily_utilization_s - mean_) / std_;
  positive_sum_ = std::max(0.0, positive_sum_ + z - options_.slack);
  negative_sum_ = std::max(0.0, negative_sum_ - z - options_.slack);
  if (!drifted_) {
    if (positive_sum_ > options_.threshold) {
      drifted_ = true;
      direction_ = +1;
    } else if (negative_sum_ > options_.threshold) {
      drifted_ = true;
      direction_ = -1;
    }
  }
  return drifted_;
}

void DriftDetector::Reset() {
  positive_sum_ = 0.0;
  negative_sum_ = 0.0;
  drifted_ = false;
  direction_ = 0;
}

Result<DriftReport> DetectUsageDrift(const data::DailySeries& series,
                                     size_t train_days,
                                     const DriftOptions& options) {
  if (!series.IsComplete()) {
    return Status::DataError("series contains missing values; clean first");
  }
  if (train_days < 2 || train_days >= series.size()) {
    return Status::InvalidArgument(
        "train_days must leave at least one monitored day and cover at "
        "least two training days");
  }
  const std::vector<double> train(
      series.values().begin(),
      series.values().begin() + static_cast<ptrdiff_t>(train_days));
  const double mean = Mean(train);
  const double std = SampleStdDev(train);
  if (std <= 1e-9) {
    return Status::NumericError(
        "training window has no variance; CUSUM reference undefined");
  }

  NM_ASSIGN_OR_RETURN(DriftDetector detector,
                      DriftDetector::Create(mean, std, options));
  DriftReport report;
  for (size_t t = train_days; t < series.size(); ++t) {
    const bool alarm = detector.Observe(series[t]);
    report.peak_statistic =
        std::max({report.peak_statistic, detector.positive_sum(),
                  detector.negative_sum()});
    if (alarm && !report.drift_detected) {
      report.drift_detected = true;
      report.first_alarm_day = t;
      report.direction = detector.direction();
    }
  }
  return report;
}

}  // namespace core
}  // namespace nextmaint
