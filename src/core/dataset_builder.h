#ifndef NEXTMAINT_CORE_DATASET_BUILDER_H_
#define NEXTMAINT_CORE_DATASET_BUILDER_H_

#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/errors.h"
#include "core/series.h"
#include "ml/dataset.h"

/// \file dataset_builder.h
/// The "transformation" step of the preparation pipeline (Section 4):
/// turns derived per-vehicle series into the relational dataset the
/// regressors consume.
///
/// "each record corresponds to a different day t and consists of a set of
/// attributes denoting the past utilization levels ... Given a window size
/// W, the attributes include the values U_v(x) [t-W <= x <= t-1]. Along
/// with the utilization level series, the attributes include the current
/// time left until the next maintenance, i.e., L_v(t), and the target
/// variable ... D_v(t)."
///
/// Feature layout: column 0 is always L(t); columns 1..W are
/// U(t-1) ... U(t-W). W = 0 yields the univariate model of Eq. 7, W > 0 the
/// multivariate model of Eq. 8. The BL baseline reads L(t) from column 0.

namespace nextmaint {
namespace core {

/// Options controlling record extraction.
struct DatasetOptions {
  /// Window size W of past utilization features (0 = univariate).
  int window = 0;
  /// When set, only records whose target D(t) lies in the set are kept —
  /// the paper's "trained on D in {1..29}" regime (Table 1, right column).
  std::optional<DaySet> target_filter;
  /// Scale L by 1/T_v and U features by 1/86400 so every feature lies in
  /// [0, 1] (the normalization step of the preparation pipeline). The
  /// target stays in raw days.
  bool normalize_features = true;

  // --- Contextual enrichment (the paper's future-work extension). ---
  /// Optional per-day contextual series aligned with the utilization
  /// series (same day indexing), e.g. weather workability factors. Not
  /// owned; must outlive the builder calls.
  const std::vector<double>* context = nullptr;
  /// Number of forward context values appended as features:
  /// context[t], ..., context[t + k - 1]. Unlike utilization, context is
  /// known ahead of time in deployment (weather forecasts), so looking
  /// forward does not leak the target. Days running past the end of the
  /// context series repeat its last value.
  int context_forecast_days = 0;
};

/// Builds the relational dataset of one vehicle from its derived series.
/// Records cover days t with W <= t < size where D(t) is defined. Fails
/// when no record survives (e.g. window longer than the series).
[[nodiscard]] Result<ml::Dataset> BuildDataset(const VehicleSeries& series,
                                 const DatasetOptions& options);

/// Builds the feature row for day `t` of `series` (no target needed), e.g.
/// for predicting on the current day in deployment. Fails when t < W.
[[nodiscard]] Result<std::vector<double>> BuildFeatureRow(const VehicleSeries& series,
                                            size_t t,
                                            const DatasetOptions& options);

/// Options for time-shift re-sampling augmentation (Section 4):
/// "Since we do not know when the vehicle actually had the maintenance
/// done, we can shift the time reference ... We randomly re-sampled
/// multiple times the time reference starting from different time points
/// within the training data."
struct ResamplingOptions {
  /// Number of additional random shifts (0 disables augmentation; the
  /// unshifted dataset is always included).
  int num_shifts = 0;
  /// Largest allowed shift, as a fraction of the series length.
  double max_shift_fraction = 0.5;
  uint64_t seed = 99;
};

/// Builds the union of the unshifted dataset and `num_shifts` datasets
/// derived after dropping a random prefix of the utilization series (which
/// re-phases every maintenance cycle). Duplicated shift draws are allowed.
[[nodiscard]] Result<ml::Dataset> BuildResampledDataset(const data::DailySeries& u,
                                          double maintenance_interval_s,
                                          const DatasetOptions& options,
                                          const ResamplingOptions& resampling);

}  // namespace core
}  // namespace nextmaint

#endif  // NEXTMAINT_CORE_DATASET_BUILDER_H_
