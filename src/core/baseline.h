#ifndef NEXTMAINT_CORE_BASELINE_H_
#define NEXTMAINT_CORE_BASELINE_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "data/time_series.h"
#include "ml/regressor.h"

/// \file baseline.h
/// The paper's BL baseline (Section 4.1.1): assume utilization stays equal
/// to its historical average and divide the remaining allowed usage by it:
///
///   AVG_v = mean of U_v(t) over the training period            (Eq. 5)
///   D_BL(t) = L_v(t) / AVG_v                                   (Eq. 6)
///
/// BL is exposed through the ml::Regressor interface so the evaluation
/// harness treats all five algorithms uniformly. It reads L(t) from feature
/// column 0 (the dataset builder's layout) and ignores all other columns;
/// Fit is a no-op because AVG_v is supplied at construction ("Since BL is
/// not trained, its results do not change").

namespace nextmaint {
namespace core {

/// BL predictor with a fixed average utilization.
class BaselinePredictor final : public ml::Regressor {
 public:
  /// `avg_utilization_s`: AVG_v in seconds/day (must be positive).
  /// `l_scale`: the factor the dataset builder applied to the L column
  /// (1/T_v when features are normalized, 1 otherwise); predictions divide
  /// it back out.
  BaselinePredictor(double avg_utilization_s, double l_scale = 1.0);

  [[nodiscard]] Result<double> Predict(std::span<const double> features) const override;
  std::string name() const override { return "BL"; }
  bool is_fitted() const override { return true; }
  std::unique_ptr<ml::Regressor> Clone() const override {
    return std::make_unique<BaselinePredictor>(*this);
  }
  [[nodiscard]] Status Save(std::ostream& out) const override;

  /// Reads a model body serialized by Save (header already consumed).
  [[nodiscard]] static Result<BaselinePredictor> LoadBody(std::istream& in);

  double avg_utilization_s() const { return avg_utilization_s_; }

 protected:
  [[nodiscard]] Status FitImpl(const ml::Dataset& train) override;

 private:
  double avg_utilization_s_;
  double l_scale_;
};

/// Loads any serialized model: the problem-specific BL predictor or one of
/// the generic ml zoo (see ml/serialization.h).
[[nodiscard]] Result<std::unique_ptr<ml::Regressor>> LoadAnyModel(std::istream& in);

/// AVG_v over the first `train_days` days of a utilization series (Eq. 5);
/// when train_days is 0 the whole series is used. Fails when the average is
/// zero (a never-used vehicle admits no BL prediction).
[[nodiscard]] Result<double> AverageUtilization(const data::DailySeries& u,
                                  size_t train_days = 0);

}  // namespace core
}  // namespace nextmaint

#endif  // NEXTMAINT_CORE_BASELINE_H_
