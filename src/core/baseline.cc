#include "core/baseline.h"

#include <cmath>

#include "common/macros.h"
#include "ml/serialization.h"

namespace nextmaint {
namespace core {

BaselinePredictor::BaselinePredictor(double avg_utilization_s, double l_scale)
    : avg_utilization_s_(avg_utilization_s), l_scale_(l_scale) {
  NM_CHECK_MSG(avg_utilization_s_ > 0.0, "AVG_v must be positive");
  NM_CHECK_MSG(l_scale_ > 0.0, "l_scale must be positive");
}

Status BaselinePredictor::FitImpl(const ml::Dataset& train) {
  (void)train;  // BL is not trained (Section 5.1).
  return Status::OK();
}

Result<double> BaselinePredictor::Predict(
    std::span<const double> features) const {
  if (features.empty()) {
    return Status::InvalidArgument("BL requires the L feature in column 0");
  }
  const double l_seconds = features[0] / l_scale_;
  return l_seconds / avg_utilization_s_;
}

Result<double> AverageUtilization(const data::DailySeries& u,
                                  size_t train_days) {
  if (u.empty()) {
    return Status::InvalidArgument("empty utilization series");
  }
  const data::DailySeries window =
      train_days == 0 ? u : u.Slice(0, train_days);
  if (window.empty()) {
    return Status::InvalidArgument("train_days selects no data");
  }
  const double avg = window.MeanValue();
  if (avg <= 0.0) {
    return Status::NumericError(
        "average utilization is zero; BL undefined for an unused vehicle");
  }
  return avg;
}


Status BaselinePredictor::Save(std::ostream& out) const {
  out.precision(17);
  out << "nextmaint-model v1 BL\n";
  out << "avg " << avg_utilization_s_ << "\n";
  out << "lscale " << l_scale_ << "\n";
  out << "end\n";
  if (!out) return Status::IOError("BL serialization failed");
  return Status::OK();
}

Result<BaselinePredictor> BaselinePredictor::LoadBody(std::istream& in) {
  std::string token;
  double avg = 0.0, l_scale = 0.0;
  if (!(in >> token >> avg) || token != "avg") {
    return Status::DataError("BL: expected 'avg <a>'");
  }
  if (!(in >> token >> l_scale) || token != "lscale") {
    return Status::DataError("BL: expected 'lscale <s>'");
  }
  if (!(in >> token) || token != "end") {
    return Status::DataError("BL: missing end marker");
  }
  if (avg <= 0.0 || l_scale <= 0.0) {
    return Status::DataError("BL: non-positive parameters");
  }
  return BaselinePredictor(avg, l_scale);
}

Result<std::unique_ptr<ml::Regressor>> LoadAnyModel(std::istream& in) {
  NM_ASSIGN_OR_RETURN(std::string name, ml::ReadModelHeader(in));
  if (name == "BL") {
    NM_ASSIGN_OR_RETURN(BaselinePredictor model,
                        BaselinePredictor::LoadBody(in));
    return std::unique_ptr<ml::Regressor>(
        std::make_unique<BaselinePredictor>(std::move(model)));
  }
  return ml::LoadRegressorBody(name, in);
}

}  // namespace core
}  // namespace nextmaint
