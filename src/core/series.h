#ifndef NEXTMAINT_CORE_SERIES_H_
#define NEXTMAINT_CORE_SERIES_H_

#include <cmath>
#include <cstddef>
#include <vector>

#include "common/status.h"
#include "data/time_series.h"

/// \file series.h
/// Derivation of the paper's problem-statement series (Section 2) from the
/// daily utilization series — the "enrichment" step of the preparation
/// pipeline. Given U_v(t) and the allowed usage time T_v, computes:
///
///  - C_v(t): days already passed since the last maintenance operation;
///  - L_v(t): utilization seconds left to the next maintenance,
///            L_v(t) = T_v - sum_{i = t - C_v(t)}^{t-1} U_v(i)   (Eq. 1);
///  - D_v(t): days left to the next maintenance (the target), which
///            decreases monotonically to 0 on each maintenance day (Fig. 2).
///
/// Maintenance timing follows Section 3: "After a fixed time amount of
/// usage (T_v = 2,000,000 s), every vehicle needs to go under maintenance"
/// — an operation happens at the end of the first day on which cumulative
/// usage since the previous operation reaches T_v; the excess carries over.

namespace nextmaint {
namespace core {

/// One maintenance cycle inside a vehicle's history.
struct Cycle {
  /// Day index of the first day of the cycle.
  size_t start = 0;
  /// Day index of the maintenance day closing the cycle (inclusive).
  size_t end = 0;

  size_t length_days() const { return end - start + 1; }
};

/// All derived per-day series for one vehicle.
///
/// For trailing days after the last completed maintenance the target D is
/// unknown (the closing maintenance lies beyond the data) and is NaN; C and
/// L remain defined everywhere.
struct VehicleSeries {
  /// The (cleaned, gap-free) input utilization series.
  data::DailySeries u;
  /// T_v used for the derivation.
  double maintenance_interval_s = 0.0;
  /// C_v(t): days since last maintenance (0 on the first day of a cycle).
  std::vector<double> c;
  /// L_v(t): utilization seconds left to next maintenance at the *start*
  /// of day t (Eq. 1: sums usage of the preceding C(t) days only).
  std::vector<double> l;
  /// D_v(t): days left to next maintenance; 0 on maintenance days; NaN on
  /// trailing days whose closing maintenance is unobserved.
  std::vector<double> d;
  /// Completed maintenance cycles in order.
  std::vector<Cycle> cycles;

  size_t size() const { return u.size(); }
  /// Number of completed maintenance cycles.
  size_t completed_cycles() const { return cycles.size(); }
  /// True when day t has a defined target.
  bool HasTarget(size_t t) const { return !std::isnan(d[t]); }
  /// Total utilization seconds accumulated over the whole series.
  double TotalUsage() const { return u.Sum(); }
};

/// Derives C, L, D and the cycle list from a utilization series.
///
/// Requirements: `u` must be gap-free (run the cleaning step first; fails
/// with DataError on NaN) and `maintenance_interval_s` positive. `offset`
/// drops the first `offset` days before deriving — the primitive behind the
/// paper's time-shift re-sampling ("we can shift the time reference ...
/// without introducing errors").
[[nodiscard]] Result<VehicleSeries> DeriveSeries(const data::DailySeries& u,
                                   double maintenance_interval_s,
                                   size_t offset = 0);

}  // namespace core
}  // namespace nextmaint

#endif  // NEXTMAINT_CORE_SERIES_H_
