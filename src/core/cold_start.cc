#include "core/cold_start.h"

#include <cmath>
#include <limits>

#include "common/macros.h"
#include "common/statistics.h"
#include "core/baseline.h"
#include "ml/registry.h"

namespace nextmaint {
namespace core {

namespace {

/// Builds the relational dataset restricted to the first cycle of `series`.
Result<ml::Dataset> FirstCycleDataset(const VehicleSeries& series,
                                      const ColdStartOptions& options) {
  if (series.completed_cycles() == 0) {
    return Status::InvalidArgument("vehicle has no completed cycle");
  }
  const size_t cycle_end = series.cycles[0].end;
  DatasetOptions dataset_options;
  dataset_options.window = options.window;
  dataset_options.normalize_features = options.normalize_features;

  ml::Dataset dataset;
  for (size_t t = static_cast<size_t>(options.window); t <= cycle_end; ++t) {
    if (!series.HasTarget(t)) continue;
    NM_ASSIGN_OR_RETURN(std::vector<double> row,
                        BuildFeatureRow(series, t, dataset_options));
    dataset.AddRow(std::span<const double>(row.data(), row.size()),
                   series.d[t]);
  }
  if (dataset.empty()) {
    return Status::InvalidArgument(
        "first cycle yields no records (window too large?)");
  }
  return dataset;
}

}  // namespace

Result<std::vector<double>> FirstHalfCycleUsage(
    const data::DailySeries& u, double maintenance_interval_s) {
  if (maintenance_interval_s <= 0.0) {
    return Status::InvalidArgument("maintenance_interval_s must be positive");
  }
  if (!u.IsComplete()) {
    return Status::DataError("utilization series contains missing values");
  }
  std::vector<double> out;
  double cumulative = 0.0;
  for (size_t t = 0; t < u.size(); ++t) {
    cumulative += u[t];
    out.push_back(u[t]);
    if (cumulative >= maintenance_interval_s / 2.0) return out;
  }
  return Status::InvalidArgument(
      "vehicle has used less than T_v/2 seconds (category: new)");
}

Result<FirstCycleData> ExtractFirstCycle(const std::string& vehicle_id,
                                         const data::DailySeries& u,
                                         double maintenance_interval_s,
                                         const ColdStartOptions& options) {
  FirstCycleData data;
  data.vehicle_id = vehicle_id;
  NM_ASSIGN_OR_RETURN(VehicleSeries series,
                      DeriveSeries(u, maintenance_interval_s));
  NM_ASSIGN_OR_RETURN(data.dataset, FirstCycleDataset(series, options));
  NM_ASSIGN_OR_RETURN(data.first_half_usage,
                      FirstHalfCycleUsage(u, maintenance_interval_s));
  return data;
}

Result<std::unique_ptr<ml::Regressor>> TrainUnifiedModel(
    const std::string& algorithm, const std::vector<FirstCycleData>& corpus,
    const ColdStartOptions& options) {
  if (corpus.empty()) {
    return Status::InvalidArgument("empty training corpus");
  }
  ml::Dataset merged;
  for (const FirstCycleData& vehicle : corpus) {
    NM_RETURN_NOT_OK(merged.Concat(vehicle.dataset)
                         .WithContext(vehicle.vehicle_id));
  }
  NM_ASSIGN_OR_RETURN(std::unique_ptr<ml::Regressor> model,
                      ml::MakeRegressor(algorithm, options.model_params,
                                        options.backend));
  NM_RETURN_NOT_OK(model->Fit(merged).WithContext("Model_Uni " + algorithm));
  return model;
}

Result<SimilarityModel> TrainSimilarityModel(
    const std::string& algorithm,
    const std::vector<double>& target_first_half_usage,
    const std::vector<FirstCycleData>& corpus,
    const ColdStartOptions& options) {
  if (corpus.empty()) {
    return Status::InvalidArgument("empty training corpus");
  }
  std::vector<SimilarityCandidate> candidates;
  candidates.reserve(corpus.size());
  for (const FirstCycleData& vehicle : corpus) {
    candidates.push_back(
        SimilarityCandidate{vehicle.vehicle_id, vehicle.first_half_usage});
  }
  const SimilarityMeasure measure =
      options.similarity ? options.similarity : AverageDistanceMeasure();
  SimilarityModel out;
  NM_ASSIGN_OR_RETURN(out.match, MostSimilar(target_first_half_usage,
                                             candidates, measure));
  NM_ASSIGN_OR_RETURN(out.model,
                      ml::MakeRegressor(algorithm, options.model_params,
                                        options.backend));
  NM_RETURN_NOT_OK(out.model->Fit(corpus[out.match.index].dataset)
                       .WithContext("Model_Sim " + algorithm + " on " +
                                    out.match.id));
  return out;
}

Result<SimilarityMatch> MostSimilarFromCorpus(
    const std::vector<double>& target_first_half_usage,
    const std::vector<storage::CorpusVehicleSummary>& summaries,
    const ColdStartOptions& options) {
  std::vector<SimilarityCandidate> candidates;
  candidates.reserve(summaries.size());
  for (const storage::CorpusVehicleSummary& summary : summaries) {
    // Vehicles without a similarity key (category "new" at compaction
    // time) cannot be matched against; skip, don't fail — the corpus may
    // legitimately mix them in.
    if (summary.first_half_usage.empty()) continue;
    candidates.push_back(
        SimilarityCandidate{summary.vehicle_id, summary.first_half_usage});
  }
  if (candidates.empty()) {
    return Status::InvalidArgument(
        "no corpus vehicle carries a first-half-cycle similarity key");
  }
  const SimilarityMeasure measure =
      options.similarity ? options.similarity : AverageDistanceMeasure();
  return MostSimilar(target_first_half_usage, candidates, measure);
}

Result<std::unique_ptr<ml::Regressor>> MakeSemiNewBaseline(
    const data::DailySeries& u, double maintenance_interval_s,
    const ColdStartOptions& options) {
  NM_ASSIGN_OR_RETURN(std::vector<double> first_half,
                      FirstHalfCycleUsage(u, maintenance_interval_s));
  const double avg = Mean(first_half);
  if (avg <= 0.0) {
    return Status::NumericError("zero average usage in first half cycle");
  }
  const double l_scale =
      options.normalize_features ? 1.0 / maintenance_interval_s : 1.0;
  return std::unique_ptr<ml::Regressor>(
      std::make_unique<BaselinePredictor>(avg, l_scale));
}

Result<ColdStartEvaluation> EvaluateColdStartModel(
    const ml::Regressor& model, const data::DailySeries& test_u,
    double maintenance_interval_s, const ColdStartOptions& options,
    bool compute_emre) {
  NM_ASSIGN_OR_RETURN(VehicleSeries series,
                      DeriveSeries(test_u, maintenance_interval_s));
  if (series.completed_cycles() == 0) {
    return Status::InvalidArgument(
        "test vehicle's first cycle is not complete in the data; ground "
        "truth for it is unknown");
  }
  DatasetOptions feature_options;
  feature_options.window = options.window;
  feature_options.normalize_features = options.normalize_features;

  ColdStartEvaluation eval;
  eval.algorithm = model.name();
  const size_t cycle_end = series.cycles[0].end;
  for (size_t t = static_cast<size_t>(options.window); t <= cycle_end; ++t) {
    if (!series.HasTarget(t)) continue;
    NM_ASSIGN_OR_RETURN(std::vector<double> row,
                        BuildFeatureRow(series, t, feature_options));
    NM_ASSIGN_OR_RETURN(
        double prediction,
        model.Predict(std::span<const double>(row.data(), row.size())));
    eval.truth.push_back(series.d[t]);
    eval.predicted.push_back(prediction);
  }
  if (eval.truth.empty()) {
    return Status::InvalidArgument("no evaluable day in the first cycle");
  }
  NM_ASSIGN_OR_RETURN(eval.eglobal, GlobalError(eval.truth, eval.predicted));
  if (compute_emre) {
    NM_ASSIGN_OR_RETURN(
        eval.emre,
        MeanResidualError(eval.truth, eval.predicted, options.eval_days));
  } else {
    eval.emre = std::numeric_limits<double>::quiet_NaN();
  }
  return eval;
}

}  // namespace core
}  // namespace nextmaint
