#include "core/series.h"

#include <cmath>
#include <limits>

namespace nextmaint {
namespace core {

Result<VehicleSeries> DeriveSeries(const data::DailySeries& u,
                                   double maintenance_interval_s,
                                   size_t offset) {
  if (maintenance_interval_s <= 0.0) {
    return Status::InvalidArgument("maintenance_interval_s must be positive");
  }
  const data::DailySeries shifted =
      offset == 0 ? u : u.Slice(offset, u.size());
  if (shifted.empty()) {
    return Status::InvalidArgument("utilization series is empty");
  }
  if (!shifted.IsComplete()) {
    return Status::DataError(
        "utilization series contains missing values; run the cleaning step "
        "before deriving series");
  }

  const size_t n = shifted.size();
  VehicleSeries out;
  out.u = shifted;
  out.maintenance_interval_s = maintenance_interval_s;
  out.c.resize(n);
  out.l.resize(n);
  out.d.assign(n, std::numeric_limits<double>::quiet_NaN());

  size_t cycle_start = 0;
  double cycle_usage = 0.0;  // usage accumulated in the current cycle
  for (size_t t = 0; t < n; ++t) {
    out.c[t] = static_cast<double>(t - cycle_start);
    out.l[t] = maintenance_interval_s - cycle_usage;
    cycle_usage += shifted[t];
    if (cycle_usage >= maintenance_interval_s) {
      // Maintenance at the end of day t closes the cycle.
      out.cycles.push_back(Cycle{cycle_start, t});
      for (size_t i = cycle_start; i <= t; ++i) {
        out.d[i] = static_cast<double>(t - i);
      }
      cycle_usage -= maintenance_interval_s;  // excess carries over
      cycle_start = t + 1;
    }
  }
  return out;
}

}  // namespace core
}  // namespace nextmaint
