#include "core/workshop_planner.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace nextmaint {
namespace core {

namespace {

/// True when the workshop operates on `date`.
bool IsServiceDay(Date date, const WorkshopOptions& options) {
  return options.weekend_service || !date.IsWeekend();
}

/// Cost of servicing on `slot` a vehicle due on `due`.
double SlotCost(Date slot, Date due, const WorkshopOptions& options) {
  const int64_t slack = slot.DaysSince(due);
  return slack <= 0
             ? static_cast<double>(-slack) * options.earliness_cost_per_day
             : static_cast<double>(slack) * options.lateness_cost_per_day;
}

}  // namespace

Result<ServicePlan> PlanWorkshop(
    const std::vector<MaintenanceForecast>& forecasts, Date today,
    const WorkshopOptions& options) {
  if (options.daily_capacity <= 0) {
    return Status::InvalidArgument("daily_capacity must be positive");
  }
  if (options.horizon_days <= 0) {
    return Status::InvalidArgument("horizon_days must be positive");
  }
  if (options.earliness_cost_per_day < 0.0 ||
      options.lateness_cost_per_day < 0.0) {
    return Status::InvalidArgument("cost weights must be non-negative");
  }

  ServicePlan plan;
  plan.today = today;

  // Remaining capacity per horizon day (service days only).
  std::map<int64_t, int> free_slots;  // day offset -> remaining capacity
  for (int d = 0; d < options.horizon_days; ++d) {
    if (IsServiceDay(today.AddDays(d), options)) {
      free_slots[d] = options.daily_capacity;
    }
  }
  if (free_slots.empty()) {
    return Status::InvalidArgument("no service day inside the horizon");
  }

  // Earliest-deadline-first processing order.
  std::vector<const MaintenanceForecast*> order;
  order.reserve(forecasts.size());
  for (const MaintenanceForecast& f : forecasts) order.push_back(&f);
  std::sort(order.begin(), order.end(),
            [](const MaintenanceForecast* a, const MaintenanceForecast* b) {
              if (a->predicted_date != b->predicted_date) {
                return a->predicted_date < b->predicted_date;
              }
              return a->vehicle_id < b->vehicle_id;
            });

  for (const MaintenanceForecast* forecast : order) {
    const int64_t due_offset =
        forecast->predicted_date.DaysSince(today);
    if (due_offset >= options.horizon_days) {
      plan.beyond_horizon.push_back(forecast->vehicle_id);
      continue;
    }

    // Latest free slot at or before the due date (offset clamped to >= 0
    // for already-overdue vehicles)...
    const int64_t clamped_due = std::max<int64_t>(due_offset, 0);
    auto it = free_slots.upper_bound(clamped_due);
    std::optional<int64_t> chosen;
    if (it != free_slots.begin()) {
      chosen = std::prev(it)->first;
    } else if (it != free_slots.end()) {
      // ...otherwise the earliest free slot after it.
      chosen = it->first;
    }
    if (!chosen.has_value()) {
      // Horizon fully booked; report the vehicle instead of overbooking.
      plan.beyond_horizon.push_back(forecast->vehicle_id);
      continue;
    }
    // If the at-or-before slot is very early, a later (overdue) slot could
    // still be cheaper under asymmetric weights: compare with the earliest
    // free slot strictly after the due date.
    if (it != free_slots.end()) {
      const Date before_date = today.AddDays(*chosen);
      const Date after_date = today.AddDays(it->first);
      if (SlotCost(after_date, forecast->predicted_date, options) <
          SlotCost(before_date, forecast->predicted_date, options)) {
        chosen = it->first;
      }
    }

    const Date slot_date = today.AddDays(*chosen);
    ServiceAssignment assignment;
    assignment.vehicle_id = forecast->vehicle_id;
    assignment.scheduled_date = slot_date;
    assignment.predicted_due_date = forecast->predicted_date;
    assignment.slack_days = slot_date.DaysSince(forecast->predicted_date);
    assignment.cost =
        SlotCost(slot_date, forecast->predicted_date, options);
    plan.total_cost += assignment.cost;
    if (assignment.slack_days < 0) {
      plan.total_early_days += -assignment.slack_days;
    } else {
      plan.total_late_days += assignment.slack_days;
    }
    plan.assignments.push_back(std::move(assignment));

    auto slot_it = free_slots.find(*chosen);
    if (--slot_it->second == 0) free_slots.erase(slot_it);
  }

  std::sort(plan.assignments.begin(), plan.assignments.end(),
            [](const ServiceAssignment& a, const ServiceAssignment& b) {
              if (a.scheduled_date != b.scheduled_date) {
                return a.scheduled_date < b.scheduled_date;
              }
              return a.vehicle_id < b.vehicle_id;
            });
  return plan;
}

double PlanCost(const ServicePlan& plan, const WorkshopOptions& options) {
  double total = 0.0;
  for (const ServiceAssignment& assignment : plan.assignments) {
    total += SlotCost(assignment.scheduled_date,
                      assignment.predicted_due_date, options);
  }
  return total;
}

}  // namespace core
}  // namespace nextmaint
