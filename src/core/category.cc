#include "core/category.h"

#include <cmath>

namespace nextmaint {
namespace core {

const char* VehicleCategoryName(VehicleCategory category) {
  switch (category) {
    case VehicleCategory::kOld:
      return "old";
    case VehicleCategory::kSemiNew:
      return "semi-new";
    case VehicleCategory::kNew:
      return "new";
  }
  return "?";
}

VehicleCategory Categorize(const VehicleSeries& series) {
  if (series.completed_cycles() >= 1) return VehicleCategory::kOld;
  if (series.TotalUsage() >= series.maintenance_interval_s / 2.0) {
    return VehicleCategory::kSemiNew;
  }
  return VehicleCategory::kNew;
}

Result<VehicleCategory> CategorizeUsage(const data::DailySeries& u,
                                        double maintenance_interval_s) {
  if (maintenance_interval_s <= 0.0) {
    return Status::InvalidArgument("maintenance_interval_s must be positive");
  }
  if (!u.IsComplete()) {
    return Status::DataError("utilization series contains missing values");
  }
  // A single pass suffices: the first crossing of T_v makes the vehicle
  // old; otherwise compare the total against T_v/2.
  double total = 0.0;
  for (size_t t = 0; t < u.size(); ++t) {
    total += u[t];
    if (total >= maintenance_interval_s) return VehicleCategory::kOld;
  }
  return total >= maintenance_interval_s / 2.0 ? VehicleCategory::kSemiNew
                                               : VehicleCategory::kNew;
}

}  // namespace core
}  // namespace nextmaint
