#include "core/dataset_builder.h"

#include <cmath>

#include "common/macros.h"

namespace nextmaint {
namespace core {

namespace {

/// Feature names for the layout [L, U(t-1..t-W), CTX(t..t+k-1)].
std::vector<std::string> FeatureNames(int window, int context_days) {
  std::vector<std::string> names = {"L"};
  for (int k = 1; k <= window; ++k) {
    names.push_back("U(t-" + std::to_string(k) + ")");
  }
  for (int k = 0; k < context_days; ++k) {
    names.push_back("CTX(t+" + std::to_string(k) + ")");
  }
  return names;
}

}  // namespace

Result<std::vector<double>> BuildFeatureRow(const VehicleSeries& series,
                                            size_t t,
                                            const DatasetOptions& options) {
  if (options.window < 0) {
    return Status::InvalidArgument("window must be non-negative");
  }
  if (options.context_forecast_days < 0) {
    return Status::InvalidArgument(
        "context_forecast_days must be non-negative");
  }
  if (options.context_forecast_days > 0 &&
      (options.context == nullptr || options.context->empty())) {
    return Status::InvalidArgument(
        "context_forecast_days set but no context series supplied");
  }
  const size_t w = static_cast<size_t>(options.window);
  if (t >= series.size()) {
    return Status::InvalidArgument("day index out of range");
  }
  if (t < w) {
    return Status::InvalidArgument(
        "day " + std::to_string(t) + " has fewer than W=" +
        std::to_string(w) + " preceding days");
  }
  const double l_scale =
      options.normalize_features ? 1.0 / series.maintenance_interval_s : 1.0;
  const double u_scale = options.normalize_features ? 1.0 / 86400.0 : 1.0;

  std::vector<double> row;
  const size_t context_days =
      static_cast<size_t>(options.context_forecast_days);
  row.reserve(w + 1 + context_days);
  row.push_back(series.l[t] * l_scale);
  for (size_t k = 1; k <= w; ++k) {
    row.push_back(series.u[t - k] * u_scale);
  }
  for (size_t k = 0; k < context_days; ++k) {
    const size_t index = std::min(t + k, options.context->size() - 1);
    row.push_back((*options.context)[index]);
  }
  return row;
}

Result<ml::Dataset> BuildDataset(const VehicleSeries& series,
                                 const DatasetOptions& options) {
  if (options.window < 0) {
    return Status::InvalidArgument("window must be non-negative");
  }
  const size_t w = static_cast<size_t>(options.window);
  ml::Dataset dataset;
  for (size_t t = w; t < series.size(); ++t) {
    if (!series.HasTarget(t)) continue;
    if (options.target_filter.has_value() &&
        !options.target_filter->Contains(series.d[t])) {
      continue;
    }
    NM_ASSIGN_OR_RETURN(std::vector<double> row,
                        BuildFeatureRow(series, t, options));
    dataset.AddRow(std::span<const double>(row.data(), row.size()),
                   series.d[t]);
  }
  if (dataset.empty()) {
    return Status::InvalidArgument(
        "no records extracted (window too large, no completed cycle, or "
        "empty target filter)");
  }
  // Rebuild with names attached (Dataset::Create validates shapes).
  return ml::Dataset::Create(
      dataset.x(), dataset.y(),
      FeatureNames(options.window, options.context_forecast_days));
}

Result<ml::Dataset> BuildResampledDataset(
    const data::DailySeries& u, double maintenance_interval_s,
    const DatasetOptions& options, const ResamplingOptions& resampling) {
  if (resampling.num_shifts < 0) {
    return Status::InvalidArgument("num_shifts must be non-negative");
  }
  if (resampling.max_shift_fraction < 0.0 ||
      resampling.max_shift_fraction >= 1.0) {
    return Status::InvalidArgument("max_shift_fraction must be in [0, 1)");
  }

  NM_ASSIGN_OR_RETURN(VehicleSeries base,
                      DeriveSeries(u, maintenance_interval_s));
  NM_ASSIGN_OR_RETURN(ml::Dataset combined, BuildDataset(base, options));

  Rng rng(resampling.seed);
  const size_t max_shift = static_cast<size_t>(
      resampling.max_shift_fraction * static_cast<double>(u.size()));
  for (int s = 0; s < resampling.num_shifts; ++s) {
    if (max_shift == 0) break;
    const size_t offset = 1 + static_cast<size_t>(rng.UniformInt(
                                  static_cast<uint64_t>(max_shift)));
    Result<VehicleSeries> shifted =
        DeriveSeries(u, maintenance_interval_s, offset);
    if (!shifted.ok()) continue;  // shift consumed the whole series
    // Contextual series must shift with the time reference so day t of the
    // shifted series still sees its own day's context.
    DatasetOptions shifted_options = options;
    std::vector<double> shifted_context;
    if (options.context != nullptr && options.context_forecast_days > 0) {
      if (offset >= options.context->size()) continue;
      shifted_context.assign(
          options.context->begin() + static_cast<ptrdiff_t>(offset),
          options.context->end());
      shifted_options.context = &shifted_context;
    }
    Result<ml::Dataset> extra =
        BuildDataset(shifted.ValueOrDie(), shifted_options);
    if (!extra.ok()) continue;  // shift left no complete cycle
    NM_RETURN_NOT_OK(combined.Concat(extra.ValueOrDie()));
  }
  return combined;
}

}  // namespace core
}  // namespace nextmaint
