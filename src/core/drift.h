#ifndef NEXTMAINT_CORE_DRIFT_H_
#define NEXTMAINT_CORE_DRIFT_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "data/time_series.h"

/// \file drift.h
/// Usage-drift detection for the deployed system.
///
/// The paper motivates per-vehicle models with the non-stationarity of the
/// utilization series ("some vehicles could remain unused for a relatively
/// long period of time, then be moved to a construction site, and keep
/// working at full capacity"), and the deployed system is explicitly meant
/// to support "further tests and tunings". A regime change after training
/// silently invalidates a model; this monitor detects such changes so the
/// fleet operator can trigger retraining.
///
/// Method: two-sided CUSUM on the standardized daily utilization. The
/// reference mean/std come from the training period; the cumulative sums
///   S+_t = max(0, S+_{t-1} + (z_t - k))
///   S-_t = max(0, S-_{t-1} - (z_t + k))
/// raise an alarm when either exceeds the threshold h. `k` (the slack)
/// absorbs day-to-day noise; `h` trades detection delay for false alarms.

namespace nextmaint {
namespace core {

/// CUSUM configuration.
struct DriftOptions {
  /// Slack per observation, in reference standard deviations. Shifts
  /// smaller than ~2k are ignored by design.
  double slack = 0.5;
  /// Alarm threshold, in accumulated standard deviations.
  double threshold = 8.0;
};

/// Outcome of monitoring one series against a reference window.
struct DriftReport {
  bool drift_detected = false;
  /// Day index (within the monitored series) of the first alarm; only
  /// meaningful when drift_detected.
  size_t first_alarm_day = 0;
  /// +1: usage shifted up; -1: usage shifted down; 0: no drift.
  int direction = 0;
  /// Peak of the CUSUM statistic over the monitored window.
  double peak_statistic = 0.0;
};

/// Streaming two-sided CUSUM detector.
class DriftDetector {
 public:
  /// `reference_mean` / `reference_std` describe the training-period usage
  /// distribution; std must be positive (a constant reference cannot be
  /// monitored this way).
  [[nodiscard]] static Result<DriftDetector> Create(double reference_mean,
                                      double reference_std,
                                      const DriftOptions& options = {});

  /// Feeds one day of utilization. Returns true when this observation
  /// raises (or sustains) an alarm.
  bool Observe(double daily_utilization_s);

  bool drifted() const { return drifted_; }
  /// +1 upward shift, -1 downward, 0 none yet.
  int direction() const { return direction_; }
  double positive_sum() const { return positive_sum_; }
  double negative_sum() const { return negative_sum_; }

  /// Resets the accumulators (e.g. after retraining).
  void Reset();

 private:
  DriftDetector(double mean, double std, DriftOptions options)
      : mean_(mean), std_(std), options_(options) {}

  double mean_;
  double std_;
  DriftOptions options_;
  double positive_sum_ = 0.0;
  double negative_sum_ = 0.0;
  bool drifted_ = false;
  int direction_ = 0;
};

/// Convenience batch API: fits the reference on `series[0..train_days)` and
/// monitors the remainder. Fails when train_days leaves nothing to monitor
/// or the training window has (near-)zero variance.
[[nodiscard]] Result<DriftReport> DetectUsageDrift(const data::DailySeries& series,
                                     size_t train_days,
                                     const DriftOptions& options = {});

}  // namespace core
}  // namespace nextmaint

#endif  // NEXTMAINT_CORE_DRIFT_H_
