#include "core/errors.h"

#include <cmath>
#include <functional>
#include <limits>

#include "common/macros.h"

namespace nextmaint {
namespace core {

DaySet DaySet::Last29() { return DaySet(1, 29); }

DaySet DaySet::Range(int lo, int hi) {
  NM_CHECK_MSG(lo <= hi, "DaySet range inverted");
  return DaySet(lo, hi);
}

DaySet DaySet::Single(int d) { return DaySet(d, d); }

bool DaySet::Contains(double d_value) const {
  if (std::isnan(d_value)) return false;
  const double rounded = std::round(d_value);
  return rounded >= static_cast<double>(lo_) &&
         rounded <= static_cast<double>(hi_);
}

Result<std::vector<double>> DailyErrors(
    const std::vector<double>& truth, const std::vector<double>& predicted) {
  if (truth.size() != predicted.size()) {
    return Status::InvalidArgument("truth/prediction lengths differ");
  }
  std::vector<double> errors(truth.size());
  for (size_t t = 0; t < truth.size(); ++t) {
    errors[t] = std::isnan(truth[t])
                    ? std::numeric_limits<double>::quiet_NaN()
                    : truth[t] - predicted[t];
  }
  return errors;
}

namespace {

/// Mean of f(E(t)) over days passing `keep`; f is |.| or identity.
Result<double> AggregateErrors(const std::vector<double>& truth,
                               const std::vector<double>& predicted,
                               bool signed_mean,
                               const std::function<bool(double)>& keep) {
  NM_ASSIGN_OR_RETURN(std::vector<double> errors,
                      DailyErrors(truth, predicted));
  double acc = 0.0;
  size_t n = 0;
  for (size_t t = 0; t < errors.size(); ++t) {
    if (std::isnan(errors[t]) || !keep(truth[t])) continue;
    acc += signed_mean ? errors[t] : std::fabs(errors[t]);
    ++n;
  }
  if (n == 0) {
    return Status::InvalidArgument("no days satisfy the error restriction");
  }
  return acc / static_cast<double>(n);
}

}  // namespace

Result<double> GlobalError(const std::vector<double>& truth,
                           const std::vector<double>& predicted,
                           bool signed_mean) {
  return AggregateErrors(truth, predicted, signed_mean,
                         [](double) { return true; });
}

Result<double> MeanResidualError(const std::vector<double>& truth,
                                 const std::vector<double>& predicted,
                                 const DaySet& days, bool signed_mean) {
  return AggregateErrors(truth, predicted, signed_mean,
                         [&days](double d) { return days.Contains(d); });
}

}  // namespace core
}  // namespace nextmaint
