#include "core/similarity.h"

#include <cmath>
#include <limits>

#include "common/statistics.h"

namespace nextmaint {
namespace core {

SimilarityMeasure AverageDistanceMeasure() {
  return [](const std::vector<double>& a, const std::vector<double>& b) {
    return std::fabs(Mean(a) - Mean(b));
  };
}

SimilarityMeasure PointwiseDistanceMeasure() {
  return [](const std::vector<double>& a, const std::vector<double>& b) {
    return PointwiseAverageDistance(a, b);
  };
}

SimilarityMeasure EuclideanMeasure() {
  return [](const std::vector<double>& a, const std::vector<double>& b) {
    return NormalizedEuclideanDistance(a, b);
  };
}

SimilarityMeasure CorrelationMeasure() {
  return [](const std::vector<double>& a, const std::vector<double>& b) {
    const size_t n = std::min(a.size(), b.size());
    const std::vector<double> pa(a.begin(),
                                 a.begin() + static_cast<ptrdiff_t>(n));
    const std::vector<double> pb(b.begin(),
                                 b.begin() + static_cast<ptrdiff_t>(n));
    const Result<double> corr = PearsonCorrelation(pa, pb);
    if (!corr.ok()) {
      // Constant series: correlation undefined; fall back to distances so
      // the measure stays total.
      return PointwiseAverageDistance(a, b);
    }
    return 1.0 - corr.ValueOrDie();
  };
}

Result<SimilarityMatch> MostSimilar(
    const std::vector<double>& target,
    const std::vector<SimilarityCandidate>& candidates,
    const SimilarityMeasure& measure) {
  if (target.empty()) {
    return Status::InvalidArgument("empty target series");
  }
  if (candidates.empty()) {
    return Status::InvalidArgument("empty candidate list");
  }
  if (!measure) {
    return Status::InvalidArgument("null similarity measure");
  }
  SimilarityMatch best;
  best.distance = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < candidates.size(); ++i) {
    const double d = measure(target, candidates[i].series);
    if (d < best.distance) {
      best.distance = d;
      best.index = i;
      best.id = candidates[i].id;
    }
  }
  return best;
}

}  // namespace core
}  // namespace nextmaint
