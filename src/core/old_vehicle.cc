#include "core/old_vehicle.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "common/macros.h"
#include "core/baseline.h"
#include "ml/registry.h"

namespace nextmaint {
namespace core {

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Builds the training dataset for one vehicle under the given options
/// (target filter + resampling applied to the training slice only).
Result<ml::Dataset> BuildTrainingData(const data::DailySeries& train_u,
                                      double maintenance_interval_s,
                                      const OldVehicleOptions& options) {
  DatasetOptions dataset_options;
  dataset_options.window = options.window;
  dataset_options.normalize_features = options.normalize_features;
  dataset_options.context = options.context;
  dataset_options.context_forecast_days = options.context_forecast_days;
  if (options.train_on_last29_only) {
    dataset_options.target_filter = DaySet::Last29();
  }
  ResamplingOptions resampling;
  resampling.num_shifts = options.resampling_shifts;
  resampling.seed = options.seed ^ 0x5151;
  return BuildResampledDataset(train_u, maintenance_interval_s,
                               dataset_options, resampling);
}

}  // namespace

Result<VehicleEvaluation> EvaluateAlgorithmOnVehicle(
    const std::string& algorithm, const data::DailySeries& u,
    double maintenance_interval_s, const OldVehicleOptions& options) {
  if (options.train_fraction <= 0.0 || options.train_fraction >= 1.0) {
    return Status::InvalidArgument("train_fraction must be in (0, 1)");
  }
  if (options.window < 0) {
    return Status::InvalidArgument("window must be non-negative");
  }

  // Full-series derivation defines the evaluation ground truth; the
  // training slice shares its cycle phase because both start at day 0.
  NM_ASSIGN_OR_RETURN(VehicleSeries full,
                      DeriveSeries(u, maintenance_interval_s));
  const size_t n = full.size();
  const size_t split =
      static_cast<size_t>(options.train_fraction * static_cast<double>(n));
  if (split == 0 || split >= n) {
    return Status::InvalidArgument("degenerate train/test split");
  }
  const data::DailySeries train_u = u.Slice(0, split);

  VehicleEvaluation eval;
  eval.algorithm = algorithm;

  const double t_start = NowSeconds();
  std::unique_ptr<ml::Regressor> model;
  if (algorithm == "BL") {
    // BL: average utilization over the training period (Eq. 5); no
    // training beyond that.
    NM_ASSIGN_OR_RETURN(double avg, AverageUtilization(train_u));
    const double l_scale =
        options.normalize_features ? 1.0 / maintenance_interval_s : 1.0;
    model = std::make_unique<BaselinePredictor>(avg, l_scale);
  } else {
    NM_ASSIGN_OR_RETURN(
        ml::Dataset train_data,
        BuildTrainingData(train_u, maintenance_interval_s, options));
    ml::ParamMap params;
    if (options.tune) {
      NM_ASSIGN_OR_RETURN(ml::RegressorFactory factory,
                          ml::MakeFactory(algorithm, options.backend));
      const ml::ParamGrid grid =
          ml::DefaultGridFor(algorithm, options.grid_budget);
      ml::GridSearchOptions search_options;
      search_options.seed = options.seed;
      // Tiny training sets cannot sustain 5 folds.
      search_options.folds =
          std::min<size_t>(5, std::max<size_t>(2, train_data.num_rows() / 10));
      search_options.early_stopping_patience =
          options.grid_early_stopping_patience;
      if (train_data.num_rows() >= 2 * search_options.folds) {
        NM_ASSIGN_OR_RETURN(
            ml::GridSearchResult search,
            ml::GridSearchCV(factory, grid, train_data, search_options));
        params = search.best_params;
      }
      eval.best_params = params;
    }
    NM_ASSIGN_OR_RETURN(
        model, ml::MakeRegressor(algorithm, params, options.backend));
    NM_RETURN_NOT_OK(model->Fit(train_data).WithContext(algorithm));
  }
  eval.train_seconds = NowSeconds() - t_start;

  // Test period: days >= split with a defined target (and >= W so the
  // feature window exists).
  DatasetOptions feature_options;
  feature_options.window = options.window;
  feature_options.normalize_features = options.normalize_features;
  feature_options.context = options.context;
  feature_options.context_forecast_days = options.context_forecast_days;
  const size_t first_test_day =
      std::max(split, static_cast<size_t>(options.window));
  ml::Matrix test_x;
  for (size_t t = first_test_day; t < n; ++t) {
    if (!full.HasTarget(t)) continue;
    NM_ASSIGN_OR_RETURN(std::vector<double> row,
                        BuildFeatureRow(full, t, feature_options));
    test_x.AppendRow(std::span<const double>(row.data(), row.size()));
    eval.test_truth.push_back(full.d[t]);
  }
  if (eval.test_truth.empty()) {
    return Status::InvalidArgument(
        "no evaluable test day (no completed cycle in the test window)");
  }
  // One batched call for the whole test window (RF/XGB amortize the
  // per-call dispatch); results are bit-identical to the per-row loop.
  NM_ASSIGN_OR_RETURN(eval.test_predicted, model->PredictBatch(test_x));

  NM_ASSIGN_OR_RETURN(eval.eglobal,
                      GlobalError(eval.test_truth, eval.test_predicted));
  // E_MRE may be undefined when the test window lacks near-deadline days;
  // surface that as an error to the caller rather than reporting 0.
  NM_ASSIGN_OR_RETURN(
      eval.emre, MeanResidualError(eval.test_truth, eval.test_predicted,
                                   options.eval_days));
  eval.model = std::move(model);
  return eval;
}

Result<ModelSelectionResult> SelectBestModelForVehicle(
    const std::vector<std::string>& algorithms, const data::DailySeries& u,
    double maintenance_interval_s, const OldVehicleOptions& options) {
  if (algorithms.empty()) {
    return Status::InvalidArgument("empty algorithm list");
  }
  ModelSelectionResult result;
  double best = std::numeric_limits<double>::infinity();
  for (const std::string& algorithm : algorithms) {
    NM_ASSIGN_OR_RETURN(
        VehicleEvaluation eval,
        EvaluateAlgorithmOnVehicle(algorithm, u, maintenance_interval_s,
                                   options));
    if (eval.emre < best) {
      best = eval.emre;
      result.best_index = result.evaluations.size();
    }
    result.evaluations.push_back(std::move(eval));
  }
  return result;
}

std::vector<double> PerDayResiduals(const VehicleEvaluation& eval, int lo,
                                    int hi) {
  NM_CHECK(lo <= hi);
  std::vector<double> out;
  out.reserve(static_cast<size_t>(hi - lo + 1));
  for (int d = lo; d <= hi; ++d) {
    const Result<double> r = MeanResidualError(
        eval.test_truth, eval.test_predicted, DaySet::Single(d));
    out.push_back(r.ok() ? r.ValueOrDie()
                         : std::numeric_limits<double>::quiet_NaN());
  }
  return out;
}

}  // namespace core
}  // namespace nextmaint
