#ifndef NEXTMAINT_CORE_ERRORS_H_
#define NEXTMAINT_CORE_ERRORS_H_

#include <vector>

#include "common/status.h"

/// \file errors.h
/// The paper's error metrics (Section 2.1):
///
///  - daily error      E_v(t) = D_v(t) - D_hat_v(t)                  (Eq. 2)
///  - global error     E_Global = mean_t E_v(t)                      (Eq. 3)
///  - mean residual    E_MRE(D~) = mean over {t : D_v(t) in D~} E(t) (Eq. 4)
///
/// The tables report error *magnitudes* (e.g. BL = 20.2 days), so the
/// headline implementations aggregate |E(t)|; signed aggregation is exposed
/// as an option for bias analysis. The default D~ = {1..29} follows the
/// paper ("we have considered the last 29 days per cycle").

namespace nextmaint {
namespace core {

/// Membership set D~ over target values (days to maintenance).
class DaySet {
 public:
  /// The paper's default: the last 29 days before maintenance, {1..29}.
  static DaySet Last29();
  /// Contiguous range {lo..hi} inclusive.
  static DaySet Range(int lo, int hi);
  /// A single value {d}.
  static DaySet Single(int d);

  /// True when the (rounded) target value belongs to the set.
  bool Contains(double d_value) const;

  int lo() const { return lo_; }
  int hi() const { return hi_; }

 private:
  DaySet(int lo, int hi) : lo_(lo), hi_(hi) {}
  int lo_;
  int hi_;
};

/// Per-day errors E(t) = truth - predicted. Entries where the truth is NaN
/// (undefined target) come back NaN. Fails on length mismatch.
[[nodiscard]] Result<std::vector<double>> DailyErrors(const std::vector<double>& truth,
                                        const std::vector<double>& predicted);

/// E_Global: the mean |E(t)| over all days with a defined target
/// (signed = true gives the raw mean of Eq. 3). Fails when no day has a
/// defined target.
[[nodiscard]] Result<double> GlobalError(const std::vector<double>& truth,
                           const std::vector<double>& predicted,
                           bool signed_mean = false);

/// E_MRE(D~): the mean |E(t)| restricted to days whose true target lies in
/// `days` (signed = true gives the raw mean of Eq. 4). Fails when the
/// restriction is empty.
[[nodiscard]] Result<double> MeanResidualError(const std::vector<double>& truth,
                                 const std::vector<double>& predicted,
                                 const DaySet& days,
                                 bool signed_mean = false);

}  // namespace core
}  // namespace nextmaint

#endif  // NEXTMAINT_CORE_ERRORS_H_
