#ifndef NEXTMAINT_CORE_WORKSHOP_PLANNER_H_
#define NEXTMAINT_CORE_WORKSHOP_PLANNER_H_

#include <string>
#include <vector>

#include "common/date.h"
#include "common/status.h"
#include "core/scheduler.h"

/// \file workshop_planner.h
/// ML-supported maintenance scheduling — the extension the paper's
/// conclusions announce ("we plan ... to design ML supported scheduling
/// strategies") and the planning literature it cites ([8], [11], [12])
/// assumes as input: "All the aforesaid strategies are possible if accurate
/// predictions of next maintenance events are available."
///
/// Given the per-vehicle forecasts produced by FleetScheduler and a
/// workshop with limited daily service capacity, the planner books each
/// vehicle into a concrete service slot. Servicing early wastes remaining
/// allowed usage (the machine is taken off site before it had to be);
/// servicing late risks running past the allowed usage. The planner
/// minimizes a weighted sum of both.

namespace nextmaint {
namespace core {

/// Planning constraints and cost model.
struct WorkshopOptions {
  /// Vehicles the workshop can service per calendar day.
  int daily_capacity = 1;
  /// Planning horizon in days from `today`; vehicles forecast beyond it
  /// are reported as unscheduled (next planning round will catch them).
  int horizon_days = 90;
  /// Cost per day of servicing before the predicted due date.
  double earliness_cost_per_day = 1.0;
  /// Cost per day of servicing after the predicted due date. Overdue
  /// service risks violating the usage allowance, so the default weighs it
  /// an order of magnitude above earliness.
  double lateness_cost_per_day = 10.0;
  /// Whether the workshop also works weekends.
  bool weekend_service = false;
};

/// One booked service slot.
struct ServiceAssignment {
  std::string vehicle_id;
  Date scheduled_date;
  Date predicted_due_date;
  /// scheduled - due; negative = early, positive = overdue.
  int64_t slack_days = 0;
  double cost = 0.0;
};

/// A complete plan over the horizon.
struct ServicePlan {
  Date today;
  std::vector<ServiceAssignment> assignments;  ///< sorted by scheduled date
  /// Vehicles whose predicted due date lies beyond the horizon.
  std::vector<std::string> beyond_horizon;
  double total_cost = 0.0;
  int64_t total_early_days = 0;
  int64_t total_late_days = 0;
};

/// Books every forecast vehicle into a service slot.
///
/// Strategy: process vehicles in due-date order (earliest deadline first)
/// and give each one the cheapest feasible day — the latest free slot at
/// or before its due date when one exists, otherwise the earliest free
/// slot after it. With uniform costs this greedy rule is optimal for the
/// per-day capacity model (exchange argument over slot assignments);
/// heterogeneous cost weights keep it a strong heuristic while staying
/// O(n * horizon).
///
/// Vehicles already overdue (due date before `today`) are booked into the
/// earliest available slot. Fails with InvalidArgument on non-positive
/// capacity/horizon or a negative cost weight.
[[nodiscard]] Result<ServicePlan> PlanWorkshop(const std::vector<MaintenanceForecast>& forecasts,
                                 Date today, const WorkshopOptions& options);

/// Total cost of an existing plan under (possibly different) cost weights;
/// useful for comparing plans across cost models.
double PlanCost(const ServicePlan& plan, const WorkshopOptions& options);

}  // namespace core
}  // namespace nextmaint

#endif  // NEXTMAINT_CORE_WORKSHOP_PLANNER_H_
