#include "storage/checkpoint_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/failpoints.h"
#include "common/macros.h"

namespace nextmaint {
namespace storage {

namespace {

/// RAII fd so every error return path closes.
class FileHandle {
 public:
  explicit FileHandle(int fd) : fd_(fd) {}
  ~FileHandle() {
    if (fd_ >= 0) ::close(fd_);
  }
  FileHandle(const FileHandle&) = delete;
  FileHandle& operator=(const FileHandle&) = delete;

  int get() const { return fd_; }
  bool ok() const { return fd_ >= 0; }

 private:
  int fd_;
};

[[nodiscard]] Status WriteAll(int fd, const void* data, size_t size,
                              const std::string& path) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t n = ::write(fd, p, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("write to '" + path +
                             "' failed: " + std::strerror(errno));
    }
    p += n;
    size -= static_cast<size_t>(n);
  }
  return Status::OK();
}

[[nodiscard]] Status PwriteAll(int fd, const void* data, size_t size,
                               uint64_t offset, const std::string& path) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t n = ::pwrite(fd, p, size, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("pwrite to '" + path +
                             "' failed: " + std::strerror(errno));
    }
    p += n;
    offset += static_cast<uint64_t>(n);
    size -= static_cast<size_t>(n);
  }
  return Status::OK();
}

[[nodiscard]] Status PreadAll(int fd, void* data, size_t size, uint64_t offset,
                              const std::string& path) {
  char* p = static_cast<char*>(data);
  while (size > 0) {
    const ssize_t n = ::pread(fd, p, size, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("pread from '" + path +
                             "' failed: " + std::strerror(errno));
    }
    if (n == 0) {
      return Status::DataLoss("'" + path + "' is shorter than its committed " +
                              "state claims");
    }
    p += n;
    offset += static_cast<uint64_t>(n);
    size -= static_cast<size_t>(n);
  }
  return Status::OK();
}

[[nodiscard]] Status FsyncFile(int fd, const std::string& path) {
  if (::fsync(fd) != 0) {
    return Status::IOError("fsync of '" + path +
                           "' failed: " + std::strerror(errno));
  }
  return Status::OK();
}

/// Picks the valid superblock slot with the highest generation out of the
/// two raw 128 leading bytes. kDataLoss (first slot's diagnosis) when
/// neither slot validates.
Result<SuperblockSlot> PickSuperblock(std::span<const uint8_t> head) {
  NM_CHECK(head.size() >= kDataRegionOffset);
  Result<SuperblockSlot> a =
      DecodeSuperblockSlot(head.first(kSuperblockSlotBytes));
  Result<SuperblockSlot> b = DecodeSuperblockSlot(
      head.subspan(kSuperblockSlotBytes, kSuperblockSlotBytes));
  if (a.ok() && b.ok()) {
    return a.ValueOrDie().generation >= b.ValueOrDie().generation ? a : b;
  }
  if (a.ok()) return a;
  if (b.ok()) return b;
  return a.status().WithContext("no valid superblock slot");
}

/// Validates the committed index bytes against the superblock CRC and
/// decodes it.
Result<std::vector<SegmentIndexEntry>> DecodeCommittedIndex(
    const SuperblockSlot& slot, std::span<const uint8_t> index_bytes) {
  if (Crc32(index_bytes) != slot.index_crc32) {
    return Status::DataLoss("segment index CRC mismatch");
  }
  return DecodeSegmentIndex(index_bytes, slot.vehicle_count, slot.file_used);
}

[[nodiscard]] Status CheckRecordNames(const VehicleRecord& record) {
  if (record.vehicle_id.empty() || record.vehicle_id.size() > kMaxNameBytes ||
      record.model_name.size() > kMaxNameBytes) {
    return Status::InvalidArgument("vehicle id/model name of '" +
                                   record.vehicle_id +
                                   "' is empty or exceeds the format cap");
  }
  return Status::OK();
}

}  // namespace

Result<std::shared_ptr<const MappedFile>> MappedFile::Map(
    const std::string& path) {
  NEXTMAINT_FAILPOINT("storage.checkpoint.open");
  FileHandle fd(::open(path.c_str(), O_RDONLY | O_CLOEXEC));
  if (!fd.ok()) {
    return Status::IOError("cannot open '" + path +
                           "' for reading: " + std::strerror(errno));
  }
  struct stat st {};
  if (::fstat(fd.get(), &st) != 0) {
    return Status::IOError("cannot stat '" + path +
                           "': " + std::strerror(errno));
  }
  const auto size = static_cast<size_t>(st.st_size);
  if (size < kDataRegionOffset) {
    return Status::DataLoss("'" + path + "' is too short to hold a " +
                            "checkpoint superblock");
  }
  NEXTMAINT_FAILPOINT("storage.checkpoint.map");
  void* mapped = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd.get(), 0);
  if (mapped == MAP_FAILED) {
    return Status::IOError("cannot mmap '" + path +
                           "': " + std::strerror(errno));
  }
  // Private-constructor factory, so make_shared cannot reach it.
  return std::shared_ptr<const MappedFile>(
      new MappedFile(  // nextmaint-lint: allow(naked-new)
          static_cast<const uint8_t*>(mapped), size));
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
}

Result<std::string_view> SegmentView::Payload() const {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("empty segment view");
  }
  const std::span<const uint8_t> bytes = file_->bytes();
  NM_CHECK(offset_ <= bytes.size() && size_ <= bytes.size() - offset_);
  const std::span<const uint8_t> payload = bytes.subspan(offset_, size_);
  if (Crc32(payload) != crc32_) {
    return Status::DataLoss(
        "segment CRC mismatch (torn or bit-flipped payload)");
  }
  return std::string_view(reinterpret_cast<const char*>(payload.data()),
                          payload.size());
}

Result<CheckpointFormat> SniffCheckpointFormat(const std::string& path) {
  FileHandle fd(::open(path.c_str(), O_RDONLY | O_CLOEXEC));
  if (!fd.ok()) {
    if (errno == ENOENT) return CheckpointFormat::kMissing;
    return Status::IOError("cannot open '" + path +
                           "' for reading: " + std::strerror(errno));
  }
  char head[16] = {};
  ssize_t n;
  do {
    n = ::pread(fd.get(), head, sizeof(head), 0);
  } while (n < 0 && errno == EINTR);
  if (n < 0) {
    return Status::IOError("cannot read '" + path +
                           "': " + std::strerror(errno));
  }
  if (static_cast<size_t>(n) >= sizeof(kCheckpointMagic) &&
      std::memcmp(head, kCheckpointMagic, sizeof(kCheckpointMagic)) == 0) {
    return CheckpointFormat::kSegmented;
  }
  // The legacy text checkpoint starts with a vehicle header or, for an
  // empty fleet, the terminating marker.
  const std::string_view prefix(head, static_cast<size_t>(n));
  if (prefix.starts_with("vehicle ") || prefix.starts_with("fleet-end")) {
    return CheckpointFormat::kLegacyText;
  }
  return CheckpointFormat::kUnrecognized;
}

Result<std::unique_ptr<CheckpointStore>> CheckpointStore::Open(
    std::string path) {
  if (path.empty()) {
    return Status::InvalidArgument("checkpoint path must not be empty");
  }
  // Private-constructor factory, so make_unique cannot reach it.
  return std::unique_ptr<CheckpointStore>(
      new CheckpointStore(std::move(path)));  // nextmaint-lint: allow(naked-new)
}

Result<CheckpointManifest> CheckpointStore::Load() {
  NM_ASSIGN_OR_RETURN(CheckpointFormat format, SniffCheckpointFormat(path_));
  switch (format) {
    case CheckpointFormat::kMissing:
      return Status::IOError("cannot open '" + path_ + "' for reading");
    case CheckpointFormat::kLegacyText:
      return Status::FailedPrecondition(
          "'" + path_ + "' holds a legacy text checkpoint; read it through "
          "the migration path (FleetScheduler::LoadCheckpoint)");
    case CheckpointFormat::kUnrecognized:
      return Status::DataLoss("'" + path_ + "' is not a checkpoint " +
                              "(garbage superblock)");
    case CheckpointFormat::kSegmented:
      break;
  }
  NM_ASSIGN_OR_RETURN(std::shared_ptr<const MappedFile> file,
                      MappedFile::Map(path_));
  const std::span<const uint8_t> bytes = file->bytes();
  Result<SuperblockSlot> slot_result = PickSuperblock(bytes);
  if (!slot_result.ok()) return slot_result.status().WithContext(path_);
  const SuperblockSlot slot = std::move(slot_result).ValueOrDie();
  if (slot.file_used > bytes.size()) {
    return Status::DataLoss("'" + path_ + "' truncated below its committed " +
                            "size (" + std::to_string(slot.file_used) +
                            " bytes committed, " +
                            std::to_string(bytes.size()) + " on disk)");
  }
  Result<std::vector<SegmentIndexEntry>> index_result = DecodeCommittedIndex(
      slot, bytes.subspan(slot.index_offset, slot.index_size));
  if (!index_result.ok()) return index_result.status().WithContext(path_);
  std::vector<SegmentIndexEntry> entries =
      std::move(index_result).ValueOrDie();
  CheckpointManifest manifest;
  manifest.generation = slot.generation;
  manifest.vehicles.reserve(entries.size());
  for (SegmentIndexEntry& entry : entries) {
    ManifestEntry out;
    out.vehicle_id = std::move(entry.vehicle_id);
    out.model_name = std::move(entry.model_name);
    out.segment = SegmentView(file, entry.segment_offset, entry.payload_size,
                              entry.payload_crc32);
    manifest.vehicles.push_back(std::move(out));
  }
  return manifest;
}

Result<uint64_t> CheckpointStore::SaveAll(std::vector<VehicleRecord> records) {
  std::sort(records.begin(), records.end(),
            [](const VehicleRecord& a, const VehicleRecord& b) {
              return a.vehicle_id < b.vehicle_id;
            });
  std::vector<SegmentIndexEntry> entries;
  entries.reserve(records.size());
  uint64_t offset = kDataRegionOffset;
  for (size_t i = 0; i < records.size(); ++i) {
    const VehicleRecord& record = records[i];
    NM_RETURN_NOT_OK(CheckRecordNames(record));
    if (i > 0 && records[i - 1].vehicle_id == record.vehicle_id) {
      return Status::InvalidArgument("duplicate vehicle '" +
                                     record.vehicle_id + "' in SaveAll");
    }
    SegmentIndexEntry entry;
    entry.vehicle_id = record.vehicle_id;
    entry.model_name = record.model_name;
    entry.segment_offset = offset;
    entry.payload_size = record.payload.size();
    entry.payload_crc32 = Crc32(record.payload);
    offset += entry.payload_size;
    entries.push_back(std::move(entry));
  }
  const std::string index = EncodeSegmentIndex(entries);
  SuperblockSlot slot;
  slot.vehicle_count = static_cast<uint32_t>(entries.size());
  slot.generation = 1;
  slot.index_offset = offset;
  slot.index_size = index.size();
  slot.index_crc32 = Crc32(index);
  slot.file_used = offset + index.size();

  // Same atomicity as the legacy writer: everything goes to `path.tmp`,
  // which replaces `path` only after a successful fsync. A failure at any
  // seam removes the temp file and leaves the previous checkpoint intact.
  const std::string tmp_path = path_ + ".tmp";
  Status status = [&]() -> Status {
    NEXTMAINT_FAILPOINT("storage.checkpoint.open");
    FileHandle fd(::open(tmp_path.c_str(),
                         O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644));
    if (!fd.ok()) {
      return Status::IOError("cannot open '" + tmp_path +
                             "' for writing: " + std::strerror(errno));
    }
    const std::string slot_a = EncodeSuperblockSlot(slot);
    const std::string slot_b(kSuperblockSlotBytes, '\0');
    NM_RETURN_NOT_OK(WriteAll(fd.get(), slot_a.data(), slot_a.size(),
                              tmp_path));
    NM_RETURN_NOT_OK(WriteAll(fd.get(), slot_b.data(), slot_b.size(),
                              tmp_path));
    for (const VehicleRecord& record : records) {
      NEXTMAINT_FAILPOINT("storage.checkpoint.segment_write");
      NM_RETURN_NOT_OK(WriteAll(fd.get(), record.payload.data(),
                                record.payload.size(), tmp_path));
    }
    NM_RETURN_NOT_OK(WriteAll(fd.get(), index.data(), index.size(), tmp_path));
    NEXTMAINT_FAILPOINT("storage.checkpoint.commit");
    NM_RETURN_NOT_OK(FsyncFile(fd.get(), tmp_path));
    return Status::OK();
  }();
  if (!status.ok()) {
    std::remove(tmp_path.c_str());
    return status.WithContext(path_);
  }
  if (std::rename(tmp_path.c_str(), path_.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::IOError("cannot rename '" + tmp_path + "' to '" + path_ +
                           "'");
  }

  MutexLock lock(mu_);
  committed_loaded_ = true;
  committed_ = slot;
  committed_index_ = std::move(entries);
  staged_.clear();
  staged_tail_ = slot.file_used;
  return slot.generation;
}

Status CheckpointStore::RefreshCommittedState() {
  NEXTMAINT_FAILPOINT("storage.checkpoint.open");
  NM_ASSIGN_OR_RETURN(CheckpointFormat format, SniffCheckpointFormat(path_));
  if (format == CheckpointFormat::kMissing ||
      format == CheckpointFormat::kLegacyText) {
    return Status::FailedPrecondition(
        "'" + path_ + "' has no segmented checkpoint to update; write one "
        "with SaveAll first");
  }
  if (format == CheckpointFormat::kUnrecognized) {
    return Status::DataLoss("'" + path_ + "' is not a checkpoint " +
                            "(garbage superblock)");
  }
  FileHandle fd(::open(path_.c_str(), O_RDONLY | O_CLOEXEC));
  if (!fd.ok()) {
    return Status::IOError("cannot open '" + path_ +
                           "' for reading: " + std::strerror(errno));
  }
  uint8_t head[kDataRegionOffset] = {};
  NM_RETURN_NOT_OK(PreadAll(fd.get(), head, sizeof(head), 0, path_));
  NM_ASSIGN_OR_RETURN(SuperblockSlot slot,
                      PickSuperblock(std::span<const uint8_t>(head)));
  std::string index_bytes;
  index_bytes.resize(slot.index_size);
  NM_RETURN_NOT_OK(PreadAll(fd.get(), index_bytes.data(), index_bytes.size(),
                            slot.index_offset, path_));
  NM_ASSIGN_OR_RETURN(
      std::vector<SegmentIndexEntry> entries,
      DecodeCommittedIndex(
          slot, std::span<const uint8_t>(
                    reinterpret_cast<const uint8_t*>(index_bytes.data()),
                    index_bytes.size())));
  committed_ = slot;
  committed_index_ = std::move(entries);
  staged_.clear();
  staged_tail_ = slot.file_used;
  committed_loaded_ = true;
  return Status::OK();
}

Status CheckpointStore::SaveVehicle(const VehicleRecord& record) {
  NM_RETURN_NOT_OK(CheckRecordNames(record));
  MutexLock lock(mu_);
  if (!committed_loaded_) {
    NM_RETURN_NOT_OK(RefreshCommittedState().WithContext(path_));
  }
  FileHandle fd(::open(path_.c_str(), O_WRONLY | O_CLOEXEC));
  if (!fd.ok()) {
    return Status::IOError("cannot open '" + path_ +
                           "' for writing: " + std::strerror(errno));
  }
  NEXTMAINT_FAILPOINT("storage.checkpoint.segment_write");
  NM_RETURN_NOT_OK(PwriteAll(fd.get(), record.payload.data(),
                             record.payload.size(), staged_tail_, path_));
  SegmentIndexEntry entry;
  entry.vehicle_id = record.vehicle_id;
  entry.model_name = record.model_name;
  entry.segment_offset = staged_tail_;
  entry.payload_size = record.payload.size();
  entry.payload_crc32 = Crc32(record.payload);
  staged_tail_ += entry.payload_size;
  // Restaging a vehicle before Commit keeps the newest payload; the
  // superseded append becomes an unreferenced orphan past file_used.
  auto it = std::find_if(staged_.begin(), staged_.end(),
                         [&](const SegmentIndexEntry& staged) {
                           return staged.vehicle_id == record.vehicle_id;
                         });
  if (it != staged_.end()) {
    *it = std::move(entry);
  } else {
    staged_.push_back(std::move(entry));
  }
  return Status::OK();
}

Result<uint64_t> CheckpointStore::Commit() {
  MutexLock lock(mu_);
  if (!committed_loaded_) {
    NM_RETURN_NOT_OK(RefreshCommittedState().WithContext(path_));
  }
  if (staged_.empty()) return committed_.generation;

  // Merge staged entries over the committed index (staged wins), keeping
  // the sorted order the format requires.
  std::vector<SegmentIndexEntry> merged = committed_index_;
  for (const SegmentIndexEntry& staged : staged_) {
    auto it = std::lower_bound(
        merged.begin(), merged.end(), staged,
        [](const SegmentIndexEntry& a, const SegmentIndexEntry& b) {
          return a.vehicle_id < b.vehicle_id;
        });
    if (it != merged.end() && it->vehicle_id == staged.vehicle_id) {
      *it = staged;
    } else {
      merged.insert(it, staged);
    }
  }
  const std::string index = EncodeSegmentIndex(merged);
  SuperblockSlot slot;
  slot.vehicle_count = static_cast<uint32_t>(merged.size());
  slot.generation = committed_.generation + 1;
  slot.index_offset = staged_tail_;
  slot.index_size = index.size();
  slot.index_crc32 = Crc32(index);
  slot.file_used = staged_tail_ + index.size();

  FileHandle fd(::open(path_.c_str(), O_WRONLY | O_CLOEXEC));
  if (!fd.ok()) {
    return Status::IOError("cannot open '" + path_ +
                           "' for writing: " + std::strerror(errno));
  }
  // Publish order is what makes a torn commit invisible: (1) the merged
  // index lands past the committed tail and is fsynced, (2) only then does
  // the *alternate* superblock slot flip to the new generation. A crash
  // before (2) leaves the old slot winning; a torn slot write fails its
  // CRC and readers fall back to the old slot.
  NM_RETURN_NOT_OK(PwriteAll(fd.get(), index.data(), index.size(),
                             staged_tail_, path_));
  NEXTMAINT_FAILPOINT("storage.checkpoint.commit");
  NM_RETURN_NOT_OK(FsyncFile(fd.get(), path_));
  const std::string slot_bytes = EncodeSuperblockSlot(slot);
  const uint64_t slot_offset =
      ((slot.generation - 1) % 2) * kSuperblockSlotBytes;
  NM_RETURN_NOT_OK(PwriteAll(fd.get(), slot_bytes.data(), slot_bytes.size(),
                             slot_offset, path_));
  NM_RETURN_NOT_OK(FsyncFile(fd.get(), path_));

  committed_ = slot;
  committed_index_ = std::move(merged);
  staged_.clear();
  staged_tail_ = slot.file_used;
  return slot.generation;
}

}  // namespace storage
}  // namespace nextmaint
