#ifndef NEXTMAINT_STORAGE_CORPUS_H_
#define NEXTMAINT_STORAGE_CORPUS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/date.h"
#include "common/status.h"
#include "data/time_series.h"
#include "storage/checkpoint_store.h"

/// \file corpus.h
/// Compacted binary fleet corpus (format "NMCORP1"): per-vehicle column
/// blocks behind summary headers.
///
/// Fleet CSVs are convenient to produce but expensive to serve from: every
/// pipeline start re-parses text for the whole fleet, and cold-start
/// similarity needs each candidate's first-half-cycle usage — which the
/// CSV path can only get by loading the full series. The compactor
/// (CLI `compact`, following LightGBM's two-pass dataset_loader design)
/// converts a CSV directory into one binary file:
///
///     offset 0    superblock (64 bytes: magic, counts, index span, T_v)
///     offset 64   column blocks, one per vehicle (dense daily f64 usage)
///     tail        summary index: id, first day, day count, usage moments,
///                 the first-half-cycle similarity key, block offset + CRC
///
/// `CorpusReader` mmaps the file and decodes only the summary index
/// eagerly. Cold-start similarity and corpus screening run from those
/// headers alone; a vehicle's block pages are touched (and CRC-verified)
/// only when `Series()` materializes it. All numbers little-endian; the
/// whole file is written tmp + rename, so readers never see a partial
/// corpus. Corruption surfaces as StatusCode::kDataLoss.

namespace nextmaint {
namespace storage {

/// First bytes of every compacted corpus ("NMCORP1\0").
inline constexpr char kCorpusMagic[8] = {'N', 'M', 'C', 'O', 'R', 'P', '1',
                                         '\0'};
inline constexpr uint32_t kCorpusVersion = 1;
inline constexpr size_t kCorpusSuperblockBytes = 64;

/// Header-resident facts about one vehicle — everything cold-start
/// screening needs without touching the vehicle's block.
struct CorpusVehicleSummary {
  std::string vehicle_id;
  /// Date of the first observation; day i of the block is first_day + i.
  Date first_day;
  uint32_t num_days = 0;
  double total_usage = 0.0;
  double mean_usage = 0.0;
  double max_usage = 0.0;
  /// The cold-start similarity key: utilization of the first half of the
  /// first cycle (days until cumulative usage reaches T_v/2, inclusive) —
  /// the exact series core::FirstHalfCycleUsage derives. Empty when the
  /// vehicle has not used T_v/2 yet (category "new") or the series is
  /// incomplete.
  std::vector<double> first_half_usage;
};

/// True when `path` starts with the corpus magic; kMissing-like paths are
/// IOError (the CLI uses this to route `--data FILE` vs `--data DIR`).
[[nodiscard]] Result<bool> IsCorpusFile(const std::string& path);

/// Streaming corpus writer: one vehicle resident at a time, summaries and
/// block layout accumulated in memory, file published atomically by
/// Finish(). Vehicles must be added in strictly ascending id order (the
/// compactor sorts its CSV worklist, which gives byte-deterministic
/// output).
class CorpusWriter {
 public:
  /// Starts writing `path` (via `path.tmp`). `maintenance_interval_s` is
  /// the T_v the similarity keys are derived against; it is stored in the
  /// superblock so readers know which scheduling regime the headers match.
  static Result<std::unique_ptr<CorpusWriter>> Create(
      std::string path, double maintenance_interval_s);
  ~CorpusWriter();

  /// Appends one vehicle's column block and stages its summary header.
  /// (Named AddVehicle, not Add: the lint's harvested-name matching would
  /// otherwise flag unrelated void Add() overloads tree-wide.)
  [[nodiscard]] Status AddVehicle(const std::string& vehicle_id,
                                  const data::DailySeries& series);

  /// Writes the summary index and superblock, fsyncs, and renames the temp
  /// file into place. Returns the corpus size in bytes. The writer is
  /// finished afterwards (further Add/Finish calls fail).
  [[nodiscard]] Result<uint64_t> Finish();

 private:
  CorpusWriter(std::string path, std::string tmp_path, int fd, double tv);

  struct BlockEntry;

  const std::string path_;
  const std::string tmp_path_;
  int fd_;
  const double tv_;
  uint64_t tail_ = kCorpusSuperblockBytes;
  std::vector<BlockEntry> entries_;
  bool finished_ = false;
};

/// mmap-backed corpus reader: summary headers eager, blocks lazy.
class CorpusReader {
 public:
  /// Maps `path` and decodes the superblock + summary index (kDataLoss on
  /// any corruption). No block pages are touched.
  static Result<std::unique_ptr<CorpusReader>> Open(const std::string& path);

  /// The T_v the similarity keys were compacted against.
  double maintenance_interval_s() const { return tv_; }

  /// All vehicle summaries, sorted by id.
  const std::vector<CorpusVehicleSummary>& summaries() const {
    return summaries_;
  }

  /// Summary of one vehicle; NotFound for absent ids.
  [[nodiscard]] Result<const CorpusVehicleSummary*> Summary(
      const std::string& vehicle_id) const;

  /// Materializes one vehicle's daily series from its column block. This
  /// is the first (and only) point the block's pages are read; the block
  /// CRC is verified here. NotFound for absent ids.
  [[nodiscard]] Result<data::DailySeries> Series(
      const std::string& vehicle_id) const;

 private:
  struct BlockRef {
    uint64_t offset = 0;
    uint64_t size = 0;
    uint32_t crc32 = 0;
  };

  CorpusReader() = default;

  std::shared_ptr<const MappedFile> file_;
  double tv_ = 0.0;
  std::vector<CorpusVehicleSummary> summaries_;
  /// Parallel to summaries_: where each vehicle's block lives.
  std::vector<BlockRef> blocks_;
};

}  // namespace storage
}  // namespace nextmaint

#endif  // NEXTMAINT_STORAGE_CORPUS_H_
