#include "storage/checkpoint_format.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>

#include "common/macros.h"

namespace nextmaint {
namespace storage {

namespace {

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(std::span<const uint8_t> data) {
  static const std::array<uint32_t, 256> kTable = BuildCrcTable();
  uint32_t crc = 0xFFFFFFFFu;
  for (uint8_t byte : data) {
    crc = kTable[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void AppendU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
}

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void AppendI64(std::string* out, int64_t v) {
  AppendU64(out, static_cast<uint64_t>(v));
}

void AppendF64(std::string* out, double v) {
  AppendU64(out, std::bit_cast<uint64_t>(v));
}

Status ByteParser::Need(size_t n) {
  if (data_.size() - pos_ < n) {
    return Status::DataLoss("truncated record: need " + std::to_string(n) +
                            " bytes at offset " + std::to_string(pos_) +
                            ", have " + std::to_string(data_.size() - pos_));
  }
  return Status::OK();
}

Status ByteParser::ReadU16(uint16_t* out) {
  NM_RETURN_NOT_OK(Need(2));
  *out = static_cast<uint16_t>(data_[pos_]) |
         static_cast<uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return Status::OK();
}

Status ByteParser::ReadU32(uint32_t* out) {
  NM_RETURN_NOT_OK(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  *out = v;
  return Status::OK();
}

Status ByteParser::ReadU64(uint64_t* out) {
  NM_RETURN_NOT_OK(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  *out = v;
  return Status::OK();
}

Status ByteParser::ReadI64(int64_t* out) {
  uint64_t raw = 0;
  NM_RETURN_NOT_OK(ReadU64(&raw));
  *out = static_cast<int64_t>(raw);
  return Status::OK();
}

Status ByteParser::ReadF64(double* out) {
  uint64_t raw = 0;
  NM_RETURN_NOT_OK(ReadU64(&raw));
  *out = std::bit_cast<double>(raw);
  return Status::OK();
}

Status ByteParser::ReadBytes(size_t n, std::string* out) {
  NM_RETURN_NOT_OK(Need(n));
  out->assign(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return Status::OK();
}

Status ByteParser::Skip(size_t n) {
  NM_RETURN_NOT_OK(Need(n));
  pos_ += n;
  return Status::OK();
}

std::string EncodeSuperblockSlot(const SuperblockSlot& slot) {
  std::string out;
  out.reserve(kSuperblockSlotBytes);
  out.append(kCheckpointMagic, sizeof(kCheckpointMagic));
  AppendU32(&out, kCheckpointVersion);
  AppendU32(&out, slot.vehicle_count);
  AppendU64(&out, slot.generation);
  AppendU64(&out, slot.index_offset);
  AppendU64(&out, slot.index_size);
  AppendU32(&out, slot.index_crc32);
  AppendU64(&out, slot.file_used);
  out.append(kSuperblockSlotBytes - 4 - out.size(), '\0');
  AppendU32(&out, Crc32(out));
  NM_CHECK(out.size() == kSuperblockSlotBytes);
  return out;
}

Result<SuperblockSlot> DecodeSuperblockSlot(std::span<const uint8_t> buf) {
  if (buf.size() != kSuperblockSlotBytes) {
    return Status::DataLoss("superblock slot is " + std::to_string(buf.size()) +
                            " bytes, expected " +
                            std::to_string(kSuperblockSlotBytes));
  }
  if (std::memcmp(buf.data(), kCheckpointMagic, sizeof(kCheckpointMagic)) !=
      0) {
    return Status::DataLoss("bad checkpoint magic");
  }
  // The slot CRC covers everything before its own trailing 4 bytes; check
  // it first so all later field validation runs on bytes known to be the
  // ones a writer committed.
  ByteParser tail(buf.subspan(kSuperblockSlotBytes - 4));
  uint32_t stored_crc = 0;
  NM_RETURN_NOT_OK(tail.ReadU32(&stored_crc));
  const uint32_t actual_crc = Crc32(buf.first(kSuperblockSlotBytes - 4));
  if (stored_crc != actual_crc) {
    return Status::DataLoss("superblock slot CRC mismatch");
  }
  ByteParser parser(buf.subspan(sizeof(kCheckpointMagic)));
  uint32_t version = 0;
  SuperblockSlot slot;
  NM_RETURN_NOT_OK(parser.ReadU32(&version));
  NM_RETURN_NOT_OK(parser.ReadU32(&slot.vehicle_count));
  NM_RETURN_NOT_OK(parser.ReadU64(&slot.generation));
  NM_RETURN_NOT_OK(parser.ReadU64(&slot.index_offset));
  NM_RETURN_NOT_OK(parser.ReadU64(&slot.index_size));
  NM_RETURN_NOT_OK(parser.ReadU32(&slot.index_crc32));
  NM_RETURN_NOT_OK(parser.ReadU64(&slot.file_used));
  if (version != kCheckpointVersion) {
    return Status::DataLoss("unsupported checkpoint version " +
                            std::to_string(version));
  }
  if (slot.generation == 0) {
    return Status::DataLoss("superblock slot has generation 0");
  }
  if (slot.index_offset < kDataRegionOffset ||
      slot.index_size > slot.file_used ||
      slot.index_offset > slot.file_used - slot.index_size) {
    return Status::DataLoss("superblock index span escapes the data region");
  }
  if (static_cast<uint64_t>(slot.vehicle_count) * kMinIndexEntryBytes >
      slot.index_size) {
    return Status::DataLoss("vehicle count " +
                            std::to_string(slot.vehicle_count) +
                            " cannot fit the committed index");
  }
  return slot;
}

std::string EncodeSegmentIndex(const std::vector<SegmentIndexEntry>& entries) {
  std::string out;
  for (size_t i = 0; i < entries.size(); ++i) {
    const SegmentIndexEntry& entry = entries[i];
    NM_CHECK_MSG(entry.vehicle_id.size() <= kMaxNameBytes &&
                     entry.model_name.size() <= kMaxNameBytes,
                 "index entry name exceeds kMaxNameBytes");
    NM_CHECK_MSG(i == 0 || entries[i - 1].vehicle_id < entry.vehicle_id,
                 "index entries must be sorted by vehicle id");
    AppendU16(&out, static_cast<uint16_t>(entry.vehicle_id.size()));
    out.append(entry.vehicle_id);
    AppendU16(&out, static_cast<uint16_t>(entry.model_name.size()));
    out.append(entry.model_name);
    AppendU64(&out, entry.segment_offset);
    AppendU64(&out, entry.payload_size);
    AppendU32(&out, entry.payload_crc32);
  }
  return out;
}

Result<std::vector<SegmentIndexEntry>> DecodeSegmentIndex(
    std::span<const uint8_t> buf, uint32_t vehicle_count,
    uint64_t file_limit) {
  ByteParser parser(buf);
  std::vector<SegmentIndexEntry> entries;
  // Cap the reservation by what the bytes could possibly hold: a corrupt
  // vehicle_count must fail on parse, not force a giant allocation first.
  entries.reserve(std::min<size_t>(vehicle_count,
                                   buf.size() / kMinIndexEntryBytes));
  for (uint32_t i = 0; i < vehicle_count; ++i) {
    SegmentIndexEntry entry;
    uint16_t id_len = 0;
    NM_RETURN_NOT_OK(parser.ReadU16(&id_len));
    if (id_len > kMaxNameBytes) {
      return Status::DataLoss("vehicle id length " + std::to_string(id_len) +
                              " exceeds the format cap");
    }
    NM_RETURN_NOT_OK(parser.ReadBytes(id_len, &entry.vehicle_id));
    uint16_t name_len = 0;
    NM_RETURN_NOT_OK(parser.ReadU16(&name_len));
    if (name_len > kMaxNameBytes) {
      return Status::DataLoss("model name length " + std::to_string(name_len) +
                              " exceeds the format cap");
    }
    NM_RETURN_NOT_OK(parser.ReadBytes(name_len, &entry.model_name));
    NM_RETURN_NOT_OK(parser.ReadU64(&entry.segment_offset));
    NM_RETURN_NOT_OK(parser.ReadU64(&entry.payload_size));
    NM_RETURN_NOT_OK(parser.ReadU32(&entry.payload_crc32));
    if (entry.segment_offset < kDataRegionOffset ||
        entry.payload_size > file_limit ||
        entry.segment_offset > file_limit - entry.payload_size) {
      return Status::DataLoss("segment for '" + entry.vehicle_id +
                              "' escapes the committed data region");
    }
    if (!entries.empty() && entries.back().vehicle_id >= entry.vehicle_id) {
      return Status::DataLoss("index entries out of order at '" +
                              entry.vehicle_id + "'");
    }
    entries.push_back(std::move(entry));
  }
  if (!parser.AtEnd()) {
    return Status::DataLoss("trailing bytes after the last index entry");
  }
  return entries;
}

}  // namespace storage
}  // namespace nextmaint
