#ifndef NEXTMAINT_STORAGE_CHECKPOINT_STORE_H_
#define NEXTMAINT_STORAGE_CHECKPOINT_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/checkpoint_format.h"

/// \file checkpoint_store.h
/// The fleet checkpoint surface: segmented, mmap-able, lazily loadable.
///
/// `CheckpointStore` is the one API the scheduler, serving engine and CLI
/// persist fleet model state through (docs/storage.md). It treats model
/// payloads as opaque byte blobs — (de)serialization stays with the owner —
/// which is what lets storage sit below core in the layer graph.
///
///   Open        bind a store to a path (the file need not exist yet)
///   Load        mmap the committed checkpoint; returns lazy segment views
///   SaveAll     atomically replace the checkpoint (tmp + rename)
///   SaveVehicle stage one vehicle's new payload (appended, uncommitted)
///   Commit      publish staged segments via the alternate superblock slot
///
/// Failure seams carry the storage.checkpoint.{open,map,segment_write,
/// commit} failpoints (docs/fault-injection.md). Corrupt committed state —
/// bad magic, torn superblock, CRC mismatch, truncated segment — surfaces
/// as StatusCode::kDataLoss.

namespace nextmaint {
namespace storage {

/// One vehicle's model payload as the owner serialized it.
struct VehicleRecord {
  std::string vehicle_id;
  std::string model_name;
  std::string payload;
};

/// A read-only mmap of a checkpoint file. Segment views alias into it, so
/// it stays alive (shared_ptr) until the last view is gone.
class MappedFile {
 public:
  /// mmaps `path` read-only. The fd is closed after mapping.
  static Result<std::shared_ptr<const MappedFile>> Map(
      const std::string& path);
  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  std::span<const uint8_t> bytes() const {
    return std::span<const uint8_t>(data_, size_);
  }

 private:
  MappedFile(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

/// A lazy window onto one committed segment. Holding a view keeps the
/// mapping alive; the payload bytes are only touched (and CRC-verified)
/// when Payload() is called — that is the laziness LoadCheckpoint rides on.
class SegmentView {
 public:
  SegmentView() = default;
  SegmentView(std::shared_ptr<const MappedFile> file, uint64_t offset,
              uint64_t size, uint32_t crc32)
      : file_(std::move(file)), offset_(offset), size_(size), crc32_(crc32) {}

  /// The segment's payload bytes, CRC-checked on every call (callers
  /// materialize a segment once). kDataLoss when the stored CRC does not
  /// match the mapped bytes.
  [[nodiscard]] Result<std::string_view> Payload() const;

  uint64_t size() const { return size_; }
  bool valid() const { return file_ != nullptr; }

 private:
  std::shared_ptr<const MappedFile> file_;
  uint64_t offset_ = 0;
  uint64_t size_ = 0;
  uint32_t crc32_ = 0;
};

/// One vehicle in a loaded checkpoint: identity from the index, payload
/// lazy behind the segment view.
struct ManifestEntry {
  std::string vehicle_id;
  std::string model_name;
  SegmentView segment;
};

/// A committed checkpoint as seen by Load(): generation plus the sorted
/// vehicle manifest.
struct CheckpointManifest {
  uint64_t generation = 0;
  std::vector<ManifestEntry> vehicles;
};

/// What a checkpoint path holds, for migration routing.
enum class CheckpointFormat {
  kMissing,
  /// The segmented "NMCKPT1" format this store reads and writes.
  kSegmented,
  /// The legacy monolithic text checkpoint ("vehicle <id> <model>" lines);
  /// kept as a read path in FleetScheduler::LoadCheckpoint.
  kLegacyText,
  kUnrecognized,
};

/// Sniffs the on-disk format from the file's first bytes (IOError only for
/// genuinely unreadable paths; a short or empty file is kUnrecognized).
[[nodiscard]] Result<CheckpointFormat> SniffCheckpointFormat(
    const std::string& path);

/// The segmented checkpoint store. One instance per path; the internal
/// mutex serializes staged writes, so one store can be shared by a serving
/// engine's writer and background checkpointers. Distinct processes still
/// must not write one path concurrently (the tmp name and the alternate
/// slot are per-file resources, same contract as the legacy format).
class CheckpointStore {
 public:
  /// Binds a store to `path`. The file may be absent (SaveAll creates it)
  /// or hold a legacy checkpoint (Load/SaveVehicle then fail with
  /// FailedPrecondition; SaveAll migrates by overwriting).
  static Result<std::unique_ptr<CheckpointStore>> Open(std::string path);

  /// mmaps the committed checkpoint and returns its manifest with lazy
  /// segment views. The index is decoded and bounds/CRC-checked eagerly
  /// (it is small); segment payloads stay untouched until
  /// SegmentView::Payload(). kDataLoss when no valid superblock slot
  /// exists or the index is corrupt; FailedPrecondition on a legacy file.
  [[nodiscard]] Result<CheckpointManifest> Load() EXCLUDES(mu_);

  /// Atomically replaces the checkpoint with exactly `records` (sorted
  /// internally; ids must be unique). Byte-deterministic: the same records
  /// always produce an identical file. Discards staged segments. Returns
  /// the committed generation (always 1 — a full save restarts the chain).
  [[nodiscard]] Result<uint64_t> SaveAll(std::vector<VehicleRecord> records)
      EXCLUDES(mu_);

  /// Stages one vehicle's new payload: appends the segment to the data
  /// region beyond the committed tail and records the index update in
  /// memory. Invisible to readers (and lost on crash) until Commit().
  /// FailedPrecondition when the path has no segmented checkpoint yet.
  [[nodiscard]] Status SaveVehicle(const VehicleRecord& record) EXCLUDES(mu_);

  /// Publishes every staged segment: appends the merged index, fsyncs, and
  /// flips the alternate superblock slot with generation + 1. The previous
  /// generation's superblock, index and segments are never touched, so a
  /// torn commit leaves the old checkpoint fully readable. Returns the new
  /// committed generation; no-op (current generation) when nothing is
  /// staged.
  [[nodiscard]] Result<uint64_t> Commit() EXCLUDES(mu_);

  const std::string& path() const { return path_; }

 private:
  explicit CheckpointStore(std::string path) : path_(std::move(path)) {}

  /// Reads the committed superblock + index into committed_*, refreshing
  /// the cache the write path merges staged entries against.
  [[nodiscard]] Status RefreshCommittedState() REQUIRES(mu_);

  const std::string path_;

  mutable Mutex mu_;
  /// Committed state mirror (superblock of the winning slot + its decoded
  /// index), loaded on first write-path use.
  bool committed_loaded_ GUARDED_BY(mu_) = false;
  SuperblockSlot committed_ GUARDED_BY(mu_);
  std::vector<SegmentIndexEntry> committed_index_ GUARDED_BY(mu_);
  /// Segments appended past committed_.file_used but not yet published;
  /// merged into the next Commit()'s index.
  std::vector<SegmentIndexEntry> staged_ GUARDED_BY(mu_);
  /// First free byte for the next staged append (>= committed_.file_used).
  uint64_t staged_tail_ GUARDED_BY(mu_) = 0;
};

}  // namespace storage
}  // namespace nextmaint

#endif  // NEXTMAINT_STORAGE_CHECKPOINT_STORE_H_
