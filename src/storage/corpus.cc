#include "storage/corpus.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/macros.h"

namespace nextmaint {
namespace storage {

namespace {

[[nodiscard]] Status WriteAllFd(int fd, const void* data, size_t size,
                                const std::string& path) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t n = ::write(fd, p, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("write to '" + path +
                             "' failed: " + std::strerror(errno));
    }
    p += n;
    size -= static_cast<size_t>(n);
  }
  return Status::OK();
}

/// The similarity key the summary header carries: mirror of
/// core::FirstHalfCycleUsage (usage of the days until cumulative usage
/// reaches T_v/2, inclusive), pinned equal by tests/storage/corpus_test.cc.
/// Storage cannot call core (it sits below it), so the derivation is
/// duplicated here; empty when the vehicle is still "new" or the series
/// has missing values.
std::vector<double> FirstHalfKey(const data::DailySeries& u, double tv) {
  if (tv <= 0.0 || !u.IsComplete()) return {};
  std::vector<double> out;
  double cumulative = 0.0;
  for (size_t t = 0; t < u.size(); ++t) {
    cumulative += u[t];
    out.push_back(u[t]);
    if (cumulative >= tv / 2.0) return out;
  }
  return {};
}

/// Superblock layout (64 bytes): magic, version, vehicle count, index
/// span + CRC, T_v, file_used, zero padding, slot CRC over bytes [0, 60).
std::string EncodeCorpusSuperblock(uint32_t vehicle_count,
                                   uint64_t index_offset, uint64_t index_size,
                                   uint32_t index_crc32, double tv,
                                   uint64_t file_used) {
  std::string out;
  out.reserve(kCorpusSuperblockBytes);
  out.append(kCorpusMagic, sizeof(kCorpusMagic));
  AppendU32(&out, kCorpusVersion);
  AppendU32(&out, vehicle_count);
  AppendU64(&out, index_offset);
  AppendU64(&out, index_size);
  AppendU32(&out, index_crc32);
  AppendF64(&out, tv);
  AppendU64(&out, file_used);
  out.append(kCorpusSuperblockBytes - 4 - out.size(), '\0');
  AppendU32(&out, Crc32(out));
  NM_CHECK(out.size() == kCorpusSuperblockBytes);
  return out;
}

struct CorpusSuperblock {
  uint32_t vehicle_count = 0;
  uint64_t index_offset = 0;
  uint64_t index_size = 0;
  uint32_t index_crc32 = 0;
  double tv = 0.0;
  uint64_t file_used = 0;
};

Result<CorpusSuperblock> DecodeCorpusSuperblock(std::span<const uint8_t> buf) {
  if (buf.size() != kCorpusSuperblockBytes) {
    return Status::DataLoss("corpus superblock is " +
                            std::to_string(buf.size()) + " bytes, expected " +
                            std::to_string(kCorpusSuperblockBytes));
  }
  if (std::memcmp(buf.data(), kCorpusMagic, sizeof(kCorpusMagic)) != 0) {
    return Status::DataLoss("bad corpus magic");
  }
  ByteParser tail(buf.subspan(kCorpusSuperblockBytes - 4));
  uint32_t stored_crc = 0;
  NM_RETURN_NOT_OK(tail.ReadU32(&stored_crc));
  if (stored_crc != Crc32(buf.first(kCorpusSuperblockBytes - 4))) {
    return Status::DataLoss("corpus superblock CRC mismatch");
  }
  ByteParser parser(buf.subspan(sizeof(kCorpusMagic)));
  uint32_t version = 0;
  CorpusSuperblock sb;
  NM_RETURN_NOT_OK(parser.ReadU32(&version));
  NM_RETURN_NOT_OK(parser.ReadU32(&sb.vehicle_count));
  NM_RETURN_NOT_OK(parser.ReadU64(&sb.index_offset));
  NM_RETURN_NOT_OK(parser.ReadU64(&sb.index_size));
  NM_RETURN_NOT_OK(parser.ReadU32(&sb.index_crc32));
  NM_RETURN_NOT_OK(parser.ReadF64(&sb.tv));
  NM_RETURN_NOT_OK(parser.ReadU64(&sb.file_used));
  if (version != kCorpusVersion) {
    return Status::DataLoss("unsupported corpus version " +
                            std::to_string(version));
  }
  if (sb.index_offset < kCorpusSuperblockBytes ||
      sb.index_size > sb.file_used ||
      sb.index_offset > sb.file_used - sb.index_size) {
    return Status::DataLoss("corpus index span escapes the data region");
  }
  return sb;
}

}  // namespace

Result<bool> IsCorpusFile(const std::string& path) {
  int raw = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (raw < 0) {
    return Status::IOError("cannot open '" + path +
                           "' for reading: " + std::strerror(errno));
  }
  char head[sizeof(kCorpusMagic)] = {};
  ssize_t n;
  do {
    n = ::pread(raw, head, sizeof(head), 0);
  } while (n < 0 && errno == EINTR);
  ::close(raw);
  if (n < 0) {
    return Status::IOError("cannot read '" + path +
                           "': " + std::strerror(errno));
  }
  return static_cast<size_t>(n) == sizeof(kCorpusMagic) &&
         std::memcmp(head, kCorpusMagic, sizeof(kCorpusMagic)) == 0;
}

struct CorpusWriter::BlockEntry {
  CorpusVehicleSummary summary;
  uint64_t offset = 0;
  uint64_t size = 0;
  uint32_t crc32 = 0;
};

CorpusWriter::CorpusWriter(std::string path, std::string tmp_path, int fd,
                           double tv)
    : path_(std::move(path)), tmp_path_(std::move(tmp_path)), fd_(fd),
      tv_(tv) {}

CorpusWriter::~CorpusWriter() {
  // An abandoned writer (error path, no Finish) leaves no trace.
  if (fd_ >= 0) {
    ::close(fd_);
    std::remove(tmp_path_.c_str());
  }
}

Result<std::unique_ptr<CorpusWriter>> CorpusWriter::Create(
    std::string path, double maintenance_interval_s) {
  if (path.empty()) {
    return Status::InvalidArgument("corpus path must not be empty");
  }
  if (maintenance_interval_s <= 0.0) {
    return Status::InvalidArgument("maintenance_interval_s must be positive");
  }
  std::string tmp_path = path + ".tmp";
  const int fd = ::open(tmp_path.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IOError("cannot open '" + tmp_path +
                           "' for writing: " + std::strerror(errno));
  }
  // Superblock placeholder; the real one lands in Finish() once the index
  // span is known.
  const std::string placeholder(kCorpusSuperblockBytes, '\0');
  Status status = WriteAllFd(fd, placeholder.data(), placeholder.size(),
                             tmp_path);
  if (!status.ok()) {
    ::close(fd);
    std::remove(tmp_path.c_str());
    return status;
  }
  return std::unique_ptr<CorpusWriter>(
      new CorpusWriter(  // nextmaint-lint: allow(naked-new)
          std::move(path), std::move(tmp_path), fd, maintenance_interval_s));
}

Status CorpusWriter::AddVehicle(const std::string& vehicle_id,
                         const data::DailySeries& series) {
  if (finished_) {
    return Status::FailedPrecondition("corpus writer already finished");
  }
  if (vehicle_id.empty() || vehicle_id.size() > kMaxNameBytes) {
    return Status::InvalidArgument("vehicle id '" + vehicle_id +
                                   "' is empty or exceeds the format cap");
  }
  if (!entries_.empty() &&
      entries_.back().summary.vehicle_id >= vehicle_id) {
    return Status::InvalidArgument(
        "corpus vehicles must be added in ascending id order ('" +
        vehicle_id + "' after '" + entries_.back().summary.vehicle_id + "')");
  }
  std::string block;
  block.reserve(series.size() * sizeof(double));
  double total = 0.0;
  double max_usage = 0.0;
  for (size_t i = 0; i < series.size(); ++i) {
    AppendF64(&block, series[i]);
    total += series[i];
    max_usage = std::max(max_usage, series[i]);
  }
  NM_RETURN_NOT_OK(WriteAllFd(fd_, block.data(), block.size(), tmp_path_));

  BlockEntry entry;
  entry.summary.vehicle_id = vehicle_id;
  entry.summary.first_day = series.start_date();
  entry.summary.num_days = static_cast<uint32_t>(series.size());
  entry.summary.total_usage = total;
  entry.summary.mean_usage =
      series.empty() ? 0.0 : total / static_cast<double>(series.size());
  entry.summary.max_usage = max_usage;
  entry.summary.first_half_usage = FirstHalfKey(series, tv_);
  entry.offset = tail_;
  entry.size = block.size();
  entry.crc32 = Crc32(block);
  tail_ += entry.size;
  entries_.push_back(std::move(entry));
  return Status::OK();
}

Result<uint64_t> CorpusWriter::Finish() {
  if (finished_) {
    return Status::FailedPrecondition("corpus writer already finished");
  }
  std::string index;
  for (const BlockEntry& entry : entries_) {
    const CorpusVehicleSummary& s = entry.summary;
    AppendU16(&index, static_cast<uint16_t>(s.vehicle_id.size()));
    index.append(s.vehicle_id);
    AppendI64(&index, s.first_day.day_number());
    AppendU64(&index, entry.offset);
    AppendU64(&index, entry.size);
    AppendU32(&index, entry.crc32);
    AppendU32(&index, s.num_days);
    AppendF64(&index, s.total_usage);
    AppendF64(&index, s.mean_usage);
    AppendF64(&index, s.max_usage);
    AppendU32(&index, static_cast<uint32_t>(s.first_half_usage.size()));
    for (double v : s.first_half_usage) AppendF64(&index, v);
  }
  const uint64_t file_used = tail_ + index.size();
  const std::string superblock = EncodeCorpusSuperblock(
      static_cast<uint32_t>(entries_.size()), tail_, index.size(),
      Crc32(index), tv_, file_used);

  Status status = [&]() -> Status {
    NM_RETURN_NOT_OK(WriteAllFd(fd_, index.data(), index.size(), tmp_path_));
    if (::pwrite(fd_, superblock.data(), superblock.size(), 0) !=
        static_cast<ssize_t>(superblock.size())) {
      return Status::IOError("cannot write corpus superblock to '" +
                             tmp_path_ + "': " + std::strerror(errno));
    }
    if (::fsync(fd_) != 0) {
      return Status::IOError("fsync of '" + tmp_path_ +
                             "' failed: " + std::strerror(errno));
    }
    return Status::OK();
  }();
  ::close(fd_);
  fd_ = -1;
  finished_ = true;
  if (!status.ok()) {
    std::remove(tmp_path_.c_str());
    return status;
  }
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    std::remove(tmp_path_.c_str());
    return Status::IOError("cannot rename '" + tmp_path_ + "' to '" + path_ +
                           "'");
  }
  return file_used;
}

Result<std::unique_ptr<CorpusReader>> CorpusReader::Open(
    const std::string& path) {
  NM_ASSIGN_OR_RETURN(std::shared_ptr<const MappedFile> file,
                      MappedFile::Map(path));
  const std::span<const uint8_t> bytes = file->bytes();
  if (bytes.size() < kCorpusSuperblockBytes) {
    return Status::DataLoss("'" + path + "' is too short to hold a corpus " +
                            "superblock");
  }
  Result<CorpusSuperblock> sb_result =
      DecodeCorpusSuperblock(bytes.first(kCorpusSuperblockBytes));
  if (!sb_result.ok()) return sb_result.status().WithContext(path);
  const CorpusSuperblock sb = std::move(sb_result).ValueOrDie();
  if (sb.file_used > bytes.size()) {
    return Status::DataLoss("'" + path + "' truncated below its committed " +
                            "size");
  }
  const std::span<const uint8_t> index =
      bytes.subspan(sb.index_offset, sb.index_size);
  if (Crc32(index) != sb.index_crc32) {
    return Status::DataLoss("corpus index CRC mismatch in '" + path + "'");
  }

  auto reader = std::unique_ptr<CorpusReader>(
      new CorpusReader());  // nextmaint-lint: allow(naked-new)
  reader->file_ = file;
  reader->tv_ = sb.tv;
  reader->summaries_.reserve(sb.vehicle_count);
  reader->blocks_.reserve(sb.vehicle_count);
  ByteParser parser(index);
  for (uint32_t i = 0; i < sb.vehicle_count; ++i) {
    CorpusVehicleSummary summary;
    BlockRef block;
    uint16_t id_len = 0;
    NM_RETURN_NOT_OK(parser.ReadU16(&id_len));
    if (id_len == 0 || id_len > kMaxNameBytes) {
      return Status::DataLoss("corpus vehicle id length " +
                              std::to_string(id_len) +
                              " violates the format cap");
    }
    NM_RETURN_NOT_OK(parser.ReadBytes(id_len, &summary.vehicle_id));
    int64_t first_day = 0;
    NM_RETURN_NOT_OK(parser.ReadI64(&first_day));
    summary.first_day = Date::FromDayNumber(first_day);
    NM_RETURN_NOT_OK(parser.ReadU64(&block.offset));
    NM_RETURN_NOT_OK(parser.ReadU64(&block.size));
    NM_RETURN_NOT_OK(parser.ReadU32(&block.crc32));
    NM_RETURN_NOT_OK(parser.ReadU32(&summary.num_days));
    NM_RETURN_NOT_OK(parser.ReadF64(&summary.total_usage));
    NM_RETURN_NOT_OK(parser.ReadF64(&summary.mean_usage));
    NM_RETURN_NOT_OK(parser.ReadF64(&summary.max_usage));
    uint32_t key_len = 0;
    NM_RETURN_NOT_OK(parser.ReadU32(&key_len));
    if (key_len > summary.num_days) {
      return Status::DataLoss("similarity key of '" + summary.vehicle_id +
                              "' is longer than its series");
    }
    summary.first_half_usage.reserve(key_len);
    for (uint32_t k = 0; k < key_len; ++k) {
      double v = 0.0;
      NM_RETURN_NOT_OK(parser.ReadF64(&v));
      summary.first_half_usage.push_back(v);
    }
    if (block.size != static_cast<uint64_t>(summary.num_days) *
                          sizeof(double) ||
        block.offset < kCorpusSuperblockBytes ||
        block.size > sb.file_used ||
        block.offset > sb.file_used - block.size) {
      return Status::DataLoss("column block of '" + summary.vehicle_id +
                              "' escapes the corpus data region");
    }
    if (!reader->summaries_.empty() &&
        reader->summaries_.back().vehicle_id >= summary.vehicle_id) {
      return Status::DataLoss("corpus index out of order at '" +
                              summary.vehicle_id + "'");
    }
    reader->summaries_.push_back(std::move(summary));
    reader->blocks_.push_back(block);
  }
  if (!parser.AtEnd()) {
    return Status::DataLoss("trailing bytes after the corpus index");
  }
  return reader;
}

Result<const CorpusVehicleSummary*> CorpusReader::Summary(
    const std::string& vehicle_id) const {
  auto it = std::lower_bound(
      summaries_.begin(), summaries_.end(), vehicle_id,
      [](const CorpusVehicleSummary& s, const std::string& id) {
        return s.vehicle_id < id;
      });
  if (it == summaries_.end() || it->vehicle_id != vehicle_id) {
    return Status::NotFound("vehicle '" + vehicle_id +
                            "' is not in the corpus");
  }
  return &*it;
}

Result<data::DailySeries> CorpusReader::Series(
    const std::string& vehicle_id) const {
  NM_ASSIGN_OR_RETURN(const CorpusVehicleSummary* summary,
                      Summary(vehicle_id));
  const BlockRef& block =
      blocks_[static_cast<size_t>(summary - summaries_.data())];
  const std::span<const uint8_t> bytes =
      file_->bytes().subspan(block.offset, block.size);
  if (Crc32(bytes) != block.crc32) {
    return Status::DataLoss("column block CRC mismatch for '" + vehicle_id +
                            "' (torn or bit-flipped block)");
  }
  ByteParser parser(bytes);
  std::vector<double> values;
  values.reserve(summary->num_days);
  for (uint32_t i = 0; i < summary->num_days; ++i) {
    double v = 0.0;
    NM_RETURN_NOT_OK(parser.ReadF64(&v));
    values.push_back(v);
  }
  return data::DailySeries(summary->first_day, std::move(values));
}

}  // namespace storage
}  // namespace nextmaint
