#ifndef NEXTMAINT_STORAGE_CHECKPOINT_FORMAT_H_
#define NEXTMAINT_STORAGE_CHECKPOINT_FORMAT_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"

/// \file checkpoint_format.h
/// On-disk layout of the segmented fleet checkpoint (format "NMCKPT1").
///
/// The legacy checkpoint was one monolithic text stream: loading it parsed
/// every model eagerly, and updating one vehicle rewrote the fleet. The
/// segmented format makes both operations proportional to what actually
/// changed, while keeping crash safety:
///
///     offset 0    superblock slot A (64 bytes)
///     offset 64   superblock slot B (64 bytes)
///     offset 128  data region: segments and index copies, append-only
///
/// A *segment* is one vehicle's opaque model payload (the same text bytes
/// `Regressor::Save` emits — storage never parses models). The *index* is a
/// sorted table of (vehicle id, model name, segment offset/size/crc32)
/// entries. A *superblock slot* names the committed index; the two slots
/// alternate shadow-paging style:
///
///  - A full SaveAll writes a fresh tmp file (slot A = generation 1,
///    slot B zeroed) and renames it into place — the legacy atomicity.
///  - A single-vehicle update appends the new segment and a new index copy
///    to the data region, then publishes them by overwriting the *other*
///    slot with generation + 1. Readers take the valid slot with the
///    highest generation, so a torn commit is invisible: old segments, the
///    old index and the old slot are never modified in place.
///
/// Everything multi-byte is little-endian. Each slot carries a CRC32 over
/// its first 60 bytes; the index and every segment carry their own CRC32.
/// Decoders in this header are pure span -> struct functions so the fuzz
/// suite (tests/storage/) can hammer them without touching a filesystem,
/// mirroring the wire-protocol decoders (serve/protocol.h). Corruption is
/// reported as StatusCode::kDataLoss: bytes we previously wrote back can no
/// longer be trusted.

namespace nextmaint {
namespace storage {

/// First bytes of every segmented checkpoint ("NMCKPT1\0").
inline constexpr char kCheckpointMagic[8] = {'N', 'M', 'C', 'K',
                                             'P', 'T', '1', '\0'};
inline constexpr uint32_t kCheckpointVersion = 1;
/// One superblock slot, encoded.
inline constexpr size_t kSuperblockSlotBytes = 64;
/// Start of the append-only data region (after the two slots).
inline constexpr uint64_t kDataRegionOffset = 2 * kSuperblockSlotBytes;
/// Upper bound on vehicle-id / model-name bytes in an index entry; a
/// decoded length beyond it is corruption, not a huge allocation.
inline constexpr size_t kMaxNameBytes = 1024;
/// Encoded size floor of one index entry (empty id and name).
inline constexpr size_t kMinIndexEntryBytes = 2 + 2 + 8 + 8 + 4;

/// CRC-32 (IEEE 802.3, reflected) over `data`.
uint32_t Crc32(std::span<const uint8_t> data);
inline uint32_t Crc32(const std::string& data) {
  return Crc32(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(data.data()), data.size()));
}

/// Little-endian primitive appenders, shared with the corpus format.
void AppendU16(std::string* out, uint16_t v);
void AppendU32(std::string* out, uint32_t v);
void AppendU64(std::string* out, uint64_t v);
void AppendI64(std::string* out, int64_t v);
void AppendF64(std::string* out, double v);

/// Bounds-checked little-endian reader over an immutable byte span.
/// Truncation surfaces as kDataLoss (the caller is decoding bytes this
/// library previously wrote).
class ByteParser {
 public:
  explicit ByteParser(std::span<const uint8_t> data) : data_(data) {}

  [[nodiscard]] Status ReadU16(uint16_t* out);
  [[nodiscard]] Status ReadU32(uint32_t* out);
  [[nodiscard]] Status ReadU64(uint64_t* out);
  [[nodiscard]] Status ReadI64(int64_t* out);
  [[nodiscard]] Status ReadF64(double* out);
  /// Reads `n` raw bytes into `out`.
  [[nodiscard]] Status ReadBytes(size_t n, std::string* out);
  /// Skips `n` bytes.
  [[nodiscard]] Status Skip(size_t n);

  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  [[nodiscard]] Status Need(size_t n);

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

/// Decoded superblock slot. `generation` 0 never occurs in a valid slot.
struct SuperblockSlot {
  uint32_t vehicle_count = 0;
  uint64_t generation = 0;
  /// Absolute file offset / byte size of the committed index.
  uint64_t index_offset = 0;
  uint64_t index_size = 0;
  uint32_t index_crc32 = 0;
  /// Offset of the first free byte; appends resume here. Everything the
  /// committed index references lies below it.
  uint64_t file_used = 0;
};

/// One committed vehicle segment.
struct SegmentIndexEntry {
  std::string vehicle_id;
  std::string model_name;
  /// Absolute file offset of the payload bytes.
  uint64_t segment_offset = 0;
  uint64_t payload_size = 0;
  uint32_t payload_crc32 = 0;
};

/// Encodes one superblock slot (exactly kSuperblockSlotBytes, CRC filled).
std::string EncodeSuperblockSlot(const SuperblockSlot& slot);

/// Decodes and validates one superblock slot: magic, version, slot CRC,
/// generation > 0, and internal consistency (index inside
/// [kDataRegionOffset, file_used], count vs index size). kDataLoss on any
/// violation. `buf` must be exactly kSuperblockSlotBytes.
[[nodiscard]] Result<SuperblockSlot> DecodeSuperblockSlot(
    std::span<const uint8_t> buf);

/// Encodes the index for `entries` (must be sorted by vehicle_id,
/// duplicate-free — NM_CHECKed).
std::string EncodeSegmentIndex(const std::vector<SegmentIndexEntry>& entries);

/// Decodes an index of `vehicle_count` entries from `buf` (the exact
/// committed index bytes; the caller has already verified `index_crc32`).
/// Validates strict vehicle-id ordering, name caps, and that every segment
/// lies inside [kDataRegionOffset, file_limit). kDataLoss on any violation.
[[nodiscard]] Result<std::vector<SegmentIndexEntry>> DecodeSegmentIndex(
    std::span<const uint8_t> buf, uint32_t vehicle_count, uint64_t file_limit);

}  // namespace storage
}  // namespace nextmaint

#endif  // NEXTMAINT_STORAGE_CHECKPOINT_FORMAT_H_
