#ifndef NEXTMAINT_NEXTMAINT_H_
#define NEXTMAINT_NEXTMAINT_H_

/// \file nextmaint.h
/// Umbrella header: the full public API of the nextmaint library.
///
/// Layering (low to high):
///   common/     Status/Result, Rng, Date, statistics, logging
///   data/       DailySeries, columnar Table, CSV, preparation pipeline
///   telematics/ CAN bus + controller simulation, fleet generator
///   ml/         Matrix, regressors (LR/LSVR/Tree/RF/XGB), CV, grid search
///   core/       the paper's contribution: series derivation, vehicle
///               categories, error metrics, dataset builder, per-category
///               methodologies, fleet scheduler
///   serve/      incremental serving engine: cached per-vehicle state,
///               dirty-tracked refreshes, epoch/snapshot reads

#include "common/date.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/statistics.h"
#include "common/status.h"
#include "common/strings.h"
#include "core/baseline.h"
#include "core/category.h"
#include "core/cold_start.h"
#include "core/dataset_builder.h"
#include "core/drift.h"
#include "core/errors.h"
#include "core/old_vehicle.h"
#include "core/scheduler.h"
#include "core/series.h"
#include "core/similarity.h"
#include "core/workshop_planner.h"
#include "data/csv.h"
#include "data/preprocess.h"
#include "data/table.h"
#include "data/time_series.h"
#include "ml/dataset.h"
#include "ml/decision_tree.h"
#include "ml/hist_gradient_boosting.h"
#include "ml/linear_regression.h"
#include "ml/linear_svr.h"
#include "ml/matrix.h"
#include "ml/metrics.h"
#include "ml/model_selection.h"
#include "ml/random_forest.h"
#include "ml/registry.h"
#include "ml/regressor.h"
#include "ml/scaler.h"
#include "ml/serialization.h"
#include "serve/serving_engine.h"
#include "telematics/can_bus.h"
#include "telematics/controller.h"
#include "telematics/fleet.h"
#include "telematics/usage_model.h"
#include "telematics/weather.h"

#endif  // NEXTMAINT_NEXTMAINT_H_
