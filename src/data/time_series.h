#ifndef NEXTMAINT_DATA_TIME_SERIES_H_
#define NEXTMAINT_DATA_TIME_SERIES_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/date.h"
#include "common/status.h"

/// \file time_series.h
/// Daily-granularity time series, the central data type of the pipeline.
///
/// A DailySeries couples a start date with a dense vector of doubles, one per
/// consecutive calendar day. Missing observations are represented as NaN and
/// handled explicitly by the preparation pipeline (see preprocess.h); all the
/// modelling code downstream requires gap-free series.

namespace nextmaint {
namespace data {

/// A dense daily time series starting at a given calendar date.
class DailySeries {
 public:
  /// An empty series starting at the epoch.
  DailySeries() = default;

  /// A series of `values[i]` observed on `start.AddDays(i)`.
  DailySeries(Date start, std::vector<double> values)
      : start_(start), values_(std::move(values)) {}

  /// Number of days covered.
  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  Date start_date() const { return start_; }
  /// Date of the last observation; equals start_date() for 1-element series.
  /// Aborts on empty series.
  Date end_date() const;

  /// Date the next Append() would cover: the day after end_date(), or
  /// start_date() for an empty series. This is the "virtual today" the
  /// serving path forecasts from and the date an in-order ingestor must
  /// supply next.
  Date next_date() const {
    return start_.AddDays(static_cast<int64_t>(values_.size()));
  }

  /// Value on day index `i` (0-based from start_date()).
  double operator[](size_t i) const { return values_[i]; }
  double& operator[](size_t i) { return values_[i]; }

  const std::vector<double>& values() const { return values_; }
  std::vector<double>& mutable_values() { return values_; }

  /// Appends one observation for the day following end_date().
  void Append(double value) { values_.push_back(value); }

  /// Value observed on `date`; NotFound when the date falls outside the
  /// covered range.
  [[nodiscard]] Result<double> At(Date date) const;

  /// Index of `date` within the series; NotFound when outside the range.
  [[nodiscard]] Result<size_t> IndexOf(Date date) const;

  /// Sub-series of `count` days starting at day index `offset`.
  /// Clamps to the available range.
  DailySeries Slice(size_t offset, size_t count) const;

  /// True when no value is NaN.
  bool IsComplete() const;

  /// Number of NaN entries.
  size_t MissingCount() const;

  /// Sum of all non-NaN values.
  double Sum() const;

  /// Mean of all non-NaN values; 0 when empty or all-NaN.
  double MeanValue() const;

  /// Cumulative sums: result[i] = sum of values[0..i] (NaN treated as 0).
  std::vector<double> CumulativeSum() const;

 private:
  Date start_;
  std::vector<double> values_;
};

}  // namespace data
}  // namespace nextmaint

#endif  // NEXTMAINT_DATA_TIME_SERIES_H_
