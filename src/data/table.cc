#include "data/table.h"

#include <cmath>
#include <limits>
#include <set>

#include "common/macros.h"

namespace nextmaint {
namespace data {

const char* ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kDouble:
      return "double";
    case ColumnType::kInt64:
      return "int64";
    case ColumnType::kString:
      return "string";
  }
  return "?";
}

Column::Column(std::string name, ColumnType type)
    : name_(std::move(name)), type_(type) {
  switch (type_) {
    case ColumnType::kDouble:
      cells_ = std::vector<double>();
      break;
    case ColumnType::kInt64:
      cells_ = std::vector<int64_t>();
      break;
    case ColumnType::kString:
      cells_ = std::vector<std::string>();
      break;
  }
}

size_t Column::size() const { return validity_.size(); }

void Column::AppendDouble(double value) {
  NM_CHECK_MSG(type_ == ColumnType::kDouble, name_.c_str());
  std::get<std::vector<double>>(cells_).push_back(value);
  validity_.push_back(true);
}

void Column::AppendInt64(int64_t value) {
  NM_CHECK_MSG(type_ == ColumnType::kInt64, name_.c_str());
  std::get<std::vector<int64_t>>(cells_).push_back(value);
  validity_.push_back(true);
}

void Column::AppendString(std::string value) {
  NM_CHECK_MSG(type_ == ColumnType::kString, name_.c_str());
  std::get<std::vector<std::string>>(cells_).push_back(std::move(value));
  validity_.push_back(true);
}

void Column::AppendNull() {
  switch (type_) {
    case ColumnType::kDouble:
      std::get<std::vector<double>>(cells_).push_back(
          std::numeric_limits<double>::quiet_NaN());
      break;
    case ColumnType::kInt64:
      std::get<std::vector<int64_t>>(cells_).push_back(0);
      break;
    case ColumnType::kString:
      std::get<std::vector<std::string>>(cells_).emplace_back();
      break;
  }
  validity_.push_back(false);
}

size_t Column::null_count() const {
  size_t count = 0;
  for (bool valid : validity_) {
    if (!valid) ++count;
  }
  return count;
}

double Column::DoubleAt(size_t row) const {
  NM_CHECK(type_ == ColumnType::kDouble);
  NM_CHECK(row < size());
  if (!validity_[row]) return std::numeric_limits<double>::quiet_NaN();
  return std::get<std::vector<double>>(cells_)[row];
}

int64_t Column::Int64At(size_t row) const {
  NM_CHECK(type_ == ColumnType::kInt64);
  NM_CHECK(row < size());
  return std::get<std::vector<int64_t>>(cells_)[row];
}

const std::string& Column::StringAt(size_t row) const {
  NM_CHECK(type_ == ColumnType::kString);
  NM_CHECK(row < size());
  return std::get<std::vector<std::string>>(cells_)[row];
}

Result<std::vector<double>> Column::AsDoubles() const {
  std::vector<double> out(size());
  switch (type_) {
    case ColumnType::kDouble: {
      const auto& v = std::get<std::vector<double>>(cells_);
      for (size_t i = 0; i < size(); ++i) {
        out[i] = validity_[i] ? v[i] : std::numeric_limits<double>::quiet_NaN();
      }
      return out;
    }
    case ColumnType::kInt64: {
      const auto& v = std::get<std::vector<int64_t>>(cells_);
      for (size_t i = 0; i < size(); ++i) {
        out[i] = validity_[i] ? static_cast<double>(v[i])
                              : std::numeric_limits<double>::quiet_NaN();
      }
      return out;
    }
    case ColumnType::kString:
      return Status::FailedPrecondition("string column '" + name_ +
                                        "' is not numeric");
  }
  return Status::Unknown("unreachable");
}

Result<Table> Table::Create(
    const std::vector<std::pair<std::string, ColumnType>>& schema) {
  Table table;
  std::set<std::string> seen;
  for (const auto& [name, type] : schema) {
    if (!seen.insert(name).second) {
      return Status::InvalidArgument("duplicate column name: " + name);
    }
    NM_RETURN_NOT_OK(table.AddColumn(Column(name, type)));
  }
  return table;
}

size_t Table::num_rows() const {
  return columns_.empty() ? 0 : columns_.front().size();
}

Status Table::AddColumn(Column column) {
  if (!columns_.empty() && column.size() != num_rows()) {
    return Status::InvalidArgument(
        "column '" + column.name() + "' has " +
        std::to_string(column.size()) + " rows, table has " +
        std::to_string(num_rows()));
  }
  if (name_index_.count(column.name()) > 0) {
    return Status::AlreadyExists("column '" + column.name() +
                                 "' already present");
  }
  name_index_.emplace(column.name(), columns_.size());
  columns_.push_back(std::move(column));
  return Status::OK();
}

Result<const Column*> Table::GetColumn(const std::string& name) const {
  auto it = name_index_.find(name);
  if (it == name_index_.end()) {
    return Status::NotFound("no column named '" + name + "'");
  }
  return &columns_[it->second];
}

Result<size_t> Table::ColumnIndex(const std::string& name) const {
  auto it = name_index_.find(name);
  if (it == name_index_.end()) {
    return Status::NotFound("no column named '" + name + "'");
  }
  return it->second;
}

std::vector<std::string> Table::ColumnNames() const {
  std::vector<std::string> names;
  names.reserve(columns_.size());
  for (const Column& column : columns_) names.push_back(column.name());
  return names;
}

namespace {

/// Copies row `row` of `src` into `dst` (same type).
void CopyCell(const Column& src, size_t row, Column* dst) {
  if (!src.IsValid(row)) {
    dst->AppendNull();
    return;
  }
  switch (src.type()) {
    case ColumnType::kDouble:
      dst->AppendDouble(src.DoubleAt(row));
      break;
    case ColumnType::kInt64:
      dst->AppendInt64(src.Int64At(row));
      break;
    case ColumnType::kString:
      dst->AppendString(src.StringAt(row));
      break;
  }
}

}  // namespace

Table Table::Filter(const std::function<bool(size_t)>& predicate) const {
  Table out;
  for (const Column& column : columns_) {
    Column copy(column.name(), column.type());
    for (size_t row = 0; row < num_rows(); ++row) {
      if (predicate(row)) CopyCell(column, row, &copy);
    }
    // Safe: all filtered columns have identical row counts by construction.
    NM_CHECK(out.AddColumn(std::move(copy)).ok());
  }
  return out;
}

Result<Table> Table::Select(const std::vector<std::string>& names) const {
  Table out;
  for (const std::string& name : names) {
    NM_ASSIGN_OR_RETURN(const Column* column, GetColumn(name));
    NM_RETURN_NOT_OK(out.AddColumn(*column));
  }
  return out;
}

Table Table::Slice(size_t offset, size_t count) const {
  const size_t n = num_rows();
  const size_t begin = std::min(offset, n);
  const size_t end = std::min(begin + count, n);
  return Filter([begin, end](size_t row) { return row >= begin && row < end; });
}

Status Table::Concat(const Table& other) {
  if (other.num_columns() != num_columns()) {
    return Status::InvalidArgument("schema mismatch: column counts differ");
  }
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name() != other.columns_[i].name() ||
        columns_[i].type() != other.columns_[i].type()) {
      return Status::InvalidArgument("schema mismatch at column " +
                                     std::to_string(i));
    }
  }
  for (size_t i = 0; i < columns_.size(); ++i) {
    for (size_t row = 0; row < other.num_rows(); ++row) {
      CopyCell(other.columns_[i], row, &columns_[i]);
    }
  }
  return Status::OK();
}

size_t Table::null_count() const {
  size_t count = 0;
  for (const Column& column : columns_) count += column.null_count();
  return count;
}

}  // namespace data
}  // namespace nextmaint
