#include "data/csv.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/failpoints.h"
#include "common/macros.h"
#include "common/strings.h"
#include "common/telemetry.h"

namespace nextmaint {
namespace data {

namespace {

bool IsNullToken(const std::string& cell, const CsvReadOptions& options) {
  const std::string trimmed(Trim(cell));
  return std::find(options.null_tokens.begin(), options.null_tokens.end(),
                   trimmed) != options.null_tokens.end();
}

/// Infers the narrowest type that can represent every non-null cell of a
/// column: int64 < double < string.
ColumnType InferType(const std::vector<std::vector<std::string>>& rows,
                     size_t col, const CsvReadOptions& options) {
  ColumnType type = ColumnType::kInt64;
  for (const auto& row : rows) {
    const std::string& cell = row[col];
    if (IsNullToken(cell, options)) continue;
    if (type == ColumnType::kInt64 && !ParseInt64(cell).ok()) {
      type = ColumnType::kDouble;
    }
    if (type == ColumnType::kDouble && !ParseDouble(cell).ok()) {
      type = ColumnType::kString;
      break;
    }
  }
  return type;
}

}  // namespace

Result<Table> ReadCsv(std::istream& input, const CsvReadOptions& options) {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
  std::string line;
  size_t line_number = 0;
  while (std::getline(input, line)) {
    ++line_number;
    NEXTMAINT_FAILPOINT("csv.read_row");
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() && header.empty() && rows.empty()) continue;
    std::vector<std::string> fields = Split(line, options.delimiter);
    if (header.empty() && options.has_header) {
      header = std::move(fields);
      continue;
    }
    const size_t expected =
        options.has_header ? header.size() : (rows.empty() ? fields.size()
                                                           : rows[0].size());
    if (fields.size() != expected) {
      telemetry::Count("data.csv.rows_rejected");
      return Status::DataError(
          StrFormat("line %zu: expected %zu fields, found %zu", line_number,
                    expected, fields.size()));
    }
    rows.push_back(std::move(fields));
  }
  telemetry::Count("data.csv.rows_parsed", rows.size());

  const size_t num_cols =
      options.has_header ? header.size() : (rows.empty() ? 0 : rows[0].size());
  Table table;
  for (size_t col = 0; col < num_cols; ++col) {
    // StrFormat instead of `"c" + std::to_string(col)`: the char* +
    // string&& operator trips GCC 12's -Wrestrict false positive at -O2.
    const std::string name = options.has_header ? std::string(Trim(header[col]))
                                                : StrFormat("c%zu", col);
    const ColumnType type = InferType(rows, col, options);
    Column column(name, type);
    for (const auto& row : rows) {
      const std::string& cell = row[col];
      if (IsNullToken(cell, options)) {
        column.AppendNull();
        continue;
      }
      switch (type) {
        case ColumnType::kInt64:
          // Inference guarantees parsability of non-null cells.
          column.AppendInt64(ParseInt64(cell).ValueOrDie());
          break;
        case ColumnType::kDouble:
          column.AppendDouble(ParseDouble(cell).ValueOrDie());
          break;
        case ColumnType::kString:
          column.AppendString(std::string(Trim(cell)));
          break;
      }
    }
    NM_RETURN_NOT_OK(table.AddColumn(std::move(column)));
  }
  return table;
}

Result<Table> ReadCsvFile(const std::string& path,
                          const CsvReadOptions& options) {
  std::ifstream file(path);
  if (!file) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  NEXTMAINT_FAILPOINT("csv.open_file");
  telemetry::Count("data.csv.files_read");
  telemetry::ScopedTimer timer("data.csv.read_file.seconds");
  Result<Table> result = ReadCsv(file, options);
  if (!result.ok()) {
    return result.status().WithContext(path);
  }
  return result;
}

Status WriteCsv(const Table& table, std::ostream& output,
                const CsvWriteOptions& options) {
  if (options.write_header) {
    const auto names = table.ColumnNames();
    output << Join(names, std::string(1, options.delimiter)) << "\n";
  }
  for (size_t row = 0; row < table.num_rows(); ++row) {
    for (size_t col = 0; col < table.num_columns(); ++col) {
      if (col > 0) output << options.delimiter;
      const Column& column = table.column(col);
      if (!column.IsValid(row)) {
        output << options.null_token;
        continue;
      }
      switch (column.type()) {
        case ColumnType::kDouble:
          output << FormatDouble(column.DoubleAt(row),
                                 options.double_precision);
          break;
        case ColumnType::kInt64:
          output << column.Int64At(row);
          break;
        case ColumnType::kString:
          output << column.StringAt(row);
          break;
      }
    }
    output << "\n";
  }
  if (!output) return Status::IOError("CSV write failed");
  return Status::OK();
}

Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvWriteOptions& options) {
  std::ofstream file(path);
  if (!file) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  return WriteCsv(table, file, options).WithContext(path);
}

}  // namespace data
}  // namespace nextmaint
