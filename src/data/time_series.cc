#include "data/time_series.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace nextmaint {
namespace data {

Date DailySeries::end_date() const {
  NM_CHECK(!values_.empty());
  return start_.AddDays(static_cast<int64_t>(values_.size()) - 1);
}

Result<double> DailySeries::At(Date date) const {
  NM_ASSIGN_OR_RETURN(size_t index, IndexOf(date));
  return values_[index];
}

Result<size_t> DailySeries::IndexOf(Date date) const {
  const int64_t offset = date.DaysSince(start_);
  if (offset < 0 || offset >= static_cast<int64_t>(values_.size())) {
    return Status::NotFound("date " + date.ToString() +
                            " outside series range");
  }
  return static_cast<size_t>(offset);
}

DailySeries DailySeries::Slice(size_t offset, size_t count) const {
  if (offset >= values_.size()) {
    return DailySeries(start_.AddDays(static_cast<int64_t>(offset)), {});
  }
  const size_t end = std::min(values_.size(), offset + count);
  return DailySeries(
      start_.AddDays(static_cast<int64_t>(offset)),
      std::vector<double>(values_.begin() + static_cast<ptrdiff_t>(offset),
                          values_.begin() + static_cast<ptrdiff_t>(end)));
}

bool DailySeries::IsComplete() const { return MissingCount() == 0; }

size_t DailySeries::MissingCount() const {
  size_t count = 0;
  for (double v : values_) {
    if (std::isnan(v)) ++count;
  }
  return count;
}

double DailySeries::Sum() const {
  double sum = 0.0;
  for (double v : values_) {
    if (!std::isnan(v)) sum += v;
  }
  return sum;
}

double DailySeries::MeanValue() const {
  double sum = 0.0;
  size_t n = 0;
  for (double v : values_) {
    if (!std::isnan(v)) {
      sum += v;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

std::vector<double> DailySeries::CumulativeSum() const {
  std::vector<double> out(values_.size());
  double acc = 0.0;
  for (size_t i = 0; i < values_.size(); ++i) {
    if (!std::isnan(values_[i])) acc += values_[i];
    out[i] = acc;
  }
  return out;
}

}  // namespace data
}  // namespace nextmaint
