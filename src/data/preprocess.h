#ifndef NEXTMAINT_DATA_PREPROCESS_H_
#define NEXTMAINT_DATA_PREPROCESS_H_

#include <string>
#include <vector>

#include "common/date.h"
#include "common/status.h"
#include "data/table.h"
#include "data/time_series.h"

/// \file preprocess.h
/// Steps (i)-(iii) of the paper's data-preparation pipeline (Section 3):
/// cleaning, normalization and aggregation. Steps (iv) enrichment (derived
/// series C, L, D) and (v) transformation (windowed features) operate on the
/// problem-specific types and live in core/series.h and core/dataset.h.

namespace nextmaint {
namespace data {

/// How to repair missing (NaN) observations in a daily series.
enum class MissingValuePolicy {
  /// Replace with 0 (no CAN reports on a day generally means no usage).
  kZero,
  /// Replace with the series mean of observed values.
  kMean,
  /// Carry the previous observed value forward (first gap filled with 0).
  kForwardFill,
  /// Linear interpolation between the neighbouring observed values
  /// (boundary gaps use the nearest observed value).
  kInterpolate,
};

/// Limits defining "consistent" daily utilization values.
struct ConsistencyLimits {
  /// A day has at most 86,400 seconds; larger values are sensor glitches.
  double max_daily_seconds = 86400.0;
  /// Negative utilization is impossible.
  double min_daily_seconds = 0.0;
};

/// Summary of the repairs applied by Clean().
struct CleaningReport {
  size_t missing_filled = 0;     ///< NaN cells repaired.
  size_t clamped_high = 0;       ///< values above max_daily_seconds.
  size_t clamped_low = 0;        ///< values below min_daily_seconds.
};

/// Repairs missing and inconsistent values of a utilization series in place.
/// Values outside the consistency limits are clamped before gap filling so
/// that fill statistics are not polluted by glitches.
CleaningReport Clean(DailySeries* series,
                     MissingValuePolicy policy = MissingValuePolicy::kZero,
                     const ConsistencyLimits& limits = {});

/// Parameters of a fitted min-max normalization, kept so that values can be
/// mapped back to the original scale.
struct MinMaxParams {
  double min = 0.0;
  double max = 1.0;

  double Transform(double value) const {
    return max > min ? (value - min) / (max - min) : 0.0;
  }
  double Inverse(double scaled) const { return min + scaled * (max - min); }
};

/// Scales a series to [0, 1] in place and returns the fitted parameters.
/// Constant series map to all-zeros. NaN values are left untouched (clean
/// first).
MinMaxParams NormalizeMinMax(DailySeries* series);

/// Applies previously fitted parameters to another series in place (e.g.
/// applying training-set scaling to test data).
void ApplyMinMax(const MinMaxParams& params, DailySeries* series);

/// Aggregates a report-level table into one daily utilization series.
///
/// The table must have a date column (string "YYYY-MM-DD" or int64 day
/// number) and a numeric duration column. Rows belonging to the same day are
/// summed — exactly what the on-board controller's summary reports require.
/// Calendar days missing entirely from the table become NaN (to be handled by
/// Clean()); null duration cells contribute nothing but mark the day observed.
[[nodiscard]] Result<DailySeries> AggregateDaily(const Table& table,
                                   const std::string& date_column,
                                   const std::string& duration_column);

/// Converts a daily series to a two-column table (date, value). Useful for
/// exporting prepared data back to CSV.
[[nodiscard]] Result<Table> SeriesToTable(const DailySeries& series,
                            const std::string& value_column_name);

}  // namespace data
}  // namespace nextmaint

#endif  // NEXTMAINT_DATA_PREPROCESS_H_
