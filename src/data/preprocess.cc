#include "data/preprocess.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "common/failpoints.h"
#include "common/macros.h"

namespace nextmaint {
namespace data {

namespace {

/// Mean over the non-NaN entries, or 0 when none exist.
double ObservedMean(const std::vector<double>& values) {
  double sum = 0.0;
  size_t n = 0;
  for (double v : values) {
    if (!std::isnan(v)) {
      sum += v;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

void FillInterpolate(std::vector<double>* values) {
  const size_t n = values->size();
  size_t i = 0;
  while (i < n) {
    if (!std::isnan((*values)[i])) {
      ++i;
      continue;
    }
    // Gap [i, j).
    size_t j = i;
    while (j < n && std::isnan((*values)[j])) ++j;
    const bool has_left = i > 0;
    const bool has_right = j < n;
    const double left = has_left ? (*values)[i - 1] : 0.0;
    const double right = has_right ? (*values)[j] : 0.0;
    for (size_t k = i; k < j; ++k) {
      if (has_left && has_right) {
        const double frac = static_cast<double>(k - i + 1) /
                            static_cast<double>(j - i + 1);
        (*values)[k] = left + (right - left) * frac;
      } else if (has_left) {
        (*values)[k] = left;
      } else if (has_right) {
        (*values)[k] = right;
      } else {
        (*values)[k] = 0.0;  // all-NaN series
      }
    }
    i = j;
  }
}

}  // namespace

CleaningReport Clean(DailySeries* series, MissingValuePolicy policy,
                     const ConsistencyLimits& limits) {
  CleaningReport report;
  std::vector<double>& values = series->mutable_values();

  // Step 1: clamp inconsistent values so fill statistics are unbiased.
  for (double& v : values) {
    if (std::isnan(v)) continue;
    if (v > limits.max_daily_seconds) {
      v = limits.max_daily_seconds;
      ++report.clamped_high;
    } else if (v < limits.min_daily_seconds) {
      v = limits.min_daily_seconds;
      ++report.clamped_low;
    }
  }

  // Step 2: repair missing values.
  report.missing_filled = series->MissingCount();
  if (report.missing_filled == 0) return report;

  switch (policy) {
    case MissingValuePolicy::kZero:
      for (double& v : values) {
        if (std::isnan(v)) v = 0.0;
      }
      break;
    case MissingValuePolicy::kMean: {
      const double mean = ObservedMean(values);
      for (double& v : values) {
        if (std::isnan(v)) v = mean;
      }
      break;
    }
    case MissingValuePolicy::kForwardFill: {
      double last = 0.0;
      for (double& v : values) {
        if (std::isnan(v)) {
          v = last;
        } else {
          last = v;
        }
      }
      break;
    }
    case MissingValuePolicy::kInterpolate:
      FillInterpolate(&values);
      break;
  }
  return report;
}

MinMaxParams NormalizeMinMax(DailySeries* series) {
  MinMaxParams params;
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (double v : series->values()) {
    if (std::isnan(v)) continue;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (!std::isfinite(lo) || !std::isfinite(hi)) {
    // Empty or all-NaN series: identity params.
    return params;
  }
  params.min = lo;
  params.max = hi;
  ApplyMinMax(params, series);
  return params;
}

void ApplyMinMax(const MinMaxParams& params, DailySeries* series) {
  for (double& v : series->mutable_values()) {
    if (!std::isnan(v)) v = params.Transform(v);
  }
}

Result<DailySeries> AggregateDaily(const Table& table,
                                   const std::string& date_column,
                                   const std::string& duration_column) {
  NEXTMAINT_FAILPOINT("preprocess.aggregate");
  NM_ASSIGN_OR_RETURN(const Column* dates, table.GetColumn(date_column));
  NM_ASSIGN_OR_RETURN(const Column* durations,
                      table.GetColumn(duration_column));
  if (durations->type() == ColumnType::kString) {
    return Status::InvalidArgument("duration column '" + duration_column +
                                   "' is not numeric");
  }
  if (table.num_rows() == 0) {
    return Status::InvalidArgument("cannot aggregate an empty table");
  }

  // day number -> accumulated seconds (NaN-free; observed days start at 0).
  std::map<int64_t, double> day_totals;
  for (size_t row = 0; row < table.num_rows(); ++row) {
    int64_t day_number;
    if (dates->type() == ColumnType::kString) {
      NM_ASSIGN_OR_RETURN(Date date, Date::Parse(dates->StringAt(row)));
      day_number = date.day_number();
    } else if (dates->type() == ColumnType::kInt64) {
      day_number = dates->Int64At(row);
    } else {
      return Status::InvalidArgument("date column '" + date_column +
                                     "' must be string or int64");
    }
    double& total = day_totals[day_number];
    if (!durations->IsValid(row)) continue;  // observed day, unknown duration
    const double seconds = durations->type() == ColumnType::kDouble
                               ? durations->DoubleAt(row)
                               : static_cast<double>(durations->Int64At(row));
    if (!std::isnan(seconds)) total += seconds;
  }

  const int64_t first = day_totals.begin()->first;
  const int64_t last = day_totals.rbegin()->first;
  std::vector<double> values(static_cast<size_t>(last - first + 1),
                             std::numeric_limits<double>::quiet_NaN());
  for (const auto& [day, total] : day_totals) {
    values[static_cast<size_t>(day - first)] = total;
  }
  return DailySeries(Date::FromDayNumber(first), std::move(values));
}

Result<Table> SeriesToTable(const DailySeries& series,
                            const std::string& value_column_name) {
  Column date_col("date", ColumnType::kString);
  Column value_col(value_column_name, ColumnType::kDouble);
  for (size_t i = 0; i < series.size(); ++i) {
    date_col.AppendString(
        series.start_date().AddDays(static_cast<int64_t>(i)).ToString());
    if (std::isnan(series[i])) {
      value_col.AppendNull();
    } else {
      value_col.AppendDouble(series[i]);
    }
  }
  Table table;
  NM_RETURN_NOT_OK(table.AddColumn(std::move(date_col)));
  NM_RETURN_NOT_OK(table.AddColumn(std::move(value_col)));
  return table;
}

}  // namespace data
}  // namespace nextmaint
