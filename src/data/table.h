#ifndef NEXTMAINT_DATA_TABLE_H_
#define NEXTMAINT_DATA_TABLE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "common/status.h"

/// \file table.h
/// A small columnar relational table.
///
/// The methodology section of the paper builds, per vehicle, a "relational
/// dataset" whose records are days and whose attributes are the windowed past
/// utilization values, the current time-left L(t) and the target D(t). Table
/// is the in-memory representation of such datasets (and of the raw summary
/// reports before aggregation): typed columns with per-cell validity, CSV
/// serializable (see csv.h), convertible to the dense ml::Matrix format.

namespace nextmaint {
namespace data {

/// Physical type of a column.
enum class ColumnType { kDouble, kInt64, kString };

const char* ColumnTypeName(ColumnType type);

/// A named, typed column with per-cell validity.
///
/// Cell storage is a std::variant over the three supported vector types; the
/// validity vector marks nulls (missing CAN reports, unparsable CSV cells).
class Column {
 public:
  Column(std::string name, ColumnType type);

  const std::string& name() const { return name_; }
  ColumnType type() const { return type_; }
  size_t size() const;

  /// Appends a valid cell. The overload must match the column type
  /// (checked, aborts on mismatch: schema violations are programmer errors).
  void AppendDouble(double value);
  void AppendInt64(int64_t value);
  void AppendString(std::string value);
  /// Appends a null cell of the column's type.
  void AppendNull();

  bool IsValid(size_t row) const { return validity_[row]; }
  size_t null_count() const;

  /// Typed accessors; abort on type mismatch or out-of-range row.
  /// Reading a null double cell returns NaN; null int64 returns 0; null
  /// string returns "".
  double DoubleAt(size_t row) const;
  int64_t Int64At(size_t row) const;
  const std::string& StringAt(size_t row) const;

  /// The column values as doubles (int64 widened). Null cells map to NaN.
  /// Fails with FailedPrecondition for string columns.
  [[nodiscard]] Result<std::vector<double>> AsDoubles() const;

 private:
  std::string name_;
  ColumnType type_;
  std::variant<std::vector<double>, std::vector<int64_t>,
               std::vector<std::string>>
      cells_;
  std::vector<bool> validity_;
};

/// A collection of equal-length named columns.
class Table {
 public:
  Table() = default;

  /// Creates a table with the given (name, type) schema and zero rows.
  /// Fails with InvalidArgument on duplicate column names.
  [[nodiscard]] static Result<Table> Create(
      const std::vector<std::pair<std::string, ColumnType>>& schema);

  size_t num_rows() const;
  size_t num_columns() const { return columns_.size(); }

  /// Adds a column; must match num_rows() unless the table is empty.
  [[nodiscard]] Status AddColumn(Column column);

  /// Column lookup by name / index.
  [[nodiscard]] Result<const Column*> GetColumn(const std::string& name) const;
  const Column& column(size_t i) const { return columns_[i]; }
  Column& mutable_column(size_t i) { return columns_[i]; }
  /// Index of the named column, or NotFound.
  [[nodiscard]] Result<size_t> ColumnIndex(const std::string& name) const;

  std::vector<std::string> ColumnNames() const;

  /// Returns the subset of rows for which `predicate(row_index)` is true,
  /// preserving order.
  Table Filter(const std::function<bool(size_t)>& predicate) const;

  /// Returns a table with only the named columns, in the given order.
  [[nodiscard]] Result<Table> Select(const std::vector<std::string>& names) const;

  /// Returns rows [offset, offset+count), clamped.
  Table Slice(size_t offset, size_t count) const;

  /// Appends all rows of `other`; schemas must match exactly.
  [[nodiscard]] Status Concat(const Table& other);

  /// Total nulls across all columns.
  size_t null_count() const;

 private:
  std::vector<Column> columns_;
  /// Name -> columns_ index. Kept in sync by AddColumn (column names are
  /// immutable once added), so duplicate checks and name lookups are O(1)
  /// instead of a linear scan — a 100k-column CSV would otherwise take
  /// ~5e9 string compares to assemble.
  std::unordered_map<std::string, size_t> name_index_;
};

}  // namespace data
}  // namespace nextmaint

#endif  // NEXTMAINT_DATA_TABLE_H_
