#ifndef NEXTMAINT_DATA_CSV_H_
#define NEXTMAINT_DATA_CSV_H_

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/table.h"

/// \file csv.h
/// CSV import/export for Table.
///
/// The deployed system exchanges daily-aggregate extracts as CSV files; this
/// module provides the corresponding reader/writer. The reader infers column
/// types (int64 -> double -> string, widest wins) and maps unparsable or
/// empty cells to nulls, feeding the cleaning step of the preparation
/// pipeline.

namespace nextmaint {
namespace data {

/// Options controlling CSV parsing.
struct CsvReadOptions {
  char delimiter = ',';
  /// When true the first row provides column names; otherwise columns are
  /// named "c0", "c1", ...
  bool has_header = true;
  /// Cells equal to any of these strings (after trimming) become nulls.
  std::vector<std::string> null_tokens = {"", "NA", "NaN", "null"};
};

/// Parses a CSV document into a Table. Fails with DataError on ragged rows
/// (rows whose field count differs from the header's).
[[nodiscard]] Result<Table> ReadCsv(std::istream& input, const CsvReadOptions& options = {});

/// Reads a CSV file from disk.
[[nodiscard]] Result<Table> ReadCsvFile(const std::string& path,
                          const CsvReadOptions& options = {});

/// Options controlling CSV output.
struct CsvWriteOptions {
  char delimiter = ',';
  bool write_header = true;
  /// Digits after the decimal point for double columns.
  int double_precision = 6;
  /// Token emitted for null cells.
  std::string null_token = "";
};

/// Serializes a Table as CSV.
[[nodiscard]] Status WriteCsv(const Table& table, std::ostream& output,
                const CsvWriteOptions& options = {});

/// Writes a Table to a CSV file on disk.
[[nodiscard]] Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvWriteOptions& options = {});

}  // namespace data
}  // namespace nextmaint

#endif  // NEXTMAINT_DATA_CSV_H_
