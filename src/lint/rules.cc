#include "lint/rules.h"

#include <cctype>
#include <regex>
#include <utility>

#include "common/strings.h"

namespace nextmaint {
namespace lint {
namespace {

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Last identifier ending at `end` (exclusive) in `text`, or "" when the
/// preceding token is not an identifier. Skips whitespace first.
std::string IdentifierEndingAt(const std::string& text, size_t end) {
  size_t stop = end;
  while (stop > 0 &&
         std::isspace(static_cast<unsigned char>(text[stop - 1])) != 0) {
    --stop;
  }
  size_t start = stop;
  while (start > 0 && IsWordChar(text[start - 1])) --start;
  if (start == stop) return "";
  return text.substr(start, stop - start);
}

/// First identifier of `text` starting at `pos`.
std::string LeadingIdentifier(const std::string& text, size_t pos) {
  size_t end = pos;
  while (end < text.size() && IsWordChar(text[end])) ++end;
  return text.substr(pos, end - pos);
}

}  // namespace

const char* RuleName(Rule rule) {
  switch (rule) {
    case Rule::kBannedPrimitive:
      return "banned-primitive";
    case Rule::kUncheckedStatus:
      return "unchecked-status";
    case Rule::kLayering:
      return "layering";
    case Rule::kNakedNew:
      return "naked-new";
    case Rule::kRowIteration:
      return "row-iteration";
    case Rule::kGuardedMutex:
      return "guarded-mutex";
    case Rule::kLockAnnotationDrift:
      return "lock-annotation-drift";
  }
  return "unknown";
}

std::string Finding::ToString() const {
  return StrFormat("%s:%d: [%s] %s", path.c_str(), line, RuleName(rule),
                   message.c_str());
}

bool PathMatchesSuffix(const std::string& path,
                       const std::vector<std::string>& suffixes) {
  for (const std::string& suffix : suffixes) {
    if (path.size() >= suffix.size() &&
        path.compare(path.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      return true;
    }
  }
  return false;
}

bool PathMatchesPrefix(const std::string& path,
                       const std::vector<std::string>& prefixes) {
  for (const std::string& prefix : prefixes) {
    if (path.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

std::vector<Finding> CheckGuardedMutex(const std::string& path,
                                       const ScrubbedSource& src,
                                       const RulePolicy& policy) {
  std::vector<Finding> findings;
  if (PathMatchesSuffix(path, policy.thread_wrapper_allowlist)) {
    return findings;
  }
  // Mutex-typed member/global declarations: `Mutex name;` /
  // `mutable std::mutex name;`. References and parameters (`Mutex& mu`)
  // deliberately do not match — only owning declarations need a guard.
  static const std::regex* const kMutexDecl =
      new std::regex(  // nextmaint-lint: allow(naked-new)
          R"((?:\bmutable\s+)?\b(std\s*::\s*mutex|(?:nextmaint\s*::\s*)?Mutex)\s+([A-Za-z_]\w*)\s*;)");
  for (std::sregex_iterator it(src.code.begin(), src.code.end(), *kMutexDecl),
       end;
       it != end; ++it) {
    const int line = src.LineOf(static_cast<size_t>(it->position()));
    if (src.IsAllowed(line, RuleName(Rule::kGuardedMutex))) continue;
    const std::string name = (*it)[2];
    const bool raw = (*it)[1].str().find("std") != std::string::npos;
    if (raw && !PathMatchesPrefix(path, policy.raw_mutex_prefixes)) {
      findings.push_back(
          {path, line, Rule::kGuardedMutex,
           StrFormat("raw std::mutex '%s' is invisible to -Wthread-safety; "
                     "use nextmaint::Mutex from common/thread_annotations.h",
                     name.c_str())});
    }
    // The declared mutex must guard at least one field in this file.
    const std::regex guarded(R"(\b(?:PT_)?GUARDED_BY\s*\(\s*)" + name +
                             R"(\s*\))");
    if (!std::regex_search(src.code, guarded)) {
      findings.push_back(
          {path, line, Rule::kGuardedMutex,
           StrFormat("mutex '%s' guards nothing; annotate at least one "
                     "sibling field GUARDED_BY(%s) (or remove the mutex)",
                     name.c_str(), name.c_str())});
    }
  }
  return findings;
}

std::vector<Finding> CheckLockAnnotationDrift(const std::string& path,
                                              const ScrubbedSource& src,
                                              const RulePolicy& policy) {
  std::vector<Finding> findings;
  if (PathMatchesSuffix(path, policy.thread_wrapper_allowlist)) {
    return findings;
  }
  // Raw std:: locking vocabulary. Locks taken through these are invisible
  // to the Clang analysis, so the REQUIRES/EXCLUDES annotations on the
  // surrounding functions silently drift out of sync with reality.
  static const std::regex* const kRawLocking =
      new std::regex(  // nextmaint-lint: allow(naked-new)
          R"(\bstd\s*::\s*(lock_guard|unique_lock|scoped_lock|shared_lock|condition_variable(?:_any)?|recursive_timed_mutex|recursive_mutex|shared_mutex|timed_mutex)\b)");
  for (std::sregex_iterator it(src.code.begin(), src.code.end(), *kRawLocking),
       end;
       it != end; ++it) {
    const int line = src.LineOf(static_cast<size_t>(it->position()));
    if (src.IsAllowed(line, RuleName(Rule::kLockAnnotationDrift))) continue;
    findings.push_back(
        {path, line, Rule::kLockAnnotationDrift,
         StrFormat("std::%s bypasses the annotated locking layer; lock "
                   "through Mutex/MutexLock/CondVar "
                   "(common/thread_annotations.h) so -Wthread-safety sees "
                   "it and keep REQUIRES/EXCLUDES on the locking function's "
                   "declaration",
                   it->str(1).c_str())});
  }
  // Suppressions are a last resort everywhere, and banned outright in the
  // subsystems whose lock discipline the serving stack depends on.
  static const std::regex* const kNoAnalysis =
      new std::regex(  // nextmaint-lint: allow(naked-new)
          R"(\bNO_THREAD_SAFETY_ANALYSIS\b)");
  if (PathMatchesPrefix(path, policy.no_analysis_banned_prefixes)) {
    for (std::sregex_iterator it(src.code.begin(), src.code.end(),
                                 *kNoAnalysis),
         end;
         it != end; ++it) {
      const int line = src.LineOf(static_cast<size_t>(it->position()));
      if (src.IsAllowed(line, RuleName(Rule::kLockAnnotationDrift))) continue;
      findings.push_back(
          {path, line, Rule::kLockAnnotationDrift,
           "NO_THREAD_SAFETY_ANALYSIS is banned in this subsystem; restate "
           "the locking so the analysis can prove it "
           "(docs/static-analysis.md#thread-safety-analysis)"});
    }
  }
  return findings;
}

std::vector<Finding> CheckBannedPrimitives(const std::string& path,
                                           const ScrubbedSource& src,
                                           const RulePolicy& policy) {
  std::vector<Finding> findings;
  if (PathMatchesSuffix(path, policy.banned_primitive_allowlist)) {
    return findings;
  }
  struct Banned {
    std::regex pattern;
    const char* what;
  };
  // The scrubbed text has comments and literals blanked, so these match
  // only real code tokens. Leaky singleton: regexes compile once.
  static const std::vector<Banned>* const kBanned =
      new std::vector<Banned>{  // nextmaint-lint: allow(naked-new)
      {std::regex(R"(\brand\s*\()"),
       "rand() is nondeterministic; use a seeded common/rng.h Rng"},
      {std::regex(R"(\bsrand\s*\()"),
       "srand() seeds global state; use a seeded common/rng.h Rng"},
      {std::regex(R"(\brandom_device\b)"),
       "std::random_device is nondeterministic; use a seeded common/rng.h "
       "Rng"},
      {std::regex(R"(\btime\s*\()"),
       "time() reads the wall clock; results must not depend on it"},
      {std::regex(R"(\bgettimeofday\s*\()"),
       "gettimeofday() reads the wall clock; results must not depend on it"},
      {std::regex(R"(\bsystem_clock\b)"),
       "system_clock is the wall clock; use steady_clock for durations and "
       "a seeded Rng for randomness"},
  };
  for (const Banned& banned : *kBanned) {
    for (std::sregex_iterator it(src.code.begin(), src.code.end(),
                                 banned.pattern),
         end;
         it != end; ++it) {
      const int line = src.LineOf(static_cast<size_t>(it->position()));
      if (src.IsAllowed(line, RuleName(Rule::kBannedPrimitive))) continue;
      findings.push_back(
          {path, line, Rule::kBannedPrimitive, banned.what});
    }
  }
  return findings;
}

std::vector<Finding> CheckNakedNew(const std::string& path,
                                   const ScrubbedSource& src,
                                   const RulePolicy& policy) {
  std::vector<Finding> findings;
  if (PathMatchesSuffix(path, policy.naked_new_allowlist)) return findings;
  static const std::regex* const kNewOrDelete =
      new std::regex(R"(\b(new|delete)\b)");  // nextmaint-lint: allow(naked-new)
  const std::string& code = src.code;
  for (std::sregex_iterator it(code.begin(), code.end(), *kNewOrDelete), end;
       it != end; ++it) {
    const size_t pos = static_cast<size_t>(it->position());
    const bool is_new = (*it)[1] == "new";
    // `operator new` / `operator delete` declarations are not expressions.
    if (IdentifierEndingAt(code, pos) == "operator") continue;
    size_t after = pos + (*it)[1].length();
    while (after < code.size() &&
           std::isspace(static_cast<unsigned char>(code[after])) != 0) {
      ++after;
    }
    if (is_new) {
      // A new-expression is followed by a type or placement parens.
      if (after >= code.size() ||
          (!IsWordChar(code[after]) && code[after] != '(' &&
           code[after] != ':')) {
        continue;
      }
    } else {
      // `= delete;` / `= delete` declarations: skip when preceded by '='
      // or when no operand follows.
      size_t before = pos;
      while (before > 0 &&
             std::isspace(static_cast<unsigned char>(code[before - 1])) != 0) {
        --before;
      }
      if (before > 0 && code[before - 1] == '=') continue;
      if (after < code.size() && code[after] == '[') {
        after = code.find(']', after);
        if (after == std::string::npos) continue;
        ++after;
        while (after < code.size() &&
               std::isspace(static_cast<unsigned char>(code[after])) != 0) {
          ++after;
        }
      }
      if (after >= code.size() ||
          (!IsWordChar(code[after]) && code[after] != '(' &&
           code[after] != '*')) {
        continue;
      }
    }
    const int line = src.LineOf(pos);
    if (src.IsAllowed(line, RuleName(Rule::kNakedNew))) continue;
    findings.push_back(
        {path, line, Rule::kNakedNew,
         is_new ? "naked new; use std::make_unique / std::make_shared or a "
                  "container"
                : "naked delete; owning pointers must be smart pointers"});
  }
  return findings;
}

std::vector<Finding> CheckLayering(const std::string& path,
                                   const std::string& content,
                                   const ScrubbedSource& src,
                                   const RulePolicy& policy) {
  std::vector<Finding> findings;
  // The layer of this file: longest configured prefix that matches.
  const std::map<std::string, std::set<std::string>>& layers = policy.layers;
  std::string file_layer;
  for (const auto& [prefix, allowed] : layers) {
    (void)allowed;
    if (path.rfind(prefix + "/", 0) == 0 && prefix.size() > file_layer.size()) {
      file_layer = prefix;
    }
  }
  if (file_layer.empty()) return findings;  // unconstrained directory
  const std::set<std::string>& allowed = layers.at(file_layer);

  for (const auto& [line, include] : ExtractQuotedIncludes(content)) {
    if (src.IsAllowed(line, RuleName(Rule::kLayering))) continue;
    if (include.find('/') == std::string::npos) {
      // The umbrella header (nextmaint.h) aggregates every layer; layered
      // code must include the specific headers it uses instead.
      if (include == "nextmaint.h") {
        findings.push_back({path, line, Rule::kLayering,
                            "layered code must not include the umbrella "
                            "header nextmaint.h"});
      }
      continue;
    }
    const std::string include_layer =
        "src/" + include.substr(0, include.find('/'));
    if (layers.find(include_layer) == layers.end()) continue;
    if (allowed.count(include_layer) == 0) {
      findings.push_back(
          {path, line, Rule::kLayering,
           StrFormat("%s must not include %s (allowed layers: %s)",
                     file_layer.c_str(), include.c_str(),
                     Join(std::vector<std::string>(allowed.begin(),
                                                   allowed.end()),
                          ", ")
                         .c_str())});
    }
  }
  return findings;
}

std::vector<Finding> CheckRowIteration(const std::string& path,
                                       const std::string& content,
                                       const ScrubbedSource& src,
                                       const RulePolicy& policy) {
  std::vector<Finding> findings;
  if (!PathMatchesSuffix(path, policy.row_iteration_paths)) return findings;
  for (const auto& [line, include] : ExtractQuotedIncludes(content)) {
    if (include != "ml/matrix.h" && include != "ml/dataset.h") continue;
    if (src.IsAllowed(line, RuleName(Rule::kRowIteration))) continue;
    findings.push_back(
        {path, line, Rule::kRowIteration,
         StrFormat("histogram kernels are columnar; include "
                   "ml/binned_dataset.h and consume a BinSource instead of "
                   "%s",
                   include.c_str())});
  }
  static const std::regex* const kRowAccess =
      new std::regex(  // nextmaint-lint: allow(naked-new)
          R"((?:\.|->)\s*(Row|Col)\s*\()");
  for (std::sregex_iterator it(src.code.begin(), src.code.end(), *kRowAccess),
       end;
       it != end; ++it) {
    const int line = src.LineOf(static_cast<size_t>(it->position()));
    if (src.IsAllowed(line, RuleName(Rule::kRowIteration))) continue;
    findings.push_back(
        {path, line, Rule::kRowIteration,
         StrFormat("raw %s() access in a histogram kernel; go through the "
                   "BinSource (BinnedDataset or OnTheFlyBins) instead",
                   it->str(1).c_str())});
  }
  return findings;
}

void CollectStatusFunctions(const ScrubbedSource& src,
                            std::set<std::string>* out) {
  // Matches `Status Name(`, `Result<...> Name(` and qualified definitions
  // like `Status Class::Name(`, with an optional nextmaint:: prefix on the
  // return type.
  static const std::regex* const kDeclaration =
      new std::regex(  // nextmaint-lint: allow(naked-new)
          R"((?:^|[^\w:<,&])(?:nextmaint\s*::\s*)?(?:Status|Result\s*<[^;{}()]*>)\s+(?:[A-Za-z_]\w*\s*::\s*)*([A-Za-z_]\w*)\s*\()");
  for (std::sregex_iterator it(src.code.begin(), src.code.end(), *kDeclaration),
       end;
       it != end; ++it) {
    out->insert((*it)[1]);
  }
}

std::vector<Finding> CheckUncheckedStatus(
    const std::string& path, const ScrubbedSource& src,
    const std::set<std::string>& status_functions) {
  std::vector<Finding> findings;

  // Blank preprocessor lines (with backslash continuations) so directives
  // do not leak into the statement stream.
  std::string code = src.code;
  {
    size_t pos = 0;
    while (pos < code.size()) {
      size_t eol = code.find('\n', pos);
      if (eol == std::string::npos) eol = code.size();
      size_t first = code.find_first_not_of(" \t", pos);
      if (first != std::string::npos && first < eol && code[first] == '#') {
        bool continued = true;
        while (continued && pos < code.size()) {
          if (eol == std::string::npos) eol = code.size();
          continued = eol > pos && code[eol - 1] == '\\';
          for (size_t i = pos; i < eol; ++i) code[i] = ' ';
          pos = eol + 1;
          eol = code.find('\n', pos);
        }
        continue;
      }
      pos = eol + 1;
    }
  }

  // Keywords that start statements whose expressions use their values (or
  // that are not expressions at all).
  static const std::set<std::string>* const kSkip =
      new std::set<std::string>{  // nextmaint-lint: allow(naked-new)
          "return",   "if",       "for",     "while",    "do",
          "switch",   "case",     "default", "break",    "continue",
          "goto",     "using",    "typedef", "namespace", "class",
          "struct",   "enum",     "union",   "template", "public",
          "private",  "protected", "friend", "static_assert", "co_return",
          "co_await", "co_yield", "throw",   "delete",   "new",
          "extern",   "sizeof",   "else",    "try",      "catch",
      };

  int paren_depth = 0;
  size_t stmt_start = 0;
  for (size_t i = 0; i <= code.size(); ++i) {
    const char c = i < code.size() ? code[i] : ';';
    if (c == '(' || c == '[') {
      ++paren_depth;
      continue;
    }
    if (c == ')' || c == ']') {
      if (paren_depth > 0) --paren_depth;
      continue;
    }
    if (!(c == ';' || c == '{' || c == '}') || paren_depth != 0) continue;

    const std::string stmt = code.substr(stmt_start, i - stmt_start);
    const size_t stmt_offset = stmt_start;
    stmt_start = i + 1;
    paren_depth = 0;  // recover from any unbalanced parens in macros

    // Only `...;` statements discard values; `{`/`}` delimited chunks are
    // headers of compound statements or block ends.
    if (c != ';') continue;
    size_t first = stmt.find_first_not_of(" \t\r\n");
    if (first == std::string::npos) continue;
    if (stmt[first] == '(') continue;  // (void)cast or parenthesized expr
    const std::string keyword = LeadingIdentifier(stmt, first);
    if (kSkip->count(keyword) > 0) continue;

    // Assignments and compound expressions use the value: skip statements
    // with any top-level operator outside calls.
    bool has_operator = false;
    int depth = 0;
    for (size_t j = first; j < stmt.size() && !has_operator; ++j) {
      const char s = stmt[j];
      if (s == '(' || s == '[') {
        ++depth;
      } else if (s == ')' || s == ']') {
        --depth;
      } else if (depth == 0) {
        switch (s) {
          case '=':
          case '+':
          case '|':
          case '^':
          case '%':
          case '?':
          case ',':
          case '!':
            has_operator = true;
            break;
          case '<':
          case '>':
            // `->` is a member access, `<...>` template args are skipped
            // conservatively: treat as operator only for `<<` / `>>`.
            if (j + 1 < stmt.size() && stmt[j + 1] == s) has_operator = true;
            break;
          case '-':
            if (j + 1 < stmt.size() && stmt[j + 1] != '>') has_operator = true;
            break;
          default:
            break;
        }
      }
    }
    if (has_operator) continue;

    // The statement must be a call: `obj.Func(args)` / `Func(args)`.
    size_t last = stmt.find_last_not_of(" \t\r\n");
    if (last == std::string::npos || stmt[last] != ')') continue;
    int call_depth = 0;
    size_t open = std::string::npos;
    for (size_t j = last + 1; j-- > first;) {
      if (stmt[j] == ')') ++call_depth;
      if (stmt[j] == '(') {
        --call_depth;
        if (call_depth == 0) {
          open = j;
          break;
        }
      }
    }
    if (open == std::string::npos) continue;
    const std::string name = IdentifierEndingAt(stmt, open);
    if (name.empty() || status_functions.count(name) == 0) continue;

    // Distinguish a discarded call from a declaration or definition: in
    // `obj.Foo(...)` / `ns::Foo(...)` the text before the callee ends with
    // '.', "->" or "::" (or is empty); in `Status Foo(...)` it ends with
    // another identifier, and in `auto&& x{Foo(...)}` with a brace.
    size_t name_start = open;
    while (name_start > first &&
           std::isspace(static_cast<unsigned char>(stmt[name_start - 1])) !=
               0) {
      --name_start;
    }
    name_start -= name.size();
    size_t prefix_end = name_start;
    while (prefix_end > first &&
           std::isspace(static_cast<unsigned char>(stmt[prefix_end - 1])) !=
               0) {
      --prefix_end;
    }
    if (prefix_end > first) {
      const char tail = stmt[prefix_end - 1];
      const bool member_access =
          tail == '.' ||
          (prefix_end >= first + 2 &&
           ((tail == '>' && stmt[prefix_end - 2] == '-') ||
            (tail == ':' && stmt[prefix_end - 2] == ':')));
      if (!member_access) continue;
    }

    const int line = src.LineOf(stmt_offset + first);
    if (src.IsAllowed(line, RuleName(Rule::kUncheckedStatus))) continue;
    findings.push_back(
        {path, line, Rule::kUncheckedStatus,
         StrFormat("result of Status-returning call '%s' is discarded; "
                   "check it, propagate it, or void it with "
                   "NEXTMAINT_IGNORE_STATUS",
                   name.c_str())});
  }
  return findings;
}

}  // namespace lint
}  // namespace nextmaint
