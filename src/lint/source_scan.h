#ifndef NEXTMAINT_LINT_SOURCE_SCAN_H_
#define NEXTMAINT_LINT_SOURCE_SCAN_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

/// \file source_scan.h
/// Text-level preprocessing for the nextmaint lint rules.
///
/// The rules in rules.h are regex/token checks, so the scanner first blanks
/// everything that is not code: comment bodies, string and character
/// literal contents (including raw strings) are replaced by spaces. The
/// result has exactly the same length and line structure as the input, so
/// offsets computed on the scrubbed text map 1:1 onto the original file.

namespace nextmaint {
namespace lint {

/// A source file preprocessed for linting.
struct ScrubbedSource {
  /// Input with comments and literal contents blanked (quotes kept).
  std::string code;
  /// Byte offset of the start of each 1-based line (index 0 unused).
  std::vector<size_t> line_starts;
  /// Per-line rule suppressions declared with
  /// `// nextmaint-lint: allow(<rule>)` comments ("*" suppresses all rules
  /// on that line). The comment applies to the line it sits on.
  std::map<int, std::set<std::string>> allowed;

  /// 1-based line number containing byte offset `pos` of `code`.
  int LineOf(size_t pos) const;

  /// True when `rule` is suppressed on `line` (exact name or "*").
  bool IsAllowed(int line, const std::string& rule) const;
};

/// Scrubs `content`: blanks `//` and `/* */` comment bodies, string/char
/// literal contents and raw strings, records suppression comments, and
/// precomputes line starts. Digit separators (2'000'000) are not mistaken
/// for character literals.
ScrubbedSource Scrub(std::string_view content);

/// Quoted `#include "path"` directives of the raw file as (line, path)
/// pairs. Angle-bracket includes are system headers and exempt from the
/// layering rules, so they are not reported.
std::vector<std::pair<int, std::string>> ExtractQuotedIncludes(
    std::string_view content);

}  // namespace lint
}  // namespace nextmaint

#endif  // NEXTMAINT_LINT_SOURCE_SCAN_H_
