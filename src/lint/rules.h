#ifndef NEXTMAINT_LINT_RULES_H_
#define NEXTMAINT_LINT_RULES_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/source_scan.h"

/// \file rules.h
/// The project-invariant checks enforced by `nextmaint_lint`.
///
/// Each rule is a pure function from a scrubbed source file to findings, so
/// rules are unit-testable on inline fixture snippets without touching the
/// filesystem. Rule semantics are documented in docs/static-analysis.md;
/// any rule can be suppressed on a single line with
/// `// nextmaint-lint: allow(<rule-name>)`.

namespace nextmaint {
namespace lint {

/// Identifies one lint rule.
enum class Rule {
  /// Nondeterminism primitives (rand(), std::random_device, time(), ...)
  /// outside the seeded-RNG module.
  kBannedPrimitive,
  /// A Status/Result-returning call used as a bare discarding statement.
  kUncheckedStatus,
  /// An #include that violates the layer dependency order.
  kLayering,
  /// A naked new/delete expression outside allow-listed files.
  kNakedNew,
  /// Row-oriented matrix access (`ml/matrix.h` includes, `.Row(`/`.Col(`)
  /// inside the columnar histogram kernels, which must consume pre-binned
  /// sources exclusively.
  kRowIteration,
  /// A mutex that guards nothing (no sibling GUARDED_BY field in the same
  /// file), or a raw `std::mutex` outside the annotated-wrapper layer.
  kGuardedMutex,
  /// Locking that drifts away from the annotated vocabulary: raw std::
  /// locking primitives (lock_guard, unique_lock, condition_variable, ...)
  /// that -Wthread-safety cannot see, or a NO_THREAD_SAFETY_ANALYSIS
  /// suppression in a subsystem that must stay fully analyzable.
  kLockAnnotationDrift,
};

/// Canonical kebab-case rule name ("banned-primitive", ...), as used by
/// suppression comments and finding output.
const char* RuleName(Rule rule);

/// One violation found in one file.
struct Finding {
  std::string path;
  int line = 0;
  Rule rule = Rule::kBannedPrimitive;
  std::string message;

  /// "path:line: [rule-name] message" — the tool's output format.
  std::string ToString() const;
};

/// Policy knobs for the rules; LintConfig::ProjectDefault() (lint.h) holds
/// the nextmaint policy.
struct RulePolicy {
  /// Layer path prefix (e.g. "src/common") -> include layers it may depend
  /// on. Files under a prefix absent from the map are unconstrained.
  std::map<std::string, std::set<std::string>> layers;
  /// Path suffixes exempt from the banned-primitive rule (the seeded RNG
  /// implementation itself).
  std::vector<std::string> banned_primitive_allowlist;
  /// Path suffixes exempt from the naked-new rule (documented leaky
  /// singletons).
  std::vector<std::string> naked_new_allowlist;
  /// Path suffixes the row-iteration rule applies to (the histogram kernel
  /// files; everywhere else row access is legitimate).
  std::vector<std::string> row_iteration_paths;
  /// Path prefixes where a raw `std::mutex` member may still appear (the
  /// annotated-wrapper layer lives under common/).
  std::vector<std::string> raw_mutex_prefixes;
  /// Path suffixes exempt from both thread-safety rules: the annotation
  /// layer itself, which wraps the raw primitives everyone else must avoid.
  std::vector<std::string> thread_wrapper_allowlist;
  /// Path prefixes where NO_THREAD_SAFETY_ANALYSIS is banned outright
  /// (serve/ and the thread pool must stay fully analyzable).
  std::vector<std::string> no_analysis_banned_prefixes;
};

/// True when `path` ends with one of `suffixes` (paths use '/' separators).
bool PathMatchesSuffix(const std::string& path,
                       const std::vector<std::string>& suffixes);

/// True when `path` starts with one of `prefixes`.
bool PathMatchesPrefix(const std::string& path,
                       const std::vector<std::string>& prefixes);

/// Rule 1: banned nondeterminism primitives.
std::vector<Finding> CheckBannedPrimitives(const std::string& path,
                                           const ScrubbedSource& src,
                                           const RulePolicy& policy);

/// Rule 2: discarded Status/Result calls. `status_functions` is the set of
/// function names known to return Status or Result<...>, harvested with
/// CollectStatusFunctions across the whole tree first.
std::vector<Finding> CheckUncheckedStatus(
    const std::string& path, const ScrubbedSource& src,
    const std::set<std::string>& status_functions);

/// Rule 3: include layering. Reads raw `content` for the include lines and
/// `src` for suppressions.
std::vector<Finding> CheckLayering(const std::string& path,
                                   const std::string& content,
                                   const ScrubbedSource& src,
                                   const RulePolicy& policy);

/// Rule 4: naked new/delete expressions.
std::vector<Finding> CheckNakedNew(const std::string& path,
                                   const ScrubbedSource& src,
                                   const RulePolicy& policy);

/// Rule 5: row-oriented storage access inside the columnar histogram
/// kernels. Flags `ml/matrix.h` / `ml/dataset.h` includes and `.Row(` /
/// `.Col(` member calls in files matching `policy.row_iteration_paths`.
/// Reads raw `content` for the include lines and `src` for code tokens.
std::vector<Finding> CheckRowIteration(const std::string& path,
                                       const std::string& content,
                                       const ScrubbedSource& src,
                                       const RulePolicy& policy);

/// Rule 6: every declared mutex must guard something. Flags a
/// `std::mutex` / `Mutex` member or global with no `GUARDED_BY(<name>)` /
/// `PT_GUARDED_BY(<name>)` field in the same file, and any raw
/// `std::mutex` declaration outside `policy.raw_mutex_prefixes` (raw
/// mutexes are invisible to -Wthread-safety; use nextmaint::Mutex).
/// Name matching is per file, so two mutexes sharing a field name in one
/// file satisfy each other — the Clang analysis closes that gap.
std::vector<Finding> CheckGuardedMutex(const std::string& path,
                                       const ScrubbedSource& src,
                                       const RulePolicy& policy);

/// Rule 7: lock-annotation drift. Flags raw std:: locking vocabulary
/// (lock_guard, unique_lock, scoped_lock, shared_lock, condition_variable,
/// recursive/shared/timed mutexes) anywhere outside the wrapper layer —
/// locking through them bypasses the REQUIRES/EXCLUDES annotations the
/// Clang build checks — and NO_THREAD_SAFETY_ANALYSIS inside
/// `policy.no_analysis_banned_prefixes`.
std::vector<Finding> CheckLockAnnotationDrift(const std::string& path,
                                              const ScrubbedSource& src,
                                              const RulePolicy& policy);

/// Harvests names of functions declared or defined to return Status or
/// Result<...> from one scrubbed file into `out`.
void CollectStatusFunctions(const ScrubbedSource& src,
                            std::set<std::string>* out);

}  // namespace lint
}  // namespace nextmaint

#endif  // NEXTMAINT_LINT_RULES_H_
