#include "lint/lint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/macros.h"

namespace nextmaint {
namespace lint {
namespace {

namespace fs = std::filesystem;

bool HasScannedExtension(const fs::path& path, const LintConfig& config) {
  const std::string ext = path.extension().string();
  for (const std::string& wanted : config.extensions) {
    if (ext == wanted) return true;
  }
  return false;
}

bool IsSkippedDirectory(const fs::path& path, const LintConfig& config) {
  const std::string name = path.filename().string();
  for (const std::string& skipped : config.skip_directories) {
    if (name == skipped) return true;
  }
  // Out-of-source build trees living in the repo root ("build", "build-asan",
  // "build-werror", ...) hold generated and vendored code.
  return name.rfind("build", 0) == 0;
}

Result<std::string> ReadFileToString(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open " + path.string());
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::IOError("read failed for " + path.string());
  }
  return std::move(buffer).str();
}

/// `path` relative to `root` with '/' separators, for stable finding labels
/// on any platform.
std::string RelativeLabel(const fs::path& path, const fs::path& root) {
  std::error_code ec;
  fs::path rel = fs::relative(path, root, ec);
  return (ec ? path : rel).generic_string();
}

}  // namespace

LintConfig LintConfig::ProjectDefault() {
  LintConfig config;
  config.policy.layers = {
      {"src/common", {"src/common"}},
      {"src/lint", {"src/common", "src/lint"}},
      {"src/data", {"src/common", "src/data"}},
      {"src/ml", {"src/common", "src/ml"}},
      {"src/telematics", {"src/common", "src/data", "src/telematics"}},
      // Storage sits below core: it persists opaque model payloads and
      // column blocks without parsing models, so core can depend on it
      // without a cycle.
      {"src/storage", {"src/common", "src/data", "src/storage"}},
      {"src/core",
       {"src/common", "src/data", "src/ml", "src/storage", "src/core"}},
      {"src/serve", {"src/common", "src/data", "src/ml", "src/storage",
                     "src/core", "src/serve"}},
      {"src/cli",
       {"src/common", "src/data", "src/ml", "src/telematics", "src/storage",
        "src/core", "src/serve", "src/cli"}},
  };
  // The seeded-RNG module wraps the only sanctioned randomness source.
  config.policy.banned_primitive_allowlist = {"src/common/rng.h",
                                              "src/common/rng.cc"};
  // Documented leaky singletons (static-destruction-order safety).
  config.policy.naked_new_allowlist = {"src/common/status.cc",
                                       "src/common/telemetry.cc"};
  // The binned training kernels must never fall back to row-oriented
  // storage; the binned/row cores share this code, so a row access here
  // would silently reintroduce the access pattern the refactor removed.
  config.policy.row_iteration_paths = {"src/ml/histogram.h",
                                       "src/ml/histogram.cc"};
  // Raw std::mutex may only appear under common/ (in practice: inside the
  // annotated wrapper); everything else declares nextmaint::Mutex so the
  // Clang thread-safety build can track it.
  config.policy.raw_mutex_prefixes = {"src/common/"};
  // The wrapper layer itself is the one sanctioned home of the raw
  // primitives it wraps.
  config.policy.thread_wrapper_allowlist = {
      "src/common/thread_annotations.h", "src/common/thread_annotations.cc"};
  // The serving stack and the thread pool must stay fully analyzable: no
  // NO_THREAD_SAFETY_ANALYSIS escape hatches there (docs/static-analysis.md).
  config.policy.no_analysis_banned_prefixes = {"src/serve/",
                                               "src/common/parallel"};
  return config;
}

std::vector<Finding> LintSource(
    const std::string& path, const std::string& content,
    const LintConfig& config,
    const std::set<std::string>& status_functions) {
  const ScrubbedSource src = Scrub(content);
  std::vector<Finding> findings;
  auto append = [&findings](std::vector<Finding> batch) {
    for (Finding& finding : batch) findings.push_back(std::move(finding));
  };
  append(CheckBannedPrimitives(path, src, config.policy));
  append(CheckUncheckedStatus(path, src, status_functions));
  append(CheckLayering(path, content, src, config.policy));
  append(CheckNakedNew(path, src, config.policy));
  append(CheckRowIteration(path, content, src, config.policy));
  append(CheckGuardedMutex(path, src, config.policy));
  append(CheckLockAnnotationDrift(path, src, config.policy));
  return findings;
}

Result<std::vector<Finding>> LintTree(const std::string& root,
                                      const std::vector<std::string>& paths,
                                      const LintConfig& config) {
  const fs::path root_path(root);
  // Pass 0: collect the files to scan, in deterministic order.
  std::vector<fs::path> files;
  for (const std::string& requested : paths) {
    const fs::path full = root_path / requested;
    std::error_code ec;
    if (fs::is_directory(full, ec)) {
      fs::recursive_directory_iterator it(full, ec), end;
      if (ec) {
        return Status::IOError("cannot walk " + full.string() + ": " +
                               ec.message());
      }
      for (; it != end; it.increment(ec)) {
        if (ec) {
          return Status::IOError("walk failed under " + full.string() + ": " +
                                 ec.message());
        }
        if (it->is_directory() && IsSkippedDirectory(it->path(), config)) {
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file() &&
            HasScannedExtension(it->path(), config)) {
          files.push_back(it->path());
        }
      }
    } else if (fs::is_regular_file(full, ec)) {
      files.push_back(full);
    } else {
      return Status::NotFound("no such file or directory: " + full.string());
    }
  }
  std::sort(files.begin(), files.end());

  // Pass 1: read everything and harvest Status-returning function names.
  std::vector<std::pair<std::string, std::string>> sources;  // label, content
  sources.reserve(files.size());
  std::set<std::string> status_functions = config.extra_status_functions;
  for (const fs::path& file : files) {
    NM_ASSIGN_OR_RETURN(std::string content, ReadFileToString(file));
    const std::string label = RelativeLabel(file, root_path);
    CollectStatusFunctions(Scrub(content), &status_functions);
    sources.emplace_back(label, std::move(content));
  }

  // Pass 2: apply the rules.
  std::vector<Finding> findings;
  for (const auto& [label, content] : sources) {
    std::vector<Finding> batch =
        LintSource(label, content, config, status_functions);
    for (Finding& finding : batch) findings.push_back(std::move(finding));
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              return a.message < b.message;
            });
  return findings;
}

}  // namespace lint
}  // namespace nextmaint
