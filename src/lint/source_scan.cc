#include "lint/source_scan.h"

#include <algorithm>
#include <cctype>

namespace nextmaint {
namespace lint {
namespace {

/// True when `c` can appear in an identifier or number, which makes a
/// following `'` a digit separator (2'000'000) rather than a char literal.
bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Parses rule names out of one comment's text and records them as
/// suppressions for `line`. Grammar: `nextmaint-lint: allow(rule)` with
/// `rule` a dash/word token or `*`; multiple rules separated by commas.
void RecordSuppressions(std::string_view comment, int line,
                        std::map<int, std::set<std::string>>* allowed) {
  const std::string_view kMarker = "nextmaint-lint:";
  const size_t marker = comment.find(kMarker);
  if (marker == std::string_view::npos) return;
  std::string_view rest = comment.substr(marker + kMarker.size());
  const size_t open = rest.find("allow(");
  if (open == std::string_view::npos) return;
  const size_t close = rest.find(')', open);
  if (close == std::string_view::npos) return;
  std::string_view list = rest.substr(open + 6, close - open - 6);
  std::string token;
  auto flush = [&] {
    if (!token.empty()) (*allowed)[line].insert(token);
    token.clear();
  };
  for (char c : list) {
    if (c == ',') {
      flush();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      token.push_back(c);
    }
  }
  flush();
}

}  // namespace

int ScrubbedSource::LineOf(size_t pos) const {
  // line_starts is sorted; the line containing pos starts at the last
  // element <= pos.
  auto it = std::upper_bound(line_starts.begin() + 1, line_starts.end(), pos);
  return static_cast<int>(it - line_starts.begin()) - 1;
}

bool ScrubbedSource::IsAllowed(int line, const std::string& rule) const {
  auto it = allowed.find(line);
  if (it == allowed.end()) return false;
  return it->second.count(rule) > 0 || it->second.count("*") > 0;
}

ScrubbedSource Scrub(std::string_view content) {
  ScrubbedSource out;
  out.code.assign(content.begin(), content.end());
  out.line_starts.assign(2, 0);  // index 0 unused; line 1 starts at 0
  for (size_t i = 0; i < content.size(); ++i) {
    if (content[i] == '\n') out.line_starts.push_back(i + 1);
  }

  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  size_t token_start = 0;  // start offset of the current comment/literal
  std::string raw_delim;   // closing delimiter of an active raw string

  auto blank = [&](size_t pos) {
    if (out.code[pos] != '\n') out.code[pos] = ' ';
  };

  for (size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          token_start = i;
          blank(i);
          blank(i + 1);
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          token_start = i;
          blank(i);
          blank(i + 1);
          ++i;
        } else if (c == '"') {
          // Raw string? Look back for R / uR / u8R / LR prefix.
          if (i > 0 && content[i - 1] == 'R' &&
              (i == 1 || !IsWordChar(content[i - 2]) || content[i - 2] == 'u' ||
               content[i - 2] == 'U' || content[i - 2] == 'L' ||
               content[i - 2] == '8')) {
            const size_t open = content.find('(', i + 1);
            if (open == std::string_view::npos) break;  // malformed; give up
            // Built char-by-char appends: the assign-then-append sequence
            // trips GCC 12's -Wrestrict false positive at -O2.
            raw_delim.clear();
            raw_delim.push_back(')');
            raw_delim.append(content.data() + i + 1, open - i - 1);
            raw_delim.push_back('"');
            const size_t close = content.find(raw_delim, open + 1);
            const size_t end =
                close == std::string_view::npos
                    ? content.size()
                    : close + raw_delim.size();
            for (size_t j = i + 1; j < end - 1 && j < content.size(); ++j) {
              blank(j);
            }
            i = end - 1;
          } else {
            state = State::kString;
          }
        } else if (c == '\'' && (i == 0 || !IsWordChar(content[i - 1]))) {
          state = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          RecordSuppressions(content.substr(token_start, i - token_start),
                             out.LineOf(token_start), &out.allowed);
          state = State::kCode;
        } else {
          blank(i);
        }
        break;
      case State::kBlockComment:
        blank(i);
        if (c == '*' && next == '/') {
          blank(i + 1);
          ++i;
          state = State::kCode;
        }
        break;
      case State::kString:
      case State::kChar: {
        const char quote = state == State::kString ? '"' : '\'';
        if (c == '\\') {
          blank(i);
          if (i + 1 < content.size()) blank(i + 1);
          ++i;
        } else if (c == quote || c == '\n') {
          // Unterminated-literal lines (or the closing quote) end the state.
          state = State::kCode;
        } else {
          blank(i);
        }
        break;
      }
    }
  }
  // A line comment at EOF without a trailing newline still counts.
  if (state == State::kLineComment) {
    RecordSuppressions(content.substr(token_start), out.LineOf(token_start),
                       &out.allowed);
  }
  return out;
}

std::vector<std::pair<int, std::string>> ExtractQuotedIncludes(
    std::string_view content) {
  std::vector<std::pair<int, std::string>> includes;
  int line = 1;
  size_t pos = 0;
  while (pos < content.size()) {
    size_t eol = content.find('\n', pos);
    if (eol == std::string_view::npos) eol = content.size();
    std::string_view text = content.substr(pos, eol - pos);
    // Trim leading whitespace.
    size_t first = text.find_first_not_of(" \t");
    if (first != std::string_view::npos && text[first] == '#') {
      std::string_view directive = text.substr(first + 1);
      size_t word = directive.find_first_not_of(" \t");
      if (word != std::string_view::npos &&
          directive.substr(word).rfind("include", 0) == 0) {
        const size_t open = directive.find('"');
        if (open != std::string_view::npos) {
          const size_t close = directive.find('"', open + 1);
          if (close != std::string_view::npos) {
            includes.emplace_back(
                line, std::string(directive.substr(open + 1, close - open - 1)));
          }
        }
      }
    }
    line += 1;
    pos = eol + 1;
  }
  return includes;
}

}  // namespace lint
}  // namespace nextmaint
