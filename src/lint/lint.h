#ifndef NEXTMAINT_LINT_LINT_H_
#define NEXTMAINT_LINT_LINT_H_

#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "lint/rules.h"

/// \file lint.h
/// The `nextmaint_lint` invariant checker: scans the source tree and
/// enforces the project's correctness invariants (deterministic runs, no
/// dropped errors, layered includes, no naked ownership). See
/// docs/static-analysis.md for the rule catalogue and escape hatches.

namespace nextmaint {
namespace lint {

/// Full linter configuration.
struct LintConfig {
  RulePolicy policy;
  /// File extensions scanned when walking directories.
  std::vector<std::string> extensions = {".h", ".cc", ".hpp", ".cpp"};
  /// Directory names skipped during the walk (build trees, VCS metadata).
  std::vector<std::string> skip_directories = {".git", "third_party"};
  /// Extra names treated as Status-returning on top of the harvested set
  /// (e.g. functions declared in generated code the scan does not see).
  std::set<std::string> extra_status_functions;

  /// The nextmaint project policy: layer order
  /// common < {data, ml, lint} < telematics < core < cli, banned
  /// primitives allowed only in common/rng.*, naked new allowed only in
  /// the documented leaky singletons.
  static LintConfig ProjectDefault();
};

/// Lints one in-memory file. `path` is the repo-relative label used in
/// findings and for allowlist/layer matching; `status_functions` is the
/// tree-wide set harvested with CollectStatusFunctions (plus any extras).
std::vector<Finding> LintSource(const std::string& path,
                                const std::string& content,
                                const LintConfig& config,
                                const std::set<std::string>& status_functions);

/// Lints files and directory trees rooted at `root`. `paths` are relative
/// to `root` (e.g. {"src", "tools", "bench"}); directories are walked
/// recursively. Two passes: harvest Status-returning function names from
/// every file, then apply the rules. Findings are sorted by path and line.
/// Fails with IOError/NotFound when a requested path cannot be read.
Result<std::vector<Finding>> LintTree(const std::string& root,
                                      const std::vector<std::string>& paths,
                                      const LintConfig& config);

}  // namespace lint
}  // namespace nextmaint

#endif  // NEXTMAINT_LINT_LINT_H_
