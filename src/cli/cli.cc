#include "cli/cli.h"

#include <filesystem>

#include "common/failpoints.h"
#include "common/macros.h"
#include "common/parallel.h"
#include "common/strings.h"
#include "common/telemetry.h"
#include "core/old_vehicle.h"
#include "core/scheduler.h"
#include "core/workshop_planner.h"
#include "data/csv.h"
#include "data/preprocess.h"
#include "serve/daemon.h"
#include "serve/protocol.h"
#include "serve/serving_engine.h"
#include "serve/socket_server.h"
#include "storage/corpus.h"
#include "telematics/fleet.h"

namespace nextmaint {
namespace cli {

namespace fs = std::filesystem;

std::string ParsedArgs::FlagOr(const std::string& name,
                               std::string fallback) const {
  const auto it = flags.find(name);
  return it == flags.end() ? std::move(fallback) : it->second;
}

Result<int64_t> ParsedArgs::IntFlagOr(const std::string& name,
                                      int64_t fallback) const {
  const auto it = flags.find(name);
  if (it == flags.end()) return fallback;
  Result<int64_t> value = ParseInt64(it->second);
  if (!value.ok()) {
    return Status::DataError("flag --" + name + " expects an integer, got '" +
                             it->second + "'");
  }
  return value;
}

Result<double> ParsedArgs::DoubleFlagOr(const std::string& name,
                                        double fallback) const {
  const auto it = flags.find(name);
  if (it == flags.end()) return fallback;
  Result<double> value = ParseDouble(it->second);
  if (!value.ok()) {
    return Status::DataError("flag --" + name + " expects a number, got '" +
                             it->second + "'");
  }
  return value;
}

ParsedArgs ParseArgs(const std::vector<std::string>& args) {
  ParsedArgs parsed;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& token = args[i];
    if (!StartsWith(token, "--")) {
      parsed.positional.push_back(token);
      continue;
    }
    const std::string body = token.substr(2);
    const size_t equals = body.find('=');
    if (equals != std::string::npos) {
      parsed.flags[body.substr(0, equals)] = body.substr(equals + 1);
      continue;
    }
    // `--name value` unless the next token is itself a flag.
    if (i + 1 < args.size() && !StartsWith(args[i + 1], "--")) {
      parsed.flags[body] = args[i + 1];
      ++i;
    } else {
      parsed.flags[body] = "";
    }
  }
  return parsed;
}

Result<CommonOptions> ParseCommonOptions(const ParsedArgs& args) {
  CommonOptions common;
  const auto threads = args.flags.find("threads");
  if (threads != args.flags.end()) {
    // Malformed or negative input is a user error, rejected with the usage
    // hint instead of silently falling back to the default.
    const Result<int64_t> parsed = ParseInt64(threads->second);
    if (!parsed.ok() || parsed.ValueOrDie() < 0) {
      return Status::InvalidArgument(
          "--threads expects a non-negative integer (0 = all cores), got '" +
          threads->second + "'\n" + UsageText());
    }
    common.threads = static_cast<int>(parsed.ValueOrDie());
  }
  common.strict = args.HasFlag("strict");
  if (args.HasFlag("metrics-json")) {
    common.metrics_json = args.flags.at("metrics-json");
    if (common.metrics_json.empty()) {
      return Status::InvalidArgument("--metrics-json requires a file path\n" +
                                     UsageText());
    }
  }
  if (args.HasFlag("failpoints")) {
    if (!failpoints::CompiledIn()) {
      return Status::InvalidArgument(
          "--failpoints requires a build with NEXTMAINT_ENABLE_FAILPOINTS=ON "
          "(docs/fault-injection.md)");
    }
    common.failpoints = args.flags.at("failpoints");
    if (common.failpoints.empty()) {
      return Status::InvalidArgument(
          "--failpoints requires a spec (site[:nth[:kind]], comma "
          "separated)\n" + UsageText());
    }
  }
  if (args.HasFlag("load-models")) {
    common.load_models = args.flags.at("load-models");
    if (common.load_models.empty()) {
      return Status::InvalidArgument(
          "--load-models requires a checkpoint file path\n" + UsageText());
    }
  }
  common.daemon = args.HasFlag("daemon");
  if (args.HasFlag("shards")) {
    const Result<int64_t> parsed = ParseInt64(args.flags.at("shards"));
    if (!parsed.ok() || parsed.ValueOrDie() < 1) {
      return Status::InvalidArgument(
          "--shards expects a positive integer, got '" +
          args.flags.at("shards") + "'\n" + UsageText());
    }
    common.shards = static_cast<int>(parsed.ValueOrDie());
  }
  if (args.HasFlag("port")) {
    const Result<int64_t> parsed = ParseInt64(args.flags.at("port"));
    if (!parsed.ok() || parsed.ValueOrDie() < 1 ||
        parsed.ValueOrDie() > 65535) {
      return Status::InvalidArgument(
          "--port expects an integer in 1..65535, got '" +
          args.flags.at("port") + "'\n" + UsageText());
    }
    common.port = static_cast<int>(parsed.ValueOrDie());
  }
  if (args.HasFlag("socket")) {
    common.socket_path = args.flags.at("socket");
    if (common.socket_path.empty()) {
      return Status::InvalidArgument(
          "--socket requires a unix socket path\n" + UsageText());
    }
  }
  if (common.port > 0 && !common.socket_path.empty()) {
    return Status::InvalidArgument(
        "--socket and --port are mutually exclusive; pick one endpoint\n" +
        UsageText());
  }
  if (args.HasFlag("max-queue")) {
    const Result<int64_t> parsed = ParseInt64(args.flags.at("max-queue"));
    if (!parsed.ok() || parsed.ValueOrDie() < 1) {
      return Status::InvalidArgument(
          "--max-queue expects a positive integer, got '" +
          args.flags.at("max-queue") + "'\n" + UsageText());
    }
    common.max_queue = parsed.ValueOrDie();
  }
  if (args.HasFlag("batch-window")) {
    const Result<int64_t> parsed = ParseInt64(args.flags.at("batch-window"));
    if (!parsed.ok() || parsed.ValueOrDie() < 0) {
      return Status::InvalidArgument(
          "--batch-window expects a non-negative integer, got '" +
          args.flags.at("batch-window") + "'\n" + UsageText());
    }
    common.batch_window = parsed.ValueOrDie();
  }
  common.warm_start = args.HasFlag("warm-start");
  return common;
}

namespace {

/// Result of loading a fleet directory: the usable vehicle series plus the
/// vehicles skipped because their CSV would not read or aggregate.
struct FleetLoad {
  std::vector<std::pair<std::string, data::DailySeries>> vehicles;
  std::vector<std::pair<std::string, Status>> skipped;
};

/// The sorted per-vehicle CSV worklist of a fleet directory (fleet.csv and
/// weather.csv excluded). Sorted by stem — the vehicle id — which is also
/// the strictly ascending order the corpus compactor writes in.
Result<std::vector<fs::path>> ListVehicleCsvs(const std::string& dir) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return Status::NotFound("'" + dir + "' is not a directory");
  }
  std::vector<fs::path> paths;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".csv" &&
        entry.path().stem() != "fleet" &&
        entry.path().stem() != "weather") {
      paths.push_back(entry.path());
    }
  }
  std::sort(paths.begin(), paths.end(),
            [](const fs::path& a, const fs::path& b) {
              return a.stem().string() < b.stem().string();
            });
  return paths;
}

/// Reads and aggregates one vehicle CSV (shared by the directory loader
/// and the streaming compactor). Not yet cleaned.
Result<data::DailySeries> ReadVehicleCsv(const fs::path& path) {
  NM_ASSIGN_OR_RETURN(data::Table table, data::ReadCsvFile(path.string()));
  // Accept either column name for the daily seconds.
  Result<data::DailySeries> loaded =
      data::AggregateDaily(table, "date", "utilization_s");
  if (!loaded.ok()) {
    loaded = data::AggregateDaily(table, "date", "usage");
  }
  if (!loaded.ok()) {
    return loaded.status().WithContext(path.string());
  }
  return loaded;
}

/// Loads every `*.csv` vehicle series in `dir` (fleet.csv excluded).
/// The file stem is the vehicle id. With `strict` the first unreadable
/// vehicle aborts the load; otherwise it is recorded in `skipped` and the
/// rest of the fleet is served (docs/fault-injection.md).
Result<FleetLoad> LoadFleetDir(const std::string& dir, bool strict) {
  NM_ASSIGN_OR_RETURN(std::vector<fs::path> paths, ListVehicleCsvs(dir));
  FleetLoad load;
  for (const fs::path& path : paths) {
    Result<data::DailySeries> loaded = ReadVehicleCsv(path);
    if (!loaded.ok()) {
      if (strict) return loaded.status();
      telemetry::Count("cli.vehicles_skipped");
      load.skipped.emplace_back(path.stem().string(), loaded.status());
      continue;
    }
    data::DailySeries series = std::move(loaded).ValueOrDie();
    data::Clean(&series);
    load.vehicles.emplace_back(path.stem().string(), std::move(series));
  }
  if (load.vehicles.empty()) {
    if (!load.skipped.empty()) {
      return load.skipped.front().second.WithContext(
          "no loadable vehicle CSVs under '" + dir + "'");
    }
    return Status::NotFound("no vehicle CSVs under '" + dir + "'");
  }
  return load;
}

/// Loads a fleet from either a CSV directory or a compacted binary corpus
/// (built by `nextmaint compact`). A regular file routes by magic: corpus
/// files decode their summary index eagerly and materialize each vehicle's
/// series from its column block — no CSV parsing on the serving path.
Result<FleetLoad> LoadFleetSource(const std::string& source, bool strict) {
  std::error_code ec;
  if (!fs::is_regular_file(source, ec)) {
    return LoadFleetDir(source, strict);
  }
  NM_ASSIGN_OR_RETURN(const bool is_corpus, storage::IsCorpusFile(source));
  if (!is_corpus) {
    return Status::InvalidArgument(
        "'" + source + "' is neither a fleet directory nor a compacted "
        "corpus (build one with `nextmaint compact`)");
  }
  NM_ASSIGN_OR_RETURN(std::unique_ptr<storage::CorpusReader> reader,
                      storage::CorpusReader::Open(source));
  FleetLoad load;
  for (const storage::CorpusVehicleSummary& summary : reader->summaries()) {
    Result<data::DailySeries> series = reader->Series(summary.vehicle_id);
    if (!series.ok()) {
      // A corrupt column block degrades that vehicle alone; the summary
      // index already validated, so the rest of the corpus stays usable.
      if (strict) return series.status().WithContext(summary.vehicle_id);
      telemetry::Count("cli.vehicles_skipped");
      load.skipped.emplace_back(summary.vehicle_id, series.status());
      continue;
    }
    load.vehicles.emplace_back(summary.vehicle_id,
                               std::move(series).ValueOrDie());
  }
  if (load.vehicles.empty()) {
    if (!load.skipped.empty()) {
      return load.skipped.front().second.WithContext(
          "no loadable vehicles in corpus '" + source + "'");
    }
    return Status::NotFound("corpus '" + source + "' holds no vehicles");
  }
  telemetry::Count("cli.corpus_loads");
  return load;
}

/// Prints one line per vehicle the loader skipped.
void ReportSkippedVehicles(const FleetLoad& load, std::ostream& out) {
  for (const auto& [id, error] : load.skipped) {
    out << "skipped vehicle " << id << ": " << error.ToString() << "\n";
  }
}

/// Prints one line per quarantined vehicle, plus a summary.
void ReportDegradationReport(const core::DegradationReport& report,
                             std::ostream& out) {
  if (report.empty()) return;
  for (const auto& d : report.vehicles) {
    out << "degraded vehicle " << d.vehicle_id << " (" << d.stage
        << "): " << d.error.ToString()
        << (d.fallback ? " [BL fallback]" : " [no fallback]") << "\n";
  }
  out << report.vehicles.size() << " vehicle(s) degraded; rerun with "
      << "--strict to fail fast\n";
}

/// Prints one line per vehicle the scheduler quarantined, plus a summary.
void ReportDegradations(const core::FleetScheduler& scheduler,
                        std::ostream& out) {
  ReportDegradationReport(scheduler.LastDegradationReport(), out);
}

/// The fleet forecast table shared by the forecast and serve commands.
void PrintForecastTable(const std::vector<core::MaintenanceForecast>& forecasts,
                        std::ostream& out) {
  out << StrFormat("%-8s %-10s %-18s %10s %12s\n", "vehicle", "category",
                   "model", "days left", "due date");
  for (const auto& f : forecasts) {
    out << StrFormat("%-8s %-10s %-18s %10.1f %12s\n", f.vehicle_id.c_str(),
                     core::VehicleCategoryName(f.category),
                     f.model_name.c_str(), f.days_left,
                     f.predicted_date.ToString().c_str());
  }
}

/// Scheduler options from the command line (--tv, --window, --tune plus the
/// shared flags). Applies the --threads cap to the process-wide thread-pool
/// default, which also bounds the model-level parallelism (RF trees, XGB
/// histograms).
Result<core::SchedulerOptions> SchedulerOptionsFromArgs(
    const ParsedArgs& args, const CommonOptions& common) {
  core::SchedulerOptions options;
  NM_ASSIGN_OR_RETURN(double tv, args.DoubleFlagOr("tv", 2'000'000.0));
  NM_ASSIGN_OR_RETURN(int64_t window, args.IntFlagOr("window", 6));
  if (common.threads > 0) {
    ThreadPool::SetDefaultThreadCount(common.threads);
  }
  options.maintenance_interval_s = tv;
  options.window = static_cast<int>(window);
  options.num_threads = common.threads;
  options.strict = common.strict;
  options.warm_start = common.warm_start;
  options.selection.tune = args.HasFlag("tune");
  options.selection.train_on_last29_only = true;
  options.selection.resampling_shifts = 2;
  return options;
}

/// Builds a scheduler from the vehicles in `dir`. Models come from the
/// `--load-models` checkpoint when given, otherwise from TrainAll. Vehicles
/// the loader skipped (non-strict mode) are reported on `out`.
Result<core::FleetScheduler> MakeTrainedScheduler(const ParsedArgs& args,
                                                  const std::string& dir,
                                                  std::ostream& out) {
  NM_ASSIGN_OR_RETURN(const CommonOptions common, ParseCommonOptions(args));
  NM_ASSIGN_OR_RETURN(FleetLoad load, LoadFleetSource(dir, common.strict));
  ReportSkippedVehicles(load, out);
  const auto& vehicles = load.vehicles;
  NM_ASSIGN_OR_RETURN(core::SchedulerOptions options,
                      SchedulerOptionsFromArgs(args, common));

  core::FleetScheduler scheduler(options);
  for (const auto& [id, series] : vehicles) {
    NM_RETURN_NOT_OK(scheduler.RegisterVehicle(id, series.start_date()));
    NM_RETURN_NOT_OK(scheduler.IngestSeries(id, series).WithContext(id));
  }
  if (!common.load_models.empty()) {
    NM_RETURN_NOT_OK(scheduler.LoadCheckpoint(common.load_models));
  } else {
    NM_RETURN_NOT_OK(scheduler.TrainAll());
  }
  return scheduler;
}

/// The `serve --daemon` mode: warm-start every vehicle through the daemon's
/// own write path, publish an initial snapshot, then serve the binary
/// protocol on the requested endpoint until a client sends Shutdown.
Status RunServeDaemon(const ParsedArgs& args, const CommonOptions& common,
                      std::ostream& out) {
  if (common.port < 0 && common.socket_path.empty()) {
    return Status::InvalidArgument(
        "serve --daemon requires an endpoint: --socket PATH or --port N\n" +
        UsageText());
  }
  NM_ASSIGN_OR_RETURN(
      FleetLoad load, LoadFleetSource(args.flags.at("data"), common.strict));
  ReportSkippedVehicles(load, out);
  NM_ASSIGN_OR_RETURN(core::SchedulerOptions scheduler_options,
                      SchedulerOptionsFromArgs(args, common));

  serve::DaemonOptions options;
  options.scheduler = scheduler_options;
  options.shards = common.shards;
  options.max_queue = static_cast<size_t>(common.max_queue);
  options.batch_window = static_cast<uint64_t>(common.batch_window);
  serve::FleetDaemon daemon(options);
  NM_RETURN_NOT_OK(daemon.Start());

  // Warm start through the daemon's own write path so sharding and
  // registration follow the exact rules remote clients see.
  for (const auto& [id, series] : load.vehicles) {
    serve::protocol::LoadHistoryRequest request;
    request.vehicle_id = id;
    request.start_day = series.start_date();
    request.values.reserve(series.size());
    for (size_t i = 0; i < series.size(); ++i) {
      request.values.push_back(series[i]);
    }
    const serve::protocol::Response response = daemon.Execute(request);
    if (const auto* error =
            std::get_if<serve::protocol::ErrorResponse>(&response)) {
      const Status status = error->ToStatus().WithContext(id);
      if (common.strict) {
        daemon.Stop();
        return status;
      }
      out << "warm-start degraded vehicle " << id << ": "
          << status.ToString() << "\n";
    }
  }

  // Publish the initial snapshot so reads work before the first client
  // refresh. Non-strict serves an empty snapshot when this fails.
  {
    const serve::protocol::Response response =
        daemon.Execute(serve::protocol::RefreshRequest{});
    if (const auto* done =
            std::get_if<serve::protocol::RefreshDoneResponse>(&response)) {
      out << "initial refresh epoch " << done->epoch << ": "
          << done->refreshed << " refreshed, " << done->reused
          << " reused across " << done->shards << " shard(s)\n";
    } else if (const auto* error =
                   std::get_if<serve::protocol::ErrorResponse>(&response)) {
      const Status status = error->ToStatus();
      if (common.strict) {
        daemon.Stop();
        return status;
      }
      out << "initial refresh degraded: " << status.ToString() << "\n";
    }
  }

  serve::SocketServerOptions socket_options;
  socket_options.unix_path = common.socket_path;
  socket_options.tcp_port = common.port;
  serve::SocketServer server(&daemon, socket_options);
  const Status started = server.Start();
  if (!started.ok()) {
    daemon.Stop();
    return started;
  }
  out << "daemon serving " << load.vehicles.size() << " vehicle(s) on "
      << server.endpoint() << " (" << daemon.shards()
      << " shard(s)); send Shutdown to stop\n";
  server.Wait();
  daemon.Stop();

  const serve::protocol::StatsResponse stats = daemon.Stats();
  out << "daemon stopped: " << stats.frames << " frame(s), " << stats.appends
      << " append(s), " << stats.reads << " read request(s), "
      << stats.overloaded << " overloaded rejection(s), "
      << stats.decode_errors << " decode error(s)\n";
  return Status::OK();
}

}  // namespace

Status RunSimulate(const ParsedArgs& args, std::ostream& out) {
  if (!args.HasFlag("out")) {
    return Status::InvalidArgument("simulate requires --out DIR");
  }
  const std::string dir = args.flags.at("out");
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create '" + dir + "': " + ec.message());
  }

  telem::FleetOptions options;
  NM_ASSIGN_OR_RETURN(int64_t vehicles, args.IntFlagOr("vehicles", 24));
  NM_ASSIGN_OR_RETURN(int64_t days, args.IntFlagOr("days", 1735));
  NM_ASSIGN_OR_RETURN(int64_t seed, args.IntFlagOr("seed", 20150101));
  NM_ASSIGN_OR_RETURN(double tv, args.DoubleFlagOr("tv", 2'000'000.0));
  options.num_vehicles = static_cast<int>(vehicles);
  options.num_days = static_cast<int>(days);
  options.seed = static_cast<uint64_t>(seed);
  options.maintenance_interval_s = tv;
  options.start_date = Date::FromYmd(2015, 1, 1).ValueOrDie();
  options.with_weather = args.HasFlag("weather");

  NM_ASSIGN_OR_RETURN(telem::Fleet fleet, telem::SimulateFleet(options));

  // Per-vehicle daily CSVs.
  for (const auto& vehicle : fleet.vehicles) {
    NM_ASSIGN_OR_RETURN(
        data::Table table,
        data::SeriesToTable(vehicle.utilization, "utilization_s"));
    const std::string path = dir + "/" + vehicle.profile.id + ".csv";
    NM_RETURN_NOT_OK(data::WriteCsvFile(table, path));
  }

  // Fleet inventory.
  {
    data::Column id("vehicle_id", data::ColumnType::kString);
    data::Column model("model", data::ColumnType::kString);
    data::Column cycles("maintenance_events", data::ColumnType::kInt64);
    for (const auto& vehicle : fleet.vehicles) {
      id.AppendString(vehicle.profile.id);
      model.AppendString(vehicle.profile.model_name);
      cycles.AppendInt64(
          static_cast<int64_t>(vehicle.maintenance_days.size()));
    }
    data::Table inventory;
    NM_RETURN_NOT_OK(inventory.AddColumn(std::move(id)));
    NM_RETURN_NOT_OK(inventory.AddColumn(std::move(model)));
    NM_RETURN_NOT_OK(inventory.AddColumn(std::move(cycles)));
    NM_RETURN_NOT_OK(data::WriteCsvFile(inventory, dir + "/fleet.csv"));
  }

  out << "wrote " << fleet.vehicles.size() << " vehicle series ("
      << options.num_days << " days each) to " << dir << "\n";
  return Status::OK();
}

Status RunCompact(const ParsedArgs& args, std::ostream& out) {
  if (!args.HasFlag("data") || !args.HasFlag("out")) {
    return Status::InvalidArgument(
        "compact requires --data DIR and --out FILE\n" + UsageText());
  }
  NM_ASSIGN_OR_RETURN(const CommonOptions common, ParseCommonOptions(args));
  NM_ASSIGN_OR_RETURN(double tv, args.DoubleFlagOr("tv", 2'000'000.0));
  const std::string out_path = args.flags.at("out");

  // Pass 1: the sorted worklist (stems ascending — the id order the
  // corpus index requires, which also makes the output byte-deterministic
  // for a given directory). Pass 2 streams the fleet through the writer
  // one vehicle at a time: only one series is ever resident, so compaction
  // memory stays flat no matter the fleet size.
  NM_ASSIGN_OR_RETURN(std::vector<fs::path> paths,
                      ListVehicleCsvs(args.flags.at("data")));
  NM_ASSIGN_OR_RETURN(std::unique_ptr<storage::CorpusWriter> writer,
                      storage::CorpusWriter::Create(out_path, tv));
  size_t written = 0;
  size_t skipped = 0;
  for (const fs::path& path : paths) {
    const std::string id = path.stem().string();
    Result<data::DailySeries> loaded = ReadVehicleCsv(path);
    if (!loaded.ok()) {
      if (common.strict) return loaded.status();
      telemetry::Count("cli.vehicles_skipped");
      out << "skipped vehicle " << id << ": " << loaded.status().ToString()
          << "\n";
      ++skipped;
      continue;
    }
    data::DailySeries series = std::move(loaded).ValueOrDie();
    data::Clean(&series);
    NM_RETURN_NOT_OK(writer->AddVehicle(id, series).WithContext(id));
    ++written;
  }
  if (written == 0) {
    return Status::NotFound("no loadable vehicle CSVs under '" +
                            args.flags.at("data") + "'");
  }
  NM_ASSIGN_OR_RETURN(const uint64_t bytes, writer->Finish());
  out << "compacted " << written << " vehicle(s) to " << out_path << " ("
      << bytes << " bytes";
  if (skipped > 0) out << ", " << skipped << " skipped";
  out << ")\n";
  return Status::OK();
}

Status RunForecast(const ParsedArgs& args, std::ostream& out) {
  if (!args.HasFlag("data")) {
    return Status::InvalidArgument("forecast requires --data DIR");
  }
  NM_ASSIGN_OR_RETURN(core::FleetScheduler scheduler,
                      MakeTrainedScheduler(args, args.flags.at("data"), out));
  NM_ASSIGN_OR_RETURN(auto forecasts, scheduler.FleetForecast());
  ReportDegradations(scheduler, out);
  PrintForecastTable(forecasts, out);
  if (args.HasFlag("save-models")) {
    const std::string path = args.flags.at("save-models");
    NM_RETURN_NOT_OK(scheduler.SaveCheckpoint(path));
    out << "models saved to " << path << "\n";
  }
  return Status::OK();
}

Status RunPlan(const ParsedArgs& args, std::ostream& out) {
  if (!args.HasFlag("data")) {
    return Status::InvalidArgument("plan requires --data DIR");
  }
  NM_ASSIGN_OR_RETURN(core::FleetScheduler scheduler,
                      MakeTrainedScheduler(args, args.flags.at("data"), out));
  NM_ASSIGN_OR_RETURN(auto forecasts, scheduler.FleetForecast());
  ReportDegradations(scheduler, out);
  if (forecasts.empty()) {
    return Status::FailedPrecondition("no forecastable vehicle");
  }

  core::WorkshopOptions options;
  NM_ASSIGN_OR_RETURN(int64_t capacity, args.IntFlagOr("capacity", 1));
  NM_ASSIGN_OR_RETURN(int64_t horizon, args.IntFlagOr("horizon", 90));
  options.daily_capacity = static_cast<int>(capacity);
  options.horizon_days = static_cast<int>(horizon);
  options.weekend_service = args.HasFlag("weekends");

  // "Today" is the day after the last ingested observation.
  Date today;
  for (const auto& f : forecasts) {
    const Date due = f.predicted_date.AddDays(
        -static_cast<int64_t>(std::llround(f.days_left)));
    if (due > today) today = due;
  }

  NM_ASSIGN_OR_RETURN(core::ServicePlan plan,
                      core::PlanWorkshop(forecasts, today, options));
  out << "workshop plan from " << today.ToString() << " (capacity "
      << options.daily_capacity << "/day, horizon " << options.horizon_days
      << " days)\n";
  out << StrFormat("%-12s %-8s %12s %8s\n", "date", "vehicle", "due",
                   "slack");
  for (const auto& a : plan.assignments) {
    out << StrFormat("%-12s %-8s %12s %+8ld\n",
                     a.scheduled_date.ToString().c_str(),
                     a.vehicle_id.c_str(),
                     a.predicted_due_date.ToString().c_str(),
                     static_cast<long>(a.slack_days));
  }
  out << StrFormat("total cost %.1f (early days %ld, late days %ld)\n",
                   plan.total_cost,
                   static_cast<long>(plan.total_early_days),
                   static_cast<long>(plan.total_late_days));
  for (const std::string& id : plan.beyond_horizon) {
    out << "beyond horizon: " << id << "\n";
  }
  return Status::OK();
}

Status RunEvaluate(const ParsedArgs& args, std::ostream& out) {
  if (!args.HasFlag("data")) {
    return Status::InvalidArgument("evaluate requires --data DIR");
  }
  NM_ASSIGN_OR_RETURN(
      FleetLoad load,
      LoadFleetSource(args.flags.at("data"), args.HasFlag("strict")));
  ReportSkippedVehicles(load, out);
  const auto& vehicles = load.vehicles;
  NM_ASSIGN_OR_RETURN(double tv, args.DoubleFlagOr("tv", 2'000'000.0));
  NM_ASSIGN_OR_RETURN(int64_t window, args.IntFlagOr("window", 6));

  core::OldVehicleOptions options;
  options.window = static_cast<int>(window);
  options.train_on_last29_only = args.HasFlag("last29");
  options.tune = args.HasFlag("tune");
  options.resampling_shifts = 2;

  out << StrFormat("%-8s %-6s %12s %12s\n", "vehicle", "model",
                   "E_MRE(1..29)", "E_Global");
  for (const auto& [id, series] : vehicles) {
    for (const char* algorithm : {"BL", "LR", "LSVR", "RF", "XGB"}) {
      const auto eval =
          core::EvaluateAlgorithmOnVehicle(algorithm, series, tv, options);
      if (!eval.ok()) {
        out << StrFormat("%-8s %-6s skipped: %s\n", id.c_str(), algorithm,
                         eval.status().message().c_str());
        continue;
      }
      out << StrFormat("%-8s %-6s %12.2f %12.2f\n", id.c_str(), algorithm,
                       eval.ValueOrDie().emre, eval.ValueOrDie().eglobal);
    }
  }
  return Status::OK();
}

Status RunServe(const ParsedArgs& args, std::ostream& out) {
  if (!args.HasFlag("data")) {
    return Status::InvalidArgument("serve requires --data DIR");
  }
  NM_ASSIGN_OR_RETURN(const CommonOptions common, ParseCommonOptions(args));
  if (!common.load_models.empty()) {
    return Status::InvalidArgument(
        "serve trains incrementally from the replayed data and cannot start "
        "from a checkpoint; drop --load-models");
  }
  if (common.daemon) {
    return RunServeDaemon(args, common, out);
  }
  if (common.port > 0 || !common.socket_path.empty()) {
    return Status::InvalidArgument(
        "--socket/--port only apply to serve --daemon\n" + UsageText());
  }
  NM_ASSIGN_OR_RETURN(int64_t replay_days, args.IntFlagOr("replay-days", 30));
  NM_ASSIGN_OR_RETURN(int64_t refresh_every,
                      args.IntFlagOr("refresh-every", 1));
  if (replay_days < 1) {
    return Status::InvalidArgument(
        "--replay-days expects a positive integer\n" + UsageText());
  }
  if (refresh_every < 1) {
    return Status::InvalidArgument(
        "--refresh-every expects a positive integer\n" + UsageText());
  }
  NM_ASSIGN_OR_RETURN(
      FleetLoad load, LoadFleetSource(args.flags.at("data"), common.strict));
  ReportSkippedVehicles(load, out);
  NM_ASSIGN_OR_RETURN(core::SchedulerOptions options,
                      SchedulerOptionsFromArgs(args, common));
  serve::ServingEngine engine(options);

  // Warm start: everything but the trailing replay window is bulk-loaded,
  // then the last `replay_days` arrive one day at a time like a live feed.
  const size_t replay = static_cast<size_t>(replay_days);
  const auto warm_size = [replay](const data::DailySeries& series) {
    return series.size() > replay ? series.size() - replay : 0;
  };
  for (const auto& [id, series] : load.vehicles) {
    NM_RETURN_NOT_OK(engine.Register(id, series.start_date()));
    const size_t warm = warm_size(series);
    if (warm == 0) continue;
    const Status loaded = engine.LoadHistory(id, series.Slice(0, warm));
    if (!loaded.ok()) {
      if (common.strict) return loaded.WithContext(id);
      out << "warm-start degraded vehicle " << id << ": "
          << loaded.ToString() << "\n";
    }
  }

  // One refresh. Non-strict keeps serving the previous snapshot when the
  // whole refresh fails (per-vehicle failures degrade inside the engine).
  const auto refresh = [&]() -> Status {
    const Result<serve::RefreshStats> stats = engine.RefreshForecasts();
    if (!stats.ok()) {
      if (common.strict) return stats.status();
      out << "refresh degraded: " << stats.status().ToString()
          << " (serving stale snapshot)\n";
      return Status::OK();
    }
    const serve::RefreshStats& s = stats.ValueOrDie();
    out << "refresh epoch " << s.epoch << ": " << s.refreshed
        << " refreshed, " << s.reused << " reused";
    if (s.warm_started > 0) out << ", " << s.warm_started << " warm";
    out << (s.corpus_rebuilt ? ", corpus rebuilt" : "") << "\n";
    return Status::OK();
  };

  NM_RETURN_NOT_OK(refresh());
  int64_t steps_since_refresh = 0;
  for (size_t step = 0; step < replay; ++step) {
    bool any_data_left = false;
    for (const auto& [id, series] : load.vehicles) {
      const size_t idx = warm_size(series) + step;
      if (idx >= series.size()) continue;
      any_data_left = true;
      const Date day = series.start_date().AddDays(static_cast<int64_t>(idx));
      const Status appended = engine.Append(id, day, series[idx]);
      if (!appended.ok()) {
        if (common.strict) return appended.WithContext(id);
        out << "append degraded vehicle " << id << " day "
            << day.ToString() << ": " << appended.ToString() << "\n";
      }
    }
    if (!any_data_left) break;
    if (++steps_since_refresh >= refresh_every) {
      steps_since_refresh = 0;
      NM_RETURN_NOT_OK(refresh());
    }
  }
  if (engine.DirtyCount() > 0) {
    NM_RETURN_NOT_OK(refresh());
  }

  const std::shared_ptr<const serve::FleetSnapshot> snapshot =
      engine.Snapshot();
  ReportDegradationReport(snapshot->degradations, out);
  out << "fleet snapshot at epoch " << snapshot->epoch << " ("
      << snapshot->vehicles << " vehicles, " << snapshot->forecasts.size()
      << " forecasts)\n";
  PrintForecastTable(snapshot->forecasts, out);
  return Status::OK();
}

std::string UsageText() {
  return
      "usage: nextmaint <command> [flags]\n"
      "commands:\n"
      "  simulate --out DIR [--vehicles N] [--days N] [--seed S] [--tv S]\n"
      "           [--weather]\n"
      "  compact  --data DIR --out FILE [--tv S]\n"
      "  forecast --data DIR [--tv S] [--window W] [--tune] [--threads N]\n"
      "           [--save-models FILE] [--load-models FILE]\n"
      "  plan     --data DIR [--capacity N] [--horizon DAYS] [--weekends]\n"
      "           [--threads N]\n"
      "  evaluate --data DIR [--tv S] [--window W] [--last29] [--tune]\n"
      "  serve    --data DIR [--tv S] [--window W] [--replay-days N]\n"
      "           [--refresh-every N] [--threads N] [--warm-start]\n"
      "  serve    --daemon --data DIR (--socket PATH | --port N)\n"
      "           [--shards N] [--max-queue N] [--batch-window N]\n"
      "           [--tv S] [--window W] [--threads N]\n"
      "\n"
      "compact streams the fleet's CSVs into one binary corpus file\n"
      "(docs/storage.md); every --data flag accepts that file in place of\n"
      "the CSV directory, skipping CSV parsing on later runs. Checkpoints\n"
      "(--save-models/--load-models) use the segmented mmap format: loads\n"
      "map the file and deserialize each model on first use.\n"
      "serve replays the trailing --replay-days of each vehicle through the\n"
      "incremental engine: warm-start, then append day by day and refresh\n"
      "only the dirty vehicles (docs/serving.md). --warm-start resumes\n"
      "eligible ensemble models in place instead of retraining them from\n"
      "scratch, within a measured divergence bound (docs/warm-start.md).\n"
      "serve --daemon runs the long-lived sharded daemon instead: vehicles\n"
      "are sharded by stable hash across --shards serving engines and the\n"
      "versioned binary protocol is served on a unix socket or TCP\n"
      "loopback port until a client sends Shutdown. Per-shard write queues\n"
      "hold at most --max-queue requests (beyond that the daemon answers\n"
      "Overloaded), and --batch-window N refreshes a shard automatically\n"
      "every N applied appends (docs/serving.md).\n"
      "--threads N trains/forecasts the fleet on N threads (0 = all cores);\n"
      "results are bit-identical at any thread count (docs/parallelism.md).\n"
      "--metrics-json FILE (any command) records telemetry for the run and\n"
      "writes the metrics snapshot as JSON (docs/observability.md); the\n"
      "NEXTMAINT_METRICS env var enables recording without the file.\n"
      "--strict aborts on the first per-vehicle failure; by default failing\n"
      "vehicles are skipped or served the BL fallback and reported\n"
      "(docs/fault-injection.md).\n"
      "--failpoints SPEC (any command) arms deterministic fault-injection\n"
      "sites, SPEC = site[:nth[:kind]][,...]; same grammar as the\n"
      "NEXTMAINT_FAILPOINTS env var (docs/fault-injection.md).\n";
}

Status RunCommand(const std::vector<std::string>& args, std::ostream& out) {
  const ParsedArgs parsed = ParseArgs(args);
  if (parsed.positional.empty()) {
    return Status::InvalidArgument("missing command\n" + UsageText());
  }
  // One shared validation path; commands re-parse the (pure, cheap) result
  // for their own use while the dispatcher owns the side effects.
  NM_ASSIGN_OR_RETURN(const CommonOptions common, ParseCommonOptions(parsed));
  if (!common.failpoints.empty()) {
    NM_RETURN_NOT_OK(failpoints::Arm(common.failpoints));
  }
  // --metrics-json implies recording; without it telemetry follows the
  // NEXTMAINT_METRICS env default and nothing is written.
  const bool write_metrics = !common.metrics_json.empty();
  if (write_metrics) {
    telemetry::SetEnabled(true);
  }

  const std::string& command = parsed.positional.front();
  Status status;
  if (command == "simulate") {
    status = RunSimulate(parsed, out);
  } else if (command == "compact") {
    status = RunCompact(parsed, out);
  } else if (command == "forecast") {
    status = RunForecast(parsed, out);
  } else if (command == "plan") {
    status = RunPlan(parsed, out);
  } else if (command == "evaluate") {
    status = RunEvaluate(parsed, out);
  } else if (command == "serve") {
    status = RunServe(parsed, out);
  } else {
    return Status::InvalidArgument("unknown command '" + command + "'\n" +
                                   UsageText());
  }

  if (write_metrics && status.ok()) {
    NM_RETURN_NOT_OK(telemetry::WriteJsonFile(telemetry::Snapshot(),
                                              common.metrics_json));
    out << "metrics written to " << common.metrics_json << "\n";
  }
  return status;
}

}  // namespace cli
}  // namespace nextmaint
