#ifndef NEXTMAINT_CLI_CLI_H_
#define NEXTMAINT_CLI_CLI_H_

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"

/// \file cli.h
/// The `nextmaint` command-line tool, as a library so every command is unit
/// testable. The binary in tools/nextmaint_cli.cc is a thin dispatcher.
///
/// Commands:
///   simulate --out DIR [--vehicles N] [--days N] [--seed S] [--weather]
///       Simulate a fleet and write one CSV per vehicle (date,utilization_s)
///       plus fleet.csv with the vehicle inventory.
///   compact --data DIR --out FILE [--tv SECONDS]
///       Stream the fleet's per-vehicle CSVs into one compacted binary
///       corpus (docs/storage.md): column blocks behind summary headers,
///       so later runs skip CSV parsing and cold-start screening reads
///       headers only. Every fleet command accepts the corpus file in
///       place of the CSV directory (--data FILE).
///   forecast --data DIR [--tv SECONDS] [--window W] [--save-models FILE]
///       Load per-vehicle CSVs, train the scheduler, print the fleet
///       forecast; optionally persist the trained models as a segmented
///       mmap checkpoint (docs/storage.md).
///   plan --data DIR [--capacity N] [--horizon DAYS] [--weekends]
///       Forecast, then book workshop slots under capacity constraints.
///   evaluate --data DIR [--tv SECONDS] [--window W] [--last29]
///       Compare the five paper algorithms per vehicle (E_MRE / E_Global).
///   serve --data DIR [--tv SECONDS] [--window W] [--replay-days N]
///         [--refresh-every N] [--warm-start]
///       Replay the trailing days of each vehicle series through the
///       incremental serving engine: warm-start on the leading history,
///       then append day by day and refresh only the dirty vehicles,
///       printing per-refresh stats and the final fleet snapshot
///       (docs/serving.md). --warm-start resumes eligible ensemble models
///       incrementally instead of retraining them from scratch
///       (docs/warm-start.md).
///   serve --daemon --data DIR (--socket PATH | --port N) [--shards N]
///         [--max-queue N] [--batch-window N] [--tv SECONDS] [--window W]
///       Long-running sharded daemon: warm-start the fleet, publish an
///       initial snapshot, then serve the versioned length-prefixed binary
///       protocol (docs/serving.md) over a unix socket or TCP loopback
///       until a client sends Shutdown. Vehicles are sharded by stable
///       hash across --shards ServingEngines; writes queue per shard
///       (bounded by --max-queue, Overloaded beyond that) and
///       --batch-window N auto-refreshes a shard every N applied appends.
///
/// Every command returns a Status; errors print nothing to `out` besides
/// what was already produced.
///
/// Fleet commands degrade per vehicle by default: unreadable CSVs and
/// failing per-vehicle training/forecasting are reported on `out` and the
/// rest of the fleet is served (BL fallback where possible). `--strict`
/// restores fail-fast, and `--failpoints SPEC` arms deterministic fault
/// injection for chaos drills. See docs/fault-injection.md.

namespace nextmaint {
namespace cli {

/// Parsed command line: flag values by name (without leading dashes) and
/// positional arguments in order.
struct ParsedArgs {
  std::map<std::string, std::string> flags;
  std::vector<std::string> positional;

  bool HasFlag(const std::string& name) const {
    return flags.count(name) > 0;
  }
  /// Flag value or `fallback` when absent.
  std::string FlagOr(const std::string& name, std::string fallback) const;
  /// Integer flag; DataError on unparsable values.
  [[nodiscard]] Result<int64_t> IntFlagOr(const std::string& name, int64_t fallback) const;
  /// Double flag; DataError on unparsable values.
  [[nodiscard]] Result<double> DoubleFlagOr(const std::string& name,
                              double fallback) const;
};

/// Parses `--name value`, `--name=value` and bare `--switch` tokens;
/// everything else is positional. A `--switch` immediately followed by
/// another flag (or end of input) stores the empty string.
ParsedArgs ParseArgs(const std::vector<std::string>& args);

/// Flags shared by every fleet command, parsed and validated by
/// ParseCommonOptions — one validation path instead of per-command copies.
struct CommonOptions {
  /// --threads N: fleet-level concurrency (0 = all cores).
  int threads = 0;
  /// --strict: fail fast instead of degrading per vehicle.
  bool strict = false;
  /// --metrics-json FILE: telemetry report destination; empty = none.
  std::string metrics_json;
  /// --failpoints SPEC: fault-injection arming spec; empty = none.
  std::string failpoints;
  /// --load-models FILE: checkpoint to load instead of training; empty =
  /// train from the data.
  std::string load_models;
  /// --daemon: run `serve` as the long-running sharded daemon instead of
  /// the one-shot replay.
  bool daemon = false;
  /// --shards N: number of serving shards in daemon mode (>= 1).
  int shards = 1;
  /// --port N: TCP loopback port for the daemon (1..65535); -1 = unset.
  int port = -1;
  /// --socket PATH: unix-domain socket path for the daemon; empty = unset.
  std::string socket_path;
  /// --max-queue N: per-shard bounded write-queue depth (>= 1).
  int64_t max_queue = 1024;
  /// --batch-window N: auto-refresh a shard every N applied appends
  /// (0 = only explicit Refresh requests).
  int64_t batch_window = 0;
  /// --warm-start: refreshes resume eligible ensemble models in place
  /// instead of retraining them cold (docs/warm-start.md).
  bool warm_start = false;
};

/// Parses and validates the shared flags: --threads must be a non-negative
/// integer, --metrics-json/--failpoints/--load-models must carry a value
/// when present, and --failpoints requires a build with failpoints
/// compiled in. Daemon flags go through the same single path: --shards and
/// --max-queue must be >= 1, --batch-window >= 0, --port in 1..65535, and
/// --socket/--port are mutually exclusive. InvalidArgument (with the usage
/// text) otherwise.
[[nodiscard]] Result<CommonOptions> ParseCommonOptions(const ParsedArgs& args);

/// Command entry points. `out` receives human-readable results.
[[nodiscard]] Status RunSimulate(const ParsedArgs& args, std::ostream& out);
[[nodiscard]] Status RunCompact(const ParsedArgs& args, std::ostream& out);
[[nodiscard]] Status RunForecast(const ParsedArgs& args, std::ostream& out);
[[nodiscard]] Status RunPlan(const ParsedArgs& args, std::ostream& out);
[[nodiscard]] Status RunEvaluate(const ParsedArgs& args, std::ostream& out);
[[nodiscard]] Status RunServe(const ParsedArgs& args, std::ostream& out);

/// Dispatches to the command named by the first positional argument.
/// Unknown or missing commands return InvalidArgument with a usage string.
[[nodiscard]] Status RunCommand(const std::vector<std::string>& args, std::ostream& out);

/// One-paragraph usage text.
std::string UsageText();

}  // namespace cli
}  // namespace nextmaint

#endif  // NEXTMAINT_CLI_CLI_H_
