#include "telematics/controller.h"

#include <algorithm>
#include <limits>
#include <set>

#include "common/macros.h"
#include "data/preprocess.h"

namespace nextmaint {
namespace telem {

Result<std::vector<SummaryReport>> SummarizeDay(
    const std::string& vehicle_id, Date date,
    const std::vector<CanFrame>& frames, const ControllerOptions& options) {
  if (options.report_period_s <= 0.0 || options.report_period_s > 86400.0) {
    return Status::InvalidArgument("report_period_s must be in (0, 86400]");
  }
  if (options.frequency_hz <= 0.0) {
    return Status::InvalidArgument("frequency_hz must be positive");
  }
  for (size_t i = 1; i < frames.size(); ++i) {
    if (frames[i].timestamp_ms < frames[i - 1].timestamp_ms) {
      return Status::DataError("CAN frames are not time-ordered at index " +
                               std::to_string(i));
    }
  }

  const double tick_seconds = 1.0 / options.frequency_hz;
  std::vector<SummaryReport> reports;
  SummaryReport current;
  double rpm_sum = 0.0;
  size_t working_frames = 0;
  int64_t current_window = -1;

  auto flush = [&]() {
    if (current.message_count == 0) return;
    current.mean_engine_rpm =
        working_frames > 0 ? rpm_sum / static_cast<double>(working_frames)
                           : 0.0;
    reports.push_back(current);
  };

  for (const CanFrame& frame : frames) {
    const double t_seconds = static_cast<double>(frame.timestamp_ms) / 1000.0;
    const int64_t window =
        static_cast<int64_t>(t_seconds / options.report_period_s);
    if (window != current_window) {
      flush();
      current = SummaryReport{};
      current.vehicle_id = vehicle_id;
      current.date = date;
      current.window_start_s =
          static_cast<double>(window) * options.report_period_s;
      current.window_end_s = current.window_start_s + options.report_period_s;
      current.min_oil_pressure_kpa = std::numeric_limits<double>::infinity();
      current.max_coolant_temp_c = -std::numeric_limits<double>::infinity();
      rpm_sum = 0.0;
      working_frames = 0;
      current_window = window;
    }
    ++current.message_count;
    if (frame.working) {
      current.working_seconds += tick_seconds;
      rpm_sum += frame.engine_speed_rpm;
      ++working_frames;
      current.max_coolant_temp_c =
          std::max(current.max_coolant_temp_c, frame.coolant_temp_c);
      current.min_oil_pressure_kpa =
          std::min(current.min_oil_pressure_kpa, frame.oil_pressure_kpa);
    }
  }
  flush();
  return reports;
}

void ReportCollector::Ingest(const std::vector<SummaryReport>& reports) {
  reports_.insert(reports_.end(), reports.begin(), reports.end());
}

std::vector<std::string> ReportCollector::VehicleIds() const {
  std::set<std::string> ids;
  for (const SummaryReport& report : reports_) ids.insert(report.vehicle_id);
  return {ids.begin(), ids.end()};
}

Result<data::Table> ReportCollector::ReportsTable(
    const std::string& vehicle_id) const {
  data::Column date_col("date", data::ColumnType::kString);
  data::Column window_col("window_start_s", data::ColumnType::kDouble);
  data::Column seconds_col("working_seconds", data::ColumnType::kDouble);
  data::Column rpm_col("mean_engine_rpm", data::ColumnType::kDouble);
  data::Column temp_col("max_coolant_temp_c", data::ColumnType::kDouble);
  data::Column oil_col("min_oil_pressure_kpa", data::ColumnType::kDouble);
  data::Column count_col("message_count", data::ColumnType::kInt64);

  bool found = false;
  for (const SummaryReport& report : reports_) {
    if (report.vehicle_id != vehicle_id) continue;
    found = true;
    date_col.AppendString(report.date.ToString());
    window_col.AppendDouble(report.window_start_s);
    seconds_col.AppendDouble(report.working_seconds);
    rpm_col.AppendDouble(report.mean_engine_rpm);
    temp_col.AppendDouble(report.max_coolant_temp_c);
    oil_col.AppendDouble(report.min_oil_pressure_kpa);
    count_col.AppendInt64(static_cast<int64_t>(report.message_count));
  }
  if (!found) {
    return Status::NotFound("no reports for vehicle '" + vehicle_id + "'");
  }
  data::Table table;
  NM_RETURN_NOT_OK(table.AddColumn(std::move(date_col)));
  NM_RETURN_NOT_OK(table.AddColumn(std::move(window_col)));
  NM_RETURN_NOT_OK(table.AddColumn(std::move(seconds_col)));
  NM_RETURN_NOT_OK(table.AddColumn(std::move(rpm_col)));
  NM_RETURN_NOT_OK(table.AddColumn(std::move(temp_col)));
  NM_RETURN_NOT_OK(table.AddColumn(std::move(oil_col)));
  NM_RETURN_NOT_OK(table.AddColumn(std::move(count_col)));
  return table;
}

Result<data::DailySeries> ReportCollector::DailyUtilization(
    const std::string& vehicle_id) const {
  NM_ASSIGN_OR_RETURN(data::Table table, ReportsTable(vehicle_id));
  return data::AggregateDaily(table, "date", "working_seconds");
}

}  // namespace telem
}  // namespace nextmaint
