#ifndef NEXTMAINT_TELEMATICS_USAGE_MODEL_H_
#define NEXTMAINT_TELEMATICS_USAGE_MODEL_H_

#include <string>

#include "common/date.h"
#include "common/rng.h"
#include "common/status.h"

/// \file usage_model.h
/// Per-vehicle stochastic daily-utilization model.
///
/// The closed Tierra dataset is replaced by a generator designed to
/// reproduce the statistical properties the paper reports:
///  - heterogeneous vehicles (Fig. 1): steady users with occasional days
///    off vs. machines idle for weeks that suddenly work at full capacity;
///  - non-stationary series: regime persistence (idle / light / heavy work
///    regimes form multi-week runs), weekly and annual seasonality;
///  - lower usage in the first maintenance cycle (Sec. 4.4: first-cycle
///    mean 10,676 s vs 13,792 s afterwards, ~30% lower);
///  - zero-usage runs that create the vertical steps of Fig. 3.
///
/// The regime layer is a 3-state Markov chain (kIdle, kLight, kHeavy) whose
/// self-transition probabilities control run lengths. Given the regime, the
/// day's utilization seconds are drawn from a regime-specific distribution
/// and modulated by weekday/season multipliers.

namespace nextmaint {
namespace telem {

/// Work intensity regime of a vehicle on a given day.
enum class UsageRegime { kIdle = 0, kLight = 1, kHeavy = 2 };

/// Static description of one vehicle's usage behaviour.
struct VehicleProfile {
  std::string id;
  /// Human-readable machine model, e.g. "excavator-22t".
  std::string model_name;
  /// Allowed usage seconds between maintenance operations (T_v).
  double maintenance_interval_s = 2'000'000.0;

  // --- Markov regime dynamics (rows sum to 1 implicitly; only
  // self-persistence and the heavy/light balance are parameters). ---
  /// P(stay idle | idle). High values create multi-week dead periods.
  double idle_persistence = 0.6;
  /// P(stay in current working regime | working).
  double work_persistence = 0.9;
  /// P(heavy | leaving idle or switching working regime).
  double heavy_share = 0.5;

  // --- Conditional daily utilization (seconds). ---
  /// P(an idle-regime day has exactly zero usage).
  double idle_zero_prob = 0.85;
  /// Upper bound of residual idle-day usage (short repositioning etc.).
  double idle_max_s = 2'000.0;
  double light_mean_s = 9'000.0;
  double light_stddev_s = 2'500.0;
  double heavy_mean_s = 26'000.0;
  double heavy_stddev_s = 4'500.0;

  // --- Calendar modulation. ---
  /// P(a weekend day is worked at all); failed draws give zero usage.
  double weekend_work_prob = 0.25;
  /// Relative amplitude of the annual sinusoid (0 = none).
  double seasonal_amplitude = 0.15;
  /// Phase of the annual sinusoid in fractions of a year.
  double seasonal_phase = 0.0;

  /// Usage multiplier at the very start of the first maintenance cycle.
  /// A new machine ramps into service: usage starts at this fraction of
  /// normal and rises linearly (in cycle progress) until
  /// `first_cycle_ramp_end`, after which it is at full level. Averaged over
  /// the cycle this reproduces the ~30% first-cycle deficit the paper
  /// reports (10,676 s vs 13,792 s mean daily usage) while making the
  /// first-half average a poor predictor of the end-of-cycle rate — the
  /// reason the semi-new BL baseline degrades so badly (Table 3).
  double first_cycle_factor = 0.35;
  /// Fraction of first-cycle usage progress at which the ramp completes.
  double first_cycle_ramp_end = 0.75;

  /// Validates ranges (probabilities in [0,1], positive scales).
  Status Validate() const;
};

/// Evolving state of one vehicle's generator.
struct UsageState {
  UsageRegime regime = UsageRegime::kIdle;
  /// True until the first maintenance event completes.
  bool in_first_cycle = true;
  /// Fraction of the first cycle's allowed usage already consumed
  /// (cumulative usage / T_v, in [0, 1]); maintained by the caller and used
  /// to position the ramp. Ignored once in_first_cycle is false.
  double first_cycle_progress = 0.0;
};

/// Draws the next day's regime given the current one.
UsageRegime NextRegime(const VehicleProfile& profile, UsageRegime current,
                       Rng* rng);

/// Draws one day of utilization seconds and advances `state->regime`.
/// The result is clamped to [0, 86400].
double SimulateUsageDay(const VehicleProfile& profile, Date date,
                        UsageState* state, Rng* rng);

}  // namespace telem
}  // namespace nextmaint

#endif  // NEXTMAINT_TELEMATICS_USAGE_MODEL_H_
