#ifndef NEXTMAINT_TELEMATICS_FLEET_H_
#define NEXTMAINT_TELEMATICS_FLEET_H_

#include <string>
#include <vector>

#include "common/date.h"
#include "common/rng.h"
#include "common/status.h"
#include "data/time_series.h"
#include "telematics/usage_model.h"
#include "telematics/weather.h"

/// \file fleet.h
/// Whole-fleet simulation: the stand-in for the paper's dataset of "24
/// heterogeneous vehicles acquired over a 4 year period (from January 2015
/// to September 2019)".

namespace nextmaint {
namespace telem {

/// Complete simulated history of one vehicle.
struct VehicleHistory {
  VehicleProfile profile;
  /// Daily utilization seconds, gap-free unless missing-data injection is
  /// enabled (NaN marks telemetry outages).
  data::DailySeries utilization;
  /// Day indices (into `utilization`) on which a maintenance operation
  /// occurred, i.e. cumulative usage since the previous maintenance crossed
  /// the vehicle's maintenance_interval_s at the end of that day.
  std::vector<size_t> maintenance_days;
};

/// A simulated fleet.
struct Fleet {
  Date start_date;
  std::vector<VehicleHistory> vehicles;
  /// Site weather over the simulated period; empty unless the fleet was
  /// simulated with_weather.
  WeatherSeries weather;

  /// Lookup by vehicle id; NotFound when absent.
  [[nodiscard]] Result<const VehicleHistory*> Find(const std::string& id) const;
};

/// Options for fleet construction.
struct FleetOptions {
  /// Number of vehicles (the paper studies 24).
  int num_vehicles = 24;
  /// First day of data acquisition (paper: January 2015).
  Date start_date;
  /// Days of history (paper: Jan 2015 - Sep 2019 ~ 1735 days).
  int num_days = 1735;
  /// Allowed usage seconds between maintenances, applied to every vehicle
  /// (the paper considers T_v = 2,000,000 s).
  double maintenance_interval_s = 2'000'000.0;
  /// Fraction of days whose telemetry is lost in transit (NaN in the
  /// series). 0 disables injection; the preparation pipeline repairs them.
  double missing_day_fraction = 0.0;
  /// Couple usage to simulated site weather: daily utilization is scaled
  /// by the day's workability factor (rain / frost suppression). Enables
  /// the contextual-enrichment extension benches.
  bool with_weather = false;
  /// Site climate used when with_weather is true.
  WeatherModel weather;
  /// Master seed; each vehicle forks an independent stream.
  uint64_t seed = 20150101;
};

/// Builds the default heterogeneous 24-vehicle cohort: a deterministic
/// rotation over five archetypes (steady heavy user, bursty
/// idle-then-full-capacity, strongly seasonal, light-duty, weekday-only)
/// with per-vehicle jitter drawn from `rng`. Vehicle ids are "v1".."vN".
std::vector<VehicleProfile> DefaultFleetProfiles(int num_vehicles, Rng* rng);

/// Simulates the full history of a fleet with the default profiles.
[[nodiscard]] Result<Fleet> SimulateFleet(const FleetOptions& options);

/// Simulates the full history of a fleet with caller-provided profiles
/// (each profile is validated).
[[nodiscard]] Result<Fleet> SimulateFleetWithProfiles(
    const FleetOptions& options, const std::vector<VehicleProfile>& profiles);

/// Simulates one vehicle: iterates the usage model day by day, tracks
/// cumulative usage and emits maintenance events each time it crosses
/// profile.maintenance_interval_s (the remainder carries into the next
/// cycle). The first-cycle usage reduction ends at the first event.
/// When `weather` is non-null (its size must cover num_days) each day's
/// utilization is scaled by the day's workability factor.
[[nodiscard]] Result<VehicleHistory> SimulateVehicle(const VehicleProfile& profile,
                                       Date start_date, int num_days,
                                       double missing_day_fraction, Rng* rng,
                                       const WeatherSeries* weather = nullptr);

}  // namespace telem
}  // namespace nextmaint

#endif  // NEXTMAINT_TELEMATICS_FLEET_H_
