#ifndef NEXTMAINT_TELEMATICS_CAN_BUS_H_
#define NEXTMAINT_TELEMATICS_CAN_BUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

/// \file can_bus.h
/// Message-level model of the vehicle CAN bus.
///
/// The paper's data source: "Onboard sensors and Machine Control Systems
/// generate messages for CAN at a frequency of approximately 100 Hz. Each
/// message is collected by a controller which processes it, periodically
/// generates a summary report, and sends it to a cloud server."
///
/// This module simulates the physical layer: per-tick CAN frames carrying
/// the usage-state signals named in the paper (working time, oil pressure,
/// temperature, engine speed). The controller (controller.h) reduces frames
/// to summary reports; multi-year fleet simulation uses the statistically
/// equivalent fast path in usage_model.h (frames at 100 Hz for 4 years x 24
/// vehicles would be ~3x10^11 messages).

namespace nextmaint {
namespace telem {

/// One CAN frame as decoded by the on-board controller.
struct CanFrame {
  /// Milliseconds since the start of the simulated day.
  int64_t timestamp_ms = 0;
  /// True when the machine is actively working (engine under load).
  bool working = false;
  double engine_speed_rpm = 0.0;
  double oil_pressure_kpa = 0.0;
  double coolant_temp_c = 0.0;
};

/// Physical parameters of the simulated sensor suite.
struct SensorModel {
  double idle_rpm = 800.0;
  double working_rpm_mean = 1900.0;
  double working_rpm_stddev = 150.0;
  double idle_oil_kpa = 150.0;
  double working_oil_kpa_mean = 420.0;
  double working_oil_kpa_stddev = 35.0;
  double ambient_temp_c = 15.0;
  double working_temp_c = 88.0;
  /// First-order thermal lag per tick toward the regime temperature.
  double temp_lag = 0.002;
};

/// Options for one day of frame generation.
struct CanDayOptions {
  /// Frame rate in Hz. The real bus runs ~100 Hz; tests use lower rates.
  double frequency_hz = 100.0;
  /// Target seconds of working time within the day (0..86400).
  double working_seconds = 0.0;
  /// Mean length in seconds of one continuous working bout.
  double mean_bout_seconds = 1800.0;
  SensorModel sensors;
};

/// Generates one simulated day of CAN frames: working bouts with
/// exponentially distributed lengths are placed over the day until the
/// target working time is met; signal values follow the regime.
/// Total working time across frames matches `working_seconds` up to frame
/// granularity. Fails on out-of-range options.
[[nodiscard]] Result<std::vector<CanFrame>> SimulateCanDay(const CanDayOptions& options,
                                             Rng* rng);

/// Sums the working time represented by a frame sequence, in seconds
/// (each frame accounts for one tick of 1/frequency_hz seconds).
double WorkingSecondsOf(const std::vector<CanFrame>& frames,
                        double frequency_hz);

}  // namespace telem
}  // namespace nextmaint

#endif  // NEXTMAINT_TELEMATICS_CAN_BUS_H_
