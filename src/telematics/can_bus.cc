#include "telematics/can_bus.h"

#include <algorithm>
#include <cmath>

namespace nextmaint {
namespace telem {

Result<std::vector<CanFrame>> SimulateCanDay(const CanDayOptions& options,
                                             Rng* rng) {
  if (options.frequency_hz <= 0.0 || options.frequency_hz > 1000.0) {
    return Status::InvalidArgument("frequency_hz must be in (0, 1000]");
  }
  if (options.working_seconds < 0.0 || options.working_seconds > 86400.0) {
    return Status::InvalidArgument("working_seconds must be in [0, 86400]");
  }
  if (options.mean_bout_seconds <= 0.0) {
    return Status::InvalidArgument("mean_bout_seconds must be positive");
  }

  const double tick_seconds = 1.0 / options.frequency_hz;
  const int64_t ticks_per_day =
      static_cast<int64_t>(86400.0 * options.frequency_hz);
  const int64_t working_ticks_target = static_cast<int64_t>(
      std::llround(options.working_seconds * options.frequency_hz));

  // Lay out the day exactly: draw bout lengths ~ Exp(1/mean_bout) until
  // they sum to the working budget (last bout truncated), then distribute
  // the day's idle time over the gaps before/between/after the bouts with
  // random proportions. The result covers exactly working_ticks_target
  // ticks and is time-ordered by construction.
  std::vector<int64_t> bout_lengths;
  int64_t remaining = working_ticks_target;
  while (remaining > 0) {
    int64_t bout_ticks = static_cast<int64_t>(
        std::ceil(rng->Exponential(1.0 / options.mean_bout_seconds) *
                  options.frequency_hz));
    bout_ticks = std::clamp<int64_t>(bout_ticks, 1, remaining);
    bout_lengths.push_back(bout_ticks);
    remaining -= bout_ticks;
  }

  const int64_t idle_ticks = ticks_per_day - working_ticks_target;
  std::vector<int64_t> gap_lengths(bout_lengths.size() + 1, 0);
  if (idle_ticks > 0 && !gap_lengths.empty()) {
    std::vector<double> weights(gap_lengths.size());
    double weight_sum = 0.0;
    for (double& w : weights) {
      w = rng->Exponential(1.0);
      weight_sum += w;
    }
    int64_t assigned = 0;
    for (size_t g = 0; g + 1 < gap_lengths.size(); ++g) {
      gap_lengths[g] = static_cast<int64_t>(
          static_cast<double>(idle_ticks) * weights[g] / weight_sum);
      assigned += gap_lengths[g];
    }
    gap_lengths.back() = idle_ticks - assigned;
  }

  std::vector<std::pair<int64_t, int64_t>> bouts;  // [start_tick, end_tick)
  bouts.reserve(bout_lengths.size());
  int64_t cursor = 0;
  for (size_t b = 0; b < bout_lengths.size(); ++b) {
    cursor += gap_lengths[b];
    bouts.emplace_back(cursor, cursor + bout_lengths[b]);
    cursor += bout_lengths[b];
  }

  // Emit frames only while the engine is on (a parked machine is silent on
  // the working-state channel); this keeps test-scale volumes manageable and
  // matches how controllers deduplicate idle traffic.
  std::vector<CanFrame> frames;
  const SensorModel& s = options.sensors;
  double temp = s.ambient_temp_c;
  for (const auto& [begin, end] : bouts) {
    for (int64_t tick = begin; tick < end; ++tick) {
      CanFrame frame;
      frame.timestamp_ms =
          static_cast<int64_t>(static_cast<double>(tick) * tick_seconds *
                               1000.0);
      frame.working = true;
      frame.engine_speed_rpm =
          rng->Normal(s.working_rpm_mean, s.working_rpm_stddev);
      frame.oil_pressure_kpa =
          rng->Normal(s.working_oil_kpa_mean, s.working_oil_kpa_stddev);
      temp += s.temp_lag * (s.working_temp_c - temp);
      frame.coolant_temp_c = temp;
      frames.push_back(frame);
    }
    // Cool toward ambient between bouts (coarse step per gap).
    temp += 0.5 * (s.ambient_temp_c - temp);
  }
  return frames;
}

double WorkingSecondsOf(const std::vector<CanFrame>& frames,
                        double frequency_hz) {
  size_t working = 0;
  for (const CanFrame& frame : frames) {
    if (frame.working) ++working;
  }
  return static_cast<double>(working) / frequency_hz;
}

}  // namespace telem
}  // namespace nextmaint
