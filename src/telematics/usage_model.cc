#include "telematics/usage_model.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace nextmaint {
namespace telem {

namespace {

Status CheckProbability(double p, const char* name) {
  if (p < 0.0 || p > 1.0) {
    return Status::InvalidArgument(std::string(name) +
                                   " must be a probability, got " +
                                   std::to_string(p));
  }
  return Status::OK();
}

Status CheckPositive(double v, const char* name) {
  if (v <= 0.0) {
    return Status::InvalidArgument(std::string(name) +
                                   " must be positive, got " +
                                   std::to_string(v));
  }
  return Status::OK();
}

}  // namespace

Status VehicleProfile::Validate() const {
  if (id.empty()) return Status::InvalidArgument("vehicle id is empty");
  NM_RETURN_NOT_OK(CheckPositive(maintenance_interval_s,
                                 "maintenance_interval_s"));
  NM_RETURN_NOT_OK(CheckProbability(idle_persistence, "idle_persistence"));
  NM_RETURN_NOT_OK(CheckProbability(work_persistence, "work_persistence"));
  NM_RETURN_NOT_OK(CheckProbability(heavy_share, "heavy_share"));
  NM_RETURN_NOT_OK(CheckProbability(idle_zero_prob, "idle_zero_prob"));
  NM_RETURN_NOT_OK(CheckProbability(weekend_work_prob, "weekend_work_prob"));
  NM_RETURN_NOT_OK(CheckPositive(light_mean_s, "light_mean_s"));
  NM_RETURN_NOT_OK(CheckPositive(heavy_mean_s, "heavy_mean_s"));
  if (idle_max_s < 0.0) {
    return Status::InvalidArgument("idle_max_s must be non-negative");
  }
  if (seasonal_amplitude < 0.0 || seasonal_amplitude > 1.0) {
    return Status::InvalidArgument("seasonal_amplitude must be in [0, 1]");
  }
  if (first_cycle_factor <= 0.0 || first_cycle_factor > 1.0) {
    return Status::InvalidArgument("first_cycle_factor must be in (0, 1]");
  }
  if (first_cycle_ramp_end <= 0.0 || first_cycle_ramp_end > 1.0) {
    return Status::InvalidArgument("first_cycle_ramp_end must be in (0, 1]");
  }
  return Status::OK();
}

UsageRegime NextRegime(const VehicleProfile& profile, UsageRegime current,
                       Rng* rng) {
  if (current == UsageRegime::kIdle) {
    if (rng->Bernoulli(profile.idle_persistence)) return UsageRegime::kIdle;
    return rng->Bernoulli(profile.heavy_share) ? UsageRegime::kHeavy
                                               : UsageRegime::kLight;
  }
  if (rng->Bernoulli(profile.work_persistence)) return current;
  // Leaving the current working regime: mostly drop to idle, sometimes
  // switch intensity (split evenly).
  if (rng->Bernoulli(0.5)) return UsageRegime::kIdle;
  return rng->Bernoulli(profile.heavy_share) ? UsageRegime::kHeavy
                                             : UsageRegime::kLight;
}

double SimulateUsageDay(const VehicleProfile& profile, Date date,
                        UsageState* state, Rng* rng) {
  state->regime = NextRegime(profile, state->regime, rng);

  double seconds = 0.0;
  switch (state->regime) {
    case UsageRegime::kIdle:
      seconds = rng->Bernoulli(profile.idle_zero_prob)
                    ? 0.0
                    : rng->Uniform(0.0, profile.idle_max_s);
      break;
    case UsageRegime::kLight:
      seconds = rng->Normal(profile.light_mean_s, profile.light_stddev_s);
      break;
    case UsageRegime::kHeavy:
      seconds = rng->Normal(profile.heavy_mean_s, profile.heavy_stddev_s);
      break;
  }

  // Weekend gate: most construction work pauses on weekends.
  if (date.IsWeekend() && !rng->Bernoulli(profile.weekend_work_prob)) {
    seconds = 0.0;
  }

  // Annual seasonality (e.g. winter slowdowns for earth-moving machines).
  const double year_fraction =
      static_cast<double>(date.DayOfYear()) / 365.25;
  seconds *= 1.0 + profile.seasonal_amplitude *
                       std::sin(2.0 * M_PI *
                                (year_fraction + profile.seasonal_phase));

  if (state->in_first_cycle) {
    // Ramp-in of a newly delivered machine: factor rises linearly with
    // first-cycle usage progress and saturates at 1.
    const double progress =
        std::clamp(state->first_cycle_progress /
                       std::max(profile.first_cycle_ramp_end, 1e-9),
                   0.0, 1.0);
    seconds *= profile.first_cycle_factor +
               (1.0 - profile.first_cycle_factor) * progress;
  }

  return std::clamp(seconds, 0.0, 86400.0);
}

}  // namespace telem
}  // namespace nextmaint
