#ifndef NEXTMAINT_TELEMATICS_WEATHER_H_
#define NEXTMAINT_TELEMATICS_WEATHER_H_

#include <vector>

#include "common/date.h"
#include "common/rng.h"
#include "common/status.h"

/// \file weather.h
/// Synthetic site weather — the contextual signal the paper's conclusions
/// propose to exploit ("we plan to enrich regression models using
/// contextual information (e.g., meteorological data, fleet movements)").
///
/// Daily weather per site: temperature follows an annual sinusoid with
/// autocorrelated noise; precipitation follows a two-state (wet/dry)
/// Markov chain with seasonal wet-probability. Construction work degrades
/// in heavy rain and hard frost, so weather feeds the usage model
/// (usage_model.h) and, in deployment, the *forecast* for the next days is
/// a legitimate model input (weather is known ahead, unlike usage).

namespace nextmaint {
namespace telem {

/// Weather observed (or forecast) for one day at one site.
struct WeatherDay {
  double temperature_c = 15.0;
  double precipitation_mm = 0.0;

  /// Fraction of a normal work day achievable under these conditions,
  /// in [0, 1]: heavy rain and frost suppress outdoor machine work.
  double WorkabilityFactor() const;
};

/// Parameters of the site climate.
struct WeatherModel {
  double mean_temperature_c = 12.0;
  /// Amplitude of the annual temperature sinusoid.
  double seasonal_swing_c = 10.0;
  /// Day-to-day temperature noise (AR(1) innovation std dev).
  double temperature_noise_c = 2.5;
  /// Autocorrelation of the temperature noise.
  double temperature_persistence = 0.7;
  /// Base probability a day is wet, before seasonality.
  double wet_probability = 0.3;
  /// P(wet | yesterday wet) - P(wet | yesterday dry) boost.
  double wet_persistence_boost = 0.35;
  /// Mean rainfall on wet days (exponential), in mm.
  double mean_rain_mm = 8.0;

  Status Validate() const;
};

/// A contiguous daily weather series for one site.
struct WeatherSeries {
  Date start_date;
  std::vector<WeatherDay> days;

  size_t size() const { return days.size(); }
  const WeatherDay& operator[](size_t i) const { return days[i]; }

  /// Per-day workability factors (convenience for feature building).
  std::vector<double> WorkabilityFactors() const;
};

/// Simulates `num_days` of site weather. Deterministic given the rng seed.
Result<WeatherSeries> SimulateWeather(const WeatherModel& model,
                                      Date start_date, int num_days,
                                      Rng* rng);

}  // namespace telem
}  // namespace nextmaint

#endif  // NEXTMAINT_TELEMATICS_WEATHER_H_
