#ifndef NEXTMAINT_TELEMATICS_CONTROLLER_H_
#define NEXTMAINT_TELEMATICS_CONTROLLER_H_

#include <string>
#include <vector>

#include "common/date.h"
#include "common/status.h"
#include "data/table.h"
#include "data/time_series.h"
#include "telematics/can_bus.h"

/// \file controller.h
/// The on-board controller and the cloud-side collector.
///
/// Controller: consumes the CAN frame stream of one day, windows it into
/// periodic summary reports ("a controller which processes it, periodically
/// generates a summary report, and sends it to a cloud server").
///
/// ReportCollector: the cloud side — accumulates reports across vehicles
/// and days and materializes per-vehicle daily utilization series (via the
/// data-preparation aggregation step).

namespace nextmaint {
namespace telem {

/// One summary report uploaded by the controller.
struct SummaryReport {
  std::string vehicle_id;
  Date date;
  /// Report window within the day, in seconds since midnight.
  double window_start_s = 0.0;
  double window_end_s = 0.0;
  /// Seconds of working time observed in the window.
  double working_seconds = 0.0;
  /// Telemetry statistics over working frames in the window.
  double mean_engine_rpm = 0.0;
  double max_coolant_temp_c = 0.0;
  double min_oil_pressure_kpa = 0.0;
  size_t message_count = 0;
};

/// Options for the summarization process.
struct ControllerOptions {
  /// Report period in seconds (default: hourly reports).
  double report_period_s = 3600.0;
  /// CAN frame rate the controller assumes when integrating working time.
  double frequency_hz = 100.0;
};

/// Windows one day of CAN frames into summary reports. Windows with no
/// frames produce no report (the cloud treats absent windows as zero usage).
/// Frames must be time-ordered; fails with DataError otherwise.
[[nodiscard]] Result<std::vector<SummaryReport>> SummarizeDay(
    const std::string& vehicle_id, Date date,
    const std::vector<CanFrame>& frames, const ControllerOptions& options);

/// Cloud-side accumulator of summary reports.
class ReportCollector {
 public:
  /// Ingests a batch of reports (any vehicle/day order).
  void Ingest(const std::vector<SummaryReport>& reports);

  /// Vehicles seen so far, sorted.
  std::vector<std::string> VehicleIds() const;

  /// All reports of one vehicle as a relational table with columns
  /// (date: string, window_start_s, working_seconds, mean_engine_rpm,
  /// max_coolant_temp_c, min_oil_pressure_kpa, message_count).
  [[nodiscard]] Result<data::Table> ReportsTable(const std::string& vehicle_id) const;

  /// Daily utilization series of one vehicle: the aggregation step of the
  /// preparation pipeline applied to the report table. Days inside the
  /// observed range with no reports come back as NaN for the cleaning step.
  [[nodiscard]] Result<data::DailySeries> DailyUtilization(
      const std::string& vehicle_id) const;

 private:
  std::vector<SummaryReport> reports_;
};

}  // namespace telem
}  // namespace nextmaint

#endif  // NEXTMAINT_TELEMATICS_CONTROLLER_H_
