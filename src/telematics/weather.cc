#include "telematics/weather.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace nextmaint {
namespace telem {

double WeatherDay::WorkabilityFactor() const {
  double factor = 1.0;
  // Rain: light rain barely matters; beyond ~20 mm sites shut down.
  if (precipitation_mm > 2.0) {
    factor *= std::max(0.0, 1.0 - (precipitation_mm - 2.0) / 18.0);
  }
  // Frost: productivity degrades below 0C and stops near -15C.
  if (temperature_c < 0.0) {
    factor *= std::max(0.0, 1.0 + temperature_c / 15.0);
  }
  return std::clamp(factor, 0.0, 1.0);
}

Status WeatherModel::Validate() const {
  if (seasonal_swing_c < 0.0 || temperature_noise_c < 0.0) {
    return Status::InvalidArgument("temperature scales must be >= 0");
  }
  if (temperature_persistence < 0.0 || temperature_persistence >= 1.0) {
    return Status::InvalidArgument(
        "temperature_persistence must be in [0, 1)");
  }
  if (wet_probability < 0.0 || wet_probability > 1.0) {
    return Status::InvalidArgument("wet_probability must be in [0, 1]");
  }
  if (wet_persistence_boost < 0.0 ||
      wet_probability + wet_persistence_boost > 1.0) {
    return Status::InvalidArgument(
        "wet_persistence_boost must keep P(wet|wet) within [0, 1]");
  }
  if (mean_rain_mm <= 0.0) {
    return Status::InvalidArgument("mean_rain_mm must be positive");
  }
  return Status::OK();
}

Result<WeatherSeries> SimulateWeather(const WeatherModel& model,
                                      Date start_date, int num_days,
                                      Rng* rng) {
  NM_RETURN_NOT_OK(model.Validate());
  if (num_days <= 0) {
    return Status::InvalidArgument("num_days must be positive");
  }

  WeatherSeries series;
  series.start_date = start_date;
  series.days.reserve(static_cast<size_t>(num_days));

  double noise = 0.0;
  bool yesterday_wet = false;
  for (int d = 0; d < num_days; ++d) {
    const Date date = start_date.AddDays(d);
    WeatherDay day;

    // Annual sinusoid peaking mid-July (northern-hemisphere site).
    const double year_fraction =
        static_cast<double>(date.DayOfYear()) / 365.25;
    const double seasonal =
        model.mean_temperature_c +
        model.seasonal_swing_c *
            std::sin(2.0 * M_PI * (year_fraction - 0.29));
    noise = model.temperature_persistence * noise +
            rng->Normal(0.0, model.temperature_noise_c);
    day.temperature_c = seasonal + noise;

    // Wet/dry Markov chain; winters are a little wetter.
    const double seasonal_wet_shift =
        0.08 * std::cos(2.0 * M_PI * (year_fraction - 0.05));
    double p_wet = model.wet_probability + seasonal_wet_shift +
                   (yesterday_wet ? model.wet_persistence_boost : 0.0);
    p_wet = std::clamp(p_wet, 0.0, 1.0);
    if (rng->Bernoulli(p_wet)) {
      day.precipitation_mm = rng->Exponential(1.0 / model.mean_rain_mm);
      yesterday_wet = true;
    } else {
      day.precipitation_mm = 0.0;
      yesterday_wet = false;
    }
    series.days.push_back(day);
  }
  return series;
}

std::vector<double> WeatherSeries::WorkabilityFactors() const {
  std::vector<double> factors;
  factors.reserve(days.size());
  for (const WeatherDay& day : days) {
    factors.push_back(day.WorkabilityFactor());
  }
  return factors;
}

}  // namespace telem
}  // namespace nextmaint
