#include "telematics/fleet.h"

#include <cmath>
#include <limits>

#include "common/macros.h"
#include "common/strings.h"

namespace nextmaint {
namespace telem {

Result<const VehicleHistory*> Fleet::Find(const std::string& id) const {
  for (const VehicleHistory& vehicle : vehicles) {
    if (vehicle.profile.id == id) return &vehicle;
  }
  return Status::NotFound("no vehicle '" + id + "' in fleet");
}

std::vector<VehicleProfile> DefaultFleetProfiles(int num_vehicles, Rng* rng) {
  NM_CHECK(num_vehicles > 0);
  std::vector<VehicleProfile> profiles;
  profiles.reserve(static_cast<size_t>(num_vehicles));

  for (int i = 0; i < num_vehicles; ++i) {
    VehicleProfile p;
    // StrFormat instead of `"v" + std::to_string(...)`: the char* +
    // string&& operator trips GCC 12's -Wrestrict false positive at -O2.
    p.id = StrFormat("v%d", i + 1);
    // Rotate over five archetypes; jitter decorrelates same-archetype
    // vehicles so the similarity matching has real work to do.
    const double jitter = rng->Uniform(0.85, 1.15);
    switch (i % 5) {
      case 0:
        // Steady heavy user: works most days at 20k-30k s with occasional
        // multi-day pauses (paper's v1).
        p.model_name = "excavator-22t";
        p.idle_persistence = 0.93;
        p.work_persistence = 0.99;
        p.heavy_share = 0.7;
        p.heavy_mean_s = 30'000.0 * jitter;
        p.light_mean_s = 9'000.0 * jitter;
        p.idle_zero_prob = 0.9;
        p.weekend_work_prob = 0.05;
        p.seasonal_amplitude = 0.08;
        break;
      case 1:
        // Bursty: idle for weeks, then sustained full capacity (paper's v2).
        p.model_name = "crawler-crane";
        p.idle_persistence = 0.985;
        p.work_persistence = 0.99;
        p.heavy_share = 0.8;
        p.heavy_mean_s = 34'000.0 * jitter;
        p.light_mean_s = 12'000.0 * jitter;
        p.idle_zero_prob = 0.93;
        p.weekend_work_prob = 0.8;
        p.seasonal_amplitude = 0.05;
        break;
      case 2:
        // Strongly seasonal earth-mover (winter slowdown).
        p.model_name = "wheel-loader";
        p.idle_persistence = 0.96;
        p.work_persistence = 0.985;
        p.heavy_share = 0.65;
        p.heavy_mean_s = 28'000.0 * jitter;
        p.light_mean_s = 8'000.0 * jitter;
        p.seasonal_amplitude = 0.5;
        p.seasonal_phase = 0.25;  // peak in summer
        p.weekend_work_prob = 0.05;
        break;
      case 3:
        // Light-duty utility machine with a wide light/heavy gap.
        p.model_name = "telehandler";
        p.idle_persistence = 0.95;
        p.work_persistence = 0.99;
        p.heavy_share = 0.5;
        p.heavy_mean_s = 24'000.0 * jitter;
        p.light_mean_s = 7'000.0 * jitter;
        p.light_stddev_s = 1'500.0;
        p.weekend_work_prob = 0.02;
        p.seasonal_amplitude = 0.12;
        break;
      default:
        // Weekday-only site machine with moderate intensity.
        p.model_name = "backhoe-loader";
        p.idle_persistence = 0.9;
        p.work_persistence = 0.99;
        p.heavy_share = 0.65;
        p.heavy_mean_s = 28'000.0 * jitter;
        p.light_mean_s = 9'000.0 * jitter;
        p.weekend_work_prob = 0.02;
        p.seasonal_amplitude = 0.1;
        break;
    }
    p.seasonal_phase += rng->Uniform(-0.05, 0.05);
    p.heavy_stddev_s = 0.08 * p.heavy_mean_s;
    p.light_stddev_s = 0.12 * p.light_mean_s;
    profiles.push_back(std::move(p));
  }
  return profiles;
}

Result<VehicleHistory> SimulateVehicle(const VehicleProfile& profile,
                                       Date start_date, int num_days,
                                       double missing_day_fraction, Rng* rng,
                                       const WeatherSeries* weather) {
  NM_RETURN_NOT_OK(profile.Validate().WithContext(profile.id));
  if (num_days <= 0) {
    return Status::InvalidArgument("num_days must be positive");
  }
  if (missing_day_fraction < 0.0 || missing_day_fraction >= 1.0) {
    return Status::InvalidArgument("missing_day_fraction must be in [0, 1)");
  }
  if (weather != nullptr &&
      (weather->size() < static_cast<size_t>(num_days) ||
       weather->start_date != start_date)) {
    return Status::InvalidArgument(
        "weather series must cover the simulated period");
  }

  VehicleHistory history;
  history.profile = profile;
  std::vector<double> values;
  values.reserve(static_cast<size_t>(num_days));

  UsageState state;
  double cycle_usage = 0.0;
  for (int day = 0; day < num_days; ++day) {
    const Date date = start_date.AddDays(day);
    state.first_cycle_progress = cycle_usage / profile.maintenance_interval_s;
    double seconds = SimulateUsageDay(profile, date, &state, rng);
    if (weather != nullptr) {
      seconds *= (*weather)[static_cast<size_t>(day)].WorkabilityFactor();
    }
    cycle_usage += seconds;
    if (cycle_usage >= profile.maintenance_interval_s) {
      history.maintenance_days.push_back(static_cast<size_t>(day));
      // The unused remainder above T_v carries into the new cycle: the
      // machine does not stop mid-shift for scheduled service.
      cycle_usage -= profile.maintenance_interval_s;
      state.in_first_cycle = false;
    }
    values.push_back(seconds);
  }

  // Telemetry-outage injection: replace observed days by NaN after the
  // fact so maintenance bookkeeping reflects true usage, as in reality
  // (machines work even when the modem is down).
  if (missing_day_fraction > 0.0) {
    for (double& v : values) {
      if (rng->Bernoulli(missing_day_fraction)) {
        v = std::numeric_limits<double>::quiet_NaN();
      }
    }
  }

  history.utilization = data::DailySeries(start_date, std::move(values));
  return history;
}

Result<Fleet> SimulateFleetWithProfiles(
    const FleetOptions& options,
    const std::vector<VehicleProfile>& profiles) {
  if (profiles.empty()) {
    return Status::InvalidArgument("profile list is empty");
  }
  Fleet fleet;
  fleet.start_date = options.start_date;
  Rng master(options.seed);
  if (options.with_weather) {
    Rng weather_rng = master.Fork();
    NM_ASSIGN_OR_RETURN(
        fleet.weather,
        SimulateWeather(options.weather, options.start_date,
                        options.num_days, &weather_rng));
  }
  for (const VehicleProfile& base : profiles) {
    VehicleProfile profile = base;
    profile.maintenance_interval_s = options.maintenance_interval_s;
    Rng vehicle_rng = master.Fork();
    NM_ASSIGN_OR_RETURN(
        VehicleHistory history,
        SimulateVehicle(profile, options.start_date, options.num_days,
                        options.missing_day_fraction, &vehicle_rng,
                        options.with_weather ? &fleet.weather : nullptr));
    fleet.vehicles.push_back(std::move(history));
  }
  return fleet;
}

Result<Fleet> SimulateFleet(const FleetOptions& options) {
  if (options.num_vehicles <= 0) {
    return Status::InvalidArgument("num_vehicles must be positive");
  }
  Rng profile_rng(options.seed ^ 0xABCDEF);
  const std::vector<VehicleProfile> profiles =
      DefaultFleetProfiles(options.num_vehicles, &profile_rng);
  return SimulateFleetWithProfiles(options, profiles);
}

}  // namespace telem
}  // namespace nextmaint
