// Property-based sweeps (parameterized gtest): invariants that must hold
// across seeds, vehicle archetypes and hyper-parameter settings.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <tuple>
#include <utility>

#include "common/failpoints.h"
#include "nextmaint.h"

namespace nextmaint {
namespace {

Date Day(int offset) {
  return Date::FromYmd(2015, 1, 1).ValueOrDie().AddDays(offset);
}

// ---------------------------------------------------------------------------
// Series-derivation invariants across random vehicles.
// ---------------------------------------------------------------------------

class SeriesInvariantsTest
    : public testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(SeriesInvariantsTest, DerivedSeriesInvariantsHold) {
  const auto [seed, archetype_offset] = GetParam();
  Rng rng(seed);
  auto profiles = telem::DefaultFleetProfiles(5, &rng);
  telem::VehicleProfile profile =
      profiles[static_cast<size_t>(archetype_offset) % profiles.size()];
  profile.maintenance_interval_s = 400'000.0;
  Rng sim_rng(seed * 13 + 1);
  const auto history =
      telem::SimulateVehicle(profile, Day(0), 700, 0.0, &sim_rng)
          .ValueOrDie();
  const core::VehicleSeries s =
      core::DeriveSeries(history.utilization,
                         profile.maintenance_interval_s)
          .ValueOrDie();

  // 1. The simulator's maintenance events equal the derived cycle ends.
  std::vector<size_t> cycle_ends;
  for (const core::Cycle& cycle : s.cycles) cycle_ends.push_back(cycle.end);
  EXPECT_EQ(cycle_ends, history.maintenance_days);

  // 2. L stays in (0, T]; C counts up; D counts down to zero at cycle ends.
  for (size_t t = 0; t < s.size(); ++t) {
    EXPECT_GT(s.l[t], 0.0);
    EXPECT_LE(s.l[t], profile.maintenance_interval_s);
    if (t > 0 && s.c[t] > 0) {
      EXPECT_DOUBLE_EQ(s.c[t], s.c[t - 1] + 1);
    }
  }
  for (const core::Cycle& cycle : s.cycles) {
    EXPECT_DOUBLE_EQ(s.d[cycle.end], 0.0);
    EXPECT_DOUBLE_EQ(s.d[cycle.start],
                     static_cast<double>(cycle.length_days() - 1));
  }

  // 3. Usage within each cycle sums to at least T (and less than T plus
  // one maximal day).
  for (const core::Cycle& cycle : s.cycles) {
    double total = s.l[cycle.start] == profile.maintenance_interval_s
                       ? 0.0
                       : profile.maintenance_interval_s - s.l[cycle.start];
    for (size_t t = cycle.start; t <= cycle.end; ++t) total += s.u[t];
    EXPECT_GE(total, profile.maintenance_interval_s - 1e-6);
    EXPECT_LT(total, profile.maintenance_interval_s + 86'400.0);
  }

  // 4. Time-shift re-sampling never invents different physics: a shifted
  // derivation has cycles at least as late as the shift.
  const core::VehicleSeries shifted =
      core::DeriveSeries(history.utilization,
                         profile.maintenance_interval_s, 50)
          .ValueOrDie();
  EXPECT_EQ(shifted.size(), s.size() - 50);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SeriesInvariantsTest,
    testing::Combine(testing::Values(uint64_t{1}, uint64_t{2}, uint64_t{3},
                                     uint64_t{5}, uint64_t{8}),
                     testing::Values(0, 1, 2, 3, 4)));

// ---------------------------------------------------------------------------
// Model invariants across algorithms.
// ---------------------------------------------------------------------------

class ModelContractTest : public testing::TestWithParam<std::string> {};

TEST_P(ModelContractTest, FitPredictContract) {
  const std::string name = GetParam();
  Rng rng(99);
  ml::Dataset train;
  for (int i = 0; i < 150; ++i) {
    const double x0 = rng.Uniform(0, 10);
    const double x1 = rng.Uniform(-1, 1);
    const std::vector<double> row = {x0, x1};
    train.AddRow(std::span<const double>(row.data(), 2),
                 3.0 * x0 + rng.Normal(0, 0.1));
  }

  auto model = ml::MakeRegressor(name).MoveValueOrDie();
  // Predict before fit fails cleanly.
  const std::vector<double> probe = {5.0, 0.0};
  EXPECT_EQ(model->Predict(std::span<const double>(probe.data(), 2))
                .status()
                .code(),
            StatusCode::kFailedPrecondition);

  ASSERT_TRUE(model->Fit(train).ok());
  ASSERT_TRUE(model->is_fitted());

  // Predictions are finite and within a sane envelope of the target range.
  const std::vector<double> preds =
      model->PredictBatch(train.x()).ValueOrDie();
  for (double p : preds) {
    EXPECT_TRUE(std::isfinite(p));
    EXPECT_GT(p, -20.0);
    EXPECT_LT(p, 50.0);
  }

  // Wrong arity is rejected.
  const std::vector<double> short_row = {1.0};
  EXPECT_EQ(model->Predict(std::span<const double>(short_row.data(), 1))
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  // Clone preserves behaviour.
  const auto clone = model->Clone();
  EXPECT_DOUBLE_EQ(
      clone->Predict(std::span<const double>(probe.data(), 2)).ValueOrDie(),
      model->Predict(std::span<const double>(probe.data(), 2)).ValueOrDie());

  // Refit on a different dataset discards old state (predictions change).
  ml::Dataset other;
  for (int i = 0; i < 150; ++i) {
    const double x0 = rng.Uniform(0, 10);
    const std::vector<double> row = {x0, 0.0};
    other.AddRow(std::span<const double>(row.data(), 2), -3.0 * x0);
  }
  ASSERT_TRUE(model->Fit(other).ok());
  EXPECT_LT(
      model->Predict(std::span<const double>(probe.data(), 2)).ValueOrDie(),
      0.0);
}

TEST_P(ModelContractTest, DeterministicRefit) {
  const std::string name = GetParam();
  Rng rng(7);
  ml::Dataset train;
  for (int i = 0; i < 100; ++i) {
    const double x = rng.Uniform(0, 1);
    const std::vector<double> row = {x};
    train.AddRow(std::span<const double>(row.data(), 1),
                 x * x + rng.Normal(0, 0.05));
  }
  auto a = ml::MakeRegressor(name).MoveValueOrDie();
  auto b = ml::MakeRegressor(name).MoveValueOrDie();
  ASSERT_TRUE(a->Fit(train).ok());
  ASSERT_TRUE(b->Fit(train).ok());
  const std::vector<double> probe = {0.37};
  EXPECT_DOUBLE_EQ(
      a->Predict(std::span<const double>(probe.data(), 1)).ValueOrDie(),
      b->Predict(std::span<const double>(probe.data(), 1)).ValueOrDie());
}

INSTANTIATE_TEST_SUITE_P(AllModels, ModelContractTest,
                         testing::Values("LR", "LSVR", "Tree", "RF", "XGB"));

// ---------------------------------------------------------------------------
// Error-metric properties over random prediction vectors.
// ---------------------------------------------------------------------------

class ErrorMetricPropertyTest : public testing::TestWithParam<uint64_t> {};

TEST_P(ErrorMetricPropertyTest, MetricProperties) {
  Rng rng(GetParam());
  std::vector<double> truth, perfect, noisy, noisier;
  for (int i = 0; i < 300; ++i) {
    const double d = std::floor(rng.Uniform(0, 120));
    truth.push_back(d);
    perfect.push_back(d);
    noisy.push_back(d + rng.Normal(0, 2));
    noisier.push_back(d + rng.Normal(0, 8));
  }

  // Perfect predictions give zero everywhere.
  EXPECT_DOUBLE_EQ(core::GlobalError(truth, perfect).ValueOrDie(), 0.0);
  EXPECT_DOUBLE_EQ(core::MeanResidualError(truth, perfect,
                                           core::DaySet::Last29())
                       .ValueOrDie(),
                   0.0);

  // More noise -> larger error (monotonicity in aggregate).
  EXPECT_LT(core::GlobalError(truth, noisy).ValueOrDie(),
            core::GlobalError(truth, noisier).ValueOrDie());

  // E_MRE over the full target range equals E_Global.
  EXPECT_NEAR(core::MeanResidualError(truth, noisy,
                                      core::DaySet::Range(0, 200))
                  .ValueOrDie(),
              core::GlobalError(truth, noisy).ValueOrDie(), 1e-12);

  // Signed error is bounded by the absolute error.
  EXPECT_LE(std::fabs(core::GlobalError(truth, noisy, true).ValueOrDie()),
            core::GlobalError(truth, noisy, false).ValueOrDie());

  // Restricting to disjoint ranges partitions the mass: the full-range
  // error is a convex combination of the parts.
  const double low = core::MeanResidualError(truth, noisy,
                                             core::DaySet::Range(0, 59))
                         .ValueOrDie();
  const double high = core::MeanResidualError(truth, noisy,
                                              core::DaySet::Range(60, 200))
                          .ValueOrDie();
  const double all = core::GlobalError(truth, noisy).ValueOrDie();
  EXPECT_GE(all, std::min(low, high) - 1e-12);
  EXPECT_LE(all, std::max(low, high) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ErrorMetricPropertyTest,
                         testing::Values(uint64_t{11}, uint64_t{22},
                                         uint64_t{33}, uint64_t{44}));

// ---------------------------------------------------------------------------
// Cleaning is idempotent and preserves observed values, for every policy.
// ---------------------------------------------------------------------------

class CleaningPolicyTest
    : public testing::TestWithParam<data::MissingValuePolicy> {};

TEST_P(CleaningPolicyTest, IdempotentAndValuePreserving) {
  const data::MissingValuePolicy policy = GetParam();
  Rng rng(55);
  std::vector<double> values;
  for (int i = 0; i < 200; ++i) {
    if (rng.Bernoulli(0.15)) {
      values.push_back(std::numeric_limits<double>::quiet_NaN());
    } else {
      values.push_back(rng.Uniform(0, 40'000));
    }
  }
  data::DailySeries series(Day(0), values);
  data::Clean(&series, policy);
  EXPECT_TRUE(series.IsComplete());

  // Observed values survive cleaning untouched.
  for (size_t i = 0; i < values.size(); ++i) {
    if (!std::isnan(values[i])) {
      EXPECT_DOUBLE_EQ(series[i], values[i]);
    } else {
      EXPECT_GE(series[i], 0.0);
      EXPECT_LE(series[i], 86'400.0);
    }
  }

  // A second pass changes nothing.
  data::DailySeries again = series;
  const data::CleaningReport report = data::Clean(&again, policy);
  EXPECT_EQ(report.missing_filled, 0u);
  for (size_t i = 0; i < series.size(); ++i) {
    EXPECT_DOUBLE_EQ(again[i], series[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, CleaningPolicyTest,
    testing::Values(data::MissingValuePolicy::kZero,
                    data::MissingValuePolicy::kMean,
                    data::MissingValuePolicy::kForwardFill,
                    data::MissingValuePolicy::kInterpolate));

// ---------------------------------------------------------------------------
// Window sweep: every algorithm stays evaluable for any W, and the dataset
// shapes follow the contract.
// ---------------------------------------------------------------------------

class WindowSweepTest : public testing::TestWithParam<int> {};

TEST_P(WindowSweepTest, DatasetShapesFollowWindow) {
  const int window = GetParam();
  data::DailySeries u(Day(0), std::vector<double>(90, 100.0));
  const core::VehicleSeries s =
      core::DeriveSeries(u, 1'000.0).ValueOrDie();
  core::DatasetOptions options;
  options.window = window;
  const ml::Dataset dataset = core::BuildDataset(s, options).ValueOrDie();
  EXPECT_EQ(dataset.num_features(), static_cast<size_t>(window) + 1);
  EXPECT_EQ(dataset.num_rows(), 90u - static_cast<size_t>(window));
}

INSTANTIATE_TEST_SUITE_P(Windows, WindowSweepTest,
                         testing::Values(0, 1, 3, 6, 9, 12, 18));


// ---------------------------------------------------------------------------
// Fleet scheduling is invariant to ingestion order and thread count: a
// scheduler fed vehicles in a random permutation and trained in parallel
// forecasts exactly what a serially-trained, canonically-ordered one does.
// ---------------------------------------------------------------------------

class IngestionOrderTest : public testing::TestWithParam<uint64_t> {};

TEST_P(IngestionOrderTest, ParallelPermutedFleetMatchesSerialCanonical) {
  const uint64_t seed = GetParam();
  constexpr double kTv = 500'000.0;
  constexpr int kFleetSize = 5;

  // Simulated series per vehicle, fixed across both schedulers.
  std::vector<data::DailySeries> series;
  for (int v = 0; v < kFleetSize; ++v) {
    Rng profile_rng(uint64_t{100} + static_cast<uint64_t>(v));
    telem::VehicleProfile profile =
        telem::DefaultFleetProfiles(1, &profile_rng)[0];
    profile.maintenance_interval_s = kTv;
    Rng sim_rng(uint64_t{17} * static_cast<uint64_t>(v) + 5);
    const int days = v == kFleetSize - 1 ? 40 : 650;  // one semi-new vehicle
    series.push_back(telem::SimulateVehicle(profile, Day(0), days, 0.0,
                                            &sim_rng)
                         .ValueOrDie()
                         .utilization);
  }

  core::SchedulerOptions options;
  options.maintenance_interval_s = kTv;
  options.window = 3;
  options.algorithms = {"BL", "LR"};
  options.unified_algorithm = "LR";
  options.selection.tune = false;
  options.selection.resampling_shifts = 0;

  const auto forecasts_for = [&](const std::vector<int>& order,
                                 int num_threads) {
    core::SchedulerOptions opts = options;
    opts.num_threads = num_threads;
    core::FleetScheduler scheduler(opts);
    for (int v : order) {
      const std::string id = "v" + std::to_string(v);
      EXPECT_TRUE(scheduler.RegisterVehicle(id, Day(0)).ok());
      EXPECT_TRUE(
          scheduler.IngestSeries(id, series[static_cast<size_t>(v)]).ok());
    }
    EXPECT_TRUE(scheduler.TrainAll().ok());
    return scheduler.FleetForecast().ValueOrDie();
  };

  std::vector<int> canonical(kFleetSize);
  for (int v = 0; v < kFleetSize; ++v) canonical[static_cast<size_t>(v)] = v;
  std::vector<int> permuted = canonical;
  Rng shuffle_rng(seed);
  shuffle_rng.Shuffle(&permuted);

  const auto serial = forecasts_for(canonical, 1);
  const auto parallel = forecasts_for(permuted, 4);

  // Compare as a set keyed by vehicle: the forecast for every vehicle must
  // be identical down to the bit, regardless of ingestion order or the
  // number of training threads.
  ASSERT_EQ(serial.size(), parallel.size());
  ASSERT_EQ(serial.size(), static_cast<size_t>(kFleetSize));
  const auto by_vehicle = [](const std::vector<core::MaintenanceForecast>& f) {
    std::map<std::string, const core::MaintenanceForecast*> index;
    for (const auto& forecast : f) index[forecast.vehicle_id] = &forecast;
    return index;
  };
  const auto serial_index = by_vehicle(serial);
  for (const auto& [id, b] : by_vehicle(parallel)) {
    ASSERT_TRUE(serial_index.count(id)) << id;
    const core::MaintenanceForecast& a = *serial_index.at(id);
    EXPECT_EQ(a.category, b->category) << id;
    EXPECT_EQ(a.model_name, b->model_name) << id;
    EXPECT_EQ(a.days_left, b->days_left) << id;
    EXPECT_EQ(a.usage_seconds_left, b->usage_seconds_left) << id;
    EXPECT_EQ(a.predicted_date, b->predicted_date) << id;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IngestionOrderTest,
                         testing::Values(uint64_t{3}, uint64_t{14},
                                         uint64_t{159}));

// ---------------------------------------------------------------------------
// Failure isolation: whatever random subset of vehicles has its training
// sabotaged, every non-failing vehicle's forecast is bit-identical to a
// failure-free run, the failing vehicles are served by the BL fallback,
// and the degradation report names exactly the injected set — at 1 and 4
// threads alike.
// ---------------------------------------------------------------------------

class DegradationIsolationTest : public testing::TestWithParam<uint64_t> {};

TEST_P(DegradationIsolationTest, FailingSubsetNeverPerturbsTheRest) {
  if (!failpoints::CompiledIn()) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  const uint64_t seed = GetParam();
  constexpr double kTv = 500'000.0;
  constexpr int kFleetSize = 5;

  std::vector<data::DailySeries> series;
  for (int v = 0; v < kFleetSize; ++v) {
    Rng profile_rng(uint64_t{300} + static_cast<uint64_t>(v));
    telem::VehicleProfile profile =
        telem::DefaultFleetProfiles(1, &profile_rng)[0];
    profile.maintenance_interval_s = kTv;
    Rng sim_rng(uint64_t{23} * static_cast<uint64_t>(v) + 9);
    series.push_back(telem::SimulateVehicle(profile, Day(0), 650, 0.0,
                                            &sim_rng)
                         .ValueOrDie()
                         .utilization);
  }

  // A random, non-empty, proper subset of failing vehicles.
  Rng subset_rng(seed);
  std::set<int> failing;
  while (failing.empty() ||
         failing.size() == static_cast<size_t>(kFleetSize)) {
    failing.clear();
    for (int v = 0; v < kFleetSize; ++v) {
      if (subset_rng.NextDouble() < 0.4) failing.insert(v);
    }
  }

  core::SchedulerOptions options;
  options.maintenance_interval_s = kTv;
  options.window = 3;
  options.algorithms = {"BL", "LR"};
  options.unified_algorithm = "LR";
  options.selection.tune = false;
  options.selection.resampling_shifts = 0;

  // Vehicles train in sorted-id order, so vehicle v maps to ordinal v + 1.
  const auto run_fleet = [&](const std::set<int>& sabotage,
                             int num_threads) {
    core::SchedulerOptions opts = options;
    opts.num_threads = num_threads;
    core::FleetScheduler scheduler(opts);
    for (int v = 0; v < kFleetSize; ++v) {
      const std::string id = std::string("v") + std::to_string(v);
      EXPECT_TRUE(scheduler.RegisterVehicle(id, Day(0)).ok());
      EXPECT_TRUE(
          scheduler.IngestSeries(id, series[static_cast<size_t>(v)]).ok());
    }
    failpoints::DisarmAll();
    for (int v : sabotage) {
      EXPECT_TRUE(
          failpoints::Arm("scheduler.train_vehicle:" + std::to_string(v + 1))
              .ok());
    }
    EXPECT_TRUE(scheduler.TrainAll().ok());
    failpoints::DisarmAll();
    auto forecasts = scheduler.FleetForecast().ValueOrDie();
    std::pair<std::vector<core::MaintenanceForecast>, core::DegradationReport>
        result{std::move(forecasts), scheduler.LastDegradationReport()};
    return result;
  };

  const auto [baseline, baseline_report] = run_fleet({}, 1);
  ASSERT_TRUE(baseline_report.empty());
  ASSERT_EQ(baseline.size(), static_cast<size_t>(kFleetSize));

  for (const int threads : {1, 4}) {
    SCOPED_TRACE(threads);
    const auto [forecasts, report] = run_fleet(failing, threads);

    // The report names exactly the sabotaged vehicles, each with a BL
    // fallback in place.
    std::set<std::string> reported;
    for (const auto& entry : report.vehicles) {
      EXPECT_EQ(entry.stage, "train");
      EXPECT_TRUE(entry.fallback) << entry.vehicle_id;
      reported.insert(entry.vehicle_id);
    }
    std::set<std::string> injected;
    for (int v : failing) injected.insert("v" + std::to_string(v));
    EXPECT_EQ(reported, injected);

    // FleetForecast orders by predicted date, so compare keyed by vehicle.
    ASSERT_EQ(forecasts.size(), baseline.size());
    std::map<std::string, const core::MaintenanceForecast*> by_vehicle;
    for (const auto& forecast : forecasts) {
      by_vehicle[forecast.vehicle_id] = &forecast;
    }
    for (const auto& expected : baseline) {
      ASSERT_TRUE(by_vehicle.count(expected.vehicle_id))
          << expected.vehicle_id;
      const core::MaintenanceForecast& got =
          *by_vehicle.at(expected.vehicle_id);
      if (injected.count(expected.vehicle_id)) {
        EXPECT_EQ(got.model_name, "BL_fallback");
        EXPECT_GE(got.days_left, 0.0);
        continue;
      }
      // Bit-identical: the sabotage of other vehicles leaks nothing.
      EXPECT_EQ(got.model_name, expected.model_name);
      EXPECT_EQ(got.days_left, expected.days_left);
      EXPECT_EQ(got.usage_seconds_left, expected.usage_seconds_left);
      EXPECT_EQ(got.predicted_date, expected.predicted_date);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DegradationIsolationTest,
                         testing::Values(uint64_t{7}, uint64_t{28},
                                         uint64_t{2020}));

// ---------------------------------------------------------------------------
// Workshop-planner invariants across capacities and fleet sizes.
// ---------------------------------------------------------------------------

class PlannerPropertyTest
    : public testing::TestWithParam<std::tuple<int, int, uint64_t>> {};

TEST_P(PlannerPropertyTest, CapacityAndOrderingInvariants) {
  const auto [capacity, fleet_size, seed] = GetParam();
  Rng rng(seed);
  std::vector<core::MaintenanceForecast> forecasts;
  for (int v = 0; v < fleet_size; ++v) {
    core::MaintenanceForecast f;
    f.vehicle_id = "v" + std::to_string(v);
    const int due = static_cast<int>(rng.UniformInt(int64_t{-3}, int64_t{80}));
    f.predicted_date = Date::FromYmd(2015, 6, 1).ValueOrDie().AddDays(due);
    forecasts.push_back(f);
  }
  core::WorkshopOptions options;
  options.daily_capacity = capacity;
  options.horizon_days = 90;
  options.weekend_service = true;
  const core::ServicePlan plan =
      core::PlanWorkshop(forecasts, Date::FromYmd(2015, 6, 1).ValueOrDie(),
                         options)
          .ValueOrDie();

  // 1. Every vehicle is either booked or reported beyond the horizon.
  EXPECT_EQ(plan.assignments.size() + plan.beyond_horizon.size(),
            forecasts.size());

  // 2. No day is overbooked.
  std::map<int64_t, int> bookings;
  for (const auto& a : plan.assignments) {
    EXPECT_GE(a.scheduled_date, plan.today);
    ++bookings[a.scheduled_date.day_number()];
  }
  for (const auto& [day, count] : bookings) {
    EXPECT_LE(count, capacity);
  }

  // 3. Assignments are sorted by slot date.
  for (size_t i = 1; i < plan.assignments.size(); ++i) {
    EXPECT_LE(plan.assignments[i - 1].scheduled_date.day_number(),
              plan.assignments[i].scheduled_date.day_number());
  }

  // 4. Cost bookkeeping is self-consistent.
  EXPECT_NEAR(plan.total_cost, core::PlanCost(plan, options), 1e-9);
  int64_t early = 0, late = 0;
  for (const auto& a : plan.assignments) {
    if (a.slack_days < 0) early += -a.slack_days;
    if (a.slack_days > 0) late += a.slack_days;
  }
  EXPECT_EQ(plan.total_early_days, early);
  EXPECT_EQ(plan.total_late_days, late);

  // 5. With ample capacity, no vehicle with a future due date is late.
  if (capacity >= fleet_size) {
    for (const auto& a : plan.assignments) {
      if (a.predicted_due_date >= plan.today) {
        EXPECT_LE(a.slack_days, 0) << a.vehicle_id;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PlannerPropertyTest,
    testing::Combine(testing::Values(1, 2, 5, 40),
                     testing::Values(5, 20, 40),
                     testing::Values(uint64_t{1}, uint64_t{9})));

}  // namespace
}  // namespace nextmaint
