#include "core/old_vehicle.h"

#include <gtest/gtest.h>

#include <cmath>

#include "telematics/fleet.h"

namespace nextmaint {
namespace core {
namespace {

Date Day(int offset) {
  return Date::FromYmd(2015, 1, 1).ValueOrDie().AddDays(offset);
}

/// Perfectly regular vehicle: 100 s/day, T = 1000 -> 10-day cycles. All
/// models should predict almost exactly.
data::DailySeries RegularVehicle(size_t days = 200) {
  return data::DailySeries(Day(0), std::vector<double>(days, 100.0));
}

/// A realistic simulated vehicle (long history, several cycles).
data::DailySeries SimulatedVehicle(uint64_t seed) {
  Rng rng(seed);
  telem::VehicleProfile profile = telem::DefaultFleetProfiles(1, &rng)[0];
  profile.maintenance_interval_s = 500'000.0;
  Rng sim_rng(seed + 1);
  return telem::SimulateVehicle(profile, Day(0), 900, 0.0, &sim_rng)
      .ValueOrDie()
      .utilization;
}

OldVehicleOptions FastOptions() {
  OldVehicleOptions options;
  options.tune = false;
  options.resampling_shifts = 0;
  return options;
}

TEST(EvaluateAlgorithmTest, RegularVehicleIsEasyForAllModels) {
  for (const char* algorithm : {"BL", "LR", "LSVR", "RF", "XGB"}) {
    const VehicleEvaluation eval =
        EvaluateAlgorithmOnVehicle(algorithm, RegularVehicle(), 1000.0,
                                   FastOptions())
            .ValueOrDie();
    EXPECT_LT(eval.emre, 1.5) << algorithm;
    EXPECT_EQ(eval.algorithm, algorithm);
    EXPECT_FALSE(eval.test_truth.empty());
    EXPECT_EQ(eval.test_truth.size(), eval.test_predicted.size());
    EXPECT_GE(eval.train_seconds, 0.0);
    EXPECT_NE(eval.model, nullptr);
  }
}

TEST(EvaluateAlgorithmTest, TestPeriodIsHeldOutTail) {
  const VehicleEvaluation eval =
      EvaluateAlgorithmOnVehicle("LR", RegularVehicle(), 1000.0,
                                 FastOptions())
          .ValueOrDie();
  // 200 days, 70% train -> 60 test days, all with defined targets.
  EXPECT_EQ(eval.test_truth.size(), 60u);
}

TEST(EvaluateAlgorithmTest, WindowConsumesLeadingTestDays) {
  OldVehicleOptions options = FastOptions();
  options.window = 5;
  const VehicleEvaluation eval =
      EvaluateAlgorithmOnVehicle("LR", RegularVehicle(), 1000.0, options)
          .ValueOrDie();
  EXPECT_EQ(eval.test_truth.size(), 60u);  // split=140 > W, no reduction
}

TEST(EvaluateAlgorithmTest, Last29FilterWorksOnSimulatedVehicle) {
  const data::DailySeries u = SimulatedVehicle(10);
  OldVehicleOptions all_data = FastOptions();
  OldVehicleOptions last29 = FastOptions();
  last29.train_on_last29_only = true;
  const double emre_all =
      EvaluateAlgorithmOnVehicle("RF", u, 500'000.0, all_data)
          .ValueOrDie()
          .emre;
  const double emre_29 =
      EvaluateAlgorithmOnVehicle("RF", u, 500'000.0, last29)
          .ValueOrDie()
          .emre;
  // The paper's central finding: the filter reduces near-deadline error.
  EXPECT_LT(emre_29, emre_all * 1.05);
}

TEST(EvaluateAlgorithmTest, BaselineUsesTrainingAverageOnly) {
  // A vehicle that doubles its usage rate in the test period: BL, anchored
  // to the training average, must overestimate D substantially.
  std::vector<double> values(140, 100.0);
  values.insert(values.end(), 60, 200.0);
  data::DailySeries u(Day(0), std::move(values));
  const VehicleEvaluation eval =
      EvaluateAlgorithmOnVehicle("BL", u, 1000.0, FastOptions())
          .ValueOrDie();
  // True cycles in the test period are 5 days; BL predicts ~2x.
  EXPECT_GT(eval.eglobal, 1.0);
}

TEST(EvaluateAlgorithmTest, TuningRunsGridSearch) {
  OldVehicleOptions options = FastOptions();
  options.tune = true;
  options.grid_budget = 0;
  const VehicleEvaluation eval =
      EvaluateAlgorithmOnVehicle("RF", SimulatedVehicle(20), 500'000.0,
                                 options)
          .ValueOrDie();
  EXPECT_FALSE(eval.best_params.empty());
  EXPECT_GT(eval.best_params.count("max_depth"), 0u);
}

TEST(EvaluateAlgorithmTest, ErrorCases) {
  // Unknown algorithm.
  EXPECT_FALSE(EvaluateAlgorithmOnVehicle("GBM", RegularVehicle(), 1000.0,
                                          FastOptions())
                   .ok());
  // Degenerate split.
  OldVehicleOptions bad = FastOptions();
  bad.train_fraction = 1.5;
  EXPECT_FALSE(
      EvaluateAlgorithmOnVehicle("LR", RegularVehicle(), 1000.0, bad).ok());
  // Too little data: no completed cycle anywhere.
  data::DailySeries tiny(Day(0), {10.0, 10.0, 10.0});
  EXPECT_FALSE(EvaluateAlgorithmOnVehicle("LR", tiny, 1'000'000.0,
                                          FastOptions())
                   .ok());
}

TEST(SelectBestModelTest, PicksMinEmre) {
  const ModelSelectionResult result =
      SelectBestModelForVehicle({"BL", "LR", "RF"}, SimulatedVehicle(30),
                                500'000.0, FastOptions())
          .ValueOrDie();
  ASSERT_EQ(result.evaluations.size(), 3u);
  const double best = result.evaluations[result.best_index].emre;
  for (const VehicleEvaluation& eval : result.evaluations) {
    EXPECT_LE(best, eval.emre);
  }
}

TEST(SelectBestModelTest, EmptyListFails) {
  EXPECT_FALSE(
      SelectBestModelForVehicle({}, RegularVehicle(), 1000.0, FastOptions())
          .ok());
}

TEST(PerDayResidualsTest, ComputesCurve) {
  VehicleEvaluation eval;
  eval.test_truth = {3, 2, 1, 3, 2, 1};
  eval.test_predicted = {4, 2, 1, 5, 2, 1};
  const std::vector<double> curve = PerDayResiduals(eval, 1, 3);
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_DOUBLE_EQ(curve[0], 0.0);  // d=1
  EXPECT_DOUBLE_EQ(curve[1], 0.0);  // d=2
  EXPECT_DOUBLE_EQ(curve[2], 1.5);  // d=3
}

TEST(PerDayResidualsTest, MissingDaysAreNaN) {
  VehicleEvaluation eval;
  eval.test_truth = {1.0};
  eval.test_predicted = {1.0};
  const std::vector<double> curve = PerDayResiduals(eval, 1, 2);
  EXPECT_DOUBLE_EQ(curve[0], 0.0);
  EXPECT_TRUE(std::isnan(curve[1]));
}

}  // namespace
}  // namespace core
}  // namespace nextmaint
