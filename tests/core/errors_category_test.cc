// Tests for the paper's error metrics (Section 2.1) and the vehicle
// categorization (Section 2).

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/category.h"
#include "core/errors.h"

namespace nextmaint {
namespace core {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

Date Day(int offset) {
  return Date::FromYmd(2015, 1, 1).ValueOrDie().AddDays(offset);
}

TEST(DaySetTest, Last29ContainsExactly1To29) {
  const DaySet days = DaySet::Last29();
  EXPECT_FALSE(days.Contains(0));
  EXPECT_TRUE(days.Contains(1));
  EXPECT_TRUE(days.Contains(29));
  EXPECT_FALSE(days.Contains(30));
  EXPECT_EQ(days.lo(), 1);
  EXPECT_EQ(days.hi(), 29);
}

TEST(DaySetTest, RoundsTargetsBeforeTesting) {
  const DaySet days = DaySet::Range(5, 10);
  EXPECT_TRUE(days.Contains(5.4));
  EXPECT_TRUE(days.Contains(4.6));
  EXPECT_FALSE(days.Contains(4.4));
  EXPECT_FALSE(days.Contains(10.6));
}

TEST(DaySetTest, NanNeverContained) {
  EXPECT_FALSE(DaySet::Last29().Contains(kNaN));
}

TEST(DaySetTest, SingleDay) {
  const DaySet days = DaySet::Single(7);
  EXPECT_TRUE(days.Contains(7));
  EXPECT_FALSE(days.Contains(6));
  EXPECT_FALSE(days.Contains(8));
}

TEST(DaySetTest, InvertedRangeAborts) {
  EXPECT_DEATH(DaySet::Range(10, 5), "inverted");
}

TEST(DailyErrorsTest, ComputesTruthMinusPrediction) {
  const auto errors = DailyErrors({10, 20, kNaN}, {8, 25, 1}).ValueOrDie();
  ASSERT_EQ(errors.size(), 3u);
  EXPECT_DOUBLE_EQ(errors[0], 2.0);
  EXPECT_DOUBLE_EQ(errors[1], -5.0);
  EXPECT_TRUE(std::isnan(errors[2]));
}

TEST(DailyErrorsTest, LengthMismatchFails) {
  EXPECT_FALSE(DailyErrors({1, 2}, {1}).ok());
}

TEST(GlobalErrorTest, AbsoluteMeanByDefault) {
  // Errors +2 and -2 must not cancel.
  EXPECT_DOUBLE_EQ(GlobalError({10, 10}, {8, 12}).ValueOrDie(), 2.0);
}

TEST(GlobalErrorTest, SignedMeanOnRequest) {
  EXPECT_DOUBLE_EQ(
      GlobalError({10, 10}, {8, 12}, /*signed_mean=*/true).ValueOrDie(),
      0.0);
}

TEST(GlobalErrorTest, SkipsUndefinedTargets) {
  EXPECT_DOUBLE_EQ(GlobalError({kNaN, 10}, {99, 7}).ValueOrDie(), 3.0);
}

TEST(GlobalErrorTest, AllUndefinedFails) {
  EXPECT_FALSE(GlobalError({kNaN, kNaN}, {1, 2}).ok());
}

TEST(MeanResidualErrorTest, RestrictsToDaySet) {
  // Days with truth 40 and 35 fall outside {1..29} and are excluded.
  const std::vector<double> truth = {40, 29, 10, 1, 35};
  const std::vector<double> predicted = {0, 27, 13, 1, 0};
  const double emre =
      MeanResidualError(truth, predicted, DaySet::Last29()).ValueOrDie();
  // Included residuals: |29-27|=2, |10-13|=3, |1-1|=0 -> mean 5/3.
  EXPECT_DOUBLE_EQ(emre, 5.0 / 3.0);
}

TEST(MeanResidualErrorTest, SingleDayRestriction) {
  const std::vector<double> truth = {3, 2, 1, 3, 2, 1};
  const std::vector<double> predicted = {4, 2, 1, 5, 2, 1};
  EXPECT_DOUBLE_EQ(
      MeanResidualError(truth, predicted, DaySet::Single(3)).ValueOrDie(),
      1.5);
  EXPECT_DOUBLE_EQ(
      MeanResidualError(truth, predicted, DaySet::Single(2)).ValueOrDie(),
      0.0);
}

TEST(MeanResidualErrorTest, EmptyRestrictionFails) {
  EXPECT_FALSE(
      MeanResidualError({100, 200}, {1, 2}, DaySet::Last29()).ok());
}

TEST(MeanResidualErrorTest, SignedOption) {
  const std::vector<double> truth = {5, 5};
  const std::vector<double> predicted = {7, 3};
  EXPECT_DOUBLE_EQ(MeanResidualError(truth, predicted, DaySet::Last29(),
                                     /*signed_mean=*/true)
                       .ValueOrDie(),
                   0.0);
  EXPECT_DOUBLE_EQ(
      MeanResidualError(truth, predicted, DaySet::Last29()).ValueOrDie(),
      2.0);
}

TEST(CategoryTest, NamesAreStable) {
  EXPECT_STREQ(VehicleCategoryName(VehicleCategory::kOld), "old");
  EXPECT_STREQ(VehicleCategoryName(VehicleCategory::kSemiNew), "semi-new");
  EXPECT_STREQ(VehicleCategoryName(VehicleCategory::kNew), "new");
}

TEST(CategorizeUsageTest, ThresholdsFollowSectionTwo) {
  const double t_v = 1000.0;
  // Old: cumulative usage crosses T_v.
  data::DailySeries old_usage(Day(0), {600, 600});
  EXPECT_EQ(CategorizeUsage(old_usage, t_v).ValueOrDie(),
            VehicleCategory::kOld);
  // Semi-new: at least T_v/2 but less than T_v.
  data::DailySeries semi(Day(0), {300, 300});
  EXPECT_EQ(CategorizeUsage(semi, t_v).ValueOrDie(),
            VehicleCategory::kSemiNew);
  // Exactly T_v/2 counts as semi-new ("at least half").
  data::DailySeries boundary(Day(0), {500});
  EXPECT_EQ(CategorizeUsage(boundary, t_v).ValueOrDie(),
            VehicleCategory::kSemiNew);
  // New: below half.
  data::DailySeries fresh(Day(0), {499});
  EXPECT_EQ(CategorizeUsage(fresh, t_v).ValueOrDie(), VehicleCategory::kNew);
}

TEST(CategorizeUsageTest, AgreesWithDerivedSeriesCategorize) {
  const double t_v = 1000.0;
  for (double per_day : {50.0, 260.0, 600.0}) {
    data::DailySeries u(Day(0), std::vector<double>(2, per_day));
    const VehicleSeries series = DeriveSeries(u, t_v).ValueOrDie();
    EXPECT_EQ(Categorize(series), CategorizeUsage(u, t_v).ValueOrDie())
        << "per_day=" << per_day;
  }
}

TEST(CategorizeUsageTest, ErrorCases) {
  data::DailySeries u(Day(0), {10});
  EXPECT_FALSE(CategorizeUsage(u, 0.0).ok());
  data::DailySeries with_nan(Day(0), {kNaN});
  EXPECT_FALSE(CategorizeUsage(with_nan, 100.0).ok());
}

}  // namespace
}  // namespace core
}  // namespace nextmaint
