#include "core/scheduler.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

#include "common/failpoints.h"
#include "common/telemetry.h"
#include "telematics/fleet.h"

namespace nextmaint {
namespace core {
namespace {

constexpr double kTv = 500'000.0;

Date Day(int offset) {
  return Date::FromYmd(2015, 1, 1).ValueOrDie().AddDays(offset);
}

SchedulerOptions FastOptions() {
  SchedulerOptions options;
  options.maintenance_interval_s = kTv;
  options.window = 3;
  options.algorithms = {"BL", "LR"};
  options.unified_algorithm = "LR";
  options.selection.tune = false;
  options.selection.resampling_shifts = 0;
  return options;
}

data::DailySeries SimulatedVehicle(uint64_t seed, int days) {
  Rng rng(seed);
  telem::VehicleProfile profile = telem::DefaultFleetProfiles(1, &rng)[0];
  profile.maintenance_interval_s = kTv;
  Rng sim_rng(seed * 7 + 3);
  return telem::SimulateVehicle(profile, Day(0), days, 0.0, &sim_rng)
      .ValueOrDie()
      .utilization;
}

TEST(FleetSchedulerTest, RegisterAndIngestDayByDay) {
  FleetScheduler scheduler(FastOptions());
  ASSERT_TRUE(scheduler.RegisterVehicle("v1", Day(0)).ok());
  EXPECT_EQ(scheduler.RegisterVehicle("v1", Day(0)).code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(scheduler.IngestUsage("v1", Day(0), 1000.0).ok());
  EXPECT_TRUE(scheduler.IngestUsage("v1", Day(1), 2000.0).ok());
  // Gaps and reordering are rejected.
  EXPECT_FALSE(scheduler.IngestUsage("v1", Day(3), 100.0).ok());
  EXPECT_FALSE(scheduler.IngestUsage("v1", Day(1), 100.0).ok());
  // Unknown vehicle.
  EXPECT_EQ(scheduler.IngestUsage("ghost", Day(0), 1.0).code(),
            StatusCode::kNotFound);
}

TEST(FleetSchedulerTest, IngestValidatesRange) {
  FleetScheduler scheduler(FastOptions());
  ASSERT_TRUE(scheduler.RegisterVehicle("v1", Day(0)).ok());
  EXPECT_FALSE(scheduler.IngestUsage("v1", Day(0), -1.0).ok());
  EXPECT_FALSE(scheduler.IngestUsage("v1", Day(0), 90'000.0).ok());
  EXPECT_FALSE(scheduler.IngestUsage("v1", Day(0),
                                     std::nan(""))
                   .ok());
}

TEST(FleetSchedulerTest, CategoryTracksUsage) {
  FleetScheduler scheduler(FastOptions());
  ASSERT_TRUE(scheduler.RegisterVehicle("v1", Day(0)).ok());
  EXPECT_EQ(scheduler.CategoryOf("v1").ValueOrDie(), VehicleCategory::kNew);
  // Bulk-ingest past the old threshold.
  ASSERT_TRUE(
      scheduler
          .IngestSeries("v1", data::DailySeries(
                                  Day(0), std::vector<double>(30, 20'000.0)))
          .ok());
  EXPECT_EQ(scheduler.CategoryOf("v1").ValueOrDie(), VehicleCategory::kOld);
}

TEST(FleetSchedulerTest, IngestSeriesRejectsMissingValues) {
  FleetScheduler scheduler(FastOptions());
  ASSERT_TRUE(scheduler.RegisterVehicle("v1", Day(0)).ok());
  data::DailySeries dirty(
      Day(0), {1.0, std::numeric_limits<double>::quiet_NaN()});
  EXPECT_EQ(scheduler.IngestSeries("v1", dirty).code(),
            StatusCode::kDataError);
}

TEST(FleetSchedulerTest, TrainAllAndForecastOldVehicle) {
  FleetScheduler scheduler(FastOptions());
  ASSERT_TRUE(scheduler.RegisterVehicle("v1", Day(0)).ok());
  ASSERT_TRUE(scheduler.IngestSeries("v1", SimulatedVehicle(1, 600)).ok());
  ASSERT_TRUE(scheduler.TrainAll().ok());

  const MaintenanceForecast forecast =
      scheduler.Forecast("v1").ValueOrDie();
  EXPECT_EQ(forecast.vehicle_id, "v1");
  EXPECT_EQ(forecast.category, VehicleCategory::kOld);
  EXPECT_FALSE(forecast.model_name.empty());
  EXPECT_GE(forecast.days_left, 0.0);
  EXPECT_GT(forecast.usage_seconds_left, 0.0);
  EXPECT_LE(forecast.usage_seconds_left, kTv);
  EXPECT_GE(forecast.predicted_date.day_number(), Day(599).day_number());
}

TEST(FleetSchedulerTest, ForecastBeforeTrainingFails) {
  FleetScheduler scheduler(FastOptions());
  ASSERT_TRUE(scheduler.RegisterVehicle("v1", Day(0)).ok());
  ASSERT_TRUE(scheduler.IngestSeries("v1", SimulatedVehicle(2, 600)).ok());
  EXPECT_EQ(scheduler.Forecast("v1").status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(FleetSchedulerTest, NewVehicleServedByUnifiedModel) {
  FleetScheduler scheduler(FastOptions());
  // Two old vehicles provide the first-cycle corpus.
  for (int v = 0; v < 2; ++v) {
    const std::string id = "old" + std::to_string(v);
    ASSERT_TRUE(scheduler.RegisterVehicle(id, Day(0)).ok());
    ASSERT_TRUE(
        scheduler.IngestSeries(id, SimulatedVehicle(10 + v, 600)).ok());
  }
  // A brand-new vehicle with a few low-usage days.
  ASSERT_TRUE(scheduler.RegisterVehicle("fresh", Day(0)).ok());
  ASSERT_TRUE(
      scheduler
          .IngestSeries("fresh", data::DailySeries(
                                     Day(0), std::vector<double>(10, 500.0)))
          .ok());
  ASSERT_TRUE(scheduler.TrainAll().ok());

  const MaintenanceForecast forecast =
      scheduler.Forecast("fresh").ValueOrDie();
  EXPECT_EQ(forecast.category, VehicleCategory::kNew);
  EXPECT_NE(forecast.model_name.find("_Uni"), std::string::npos);
}

TEST(FleetSchedulerTest, NewVehicleAloneHasNoModel) {
  FleetScheduler scheduler(FastOptions());
  ASSERT_TRUE(scheduler.RegisterVehicle("only", Day(0)).ok());
  ASSERT_TRUE(
      scheduler
          .IngestSeries("only", data::DailySeries(
                                    Day(0), std::vector<double>(5, 100.0)))
          .ok());
  ASSERT_TRUE(scheduler.TrainAll().ok());
  EXPECT_EQ(scheduler.Forecast("only").status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(FleetSchedulerTest, SemiNewVehicleGetsSimModel) {
  FleetScheduler scheduler(FastOptions());
  for (int v = 0; v < 2; ++v) {
    const std::string id = "old" + std::to_string(v);
    ASSERT_TRUE(scheduler.RegisterVehicle(id, Day(0)).ok());
    ASSERT_TRUE(
        scheduler.IngestSeries(id, SimulatedVehicle(20 + v, 600)).ok());
  }
  // Semi-new: more than T_v/2 = 250k seconds but no completed cycle.
  ASSERT_TRUE(scheduler.RegisterVehicle("semi", Day(0)).ok());
  ASSERT_TRUE(scheduler
                  .IngestSeries("semi",
                                data::DailySeries(
                                    Day(0),
                                    std::vector<double>(20, 15'000.0)))
                  .ok());
  ASSERT_TRUE(scheduler.TrainAll().ok());
  EXPECT_EQ(scheduler.CategoryOf("semi").ValueOrDie(),
            VehicleCategory::kSemiNew);
  const MaintenanceForecast forecast =
      scheduler.Forecast("semi").ValueOrDie();
  EXPECT_NE(forecast.model_name.find("_Sim"), std::string::npos);
}

TEST(FleetSchedulerTest, FleetForecastSortsByUrgency) {
  FleetScheduler scheduler(FastOptions());
  for (int v = 0; v < 3; ++v) {
    // std::string("v") + ...: GCC 12 -Wrestrict false positive at -O2.
    const std::string id = std::string("v") + std::to_string(v);
    ASSERT_TRUE(scheduler.RegisterVehicle(id, Day(0)).ok());
    ASSERT_TRUE(
        scheduler.IngestSeries(id, SimulatedVehicle(30 + v, 700)).ok());
  }
  ASSERT_TRUE(scheduler.TrainAll().ok());
  const std::vector<MaintenanceForecast> forecasts =
      scheduler.FleetForecast().ValueOrDie();
  ASSERT_GE(forecasts.size(), 2u);
  for (size_t i = 1; i < forecasts.size(); ++i) {
    EXPECT_LE(forecasts[i - 1].predicted_date.day_number(),
              forecasts[i].predicted_date.day_number());
  }
}

TEST(FleetSchedulerTest, VehicleIdsSorted) {
  FleetScheduler scheduler(FastOptions());
  ASSERT_TRUE(scheduler.RegisterVehicle("b", Day(0)).ok());
  ASSERT_TRUE(scheduler.RegisterVehicle("a", Day(0)).ok());
  EXPECT_EQ(scheduler.VehicleIds(), (std::vector<std::string>{"a", "b"}));
}


std::string ReadAll(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void WriteAll(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  out << content;
}

TEST(FleetSchedulerTest, CheckpointRoundTrip) {
  FleetScheduler scheduler(FastOptions());
  ASSERT_TRUE(scheduler.RegisterVehicle("v1", Day(0)).ok());
  ASSERT_TRUE(scheduler.IngestSeries("v1", SimulatedVehicle(41, 600)).ok());
  ASSERT_TRUE(scheduler.RegisterVehicle("v2", Day(0)).ok());
  ASSERT_TRUE(scheduler.IngestSeries("v2", SimulatedVehicle(42, 600)).ok());
  ASSERT_TRUE(scheduler.TrainAll().ok());
  const MaintenanceForecast before = scheduler.Forecast("v1").ValueOrDie();

  const std::string path = ::testing::TempDir() + "/checkpoint_roundtrip.txt";
  ASSERT_TRUE(scheduler.SaveCheckpoint(path).ok());

  // A fresh scheduler with the same data but no training: loading the
  // checkpoint must reproduce the forecasts exactly.
  FleetScheduler restored(FastOptions());
  ASSERT_TRUE(restored.RegisterVehicle("v1", Day(0)).ok());
  ASSERT_TRUE(restored.IngestSeries("v1", SimulatedVehicle(41, 600)).ok());
  ASSERT_TRUE(restored.RegisterVehicle("v2", Day(0)).ok());
  ASSERT_TRUE(restored.IngestSeries("v2", SimulatedVehicle(42, 600)).ok());
  ASSERT_TRUE(restored.LoadCheckpoint(path).ok());
  std::remove(path.c_str());

  const MaintenanceForecast after = restored.Forecast("v1").ValueOrDie();
  EXPECT_DOUBLE_EQ(after.days_left, before.days_left);
  EXPECT_EQ(after.model_name, before.model_name);
  EXPECT_EQ(after.predicted_date, before.predicted_date);
}

TEST(FleetSchedulerTest, LoadCheckpointRejectsUnknownVehicle) {
  FleetScheduler scheduler(FastOptions());
  ASSERT_TRUE(scheduler.RegisterVehicle("v1", Day(0)).ok());
  ASSERT_TRUE(scheduler.IngestSeries("v1", SimulatedVehicle(43, 600)).ok());
  ASSERT_TRUE(scheduler.TrainAll().ok());
  const std::string path = ::testing::TempDir() + "/checkpoint_unknown.txt";
  ASSERT_TRUE(scheduler.SaveCheckpoint(path).ok());

  FleetScheduler other(FastOptions());  // no vehicles registered
  EXPECT_EQ(other.LoadCheckpoint(path).code(), StatusCode::kNotFound);
  std::remove(path.c_str());
}

TEST(FleetSchedulerTest, LoadCheckpointRejectsTruncatedFile) {
  FleetScheduler scheduler(FastOptions());
  ASSERT_TRUE(scheduler.RegisterVehicle("v1", Day(0)).ok());
  ASSERT_TRUE(scheduler.IngestSeries("v1", SimulatedVehicle(44, 600)).ok());
  ASSERT_TRUE(scheduler.TrainAll().ok());
  const std::string path = ::testing::TempDir() + "/checkpoint_truncated.txt";
  ASSERT_TRUE(scheduler.SaveCheckpoint(path).ok());
  const std::string full = ReadAll(path);
  WriteAll(path, full.substr(0, full.size() * 2 / 3));
  EXPECT_FALSE(scheduler.LoadCheckpoint(path).ok());
  std::remove(path.c_str());
}

TEST(FleetSchedulerTest, CheckDriftFlagsRegimeChange) {
  FleetScheduler scheduler(FastOptions());
  ASSERT_TRUE(scheduler.RegisterVehicle("v1", Day(0)).ok());
  // 300 quiet days then 120 busy days: the monitor must flag the shift.
  Rng rng(91);
  std::vector<double> values;
  for (int i = 0; i < 300; ++i) values.push_back(rng.Normal(8'000, 800));
  for (int i = 0; i < 120; ++i) values.push_back(rng.Normal(16'000, 800));
  ASSERT_TRUE(
      scheduler.IngestSeries("v1", data::DailySeries(Day(0), values)).ok());
  const DriftReport report =
      scheduler.CheckDrift("v1", /*reference_fraction=*/0.7).ValueOrDie();
  EXPECT_TRUE(report.drift_detected);
  EXPECT_EQ(report.direction, +1);

  // A stable vehicle raises nothing.
  ASSERT_TRUE(scheduler.RegisterVehicle("v2", Day(0)).ok());
  std::vector<double> stable;
  for (int i = 0; i < 420; ++i) stable.push_back(rng.Normal(8'000, 800));
  ASSERT_TRUE(
      scheduler.IngestSeries("v2", data::DailySeries(Day(0), stable)).ok());
  EXPECT_FALSE(scheduler.CheckDrift("v2").ValueOrDie().drift_detected);

  // Bad fraction rejected.
  EXPECT_FALSE(scheduler.CheckDrift("v1", 1.5).ok());
}

TEST(FleetSchedulerTest, NegativeNumThreadsRejected) {
  SchedulerOptions options = FastOptions();
  options.num_threads = -2;
  FleetScheduler scheduler(options);
  ASSERT_TRUE(scheduler.RegisterVehicle("v1", Day(0)).ok());
  ASSERT_TRUE(scheduler.IngestSeries("v1", SimulatedVehicle(61, 600)).ok());
  EXPECT_EQ(scheduler.TrainAll().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(scheduler.FleetForecast().status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FleetSchedulerTest, CheckpointRejectsBadPaths) {
  FleetScheduler scheduler(FastOptions());
  ASSERT_TRUE(scheduler.RegisterVehicle("v1", Day(0)).ok());
  ASSERT_TRUE(scheduler.IngestSeries("v1", SimulatedVehicle(51, 600)).ok());
  ASSERT_TRUE(scheduler.TrainAll().ok());
  // Unwritable / missing paths surface as IOError.
  EXPECT_EQ(scheduler.SaveCheckpoint("/nonexistent-dir/models.txt").code(),
            StatusCode::kIOError);
  EXPECT_EQ(scheduler.LoadCheckpoint("/nonexistent-dir/models.txt").code(),
            StatusCode::kIOError);
}

TEST(FleetSchedulerTest, ErrorCodeContract) {
  // scheduler.h documents: NotFound = never registered, FailedPrecondition
  // = registered but not servable — including FleetForecast on a fleet
  // with no vehicles at all.
  FleetScheduler scheduler(FastOptions());
  EXPECT_EQ(scheduler.FleetForecast().status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(scheduler.Forecast("ghost").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(scheduler.HasTrainedModel("ghost").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(scheduler.FallbackForecast("ghost").status().code(),
            StatusCode::kNotFound);

  ASSERT_TRUE(scheduler.RegisterVehicle("v1", Day(0)).ok());
  ASSERT_TRUE(scheduler.IngestSeries("v1", SimulatedVehicle(55, 600)).ok());
  // Registered but untrained: not servable yet.
  EXPECT_EQ(scheduler.Forecast("v1").status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_FALSE(scheduler.HasTrainedModel("v1").ValueOrDie());
  ASSERT_TRUE(scheduler.TrainAll().ok());
  EXPECT_TRUE(scheduler.HasTrainedModel("v1").ValueOrDie());
  EXPECT_TRUE(scheduler.FleetForecast().ok());
}

TEST(FleetSchedulerTest, TrainVehiclesValidatesIds) {
  FleetScheduler scheduler(FastOptions());
  ASSERT_TRUE(scheduler.RegisterVehicle("v1", Day(0)).ok());
  ASSERT_TRUE(scheduler.IngestSeries("v1", SimulatedVehicle(56, 600)).ok());
  ColdStartInputs inputs;
  EXPECT_EQ(scheduler.TrainVehicles({"ghost"}, inputs).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(scheduler.TrainVehicles({"v1", "v1"}, inputs).code(),
            StatusCode::kInvalidArgument);
  // The building blocks compose into exactly what TrainAll does.
  const auto contribution = scheduler.CorpusContribution("v1").ValueOrDie();
  if (contribution.has_value()) inputs.corpus.push_back(*contribution);
  inputs.unified = scheduler.TrainUnifiedFromCorpus(inputs.corpus);
  ASSERT_TRUE(scheduler.TrainVehicles({"v1"}, inputs).ok());
  EXPECT_TRUE(scheduler.Forecast("v1").ok());
}

/// Trains the same 4-vehicle fleet and returns (serialized models,
/// fleet forecast) for the given thread count.
std::pair<std::string, std::vector<MaintenanceForecast>> TrainAndForecast(
    int num_threads) {
  SchedulerOptions options = FastOptions();
  options.num_threads = num_threads;
  FleetScheduler scheduler(options);
  for (int v = 0; v < 4; ++v) {
    // std::string("v") + ...: GCC 12 -Wrestrict false positive at -O2.
    const std::string id = std::string("v") + std::to_string(v);
    EXPECT_TRUE(scheduler.RegisterVehicle(id, Day(0)).ok());
    // Mixed history lengths: old and cold-start vehicles.
    EXPECT_TRUE(
        scheduler.IngestSeries(id, SimulatedVehicle(70 + v, v < 3 ? 700 : 90))
            .ok());
  }
  EXPECT_TRUE(scheduler.TrainAll().ok());
  const std::string path = ::testing::TempDir() + "/telemetry_models_" +
                           std::to_string(num_threads) + ".txt";
  EXPECT_TRUE(scheduler.SaveCheckpoint(path).ok());
  std::string models = ReadAll(path);
  std::remove(path.c_str());
  return {std::move(models), scheduler.FleetForecast().ValueOrDie()};
}

TEST(FleetSchedulerTest, TelemetryDoesNotChangeResults) {
  // Byte-identical models and bit-identical forecasts with metrics on vs
  // off, at 1 and 4 threads (the ISSUE 2 acceptance criterion: telemetry
  // must observe, never alter).
  for (const int threads : {1, 4}) {
    telemetry::SetEnabled(false);
    const auto [models_off, forecasts_off] = TrainAndForecast(threads);

    telemetry::SetEnabled(true);
    telemetry::MetricsRegistry::Global().Reset();
    const auto [models_on, forecasts_on] = TrainAndForecast(threads);
    const telemetry::MetricsSnapshot snapshot = telemetry::Snapshot();
    telemetry::MetricsRegistry::Global().Reset();
    telemetry::SetEnabled(false);

    EXPECT_EQ(models_on, models_off) << "threads=" << threads;
    ASSERT_EQ(forecasts_on.size(), forecasts_off.size());
    for (size_t i = 0; i < forecasts_on.size(); ++i) {
      EXPECT_EQ(forecasts_on[i].vehicle_id, forecasts_off[i].vehicle_id);
      EXPECT_EQ(forecasts_on[i].model_name, forecasts_off[i].model_name);
      EXPECT_EQ(forecasts_on[i].days_left, forecasts_off[i].days_left)
          << forecasts_on[i].vehicle_id << " threads=" << threads;
      EXPECT_EQ(forecasts_on[i].predicted_date,
                forecasts_off[i].predicted_date);
    }

#ifndef NEXTMAINT_TELEMETRY_DISABLED
    // The instrumented run actually recorded the fleet's shape.
    EXPECT_EQ(snapshot.gauges.at("scheduler.fleet.vehicles.old") +
                  snapshot.gauges.at("scheduler.fleet.vehicles.semi_new") +
                  snapshot.gauges.at("scheduler.fleet.vehicles.new"),
              4.0);
    EXPECT_EQ(snapshot.counters.at("scheduler.forecast.count"),
              forecasts_on.size());
    EXPECT_GE(snapshot.histograms.at("scheduler.train.seconds").count, 1u);
    EXPECT_GE(snapshot.histograms.at("scheduler.forecast.seconds").count, 1u);
#else
    EXPECT_TRUE(snapshot.gauges.empty());
#endif
  }
}

/// ISSUE 4 acceptance: with one vehicle's training armed to fail, the
/// fleet still trains and forecasts end to end; the quarantined vehicle is
/// served by the BL fallback and every other vehicle's forecast is
/// bit-identical to a failure-free run.
TEST(FleetSchedulerTest, GracefulDegradationQuarantinesOnlyFailingVehicle) {
  if (!failpoints::CompiledIn()) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  failpoints::DisarmAll();

  const auto populate = [](FleetScheduler& scheduler) {
    for (int v = 1; v <= 3; ++v) {
      const std::string id = std::string("v") + std::to_string(v);
      ASSERT_TRUE(scheduler.RegisterVehicle(id, Day(0)).ok());
      ASSERT_TRUE(
          scheduler.IngestSeries(id, SimulatedVehicle(80 + v, 600)).ok());
    }
  };

  FleetScheduler healthy(FastOptions());
  populate(healthy);
  ASSERT_TRUE(healthy.TrainAll().ok());
  EXPECT_TRUE(healthy.LastDegradationReport().empty());
  const std::vector<MaintenanceForecast> baseline =
      healthy.FleetForecast().ValueOrDie();

  telemetry::SetEnabled(true);
  telemetry::MetricsRegistry::Global().Reset();
  FleetScheduler degraded(FastOptions());
  populate(degraded);
  ASSERT_TRUE(failpoints::Arm("scheduler.train_vehicle:1").ok());
  ASSERT_TRUE(degraded.TrainAll().ok());
  failpoints::DisarmAll();
  const std::vector<MaintenanceForecast> forecasts =
      degraded.FleetForecast().ValueOrDie();
  const telemetry::MetricsSnapshot snapshot = telemetry::Snapshot();
  telemetry::MetricsRegistry::Global().Reset();
  telemetry::SetEnabled(false);

  // The report names exactly the injected vehicle, with its Status.
  const DegradationReport report = degraded.LastDegradationReport();
  ASSERT_EQ(report.vehicles.size(), 1u);
  EXPECT_EQ(report.vehicles[0].vehicle_id, "v1");
  EXPECT_EQ(report.vehicles[0].stage, "train");
  EXPECT_TRUE(report.vehicles[0].fallback);
  EXPECT_NE(report.vehicles[0].error.message().find("injected"),
            std::string::npos);
  EXPECT_TRUE(report.Contains("v1"));
  EXPECT_FALSE(report.Contains("v2"));

  // FleetForecast orders by predicted date, so compare keyed by vehicle.
  ASSERT_EQ(forecasts.size(), baseline.size());
  std::map<std::string, const MaintenanceForecast*> by_vehicle;
  for (const auto& forecast : forecasts) {
    by_vehicle[forecast.vehicle_id] = &forecast;
  }
  for (const auto& expected : baseline) {
    ASSERT_TRUE(by_vehicle.count(expected.vehicle_id))
        << expected.vehicle_id;
    const MaintenanceForecast& got = *by_vehicle.at(expected.vehicle_id);
    if (expected.vehicle_id == "v1") {
      EXPECT_EQ(got.model_name, "BL_fallback");
      EXPECT_TRUE(std::isfinite(got.days_left));
      EXPECT_GE(got.days_left, 0.0);
      continue;
    }
    EXPECT_EQ(got.model_name, expected.model_name);
    EXPECT_EQ(got.days_left, expected.days_left);
    EXPECT_EQ(got.usage_seconds_left, expected.usage_seconds_left);
    EXPECT_EQ(got.predicted_date, expected.predicted_date);
  }

#ifndef NEXTMAINT_TELEMETRY_DISABLED
  EXPECT_EQ(snapshot.gauges.at("scheduler.degraded_vehicles"), 1.0);
  EXPECT_EQ(snapshot.counters.at("scheduler.train.fallback_bl"), 1u);
#endif
}

TEST(FleetSchedulerTest, SaveCheckpointFailureLeavesExistingFileIntact) {
  if (!failpoints::CompiledIn()) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  failpoints::DisarmAll();
  FleetScheduler scheduler(FastOptions());
  ASSERT_TRUE(scheduler.RegisterVehicle("v1", Day(0)).ok());
  ASSERT_TRUE(scheduler.IngestSeries("v1", SimulatedVehicle(52, 600)).ok());
  ASSERT_TRUE(scheduler.TrainAll().ok());
  const std::string path = ::testing::TempDir() + "/atomic_models.txt";
  ASSERT_TRUE(scheduler.SaveCheckpoint(path).ok());
  const std::string before = ReadAll(path);
  ASSERT_FALSE(before.empty());

  ASSERT_TRUE(failpoints::Arm("scheduler.save_models").ok());
  EXPECT_FALSE(scheduler.SaveCheckpoint(path).ok());
  failpoints::DisarmAll();

  // The failed save neither truncated the live file nor left a temp file:
  // writes go to `path + ".tmp"` and only rename on success.
  EXPECT_EQ(ReadAll(path), before);
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  std::remove(path.c_str());
}

TEST(FleetSchedulerTest, LoadCheckpointFailureCommitsNothing) {
  FleetScheduler trained(FastOptions());
  ASSERT_TRUE(trained.RegisterVehicle("v1", Day(0)).ok());
  ASSERT_TRUE(trained.IngestSeries("v1", SimulatedVehicle(53, 600)).ok());
  ASSERT_TRUE(trained.TrainAll().ok());
  const std::string path = ::testing::TempDir() + "/checkpoint_commit.ckpt";
  ASSERT_TRUE(trained.SaveCheckpoint(path).ok());
  const std::string full = ReadAll(path);

  // Truncate inside the segment region: the superblock still decodes, but
  // its spans now point past EOF, so nothing may commit.
  ASSERT_GT(full.size(), storage::kDataRegionOffset + 8);
  WriteAll(path, full.substr(0, storage::kDataRegionOffset + 8));
  FleetScheduler restored(FastOptions());
  ASSERT_TRUE(restored.RegisterVehicle("v1", Day(0)).ok());
  ASSERT_TRUE(restored.IngestSeries("v1", SimulatedVehicle(53, 600)).ok());
  EXPECT_EQ(restored.LoadCheckpoint(path).code(), StatusCode::kDataLoss);
  std::remove(path.c_str());
  // No partially loaded model leaks into serving.
  EXPECT_EQ(restored.Forecast("v1").status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(FleetSchedulerTest, LegacyLoadCheckpointFailureCommitsNothing) {
  FleetScheduler trained(FastOptions());
  ASSERT_TRUE(trained.RegisterVehicle("v1", Day(0)).ok());
  ASSERT_TRUE(trained.IngestSeries("v1", SimulatedVehicle(53, 600)).ok());
  ASSERT_TRUE(trained.TrainAll().ok());
  const std::string path = ::testing::TempDir() + "/checkpoint_commit.txt";
  ASSERT_TRUE(trained.SaveLegacyCheckpoint(path).ok());
  const std::string full = ReadAll(path);

  // Cut the payload after v1's complete model but before the fleet-end
  // marker: every record parses, yet nothing may commit.
  const size_t cut = full.rfind("fleet-end");
  ASSERT_NE(cut, std::string::npos);
  WriteAll(path, full.substr(0, cut));
  FleetScheduler restored(FastOptions());
  ASSERT_TRUE(restored.RegisterVehicle("v1", Day(0)).ok());
  ASSERT_TRUE(restored.IngestSeries("v1", SimulatedVehicle(53, 600)).ok());
  EXPECT_EQ(restored.LoadCheckpoint(path).code(), StatusCode::kDataError);
  std::remove(path.c_str());
  // No partially loaded model leaks into serving.
  EXPECT_EQ(restored.Forecast("v1").status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace core
}  // namespace nextmaint
