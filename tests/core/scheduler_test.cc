#include "core/scheduler.h"

#include <gtest/gtest.h>

#include <sstream>

#include "telematics/fleet.h"

namespace nextmaint {
namespace core {
namespace {

constexpr double kTv = 500'000.0;

Date Day(int offset) {
  return Date::FromYmd(2015, 1, 1).ValueOrDie().AddDays(offset);
}

SchedulerOptions FastOptions() {
  SchedulerOptions options;
  options.maintenance_interval_s = kTv;
  options.window = 3;
  options.algorithms = {"BL", "LR"};
  options.unified_algorithm = "LR";
  options.selection.tune = false;
  options.selection.resampling_shifts = 0;
  return options;
}

data::DailySeries SimulatedVehicle(uint64_t seed, int days) {
  Rng rng(seed);
  telem::VehicleProfile profile = telem::DefaultFleetProfiles(1, &rng)[0];
  profile.maintenance_interval_s = kTv;
  Rng sim_rng(seed * 7 + 3);
  return telem::SimulateVehicle(profile, Day(0), days, 0.0, &sim_rng)
      .ValueOrDie()
      .utilization;
}

TEST(FleetSchedulerTest, RegisterAndIngestDayByDay) {
  FleetScheduler scheduler(FastOptions());
  ASSERT_TRUE(scheduler.RegisterVehicle("v1", Day(0)).ok());
  EXPECT_EQ(scheduler.RegisterVehicle("v1", Day(0)).code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(scheduler.IngestUsage("v1", Day(0), 1000.0).ok());
  EXPECT_TRUE(scheduler.IngestUsage("v1", Day(1), 2000.0).ok());
  // Gaps and reordering are rejected.
  EXPECT_FALSE(scheduler.IngestUsage("v1", Day(3), 100.0).ok());
  EXPECT_FALSE(scheduler.IngestUsage("v1", Day(1), 100.0).ok());
  // Unknown vehicle.
  EXPECT_EQ(scheduler.IngestUsage("ghost", Day(0), 1.0).code(),
            StatusCode::kNotFound);
}

TEST(FleetSchedulerTest, IngestValidatesRange) {
  FleetScheduler scheduler(FastOptions());
  ASSERT_TRUE(scheduler.RegisterVehicle("v1", Day(0)).ok());
  EXPECT_FALSE(scheduler.IngestUsage("v1", Day(0), -1.0).ok());
  EXPECT_FALSE(scheduler.IngestUsage("v1", Day(0), 90'000.0).ok());
  EXPECT_FALSE(scheduler.IngestUsage("v1", Day(0),
                                     std::nan(""))
                   .ok());
}

TEST(FleetSchedulerTest, CategoryTracksUsage) {
  FleetScheduler scheduler(FastOptions());
  ASSERT_TRUE(scheduler.RegisterVehicle("v1", Day(0)).ok());
  EXPECT_EQ(scheduler.CategoryOf("v1").ValueOrDie(), VehicleCategory::kNew);
  // Bulk-ingest past the old threshold.
  ASSERT_TRUE(
      scheduler
          .IngestSeries("v1", data::DailySeries(
                                  Day(0), std::vector<double>(30, 20'000.0)))
          .ok());
  EXPECT_EQ(scheduler.CategoryOf("v1").ValueOrDie(), VehicleCategory::kOld);
}

TEST(FleetSchedulerTest, IngestSeriesRejectsMissingValues) {
  FleetScheduler scheduler(FastOptions());
  ASSERT_TRUE(scheduler.RegisterVehicle("v1", Day(0)).ok());
  data::DailySeries dirty(
      Day(0), {1.0, std::numeric_limits<double>::quiet_NaN()});
  EXPECT_EQ(scheduler.IngestSeries("v1", dirty).code(),
            StatusCode::kDataError);
}

TEST(FleetSchedulerTest, TrainAllAndForecastOldVehicle) {
  FleetScheduler scheduler(FastOptions());
  ASSERT_TRUE(scheduler.RegisterVehicle("v1", Day(0)).ok());
  ASSERT_TRUE(scheduler.IngestSeries("v1", SimulatedVehicle(1, 600)).ok());
  ASSERT_TRUE(scheduler.TrainAll().ok());

  const MaintenanceForecast forecast =
      scheduler.Forecast("v1").ValueOrDie();
  EXPECT_EQ(forecast.vehicle_id, "v1");
  EXPECT_EQ(forecast.category, VehicleCategory::kOld);
  EXPECT_FALSE(forecast.model_name.empty());
  EXPECT_GE(forecast.days_left, 0.0);
  EXPECT_GT(forecast.usage_seconds_left, 0.0);
  EXPECT_LE(forecast.usage_seconds_left, kTv);
  EXPECT_GE(forecast.predicted_date.day_number(), Day(599).day_number());
}

TEST(FleetSchedulerTest, ForecastBeforeTrainingFails) {
  FleetScheduler scheduler(FastOptions());
  ASSERT_TRUE(scheduler.RegisterVehicle("v1", Day(0)).ok());
  ASSERT_TRUE(scheduler.IngestSeries("v1", SimulatedVehicle(2, 600)).ok());
  EXPECT_EQ(scheduler.Forecast("v1").status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(FleetSchedulerTest, NewVehicleServedByUnifiedModel) {
  FleetScheduler scheduler(FastOptions());
  // Two old vehicles provide the first-cycle corpus.
  for (int v = 0; v < 2; ++v) {
    const std::string id = "old" + std::to_string(v);
    ASSERT_TRUE(scheduler.RegisterVehicle(id, Day(0)).ok());
    ASSERT_TRUE(
        scheduler.IngestSeries(id, SimulatedVehicle(10 + v, 600)).ok());
  }
  // A brand-new vehicle with a few low-usage days.
  ASSERT_TRUE(scheduler.RegisterVehicle("fresh", Day(0)).ok());
  ASSERT_TRUE(
      scheduler
          .IngestSeries("fresh", data::DailySeries(
                                     Day(0), std::vector<double>(10, 500.0)))
          .ok());
  ASSERT_TRUE(scheduler.TrainAll().ok());

  const MaintenanceForecast forecast =
      scheduler.Forecast("fresh").ValueOrDie();
  EXPECT_EQ(forecast.category, VehicleCategory::kNew);
  EXPECT_NE(forecast.model_name.find("_Uni"), std::string::npos);
}

TEST(FleetSchedulerTest, NewVehicleAloneHasNoModel) {
  FleetScheduler scheduler(FastOptions());
  ASSERT_TRUE(scheduler.RegisterVehicle("only", Day(0)).ok());
  ASSERT_TRUE(
      scheduler
          .IngestSeries("only", data::DailySeries(
                                    Day(0), std::vector<double>(5, 100.0)))
          .ok());
  ASSERT_TRUE(scheduler.TrainAll().ok());
  EXPECT_EQ(scheduler.Forecast("only").status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(FleetSchedulerTest, SemiNewVehicleGetsSimModel) {
  FleetScheduler scheduler(FastOptions());
  for (int v = 0; v < 2; ++v) {
    const std::string id = "old" + std::to_string(v);
    ASSERT_TRUE(scheduler.RegisterVehicle(id, Day(0)).ok());
    ASSERT_TRUE(
        scheduler.IngestSeries(id, SimulatedVehicle(20 + v, 600)).ok());
  }
  // Semi-new: more than T_v/2 = 250k seconds but no completed cycle.
  ASSERT_TRUE(scheduler.RegisterVehicle("semi", Day(0)).ok());
  ASSERT_TRUE(scheduler
                  .IngestSeries("semi",
                                data::DailySeries(
                                    Day(0),
                                    std::vector<double>(20, 15'000.0)))
                  .ok());
  ASSERT_TRUE(scheduler.TrainAll().ok());
  EXPECT_EQ(scheduler.CategoryOf("semi").ValueOrDie(),
            VehicleCategory::kSemiNew);
  const MaintenanceForecast forecast =
      scheduler.Forecast("semi").ValueOrDie();
  EXPECT_NE(forecast.model_name.find("_Sim"), std::string::npos);
}

TEST(FleetSchedulerTest, FleetForecastSortsByUrgency) {
  FleetScheduler scheduler(FastOptions());
  for (int v = 0; v < 3; ++v) {
    const std::string id = "v" + std::to_string(v);
    ASSERT_TRUE(scheduler.RegisterVehicle(id, Day(0)).ok());
    ASSERT_TRUE(
        scheduler.IngestSeries(id, SimulatedVehicle(30 + v, 700)).ok());
  }
  ASSERT_TRUE(scheduler.TrainAll().ok());
  const std::vector<MaintenanceForecast> forecasts =
      scheduler.FleetForecast().ValueOrDie();
  ASSERT_GE(forecasts.size(), 2u);
  for (size_t i = 1; i < forecasts.size(); ++i) {
    EXPECT_LE(forecasts[i - 1].predicted_date.day_number(),
              forecasts[i].predicted_date.day_number());
  }
}

TEST(FleetSchedulerTest, VehicleIdsSorted) {
  FleetScheduler scheduler(FastOptions());
  ASSERT_TRUE(scheduler.RegisterVehicle("b", Day(0)).ok());
  ASSERT_TRUE(scheduler.RegisterVehicle("a", Day(0)).ok());
  EXPECT_EQ(scheduler.VehicleIds(), (std::vector<std::string>{"a", "b"}));
}


TEST(FleetSchedulerTest, ModelsRoundTripThroughSaveLoad) {
  FleetScheduler scheduler(FastOptions());
  ASSERT_TRUE(scheduler.RegisterVehicle("v1", Day(0)).ok());
  ASSERT_TRUE(scheduler.IngestSeries("v1", SimulatedVehicle(41, 600)).ok());
  ASSERT_TRUE(scheduler.RegisterVehicle("v2", Day(0)).ok());
  ASSERT_TRUE(scheduler.IngestSeries("v2", SimulatedVehicle(42, 600)).ok());
  ASSERT_TRUE(scheduler.TrainAll().ok());
  const MaintenanceForecast before = scheduler.Forecast("v1").ValueOrDie();

  std::stringstream buffer;
  ASSERT_TRUE(scheduler.SaveModels(buffer).ok());

  // A fresh scheduler with the same data but no training: loading the
  // models must reproduce the forecasts exactly.
  FleetScheduler restored(FastOptions());
  ASSERT_TRUE(restored.RegisterVehicle("v1", Day(0)).ok());
  ASSERT_TRUE(restored.IngestSeries("v1", SimulatedVehicle(41, 600)).ok());
  ASSERT_TRUE(restored.RegisterVehicle("v2", Day(0)).ok());
  ASSERT_TRUE(restored.IngestSeries("v2", SimulatedVehicle(42, 600)).ok());
  ASSERT_TRUE(restored.LoadModels(buffer).ok());

  const MaintenanceForecast after = restored.Forecast("v1").ValueOrDie();
  EXPECT_DOUBLE_EQ(after.days_left, before.days_left);
  EXPECT_EQ(after.model_name, before.model_name);
  EXPECT_EQ(after.predicted_date, before.predicted_date);
}

TEST(FleetSchedulerTest, LoadModelsRejectsUnknownVehicle) {
  FleetScheduler scheduler(FastOptions());
  ASSERT_TRUE(scheduler.RegisterVehicle("v1", Day(0)).ok());
  ASSERT_TRUE(scheduler.IngestSeries("v1", SimulatedVehicle(43, 600)).ok());
  ASSERT_TRUE(scheduler.TrainAll().ok());
  std::stringstream buffer;
  ASSERT_TRUE(scheduler.SaveModels(buffer).ok());

  FleetScheduler other(FastOptions());  // no vehicles registered
  EXPECT_EQ(other.LoadModels(buffer).code(), StatusCode::kNotFound);
}

TEST(FleetSchedulerTest, LoadModelsRejectsTruncatedStream) {
  FleetScheduler scheduler(FastOptions());
  ASSERT_TRUE(scheduler.RegisterVehicle("v1", Day(0)).ok());
  ASSERT_TRUE(scheduler.IngestSeries("v1", SimulatedVehicle(44, 600)).ok());
  ASSERT_TRUE(scheduler.TrainAll().ok());
  std::stringstream buffer;
  ASSERT_TRUE(scheduler.SaveModels(buffer).ok());
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() * 2 / 3));
  EXPECT_FALSE(scheduler.LoadModels(truncated).ok());
}


TEST(FleetSchedulerTest, CheckDriftFlagsRegimeChange) {
  FleetScheduler scheduler(FastOptions());
  ASSERT_TRUE(scheduler.RegisterVehicle("v1", Day(0)).ok());
  // 300 quiet days then 120 busy days: the monitor must flag the shift.
  Rng rng(91);
  std::vector<double> values;
  for (int i = 0; i < 300; ++i) values.push_back(rng.Normal(8'000, 800));
  for (int i = 0; i < 120; ++i) values.push_back(rng.Normal(16'000, 800));
  ASSERT_TRUE(
      scheduler.IngestSeries("v1", data::DailySeries(Day(0), values)).ok());
  const DriftReport report =
      scheduler.CheckDrift("v1", /*reference_fraction=*/0.7).ValueOrDie();
  EXPECT_TRUE(report.drift_detected);
  EXPECT_EQ(report.direction, +1);

  // A stable vehicle raises nothing.
  ASSERT_TRUE(scheduler.RegisterVehicle("v2", Day(0)).ok());
  std::vector<double> stable;
  for (int i = 0; i < 420; ++i) stable.push_back(rng.Normal(8'000, 800));
  ASSERT_TRUE(
      scheduler.IngestSeries("v2", data::DailySeries(Day(0), stable)).ok());
  EXPECT_FALSE(scheduler.CheckDrift("v2").ValueOrDie().drift_detected);

  // Bad fraction rejected.
  EXPECT_FALSE(scheduler.CheckDrift("v1", 1.5).ok());
}

}  // namespace
}  // namespace core
}  // namespace nextmaint
