#include "core/drift.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.h"

namespace nextmaint {
namespace core {
namespace {

Date Day(int offset) {
  return Date::FromYmd(2015, 1, 1).ValueOrDie().AddDays(offset);
}

/// Gaussian usage around `mean` with mild noise.
std::vector<double> Noisy(size_t days, double mean, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values(days);
  for (double& v : values) v = rng.Normal(mean, mean * 0.1);
  return values;
}

TEST(DriftDetectorTest, CreateValidatesInputs) {
  EXPECT_TRUE(DriftDetector::Create(100.0, 10.0).ok());
  EXPECT_FALSE(DriftDetector::Create(100.0, 0.0).ok());
  EXPECT_FALSE(DriftDetector::Create(100.0, -5.0).ok());
  EXPECT_FALSE(
      DriftDetector::Create(std::nan(""), 1.0).ok());
  DriftOptions bad;
  bad.threshold = 0.0;
  EXPECT_FALSE(DriftDetector::Create(100.0, 10.0, bad).ok());
  bad = DriftOptions();
  bad.slack = -1.0;
  EXPECT_FALSE(DriftDetector::Create(100.0, 10.0, bad).ok());
}

TEST(DriftDetectorTest, StableStreamNeverAlarms) {
  auto detector = DriftDetector::Create(10'000.0, 1'000.0).ValueOrDie();
  Rng rng(1);
  for (int i = 0; i < 5'000; ++i) {
    EXPECT_FALSE(detector.Observe(rng.Normal(10'000.0, 1'000.0)));
  }
  EXPECT_FALSE(detector.drifted());
  EXPECT_EQ(detector.direction(), 0);
}

TEST(DriftDetectorTest, UpwardShiftDetected) {
  auto detector = DriftDetector::Create(10'000.0, 1'000.0).ValueOrDie();
  Rng rng(2);
  // A 2-sigma upward shift: alarm within a couple of weeks.
  int alarm_day = -1;
  for (int i = 0; i < 60; ++i) {
    if (detector.Observe(rng.Normal(12'000.0, 1'000.0))) {
      alarm_day = i;
      break;
    }
  }
  ASSERT_GE(alarm_day, 0);
  EXPECT_LT(alarm_day, 20);
  EXPECT_EQ(detector.direction(), +1);
}

TEST(DriftDetectorTest, DownwardShiftDetected) {
  auto detector = DriftDetector::Create(10'000.0, 1'000.0).ValueOrDie();
  Rng rng(3);
  bool alarmed = false;
  for (int i = 0; i < 60 && !alarmed; ++i) {
    alarmed = detector.Observe(rng.Normal(7'000.0, 1'000.0));
  }
  EXPECT_TRUE(alarmed);
  EXPECT_EQ(detector.direction(), -1);
}

TEST(DriftDetectorTest, ResetClearsState) {
  auto detector = DriftDetector::Create(10.0, 1.0).ValueOrDie();
  for (int i = 0; i < 50; ++i) detector.Observe(20.0);
  ASSERT_TRUE(detector.drifted());
  detector.Reset();
  EXPECT_FALSE(detector.drifted());
  EXPECT_DOUBLE_EQ(detector.positive_sum(), 0.0);
  EXPECT_EQ(detector.direction(), 0);
}

TEST(DetectUsageDriftTest, RegimeChangeInTailIsFound) {
  // 200 stable days, then the vehicle moves to a busy site.
  std::vector<double> values = Noisy(200, 10'000.0, 4);
  const std::vector<double> busy = Noisy(100, 16'000.0, 5);
  values.insert(values.end(), busy.begin(), busy.end());
  const data::DailySeries series(Day(0), values);

  const DriftReport report =
      DetectUsageDrift(series, /*train_days=*/200).ValueOrDie();
  EXPECT_TRUE(report.drift_detected);
  EXPECT_EQ(report.direction, +1);
  EXPECT_GE(report.first_alarm_day, 200u);
  EXPECT_LT(report.first_alarm_day, 215u);  // found within ~2 weeks
}

TEST(DetectUsageDriftTest, NoChangeNoAlarm) {
  const data::DailySeries series(Day(0), Noisy(400, 10'000.0, 6));
  const DriftReport report =
      DetectUsageDrift(series, /*train_days=*/200).ValueOrDie();
  EXPECT_FALSE(report.drift_detected);
  EXPECT_EQ(report.direction, 0);
  EXPECT_LT(report.peak_statistic, 8.0);
}

TEST(DetectUsageDriftTest, SlackSuppressesSmallShifts) {
  // A 0.5-sigma shift sits inside the default slack band.
  std::vector<double> values = Noisy(300, 10'000.0, 7);
  const std::vector<double> slight = Noisy(200, 10'300.0, 8);
  values.insert(values.end(), slight.begin(), slight.end());
  const data::DailySeries series(Day(0), values);
  DriftOptions options;
  options.slack = 0.8;
  const DriftReport report =
      DetectUsageDrift(series, 300, options).ValueOrDie();
  EXPECT_FALSE(report.drift_detected);
}

TEST(DetectUsageDriftTest, ErrorCases) {
  const data::DailySeries series(Day(0), Noisy(10, 100.0, 9));
  EXPECT_FALSE(DetectUsageDrift(series, 0).ok());
  EXPECT_FALSE(DetectUsageDrift(series, 10).ok());
  EXPECT_FALSE(DetectUsageDrift(series, 1).ok());
  // Constant training window: no reference variance.
  data::DailySeries constant(Day(0), std::vector<double>(20, 5'000.0));
  EXPECT_EQ(DetectUsageDrift(constant, 10).status().code(),
            StatusCode::kNumericError);
  // Unclean data rejected.
  data::DailySeries dirty(
      Day(0), {1.0, std::numeric_limits<double>::quiet_NaN(), 3.0});
  EXPECT_EQ(DetectUsageDrift(dirty, 2).status().code(),
            StatusCode::kDataError);
}

}  // namespace
}  // namespace core
}  // namespace nextmaint
