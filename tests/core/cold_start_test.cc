#include "core/cold_start.h"

#include <gtest/gtest.h>

#include <cmath>

#include "telematics/fleet.h"

namespace nextmaint {
namespace core {
namespace {

constexpr double kTv = 500'000.0;

Date Day(int offset) {
  return Date::FromYmd(2015, 1, 1).ValueOrDie().AddDays(offset);
}

data::DailySeries SimulatedVehicle(uint64_t seed, int days = 400) {
  Rng rng(seed);
  telem::VehicleProfile profile = telem::DefaultFleetProfiles(1, &rng)[0];
  profile.maintenance_interval_s = kTv;
  Rng sim_rng(seed * 31 + 1);
  return telem::SimulateVehicle(profile, Day(0), days, 0.0, &sim_rng)
      .ValueOrDie()
      .utilization;
}

std::vector<FirstCycleData> MakeCorpus(int vehicles) {
  ColdStartOptions options;
  std::vector<FirstCycleData> corpus;
  for (int v = 0; v < vehicles; ++v) {
    // std::string("t") + ...: the char* + string&& operator+ overload trips
    // GCC 12's -Wrestrict false positive at -O2.
    auto data = ExtractFirstCycle(std::string("t") + std::to_string(v),
                                  SimulatedVehicle(100 + v), kTv, options);
    if (data.ok()) corpus.push_back(std::move(data).ValueOrDie());
  }
  return corpus;
}

TEST(FirstHalfCycleUsageTest, StopsAtHalfInterval) {
  data::DailySeries u(Day(0), std::vector<double>(10, 100.0));
  const std::vector<double> half =
      FirstHalfCycleUsage(u, 1000.0).ValueOrDie();
  // Cumulative crosses 500 on day 4 (5 * 100).
  EXPECT_EQ(half.size(), 5u);
}

TEST(FirstHalfCycleUsageTest, FailsForNewVehicle) {
  data::DailySeries u(Day(0), {10.0, 10.0});
  EXPECT_FALSE(FirstHalfCycleUsage(u, 1000.0).ok());
}

TEST(ExtractFirstCycleTest, ProducesDatasetAndKey) {
  ColdStartOptions options;
  const FirstCycleData data =
      ExtractFirstCycle("v1", SimulatedVehicle(1), kTv, options)
          .ValueOrDie();
  EXPECT_EQ(data.vehicle_id, "v1");
  EXPECT_GT(data.dataset.num_rows(), 0u);
  EXPECT_FALSE(data.first_half_usage.empty());
  // Every target lies within the first cycle (D bounded by its length).
  for (double y : data.dataset.y()) {
    EXPECT_GE(y, 0.0);
    EXPECT_LT(y, 1000.0);
  }
}

TEST(ExtractFirstCycleTest, FailsWithoutCompletedCycle) {
  data::DailySeries u(Day(0), std::vector<double>(10, 10.0));
  ColdStartOptions options;
  EXPECT_FALSE(ExtractFirstCycle("v1", u, kTv, options).ok());
}

TEST(TrainUnifiedModelTest, TrainsOnMergedCorpus) {
  const std::vector<FirstCycleData> corpus = MakeCorpus(4);
  ASSERT_GE(corpus.size(), 2u);
  ColdStartOptions options;
  const auto model = TrainUnifiedModel("RF", corpus, options).ValueOrDie();
  ASSERT_NE(model, nullptr);
  EXPECT_TRUE(model->is_fitted());
}

TEST(TrainUnifiedModelTest, ForwardsModelParams) {
  const std::vector<FirstCycleData> corpus = MakeCorpus(2);
  ASSERT_GE(corpus.size(), 1u);
  ColdStartOptions options;
  options.model_params = {{"num_estimators", 3}};
  const auto model = TrainUnifiedModel("RF", corpus, options).ValueOrDie();
  EXPECT_TRUE(model->is_fitted());
}

TEST(TrainUnifiedModelTest, EmptyCorpusFails) {
  ColdStartOptions options;
  EXPECT_FALSE(TrainUnifiedModel("RF", {}, options).ok());
}

TEST(TrainSimilarityModelTest, PicksAndTrainsOnMatch) {
  const std::vector<FirstCycleData> corpus = MakeCorpus(4);
  ASSERT_GE(corpus.size(), 2u);
  ColdStartOptions options;
  const std::vector<double> target = corpus[1].first_half_usage;
  const SimilarityModel sim =
      TrainSimilarityModel("LR", target, corpus, options).ValueOrDie();
  // Matching the corpus entry against itself must select it.
  EXPECT_EQ(sim.match.id, corpus[1].vehicle_id);
  EXPECT_NEAR(sim.match.distance, 0.0, 1e-9);
  EXPECT_TRUE(sim.model->is_fitted());
}

TEST(TrainSimilarityModelTest, CustomMeasureIsUsed) {
  const std::vector<FirstCycleData> corpus = MakeCorpus(3);
  ASSERT_GE(corpus.size(), 2u);
  ColdStartOptions options;
  // A degenerate measure that always prefers the last candidate.
  size_t calls = 0;
  options.similarity = [&calls, &corpus](const std::vector<double>&,
                                         const std::vector<double>& b) {
    ++calls;
    return b == corpus.back().first_half_usage ? 0.0 : 1.0;
  };
  const SimilarityModel sim =
      TrainSimilarityModel("LR", {1, 2, 3}, corpus, options).ValueOrDie();
  EXPECT_EQ(sim.match.id, corpus.back().vehicle_id);
  EXPECT_EQ(calls, corpus.size());
}

TEST(MakeSemiNewBaselineTest, UsesFirstHalfAverage) {
  data::DailySeries u(Day(0), std::vector<double>(20, 100.0));
  ColdStartOptions options;
  options.normalize_features = false;
  const auto model = MakeSemiNewBaseline(u, 1000.0, options).ValueOrDie();
  const std::vector<double> features = {300.0};
  EXPECT_DOUBLE_EQ(
      model->Predict(std::span<const double>(features.data(), 1))
          .ValueOrDie(),
      3.0);
}

TEST(MakeSemiNewBaselineTest, FailsForNewVehicle) {
  data::DailySeries u(Day(0), {1.0, 1.0});
  ColdStartOptions options;
  EXPECT_FALSE(MakeSemiNewBaseline(u, 1000.0, options).ok());
}

TEST(EvaluateColdStartTest, EvaluatesOverFirstCycle) {
  const std::vector<FirstCycleData> corpus = MakeCorpus(4);
  ASSERT_GE(corpus.size(), 2u);
  ColdStartOptions options;
  const auto model = TrainUnifiedModel("RF", corpus, options).ValueOrDie();
  const ColdStartEvaluation eval =
      EvaluateColdStartModel(*model, SimulatedVehicle(999), kTv, options,
                             /*compute_emre=*/true)
          .ValueOrDie();
  EXPECT_FALSE(eval.truth.empty());
  EXPECT_EQ(eval.truth.size(), eval.predicted.size());
  EXPECT_GE(eval.emre, 0.0);
  EXPECT_GE(eval.eglobal, 0.0);
  EXPECT_FALSE(std::isnan(eval.emre));
}

TEST(EvaluateColdStartTest, SkipsEmreWhenNotRequested) {
  const std::vector<FirstCycleData> corpus = MakeCorpus(2);
  ASSERT_GE(corpus.size(), 1u);
  ColdStartOptions options;
  const auto model = TrainUnifiedModel("LR", corpus, options).ValueOrDie();
  const ColdStartEvaluation eval =
      EvaluateColdStartModel(*model, SimulatedVehicle(888), kTv, options,
                             /*compute_emre=*/false)
          .ValueOrDie();
  EXPECT_TRUE(std::isnan(eval.emre));
  EXPECT_GE(eval.eglobal, 0.0);
}

TEST(EvaluateColdStartTest, FailsWithoutGroundTruth) {
  const std::vector<FirstCycleData> corpus = MakeCorpus(2);
  ASSERT_GE(corpus.size(), 1u);
  ColdStartOptions options;
  const auto model = TrainUnifiedModel("LR", corpus, options).ValueOrDie();
  // A vehicle with no completed cycle has no ground truth to compare to.
  data::DailySeries incomplete(Day(0), std::vector<double>(20, 10.0));
  EXPECT_FALSE(EvaluateColdStartModel(*model, incomplete, kTv, options, true)
                   .ok());
}

}  // namespace
}  // namespace core
}  // namespace nextmaint
