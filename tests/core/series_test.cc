#include "core/series.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace nextmaint {
namespace core {
namespace {

Date Day(int offset) {
  return Date::FromYmd(2015, 1, 1).ValueOrDie().AddDays(offset);
}

// Simple fixture: 100 s/day allowance, T_v = 300 s -> maintenance every
// third day exactly.
data::DailySeries ConstantUsage(size_t days, double per_day) {
  return data::DailySeries(Day(0), std::vector<double>(days, per_day));
}

TEST(DeriveSeriesTest, ConstantUsageCycles) {
  const VehicleSeries s =
      DeriveSeries(ConstantUsage(9, 100.0), 300.0).ValueOrDie();
  ASSERT_EQ(s.completed_cycles(), 3u);
  EXPECT_EQ(s.cycles[0].start, 0u);
  EXPECT_EQ(s.cycles[0].end, 2u);
  EXPECT_EQ(s.cycles[1].start, 3u);
  EXPECT_EQ(s.cycles[1].end, 5u);
  EXPECT_EQ(s.cycles[2].length_days(), 3u);
}

VehicleSeries DeriveSeriesConstant() {
  return DeriveSeries(ConstantUsage(9, 100.0), 300.0).ValueOrDie();
}

TEST(DeriveSeriesTest, DSeriesIsSawtooth) {
  const VehicleSeries s = DeriveSeriesConstant();
  const double expected[] = {2, 1, 0, 2, 1, 0, 2, 1, 0};
  for (size_t t = 0; t < 9; ++t) {
    EXPECT_DOUBLE_EQ(s.d[t], expected[t]) << "t=" << t;
  }
}

TEST(DeriveSeriesTest, CSeriesCountsDaysSinceMaintenance) {
  const VehicleSeries s = DeriveSeriesConstant();
  const double expected[] = {0, 1, 2, 0, 1, 2, 0, 1, 2};
  for (size_t t = 0; t < 9; ++t) {
    EXPECT_DOUBLE_EQ(s.c[t], expected[t]) << "t=" << t;
  }
}

TEST(DeriveSeriesTest, LSeriesFollowsEquationOne) {
  const VehicleSeries s = DeriveSeriesConstant();
  // L(t) = T - sum of usage since cycle start, evaluated at day start.
  const double expected[] = {300, 200, 100, 300, 200, 100, 300, 200, 100};
  for (size_t t = 0; t < 9; ++t) {
    EXPECT_DOUBLE_EQ(s.l[t], expected[t]) << "t=" << t;
  }
}

TEST(DeriveSeriesTest, TrailingDaysHaveNoTarget) {
  // 10 days at 100 s: cycle 1 ends day 2, cycle 2 day 5, cycle 3 day 8;
  // day 9 opens an incomplete cycle -> D undefined.
  const VehicleSeries s =
      DeriveSeries(ConstantUsage(10, 100.0), 300.0).ValueOrDie();
  EXPECT_TRUE(s.HasTarget(8));
  EXPECT_FALSE(s.HasTarget(9));
  EXPECT_TRUE(std::isnan(s.d[9]));
  // C and L remain defined on the trailing day.
  EXPECT_DOUBLE_EQ(s.c[9], 0.0);
  EXPECT_DOUBLE_EQ(s.l[9], 300.0);
}

TEST(DeriveSeriesTest, ExcessUsageCarriesOver) {
  // Day usage 200, T = 300: maintenance at end of day 1 (400 >= 300),
  // carryover 100 -> next maintenance at end of day 2 (100+200 >= 300).
  const VehicleSeries s =
      DeriveSeries(ConstantUsage(4, 200.0), 300.0).ValueOrDie();
  ASSERT_EQ(s.completed_cycles(), 2u);
  EXPECT_EQ(s.cycles[0].end, 1u);
  EXPECT_EQ(s.cycles[1].end, 2u);
  // L reflects the carryover: the 100 s consumed past T on day 1 count
  // against the new cycle, so at the start of day 2, 300 - 100 = 200 s
  // remain (a strict Eq. 1 with C(2) = 0 would say 300; the carryover
  // keeps L consistent with when D actually reaches zero).
  EXPECT_DOUBLE_EQ(s.l[2], 200.0);
}

TEST(DeriveSeriesTest, ZeroUsageDaysStretchD) {
  // Usage 100,0,0,100,100 with T=300: maintenance at end of day 4.
  const data::DailySeries u(Day(0), {100, 0, 0, 100, 100});
  const VehicleSeries s = DeriveSeries(u, 300.0).ValueOrDie();
  ASSERT_EQ(s.completed_cycles(), 1u);
  EXPECT_DOUBLE_EQ(s.d[0], 4.0);
  // L is flat across the zero-usage days (the Fig. 3 vertical step).
  EXPECT_DOUBLE_EQ(s.l[1], 200.0);
  EXPECT_DOUBLE_EQ(s.l[2], 200.0);
  EXPECT_DOUBLE_EQ(s.l[3], 200.0);
  EXPECT_DOUBLE_EQ(s.d[1], 3.0);
  EXPECT_DOUBLE_EQ(s.d[2], 2.0);
}

TEST(DeriveSeriesTest, OffsetShiftsTimeReference) {
  // The time-shift primitive: dropping a prefix re-phases the cycles.
  const VehicleSeries shifted =
      DeriveSeries(ConstantUsage(9, 100.0), 300.0, /*offset=*/1)
          .ValueOrDie();
  EXPECT_EQ(shifted.size(), 8u);
  // New day 0 is the old day 1; cycles restart from the shifted origin.
  EXPECT_DOUBLE_EQ(shifted.l[0], 300.0);
  ASSERT_EQ(shifted.completed_cycles(), 2u);
  EXPECT_EQ(shifted.cycles[0].end, 2u);
}

TEST(DeriveSeriesTest, NoCycleWhenUsageInsufficient) {
  const VehicleSeries s =
      DeriveSeries(ConstantUsage(5, 10.0), 300.0).ValueOrDie();
  EXPECT_EQ(s.completed_cycles(), 0u);
  for (size_t t = 0; t < 5; ++t) {
    EXPECT_FALSE(s.HasTarget(t));
  }
  EXPECT_DOUBLE_EQ(s.TotalUsage(), 50.0);
}

TEST(DeriveSeriesTest, ErrorCases) {
  EXPECT_FALSE(DeriveSeries(data::DailySeries(), 300.0).ok());
  EXPECT_FALSE(DeriveSeries(ConstantUsage(5, 10.0), 0.0).ok());
  EXPECT_FALSE(DeriveSeries(ConstantUsage(5, 10.0), -5.0).ok());
  // Offset beyond the series leaves nothing.
  EXPECT_FALSE(DeriveSeries(ConstantUsage(5, 10.0), 300.0, 5).ok());
  // Missing values must be cleaned first.
  data::DailySeries with_nan(
      Day(0), {10.0, std::numeric_limits<double>::quiet_NaN()});
  EXPECT_EQ(DeriveSeries(with_nan, 300.0).status().code(),
            StatusCode::kDataError);
}

TEST(DeriveSeriesTest, InvariantsOnIrregularSeries) {
  // A jagged usage pattern; check structural invariants rather than exact
  // values.
  const data::DailySeries u(
      Day(0), {50, 0, 120, 300, 0, 0, 10, 250, 90, 400, 0, 80, 160, 20});
  const VehicleSeries s = DeriveSeries(u, 500.0).ValueOrDie();
  for (size_t t = 0; t < s.size(); ++t) {
    // L in (0, T].
    EXPECT_GT(s.l[t], 0.0);
    EXPECT_LE(s.l[t], 500.0);
    // C counts up within a cycle.
    if (t > 0 && s.c[t] != 0.0) {
      EXPECT_DOUBLE_EQ(s.c[t], s.c[t - 1] + 1.0);
    }
    // D decreases by exactly 1 inside a cycle.
    if (t > 0 && s.HasTarget(t) && s.HasTarget(t - 1) && s.d[t - 1] > 0) {
      EXPECT_DOUBLE_EQ(s.d[t], s.d[t - 1] - 1.0);
    }
  }
  // Cycles tile the targeted prefix.
  for (size_t c = 1; c < s.cycles.size(); ++c) {
    EXPECT_EQ(s.cycles[c].start, s.cycles[c - 1].end + 1);
  }
}

}  // namespace
}  // namespace core
}  // namespace nextmaint
