// Tests for the BL baseline predictor (Eqs. 5-6) and the vehicle
// similarity machinery.

#include <gtest/gtest.h>

#include <cmath>

#include "core/baseline.h"
#include "core/similarity.h"

namespace nextmaint {
namespace core {
namespace {

Date Day(int offset) {
  return Date::FromYmd(2015, 1, 1).ValueOrDie().AddDays(offset);
}

TEST(BaselinePredictorTest, PredictsLOverAvg) {
  BaselinePredictor model(/*avg_utilization_s=*/100.0);
  const std::vector<double> features = {500.0};  // L in column 0
  EXPECT_DOUBLE_EQ(
      model.Predict(std::span<const double>(features.data(), 1)).ValueOrDie(),
      5.0);
}

TEST(BaselinePredictorTest, IgnoresExtraFeatures) {
  BaselinePredictor model(100.0);
  const std::vector<double> features = {500.0, 42.0, -7.0};
  EXPECT_DOUBLE_EQ(
      model.Predict(std::span<const double>(features.data(), 3)).ValueOrDie(),
      5.0);
}

TEST(BaselinePredictorTest, UndoesNormalizationScale) {
  // If the dataset builder scaled L by 1/T_v, BL must divide it back out.
  const double t_v = 1000.0;
  BaselinePredictor model(100.0, /*l_scale=*/1.0 / t_v);
  const std::vector<double> features = {500.0 / t_v};
  EXPECT_DOUBLE_EQ(
      model.Predict(std::span<const double>(features.data(), 1)).ValueOrDie(),
      5.0);
}

TEST(BaselinePredictorTest, FitIsANoOp) {
  BaselinePredictor model(100.0);
  EXPECT_TRUE(model.Fit(ml::Dataset()).ok());
  EXPECT_TRUE(model.is_fitted());
  EXPECT_EQ(model.name(), "BL");
}

TEST(BaselinePredictorTest, EmptyFeatureRowFails) {
  BaselinePredictor model(100.0);
  EXPECT_FALSE(model.Predict(std::span<const double>()).ok());
}

TEST(BaselinePredictorTest, InvalidConstructionAborts) {
  EXPECT_DEATH(BaselinePredictor(0.0), "AVG");
  EXPECT_DEATH(BaselinePredictor(-5.0), "AVG");
  EXPECT_DEATH(BaselinePredictor(10.0, 0.0), "l_scale");
}

TEST(BaselinePredictorTest, CloneKeepsAvg) {
  BaselinePredictor model(250.0);
  const auto clone = model.Clone();
  const std::vector<double> features = {500.0};
  EXPECT_DOUBLE_EQ(
      clone->Predict(std::span<const double>(features.data(), 1))
          .ValueOrDie(),
      2.0);
}

TEST(AverageUtilizationTest, WholeSeriesAndPrefix) {
  data::DailySeries u(Day(0), {100, 200, 300, 400});
  EXPECT_DOUBLE_EQ(AverageUtilization(u).ValueOrDie(), 250.0);
  EXPECT_DOUBLE_EQ(AverageUtilization(u, 2).ValueOrDie(), 150.0);
}

TEST(AverageUtilizationTest, ErrorOnEmptyOrZero) {
  EXPECT_FALSE(AverageUtilization(data::DailySeries()).ok());
  data::DailySeries zero(Day(0), {0.0, 0.0});
  EXPECT_EQ(AverageUtilization(zero).status().code(),
            StatusCode::kNumericError);
}

TEST(SimilarityMeasuresTest, AverageDistanceComparesMeans) {
  const SimilarityMeasure measure = AverageDistanceMeasure();
  // Same mean, different shape: distance 0 (the paper compares AVG usage).
  EXPECT_DOUBLE_EQ(measure({0, 20}, {10, 10}), 0.0);
  EXPECT_DOUBLE_EQ(measure({10, 10}, {16, 16}), 6.0);
}

TEST(SimilarityMeasuresTest, PointwiseDistanceSeesShape) {
  const SimilarityMeasure measure = PointwiseDistanceMeasure();
  EXPECT_DOUBLE_EQ(measure({0, 20}, {10, 10}), 10.0);
  EXPECT_DOUBLE_EQ(measure({5, 5}, {5, 5}), 0.0);
}

TEST(SimilarityMeasuresTest, CorrelationMeasureTracksShape) {
  const SimilarityMeasure measure = CorrelationMeasure();
  // Perfectly correlated series: distance ~0 regardless of scale.
  EXPECT_NEAR(measure({1, 2, 3}, {10, 20, 30}), 0.0, 1e-12);
  // Anti-correlated: distance ~2.
  EXPECT_NEAR(measure({1, 2, 3}, {3, 2, 1}), 2.0, 1e-12);
}

TEST(SimilarityMeasuresTest, CorrelationFallsBackOnConstantSeries) {
  const SimilarityMeasure measure = CorrelationMeasure();
  // Constant candidate: Pearson undefined; falls back to avg distance,
  // which is finite.
  const double d = measure({5, 5, 5}, {1, 2, 3});
  EXPECT_TRUE(std::isfinite(d));
}

TEST(MostSimilarTest, PicksMinimumDistance) {
  const std::vector<SimilarityCandidate> candidates = {
      {"a", {100, 100}},
      {"b", {55, 45}},
      {"c", {10, 10}},
  };
  const SimilarityMatch match =
      MostSimilar({50, 50}, candidates, AverageDistanceMeasure())
          .ValueOrDie();
  EXPECT_EQ(match.id, "b");
  EXPECT_EQ(match.index, 1u);
  EXPECT_DOUBLE_EQ(match.distance, 0.0);
}

TEST(MostSimilarTest, TieBreaksTowardEarlierCandidate) {
  const std::vector<SimilarityCandidate> candidates = {
      {"first", {10}},
      {"second", {10}},
  };
  EXPECT_EQ(MostSimilar({10}, candidates, AverageDistanceMeasure())
                .ValueOrDie()
                .id,
            "first");
}

TEST(MostSimilarTest, ErrorCases) {
  EXPECT_FALSE(MostSimilar({}, {{"a", {1}}}, AverageDistanceMeasure()).ok());
  EXPECT_FALSE(MostSimilar({1}, {}, AverageDistanceMeasure()).ok());
  EXPECT_FALSE(MostSimilar({1}, {{"a", {1}}}, SimilarityMeasure()).ok());
}

}  // namespace
}  // namespace core
}  // namespace nextmaint
