#include "core/workshop_planner.h"

#include <gtest/gtest.h>

#include <set>

namespace nextmaint {
namespace core {
namespace {

// 2015-01-05 is a Monday: weekday arithmetic below stays simple.
Date Day(int offset) {
  return Date::FromYmd(2015, 1, 5).ValueOrDie().AddDays(offset);
}

MaintenanceForecast Forecast(const std::string& id, int due_offset) {
  MaintenanceForecast f;
  f.vehicle_id = id;
  f.predicted_date = Day(due_offset);
  f.days_left = due_offset;
  return f;
}

WorkshopOptions WeekendOptions() {
  WorkshopOptions options;
  options.weekend_service = true;  // every day bookable: simpler arithmetic
  return options;
}

TEST(WorkshopPlannerTest, OnTimeWhenCapacityAllows) {
  const std::vector<MaintenanceForecast> forecasts = {
      Forecast("a", 3), Forecast("b", 7), Forecast("c", 12)};
  const ServicePlan plan =
      PlanWorkshop(forecasts, Day(0), WeekendOptions()).ValueOrDie();
  ASSERT_EQ(plan.assignments.size(), 3u);
  for (const ServiceAssignment& assignment : plan.assignments) {
    EXPECT_EQ(assignment.slack_days, 0) << assignment.vehicle_id;
  }
  EXPECT_DOUBLE_EQ(plan.total_cost, 0.0);
}

TEST(WorkshopPlannerTest, CapacityConflictPushesOneVehicleEarly) {
  // Two vehicles due the same day, capacity 1: one serviced a day early
  // (earliness is 10x cheaper than lateness by default).
  const std::vector<MaintenanceForecast> forecasts = {Forecast("a", 5),
                                                      Forecast("b", 5)};
  const ServicePlan plan =
      PlanWorkshop(forecasts, Day(0), WeekendOptions()).ValueOrDie();
  ASSERT_EQ(plan.assignments.size(), 2u);
  std::multiset<int64_t> slacks;
  for (const auto& assignment : plan.assignments) {
    slacks.insert(assignment.slack_days);
  }
  EXPECT_EQ(slacks, (std::multiset<int64_t>{-1, 0}));
  EXPECT_EQ(plan.total_early_days, 1);
  EXPECT_EQ(plan.total_late_days, 0);
}

TEST(WorkshopPlannerTest, HigherCapacityRemovesConflicts) {
  WorkshopOptions options = WeekendOptions();
  options.daily_capacity = 2;
  const std::vector<MaintenanceForecast> forecasts = {Forecast("a", 5),
                                                      Forecast("b", 5)};
  const ServicePlan plan =
      PlanWorkshop(forecasts, Day(0), options).ValueOrDie();
  EXPECT_DOUBLE_EQ(plan.total_cost, 0.0);
}

TEST(WorkshopPlannerTest, OverdueVehicleBookedImmediately) {
  const std::vector<MaintenanceForecast> forecasts = {Forecast("late", -4)};
  const ServicePlan plan =
      PlanWorkshop(forecasts, Day(0), WeekendOptions()).ValueOrDie();
  ASSERT_EQ(plan.assignments.size(), 1u);
  EXPECT_EQ(plan.assignments[0].scheduled_date, Day(0));
  EXPECT_EQ(plan.assignments[0].slack_days, 4);
  EXPECT_EQ(plan.total_late_days, 4);
}

TEST(WorkshopPlannerTest, BeyondHorizonReported) {
  WorkshopOptions options = WeekendOptions();
  options.horizon_days = 30;
  const std::vector<MaintenanceForecast> forecasts = {Forecast("soon", 10),
                                                      Forecast("far", 60)};
  const ServicePlan plan =
      PlanWorkshop(forecasts, Day(0), options).ValueOrDie();
  EXPECT_EQ(plan.assignments.size(), 1u);
  EXPECT_EQ(plan.beyond_horizon, (std::vector<std::string>{"far"}));
}

TEST(WorkshopPlannerTest, WeekendsExcludedByDefault) {
  WorkshopOptions options;  // weekend_service = false
  // Due on Saturday (Day(5) from Monday): must be serviced Friday.
  const std::vector<MaintenanceForecast> forecasts = {Forecast("a", 5)};
  const ServicePlan plan =
      PlanWorkshop(forecasts, Day(0), options).ValueOrDie();
  ASSERT_EQ(plan.assignments.size(), 1u);
  EXPECT_FALSE(plan.assignments[0].scheduled_date.IsWeekend());
  EXPECT_EQ(plan.assignments[0].slack_days, -1);  // Friday, one day early
}

TEST(WorkshopPlannerTest, EarliestDeadlineFirstUnderScarcity) {
  // Three vehicles, capacity 1, all due within two days: the most urgent
  // one gets its due date, others spread around it.
  const std::vector<MaintenanceForecast> forecasts = {
      Forecast("c", 2), Forecast("a", 1), Forecast("b", 2)};
  const ServicePlan plan =
      PlanWorkshop(forecasts, Day(0), WeekendOptions()).ValueOrDie();
  ASSERT_EQ(plan.assignments.size(), 3u);
  // All three days 0..2 are used exactly once.
  std::set<int64_t> days;
  for (const auto& assignment : plan.assignments) {
    days.insert(assignment.scheduled_date.DaysSince(Day(0)));
  }
  EXPECT_EQ(days.size(), 3u);
  EXPECT_EQ(plan.total_late_days, 0);
}

TEST(WorkshopPlannerTest, AsymmetricCostsPreferEarliness) {
  // Due tomorrow but tomorrow is taken by a same-deadline vehicle: the
  // competitor lands today (early, cost 1) rather than the day after
  // (late, cost 10).
  const std::vector<MaintenanceForecast> forecasts = {Forecast("a", 1),
                                                      Forecast("b", 1)};
  const ServicePlan plan =
      PlanWorkshop(forecasts, Day(0), WeekendOptions()).ValueOrDie();
  EXPECT_EQ(plan.total_late_days, 0);
  EXPECT_EQ(plan.total_early_days, 1);
}

TEST(WorkshopPlannerTest, LatenessPreferredWhenCheaper) {
  WorkshopOptions options = WeekendOptions();
  options.earliness_cost_per_day = 10.0;
  options.lateness_cost_per_day = 1.0;
  const std::vector<MaintenanceForecast> forecasts = {Forecast("a", 1),
                                                      Forecast("b", 1)};
  const ServicePlan plan =
      PlanWorkshop(forecasts, Day(0), options).ValueOrDie();
  EXPECT_EQ(plan.total_late_days, 1);
  EXPECT_EQ(plan.total_early_days, 0);
}

TEST(WorkshopPlannerTest, PlanCostRecomputesUnderNewWeights) {
  const std::vector<MaintenanceForecast> forecasts = {Forecast("a", 5),
                                                      Forecast("b", 5)};
  const ServicePlan plan =
      PlanWorkshop(forecasts, Day(0), WeekendOptions()).ValueOrDie();
  WorkshopOptions doubled = WeekendOptions();
  doubled.earliness_cost_per_day = 2.0;
  EXPECT_DOUBLE_EQ(PlanCost(plan, doubled), 2.0 * plan.total_cost);
}

TEST(WorkshopPlannerTest, FullyBookedHorizonReportsOverflow) {
  WorkshopOptions options = WeekendOptions();
  options.horizon_days = 2;  // two slots total at capacity 1
  const std::vector<MaintenanceForecast> forecasts = {
      Forecast("a", 0), Forecast("b", 0), Forecast("c", 1)};
  const ServicePlan plan =
      PlanWorkshop(forecasts, Day(0), options).ValueOrDie();
  EXPECT_EQ(plan.assignments.size(), 2u);
  EXPECT_EQ(plan.beyond_horizon.size(), 1u);
}

TEST(WorkshopPlannerTest, InvalidOptionsRejected) {
  const std::vector<MaintenanceForecast> forecasts = {Forecast("a", 1)};
  WorkshopOptions options = WeekendOptions();
  options.daily_capacity = 0;
  EXPECT_FALSE(PlanWorkshop(forecasts, Day(0), options).ok());
  options = WeekendOptions();
  options.horizon_days = 0;
  EXPECT_FALSE(PlanWorkshop(forecasts, Day(0), options).ok());
  options = WeekendOptions();
  options.lateness_cost_per_day = -1.0;
  EXPECT_FALSE(PlanWorkshop(forecasts, Day(0), options).ok());
}

TEST(WorkshopPlannerTest, EmptyForecastsYieldEmptyPlan) {
  const ServicePlan plan =
      PlanWorkshop({}, Day(0), WeekendOptions()).ValueOrDie();
  EXPECT_TRUE(plan.assignments.empty());
  EXPECT_DOUBLE_EQ(plan.total_cost, 0.0);
}

}  // namespace
}  // namespace core
}  // namespace nextmaint
