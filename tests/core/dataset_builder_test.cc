#include "core/dataset_builder.h"

#include <gtest/gtest.h>

#include <cmath>

namespace nextmaint {
namespace core {
namespace {

Date Day(int offset) {
  return Date::FromYmd(2015, 1, 1).ValueOrDie().AddDays(offset);
}

// 12 days at 100 s/day with T = 300: four 3-day cycles, D sawtooth 2,1,0.
VehicleSeries MakeSeries() {
  data::DailySeries u(Day(0), std::vector<double>(12, 100.0));
  return DeriveSeries(u, 300.0).ValueOrDie();
}

TEST(BuildFeatureRowTest, UnivariateLayout) {
  const VehicleSeries s = MakeSeries();
  DatasetOptions options;
  options.window = 0;
  options.normalize_features = false;
  const std::vector<double> row = BuildFeatureRow(s, 1, options).ValueOrDie();
  ASSERT_EQ(row.size(), 1u);
  EXPECT_DOUBLE_EQ(row[0], 200.0);  // L(1)
}

TEST(BuildFeatureRowTest, MultivariateLayout) {
  const VehicleSeries s = MakeSeries();
  DatasetOptions options;
  options.window = 3;
  options.normalize_features = false;
  const std::vector<double> row = BuildFeatureRow(s, 5, options).ValueOrDie();
  ASSERT_EQ(row.size(), 4u);
  EXPECT_DOUBLE_EQ(row[0], s.l[5]);
  EXPECT_DOUBLE_EQ(row[1], 100.0);  // U(4)
  EXPECT_DOUBLE_EQ(row[2], 100.0);  // U(3)
  EXPECT_DOUBLE_EQ(row[3], 100.0);  // U(2)
}

TEST(BuildFeatureRowTest, NormalizationScalesLAndU) {
  const VehicleSeries s = MakeSeries();
  DatasetOptions options;
  options.window = 1;
  options.normalize_features = true;
  const std::vector<double> row = BuildFeatureRow(s, 1, options).ValueOrDie();
  EXPECT_DOUBLE_EQ(row[0], 200.0 / 300.0);   // L / T_v
  EXPECT_DOUBLE_EQ(row[1], 100.0 / 86400.0);  // U / day
}

TEST(BuildFeatureRowTest, ErrorCases) {
  const VehicleSeries s = MakeSeries();
  DatasetOptions options;
  options.window = 3;
  EXPECT_FALSE(BuildFeatureRow(s, 2, options).ok());   // t < W
  EXPECT_FALSE(BuildFeatureRow(s, 99, options).ok());  // out of range
  options.window = -1;
  EXPECT_FALSE(BuildFeatureRow(s, 5, options).ok());
}

TEST(BuildDatasetTest, RowPerTargetedDay) {
  const VehicleSeries s = MakeSeries();
  DatasetOptions options;
  options.window = 0;
  const ml::Dataset dataset = BuildDataset(s, options).ValueOrDie();
  // All 12 days have targets (four complete cycles).
  EXPECT_EQ(dataset.num_rows(), 12u);
  EXPECT_EQ(dataset.num_features(), 1u);
  EXPECT_EQ(dataset.feature_names()[0], "L");
}

TEST(BuildDatasetTest, WindowReducesRowsAndAddsNames) {
  const VehicleSeries s = MakeSeries();
  DatasetOptions options;
  options.window = 4;
  const ml::Dataset dataset = BuildDataset(s, options).ValueOrDie();
  EXPECT_EQ(dataset.num_rows(), 8u);  // days 4..11
  EXPECT_EQ(dataset.num_features(), 5u);
  EXPECT_EQ(dataset.feature_names()[1], "U(t-1)");
  EXPECT_EQ(dataset.feature_names()[4], "U(t-4)");
}

TEST(BuildDatasetTest, TargetFilterKeepsLast29Style) {
  const VehicleSeries s = MakeSeries();
  DatasetOptions options;
  options.window = 0;
  options.target_filter = DaySet::Range(1, 1);  // only D == 1 days
  const ml::Dataset dataset = BuildDataset(s, options).ValueOrDie();
  EXPECT_EQ(dataset.num_rows(), 4u);  // one D=1 day per cycle
  for (double y : dataset.y()) {
    EXPECT_DOUBLE_EQ(y, 1.0);
  }
}

TEST(BuildDatasetTest, SkipsTrailingUndefinedTargets) {
  data::DailySeries u(Day(0), std::vector<double>(10, 100.0));
  // T=300: cycles end at days 2,5,8; day 9 has no target.
  const VehicleSeries s = DeriveSeries(u, 300.0).ValueOrDie();
  DatasetOptions options;
  options.window = 0;
  const ml::Dataset dataset = BuildDataset(s, options).ValueOrDie();
  EXPECT_EQ(dataset.num_rows(), 9u);
}

TEST(BuildDatasetTest, FailsWhenNothingSurvives) {
  const VehicleSeries s = MakeSeries();
  DatasetOptions options;
  options.window = 50;  // longer than the series
  EXPECT_FALSE(BuildDataset(s, options).ok());
  options.window = 0;
  options.target_filter = DaySet::Range(100, 200);  // no such targets
  EXPECT_FALSE(BuildDataset(s, options).ok());
}

TEST(BuildResampledDatasetTest, ZeroShiftsEqualsPlainDataset) {
  data::DailySeries u(Day(0), std::vector<double>(12, 100.0));
  DatasetOptions options;
  options.window = 0;
  ResamplingOptions resampling;
  resampling.num_shifts = 0;
  const ml::Dataset resampled =
      BuildResampledDataset(u, 300.0, options, resampling).ValueOrDie();
  const ml::Dataset plain =
      BuildDataset(DeriveSeries(u, 300.0).ValueOrDie(), options)
          .ValueOrDie();
  EXPECT_EQ(resampled.num_rows(), plain.num_rows());
}

TEST(BuildResampledDatasetTest, ShiftsAddRows) {
  data::DailySeries u(Day(0), std::vector<double>(60, 100.0));
  DatasetOptions options;
  options.window = 0;
  ResamplingOptions resampling;
  resampling.num_shifts = 3;
  const ml::Dataset resampled =
      BuildResampledDataset(u, 300.0, options, resampling).ValueOrDie();
  const ml::Dataset plain =
      BuildDataset(DeriveSeries(u, 300.0).ValueOrDie(), options)
          .ValueOrDie();
  EXPECT_GT(resampled.num_rows(), plain.num_rows());
}

TEST(BuildResampledDatasetTest, AugmentedRowsAreConsistent) {
  // Every augmented record must still satisfy the constant-usage relation
  // D = L/100 - 1 (L counts the current day's upcoming usage).
  data::DailySeries u(Day(0), std::vector<double>(60, 100.0));
  DatasetOptions options;
  options.window = 0;
  options.normalize_features = false;
  ResamplingOptions resampling;
  resampling.num_shifts = 5;
  const ml::Dataset resampled =
      BuildResampledDataset(u, 300.0, options, resampling).ValueOrDie();
  for (size_t r = 0; r < resampled.num_rows(); ++r) {
    EXPECT_DOUBLE_EQ(resampled.y()[r], resampled.x()(r, 0) / 100.0 - 1.0);
  }
}

TEST(BuildResampledDatasetTest, DeterministicGivenSeed) {
  data::DailySeries u(Day(0), std::vector<double>(60, 100.0));
  DatasetOptions options;
  ResamplingOptions resampling;
  resampling.num_shifts = 4;
  const auto a =
      BuildResampledDataset(u, 300.0, options, resampling).ValueOrDie();
  const auto b =
      BuildResampledDataset(u, 300.0, options, resampling).ValueOrDie();
  EXPECT_EQ(a.num_rows(), b.num_rows());
}

TEST(BuildResampledDatasetTest, InvalidOptionsRejected) {
  data::DailySeries u(Day(0), std::vector<double>(12, 100.0));
  DatasetOptions options;
  ResamplingOptions resampling;
  resampling.num_shifts = -1;
  EXPECT_FALSE(BuildResampledDataset(u, 300.0, options, resampling).ok());
  resampling.num_shifts = 1;
  resampling.max_shift_fraction = 1.0;
  EXPECT_FALSE(BuildResampledDataset(u, 300.0, options, resampling).ok());
}


TEST(ContextFeaturesTest, ForwardContextAppended) {
  const VehicleSeries s = MakeSeries();
  std::vector<double> context(12);
  for (size_t i = 0; i < context.size(); ++i) {
    context[i] = static_cast<double>(i) / 10.0;
  }
  DatasetOptions options;
  options.window = 1;
  options.context = &context;
  options.context_forecast_days = 3;
  const std::vector<double> row = BuildFeatureRow(s, 5, options).ValueOrDie();
  ASSERT_EQ(row.size(), 5u);  // L + U(t-1) + 3 context
  EXPECT_DOUBLE_EQ(row[2], 0.5);  // context[5]
  EXPECT_DOUBLE_EQ(row[3], 0.6);  // context[6]
  EXPECT_DOUBLE_EQ(row[4], 0.7);  // context[7]
}

TEST(ContextFeaturesTest, PastEndRepeatsLastValue) {
  const VehicleSeries s = MakeSeries();
  std::vector<double> context(12, 0.0);
  context.back() = 9.0;
  DatasetOptions options;
  options.context = &context;
  options.context_forecast_days = 3;
  const std::vector<double> row =
      BuildFeatureRow(s, 11, options).ValueOrDie();
  ASSERT_EQ(row.size(), 4u);
  EXPECT_DOUBLE_EQ(row[1], 9.0);  // context[11]
  EXPECT_DOUBLE_EQ(row[2], 9.0);  // clamped
  EXPECT_DOUBLE_EQ(row[3], 9.0);  // clamped
}

TEST(ContextFeaturesTest, DatasetGetsContextNamesAndColumns) {
  const VehicleSeries s = MakeSeries();
  std::vector<double> context(12, 0.5);
  DatasetOptions options;
  options.window = 2;
  options.context = &context;
  options.context_forecast_days = 2;
  const ml::Dataset dataset = BuildDataset(s, options).ValueOrDie();
  EXPECT_EQ(dataset.num_features(), 5u);
  EXPECT_EQ(dataset.feature_names()[3], "CTX(t+0)");
  EXPECT_EQ(dataset.feature_names()[4], "CTX(t+1)");
  for (size_t r = 0; r < dataset.num_rows(); ++r) {
    EXPECT_DOUBLE_EQ(dataset.x()(r, 3), 0.5);
  }
}

TEST(ContextFeaturesTest, MissingContextSeriesRejected) {
  const VehicleSeries s = MakeSeries();
  DatasetOptions options;
  options.context_forecast_days = 2;  // but no context series
  EXPECT_FALSE(BuildFeatureRow(s, 5, options).ok());
}

TEST(ContextFeaturesTest, ResamplingShiftsContextWithSeries) {
  // Context equal to the original day index. Correct behaviour shifts the
  // context with the time reference, so a row from a block shifted by
  // offset o carries CTX = o + t while its in-cycle position is t mod 3.
  data::DailySeries u(Day(0), std::vector<double>(60, 100.0));
  std::vector<double> context(60);
  for (size_t i = 0; i < 60; ++i) context[i] = static_cast<double>(i);
  DatasetOptions options;
  options.window = 0;
  options.normalize_features = false;
  options.context = &context;
  options.context_forecast_days = 1;
  ResamplingOptions resampling;
  resampling.num_shifts = 4;
  const ml::Dataset dataset =
      BuildResampledDataset(u, 300.0, options, resampling).ValueOrDie();

  size_t phase_mismatches = 0;
  for (size_t r = 0; r < dataset.num_rows(); ++r) {
    const double l = dataset.x()(r, 0);
    const double ctx = dataset.x()(r, 1);
    // Context values are always genuine day indices (integers in range),
    // never interpolated or recycled garbage.
    EXPECT_DOUBLE_EQ(ctx, std::floor(ctx));
    EXPECT_GE(ctx, 0.0);
    EXPECT_LT(ctx, 60.0);
    const double in_cycle_day = (300.0 - l) / 100.0;
    // The unshifted block (first 60 rows) keeps ctx == absolute day, so
    // phase matches exactly.
    if (r < 60) {
      EXPECT_DOUBLE_EQ(std::fmod(ctx, 3.0), in_cycle_day) << "row " << r;
    } else if (std::fmod(ctx, 3.0) != in_cycle_day) {
      // Shifted blocks: ctx = offset + t, so the phases differ whenever
      // the offset is not a multiple of the cycle length.
      ++phase_mismatches;
    }
  }
  // If the context had NOT been shifted along with the series, every row
  // would phase-match; with 4 random offsets at least one block must not.
  EXPECT_GT(phase_mismatches, 0u);
}

}  // namespace
}  // namespace core
}  // namespace nextmaint
