#include "telematics/fleet.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace nextmaint {
namespace telem {
namespace {

FleetOptions SmallFleetOptions() {
  FleetOptions options;
  options.num_vehicles = 5;
  options.num_days = 600;
  options.start_date = Date::FromYmd(2015, 1, 1).ValueOrDie();
  options.seed = 99;
  return options;
}

TEST(DefaultFleetProfilesTest, UniqueIdsAndValidProfiles) {
  Rng rng(1);
  const std::vector<VehicleProfile> profiles = DefaultFleetProfiles(24, &rng);
  ASSERT_EQ(profiles.size(), 24u);
  std::set<std::string> ids;
  for (const VehicleProfile& profile : profiles) {
    EXPECT_TRUE(profile.Validate().ok()) << profile.id;
    EXPECT_TRUE(ids.insert(profile.id).second) << "duplicate " << profile.id;
  }
}

TEST(DefaultFleetProfilesTest, ArchetypesAreHeterogeneous) {
  Rng rng(2);
  const std::vector<VehicleProfile> profiles = DefaultFleetProfiles(5, &rng);
  std::set<std::string> models;
  for (const VehicleProfile& profile : profiles) {
    models.insert(profile.model_name);
  }
  EXPECT_EQ(models.size(), 5u);  // five distinct archetypes in rotation
}

TEST(SimulateVehicleTest, ProducesRequestedDays) {
  Rng rng(3);
  VehicleProfile profile = DefaultFleetProfiles(1, &rng)[0];
  Rng sim_rng(4);
  const VehicleHistory history =
      SimulateVehicle(profile, Date::FromYmd(2015, 1, 1).ValueOrDie(), 400,
                      0.0, &sim_rng)
          .ValueOrDie();
  EXPECT_EQ(history.utilization.size(), 400u);
  EXPECT_TRUE(history.utilization.IsComplete());
  for (size_t t = 0; t < history.utilization.size(); ++t) {
    EXPECT_GE(history.utilization[t], 0.0);
    EXPECT_LE(history.utilization[t], 86'400.0);
  }
}

TEST(SimulateVehicleTest, MaintenanceDaysMatchUsageCrossings) {
  Rng rng(5);
  VehicleProfile profile = DefaultFleetProfiles(1, &rng)[0];
  profile.maintenance_interval_s = 500'000.0;  // short cycles for the test
  Rng sim_rng(6);
  const VehicleHistory history =
      SimulateVehicle(profile, Date::FromYmd(2015, 1, 1).ValueOrDie(), 500,
                      0.0, &sim_rng)
          .ValueOrDie();
  ASSERT_GT(history.maintenance_days.size(), 1u);

  // Re-derive the crossings from the utilization series: they must agree
  // with the simulator's own bookkeeping.
  std::vector<size_t> expected;
  double cycle_usage = 0.0;
  for (size_t t = 0; t < history.utilization.size(); ++t) {
    cycle_usage += history.utilization[t];
    if (cycle_usage >= profile.maintenance_interval_s) {
      expected.push_back(t);
      cycle_usage -= profile.maintenance_interval_s;
    }
  }
  EXPECT_EQ(history.maintenance_days, expected);
}

TEST(SimulateVehicleTest, MissingDayInjection) {
  Rng rng(7);
  VehicleProfile profile = DefaultFleetProfiles(1, &rng)[0];
  Rng sim_rng(8);
  const VehicleHistory history =
      SimulateVehicle(profile, Date::FromYmd(2015, 1, 1).ValueOrDie(), 1000,
                      0.1, &sim_rng)
          .ValueOrDie();
  const size_t missing = history.utilization.MissingCount();
  EXPECT_GT(missing, 50u);
  EXPECT_LT(missing, 200u);
}

TEST(SimulateVehicleTest, RejectsInvalidArguments) {
  Rng rng(9);
  VehicleProfile profile = DefaultFleetProfiles(1, &rng)[0];
  Rng sim_rng(10);
  EXPECT_FALSE(SimulateVehicle(profile, Date(), 0, 0.0, &sim_rng).ok());
  EXPECT_FALSE(SimulateVehicle(profile, Date(), 100, 1.0, &sim_rng).ok());
  profile.id = "";
  EXPECT_FALSE(SimulateVehicle(profile, Date(), 100, 0.0, &sim_rng).ok());
}

TEST(SimulateFleetTest, BuildsAllVehicles) {
  const Fleet fleet = SimulateFleet(SmallFleetOptions()).ValueOrDie();
  EXPECT_EQ(fleet.vehicles.size(), 5u);
  for (const VehicleHistory& vehicle : fleet.vehicles) {
    EXPECT_EQ(vehicle.utilization.size(), 600u);
    EXPECT_DOUBLE_EQ(vehicle.profile.maintenance_interval_s, 2'000'000.0);
  }
}

TEST(SimulateFleetTest, DeterministicGivenSeed) {
  const Fleet a = SimulateFleet(SmallFleetOptions()).ValueOrDie();
  const Fleet b = SimulateFleet(SmallFleetOptions()).ValueOrDie();
  for (size_t v = 0; v < a.vehicles.size(); ++v) {
    ASSERT_EQ(a.vehicles[v].utilization.size(),
              b.vehicles[v].utilization.size());
    for (size_t t = 0; t < a.vehicles[v].utilization.size(); ++t) {
      ASSERT_DOUBLE_EQ(a.vehicles[v].utilization[t],
                       b.vehicles[v].utilization[t]);
    }
  }
}

TEST(SimulateFleetTest, SeedChangesData) {
  FleetOptions options = SmallFleetOptions();
  const Fleet a = SimulateFleet(options).ValueOrDie();
  options.seed = 100;
  const Fleet b = SimulateFleet(options).ValueOrDie();
  bool any_difference = false;
  for (size_t t = 0; t < a.vehicles[0].utilization.size(); ++t) {
    if (a.vehicles[0].utilization[t] != b.vehicles[0].utilization[t]) {
      any_difference = true;
      break;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(SimulateFleetTest, VehiclesAreMutuallyIndependent) {
  const Fleet fleet = SimulateFleet(SmallFleetOptions()).ValueOrDie();
  // Same-day values across vehicles should not be identical.
  size_t equal_days = 0;
  for (size_t t = 0; t < 600; ++t) {
    if (fleet.vehicles[0].utilization[t] ==
        fleet.vehicles[1].utilization[t]) {
      ++equal_days;
    }
  }
  EXPECT_LT(equal_days, 500u);  // zero-usage days may coincide
}

TEST(SimulateFleetTest, FindByVehicleId) {
  const Fleet fleet = SimulateFleet(SmallFleetOptions()).ValueOrDie();
  EXPECT_TRUE(fleet.Find("v1").ok());
  EXPECT_TRUE(fleet.Find("v5").ok());
  EXPECT_FALSE(fleet.Find("v6").ok());
  EXPECT_EQ(fleet.Find("v3").ValueOrDie()->profile.id, "v3");
}

TEST(SimulateFleetTest, FirstCycleUsageIsLower) {
  FleetOptions options = SmallFleetOptions();
  options.num_days = 1400;
  const Fleet fleet = SimulateFleet(options).ValueOrDie();
  // Aggregate across vehicles: mean daily usage before the first
  // maintenance must be below the mean after it (the ~30% deficit).
  double first_sum = 0.0, later_sum = 0.0;
  size_t first_days = 0, later_days = 0;
  for (const VehicleHistory& vehicle : fleet.vehicles) {
    if (vehicle.maintenance_days.empty()) continue;
    const size_t first_end = vehicle.maintenance_days[0];
    for (size_t t = 0; t < vehicle.utilization.size(); ++t) {
      if (t <= first_end) {
        first_sum += vehicle.utilization[t];
        ++first_days;
      } else {
        later_sum += vehicle.utilization[t];
        ++later_days;
      }
    }
  }
  ASSERT_GT(first_days, 0u);
  ASSERT_GT(later_days, 0u);
  const double first_mean = first_sum / first_days;
  const double later_mean = later_sum / later_days;
  EXPECT_LT(first_mean, 0.85 * later_mean);
}

TEST(SimulateFleetWithProfilesTest, RejectsEmptyProfileList) {
  EXPECT_FALSE(
      SimulateFleetWithProfiles(SmallFleetOptions(), {}).ok());
}

TEST(SimulateFleetTest, RejectsNonPositiveVehicleCount) {
  FleetOptions options = SmallFleetOptions();
  options.num_vehicles = 0;
  EXPECT_FALSE(SimulateFleet(options).ok());
}

}  // namespace
}  // namespace telem
}  // namespace nextmaint
